# Tier-1 verification flow plus the perf harness.
#
#   make tier1   — what every PR must keep green: build, vet, full test
#                  suite, and race-mode tests on the scan-path packages.
#   make bench   — regenerate the scan-path benchmark numbers (BENCH json).

GO ?= go

# Packages whose hot paths are exercised by many goroutines; always raced.
RACE_PKGS = ./internal/simnet ./internal/zmap ./internal/worldgen

.PHONY: build test vet race race-full tier1 bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Extended race coverage: the pipeline and the parallel analysis layer.
race-full: race
	$(GO) test -race ./internal/core ./internal/analysis

tier1: build vet test race

bench:
	scripts/bench.sh
