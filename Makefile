# Tier-1 verification flow plus the perf harness.
#
#   make tier1   — what every PR must keep green: build, vet, full test
#                  suite, and race-mode tests on the scan-path packages.
#   make chaos   — the fault-injection suite under the race detector:
#                  hostile servers, malformed protocol input, budget and
#                  degradation paths.
#   make bench   — regenerate the scan-path benchmark numbers (BENCH json).

GO ?= go

# Packages whose hot paths are exercised by many goroutines; always raced.
# The honeypot accumulator and attacker fleet are mutated by hundreds of
# concurrent sessions, so they belong here too.
RACE_PKGS = ./internal/simnet ./internal/zmap ./internal/worldgen ./internal/obs \
	./internal/honeypot ./internal/attacker

# Packages holding the chaos suite: fault injection, hostile worlds, the
# enumerator's retry/degradation layer, the identification stage's hostile
# banners (drip, stall, mid-banner EOF, garbage), and the end-to-end
# hostile census.
CHAOS_PKGS = ./internal/simnet ./internal/ftp ./internal/listparse \
	./internal/enumerator ./internal/worldgen ./internal/identify \
	./internal/core ./internal/attacker

.PHONY: build test vet vet-obs race race-full race-sharded race-server tier1 chaos bench bench-server bench-identify bench-longitudinal bench-honeypot smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The metrics layer sits on every hot path; vet it on its own so a
# tier1 failure names the package directly.
vet-obs:
	$(GO) vet ./internal/obs

race:
	$(GO) test -race $(RACE_PKGS)

# Extended race coverage: the pipeline, the parallel analysis layer, and
# the delta engine.
race-full: race
	$(GO) test -race ./internal/core ./internal/analysis ./internal/delta

# Sharded census under the race detector: N concurrent shard pipelines
# share one world, collector, stream sink, and metrics registry, and the
# aggregator snapshots merge across them — exactly the surfaces a data
# race would corrupt silently. The checkpoint/resume suite rides along:
# mid-scan halts, periodic quiescent checkpoints, and resume validation
# all cut across those same shared structures.
race-sharded:
	$(GO) test -race -run 'TestSharded|TestSnapshot|TestAggregatorMerge|TestSynced|TestKeepOpen|TestChildCounter|TestKillAndResume|TestPeriodicCheckpoint|TestResumeValidation|TestCheckpoint' \
		./internal/core ./internal/analysis ./internal/dataset ./internal/obs

# Server core under the race detector: pooled sessions, the connection
# governor's shared reaper, token buckets, and the in-memory driver are all
# mutated by concurrent session goroutines.
race-server:
	$(GO) test -race ./internal/ftpserver ./internal/honeypot

tier1: build vet vet-obs test race race-sharded race-server smoke

# Observability smoke test: a real ftpcensus run with live progress must
# produce a parseable, non-empty metrics snapshot.
smoke:
	scripts/smoke.sh

# Chaos suite: every fault class must yield a classified partial record —
# no hangs, no silent host drops — with the race detector watching.
# KillAndResume belongs here too: it kills a census mid-scan over benign
# *and* hostile worlds and demands byte-identical recovery.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Hostile|Benign|Malformed|Truncated|Oversized|MidReply|UnexpectedEOF|KillAndResume' $(CHAOS_PKGS)

bench:
	scripts/bench.sh

# Server-core benchmark: concurrent-session throughput (100/1k/10k tiers
# over simnet and loopback TCP) plus per-command steady-state allocations.
bench-server:
	PKG=./internal/ftpserver \
	BENCH='BenchmarkServerConcurrentSessions|BenchmarkSessionCommands' \
	BENCHTIME=20000x scripts/bench.sh BENCH_7.json

# Staged-funnel benchmark: per-class identification round-trips, the
# shed-vs-enumerate trade on one service host, and the full mixed-world
# census with the legacy two-stage pipeline versus the staged funnel.
bench-identify:
	BENCH='BenchmarkIdentifyRoundTrip|BenchmarkShedVsEnumerate|BenchmarkMixedCensus' \
	BENCHTIME=3x scripts/bench.sh BENCH_8.json

# Longitudinal benchmark: checkpoint frame encode/decode, the resume-time
# aggregate merge, and a 100k-host ledger diff.
bench-longitudinal:
	PKG=./internal/delta \
	BENCH='BenchmarkCheckpointEncode|BenchmarkCheckpointDecode|BenchmarkResumeMerge|BenchmarkDiffLedgers' \
	BENCHTIME=100x scripts/bench.sh BENCH_9.json

# Honeypot fleet benchmark: 100 differentiated honeypots absorbing a
# million-session attacker campaign through the streaming accumulators —
# live-B/session must stay fractional (population-bounded memory) — plus
# the legacy-scale §VIII study for the report tables.
bench-honeypot:
	BENCH='BenchmarkHoneypotFleetMemory|BenchmarkSectionVIII_Honeypot' \
	BENCHTIME=1x scripts/bench.sh BENCH_10.json
