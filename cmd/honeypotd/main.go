// Command honeypotd runs the §VIII honeypot study: it deploys anonymous,
// world-writable FTP honeypots on a simulated network, unleashes the
// calibrated attacker fleet, and prints the observed-attack summary.
//
// Usage:
//
//	honeypotd -honeypots 8 -attackers 457 -seed 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ftpcloud/internal/core"
	"ftpcloud/internal/honeypot"
	"ftpcloud/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "honeypotd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		honeypots    = flag.Int("honeypots", 8, "number of honeypots (paper: 8)")
		attackers    = flag.Int("attackers", 457, "attacker population (paper: 457 unique IPs)")
		concentrated = flag.Float64("concentrated", 0.30, "share of attackers from one network")
		seed         = flag.Uint64("seed", 3, "attacker fleet seed")
		timeout      = flag.Duration("timeout", 10*time.Minute, "run deadline")

		progress = flag.Duration("progress", 0,
			"emit a progress line to stderr at this interval (0 = off)")
		debugAddr = flag.String("debug-addr", "",
			"serve /debug/pprof, /debug/vars and /metrics on this address")
		metricsOut = flag.String("metrics-out", "",
			"write the final metrics snapshot (JSON) to this file")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	reg := obs.NewRegistry()
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, "honeypotd", reg)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "honeypotd: debug endpoints at http://%s/debug/pprof/ and /debug/vars\n", dbg.Addr())
	}
	if *metricsOut != "" {
		defer func() {
			f, err := os.Create(*metricsOut)
			if err == nil {
				err = reg.Snapshot().WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "honeypotd: metrics snapshot: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "honeypotd: wrote metrics snapshot to %s\n", *metricsOut)
			}
		}()
	}
	if *progress > 0 {
		rep := &obs.Reporter{Registry: reg, Interval: *progress}
		stop := rep.Start(ctx)
		defer stop()
	}

	summary, err := core.HoneypotStudy(ctx, core.HoneypotStudyConfig{
		Seed:         *seed,
		Honeypots:    *honeypots,
		Attackers:    *attackers,
		Concentrated: *concentrated,
		Metrics:      reg,
	})
	if err != nil {
		return err
	}
	fmt.Print(honeypot.Render(summary))
	return nil
}
