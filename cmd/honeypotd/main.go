// Command honeypotd runs the §VIII honeypot study: it deploys anonymous,
// world-writable FTP honeypots on a simulated network, unleashes the
// calibrated attacker fleet, and prints the observed-attack summary.
//
// Usage:
//
//	honeypotd -honeypots 8 -attackers 457 -seed 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ftpcloud/internal/core"
	"ftpcloud/internal/honeypot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "honeypotd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		honeypots    = flag.Int("honeypots", 8, "number of honeypots (paper: 8)")
		attackers    = flag.Int("attackers", 457, "attacker population (paper: 457 unique IPs)")
		concentrated = flag.Float64("concentrated", 0.30, "share of attackers from one network")
		seed         = flag.Uint64("seed", 3, "attacker fleet seed")
		timeout      = flag.Duration("timeout", 10*time.Minute, "run deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	summary, err := core.HoneypotStudy(ctx, core.HoneypotStudyConfig{
		Seed:         *seed,
		Honeypots:    *honeypots,
		Attackers:    *attackers,
		Concentrated: *concentrated,
	})
	if err != nil {
		return err
	}
	fmt.Print(honeypot.Render(summary))
	return nil
}
