// Command honeypotd runs the §VIII honeypot study: it deploys anonymous,
// world-writable FTP honeypots on a simulated network, unleashes the
// calibrated attacker fleet, and prints the observed-attack report.
//
// The paper's posture is the default (8 honeypots, 457 attackers, one visit
// per bot-target pair). The fleet flags scale it to the Honeybuckets shape:
// hundreds of differentiated honeypots and millions of sessions, streamed
// through constant-memory accumulators rather than buffered.
//
// Usage:
//
//	honeypotd -honeypots 8 -attackers 457 -seed 3
//	honeypotd -honeypots 200 -bots 5000 -sessions 1000000 \
//	    -lure-mix webroot=4,backup=2,media=2,vault=1,bare=1 \
//	    -events-out events.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ftpcloud/internal/core"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/honeypot"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "honeypotd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		honeypots    = flag.Int("honeypots", 8, "number of honeypots (paper: 8)")
		attackers    = flag.Int("attackers", 457, "attacker population (paper: 457 unique IPs)")
		bots         = flag.Int("bots", 0, "alias for -attackers (fleet-scale naming); takes precedence when set")
		sessions     = flag.Int64("sessions", 0, "campaign session budget; 0 = legacy one-visit-per-bot-target shape")
		concurrency  = flag.Int("concurrency", 0, "in-flight attacker session cap (0 = fleet default)")
		lureMix      = flag.String("lure-mix", "", "lure strategy weights, e.g. webroot=4,backup=2,media=2,vault=1,bare=1 (empty = default mix)")
		eventsOut    = flag.String("events-out", "", "stream every honeypot event as JSONL to this file")
		concentrated = flag.Float64("concentrated", 0.30, "share of attackers from one network")
		seed         = flag.Uint64("seed", 3, "attacker fleet seed")
		timeout      = flag.Duration("timeout", 10*time.Minute, "run deadline")

		progress = flag.Duration("progress", 0,
			"emit a progress line to stderr at this interval (0 = off)")
		debugAddr = flag.String("debug-addr", "",
			"serve /debug/pprof, /debug/vars and /metrics on this address")
		metricsOut = flag.String("metrics-out", "",
			"write the final metrics snapshot (JSON) to this file")
	)
	flag.Parse()

	mix, err := honeypot.ParseLureMix(*lureMix)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	reg := obs.NewRegistry()
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, "honeypotd", reg)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "honeypotd: debug endpoints at http://%s/debug/pprof/ and /debug/vars\n", dbg.Addr())
	}
	if *metricsOut != "" {
		defer func() {
			f, err := os.Create(*metricsOut)
			if err == nil {
				err = reg.Snapshot().WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "honeypotd: metrics snapshot: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "honeypotd: wrote metrics snapshot to %s\n", *metricsOut)
			}
		}()
	}
	if *progress > 0 {
		rep := &obs.Reporter{Registry: reg, Interval: *progress}
		stop := rep.Start(ctx)
		defer stop()
	}

	var events *honeypot.EventStream
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return fmt.Errorf("events stream: %w", err)
		}
		events = honeypot.NewEventStream(dataset.NewLines(f))
	}

	population := *attackers
	if *bots > 0 {
		population = *bots
	}
	rep, err := core.HoneypotStudy(ctx, core.HoneypotStudyConfig{
		Seed:         *seed,
		Honeypots:    *honeypots,
		Attackers:    population,
		Concentrated: *concentrated,
		Sessions:     *sessions,
		Concurrency:  *concurrency,
		LureMix:      mix,
		Events:       events,
		Metrics:      reg,
	})
	if events != nil {
		if cerr := events.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("events stream: %w", cerr)
		}
	}
	if err != nil {
		return err
	}
	fmt.Print(report.Honeypot(rep))
	return nil
}
