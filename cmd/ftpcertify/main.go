// Command ftpcertify runs the §X "CyberUL"-style certification battery
// against one real FTP host over TCP: anonymous login, anonymous write,
// PORT validation, default credentials, banner CVEs, FTPS availability,
// and internal-address leaks.
//
// Usage:
//
//	ftpcertify [-timeout 10s] <host>
//
// Only point ftpcertify at devices you own or are authorized to test: the
// battery includes login and upload probes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"ftpcloud/internal/certify"
	"ftpcloud/internal/obs"
)

type tcpDialer struct{ timeout time.Duration }

func (d tcpDialer) Dial(network, address string) (net.Conn, error) {
	return net.DialTimeout(network, address, d.timeout)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ftpcertify: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	timeout := flag.Duration("timeout", 10*time.Second, "per-operation timeout")
	metricsOut := flag.String("metrics-out", "",
		"write audit timing (JSON snapshot) to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: ftpcertify [flags] <host>")
	}
	auditor := &certify.Auditor{
		Dialer:  tcpDialer{timeout: *timeout},
		Timeout: *timeout,
	}
	reg := obs.NewRegistry()
	start := time.Now()
	report, err := auditor.Audit(context.Background(), flag.Arg(0))
	reg.Histogram("certify.audit_seconds", obs.WideBuckets...).Since(start)
	if *metricsOut != "" {
		f, ferr := os.Create(*metricsOut)
		if ferr != nil {
			return ferr
		}
		if werr := reg.Snapshot().WriteJSON(f); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		fmt.Fprintf(os.Stderr, "ftpcertify: wrote timing snapshot to %s\n", *metricsOut)
	}
	if err != nil {
		return err
	}
	fmt.Print(certify.Render(report))
	if report.Grade == "F" {
		os.Exit(2)
	}
	return nil
}
