// Command ftpserved serves one FTP personality on a real TCP socket — the
// interop path for validating the server engine (and the enumerator)
// outside the simulation. A local testbed of diverse implementations was
// exactly how the paper hardened its enumerator.
//
// Usage:
//
//	ftpserved -addr 127.0.0.1:2121 -personality proftpd-1.3.5 -anon -writable
//	ftpserved -list
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/vfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ftpserved: %v\n", err)
		os.Exit(1)
	}
}

// demoFS builds a small example tree for manual testing.
func demoFS() *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm755)
	pub := root.Add(vfs.NewDir("pub", vfs.Perm755))
	pub.Add(vfs.NewFileContent("README", vfs.Perm644,
		[]byte("ftpserved demo server (ftpcloud reproduction toolkit)\n")))
	pub.Add(vfs.NewFileContent("index.html", vfs.Perm644,
		[]byte("<html><body>hello from ftpserved</body></html>\n")))
	photos := pub.Add(vfs.NewDir("photos", vfs.Perm755))
	photos.Add(vfs.NewFile("DSC_0001.jpg", vfs.Perm644, 1_200_000))
	root.Add(vfs.NewDir("incoming", vfs.Perm777))
	return vfs.New(root)
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:2121", "listen address")
		persKey  = flag.String("personality", personality.KeyProFTPD135, "implementation profile key")
		anon     = flag.Bool("anon", true, "allow anonymous logins")
		writable = flag.Bool("writable", false, "allow anonymous writes")
		list     = flag.Bool("list", false, "list available personalities and exit")

		debugAddr = flag.String("debug-addr", "",
			"serve /debug/pprof, /debug/vars and /metrics on this address")
	)
	flag.Parse()

	if *list {
		for _, p := range personality.All() {
			model := p.DeviceModel
			if model == "" {
				model = p.Software
			}
			fmt.Printf("%-24s %s\n", p.Key, model)
		}
		return nil
	}

	pers := personality.ByKey(*persKey)
	if pers == nil {
		return fmt.Errorf("unknown personality %q (use -list)", *persKey)
	}
	srv, err := ftpserver.New(ftpserver.Config{
		Pers:           pers,
		FS:             demoFS(),
		HostName:       "ftpserved.local",
		AllowAnonymous: *anon,
		AnonWritable:   *writable,
	})
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	conns := reg.Counter("ftpserved.conns")
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, "ftpserved", reg)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "ftpserved: debug endpoints at http://%s/debug/pprof/ and /debug/vars\n", dbg.Addr())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "ftpserved: %s serving %s (anon=%v writable=%v)\n",
		l.Addr(), *persKey, *anon, *writable)

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting; in-flight
	// sessions run to completion on their own goroutines.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		l.Close()
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "ftpserved: shutting down")
				return nil
			}
			return err
		}
		conns.Inc()
		go srv.ServeTCP(conn)
	}
}
