// Command ftpserved serves one FTP personality on a real TCP socket — the
// interop path for validating the server engine (and the enumerator)
// outside the simulation. A local testbed of diverse implementations was
// exactly how the paper hardened its enumerator.
//
// Usage:
//
//	ftpserved -addr 127.0.0.1:2121 -personality proftpd-1.3.5 -anon -writable
//	ftpserved -addr 127.0.0.1:2121 -max-conns 10000 -progress 5s
//	ftpserved -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/vfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ftpserved: %v\n", err)
		os.Exit(1)
	}
}

// demoFS builds a small example tree for manual testing.
func demoFS() *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm755)
	pub := root.Add(vfs.NewDir("pub", vfs.Perm755))
	pub.Add(vfs.NewFileContent("README", vfs.Perm644,
		[]byte("ftpserved demo server (ftpcloud reproduction toolkit)\n")))
	pub.Add(vfs.NewFileContent("index.html", vfs.Perm644,
		[]byte("<html><body>hello from ftpserved</body></html>\n")))
	photos := pub.Add(vfs.NewDir("photos", vfs.Perm755))
	photos.Add(vfs.NewFile("DSC_0001.jpg", vfs.Perm644, 1_200_000))
	root.Add(vfs.NewDir("incoming", vfs.Perm777))
	return vfs.New(root)
}

// servedProgress renders the periodic -progress line: active connections,
// session admission rate, and shed count.
func servedProgress(w io.Writer, delta, cur obs.Snapshot, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	fmt.Fprintf(w, "progress: conns=%d sessions=%d (%.1f/s) shed=%d cmds=%d logins=%d\n",
		cur.Gauges["ftpserver.active"],
		cur.Counters["ftpserver.sessions"],
		float64(delta.Counters["ftpserver.sessions"])/secs,
		cur.Counters["ftpserver.shed"],
		cur.Counters["ftpserver.commands"],
		cur.Counters["ftpserver.logins"])
}

func writeSnapshot(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:2121", "listen address")
		persKey  = flag.String("personality", personality.KeyProFTPD135, "implementation profile key")
		anon     = flag.Bool("anon", true, "allow anonymous logins")
		writable = flag.Bool("writable", false, "allow anonymous writes")
		list     = flag.Bool("list", false, "list available personalities and exit")

		driver = flag.String("driver", "vfs",
			"storage backend: vfs (synthetic tree) or mem (in-memory driver)")
		maxConns = flag.Int("max-conns", 0,
			"cap concurrent sessions; excess connections are shed with a 421 (0 = uncapped)")
		maxConnsPerIP = flag.Int("max-conns-per-ip", 0,
			"cap concurrent sessions per remote IP (0 = uncapped)")
		idleTimeout = flag.Duration("idle-timeout", 0,
			"disconnect sessions idle this long (0 = engine default 60s)")
		bwSession = flag.Int64("bw-session", 0,
			"bandwidth cap per session in bytes/s (0 = unshaped)")
		bwGlobal = flag.Int64("bw-global", 0,
			"global bandwidth cap across all sessions in bytes/s (0 = unshaped)")

		xferlog = flag.String("xferlog", "",
			"append transfers to this file in wu-ftpd xferlog(5) format")
		auditJSONL = flag.String("audit-jsonl", "",
			"append every session event (connects, commands, credentials, transfers) to this file as JSON lines")

		progress = flag.Duration("progress", 0,
			"emit a progress line (conns, sessions/s, sheds) to stderr at this interval (0 = off)")
		debugAddr = flag.String("debug-addr", "",
			"serve /debug/pprof, /debug/vars and /metrics on this address")
		metricsOut = flag.String("metrics-out", "",
			"write the final metrics snapshot (JSON) to this file")
	)
	flag.Parse()

	if *list {
		for _, p := range personality.All() {
			model := p.DeviceModel
			if model == "" {
				model = p.Software
			}
			fmt.Printf("%-24s %s\n", p.Key, model)
		}
		return nil
	}

	pers := personality.ByKey(*persKey)
	if pers == nil {
		return fmt.Errorf("unknown personality %q (use -list)", *persKey)
	}

	reg := obs.NewRegistry()
	cfg := ftpserver.Config{
		Pers:                pers,
		HostName:            "ftpserved.local",
		AllowAnonymous:      *anon,
		AnonWritable:        *writable,
		MaxConns:            *maxConns,
		MaxConnsPerIP:       *maxConnsPerIP,
		IdleTimeout:         *idleTimeout,
		BandwidthPerSession: *bwSession,
		BandwidthGlobal:     *bwGlobal,
		Metrics:             reg,
	}
	switch *driver {
	case "vfs":
		cfg.FS = demoFS()
	case "mem":
		cfg.Driver = ftpserver.MemDriverFromFS(demoFS())
	default:
		return fmt.Errorf("unknown driver %q (vfs or mem)", *driver)
	}

	// Audit sinks ride the Observer hook; both flags may combine, and a
	// future honeypot recorder would join the same fan-out.
	var observers []ftpserver.Observer
	for _, sink := range []struct {
		path string
		open func(io.Writer) ftpserver.Observer
	}{
		{*xferlog, func(w io.Writer) ftpserver.Observer { return ftpserver.NewXferlogSink(w) }},
		{*auditJSONL, func(w io.Writer) ftpserver.Observer { return ftpserver.NewJSONLSink(w) }},
	} {
		if sink.path == "" {
			continue
		}
		f, err := os.OpenFile(sink.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("audit log: %w", err)
		}
		o := sink.open(f)
		defer func(f *os.File, o ftpserver.Observer) {
			if c, ok := o.(io.Closer); ok {
				c.Close()
			}
			f.Close()
		}(f, o)
		observers = append(observers, o)
	}
	cfg.Observer = ftpserver.MultiObserver(observers...)
	srv, err := ftpserver.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, "ftpserved", reg)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "ftpserved: debug endpoints at http://%s/debug/pprof/ and /debug/vars\n", dbg.Addr())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "ftpserved: %s serving %s (anon=%v writable=%v driver=%s max-conns=%d)\n",
		l.Addr(), *persKey, *anon, *writable, *driver, *maxConns)

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting; in-flight
	// sessions run to completion on their own goroutines.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		l.Close()
	}()

	if *progress > 0 {
		rep := &obs.Reporter{Registry: reg, Interval: *progress, Format: servedProgress}
		defer rep.Start(ctx)()
	}
	if *metricsOut != "" {
		defer func() {
			if err := writeSnapshot(reg, *metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "ftpserved: metrics snapshot: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "ftpserved: wrote metrics snapshot to %s\n", *metricsOut)
			}
		}()
	}

	if err := srv.Serve(l); err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "ftpserved: shutting down")
			return nil
		}
		return err
	}
	return nil
}
