// Command ftpenum runs the paper's enumerator against a single real host
// over TCP: anonymous login per RFC 1635, robots.txt compliance, BFS
// directory traversal under the request cap, HELP/FEAT/SITE collection, and
// AUTH TLS certificate grab. Output is one JSON record.
//
// Usage:
//
//	ftpenum [-cap 500] [-delay 500ms] [-timeout 10s] <host>
//
// Only point ftpenum at hosts you are authorized to survey.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"ftpcloud/internal/enumerator"
	"ftpcloud/internal/obs"
)

// tcpDialer adapts net.Dialer to the enumerator's Dialer interface.
type tcpDialer struct {
	timeout time.Duration
}

func (d tcpDialer) Dial(network, address string) (net.Conn, error) {
	return net.DialTimeout(network, address, d.timeout)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ftpenum: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		reqCap  = flag.Int("cap", 500, "max protocol requests per connection")
		delay   = flag.Duration("delay", 500*time.Millisecond, "delay between requests (the paper used 2 req/s)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-operation timeout")
		noTLS   = flag.Bool("no-tls", false, "skip the AUTH TLS certificate grab")
		port    = flag.Uint("port", 21, "control-channel port")

		metricsOut = flag.String("metrics-out", "",
			"write per-command latency histograms (JSON snapshot) to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: ftpenum [flags] <host>")
	}
	host := flag.Arg(0)

	// Resolve to an IPv4 address for the record.
	addrs, err := net.LookupHost(host)
	if err != nil {
		return fmt.Errorf("resolving %s: %w", host, err)
	}
	target := ""
	for _, a := range addrs {
		if ip := net.ParseIP(a); ip != nil && ip.To4() != nil {
			target = a
			break
		}
	}
	if target == "" {
		return fmt.Errorf("no IPv4 address for %s", host)
	}

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}

	cfg := enumerator.Config{
		Dialer:       tcpDialer{timeout: *timeout},
		RequestCap:   *reqCap,
		RequestDelay: *delay,
		Timeout:      *timeout,
		TryTLS:       !*noTLS,
		Port:         uint16(*port),
		Metrics:      reg,
	}
	rec := enumerator.Enumerate(context.Background(), cfg, target)

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ftpenum: wrote latency snapshot to %s\n", *metricsOut)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
