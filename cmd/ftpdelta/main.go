// Command ftpdelta diffs two census runs — the longitudinal view the
// paper's single sweep could not take. Point it at the aggregate snapshots
// two censuses wrote (-snapshot-out, or checkpoint files) and it trends
// the headline counters; add the streamed JSONL ledgers and it resolves
// host-level churn and version-migration flows.
//
// Usage:
//
//	ftpdelta -from epoch0.snap -to epoch1.snap \
//	         [-from-ledger epoch0.jsonl -to-ledger epoch1.jsonl]
//
// Snapshots from any census run are accepted: plain aggregates (version-1
// frames) and resumable checkpoints (version-2) diff the same way.
package main

import (
	"flag"
	"fmt"
	"os"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/delta"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ftpdelta: %v\n", err)
		os.Exit(1)
	}
}

func loadSnapshot(path string) (*analysis.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := analysis.DecodeSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func loadLedger(path string) ([]*dataset.HostRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := dataset.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func run() error {
	fromPath := flag.String("from", "", "earlier census snapshot (required)")
	toPath := flag.String("to", "", "later census snapshot (required)")
	fromLedger := flag.String("from-ledger", "",
		"earlier run's JSONL ledger (enables host-level churn and migration flows)")
	toLedger := flag.String("to-ledger", "",
		"later run's JSONL ledger (required with -from-ledger)")
	flag.Parse()

	if *fromPath == "" || *toPath == "" {
		return fmt.Errorf("usage: ftpdelta -from <snapshot> -to <snapshot> [-from-ledger <jsonl> -to-ledger <jsonl>]")
	}
	if (*fromLedger == "") != (*toLedger == "") {
		return fmt.Errorf("-from-ledger and -to-ledger must be given together")
	}

	from, err := loadSnapshot(*fromPath)
	if err != nil {
		return err
	}
	to, err := loadSnapshot(*toPath)
	if err != nil {
		return err
	}
	report := delta.Compute(from, to)

	if *fromLedger != "" {
		before, err := loadLedger(*fromLedger)
		if err != nil {
			return err
		}
		after, err := loadLedger(*toLedger)
		if err != nil {
			return err
		}
		report.Hosts = delta.DiffLedgers(before, after)
	}

	fmt.Print(report.Render())
	return nil
}
