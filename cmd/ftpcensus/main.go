// Command ftpcensus runs the full measurement pipeline — world synthesis,
// ZMap-style discovery, enumeration, analysis — and prints every table and
// figure from the paper's evaluation.
//
// Usage:
//
//	ftpcensus -seed 42 -scale 2048 -out census.jsonl
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/core"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/enumerator"
	"ftpcloud/internal/notify"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/report"
	"ftpcloud/internal/worldgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ftpcensus: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Uint64("seed", 42, "world and scan-order seed")
		scale    = flag.Int("scale", 2048, "divisor of the paper's full-Internet population")
		epoch    = flag.Uint64("epoch", 0, "world epoch: later epochs churn hosts, upgrade versions, and reallocate tail ASes deterministically")
		workers  = flag.Int("workers", 64, "enumeration worker count")
		retries  = flag.Int("retries", 2, "discovery probe retries")
		rate     = flag.Int("rate", 0, "cap discovery probes per second across all shards (0 = unthrottled)")
		loss     = flag.Float64("loss", 0.02, "simulated probe loss rate")
		out      = flag.String("out", "", "write the per-host dataset (JSONL) to this file")
		notifyTo = flag.String("notify", "", "write per-AS disclosure notices to this file")
		csvTo    = flag.String("figure1-csv", "", "write Figure 1's CDF series (CSV) to this file")
		quiet    = flag.Bool("quiet", false, "suppress the table report")
		timeout  = flag.Duration("timeout", 30*time.Minute, "overall run deadline")
		shards   = flag.Int("shards", 1,
			"fan the census out over this many cooperating shard pipelines")
		snapshotOut = flag.String("snapshot-out", "",
			"write the merged aggregate snapshot (binary checkpoint) to this file")
		checkpointTo = flag.String("checkpoint", "",
			"write a resumable checkpoint to this file on truncation (and periodically); removed after a clean finish")
		checkpointEvery = flag.Duration("checkpoint-every", 30*time.Second,
			"periodic checkpoint interval when -checkpoint is set (0 = truncation-only)")
		resumeFrom = flag.String("resume", "",
			"resume a truncated census from this checkpoint file; -out is trimmed to the checkpointed ledger and appended to")

		serviceMix = flag.String("service-mix", "",
			"put non-FTP services on port 21: \"default\" or weights like http=4,tls=2,ssh=2,telnet=1,garbage=2,silent=1 (empty = off)")
		identifyOn = flag.Bool("identify", false,
			"insert the LZR-style identification stage: fingerprint each discovered endpoint and shed non-FTP services before enumeration")
		identifyWait = flag.Duration("identify-wait", 0,
			"identification banner wait before sending the trigger (0 = default 2s)")
		identifyWorkers = flag.Int("identify-workers", 0,
			"identification worker count per shard (0 = default 32)")

		hostile = flag.Float64("hostile", 0,
			"fraction of FTP hosts given a hostile fault personality")
		faultMix = flag.String("fault-mix", "",
			"hostile class weights, e.g. latency=1,drip=2,rst=1,stall=1,garbage=1,eof=1")
		enumTimeout = flag.Duration("enum-timeout", 0,
			"per-operation enumerator timeout (0 = default 15s)")
		enumRetries = flag.Int("enum-retries", 0,
			"enumerator transport retry attempts (0 = default)")
		hostBudget = flag.Duration("host-budget", 0,
			"wall-clock budget per enumerated host (0 = default 2m, negative = off)")
		byteBudget = flag.Int64("byte-budget", 0,
			"data-channel byte budget per host (0 = default 64MiB, negative = off)")

		progress = flag.Duration("progress", 0,
			"emit a progress line to stderr at this interval (0 = off)")
		debugAddr = flag.String("debug-addr", "",
			"serve /debug/pprof, /debug/vars and /metrics on this address")
		metricsOut = flag.String("metrics-out", "",
			"write the final metrics snapshot (JSON) to this file")
	)
	flag.Parse()

	// Shard counts outside [1,63] are config errors: zero or negative
	// pipelines cannot carry a census, and beyond 63 the per-shard probe
	// floor (1/s) makes the aggregate rate wildly overshoot -rate.
	if *shards < 1 || *shards > 63 {
		return fmt.Errorf("-shards %d out of range: must be between 1 and 63", *shards)
	}

	mix, err := worldgen.ParseFaultMix(*faultMix)
	if err != nil {
		return err
	}

	// The empty flag keeps the benign world bit-identical to pre-service
	// seeds; "default" opts into the LZR-shaped mix without spelling it out.
	var svcMix worldgen.ServiceMix
	if *serviceMix != "" {
		if *serviceMix == "default" {
			svcMix = worldgen.DefaultServiceMix()
		} else if svcMix, err = worldgen.ParseServiceMix(*serviceMix); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	reg := obs.NewRegistry()

	// A resumed run picks up the checkpoint's aggregate and cursors, and
	// continues the interrupted ledger in place. It keeps checkpointing to
	// the same file unless told otherwise, so a second kill resumes from
	// the later position and a clean finish removes the consumed file.
	var resumeSnap *analysis.Snapshot
	if *resumeFrom != "" {
		var err error
		if resumeSnap, err = readCheckpoint(*resumeFrom); err != nil {
			return err
		}
		if *checkpointTo == "" {
			*checkpointTo = *resumeFrom
		}
		fmt.Fprintf(os.Stderr, "ftpcensus: resuming from %s (%d records already streamed)\n",
			*resumeFrom, resumeSnap.Checkpoint.Streamed)
	}

	// The dataset is persisted by streaming each record into the JSONL
	// file as its enumeration finishes — and unless another consumer
	// needs the retained slice (the notify builder does), the census
	// runs in streaming-only mode so listings never pile up in memory.
	// A resume appends to the interrupted ledger after trimming it to
	// exactly the records the checkpoint accounts for, so the finished
	// file carries no duplicates and no post-checkpoint stragglers.
	var streamSink *dataset.WriterSink
	var streamTo dataset.Sink
	ran := false
	if *out != "" && resumeSnap != nil {
		f, err := openLedgerForResume(*out, resumeSnap.Checkpoint.Streamed)
		if err != nil {
			return err
		}
		streamSink = dataset.NewWriterSink(f)
		streamTo = streamSink
		defer func() {
			if !ran {
				streamSink.Close()
			}
		}()
	} else if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		streamSink = dataset.NewWriterSink(f)
		streamTo = streamSink
		// Until Run takes ownership of the sink chain, every early-error
		// return must flush/close the handle and clear the empty file it
		// would otherwise leave behind.
		defer func() {
			if ran {
				return
			}
			streamSink.Close()
			if streamSink.Count() == 0 {
				os.Remove(*out)
			}
		}()
	}
	retain := core.RetainNone
	if *notifyTo != "" {
		retain = core.RetainAll
	}

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, "ftpcensus", reg)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "ftpcensus: debug endpoints at http://%s/debug/pprof/ and /debug/vars\n", dbg.Addr())
	}
	if *metricsOut != "" {
		// Snapshot on every exit path — a truncated or failed run still
		// leaves its metrics behind for postmortem.
		defer func() {
			if err := writeSnapshot(reg, *metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "ftpcensus: metrics snapshot: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "ftpcensus: wrote metrics snapshot to %s\n", *metricsOut)
			}
		}()
	}

	var result *core.Result
	if *snapshotOut != "" {
		// Mirror the -metrics-out defer: a truncated run's aggregate is a
		// valid mergeable dataset (and a longitudinal diff input), so it
		// is persisted on every exit path that produced one — not only
		// the happy path.
		defer func() {
			if result == nil {
				return
			}
			if err := writeAggregateSnapshot(result, *snapshotOut); err != nil {
				fmt.Fprintf(os.Stderr, "ftpcensus: aggregate snapshot: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "ftpcensus: wrote aggregate snapshot to %s\n", *snapshotOut)
			}
		}()
	}

	var policy *core.CheckpointPolicy
	if *checkpointTo != "" {
		policy = &core.CheckpointPolicy{
			Every: *checkpointEvery,
			Write: func(snap *analysis.Snapshot) error {
				return writeCheckpointAtomic(snap, *checkpointTo)
			},
		}
	}

	sharded, err := core.NewShardedCensus(core.CensusConfig{
		Seed:            *seed,
		Scale:           *scale,
		Epoch:           *epoch,
		EnumWorkers:     *workers,
		Retries:         *retries,
		ScanRate:        *rate,
		LossRate:        *loss,
		Checkpoint:      policy,
		Resume:          resumeSnap,
		RetainRecords:   retain,
		StreamTo:        streamTo,
		ServiceMix:      svcMix,
		Identify:        *identifyOn,
		IdentifyWait:    *identifyWait,
		IdentifyWorkers: *identifyWorkers,
		HostileRate:     *hostile,
		FaultMix:        mix,
		EnumTimeout:     *enumTimeout,
		EnumRetry:       enumerator.RetryPolicy{Attempts: *enumRetries},
		HostBudget:      *hostBudget,
		ByteBudget:      *byteBudget,
		Metrics:         reg,
	}, *shards)
	if err != nil {
		return err
	}
	census := sharded.Census
	shardNote := ""
	if sharded.Shards > 1 {
		shardNote = fmt.Sprintf(", %d shards", sharded.Shards)
	}
	fmt.Fprintf(os.Stderr, "ftpcensus: scanning %d addresses (scale 1:%d, seed %d%s)\n",
		census.World.ScanSize, *scale, *seed, shardNote)

	if *progress > 0 {
		rep := &obs.Reporter{Registry: reg, Interval: *progress, Format: censusProgress}
		stop := rep.Start(ctx)
		defer stop()
	}

	ran = true // Run owns the sink chain from here: it flushes and closes it.
	result, err = sharded.Run(ctx)
	if err != nil {
		return err
	}
	if result.Truncated {
		fmt.Fprintf(os.Stderr,
			"ftpcensus: *** TRUNCATED at %s — partial results below (%d records enumerated) ***\n",
			result.TruncatedBy, result.Observed)
	}
	if *checkpointTo != "" {
		if result.Truncated {
			fmt.Fprintf(os.Stderr, "ftpcensus: checkpoint written to %s — continue with -resume %s\n",
				*checkpointTo, *checkpointTo)
		} else if os.Remove(*checkpointTo) == nil {
			// A clean finish needs no resume point; leaving a stale
			// periodic checkpoint behind would invite resuming a
			// completed census.
			fmt.Fprintf(os.Stderr, "ftpcensus: clean finish — removed checkpoint %s\n", *checkpointTo)
		}
	}
	fmt.Fprintf(os.Stderr, "ftpcensus: discovery %v (%d probed, %d responsive); enumeration %v (%d records)\n",
		result.ScanDuration.Round(time.Millisecond), result.Probed, result.Responded,
		result.EnumDuration.Round(time.Millisecond), result.Observed)

	if *identifyOn {
		snap := reg.Snapshot()
		fmt.Fprintf(os.Stderr, "ftpcensus: identification: %d dials, %d passed to enumeration, %d shed, %d errors\n",
			snap.Counters["identify.dials"], snap.Counters["identify.passed"],
			snap.Counters["identify.shed"], snap.Counters["identify.errors"])
	}

	if r := result.Robustness; r.Partial > 0 || len(r.Failures) > 0 || *hostile > 0 {
		fmt.Fprintf(os.Stderr,
			"ftpcensus: robustness: %d partial, %d terminated, %d truncated, %d dirs skipped, %d retries\n",
			r.Partial, r.Terminated, r.Truncated, r.SkippedDirs, r.Retries)
		if len(r.Failures) > 0 {
			classes := make([]string, 0, len(r.Failures))
			for c := range r.Failures {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			parts := make([]string, 0, len(classes))
			for _, c := range classes {
				parts = append(parts, fmt.Sprintf("%s=%d", c, r.Failures[c]))
			}
			fmt.Fprintf(os.Stderr, "ftpcensus: failure classes: %s\n", strings.Join(parts, " "))
		}
	}

	if streamSink != nil {
		// Run already flushed and closed the sink chain.
		fmt.Fprintf(os.Stderr, "ftpcensus: streamed %d records to %s\n", streamSink.Count(), *out)
	}

	if *notifyTo != "" {
		f, err := os.Create(*notifyTo)
		if err != nil {
			return err
		}
		notices := notify.Build(result.Input)
		for i, n := range notices {
			if i > 0 {
				fmt.Fprintln(f, strings.Repeat("-", 72))
			}
			fmt.Fprintln(f, notify.Render(n))
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ftpcensus: wrote %d notices to %s\n", len(notices), *notifyTo)
	}

	tables := result.ComputeTables()

	if *csvTo != "" {
		if err := os.WriteFile(*csvTo, []byte(report.Figure1CSV(tables.ASConcentration)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ftpcensus: wrote Figure 1 series to %s\n", *csvTo)
	}

	if !*quiet {
		if result.Truncated {
			fmt.Printf("*** TRUNCATED at %s — partial ledger (%d records) ***\n\n",
				result.TruncatedBy, result.Observed)
		}
		// RenderFull is Render plus the unexpected-services ledger; on runs
		// without an identification stage the bytes are identical.
		fmt.Println(tables.RenderFull())
	}
	return nil
}

// censusProgress renders one progress line tuned to the census pipeline:
// probe rate, discovery yield, enumeration throughput, live worker load,
// per-shard progress when the census is sharded, and any failure classes
// that moved during the interval. The unprefixed counters are the merged
// view — shard counters feed them on every increment — so the headline
// numbers are identical between sharded and single-pipeline runs.
func censusProgress(w io.Writer, delta, cur obs.Snapshot, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	fmt.Fprintf(w, "progress: probed=%d (%.0f/s) responded=%d enumerated=%d (%.1f/s) inflight=%d",
		cur.Counters["zmap.probed"], float64(delta.Counters["zmap.probed"])/secs,
		cur.Counters["zmap.responded"],
		cur.Counters["census.observed"], float64(delta.Counters["census.observed"])/secs,
		cur.Gauges["enum.inflight"])

	// With the identification stage active, show the funnel's midsection:
	// how fast endpoints are being fingerprinted and how many were shed
	// before burning an enumeration slot.
	if cur.Counters["identify.dials"] > 0 {
		fmt.Fprintf(w, " identified=%d (%.1f/s) shed=%d",
			cur.Counters["identify.dials"], float64(delta.Counters["identify.dials"])/secs,
			cur.Counters["identify.shed"])
	}

	var shardCounts []string
	for name := range cur.Counters {
		if strings.HasPrefix(name, "shard") && strings.HasSuffix(name, ".census.observed") {
			shardCounts = append(shardCounts, fmt.Sprintf("%s=%d",
				strings.TrimSuffix(name, ".census.observed"), cur.Counters[name]))
		}
	}
	if len(shardCounts) > 0 {
		sort.Strings(shardCounts)
		fmt.Fprintf(w, " [%s]", strings.Join(shardCounts, " "))
	}

	var classes []string
	for name := range delta.Counters {
		if strings.HasPrefix(name, "census.failure.") && delta.Counters[name] > 0 {
			classes = append(classes, name)
		}
	}
	if len(classes) > 0 {
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, name := range classes {
			parts = append(parts, fmt.Sprintf("%s=+%d",
				strings.TrimPrefix(name, "census.failure."), delta.Counters[name]))
		}
		fmt.Fprintf(w, " failures: %s", strings.Join(parts, " "))
	}
	fmt.Fprintln(w)
}

// readCheckpoint loads and sanity-checks a resume file. Deep validation
// (seed, epoch, shards, config digest) happens in core when the census
// starts; this only rejects files that are not checkpoints at all.
func readCheckpoint(path string) (*analysis.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := analysis.DecodeSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("reading checkpoint %s: %w", path, err)
	}
	if snap.Checkpoint == nil {
		return nil, fmt.Errorf("%s is an aggregate snapshot, not a resumable checkpoint", path)
	}
	return snap, nil
}

// writeCheckpointAtomic persists a checkpoint via tmp+rename so a crash
// mid-write can never leave a torn file where the previous good checkpoint
// was — the file either holds the old checkpoint or the new one.
func writeCheckpointAtomic(snap *analysis.Snapshot, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := snap.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// openLedgerForResume trims the interrupted JSONL ledger to exactly the
// first streamed lines the checkpoint accounts for, then reopens it for
// appending. Trimming matters in the crash case: records streamed after
// the last checkpoint was written would otherwise duplicate when the
// resumed run re-observes their hosts.
func openLedgerForResume(path string, streamed int) (*os.File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("resume ledger: %w", err)
	}
	offset := 0
	for i := 0; i < streamed; i++ {
		n := bytes.IndexByte(raw[offset:], '\n')
		if n < 0 {
			return nil, fmt.Errorf("resume ledger %s holds %d records but the checkpoint accounts for %d — wrong file?",
				path, i, streamed)
		}
		offset += n + 1
	}
	if err := os.Truncate(path, int64(offset)); err != nil {
		return nil, fmt.Errorf("resume ledger: %w", err)
	}
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

// writeAggregateSnapshot persists the run's mergeable accumulator state —
// the checkpoint form a later run (or a longitudinal diff) can decode with
// analysis.DecodeSnapshot and merge into its own aggregate.
func writeAggregateSnapshot(result *core.Result, path string) error {
	snap := result.Snapshot()
	if snap == nil {
		return fmt.Errorf("no aggregate state to snapshot")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSnapshot(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
