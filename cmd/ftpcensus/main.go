// Command ftpcensus runs the full measurement pipeline — world synthesis,
// ZMap-style discovery, enumeration, analysis — and prints every table and
// figure from the paper's evaluation.
//
// Usage:
//
//	ftpcensus -seed 42 -scale 2048 -out census.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ftpcloud/internal/core"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/enumerator"
	"ftpcloud/internal/notify"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/report"
	"ftpcloud/internal/worldgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ftpcensus: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Uint64("seed", 42, "world and scan-order seed")
		scale    = flag.Int("scale", 2048, "divisor of the paper's full-Internet population")
		workers  = flag.Int("workers", 64, "enumeration worker count")
		retries  = flag.Int("retries", 2, "discovery probe retries")
		loss     = flag.Float64("loss", 0.02, "simulated probe loss rate")
		out      = flag.String("out", "", "write the per-host dataset (JSONL) to this file")
		notifyTo = flag.String("notify", "", "write per-AS disclosure notices to this file")
		csvTo    = flag.String("figure1-csv", "", "write Figure 1's CDF series (CSV) to this file")
		quiet    = flag.Bool("quiet", false, "suppress the table report")
		timeout  = flag.Duration("timeout", 30*time.Minute, "overall run deadline")
		shards   = flag.Int("shards", 1,
			"fan the census out over this many cooperating shard pipelines")
		snapshotOut = flag.String("snapshot-out", "",
			"write the merged aggregate snapshot (binary checkpoint) to this file")

		serviceMix = flag.String("service-mix", "",
			"put non-FTP services on port 21: \"default\" or weights like http=4,tls=2,ssh=2,telnet=1,garbage=2,silent=1 (empty = off)")
		identifyOn = flag.Bool("identify", false,
			"insert the LZR-style identification stage: fingerprint each discovered endpoint and shed non-FTP services before enumeration")
		identifyWait = flag.Duration("identify-wait", 0,
			"identification banner wait before sending the trigger (0 = default 2s)")
		identifyWorkers = flag.Int("identify-workers", 0,
			"identification worker count per shard (0 = default 32)")

		hostile = flag.Float64("hostile", 0,
			"fraction of FTP hosts given a hostile fault personality")
		faultMix = flag.String("fault-mix", "",
			"hostile class weights, e.g. latency=1,drip=2,rst=1,stall=1,garbage=1,eof=1")
		enumTimeout = flag.Duration("enum-timeout", 0,
			"per-operation enumerator timeout (0 = default 15s)")
		enumRetries = flag.Int("enum-retries", 0,
			"enumerator transport retry attempts (0 = default)")
		hostBudget = flag.Duration("host-budget", 0,
			"wall-clock budget per enumerated host (0 = default 2m, negative = off)")
		byteBudget = flag.Int64("byte-budget", 0,
			"data-channel byte budget per host (0 = default 64MiB, negative = off)")

		progress = flag.Duration("progress", 0,
			"emit a progress line to stderr at this interval (0 = off)")
		debugAddr = flag.String("debug-addr", "",
			"serve /debug/pprof, /debug/vars and /metrics on this address")
		metricsOut = flag.String("metrics-out", "",
			"write the final metrics snapshot (JSON) to this file")
	)
	flag.Parse()

	// Shard counts outside [1,63] are config errors: zero or negative
	// pipelines cannot carry a census, and beyond 63 the per-shard probe
	// floor (1/s) makes the aggregate rate wildly overshoot -rate.
	if *shards < 1 || *shards > 63 {
		return fmt.Errorf("-shards %d out of range: must be between 1 and 63", *shards)
	}

	mix, err := worldgen.ParseFaultMix(*faultMix)
	if err != nil {
		return err
	}

	// The empty flag keeps the benign world bit-identical to pre-service
	// seeds; "default" opts into the LZR-shaped mix without spelling it out.
	var svcMix worldgen.ServiceMix
	if *serviceMix != "" {
		if *serviceMix == "default" {
			svcMix = worldgen.DefaultServiceMix()
		} else if svcMix, err = worldgen.ParseServiceMix(*serviceMix); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	reg := obs.NewRegistry()

	// The dataset is persisted by streaming each record into the JSONL
	// file as its enumeration finishes — and unless another consumer
	// needs the retained slice (the notify builder does), the census
	// runs in streaming-only mode so listings never pile up in memory.
	var streamSink *dataset.WriterSink
	var streamTo dataset.Sink
	ran := false
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		streamSink = dataset.NewWriterSink(f)
		streamTo = streamSink
		// Until Run takes ownership of the sink chain, every early-error
		// return must flush/close the handle and clear the empty file it
		// would otherwise leave behind.
		defer func() {
			if ran {
				return
			}
			streamSink.Close()
			if streamSink.Count() == 0 {
				os.Remove(*out)
			}
		}()
	}
	retain := core.RetainNone
	if *notifyTo != "" {
		retain = core.RetainAll
	}

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, "ftpcensus", reg)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "ftpcensus: debug endpoints at http://%s/debug/pprof/ and /debug/vars\n", dbg.Addr())
	}
	if *metricsOut != "" {
		// Snapshot on every exit path — a truncated or failed run still
		// leaves its metrics behind for postmortem.
		defer func() {
			if err := writeSnapshot(reg, *metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "ftpcensus: metrics snapshot: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "ftpcensus: wrote metrics snapshot to %s\n", *metricsOut)
			}
		}()
	}

	sharded, err := core.NewShardedCensus(core.CensusConfig{
		Seed:            *seed,
		Scale:           *scale,
		EnumWorkers:     *workers,
		Retries:         *retries,
		LossRate:        *loss,
		RetainRecords:   retain,
		StreamTo:        streamTo,
		ServiceMix:      svcMix,
		Identify:        *identifyOn,
		IdentifyWait:    *identifyWait,
		IdentifyWorkers: *identifyWorkers,
		HostileRate:     *hostile,
		FaultMix:        mix,
		EnumTimeout:     *enumTimeout,
		EnumRetry:       enumerator.RetryPolicy{Attempts: *enumRetries},
		HostBudget:      *hostBudget,
		ByteBudget:      *byteBudget,
		Metrics:         reg,
	}, *shards)
	if err != nil {
		return err
	}
	census := sharded.Census
	shardNote := ""
	if sharded.Shards > 1 {
		shardNote = fmt.Sprintf(", %d shards", sharded.Shards)
	}
	fmt.Fprintf(os.Stderr, "ftpcensus: scanning %d addresses (scale 1:%d, seed %d%s)\n",
		census.World.ScanSize, *scale, *seed, shardNote)

	if *progress > 0 {
		rep := &obs.Reporter{Registry: reg, Interval: *progress, Format: censusProgress}
		stop := rep.Start(ctx)
		defer stop()
	}

	ran = true // Run owns the sink chain from here: it flushes and closes it.
	result, err := sharded.Run(ctx)
	if err != nil {
		return err
	}
	if result.Truncated {
		fmt.Fprintf(os.Stderr,
			"ftpcensus: *** TRUNCATED at %s — partial results below (%d records enumerated) ***\n",
			result.TruncatedBy, result.Observed)
	}
	fmt.Fprintf(os.Stderr, "ftpcensus: discovery %v (%d probed, %d responsive); enumeration %v (%d records)\n",
		result.ScanDuration.Round(time.Millisecond), result.Probed, result.Responded,
		result.EnumDuration.Round(time.Millisecond), result.Observed)

	if *identifyOn {
		snap := reg.Snapshot()
		fmt.Fprintf(os.Stderr, "ftpcensus: identification: %d dials, %d passed to enumeration, %d shed, %d errors\n",
			snap.Counters["identify.dials"], snap.Counters["identify.passed"],
			snap.Counters["identify.shed"], snap.Counters["identify.errors"])
	}

	if r := result.Robustness; r.Partial > 0 || len(r.Failures) > 0 || *hostile > 0 {
		fmt.Fprintf(os.Stderr,
			"ftpcensus: robustness: %d partial, %d terminated, %d truncated, %d dirs skipped, %d retries\n",
			r.Partial, r.Terminated, r.Truncated, r.SkippedDirs, r.Retries)
		if len(r.Failures) > 0 {
			classes := make([]string, 0, len(r.Failures))
			for c := range r.Failures {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			parts := make([]string, 0, len(classes))
			for _, c := range classes {
				parts = append(parts, fmt.Sprintf("%s=%d", c, r.Failures[c]))
			}
			fmt.Fprintf(os.Stderr, "ftpcensus: failure classes: %s\n", strings.Join(parts, " "))
		}
	}

	if streamSink != nil {
		// Run already flushed and closed the sink chain.
		fmt.Fprintf(os.Stderr, "ftpcensus: streamed %d records to %s\n", streamSink.Count(), *out)
	}

	if *snapshotOut != "" {
		if err := writeAggregateSnapshot(result, *snapshotOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ftpcensus: wrote aggregate snapshot to %s\n", *snapshotOut)
	}

	if *notifyTo != "" {
		f, err := os.Create(*notifyTo)
		if err != nil {
			return err
		}
		notices := notify.Build(result.Input)
		for i, n := range notices {
			if i > 0 {
				fmt.Fprintln(f, strings.Repeat("-", 72))
			}
			fmt.Fprintln(f, notify.Render(n))
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ftpcensus: wrote %d notices to %s\n", len(notices), *notifyTo)
	}

	tables := result.ComputeTables()

	if *csvTo != "" {
		if err := os.WriteFile(*csvTo, []byte(report.Figure1CSV(tables.ASConcentration)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ftpcensus: wrote Figure 1 series to %s\n", *csvTo)
	}

	if !*quiet {
		if result.Truncated {
			fmt.Printf("*** TRUNCATED at %s — partial ledger (%d records) ***\n\n",
				result.TruncatedBy, result.Observed)
		}
		// RenderFull is Render plus the unexpected-services ledger; on runs
		// without an identification stage the bytes are identical.
		fmt.Println(tables.RenderFull())
	}
	return nil
}

// censusProgress renders one progress line tuned to the census pipeline:
// probe rate, discovery yield, enumeration throughput, live worker load,
// per-shard progress when the census is sharded, and any failure classes
// that moved during the interval. The unprefixed counters are the merged
// view — shard counters feed them on every increment — so the headline
// numbers are identical between sharded and single-pipeline runs.
func censusProgress(w io.Writer, delta, cur obs.Snapshot, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	fmt.Fprintf(w, "progress: probed=%d (%.0f/s) responded=%d enumerated=%d (%.1f/s) inflight=%d",
		cur.Counters["zmap.probed"], float64(delta.Counters["zmap.probed"])/secs,
		cur.Counters["zmap.responded"],
		cur.Counters["census.observed"], float64(delta.Counters["census.observed"])/secs,
		cur.Gauges["enum.inflight"])

	// With the identification stage active, show the funnel's midsection:
	// how fast endpoints are being fingerprinted and how many were shed
	// before burning an enumeration slot.
	if cur.Counters["identify.dials"] > 0 {
		fmt.Fprintf(w, " identified=%d (%.1f/s) shed=%d",
			cur.Counters["identify.dials"], float64(delta.Counters["identify.dials"])/secs,
			cur.Counters["identify.shed"])
	}

	var shardCounts []string
	for name := range cur.Counters {
		if strings.HasPrefix(name, "shard") && strings.HasSuffix(name, ".census.observed") {
			shardCounts = append(shardCounts, fmt.Sprintf("%s=%d",
				strings.TrimSuffix(name, ".census.observed"), cur.Counters[name]))
		}
	}
	if len(shardCounts) > 0 {
		sort.Strings(shardCounts)
		fmt.Fprintf(w, " [%s]", strings.Join(shardCounts, " "))
	}

	var classes []string
	for name := range delta.Counters {
		if strings.HasPrefix(name, "census.failure.") && delta.Counters[name] > 0 {
			classes = append(classes, name)
		}
	}
	if len(classes) > 0 {
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, name := range classes {
			parts = append(parts, fmt.Sprintf("%s=+%d",
				strings.TrimPrefix(name, "census.failure."), delta.Counters[name]))
		}
		fmt.Fprintf(w, " failures: %s", strings.Join(parts, " "))
	}
	fmt.Fprintln(w)
}

// writeAggregateSnapshot persists the run's mergeable accumulator state —
// the checkpoint form a later run (or a longitudinal diff) can decode with
// analysis.DecodeSnapshot and merge into its own aggregate.
func writeAggregateSnapshot(result *core.Result, path string) error {
	snap := result.Snapshot()
	if snap == nil {
		return fmt.Errorf("no aggregate state to snapshot")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSnapshot(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
