// Certify example: run the §X "CyberUL" certification battery against a
// spectrum of simulated devices — from a hardened server to the
// anonymous-by-default, bounce-vulnerable consumer gear the paper found —
// and print each grade.
//
// Run with:
//
//	go run ./examples/certify
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ftpcloud/internal/certify"
	"ftpcloud/internal/certs"
	"ftpcloud/internal/enumerator"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// device describes one audit target.
type device struct {
	name string
	ip   simnet.IP
	cfg  ftpserver.Config
}

func main() {
	pool, err := certs.GeneratePool(9, []certs.Spec{
		{Name: "unique", CommonName: "nas-owner.example.org", SelfSigned: true},
		{Name: "fleet", CommonName: "QNAP NAS", SelfSigned: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	leakyFS := vfs.NewDir("/", vfs.Perm777)
	docs := leakyFS.Add(vfs.NewDir("Documents", vfs.Perm755))
	docs.Add(vfs.NewFile("passwords.kdbx", vfs.Perm644, 4096))
	docs.Add(vfs.NewFile("TurboTax-2014.txf", vfs.Perm644, 120_000))

	devices := []device{
		{
			name: "hardened file server (Serv-U 15.1, TLS, no anonymous)",
			ip:   simnet.MustParseIP("100.64.0.1"),
			cfg: ftpserver.Config{
				Pers: personality.ByKey(personality.KeyServU15),
				FS:   vfs.New(nil),
				Cert: pool.Get("unique"),
			},
		},
		{
			name: "consumer NAS with factory defaults (anonymous on, fleet cert)",
			ip:   simnet.MustParseIP("100.64.0.2"),
			cfg: ftpserver.Config{
				Pers:           personality.ByKey(personality.KeyQNAPNAS),
				FS:             vfs.New(leakyFS),
				AllowAnonymous: true,
				Cert:           pool.Get("fleet"),
				InternalIP:     simnet.MustParseIP("192.168.1.10"),
			},
		},
		{
			name: "shared-hosting account (home.pl stack: PORT unvalidated, writable)",
			ip:   simnet.MustParseIP("100.64.0.3"),
			cfg: ftpserver.Config{
				Pers:           personality.ByKey(personality.KeyHostedHomePL),
				FS:             vfs.New(nil),
				AllowAnonymous: true,
				AnonWritable:   true,
			},
		},
	}

	provider := simnet.NewStaticProvider()
	for i := range devices {
		devices[i].cfg.PublicIP = devices[i].ip
		srv, err := ftpserver.New(devices[i].cfg)
		if err != nil {
			log.Fatal(err)
		}
		provider.Add(devices[i].ip, 21, srv.SimHandler())
	}
	nw := simnet.NewNetwork(provider)
	collector, err := enumerator.NewSimCollector(nw, simnet.MustParseIP("250.0.255.1"), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer collector.Close()

	auditor := &certify.Auditor{
		Dialer:    simnet.Dialer{Net: nw, Src: simnet.MustParseIP("250.0.0.1")},
		Collector: collector,
		// The census observed the QNAP fleet certificate on ~57K devices.
		SharedFingerprints: map[string]int{
			fmt.Sprintf("%x", pool.Get("fleet").Fingerprint): 57655,
		},
		Timeout: 5 * time.Second,
	}

	for _, d := range devices {
		fmt.Printf("=== %s\n", d.name)
		report, err := auditor.Audit(context.Background(), d.ip.String())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(certify.Render(report))
		fmt.Println()
	}
}
