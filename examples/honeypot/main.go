// Honeypot example: reproduce §VIII by deploying eight anonymous,
// world-writable honeypots and releasing the calibrated attacker fleet
// (457 scanners, ~30% from one network, write probes, credential guessing,
// PORT bouncing, a CVE-2015-3306 probe, a Seagate root-login attempt).
//
// Run with:
//
//	go run ./examples/honeypot
package main

import (
	"context"
	"fmt"
	"log"

	"ftpcloud/internal/core"
	"ftpcloud/internal/report"
)

func main() {
	rep, err := core.HoneypotStudy(context.Background(), core.HoneypotStudyConfig{
		Seed:         2015,
		Honeypots:    8,
		Attackers:    457,
		Concentrated: 0.30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Honeypot(rep))

	fmt.Println("\nPaper §VIII for comparison:")
	fmt.Println("  457 unique IPs scanned; >30% from one AS; 85 spoke FTP;")
	fmt.Println("  16 traversed; 21 listed; >1,400 credential pairs;")
	fmt.Println("  8 PORT bounce attempts all at one target; 36 AUTH TLS;")
	fmt.Println("  1 CVE-2015-3306 attempt; 1 Seagate root-access attempt.")
}
