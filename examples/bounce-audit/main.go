// Bounce-audit example: sweep a simulated world for the classic FTP bounce
// vulnerability (§VII.B). For every anonymous server the enumerator sends a
// PORT command naming a collector we control and observes whether the
// server opens a data connection to that third party — the exact test the
// paper ran, safe here because every "victim" is simulated.
//
// Run with:
//
//	go run ./examples/bounce-audit [-scale 16384]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"ftpcloud/internal/core"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/report"
)

func main() {
	scale := flag.Int("scale", 16384, "world scale divisor")
	flag.Parse()

	census, err := core.NewCensus(core.CensusConfig{Seed: 7, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditing %d simulated addresses for PORT-bounce exposure...\n\n", census.World.ScanSize)
	result, err := census.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	tables := result.ComputeTables()
	fmt.Print(report.PortBounce(tables.PortBounce))

	// List a sample of vulnerable hosts with their implementations.
	fmt.Println("\nSample of vulnerable hosts:")
	shown := 0
	for _, rec := range result.Records {
		if rec.PortCheck != dataset.PortNotValidated {
			continue
		}
		c := result.Input.Classify(rec)
		software := c.Software
		if software == "" {
			software = "(unidentified)"
		}
		flags := ""
		if len(rec.WriteEvidence) > 0 {
			flags += " [writable: bounce-attack ready]"
		}
		if rec.PASVMismatch {
			flags += " [NAT: internal scan possible]"
		}
		fmt.Printf("  %-15s %-20s%s\n", rec.IP, software, flags)
		shown++
		if shown >= 15 {
			fmt.Printf("  ... and %d more\n", tables.PortBounce.NotValidated-shown)
			break
		}
	}
}
