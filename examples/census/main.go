// Census example: a fuller end-to-end run that regenerates every table and
// figure from the paper at a configurable scale, then compares the headline
// percentages against the paper's published values.
//
// Run with:
//
//	go run ./examples/census [-scale 8192]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"ftpcloud/internal/core"
)

// paperHeadline holds the published values the shape comparison targets.
var paperHeadline = []struct {
	name    string
	paper   float64
	measure func(core.Tables) float64
}{
	{"port 21 open (% of scanned)", 0.59, func(t core.Tables) float64 { return t.Funnel.PctOpen }},
	{"FTP of open (%)", 63.16, func(t core.Tables) float64 { return t.Funnel.PctFTP }},
	{"anonymous of FTP (%)", 8.15, func(t core.Tables) float64 { return t.Funnel.PctAnonymous }},
	{"FTPS support (% of FTP)", 25.0, func(t core.Tables) float64 { return t.FTPS.PctSupported }},
	{"self-signed (% of FTPS)", 50.0, func(t core.Tables) float64 { return t.FTPS.PctSelfSigned }},
	{"PORT unvalidated (% of anon)", 12.74, func(t core.Tables) float64 { return t.PortBounce.PctNotValidated }},
	{"home.pl share of PORT failures (%)", 71.5, func(t core.Tables) float64 { return t.PortBounce.HomePLShare }},
	{"ASes holding 50% of FTP servers", 78, func(t core.Tables) float64 { return float64(t.ASConcentration.ASesForHalfAll) }},
	{"ASes holding 50% of anonymous", 42, func(t core.Tables) float64 { return float64(t.ASConcentration.ASesForHalfAnon) }},
}

func main() {
	scale := flag.Int("scale", 8192, "world scale divisor")
	seed := flag.Uint64("seed", 42, "world seed")
	flag.Parse()

	census, err := core.NewCensus(core.CensusConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("census at scale 1:%d — scanning %d addresses\n\n", *scale, census.World.ScanSize)
	result, err := census.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	tables := result.ComputeTables()

	fmt.Println(tables.Render())
	fmt.Println("\nShape check against the paper:")
	fmt.Printf("  %-38s %10s %10s\n", "metric", "paper", "measured")
	for _, h := range paperHeadline {
		fmt.Printf("  %-38s %10.2f %10.2f\n", h.name, h.paper, h.measure(tables))
	}
}
