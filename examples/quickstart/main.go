// Quickstart: synthesize a small simulated Internet, discover its FTP
// servers with the ZMap-style scanner, enumerate each anonymously, and
// print the paper's Table I funnel.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ftpcloud/internal/core"
	"ftpcloud/internal/report"
)

func main() {
	// Scale 1:65536 shrinks the paper's 3.68B-address sweep to ~56K
	// addresses with a couple hundred FTP servers — a few seconds of
	// work on a laptop.
	census, err := core.NewCensus(core.CensusConfig{Seed: 42, Scale: 65536})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanning %d simulated addresses...\n", census.World.ScanSize)

	result, err := census.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	tables := result.ComputeTables()

	fmt.Println()
	fmt.Print(report.Funnel(tables.Funnel))
	fmt.Println()
	fmt.Print(report.Classification(tables.Classification))
	fmt.Println()
	fmt.Printf("Discovery took %v, enumeration %v.\n",
		result.ScanDuration.Round(1e6), result.EnumDuration.Round(1e6))
	fmt.Printf("Anonymous servers leaking any data: %d of %d.\n",
		tables.Exposure.ExposingServers, tables.Exposure.AnonServers)
}
