module ftpcloud

go 1.22
