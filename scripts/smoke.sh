#!/bin/sh
# Observability smoke test: run a small census with live progress enabled
# and a metrics snapshot, then verify the snapshot parses and carries the
# counters and latency histograms every stage is supposed to populate.
set -eu

cd "$(dirname "$0")/.."

snap="$(mktemp /tmp/ftpcensus-metrics.XXXXXX.json)"
trap 'rm -f "$snap"' EXIT

go run ./cmd/ftpcensus -scale 65536 -progress 1s -metrics-out "$snap" -quiet

go run ./scripts/checkmetrics "$snap"
echo "smoke: metrics snapshot OK"
