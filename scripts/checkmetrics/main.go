// Command checkmetrics validates a metrics snapshot written by
// -metrics-out: it must parse as an obs.Snapshot, carry non-zero pipeline
// counters, and include populated enumerator latency histograms. Used by
// scripts/smoke.sh.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"ftpcloud/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "checkmetrics: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) != 2 {
		return fmt.Errorf("usage: checkmetrics <snapshot.json>")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		return err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("parsing snapshot: %w", err)
	}
	if snap.Empty() {
		return fmt.Errorf("snapshot is empty")
	}
	for _, name := range []string{"zmap.probed", "zmap.responded", "census.observed", "enum.hosts"} {
		if snap.Counters[name] == 0 {
			return fmt.Errorf("counter %s missing or zero", name)
		}
	}
	if snap.Counters["census.observed"] != snap.Counters["enum.hosts"] {
		return fmt.Errorf("census.observed=%d disagrees with enum.hosts=%d",
			snap.Counters["census.observed"], snap.Counters["enum.hosts"])
	}
	for _, name := range []string{"enum.latency.dial", "enum.latency.banner", "enum.latency.list", "enum.host_seconds"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			return fmt.Errorf("histogram %s missing or empty", name)
		}
	}
	fmt.Printf("checkmetrics: %d counters, %d gauges, %d histograms; %d hosts enumerated\n",
		len(snap.Counters), len(snap.Gauges), len(snap.Histograms), snap.Counters["enum.hosts"])
	return nil
}
