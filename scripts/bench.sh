#!/usr/bin/env bash
# Runs the scan-path benchmarks with -benchmem and emits a JSON summary so
# each PR leaves a perf trajectory (BENCH_2.json, BENCH_3.json, ...).
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=2s scripts/bench.sh BENCH_3.json
#   BENCH='BenchmarkShardedCensus' BENCHTIME=1x scripts/bench.sh BENCH_6.json
#   PKG=./internal/ftpserver BENCH='BenchmarkServerConcurrentSessions|BenchmarkSessionCommands' \
#       BENCHTIME=20000x scripts/bench.sh BENCH_7.json
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_current.json}"
BENCHTIME="${BENCHTIME:-1s}"
PKG="${PKG:-.}"
BENCH="${BENCH:-BenchmarkProbeFanout|BenchmarkProbeClosedPort|BenchmarkComputeTables|BenchmarkSimnetThroughput\$|BenchmarkPipeline_FullCensus|BenchmarkCensusMemory}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -timeout 20m "$PKG" | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    iters = $2
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        else if ($(i+1) == "B/op") bytes = $i
        else if ($(i+1) == "allocs/op") allocs = $i
        else if ($(i+1) ~ /\//) {
            if (extra != "") extra = extra ", "
            extra = extra "\"" $(i+1) "\": " $i
        }
    }
    line = "    {\"name\": \"" name "\", \"iterations\": " iters
    if (ns != "")     line = line ", \"ns_per_op\": " ns
    if (bytes != "")  line = line ", \"bytes_per_op\": " bytes
    if (allocs != "") line = line ", \"allocs_per_op\": " allocs
    if (extra != "")  line = line ", " extra
    line = line "}"
    out[n++] = line
}
END {
    print "{"
    print "  \"benchtime\": \"" benchtime "\","
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", out[i], (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}
' "$RAW" > "$OUT"

echo "wrote $OUT"
