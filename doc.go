// Package ftpcloud reproduces "FTP: The Forgotten Cloud" (Springall,
// Durumeric, Halderman — DSN 2016): an Internet-scale measurement study of
// the FTP ecosystem, rebuilt as a Go library over a simulated IPv4 Internet.
//
// The library lives under internal/: worldgen synthesizes the ecosystem,
// zmap discovers hosts, enumerator crawls them, analysis regenerates every
// table and figure, and core wires the pipeline together. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured results.
// The benchmark harness in bench_test.go regenerates each experiment.
package ftpcloud
