// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus ablations for the design decisions DESIGN.md calls out.
//
// Each table benchmark runs over a shared census fixture (a full
// scan + enumerate at FTPCLOUD_BENCH_SCALE, default 1:8192) and prints its
// table once, so `go test -bench .` regenerates the paper's rows while
// measuring the analysis cost. BenchmarkPipeline_FullCensus times the
// entire pipeline end to end.
package ftpcloud

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/attacker"
	"ftpcloud/internal/core"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/enumerator"
	"ftpcloud/internal/fingerprint"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/honeypot"
	"ftpcloud/internal/identify"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/report"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
	"ftpcloud/internal/worldgen"
	"ftpcloud/internal/zmap"
)

// benchScale returns the fixture scale (1:N of the paper's Internet).
func benchScale() int {
	if s := os.Getenv("FTPCLOUD_BENCH_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return 8192
}

var (
	fixtureOnce   sync.Once
	fixtureCensus *core.Census
	fixtureResult *core.Result
	fixtureErr    error
)

// fixture runs the shared census once per process.
func fixture(b *testing.B) (*core.Census, *core.Result) {
	b.Helper()
	fixtureOnce.Do(func() {
		fixtureCensus, fixtureErr = core.NewCensus(core.CensusConfig{
			Seed:  42,
			Scale: benchScale(),
		})
		if fixtureErr != nil {
			return
		}
		fixtureResult, fixtureErr = fixtureCensus.Run(context.Background())
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixtureCensus, fixtureResult
}

// printOnce emits a table exactly once across all bench iterations.
var printedTables sync.Map

func printTable(name, body string) {
	if _, loaded := printedTables.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", body)
	}
}

// BenchmarkTableI_ScanFunnel regenerates Table I.
func BenchmarkTableI_ScanFunnel(b *testing.B) {
	_, res := fixture(b)
	var f analysis.Funnel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFunnel(res.Input)
	}
	b.ReportMetric(float64(f.FTPServers), "ftp-servers")
	b.ReportMetric(f.PctAnonymous, "pct-anon")
	printTable("table1", report.Funnel(f))
}

// BenchmarkTableII_Classification regenerates Table II.
func BenchmarkTableII_Classification(b *testing.B) {
	_, res := fixture(b)
	var c analysis.Classification
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c = analysis.ComputeClassification(res.Input)
	}
	b.ReportMetric(float64(c.TotalFTP), "classified")
	printTable("table2", report.Classification(c))
}

// BenchmarkTableIII_ASConcentration regenerates Table III.
func BenchmarkTableIII_ASConcentration(b *testing.B) {
	_, res := fixture(b)
	var a analysis.ASConcentration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a = analysis.ComputeASConcentration(res.Input)
	}
	b.ReportMetric(float64(a.ASesForHalfAll), "ases-for-half")
	printTable("table3", report.ASConcentration(a))
}

// BenchmarkTableV_ProviderDevices regenerates Tables IV and V.
func BenchmarkTableV_ProviderDevices(b *testing.B) {
	_, res := fixture(b)
	var d analysis.DeviceBreakdown
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = analysis.ComputeDevices(res.Input)
	}
	b.ReportMetric(float64(len(d.Provider)), "provider-models")
	printTable("table45_7", report.Devices(d))
}

// BenchmarkTableVI_TopASes regenerates Table VI.
func BenchmarkTableVI_TopASes(b *testing.B) {
	_, res := fixture(b)
	var rows []analysis.TopAS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.ComputeTopASes(res.Input, 10)
	}
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[0].AnonServers), "top-as-anon")
	}
	printTable("table6", report.TopASes(rows))
}

// BenchmarkTableVII_ConsumerDevices regenerates Table VII (shares the
// device computation but reports the consumer side).
func BenchmarkTableVII_ConsumerDevices(b *testing.B) {
	_, res := fixture(b)
	var d analysis.DeviceBreakdown
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = analysis.ComputeDevices(res.Input)
	}
	b.ReportMetric(float64(len(d.Consumer)), "consumer-models")
}

// BenchmarkTableVIII_Extensions regenerates Table VIII.
func BenchmarkTableVIII_Extensions(b *testing.B) {
	_, res := fixture(b)
	var e analysis.Exposure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e = analysis.ComputeExposure(res.Input)
	}
	b.ReportMetric(float64(len(e.Extensions)), "extensions")
	printTable("table8", report.Extensions(e, 10))
}

// BenchmarkTableIX_Sensitive regenerates Table IX.
func BenchmarkTableIX_Sensitive(b *testing.B) {
	_, res := fixture(b)
	var e analysis.Exposure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e = analysis.ComputeExposure(res.Input)
	}
	sensServers := 0
	for _, s := range e.Sensitive {
		sensServers += s.Servers
	}
	b.ReportMetric(float64(sensServers), "sensitive-server-rows")
	printTable("table9", report.Sensitive(e))
	printTable("section5", report.ExposureProse(e))
}

// BenchmarkTableX_ExposureByDevice regenerates Table X.
func BenchmarkTableX_ExposureByDevice(b *testing.B) {
	_, res := fixture(b)
	var x analysis.ExposureByDevice
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = analysis.ComputeExposureByDevice(res.Input)
	}
	b.ReportMetric(float64(x.Totals["All"]), "exposing-servers")
	printTable("table10", report.ExposureByDevice(x))
}

// BenchmarkTableXI_CVEs regenerates Table XI.
func BenchmarkTableXI_CVEs(b *testing.B) {
	_, res := fixture(b)
	var c analysis.CVEExposure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c = analysis.ComputeCVEs(res.Input)
	}
	b.ReportMetric(float64(c.VulnerableIPs), "vulnerable-ips")
	printTable("table11", report.CVEs(c))
}

// BenchmarkTableXII_FTPSCerts regenerates Tables XII and XIII plus §IX.
func BenchmarkTableXII_FTPSCerts(b *testing.B) {
	_, res := fixture(b)
	var f analysis.FTPS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFTPS(res.Input, 10)
	}
	b.ReportMetric(float64(f.UniqueCerts), "unique-certs")
	b.ReportMetric(f.PctSelfSigned, "pct-self-signed")
	printTable("table12_13", report.FTPS(f))
}

// BenchmarkTableXIII_SharedCerts isolates the Table XIII device-cert
// grouping on the same computation.
func BenchmarkTableXIII_SharedCerts(b *testing.B) {
	_, res := fixture(b)
	var f analysis.FTPS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFTPS(res.Input, 10)
	}
	b.ReportMetric(float64(len(f.DeviceCerts)), "device-cert-families")
}

// BenchmarkFigure1_ASCDF regenerates Figure 1.
func BenchmarkFigure1_ASCDF(b *testing.B) {
	_, res := fixture(b)
	var a analysis.ASConcentration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a = analysis.ComputeASConcentration(res.Input)
	}
	b.ReportMetric(float64(len(a.CDFAll)), "ases")
	printTable("figure1", report.Figure1(a))
}

// BenchmarkSectionVI_Malicious regenerates §VI.
func BenchmarkSectionVI_Malicious(b *testing.B) {
	_, res := fixture(b)
	var m analysis.Malicious
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = analysis.ComputeMalicious(res.Input)
	}
	b.ReportMetric(float64(m.WritableServers), "writable-servers")
	printTable("section6", report.Malicious(m))
}

// BenchmarkSectionVII_PortBounce regenerates §VII.B.
func BenchmarkSectionVII_PortBounce(b *testing.B) {
	_, res := fixture(b)
	var p analysis.PortBounce
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = analysis.ComputePortBounce(res.Input)
	}
	b.ReportMetric(p.PctNotValidated, "pct-unvalidated")
	b.ReportMetric(p.HomePLShare, "homepl-share")
	printTable("section7b", report.PortBounce(p))
}

// BenchmarkSectionVIII_Honeypot runs the §VIII study end to end per
// iteration (smaller fleet than the paper's for bench throughput).
func BenchmarkSectionVIII_Honeypot(b *testing.B) {
	var r honeypot.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = core.HoneypotStudy(context.Background(), core.HoneypotStudyConfig{
			Seed: uint64(i + 1), Honeypots: 8, Attackers: 120, Concentrated: 0.30,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Summary.UniqueScanners), "scanners")
	b.ReportMetric(float64(r.Summary.SpokeFTP), "spoke-ftp")
	printTable("section8", report.Honeypot(r))
}

// BenchmarkPipeline_FullCensus times the complete scan→enumerate pipeline.
func BenchmarkPipeline_FullCensus(b *testing.B) {
	scale := benchScale() * 8 // keep per-iteration cost modest
	for i := 0; i < b.N; i++ {
		census, err := core.NewCensus(core.CensusConfig{Seed: uint64(i + 1), Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		res, err := census.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Records)), "hosts")
	}
}

// BenchmarkShardedCensus sweeps the shard fan-out over one fixed workload.
// Realistic latency makes enumeration dial-latency-bound (as a real census
// is), so the speedup comes from shards overlapping their hosts' round
// trips — the scaling the paper's multi-machine deployment relied on.
// workers-1 is the single-pipeline baseline (ShardedCensus degrades to
// Census.Run); near-linear scaling to workers-4 is the acceptance bar.
func BenchmarkShardedCensus(b *testing.B) {
	scale := benchScale() * 8
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sharded, err := core.NewShardedCensus(core.CensusConfig{
					Seed:             42,
					Scale:            scale,
					ScanWorkers:      32,
					EnumWorkers:      8,
					RealisticLatency: true,
					RetainRecords:    core.RetainNone,
				}, workers)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sharded.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if res.Observed == 0 {
					b.Fatal("census observed no hosts")
				}
				b.ReportMetric(float64(res.Observed), "hosts")
			}
		})
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationLazyWorld compares lazy per-IP truth derivation against
// eager materialization of every host in the world.
func BenchmarkAblationLazyWorld(b *testing.B) {
	params := worldgen.DefaultParams(7, benchScale()*8)
	b.Run("lazy-truth-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := worldgen.New(params)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for off := uint64(0); off < w.ScanSize; off++ {
				if _, ok := w.Truth(simnet.IP(uint64(w.ScanBase) + off)); ok {
					n++
				}
			}
			b.ReportMetric(float64(n), "hosts")
		}
	})
	b.Run("eager-materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := worldgen.New(params)
			if err != nil {
				b.Fatal(err)
			}
			for off := uint64(0); off < w.ScanSize; off++ {
				w.Lookup(simnet.IP(uint64(w.ScanBase) + off))
			}
			b.ReportMetric(float64(w.MaterializedHosts()), "hosts")
		}
	})
}

// BenchmarkAblationPermutation compares the ZMap cyclic-group permutation
// against a linear sweep for the probe loop.
func BenchmarkAblationPermutation(b *testing.B) {
	const space = 1 << 20
	b.Run("cyclic-group", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			perm, err := zmap.NewPermutation(space, 42)
			if err != nil {
				b.Fatal(err)
			}
			var sum uint64
			for {
				v, ok := perm.Next()
				if !ok {
					break
				}
				sum += v
			}
			if sum != space*(space-1)/2 {
				b.Fatal("permutation incomplete")
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum uint64
			for v := uint64(0); v < space; v++ {
				sum += v
			}
			if sum != space*(space-1)/2 {
				b.Fatal("sweep incomplete")
			}
		}
	})
}

// BenchmarkAblationPipe compares the buffered simnet pipe against the
// stdlib's unbuffered net.Pipe for bulk transfer.
func BenchmarkAblationPipe(b *testing.B) {
	const payload = 1 << 20
	buf := make([]byte, 32<<10)
	run := func(b *testing.B, mk func() (net.Conn, net.Conn)) {
		b.SetBytes(payload)
		for i := 0; i < b.N; i++ {
			cw, cr := mk()
			go func() {
				chunk := make([]byte, 32<<10)
				total := 0
				for total < payload {
					n, err := cw.Write(chunk)
					total += n
					if err != nil {
						return
					}
				}
				cw.Close()
			}()
			total := 0
			for total < payload {
				n, err := cr.Read(buf)
				total += n
				if err != nil {
					break
				}
			}
			cr.Close()
		}
	}
	b.Run("simnet-buffered", func(b *testing.B) {
		run(b, func() (net.Conn, net.Conn) {
			a, c := simnet.NewConnPair(simnet.Addr{IP: 1, Port: 1}, simnet.Addr{IP: 2, Port: 2})
			return a, c
		})
	})
	b.Run("net-pipe-unbuffered", func(b *testing.B) {
		run(b, func() (net.Conn, net.Conn) { return net.Pipe() })
	})
}

// BenchmarkAblationTraversal compares capped BFS against an uncapped crawl
// of a deep tree.
func BenchmarkAblationTraversal(b *testing.B) {
	// One deep host: 30 × 20 directories.
	ip := simnet.MustParseIP("100.64.0.1")
	root := vfs.NewDir("/", vfs.Perm755)
	for i := 0; i < 30; i++ {
		branch := root.Add(vfs.NewDir(fmt.Sprintf("a%02d", i), vfs.Perm755))
		for j := 0; j < 20; j++ {
			leaf := branch.Add(vfs.NewDir(fmt.Sprintf("b%02d", j), vfs.Perm755))
			leaf.Add(vfs.NewFile("data.bin", vfs.Perm644, 10))
		}
	}
	srv, err := ftpserver.New(ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             vfs.New(root),
		PublicIP:       ip,
		AllowAnonymous: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(ip, 21, srv.SimHandler())
	nw := simnet.NewNetwork(provider)

	run := func(b *testing.B, cap int) {
		for i := 0; i < b.N; i++ {
			rec := enumerator.Enumerate(context.Background(), enumerator.Config{
				Dialer:     simnet.Dialer{Net: nw, Src: simnet.MustParseIP("250.0.0.1")},
				RequestCap: cap,
				Timeout:    10 * time.Second,
			}, ip.String())
			b.ReportMetric(float64(len(rec.Files)), "files")
			b.ReportMetric(float64(rec.RequestsUsed), "requests")
		}
	}
	b.Run("capped-500", func(b *testing.B) { run(b, 500) })
	b.Run("uncapped", func(b *testing.B) { run(b, 1<<20) })
}

// BenchmarkAblationMLSD compares traversal via classic LIST parsing against
// RFC 3659 MLSD machine-readable listings on the same host.
func BenchmarkAblationMLSD(b *testing.B) {
	ip := simnet.MustParseIP("100.64.0.4")
	root := vfs.NewDir("/", vfs.Perm755)
	for i := 0; i < 20; i++ {
		d := root.Add(vfs.NewDir(fmt.Sprintf("d%02d", i), vfs.Perm755))
		for j := 0; j < 25; j++ {
			d.Add(vfs.NewFile(fmt.Sprintf("f%03d.dat", j), vfs.Perm644, 1000))
		}
	}
	mk := func(persKey string) *simnet.Network {
		srv, err := ftpserver.New(ftpserver.Config{
			Pers:           personality.ByKey(persKey),
			FS:             vfs.New(root),
			PublicIP:       ip,
			AllowAnonymous: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		provider := simnet.NewStaticProvider()
		provider.Add(ip, 21, srv.SimHandler())
		return simnet.NewNetwork(provider)
	}
	run := func(b *testing.B, persKey string) {
		nw := mk(persKey)
		cfg := enumerator.Config{
			Dialer:  simnet.Dialer{Net: nw, Src: simnet.MustParseIP("250.0.0.1")},
			Timeout: 10 * time.Second,
		}
		for i := 0; i < b.N; i++ {
			rec := enumerator.Enumerate(context.Background(), cfg, ip.String())
			b.ReportMetric(float64(len(rec.Files)), "files")
		}
	}
	// ProFTPD 1.3.5 advertises MLST; 1.3.2 does not — same engine, same
	// tree, different listing path.
	b.Run("mlsd", func(b *testing.B) { run(b, personality.KeyProFTPD135) })
	b.Run("list", func(b *testing.B) { run(b, personality.KeyProFTPD132) })
}

// BenchmarkAblationConcurrency sweeps the enumerator fleet size.
func BenchmarkAblationConcurrency(b *testing.B) {
	census, err := core.NewCensus(core.CensusConfig{Seed: 11, Scale: benchScale() * 8})
	if err != nil {
		b.Fatal(err)
	}
	// Discover once.
	scanner, err := zmap.NewScanner(zmap.Config{
		Network: census.Network, Base: census.World.ScanBase,
		Size: census.World.ScanSize, Port: 21, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	discovered, err := scanner.Collect(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fleet := &enumerator.Fleet{
					Cfg:        enumerator.Config{Timeout: 10 * time.Second},
					Network:    census.Network,
					SourceBase: core.ScannerBase,
					Workers:    workers,
				}
				in := make(chan simnet.IP, len(discovered))
				for _, r := range discovered {
					in <- r.IP
				}
				close(in)
				out := make(chan *dataset.HostRecord, 256)
				done := make(chan int, 1)
				go func() {
					n := 0
					for range out {
						n++
					}
					done <- n
				}()
				fleet.Run(context.Background(), in, out)
				b.ReportMetric(float64(<-done), "hosts")
			}
		})
	}
}

// BenchmarkEnumerateSingleHost measures one full host enumeration.
func BenchmarkEnumerateSingleHost(b *testing.B) {
	ip := simnet.MustParseIP("100.64.0.2")
	root := vfs.NewDir("/", vfs.Perm755)
	pub := root.Add(vfs.NewDir("pub", vfs.Perm755))
	for i := 0; i < 50; i++ {
		pub.Add(vfs.NewFile(fmt.Sprintf("f%03d.dat", i), vfs.Perm644, 1000))
	}
	srv, err := ftpserver.New(ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             vfs.New(root),
		PublicIP:       ip,
		AllowAnonymous: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(ip, 21, srv.SimHandler())
	nw := simnet.NewNetwork(provider)
	cfg := enumerator.Config{
		Dialer:  simnet.Dialer{Net: nw, Src: simnet.MustParseIP("250.0.0.1")},
		Timeout: 10 * time.Second,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := enumerator.Enumerate(context.Background(), cfg, ip.String())
		if !rec.AnonymousOK {
			b.Fatal("login failed")
		}
	}
}

// BenchmarkProbeFanout measures the discovery fast path: raw Network.Probe
// throughput against the world provider at increasing worker counts, the
// shape of the scanner's inner loop. Loss is enabled so the deterministic
// drop check is part of the measured path.
func BenchmarkProbeFanout(b *testing.B) {
	w, err := worldgen.New(worldgen.DefaultParams(42, benchScale()))
	if err != nil {
		b.Fatal(err)
	}
	nw := simnet.NewNetwork(w)
	nw.LossRate = 0.03
	nw.LossSeed = 42
	space := w.ScanSize
	base := uint64(w.ScanBase)
	for _, workers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N/workers + 1
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					off := (uint64(wk) * 0x9e3779b9) % space
					for i := 0; i < per; i++ {
						nw.Probe(simnet.IP(base+off), 21, 0)
						off++
						if off >= space {
							off = 0
						}
					}
				}(wk)
			}
			wg.Wait()
		})
	}
}

// BenchmarkProbeClosedPort isolates the closed-port probe path, the outcome
// of the overwhelming majority of a census's 3.68B probes.
func BenchmarkProbeClosedPort(b *testing.B) {
	w, err := worldgen.New(worldgen.DefaultParams(42, benchScale()))
	if err != nil {
		b.Fatal(err)
	}
	nw := simnet.NewNetwork(w)
	nw.LossRate = 0.03
	nw.LossSeed = 42
	space := w.ScanSize
	base := uint64(w.ScanBase)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Port 2121 is closed on every simulated host.
		nw.Probe(simnet.IP(base+uint64(i)%space), 2121, 0)
	}
}

// BenchmarkComputeTables measures the full analysis stage over the shared
// census fixture. The census already folded every record into the streaming
// accumulators, so iterations measure the finalize step alone — the cost
// that remains on the critical path after a run.
func BenchmarkComputeTables(b *testing.B) {
	_, res := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := res.ComputeTables()
		if tables.Funnel.FTPServers == 0 {
			b.Fatal("empty tables")
		}
	}
}

// BenchmarkCensusMemory contrasts the live heap a finished census pins in
// the two retention modes. Each iteration builds a world, runs the census,
// releases the world, forces a GC, and reports the surviving heap bytes per
// observed host: in retained mode the Result pins every record and listing;
// in streaming mode only the accumulator state survives.
func BenchmarkCensusMemory(b *testing.B) {
	// settle runs the collector twice so floating garbage from earlier
	// benchmarks (the shared census fixture, finalizer chains) cannot
	// skew a baseline read.
	settle := func(ms *runtime.MemStats) {
		runtime.GC()
		runtime.GC()
		runtime.ReadMemStats(ms)
	}
	run := func(b *testing.B, retain core.Retention) {
		var perHost float64
		for i := 0; i < b.N; i++ {
			var before, after runtime.MemStats
			settle(&before)

			census, err := core.NewCensus(core.CensusConfig{
				Seed:          42,
				Scale:         benchScale(),
				RetainRecords: retain,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := census.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if res.Observed == 0 {
				b.Fatal("census observed no hosts")
			}

			// Drop the world; what survives the GC is what the Result pins.
			census = nil //nolint:ineffassign // releases the world for the GC below
			settle(&after)

			live := int64(after.HeapAlloc) - int64(before.HeapAlloc)
			if live < 0 {
				live = 0
			}
			perHost = float64(live) / float64(res.Observed)
			runtime.KeepAlive(res)
		}
		b.ReportMetric(perHost, "live-B/host")
	}
	b.Run("retained", func(b *testing.B) { run(b, core.RetainAll) })
	b.Run("streaming", func(b *testing.B) { run(b, core.RetainNone) })
}

// --- Staged discovery funnel ----------------------------------------------

// mixedBenchWorld builds the identification fixture: a world with the
// default LZR-shaped service mix on port 21, its network, and one
// representative endpoint per ground-truth class ("ftp" plus the service
// classes actually drawn at this scale).
func mixedBenchWorld(b *testing.B) (*simnet.Network, map[string]simnet.IP) {
	b.Helper()
	params := worldgen.DefaultParams(11, benchScale())
	params.ServiceMix = worldgen.DefaultServiceMix()
	w, err := worldgen.New(params)
	if err != nil {
		b.Fatal(err)
	}
	reps := make(map[string]simnet.IP)
	base := uint64(w.ScanBase)
	for off := uint64(0); off < w.ScanSize; off++ {
		ip := simnet.IP(base + off)
		truth, ok := w.Truth(ip)
		if !ok {
			continue
		}
		var key string
		switch {
		case truth.FTP:
			key = "ftp"
		case truth.NonFTPOpen:
			key = truth.Service.String()
		default:
			continue
		}
		if _, seen := reps[key]; !seen {
			reps[key] = ip
		}
	}
	return simnet.NewNetwork(w), reps
}

// BenchmarkIdentifyRoundTrip measures one identification round-trip per
// service class — the entire cost the funnel pays to dispose of an endpoint.
// Server-first protocols (ftp, ssh, telnet, garbage) resolve on their banner
// alone; client-first ones (http, tls) and silent hosts pay the banner wait
// before the trigger buys the deciding bytes.
func BenchmarkIdentifyRoundTrip(b *testing.B) {
	nw, reps := mixedBenchWorld(b)
	cfg := identify.Config{
		Dialer:     simnet.Dialer{Net: nw, Src: core.IdentifyBase},
		BannerWait: 50 * time.Millisecond,
	}
	for _, class := range []string{"ftp", "ssh", "http", "tls", "silent"} {
		ip, ok := reps[class]
		if !ok {
			continue // class not drawn at this scale
		}
		b.Run(class, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := identify.Identify(context.Background(), cfg, ip.String())
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				if class == "ftp" && res.Protocol != fingerprint.ProtoFTP {
					b.Fatalf("FTP endpoint sniffed as %q", res.Protocol)
				}
			}
		})
	}
}

// BenchmarkShedVsEnumerate prices the funnel's trade on one non-FTP
// endpoint: shedding it with an identification round-trip versus burning the
// full enumeration attempt the legacy two-stage pipeline paid. Both paths
// get the same per-operation timeout, so the difference is round-trips and
// protocol machinery, not budget.
func BenchmarkShedVsEnumerate(b *testing.B) {
	nw, reps := mixedBenchWorld(b)
	// HTTP is the funnel's worst case: client-first, so identification
	// waits out the full banner window before the trigger resolves it.
	ip, ok := reps["http"]
	if !ok {
		b.Skip("no http service host drawn at this scale")
	}
	const budget = 200 * time.Millisecond
	src := core.IdentifyBase
	b.Run("identify-shed", func(b *testing.B) {
		cfg := identify.Config{Dialer: simnet.Dialer{Net: nw, Src: src}, BannerWait: budget}
		for i := 0; i < b.N; i++ {
			res := identify.Identify(context.Background(), cfg, ip.String())
			if res.Protocol != fingerprint.ProtoHTTP {
				b.Fatalf("http endpoint sniffed as %q", res.Protocol)
			}
		}
	})
	b.Run("enumerate-burn", func(b *testing.B) {
		cfg := enumerator.Config{Dialer: simnet.Dialer{Net: nw, Src: src}, Timeout: budget}
		for i := 0; i < b.N; i++ {
			rec := enumerator.Enumerate(context.Background(), cfg, ip.String())
			if rec.FTP {
				b.Fatal("service host misread as FTP")
			}
		}
	})
}

// BenchmarkMixedCensus runs the full census over a mixed world with the
// legacy two-stage pipeline and with the staged funnel. The funnel's gain is
// every enumeration slot it never burns on a service host; its cost is one
// extra round-trip on every true FTP endpoint.
func BenchmarkMixedCensus(b *testing.B) {
	run := func(b *testing.B, on bool) {
		census, err := core.NewCensus(core.CensusConfig{
			Seed:         11,
			Scale:        benchScale() * 8,
			ServiceMix:   worldgen.DefaultServiceMix(),
			Identify:     on,
			IdentifyWait: 100 * time.Millisecond,
			EnumTimeout:  500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := census.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Observed), "hosts")
			if on {
				b.ReportMetric(float64(res.ComputeTables().Unexpected.Total), "shed")
			}
		}
	}
	b.Run("two-stage-legacy", func(b *testing.B) { run(b, false) })
	b.Run("staged-funnel", func(b *testing.B) { run(b, true) })
}

// BenchmarkSimnetThroughput measures raw connection throughput.
func BenchmarkSimnetThroughput(b *testing.B) {
	provider := simnet.NewStaticProvider()
	ip := simnet.MustParseIP("100.64.0.3")
	provider.Add(ip, 9, simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		io.Copy(conn, conn)
	}))
	nw := simnet.NewNetwork(provider)
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := nw.DialFrom(1, ip, 9)
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			conn.Write(payload)
		}()
		buf := make([]byte, 64<<10)
		total := 0
		for total < len(payload) {
			n, err := conn.Read(buf)
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
		conn.Close()
	}
}

// --- Honeypot fleet at scale ----------------------------------------------

// honeypotFleetSessions returns the campaign budget for the fleet-scale
// benchmark (default one million sessions; FTPCLOUD_BENCH_SESSIONS scales
// it down for quick runs).
func honeypotFleetSessions() int64 {
	if s := os.Getenv("FTPCLOUD_BENCH_SESSIONS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n >= 1 {
			return n
		}
	}
	return 1_000_000
}

// BenchmarkHoneypotFleetMemory proves the streamed study's memory claim:
// 100 differentiated honeypots absorb a million-session attacker campaign
// while live heap stays bounded by the population, not the session count.
// Each iteration deploys the fleet, runs the campaign, finalizes the
// streamed report, releases the world, and reports the surviving heap bytes
// per session — the buffered Log path would pin hundreds of bytes per
// event; the accumulator's live-B/session must stay fractional.
func BenchmarkHoneypotFleetMemory(b *testing.B) {
	const honeypots = 100
	const bots = 5000
	sessions := honeypotFleetSessions()
	settle := func(ms *runtime.MemStats) {
		runtime.GC()
		runtime.GC()
		runtime.ReadMemStats(ms)
	}
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		settle(&before)

		provider := simnet.NewStaticProvider()
		acc := honeypot.NewAccumulator()
		dep, err := honeypot.DeployFleet(provider, honeypot.FleetConfig{
			Base:  core.HoneypotBase,
			Count: honeypots,
			Seed:  uint64(i + 1),
			Acc:   acc,
			Now:   honeypot.SimClock(time.Unix(1_450_000_000, 0), time.Millisecond),
		})
		if err != nil {
			b.Fatal(err)
		}
		fleet := &attacker.Fleet{
			Network:      simnet.NewNetwork(provider),
			Bots:         attacker.DefaultMix(bots, uint64(i+1), 0.30),
			Targets:      dep.IPs,
			BounceTarget: ftp.HostPort{IP: [4]byte{203, 0, 113, 66}, Port: 9999},
			Sessions:     sessions,
			Concurrency:  256,
		}
		stats := fleet.Run(context.Background())
		if int64(stats.Sessions) != sessions {
			b.Fatalf("campaign ran %d sessions, want %d", stats.Sessions, sessions)
		}
		rep := acc.Report()
		if rep.Summary.UniqueScanners == 0 {
			b.Fatal("fleet observed no scanners")
		}

		// Drop the world; what survives the GC is the accumulator state.
		provider, dep, fleet = nil, nil, nil //nolint:ineffassign // releases the world for the GC below
		settle(&after)

		live := int64(after.HeapAlloc) - int64(before.HeapAlloc)
		if live < 0 {
			live = 0
		}
		b.ReportMetric(float64(live)/float64(stats.Sessions), "live-B/session")
		b.ReportMetric(float64(live), "live-B")
		b.ReportMetric(float64(stats.Sessions), "sessions")
		runtime.KeepAlive(rep)
		runtime.KeepAlive(acc)
	}
}
