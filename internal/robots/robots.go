// Package robots implements a fetch-side parser and matcher for the Robots
// Exclusion Standard, following Google's specification as the paper's
// enumerator does: grouping by User-agent, Allow/Disallow rules with `*`
// wildcards and `$` end anchors, and longest-match precedence with Allow
// winning ties.
package robots

import (
	"strings"
)

// Rule is a single Allow or Disallow directive.
type Rule struct {
	Allow   bool
	Pattern string
}

// group is the rule set for one set of user agents.
type group struct {
	agents []string // lower-cased User-agent values, "*" for wildcard
	rules  []Rule
}

// Rules is a parsed robots.txt file.
type Rules struct {
	groups []group
}

// Parse parses robots.txt content. Parsing is forgiving: unknown directives,
// comments, and malformed lines are ignored, as crawlers must tolerate the
// wild variety of robots files.
func Parse(content string) *Rules {
	r := &Rules{}
	var cur *group
	// Consecutive User-agent lines accumulate onto one group until a rule
	// appears; a User-agent after rules starts a new group.
	sawRule := false
	for _, raw := range strings.Split(content, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		field := strings.ToLower(strings.TrimSpace(line[:colon]))
		value := strings.TrimSpace(line[colon+1:])
		switch field {
		case "user-agent":
			if cur == nil || sawRule {
				r.groups = append(r.groups, group{})
				cur = &r.groups[len(r.groups)-1]
				sawRule = false
			}
			cur.agents = append(cur.agents, strings.ToLower(value))
		case "allow", "disallow":
			if cur == nil {
				// Rules before any User-agent line apply to everyone.
				r.groups = append(r.groups, group{agents: []string{"*"}})
				cur = &r.groups[len(r.groups)-1]
			}
			sawRule = true
			// An empty Disallow means "allow everything" — representable
			// as no rule at all.
			if value == "" {
				continue
			}
			cur.rules = append(cur.rules, Rule{Allow: field == "allow", Pattern: value})
		default:
			// Crawl-delay, Sitemap, etc.: ignored.
		}
	}
	return r
}

// groupFor selects the most specific matching group for a user agent:
// longest agent-token substring match wins; the "*" group is the fallback.
func (r *Rules) groupFor(userAgent string) *group {
	ua := strings.ToLower(userAgent)
	var best *group
	bestLen := -1
	for i := range r.groups {
		g := &r.groups[i]
		for _, a := range g.agents {
			switch {
			case a == "*":
				if bestLen < 0 {
					best = g
					bestLen = 0
				}
			case strings.Contains(ua, a) && len(a) > bestLen:
				best = g
				bestLen = len(a)
			}
		}
	}
	return best
}

// Allowed reports whether the user agent may fetch path. With no matching
// group or no matching rule, access is allowed.
func (r *Rules) Allowed(userAgent, path string) bool {
	g := r.groupFor(userAgent)
	if g == nil {
		return true
	}
	if path == "" {
		path = "/"
	}
	var (
		bestLen   = -1
		bestAllow = true
	)
	for _, rule := range g.rules {
		if !patternMatches(rule.Pattern, path) {
			continue
		}
		specificity := len(rule.Pattern)
		if specificity > bestLen || (specificity == bestLen && rule.Allow && !bestAllow) {
			bestLen = specificity
			bestAllow = rule.Allow
		}
	}
	if bestLen < 0 {
		return true
	}
	return bestAllow
}

// ExcludesAll reports whether the user agent is barred from the entire
// tree — the "Disallow: /" case the paper found on 5.9K servers.
func (r *Rules) ExcludesAll(userAgent string) bool {
	return !r.Allowed(userAgent, "/")
}

// patternMatches implements Google's robots pattern semantics: patterns are
// path prefixes, `*` matches any byte run, and a trailing `$` anchors the
// match at the path's end.
func patternMatches(pattern, path string) bool {
	anchored := strings.HasSuffix(pattern, "$")
	if anchored {
		pattern = pattern[:len(pattern)-1]
	}
	return wildcardMatch(pattern, path, anchored)
}

// wildcardMatch matches pattern (with `*` wildcards) against a prefix of
// path, or the whole path when anchored.
func wildcardMatch(pattern, path string, anchored bool) bool {
	// Dynamic-programming walk over pattern segments split on '*'.
	segs := strings.Split(pattern, "*")
	pos := 0
	for i, seg := range segs {
		if seg == "" {
			continue
		}
		if i == 0 {
			// First segment must match at the very start.
			if !strings.HasPrefix(path, seg) {
				return false
			}
			pos = len(seg)
			continue
		}
		idx := strings.Index(path[pos:], seg)
		if idx < 0 {
			return false
		}
		pos += idx + len(seg)
	}
	if anchored {
		// If the pattern ends with '*', anything remaining is fine.
		if strings.HasSuffix(pattern, "*") {
			return true
		}
		return pos == len(path)
	}
	return true
}
