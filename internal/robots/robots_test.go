package robots

import (
	"strings"
	"testing"
	"testing/quick"
)

const crawler = "ftp-enumerator"

func TestDisallowAll(t *testing.T) {
	r := Parse("User-agent: *\nDisallow: /\n")
	if r.Allowed(crawler, "/") {
		t.Error("root should be disallowed")
	}
	if r.Allowed(crawler, "/pub/file.txt") {
		t.Error("everything should be disallowed")
	}
	if !r.ExcludesAll(crawler) {
		t.Error("ExcludesAll should be true")
	}
}

func TestEmptyAndPermissive(t *testing.T) {
	for _, content := range []string{
		"",
		"# just a comment\n",
		"User-agent: *\nDisallow:\n", // empty Disallow = allow all
		"Sitemap: http://x/sitemap.xml\n",
	} {
		r := Parse(content)
		if !r.Allowed(crawler, "/anything") {
			t.Errorf("content %q should allow", content)
		}
		if r.ExcludesAll(crawler) {
			t.Errorf("content %q should not exclude all", content)
		}
	}
}

func TestPathPrefix(t *testing.T) {
	r := Parse("User-agent: *\nDisallow: /private\n")
	if r.Allowed(crawler, "/private") || r.Allowed(crawler, "/private/sub/f.txt") {
		t.Error("/private subtree should be blocked")
	}
	// Prefix semantics: /privateer is also blocked (per spec).
	if r.Allowed(crawler, "/privateer") {
		t.Error("prefix match should block /privateer")
	}
	if !r.Allowed(crawler, "/public") {
		t.Error("/public should be allowed")
	}
}

func TestAllowOverridesDisallowByLength(t *testing.T) {
	r := Parse(strings.Join([]string{
		"User-agent: *",
		"Disallow: /pub",
		"Allow: /pub/open",
	}, "\n"))
	if r.Allowed(crawler, "/pub/closed") {
		t.Error("/pub/closed should be blocked")
	}
	if !r.Allowed(crawler, "/pub/open/file") {
		t.Error("longer Allow should win")
	}
}

func TestAllowWinsTies(t *testing.T) {
	r := Parse("User-agent: *\nDisallow: /dir\nAllow: /dir\n")
	if !r.Allowed(crawler, "/dir/x") {
		t.Error("equal-length Allow should win the tie")
	}
}

func TestWildcards(t *testing.T) {
	r := Parse("User-agent: *\nDisallow: /*.php\n")
	if r.Allowed(crawler, "/index.php") {
		t.Error("*.php should be blocked")
	}
	if r.Allowed(crawler, "/a/b/script.php.bak") {
		t.Error("unanchored pattern blocks longer paths too")
	}
	if !r.Allowed(crawler, "/index.html") {
		t.Error("html should pass")
	}
}

func TestDollarAnchor(t *testing.T) {
	r := Parse("User-agent: *\nDisallow: /*.php$\n")
	if r.Allowed(crawler, "/index.php") {
		t.Error("anchored *.php$ should block /index.php")
	}
	if !r.Allowed(crawler, "/index.php.bak") {
		t.Error("anchored pattern should not block longer path")
	}
	r2 := Parse("User-agent: *\nDisallow: /tmp*$\n")
	if r2.Allowed(crawler, "/tmpanything") {
		t.Error("trailing-star anchored should block")
	}
}

func TestAgentSelection(t *testing.T) {
	content := strings.Join([]string{
		"User-agent: googlebot",
		"Disallow: /google-only",
		"",
		"User-agent: ftp-enumerator",
		"Disallow: /enum-only",
		"",
		"User-agent: *",
		"Disallow: /everyone",
	}, "\n")
	r := Parse(content)
	if r.Allowed("ftp-enumerator/1.0", "/enum-only") {
		t.Error("specific group should apply")
	}
	if !r.Allowed("ftp-enumerator/1.0", "/google-only") {
		t.Error("other bot's group should not apply")
	}
	// Per Google spec, only the most specific group applies — the generic
	// group is ignored once a named group matches.
	if !r.Allowed("ftp-enumerator/1.0", "/everyone") {
		t.Error("generic group should be ignored for named agent")
	}
	if r.Allowed("randombot", "/everyone") {
		t.Error("wildcard group should apply to unknown agents")
	}
}

func TestMultipleAgentsOneGroup(t *testing.T) {
	content := strings.Join([]string{
		"User-agent: alpha",
		"User-agent: beta",
		"Disallow: /shared",
	}, "\n")
	r := Parse(content)
	if r.Allowed("alpha", "/shared") || r.Allowed("beta", "/shared/x") {
		t.Error("both agents should be blocked")
	}
	if r.Allowed("gamma", "/shared") == false {
		t.Error("gamma has no group and should be allowed")
	}
}

func TestRulesBeforeAgentApplyToAll(t *testing.T) {
	r := Parse("Disallow: /orphan\n")
	if r.Allowed(crawler, "/orphan/x") {
		t.Error("orphan rules should apply to everyone")
	}
}

func TestCommentsAndJunk(t *testing.T) {
	content := strings.Join([]string{
		"# preamble",
		"User-agent: * # inline comment",
		"Disallow: /secret # hidden",
		"NotADirective here",
		"justtext",
		"Crawl-delay: 10",
	}, "\n")
	r := Parse(content)
	if r.Allowed(crawler, "/secret/f") {
		t.Error("comment handling broke the Disallow")
	}
}

func TestCRLFContent(t *testing.T) {
	r := Parse("User-agent: *\r\nDisallow: /x\r\n")
	if r.Allowed(crawler, "/x") {
		t.Error("CRLF content should parse")
	}
}

// Property: for any pattern drawn from realistic shapes, a disallowed path
// never becomes allowed by appending more path segments (unanchored
// patterns are prefix-monotone).
func TestPrefixMonotoneProperty(t *testing.T) {
	f := func(pick uint8, suffix uint8) bool {
		patterns := []string{"/a", "/pub", "/private/x", "/*.php", "/a*b"}
		p := patterns[int(pick)%len(patterns)]
		r := Parse("User-agent: *\nDisallow: " + p + "\n")
		base := strings.ReplaceAll(strings.TrimSuffix(p, "$"), "*", "Q")
		if r.Allowed(crawler, base) {
			return true // pattern didn't match its own literalization; fine
		}
		ext := base + "/more" + strings.Repeat("x", int(suffix)%5)
		return !r.Allowed(crawler, ext)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWildcardMatchEdges(t *testing.T) {
	tests := []struct {
		pattern, path string
		anchored      bool
		want          bool
	}{
		{"", "/x", false, true},
		{"/", "/", false, true},
		{"/a*c", "/abc", false, true},
		{"/a*c", "/ac", false, true},
		{"/a*c", "/ab", false, false},
		{"/a", "/a", true, true},
		{"/a", "/ab", true, false},
		{"**", "/anything", false, true},
	}
	for _, tt := range tests {
		if got := wildcardMatch(tt.pattern, tt.path, tt.anchored); got != tt.want {
			t.Errorf("wildcardMatch(%q,%q,%v) = %v, want %v",
				tt.pattern, tt.path, tt.anchored, got, tt.want)
		}
	}
}
