package simnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// FaultProfile describes the misbehaviour injected into one connection. The
// zero value injects nothing. Profiles model the hostile tail of a real scan
// — LZR-style unexpected services, consumer gear behind lossy links, and
// actively adversarial servers — so the enumerator can be exercised against
// every failure class the paper's crawler survived.
type FaultProfile struct {
	// ConnectLatency delays connection establishment (applied in DialFrom
	// before the connection is built, in addition to Network.Latency).
	ConnectLatency time.Duration

	// DripBytes caps the bytes delivered per Read and DripDelay is imposed
	// before each Read — together they model a slow-drip sender that keeps
	// the connection alive while starving the reader.
	DripBytes int
	DripDelay time.Duration

	// ResetAfterBytes tears the connection down mid-session: once this many
	// bytes have been read by the faulted endpoint, reads fail with a
	// connection-reset error and the underlying connection closes.
	ResetAfterBytes int64

	// StallAfterBytes freezes the stream: after this many bytes, reads
	// block — delivering nothing — until the read deadline expires or the
	// connection is closed. Models a stalled data channel whose peer
	// neither sends nor closes.
	StallAfterBytes int64

	// CloseAfterBytes ends the stream early but cleanly: after this many
	// bytes, reads return io.EOF — a premature EOF mid-reply.
	CloseAfterBytes int64
}

// active reports whether the profile needs a connection wrapper (connect
// latency alone is applied at dial time and needs none).
func (p *FaultProfile) active() bool {
	return p.DripBytes > 0 || p.DripDelay > 0 || p.ResetAfterBytes > 0 ||
		p.StallAfterBytes > 0 || p.CloseAfterBytes > 0
}

// FaultInjector assigns fault profiles per connection. FaultFor is consulted
// on every DialFrom; returning nil leaves the connection clean. It must be
// safe for concurrent use and deterministic if runs are to reproduce.
type FaultInjector interface {
	FaultFor(src, dst IP, port uint16) *FaultProfile
}

// errConnReset mirrors ECONNRESET. Its message deliberately contains
// "connection reset" so transport-agnostic classifiers treat simulated and
// real resets identically.
var errConnReset = errors.New("simnet: connection reset by peer")

// ErrReset reports whether err represents a mid-session connection reset.
func ErrReset(err error) bool { return errors.Is(err, errConnReset) }

// faultPoll is the granularity at which a stalled read re-checks its
// deadline; stalls are test-scale (tens to hundreds of ms), so a fine poll
// keeps chaos suites fast without a condvar per wrapper.
const faultPoll = 5 * time.Millisecond

// faultConn wraps one endpooint of a connection and applies a FaultProfile to
// its read side. Writes pass through untouched (a reset closes the underlying
// connection, so subsequent writes fail naturally).
type faultConn struct {
	inner net.Conn
	prof  FaultProfile

	mu       sync.Mutex
	consumed int64 // bytes delivered to the reader
	deadline time.Time
	closed   bool
	reset    bool
}

// wrapFault applies prof to conn's read side.
func wrapFault(conn net.Conn, prof *FaultProfile) net.Conn {
	return &faultConn{inner: conn, prof: *prof}
}

func (c *faultConn) Read(p []byte) (int, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return 0, net.ErrClosed
		}
		if c.reset {
			c.mu.Unlock()
			return 0, errConnReset
		}
		if c.prof.ResetAfterBytes > 0 && c.consumed >= c.prof.ResetAfterBytes {
			c.reset = true
			c.mu.Unlock()
			c.inner.Close()
			return 0, errConnReset
		}
		if c.prof.CloseAfterBytes > 0 && c.consumed >= c.prof.CloseAfterBytes {
			c.mu.Unlock()
			c.inner.Close()
			return 0, io.EOF
		}
		stalled := c.prof.StallAfterBytes > 0 && c.consumed >= c.prof.StallAfterBytes
		c.mu.Unlock()
		if !stalled {
			break
		}
		// Stalled: deliver nothing until the deadline fires or the
		// connection is torn down, then re-check (Close may race).
		if err := c.waitStalled(); err != nil {
			return 0, err
		}
	}

	if c.prof.DripDelay > 0 {
		if err := c.sleepDrip(); err != nil {
			return 0, err
		}
	}

	// Cap the chunk so byte-count thresholds trigger exactly at their
	// boundary instead of being overshot by a large read.
	max := len(p)
	if c.prof.DripBytes > 0 && max > c.prof.DripBytes {
		max = c.prof.DripBytes
	}
	c.mu.Lock()
	for _, threshold := range []int64{c.prof.ResetAfterBytes, c.prof.StallAfterBytes, c.prof.CloseAfterBytes} {
		if threshold > 0 {
			if left := threshold - c.consumed; left > 0 && int64(max) > left {
				max = int(left)
			}
		}
	}
	c.mu.Unlock()
	if max <= 0 {
		max = 1
	}

	n, err := c.inner.Read(p[:max])
	c.mu.Lock()
	c.consumed += int64(n)
	c.mu.Unlock()
	return n, err
}

// waitStalled blocks until the read deadline expires (timeout error), the
// wrapper is closed, or — because deadlines can be re-armed concurrently —
// the state changes; it polls rather than carrying condvar machinery.
func (c *faultConn) waitStalled() error {
	for {
		c.mu.Lock()
		closed := c.closed
		dl := c.deadline
		c.mu.Unlock()
		if closed {
			return net.ErrClosed
		}
		if !dl.IsZero() && !time.Now().Before(dl) {
			return timeoutError{}
		}
		sleep := faultPoll
		if !dl.IsZero() {
			if until := time.Until(dl); until < sleep {
				sleep = until
			}
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
	}
}

// sleepDrip imposes the per-read drip delay, clipped to the read deadline.
func (c *faultConn) sleepDrip() error {
	c.mu.Lock()
	dl := c.deadline
	c.mu.Unlock()
	delay := c.prof.DripDelay
	if !dl.IsZero() {
		if until := time.Until(dl); until <= 0 {
			return timeoutError{}
		} else if until < delay {
			time.Sleep(until)
			return timeoutError{}
		}
	}
	time.Sleep(delay)
	return nil
}

func (c *faultConn) Write(p []byte) (int, error) { return c.inner.Write(p) }

func (c *faultConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.inner.Close()
}

func (c *faultConn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *faultConn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

func (c *faultConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	return c.inner.SetWriteDeadline(t)
}
