package simnet

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoHost is a test HostProvider serving an echo service on one port.
type echoHost struct {
	ip   IP
	port uint16
}

func (e *echoHost) Lookup(ip IP) Host {
	if ip != e.ip {
		return nil
	}
	return e
}

func (e *echoHost) Listening(port uint16) bool { return port == e.port }

func (e *echoHost) Handler(port uint16) Handler {
	if port != e.port {
		return nil
	}
	return HandlerFunc(func(_ *Network, conn net.Conn) {
		defer conn.Close()
		io.Copy(conn, conn)
	})
}

func TestDialProviderHost(t *testing.T) {
	host := &echoHost{ip: MustParseIP("5.6.7.8"), port: 21}
	nw := NewNetwork(host)
	conn, err := nw.DialFrom(MustParseIP("1.1.1.1"), host.ip, 21)
	if err != nil {
		t.Fatalf("DialFrom: %v", err)
	}
	defer conn.Close()
	msg := []byte("hello simnet\r\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q, want %q", got, msg)
	}
}

func TestDialRefused(t *testing.T) {
	nw := NewNetwork(nil)
	if _, err := nw.DialFrom(1, 2, 21); !ErrRefused(err) {
		t.Fatalf("want refused, got %v", err)
	}
	host := &echoHost{ip: 100, port: 21}
	nw.SetProvider(host)
	if _, err := nw.DialFrom(1, 100, 22); !ErrRefused(err) {
		t.Fatalf("wrong port: want refused, got %v", err)
	}
	if _, err := nw.DialFrom(1, 101, 21); !ErrRefused(err) {
		t.Fatalf("wrong ip: want refused, got %v", err)
	}
}

func TestExplicitListener(t *testing.T) {
	nw := NewNetwork(nil)
	ip := MustParseIP("9.9.9.9")
	l, err := nw.Listen(ip, 2100)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		conn.Write([]byte("hi"))
		conn.Close()
	}()
	conn, err := nw.DialFrom(MustParseIP("1.2.3.4"), ip, 2100)
	if err != nil {
		t.Fatalf("DialFrom: %v", err)
	}
	buf, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(buf) != "hi" {
		t.Errorf("got %q", buf)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := nw.DialFrom(MustParseIP("1.2.3.4"), ip, 2100); !ErrRefused(err) {
		t.Fatalf("after close: want refused, got %v", err)
	}
}

func TestListenEphemeralPort(t *testing.T) {
	nw := NewNetwork(nil)
	ip := MustParseIP("9.9.9.9")
	l1, err := nw.Listen(ip, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := nw.Listen(ip, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	a1 := l1.Addr().(Addr)
	a2 := l2.Addr().(Addr)
	if a1.Port == 0 || a2.Port == 0 || a1.Port == a2.Port {
		t.Errorf("ephemeral ports: %d, %d", a1.Port, a2.Port)
	}
}

func TestListenConflict(t *testing.T) {
	nw := NewNetwork(nil)
	ip := MustParseIP("9.9.9.9")
	l, err := nw.Listen(ip, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := nw.Listen(ip, 21); err == nil {
		t.Fatal("duplicate Listen succeeded")
	}
}

func TestProbe(t *testing.T) {
	host := &echoHost{ip: 500, port: 21}
	nw := NewNetwork(host)
	if !nw.Probe(500, 21, 0) {
		t.Error("Probe open port = false")
	}
	if nw.Probe(500, 80, 0) {
		t.Error("Probe closed port = true")
	}
	if nw.Probe(501, 21, 0) {
		t.Error("Probe absent host = true")
	}
	if got := nw.Stats.Probes.Load(); got != 3 {
		t.Errorf("probe count = %d", got)
	}
	if got := nw.Stats.ProbesOpen.Load(); got != 1 {
		t.Errorf("open count = %d", got)
	}
}

func TestProbeLossDeterministic(t *testing.T) {
	host := &echoHost{ip: 500, port: 21}
	nw := NewNetwork(host)
	nw.LossRate = 0.5
	nw.LossSeed = 42
	// Same (ip,port,attempt) must give the same outcome every time.
	first := nw.Probe(500, 21, 0)
	for i := 0; i < 10; i++ {
		if nw.Probe(500, 21, 0) != first {
			t.Fatal("loss not deterministic")
		}
	}
	// With 50% loss, across many attempts some succeed and some drop.
	drops, oks := 0, 0
	for attempt := 0; attempt < 200; attempt++ {
		if nw.Probe(500, 21, attempt) {
			oks++
		} else {
			drops++
		}
	}
	if drops == 0 || oks == 0 {
		t.Errorf("loss rate 0.5: drops=%d oks=%d", drops, oks)
	}
}

func TestLatencyApplied(t *testing.T) {
	host := &echoHost{ip: 500, port: 21}
	nw := NewNetwork(host)
	nw.Latency = func(src, dst IP) time.Duration { return 30 * time.Millisecond }
	start := time.Now()
	conn, err := nw.DialFrom(1, 500, 21)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("latency not applied: dial took %v", elapsed)
	}
}

func TestDialerInterface(t *testing.T) {
	host := &echoHost{ip: MustParseIP("5.5.5.5"), port: 21}
	nw := NewNetwork(host)
	d := Dialer{Net: nw, Src: MustParseIP("1.1.1.1")}
	conn, err := d.Dial("tcp", "5.5.5.5:21")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	conn.Close()
	if _, err := d.Dial("udp", "5.5.5.5:21"); err == nil {
		t.Error("udp Dial succeeded, want error")
	}
	if _, err := d.Dial("tcp", "not-an-addr"); err == nil {
		t.Error("bad addr Dial succeeded, want error")
	}
}

func TestConnDeadlines(t *testing.T) {
	a, b := NewConnPair(Addr{IP: 1, Port: 1000}, Addr{IP: 2, Port: 21})
	defer a.Close()
	defer b.Close()

	a.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := a.Read(buf)
	var nerr net.Error
	if err == nil {
		t.Fatal("read succeeded, want timeout")
	}
	if ok := asNetError(err, &nerr); !ok || !nerr.Timeout() {
		t.Fatalf("want net.Error timeout, got %v", err)
	}

	// Clearing the deadline allows subsequent reads.
	a.SetReadDeadline(time.Time{})
	go b.Write([]byte("x"))
	if _, err := a.Read(buf); err != nil {
		t.Fatalf("read after deadline clear: %v", err)
	}
}

func asNetError(err error, target *net.Error) bool {
	ne, ok := err.(net.Error)
	if ok {
		*target = ne
	}
	return ok
}

func TestConnCloseSemantics(t *testing.T) {
	a, b := NewConnPair(Addr{IP: 1, Port: 1}, Addr{IP: 2, Port: 2})
	a.Write([]byte("tail"))
	a.Close()
	// Peer drains buffered data, then sees EOF.
	buf, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("ReadAll after close: %v", err)
	}
	if string(buf) != "tail" {
		t.Errorf("drained %q", buf)
	}
	// Writes to a closed peer fail.
	if _, err := b.Write([]byte("x")); err == nil {
		t.Error("write to closed peer succeeded")
	}
	// Double close is safe.
	if err := a.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestConnLargeTransfer(t *testing.T) {
	a, b := NewConnPair(Addr{IP: 1, Port: 1}, Addr{IP: 2, Port: 2})
	defer b.Close()
	payload := bytes.Repeat([]byte("0123456789abcdef"), 64*1024) // 1 MiB > buffer
	go func() {
		a.Write(payload)
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("large transfer corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestConnAddrs(t *testing.T) {
	la := Addr{IP: MustParseIP("1.2.3.4"), Port: 40000}
	ra := Addr{IP: MustParseIP("5.6.7.8"), Port: 21}
	a, b := NewConnPair(la, ra)
	defer a.Close()
	defer b.Close()
	if a.LocalAddr().String() != "1.2.3.4:40000" || a.RemoteAddr().String() != "5.6.7.8:21" {
		t.Errorf("client addrs: %v / %v", a.LocalAddr(), a.RemoteAddr())
	}
	if b.LocalAddr().String() != "5.6.7.8:21" || b.RemoteAddr().String() != "1.2.3.4:40000" {
		t.Errorf("server addrs: %v / %v", b.LocalAddr(), b.RemoteAddr())
	}
}

// panicHost is a provider whose handler always panics.
type panicHost struct{ ip IP }

func (p *panicHost) Lookup(ip IP) Host {
	if ip != p.ip {
		return nil
	}
	return p
}
func (p *panicHost) Listening(port uint16) bool { return port == 21 }
func (p *panicHost) Handler(uint16) Handler {
	return HandlerFunc(func(_ *Network, _ net.Conn) { panic("simulated host crash") })
}

// TestHandlerPanicIsolated: a crashing host resets its connection instead of
// taking down the process.
func TestHandlerPanicIsolated(t *testing.T) {
	nw := NewNetwork(&panicHost{ip: 700})
	conn, err := nw.DialFrom(1, 700, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("read from crashed host succeeded")
	}
	// Wait for the panic counter (the serve goroutine races the read).
	deadline := time.Now().Add(2 * time.Second)
	for nw.Stats.HandlerPanics.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if nw.Stats.HandlerPanics.Load() != 1 {
		t.Errorf("panics recorded = %d", nw.Stats.HandlerPanics.Load())
	}
}

// TestNetworkConcurrencyChaos hammers the probe fast path, full dials, and
// listener churn from many goroutines at once. Run under -race (the tier-1
// Makefile does) it proves the atomic-snapshot listener table and the
// lock-free probe path are actually safe, not just fast.
func TestNetworkConcurrencyChaos(t *testing.T) {
	provider := NewStaticProvider()
	const hostCount = 8
	for i := 0; i < hostCount; i++ {
		provider.Add(IP(100+i), 21, HandlerFunc(func(_ *Network, conn net.Conn) {
			defer conn.Close()
			io.Copy(conn, conn)
		}))
	}
	nw := NewNetwork(provider)
	nw.LossRate = 0.1
	nw.LossSeed = 7

	var wg sync.WaitGroup

	// Probers sweep open and closed addresses and ports.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				nw.Probe(IP(90+(i+g)%20), uint16(21+i%3), i)
			}
		}(g)
	}

	// Dialers build full connections and exchange a payload.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				conn, err := nw.DialFrom(IP(5000+g), IP(100+i%hostCount), 21)
				if err != nil {
					t.Errorf("DialFrom: %v", err)
					return
				}
				conn.Write([]byte("ping"))
				buf := make([]byte, 4)
				if _, err := io.ReadFull(conn, buf); err != nil {
					t.Errorf("ReadFull: %v", err)
				}
				conn.Close()
			}
		}(g)
	}

	// Listener churn: bind ephemeral listeners and close them while
	// probes and dials read the snapshot.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l, err := nw.Listen(IP(9000+g), 0)
				if err != nil {
					t.Errorf("Listen: %v", err)
					return
				}
				nw.Probe(IP(9000+g), l.Addr().(Addr).Port, 0)
				l.Close()
			}
		}(g)
	}

	// Provider swaps interleave with every read path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			nw.SetProvider(provider)
		}
	}()

	wg.Wait()
	if got := nw.Stats.Dials.Load(); got != 400 {
		t.Errorf("dials = %d, want 400", got)
	}
}

// TestProbeFastPathUsed: a provider implementing PortScanner answers probes
// through PortOpen, and the probe path never calls Lookup.
func TestProbeFastPathUsed(t *testing.T) {
	p := &countingScanner{open: 700}
	nw := NewNetwork(p)
	if !nw.Probe(700, 21, 0) {
		t.Error("probe of open host = false")
	}
	if nw.Probe(701, 21, 0) {
		t.Error("probe of absent host = true")
	}
	if p.portOpens == 0 {
		t.Error("PortOpen fast path not consulted")
	}
	if p.lookups != 0 {
		t.Errorf("Probe called Lookup %d times, want 0", p.lookups)
	}
	// A full dial still materializes through Lookup.
	if _, err := nw.DialFrom(1, 700, 21); err != nil {
		t.Fatalf("DialFrom: %v", err)
	}
	if p.lookups != 1 {
		t.Errorf("DialFrom lookups = %d, want 1", p.lookups)
	}
}

// countingScanner is a HostProvider+PortScanner counting which path ran.
type countingScanner struct {
	open      IP
	lookups   int
	portOpens int
}

func (c *countingScanner) PortOpen(ip IP, port uint16) bool {
	c.portOpens++
	return ip == c.open && port == 21
}

func (c *countingScanner) Lookup(ip IP) Host {
	c.lookups++
	if ip != c.open {
		return nil
	}
	return &echoHost{ip: c.open, port: 21}
}

func TestDroppedUsesFullSeed(t *testing.T) {
	// Two seeds differing only in the high 32 bits must produce different
	// loss patterns (the seed's upper half used to be ignored).
	a := NewNetwork(nil)
	a.LossRate = 0.5
	a.LossSeed = 1
	b := NewNetwork(nil)
	b.LossRate = 0.5
	b.LossSeed = 1 | (1 << 40)
	same := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		if a.dropped(IP(i), 21, 0) == b.dropped(IP(i), 21, 0) {
			same++
		}
	}
	if same == trials {
		t.Error("high seed bits do not affect loss decisions")
	}
}

func TestConcurrentDials(t *testing.T) {
	host := &echoHost{ip: 500, port: 21}
	nw := NewNetwork(host)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(src IP) {
			defer wg.Done()
			conn, err := nw.DialFrom(src, 500, 21)
			if err != nil {
				t.Errorf("DialFrom: %v", err)
				return
			}
			defer conn.Close()
			conn.Write([]byte("ping"))
			buf := make([]byte, 4)
			if _, err := io.ReadFull(conn, buf); err != nil {
				t.Errorf("ReadFull: %v", err)
			}
		}(IP(1000 + i))
	}
	wg.Wait()
	if got := nw.Stats.Dials.Load(); got != 50 {
		t.Errorf("dials = %d, want 50", got)
	}
}
