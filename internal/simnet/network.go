package simnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ftpcloud/internal/obs"
)

// Handler serves one accepted connection on a provider-backed host.
// Implementations receive the network so they can originate connections of
// their own (FTP active mode dials the client back; PORT bouncing dials
// third parties).
type Handler interface {
	ServeConn(nw *Network, conn net.Conn)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(nw *Network, conn net.Conn)

// ServeConn implements Handler.
func (f HandlerFunc) ServeConn(nw *Network, conn net.Conn) { f(nw, conn) }

// Host describes a provider-backed host's listening surface.
type Host interface {
	// Listening reports whether the TCP port accepts connections.
	Listening(port uint16) bool
	// Handler returns the connection handler for an open port, or nil.
	Handler(port uint16) Handler
}

// HostProvider materializes hosts on demand. Lookup must be safe for
// concurrent use; it is only consulted when a full connection is built
// (DialFrom), so it may do real work — allocate a filesystem, start a
// server. Returning nil means no host answers at that address.
type HostProvider interface {
	Lookup(ip IP) Host
}

// PortScanner is the probe fast path: providers that can answer "would
// dst:port accept a connection?" from ground truth — without materializing
// the host — implement it alongside HostProvider. Probe consults PortOpen
// instead of Lookup, so a scan over billions of closed addresses never
// builds a host. PortOpen must be safe for concurrent use, must not block,
// and must agree with what Lookup would report.
type PortScanner interface {
	PortOpen(ip IP, port uint16) bool
}

// Stats counts network-level activity; useful in benches and ablations.
// The fields are obs counters so the same numbers double as registry-backed
// metrics: a network built with NewNetwork gets standalone counters, and
// BindMetrics rebinds them into a Registry under simnet.* names.
type Stats struct {
	Probes      *obs.Counter // SYN-probe fast-path checks
	ProbesOpen  *obs.Counter // probes that found an open port
	Dials       *obs.Counter // full connections established
	DialsFailed *obs.Counter
	Accepts     *obs.Counter // connections delivered to explicit listeners
	// HandlerPanics counts provider handlers that crashed; their
	// connections are reset rather than propagating the panic.
	HandlerPanics *obs.Counter
	// FaultedDials counts connections that received a fault profile.
	FaultedDials *obs.Counter
}

// newStats binds the counter set; a nil registry yields standalone counters.
func newStats(reg *obs.Registry) Stats {
	return Stats{
		Probes:        reg.Counter("simnet.probes"),
		ProbesOpen:    reg.Counter("simnet.probes_open"),
		Dials:         reg.Counter("simnet.dials"),
		DialsFailed:   reg.Counter("simnet.dials_failed"),
		Accepts:       reg.Counter("simnet.accepts"),
		HandlerPanics: reg.Counter("simnet.handler_panics"),
		FaultedDials:  reg.Counter("simnet.faulted_dials"),
	}
}

// providerBox pairs a provider with its pre-asserted fast-path interface so
// the per-probe path never repeats the type assertion.
type providerBox struct {
	host HostProvider
	scan PortScanner // nil when host does not implement PortScanner
}

// Network is the simulated Internet: a provider for the ambient host
// population plus explicitly registered listeners for measurement
// infrastructure (scan collectors, honeypots).
//
// The probe and dial paths are contention-free: they read atomic snapshots
// of the listener table and provider, never a lock. Mutations (Listen,
// Listener.Close, SetProvider) copy-on-write the snapshot under mu.
type Network struct {
	mu        sync.Mutex // serializes snapshot mutations only
	listeners atomic.Pointer[map[Addr]*Listener]
	provider  atomic.Pointer[providerBox]

	// Latency, when set, returns the connection-setup delay between two
	// addresses. Zero/nil means instantaneous setup.
	Latency func(src, dst IP) time.Duration
	// LossRate is the probability in [0,1) that a SYN probe is dropped;
	// drops are deterministic per (ip, port, attempt) so runs reproduce.
	LossRate float64
	// LossSeed derandomizes packet loss across worlds.
	LossSeed uint64
	// Faults, when set, assigns per-connection fault profiles (hostile
	// servers, lossy paths). Set before traffic flows, like Latency.
	Faults FaultInjector

	ephemeral sync.Map // IP -> *uint32 ephemeral port counter

	Stats Stats
}

// NewNetwork builds an empty network backed by an optional provider.
func NewNetwork(provider HostProvider) *Network {
	nw := &Network{Stats: newStats(nil)}
	empty := make(map[Addr]*Listener)
	nw.listeners.Store(&empty)
	nw.storeProvider(provider)
	return nw
}

// BindMetrics rebinds the network's counters into reg under simnet.* names.
// Like Latency and Faults, it must be set before traffic flows; counts
// accumulated on the previous counters are not carried over.
func (nw *Network) BindMetrics(reg *obs.Registry) {
	nw.Stats = newStats(reg)
}

// SetProvider replaces the ambient host provider.
func (nw *Network) SetProvider(p HostProvider) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.storeProvider(p)
}

func (nw *Network) storeProvider(p HostProvider) {
	box := &providerBox{host: p}
	box.scan, _ = p.(PortScanner)
	nw.provider.Store(box)
}

// errRefused mirrors ECONNREFUSED.
var errRefused = errors.New("simnet: connection refused")

// ErrRefused reports whether err represents a refused connection.
func ErrRefused(err error) bool { return errors.Is(err, errRefused) }

// Listener is an explicit listening socket, used by measurement
// infrastructure. It implements net.Listener.
type Listener struct {
	nw     *Network
	addr   Addr
	accept chan *Conn
	done   chan struct{}
	once   sync.Once
}

var _ net.Listener = (*Listener)(nil)

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		l.nw.Stats.Accepts.Add(1)
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close unregisters the listener.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		nw := l.nw
		nw.mu.Lock()
		next := make(map[Addr]*Listener, len(*nw.listeners.Load()))
		for a, lis := range *nw.listeners.Load() {
			if a != l.addr {
				next[a] = lis
			}
		}
		nw.listeners.Store(&next)
		nw.mu.Unlock()
	})
	return nil
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Listen binds an explicit listener. Port 0 picks an ephemeral port.
func (nw *Network) Listen(ip IP, port uint16) (*Listener, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	cur := *nw.listeners.Load()
	if port == 0 {
		for {
			port = nw.nextEphemeral(ip)
			if _, taken := cur[Addr{IP: ip, Port: port}]; !taken {
				break
			}
		}
	}
	addr := Addr{IP: ip, Port: port}
	if _, taken := cur[addr]; taken {
		return nil, fmt.Errorf("simnet: address %s already in use", addr)
	}
	l := &Listener{
		nw:     nw,
		addr:   addr,
		accept: make(chan *Conn, 16),
		done:   make(chan struct{}),
	}
	next := make(map[Addr]*Listener, len(cur)+1)
	for a, lis := range cur {
		next[a] = lis
	}
	next[addr] = l
	nw.listeners.Store(&next)
	return l, nil
}

// nextEphemeral assigns a source port for an outbound connection.
func (nw *Network) nextEphemeral(ip IP) uint16 {
	v, _ := nw.ephemeral.LoadOrStore(ip, new(uint32))
	ctr := v.(*uint32)
	// Ephemeral range 32768-60999, Linux-style.
	n := atomic.AddUint32(ctr, 1)
	return uint16(32768 + n%28232)
}

// Probe is the SYN-scan fast path: it reports whether dst:port would accept
// a connection, without building one. Deterministic loss is applied so
// scanners observe realistic miss rates. The closed-port path performs no
// allocation and takes no lock.
func (nw *Network) Probe(dst IP, port uint16, attempt int) bool {
	nw.Stats.Probes.Add(1)
	if nw.LossRate > 0 && nw.dropped(dst, port, attempt) {
		return false
	}
	open := nw.portOpen(dst, port)
	if open {
		nw.Stats.ProbesOpen.Add(1)
	}
	return open
}

// dropped decides deterministic probe loss with an inline splitmix64-style
// mix. The full 64-bit LossSeed and the disjoint (ip, port, attempt) bit
// fields all participate; attempts beyond 2^16 alias, far above any
// realistic retry count.
func (nw *Network) dropped(dst IP, port uint16, attempt int) bool {
	x := nw.LossSeed ^ (uint64(dst)<<32 | uint64(port)<<16 | uint64(uint16(attempt)))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x%1_000_000)/1_000_000 < nw.LossRate
}

func (nw *Network) portOpen(dst IP, port uint16) bool {
	if m := *nw.listeners.Load(); len(m) != 0 {
		if _, ok := m[Addr{IP: dst, Port: port}]; ok {
			return true
		}
	}
	box := nw.provider.Load()
	if box.scan != nil {
		return box.scan.PortOpen(dst, port)
	}
	if box.host == nil {
		return false
	}
	host := box.host.Lookup(dst)
	return host != nil && host.Listening(port)
}

// DialFrom establishes a connection from src to dst:port. The source port
// is chosen from the ephemeral range.
func (nw *Network) DialFrom(src IP, dst IP, port uint16) (net.Conn, error) {
	if nw.Latency != nil {
		if d := nw.Latency(src, dst); d > 0 {
			time.Sleep(d)
		}
	}
	var fault *FaultProfile
	if nw.Faults != nil {
		if fault = nw.Faults.FaultFor(src, dst, port); fault != nil {
			nw.Stats.FaultedDials.Add(1)
			if fault.ConnectLatency > 0 {
				time.Sleep(fault.ConnectLatency)
			}
			if !fault.active() {
				fault = nil
			}
		}
	}
	local := Addr{IP: src, Port: nw.nextEphemeral(src)}
	remote := Addr{IP: dst, Port: port}

	if l, explicit := (*nw.listeners.Load())[remote]; explicit {
		clientEnd, serverEnd := NewConnPair(local, remote)
		select {
		case l.accept <- serverEnd:
			nw.Stats.Dials.Add(1)
			return faulted(clientEnd, fault), nil
		case <-l.done:
			nw.Stats.DialsFailed.Add(1)
			return nil, errRefused
		}
	}

	if provider := nw.provider.Load().host; provider != nil {
		if host := provider.Lookup(dst); host != nil && host.Listening(port) {
			handler := host.Handler(port)
			if handler == nil {
				nw.Stats.DialsFailed.Add(1)
				return nil, errRefused
			}
			clientEnd, serverEnd := NewConnPair(local, remote)
			nw.Stats.Dials.Add(1)
			go serveIsolated(nw, handler, serverEnd)
			return faulted(clientEnd, fault), nil
		}
	}
	nw.Stats.DialsFailed.Add(1)
	return nil, errRefused
}

// faulted wraps the client end of a new connection when a profile applies.
func faulted(conn net.Conn, fault *FaultProfile) net.Conn {
	if fault == nil {
		return conn
	}
	return wrapFault(conn, fault)
}

// serveIsolated runs a host handler with panic isolation: one misbehaving
// simulated host must not bring down a million-address census. The panic is
// recorded and the connection reset, which is how a crashed real server
// looks from the wire.
func serveIsolated(nw *Network, handler Handler, conn *Conn) {
	defer func() {
		if r := recover(); r != nil {
			nw.Stats.HandlerPanics.Add(1)
			conn.Close()
		}
	}()
	handler.ServeConn(nw, conn)
}

// Dial parses an "ip:port" destination and connects from src.
func (nw *Network) Dial(src IP, dest string) (net.Conn, error) {
	addr, err := ParseAddr(dest)
	if err != nil {
		return nil, err
	}
	return nw.DialFrom(src, addr.IP, addr.Port)
}

// Dialer binds a source address, yielding the net.Dialer-shaped interface
// the enumerator consumes so it can also run over real TCP.
type Dialer struct {
	Net *Network
	Src IP
}

// Dial connects to "ip:port"; the network argument is accepted for
// signature compatibility and must be "tcp" or "sim-tcp".
func (d Dialer) Dial(network, address string) (net.Conn, error) {
	if network != "tcp" && network != "sim-tcp" {
		return nil, fmt.Errorf("simnet: unsupported network %q", network)
	}
	return d.Net.Dial(d.Src, address)
}
