package simnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// pipeBufSize is the per-direction buffer capacity. Buffering (unlike
// net.Pipe's rendezvous semantics) lets a writer run ahead of a slow reader,
// which is how kernel TCP behaves and what keeps thousands of concurrent
// simulated sessions cheap. See BenchmarkAblationPipe for the measured gap.
const pipeBufSize = 64 * 1024

// ErrTimeout is returned (wrapped in net.OpError-compatible form) when a
// deadline expires.
var ErrTimeout = errors.New("simnet: i/o timeout")

// timeoutError adapts ErrTimeout to the net.Error interface expected by
// callers that check Timeout().
type timeoutError struct{}

func (timeoutError) Error() string   { return "simnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// halfPipe is one direction of a duplex connection: a bounded byte queue
// with blocking reads/writes, close semantics, and deadline support.
type halfPipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte // ring-free: simple slice queue, compacted on read
	closed bool   // write side closed: reads drain then EOF, writes fail

	readDeadline  deadline
	writeDeadline deadline
}

func newHalfPipe() *halfPipe {
	h := &halfPipe{}
	h.cond = sync.NewCond(&h.mu)
	h.readDeadline.wake = h.cond.Broadcast
	h.writeDeadline.wake = h.cond.Broadcast
	return h
}

// deadline manages a single settable deadline; when it fires it wakes
// blocked goroutines so they can observe expiry.
type deadline struct {
	t     time.Time
	timer *time.Timer
	wake  func()
}

func (d *deadline) set(t time.Time) {
	if d.timer != nil {
		d.timer.Stop()
		d.timer = nil
	}
	d.t = t
	if t.IsZero() {
		return
	}
	dur := time.Until(t)
	if dur <= 0 {
		d.wake()
		return
	}
	d.timer = time.AfterFunc(dur, d.wake)
}

// stop cancels a pending timer without clearing the deadline itself.
// Called on close: a stopped timer is released from the runtime timer heap
// immediately, instead of pinning the pipe (via the wake closure) until the
// deadline would have fired.
func (d *deadline) stop() {
	if d.timer != nil {
		d.timer.Stop()
		d.timer = nil
	}
}

func (d *deadline) expired() bool {
	return !d.t.IsZero() && !time.Now().Before(d.t)
}

func (h *halfPipe) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for len(p) > 0 {
		switch {
		case h.closed:
			return total, io.ErrClosedPipe
		case h.writeDeadline.expired():
			return total, timeoutError{}
		case len(h.buf) < pipeBufSize:
			n := pipeBufSize - len(h.buf)
			if n > len(p) {
				n = len(p)
			}
			h.buf = append(h.buf, p[:n]...)
			p = p[n:]
			total += n
			h.cond.Broadcast()
		default:
			h.cond.Wait()
		}
	}
	return total, nil
}

func (h *halfPipe) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		switch {
		case len(h.buf) > 0:
			n := copy(p, h.buf)
			rest := copy(h.buf, h.buf[n:])
			h.buf = h.buf[:rest]
			h.cond.Broadcast()
			return n, nil
		case h.closed:
			return 0, io.EOF
		case h.readDeadline.expired():
			return 0, timeoutError{}
		default:
			h.cond.Wait()
		}
	}
}

func (h *halfPipe) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	// Blocked goroutines observe closed before any deadline check, so the
	// pending wake-ups are no longer needed.
	h.readDeadline.stop()
	h.writeDeadline.stop()
	h.cond.Broadcast()
}

func (h *halfPipe) setReadDeadline(t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.readDeadline.set(t)
}

func (h *halfPipe) setWriteDeadline(t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.writeDeadline.set(t)
}

// Conn is one endpoint of a simulated TCP connection. It implements
// net.Conn.
type Conn struct {
	rd     *halfPipe // data flowing toward this endpoint
	wr     *halfPipe // data flowing away from this endpoint
	local  Addr
	remote Addr

	closeOnce sync.Once
	onClose   func()
}

var _ net.Conn = (*Conn)(nil)

// NewConnPair builds both endpoints of a connection between two addresses.
func NewConnPair(client, server Addr) (clientEnd, serverEnd *Conn) {
	toServer := newHalfPipe()
	toClient := newHalfPipe()
	clientEnd = &Conn{rd: toClient, wr: toServer, local: client, remote: server}
	serverEnd = &Conn{rd: toServer, wr: toClient, local: server, remote: client}
	return clientEnd, serverEnd
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.rd.read(p) }

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) { return c.wr.write(p) }

// Close tears down both directions, like a TCP RST|FIN from this side.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.rd.close()
		c.wr.close()
		if c.onClose != nil {
			c.onClose()
		}
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wr.setWriteDeadline(t)
	return nil
}
