package simnet

import (
	"testing"
	"testing/quick"
)

func TestIPString(t *testing.T) {
	tests := []struct {
		ip   IP
		want string
	}{
		{0, "0.0.0.0"},
		{IPFromOctets(192, 168, 1, 1), "192.168.1.1"},
		{IPFromOctets(255, 255, 255, 255), "255.255.255.255"},
		{IPFromOctets(8, 8, 8, 8), "8.8.8.8"},
	}
	for _, tt := range tests {
		if got := tt.ip.String(); got != tt.want {
			t.Errorf("IP(%d).String() = %q, want %q", uint32(tt.ip), got, tt.want)
		}
	}
}

func TestParseIPRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", bad)
		}
	}
}

func TestIPOctets(t *testing.T) {
	ip := IPFromOctets(10, 20, 30, 40)
	if o := ip.Octets(); o != [4]byte{10, 20, 30, 40} {
		t.Errorf("Octets() = %v", o)
	}
}

func TestIPPrivate(t *testing.T) {
	tests := []struct {
		s    string
		want bool
	}{
		{"10.0.0.1", true},
		{"10.255.255.255", true},
		{"172.16.0.1", true},
		{"172.31.255.1", true},
		{"172.32.0.1", false},
		{"172.15.255.1", false},
		{"192.168.0.1", true},
		{"192.169.0.1", false},
		{"8.8.8.8", false},
		{"11.0.0.1", false},
	}
	for _, tt := range tests {
		if got := MustParseIP(tt.s).Private(); got != tt.want {
			t.Errorf("%s Private() = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p, err := ParsePrefix("192.168.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(MustParseIP("192.168.55.1")) {
		t.Error("should contain 192.168.55.1")
	}
	if p.Contains(MustParseIP("192.169.0.1")) {
		t.Error("should not contain 192.169.0.1")
	}
	if p.Size() != 1<<16 {
		t.Errorf("Size() = %d", p.Size())
	}
	all := Prefix{Bits: 0}
	if !all.Contains(MustParseIP("1.2.3.4")) || all.Size() != 1<<32 {
		t.Error("/0 should contain everything")
	}
	host := Prefix{Base: MustParseIP("1.2.3.4"), Bits: 32}
	if !host.Contains(MustParseIP("1.2.3.4")) || host.Contains(MustParseIP("1.2.3.5")) || host.Size() != 1 {
		t.Error("/32 semantics wrong")
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, bad := range []string{"", "1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "x/8", "1.2.3.4/y"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", bad)
		}
	}
}

func TestPrefixString(t *testing.T) {
	p := Prefix{Base: MustParseIP("10.0.0.0"), Bits: 8}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestAddrParseAndString(t *testing.T) {
	a, err := ParseAddr("10.1.2.3:2121")
	if err != nil {
		t.Fatal(err)
	}
	if a.IP != MustParseIP("10.1.2.3") || a.Port != 2121 {
		t.Errorf("got %+v", a)
	}
	if a.String() != "10.1.2.3:2121" {
		t.Errorf("String() = %q", a.String())
	}
	if a.Network() != "sim-tcp" {
		t.Errorf("Network() = %q", a.Network())
	}
	for _, bad := range []string{"", "1.2.3.4", "1.2.3.4:x", "1.2.3.4:70000", "x:21"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", bad)
		}
	}
}
