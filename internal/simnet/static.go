package simnet

import "sync"

// StaticProvider is a HostProvider backed by an explicit host table. The
// world generator uses a procedural provider; tests, honeypot deployments,
// and examples use this one.
type StaticProvider struct {
	mu    sync.RWMutex
	hosts map[IP]*StaticHost
}

// NewStaticProvider builds an empty provider.
func NewStaticProvider() *StaticProvider {
	return &StaticProvider{hosts: make(map[IP]*StaticHost)}
}

// StaticHost is a host with a fixed set of open ports.
type StaticHost struct {
	handlers map[uint16]Handler
}

// Listening implements Host.
func (h *StaticHost) Listening(port uint16) bool {
	_, ok := h.handlers[port]
	return ok
}

// Handler implements Host.
func (h *StaticHost) Handler(port uint16) Handler { return h.handlers[port] }

// Add registers a handler for ip:port, creating the host as needed.
func (p *StaticProvider) Add(ip IP, port uint16, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	host, ok := p.hosts[ip]
	if !ok {
		host = &StaticHost{handlers: make(map[uint16]Handler)}
		p.hosts[ip] = host
	}
	host.handlers[port] = h
}

// Remove drops a host entirely.
func (p *StaticProvider) Remove(ip IP) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.hosts, ip)
}

// PortOpen implements PortScanner: static hosts answer probes from the
// table without the interface indirection of the Lookup path.
func (p *StaticProvider) PortOpen(ip IP, port uint16) bool {
	p.mu.RLock()
	host, ok := p.hosts[ip]
	p.mu.RUnlock()
	return ok && host.Listening(port)
}

// Lookup implements HostProvider.
func (p *StaticProvider) Lookup(ip IP) Host {
	p.mu.RLock()
	defer p.mu.RUnlock()
	host, ok := p.hosts[ip]
	if !ok {
		return nil // typed-nil guard: return untyped nil interface
	}
	return host
}

// Len reports the number of registered hosts.
func (p *StaticProvider) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.hosts)
}
