package simnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// faultPair builds a connected pair with prof applied to the client end.
func faultPair(prof FaultProfile) (client net.Conn, server *Conn) {
	c, s := NewConnPair(Addr{IP: 1, Port: 40000}, Addr{IP: 2, Port: 21})
	return wrapFault(c, &prof), s
}

func TestFaultSlowDripChunksReads(t *testing.T) {
	client, server := faultPair(FaultProfile{DripBytes: 4, DripDelay: 2 * time.Millisecond})
	defer client.Close()
	go server.Write(make([]byte, 64))

	buf := make([]byte, 64)
	start := time.Now()
	total := 0
	for total < 64 {
		n, err := client.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if n > 4 {
			t.Fatalf("drip delivered %d bytes, cap 4", n)
		}
		total += n
	}
	if elapsed := time.Since(start); elapsed < 16*2*time.Millisecond {
		t.Errorf("64 bytes at 4B/2ms took %v; drip not applied", elapsed)
	}
}

func TestFaultMidSessionReset(t *testing.T) {
	client, server := faultPair(FaultProfile{ResetAfterBytes: 10})
	defer client.Close()
	go server.Write(make([]byte, 100))

	buf := make([]byte, 100)
	total := 0
	for {
		n, err := client.Read(buf)
		total += n
		if err != nil {
			if !ErrReset(err) {
				t.Fatalf("want reset error, got %v", err)
			}
			break
		}
		if total > 10 {
			t.Fatalf("read %d bytes past the reset threshold", total)
		}
	}
	if total != 10 {
		t.Errorf("delivered %d bytes before reset, want exactly 10", total)
	}
	// The underlying connection is gone: writes fail.
	if _, err := client.Write([]byte("x")); err == nil {
		t.Error("write succeeded after reset")
	}
}

func TestFaultPrematureEOF(t *testing.T) {
	client, server := faultPair(FaultProfile{CloseAfterBytes: 5})
	defer client.Close()
	go server.Write(make([]byte, 50))

	body, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(body) != 5 {
		t.Errorf("got %d bytes, want 5 then clean EOF", len(body))
	}
}

func TestFaultStallHonorsReadDeadline(t *testing.T) {
	client, server := faultPair(FaultProfile{StallAfterBytes: 8})
	defer client.Close()
	go server.Write(make([]byte, 64))

	buf := make([]byte, 64)
	total := 0
	client.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	start := time.Now()
	for {
		n, err := client.Read(buf)
		total += n
		if err != nil {
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Timeout() {
				t.Fatalf("stall ended with %v, want timeout", err)
			}
			break
		}
	}
	if total != 8 {
		t.Errorf("delivered %d bytes before stall, want 8", total)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("stall resolved in %v, want ≈100ms deadline expiry", elapsed)
	}
}

func TestFaultReadAfterCloseFails(t *testing.T) {
	client, _ := faultPair(FaultProfile{DripBytes: 4})
	client.Close()
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on closed faulted conn")
	}
}

func TestFaultStalledReadReturnsOnClose(t *testing.T) {
	client, server := faultPair(FaultProfile{StallAfterBytes: 1})
	go server.Write([]byte("ab"))

	buf := make([]byte, 2)
	if n, err := client.Read(buf); err != nil || n != 1 {
		t.Fatalf("pre-stall read: n=%d err=%v", n, err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.Read(buf)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	client.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("stalled read returned nil after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read did not unblock on close")
	}
}

// staticFaults injects one profile for every connection to a given port.
type staticFaults struct {
	port uint16
	prof FaultProfile
}

func (f staticFaults) FaultFor(_, _ IP, port uint16) *FaultProfile {
	if port != f.port {
		return nil
	}
	p := f.prof
	return &p
}

func TestNetworkInjectsFaults(t *testing.T) {
	provider := NewStaticProvider()
	srv := MustParseIP("9.9.9.9")
	provider.Add(srv, 21, HandlerFunc(func(_ *Network, conn net.Conn) {
		conn.Write(make([]byte, 100))
		conn.Close()
	}))
	nw := NewNetwork(provider)
	nw.Faults = staticFaults{port: 21, prof: FaultProfile{ResetAfterBytes: 16}}

	conn, err := nw.DialFrom(MustParseIP("1.2.3.4"), srv, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body, err := io.ReadAll(conn)
	if err == nil || !ErrReset(err) {
		t.Fatalf("faulted dial read %d bytes, err=%v; want reset", len(body), err)
	}
	if got := nw.Stats.FaultedDials.Load(); got != 1 {
		t.Errorf("FaultedDials = %d, want 1", got)
	}
}

func TestNetworkConnectLatencyFault(t *testing.T) {
	provider := NewStaticProvider()
	srv := MustParseIP("9.9.9.10")
	provider.Add(srv, 21, HandlerFunc(func(_ *Network, conn net.Conn) {
		conn.Write([]byte("hello"))
		conn.Close()
	}))
	nw := NewNetwork(provider)
	nw.Faults = staticFaults{port: 21, prof: FaultProfile{ConnectLatency: 50 * time.Millisecond}}

	start := time.Now()
	conn, err := nw.DialFrom(MustParseIP("1.2.3.4"), srv, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("dial took %v, want ≥50ms connect latency", elapsed)
	}
	// Latency-only profiles need no wrapper; the conn must read cleanly.
	if body, err := io.ReadAll(conn); err != nil || string(body) != "hello" {
		t.Errorf("read after latency: %q, %v", body, err)
	}
}
