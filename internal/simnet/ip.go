// Package simnet provides an in-memory simulated IPv4 Internet.
//
// The simulation substitutes for the public IPv4 address space the paper
// scans: hosts are materialized lazily through a HostProvider, connections
// are real net.Conn implementations (buffered full-duplex pipes with
// deadline support), and the scanner's SYN-probe fast path avoids paying
// for a connection when only liveness is being tested.
//
// Nothing above this package knows it is not talking to a real network; the
// same enumerator binary drives real TCP sockets in cmd/ftpenum.
package simnet

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order. Using a fixed-size integer keeps
// per-host bookkeeping compact enough to model millions of addresses.
type IP uint32

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Octets returns the address as four bytes, most significant first.
func (ip IP) Octets() [4]byte {
	return [4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// IPFromOctets assembles an address from four octets.
func IPFromOctets(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("simnet: bad IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("simnet: bad IPv4 address %q: %w", s, err)
		}
		ip = ip<<8 | uint32(n)
	}
	return IP(ip), nil
}

// MustParseIP is ParseIP for compile-time-constant addresses in tests and
// examples; it panics on malformed input.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Private reports whether the address falls in RFC 1918 space. Devices
// behind NATs leak such addresses in PASV replies, which is one of the
// paper's NAT-detection signals.
func (ip IP) Private() bool {
	switch {
	case ip>>24 == 10: // 10.0.0.0/8
		return true
	case ip>>20 == 0xac1: // 172.16.0.0/12
		return true
	case ip>>16 == 0xc0a8: // 192.168.0.0/16
		return true
	}
	return false
}

// Prefix is a CIDR block over the simulated space.
type Prefix struct {
	Base IP
	Bits int // prefix length, 0..32
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	if p.Bits <= 0 {
		return true
	}
	if p.Bits >= 32 {
		return ip == p.Base
	}
	mask := ^IP(0) << (32 - p.Bits)
	return ip&mask == p.Base&mask
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 {
	if p.Bits <= 0 {
		return 1 << 32
	}
	if p.Bits >= 32 {
		return 1
	}
	return 1 << (32 - p.Bits)
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Base, p.Bits)
}

// ParsePrefix parses "a.b.c.d/len" CIDR notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("simnet: bad prefix %q: missing /", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("simnet: bad prefix length in %q", s)
	}
	return Prefix{Base: ip, Bits: bits}, nil
}

// Addr is a TCP endpoint in the simulated network; it implements net.Addr.
type Addr struct {
	IP   IP
	Port uint16
}

// Network returns the simulated network name.
func (Addr) Network() string { return "sim-tcp" }

// String renders "ip:port".
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// ParseAddr parses "ip:port" into an Addr.
func ParseAddr(s string) (Addr, error) {
	colon := strings.LastIndexByte(s, ':')
	if colon < 0 {
		return Addr{}, fmt.Errorf("simnet: bad address %q: missing port", s)
	}
	ip, err := ParseIP(s[:colon])
	if err != nil {
		return Addr{}, err
	}
	port, err := strconv.ParseUint(s[colon+1:], 10, 16)
	if err != nil {
		return Addr{}, fmt.Errorf("simnet: bad port in %q: %w", s, err)
	}
	return Addr{IP: ip, Port: uint16(port)}, nil
}
