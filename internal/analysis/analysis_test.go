package analysis

import (
	"testing"

	"ftpcloud/internal/asdb"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/simnet"
)

// testASDB builds two ASes: home.pl-like hosting at 10.0.0.0/16 and an ISP
// at 20.0.0.0/16.
func testASDB(t *testing.T) *asdb.DB {
	t.Helper()
	db, err := asdb.NewDB([]*asdb.AS{
		{Number: 12824, Name: "home.pl S.A.", Type: asdb.TypeHosting,
			Prefixes: []simnet.Prefix{{Base: simnet.MustParseIP("10.0.0.0"), Bits: 16}}},
		{Number: 4134, Name: "Chinanet", Type: asdb.TypeISP,
			Prefixes: []simnet.Prefix{{Base: simnet.MustParseIP("20.0.0.0"), Bits: 16}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func file(path, name string, read dataset.Readability) dataset.FileEntry {
	return dataset.FileEntry{Path: path, Name: name, Read: read}
}

func dir(path, name string) dataset.FileEntry {
	return dataset.FileEntry{Path: path, Name: name, IsDir: true}
}

// buildInput assembles a small, fully hand-understood dataset.
func buildInput(t *testing.T) *Input {
	t.Helper()
	records := []*dataset.HostRecord{
		// Non-FTP open host.
		{IP: "20.0.0.1", PortOpen: true},
		// home.pl anonymous host, PORT-vulnerable, write evidence, FTPS.
		{
			IP: "10.0.0.1", PortOpen: true, FTP: true, AnonymousOK: true,
			Banner:    "home.pl FTP server ready [h1]",
			PortCheck: dataset.PortNotValidated,
			FTPS: &dataset.FTPSInfo{Supported: true, Cert: &dataset.CertInfo{
				FingerprintSHA256: "fp-homepl", CommonName: "*.home.pl"}},
			Files: []dataset.FileEntry{
				dir("/web", "web"),
				file("/web/index.html", "index.html", dataset.ReadYes),
				file("/web/config.php", "config.php", dataset.ReadYes),
				file("/web/.htaccess", ".htaccess", dataset.ReadYes),
				file("/w0000000t.txt", "w0000000t.txt", dataset.ReadYes),
				file("/history.php", "history.php", dataset.ReadYes),
			},
			WriteEvidence: []string{"w0000000t.txt", "history.php"},
		},
		// QNAP NAS: anonymous, NAT-ed, sensitive docs + photos, shared cert.
		{
			IP: "20.0.0.2", PortOpen: true, FTP: true, AnonymousOK: true,
			Banner:       "NASFTPD Turbo station 1.3.1e Server (ProFTPD) [192.168.1.9]",
			PASVIP:       "192.168.1.9",
			PASVMismatch: true,
			PortCheck:    dataset.PortValidated,
			FTPS: &dataset.FTPSInfo{Supported: true, Cert: &dataset.CertInfo{
				FingerprintSHA256: "fp-qnap", CommonName: "QNAP NAS", SelfSigned: true}},
			Files: []dataset.FileEntry{
				dir("/Photos", "Photos"),
				file("/Photos/DSC_0001.JPG", "DSC_0001.JPG", dataset.ReadYes),
				file("/Photos/DSC_0002.JPG", "DSC_0002.JPG", dataset.ReadYes),
				dir("/Documents", "Documents"),
				file("/Documents/mailbox_001.pst", "mailbox_001.pst", dataset.ReadYes),
				file("/Documents/TurboTax-Export-2014.txf", "TurboTax-Export-2014.txf", dataset.ReadYes),
				file("/Documents/ssh_host_rsa_key.0", "ssh_host_rsa_key.0", dataset.ReadNo),
				file("/Documents/passwords-1.kdbx", "passwords-1.kdbx", dataset.ReadYes),
			},
		},
		// Second QNAP sharing the same certificate (Table XIII signal).
		{
			IP: "20.0.0.3", PortOpen: true, FTP: true, AnonymousOK: false,
			Banner: "NASFTPD Turbo station 1.3.1e Server (ProFTPD) [192.168.7.7]",
			FTPS: &dataset.FTPSInfo{Supported: true, Cert: &dataset.CertInfo{
				FingerprintSHA256: "fp-qnap", CommonName: "QNAP NAS", SelfSigned: true}},
		},
		// Vulnerable ProFTPD with exposed Linux root.
		{
			IP: "20.0.0.4", PortOpen: true, FTP: true, AnonymousOK: true,
			Banner:    "ProFTPD 1.3.2 Server (Debian) [20.0.0.4]",
			PortCheck: dataset.PortValidated,
			Files: []dataset.FileEntry{
				dir("/bin", "bin"), dir("/etc", "etc"), dir("/var", "var"), dir("/boot", "boot"),
				file("/etc/shadow", "shadow", dataset.ReadNo),
				file("/etc/passwd", "passwd", dataset.ReadYes),
			},
		},
		// FileZilla host, not anonymous.
		{
			IP: "20.0.0.5", PortOpen: true, FTP: true,
			Banner: "-FileZilla Server version 0.9.41 beta",
		},
		// Ramnit victim.
		{
			IP: "20.0.0.6", PortOpen: true, FTP: true,
			Banner: "220 RMNetwork FTP",
		},
		// Unknown banner, anonymous, empty tree, robots excluded.
		{
			IP: "10.0.0.7", PortOpen: true, FTP: true, AnonymousOK: true,
			Banner: "FTP server ready.", RobotsTxt: "User-agent: *\nDisallow: /\n",
			RobotsExcludeAll: true,
		},
		// WaReZ drop host with Holy Bible tag.
		{
			IP: "20.0.0.8", PortOpen: true, FTP: true, AnonymousOK: true,
			Banner: "(vsFTPd 2.3.2)",
			Files: []dataset.FileEntry{
				dir("/150618120000p", "150618120000p"),
				file("/Holy-Bible.html", "Holy-Bible.html", dataset.ReadYes),
				file("/sh3ll.php", "sh3ll.php", dataset.ReadYes),
			},
			WriteEvidence: []string{"sh3ll.php"},
			PortCheck:     dataset.PortNotValidated,
		},
	}
	return &Input{
		IPsScanned: 1000,
		Records:    records,
		ASDB:       testASDB(t),
		HTTP: map[string]HTTPInfo{
			"10.0.0.1": {HTTP: true, Scripting: true},
			"20.0.0.2": {HTTP: true},
		},
	}
}

func TestFunnel(t *testing.T) {
	f := ComputeFunnel(buildInput(t))
	if f.IPsScanned != 1000 || f.OpenPort21 != 9 || f.FTPServers != 8 || f.AnonServers != 5 {
		t.Errorf("funnel: %+v", f)
	}
	if f.PctAnonymous < 62 || f.PctAnonymous > 63 {
		t.Errorf("pct anonymous = %v", f.PctAnonymous)
	}
}

func TestClassification(t *testing.T) {
	c := ComputeClassification(buildInput(t))
	byName := map[string]CategoryCount{}
	for _, row := range c.Rows {
		byName[row.Name] = row
	}
	if byName["Hosted Server"].All != 1 {
		t.Errorf("hosted: %+v", byName["Hosted Server"])
	}
	if byName["Embedded Server"].All != 2 {
		t.Errorf("embedded: %+v", byName["Embedded Server"])
	}
	if byName["Unknown"].All != 1 {
		t.Errorf("unknown: %+v", byName["Unknown"])
	}
	// proftpd + filezilla + ramnit + vsftpd = 4 generic.
	if byName["Generic Server"].All != 4 {
		t.Errorf("generic: %+v", byName["Generic Server"])
	}
	if c.TotalFTP != 8 || c.TotalAnon != 5 {
		t.Errorf("totals: %d/%d", c.TotalFTP, c.TotalAnon)
	}
}

func TestDevices(t *testing.T) {
	d := ComputeDevices(buildInput(t))
	if len(d.Consumer) != 1 || d.Consumer[0].Model != "QNAP Turbo NAS" || d.Consumer[0].Found != 2 || d.Consumer[0].Anon != 1 {
		t.Errorf("consumer: %+v", d.Consumer)
	}
	if len(d.Classes) != 1 || d.Classes[0].Model != "NAS" || d.Classes[0].Found != 2 {
		t.Errorf("classes: %+v", d.Classes)
	}
}

func TestExposure(t *testing.T) {
	e := ComputeExposure(buildInput(t))
	if e.AnonServers != 5 || e.ExposingServers != 4 {
		t.Errorf("exposure counts: anon=%d exposing=%d", e.AnonServers, e.ExposingServers)
	}
	if e.IndexHTMLFiles != 1 || e.IndexHTMLServers != 1 {
		t.Errorf("index.html: %d/%d", e.IndexHTMLFiles, e.IndexHTMLServers)
	}
	if e.PhotoFiles != 2 || e.PhotoServers != 1 {
		t.Errorf("photos: %d files / %d servers", e.PhotoFiles, e.PhotoServers)
	}
	if e.OSRootLinux != 1 || e.OSRootWindows != 0 {
		t.Errorf("os roots: %d/%d", e.OSRootLinux, e.OSRootWindows)
	}
	if e.HtaccessFiles != 1 || e.ScriptFiles < 3 {
		t.Errorf("scripting: htaccess=%d scripts=%d", e.HtaccessFiles, e.ScriptFiles)
	}
	if e.RobotsSeen != 1 || e.RobotsExcludeAll != 1 {
		t.Errorf("robots: %d/%d", e.RobotsSeen, e.RobotsExcludeAll)
	}

	bySens := map[string]SensitiveClass{}
	for _, s := range e.Sensitive {
		bySens[s.Name] = s
	}
	if s := bySens[".pst files"]; s.Servers != 1 || s.Files != 1 || s.Readable != 1 {
		t.Errorf("pst: %+v", s)
	}
	if s := bySens["SSH host private keys"]; s.Files != 1 || s.NonReadable != 1 {
		t.Errorf("ssh keys: %+v", s)
	}
	if s := bySens["TurboTax Export"]; s.Servers != 1 {
		t.Errorf("turbotax: %+v", s)
	}
	if s := bySens["KeePass/KeePassX"]; s.Files != 1 {
		t.Errorf("keepass: %+v", s)
	}

	// Extensions only count SOHO devices (the QNAP).
	extByName := map[string]ExtensionCount{}
	for _, x := range e.Extensions {
		extByName[x.Ext] = x
	}
	if x := extByName[".jpg"]; x.Files != 2 || x.Servers != 1 {
		t.Errorf("jpg extension: %+v", x)
	}
	if _, ok := extByName[".html"]; ok {
		t.Error("hosting files leaked into SOHO extension table")
	}
}

func TestExposureByDevice(t *testing.T) {
	x := ComputeExposureByDevice(buildInput(t))
	// Two sensitive-document servers: the QNAP NAS and the generic host
	// whose exposed /etc/shadow also counts.
	if x.Totals["Sensitive Documents"] != 2 {
		t.Errorf("sensitive total: %+v", x.Totals)
	}
	if x.Rows["Sensitive Documents"]["NAS"] != 50 || x.Rows["Sensitive Documents"]["Generic"] != 50 {
		t.Errorf("sensitive by device: %+v", x.Rows["Sensitive Documents"])
	}
	if x.Rows["Root File Systems"]["Generic"] != 100 {
		t.Errorf("os-root by device: %+v", x.Rows["Root File Systems"])
	}
	if x.Totals["All"] < 3 {
		t.Errorf("all total: %+v", x.Totals)
	}
}

func TestASConcentration(t *testing.T) {
	a := ComputeASConcentration(buildInput(t))
	if a.TotalASesAll != 2 || a.TotalASesAnon != 2 {
		t.Errorf("AS totals: %+v", a)
	}
	// Chinanet has 6 FTP hosts, home.pl 2: one AS covers 50%.
	if a.ASesForHalfAll != 1 {
		t.Errorf("ASesForHalfAll = %d", a.ASesForHalfAll)
	}
	if len(a.CDFAll) != 2 || a.CDFAll[1] != 1.0 {
		t.Errorf("CDF: %+v", a.CDFAll)
	}
	if a.TypeBreakdownAll[asdb.TypeISP] != 1 {
		t.Errorf("type breakdown: %+v", a.TypeBreakdownAll)
	}
}

func TestTopASes(t *testing.T) {
	top := ComputeTopASes(buildInput(t), 10)
	if len(top) != 2 {
		t.Fatalf("top ASes: %+v", top)
	}
	// Chinanet has 3 anon, home.pl 2.
	if top[0].Number != 4134 || top[0].AnonServers != 3 {
		t.Errorf("top[0]: %+v", top[0])
	}
	if top[1].Number != 12824 || top[1].FTPServers != 2 {
		t.Errorf("top[1]: %+v", top[1])
	}
}

func TestMalicious(t *testing.T) {
	m := ComputeMalicious(buildInput(t))
	if m.WritableServers != 2 || m.WritableASes != 2 {
		t.Errorf("writable: %d servers %d ASes", m.WritableServers, m.WritableASes)
	}
	if m.RATFiles != 1 || m.RATServers != 1 {
		t.Errorf("RATs: %d/%d", m.RATFiles, m.RATServers)
	}
	if m.DDoSServers != 1 {
		t.Errorf("ddos: %d", m.DDoSServers)
	}
	if m.HolyBibleServers != 1 || m.HolyBiblePctWritable != 100 {
		t.Errorf("holy bible: %d (%.1f%%)", m.HolyBibleServers, m.HolyBiblePctWritable)
	}
	if m.WaReZServers != 1 {
		t.Errorf("warez: %d", m.WaReZServers)
	}
	if m.RamnitServers != 1 {
		t.Errorf("ramnit: %d", m.RamnitServers)
	}
	if m.HTTPOverlap != 2 || m.ScriptingOverlap != 1 {
		t.Errorf("http overlap: %d/%d", m.HTTPOverlap, m.ScriptingOverlap)
	}
}

func TestCVEs(t *testing.T) {
	c := ComputeCVEs(buildInput(t))
	byID := map[string]CVECount{}
	for _, row := range c.Rows {
		byID[row.ID] = row
	}
	// ProFTPD 1.3.2 plus the two QNAP devices (rebranded ProFTPD 1.3.1e)
	// match the three old ProFTPD CVEs.
	for _, id := range []string{"CVE-2012-6095", "CVE-2011-4130", "CVE-2011-1137"} {
		if byID[id].IPs != 3 {
			t.Errorf("%s: %+v", id, byID[id])
		}
	}
	// vsFTPd 2.3.2 matches both vsftpd CVEs.
	if byID["CVE-2015-1419"].IPs != 1 || byID["CVE-2011-0762"].IPs != 1 {
		t.Errorf("vsftpd rows: %+v", byID)
	}
	// home.pl banner has no version → no match; vulnerable = proftpd +
	// 2 QNAPs + vsftpd.
	if c.VulnerableIPs != 4 {
		t.Errorf("vulnerable IPs = %d", c.VulnerableIPs)
	}
}

func TestPortBounce(t *testing.T) {
	b := ComputePortBounce(buildInput(t))
	if b.Tested != 4 || b.NotValidated != 2 {
		t.Errorf("bounce: %+v", b)
	}
	if b.PctNotValidated != 50 {
		t.Errorf("pct: %v", b.PctNotValidated)
	}
	if b.HomePLShare != 50 {
		t.Errorf("home.pl share: %v", b.HomePLShare)
	}
	if b.NATed != 1 || b.NATedNotValidated != 0 {
		t.Errorf("NAT: %d/%d", b.NATed, b.NATedNotValidated)
	}
	if b.WritableNotValidated != 2 {
		t.Errorf("writable+bounce: %d", b.WritableNotValidated)
	}
	if b.FileZillaServers != 1 {
		t.Errorf("filezilla: %d", b.FileZillaServers)
	}
}

func TestFTPS(t *testing.T) {
	f := ComputeFTPS(buildInput(t), 10)
	if f.Supported != 3 || f.UniqueCerts != 2 {
		t.Errorf("ftps: supported=%d unique=%d", f.Supported, f.UniqueCerts)
	}
	if f.SelfSigned != 2 {
		t.Errorf("self-signed: %d", f.SelfSigned)
	}
	if len(f.TopCerts) != 2 || f.TopCerts[0].CommonName != "QNAP NAS" || f.TopCerts[0].Servers != 2 {
		t.Errorf("top certs: %+v", f.TopCerts)
	}
	if len(f.DeviceCerts) != 1 || f.DeviceCerts[0].Device != "QNAP Turbo NAS" || f.DeviceCerts[0].Servers != 2 {
		t.Errorf("device certs: %+v", f.DeviceCerts)
	}
}

func TestEmptyInput(t *testing.T) {
	in := &Input{}
	if f := ComputeFunnel(in); f.OpenPort21 != 0 || f.PctAnonymous != 0 {
		t.Errorf("empty funnel: %+v", f)
	}
	if c := ComputeClassification(in); c.TotalFTP != 0 {
		t.Errorf("empty classification: %+v", c)
	}
	if a := ComputeASConcentration(in); a.ASesForHalfAll != 0 {
		t.Errorf("empty concentration: %+v", a)
	}
	if f := ComputeFTPS(in, 5); f.Supported != 0 || f.PctSupported != 0 {
		t.Errorf("empty ftps: %+v", f)
	}
}
