package analysis

import (
	"sort"
)

// CertCount is one Table XII row: one distinct certificate and its spread.
type CertCount struct {
	CommonName  string
	Fingerprint string
	Servers     int
	SelfSigned  bool
}

// DeviceCert is one Table XIII row: a device family shipping one cert.
type DeviceCert struct {
	Device     string
	CommonName string
	Servers    int
}

// FTPS aggregates §IX and Tables XII/XIII.
type FTPS struct {
	// Supported counts servers completing AUTH TLS (paper: 3.4M = 25%).
	Supported    int
	PctSupported float64
	// RequirePreLogin counts servers demanding TLS before USER (85K).
	RequirePreLogin int
	// UniqueCerts counts distinct certificates (paper: 793K across 3.4M).
	UniqueCerts int
	// SelfSigned counts servers presenting self-signed certs (50%).
	SelfSigned    int
	PctSelfSigned float64
	// TopCerts is Table XII.
	TopCerts []CertCount
	// DeviceCerts is Table XIII: certificate sharing by device families.
	DeviceCerts []DeviceCert
	TotalFTP    int
}

// certAgg tracks one distinct certificate's spread.
type certAgg struct {
	cn         string
	selfSigned bool
	servers    int
	devices    map[string]int
}

// FTPSAcc accumulates §IX and Tables XII/XIII. The zero value is ready.
type FTPSAcc struct {
	totalFTP, supported, requirePre, selfSigned int

	byFP map[string]*certAgg
}

// Observe folds one record.
func (a *FTPSAcc) Observe(r *Record) {
	host := r.Host
	if !host.FTP {
		return
	}
	a.totalFTP++
	if !host.FTPSSupported() {
		return
	}
	a.supported++
	if host.FTPS.RequiredPreLogin {
		a.requirePre++
	}
	cert := host.FTPS.Cert
	if cert == nil {
		return
	}
	if cert.SelfSigned {
		a.selfSigned++
	}
	if a.byFP == nil {
		a.byFP = map[string]*certAgg{}
	}
	agg, ok := a.byFP[cert.FingerprintSHA256]
	if !ok {
		agg = &certAgg{cn: cert.CommonName, selfSigned: cert.SelfSigned, devices: map[string]int{}}
		a.byFP[cert.FingerprintSHA256] = agg
	}
	agg.servers++
	if c := r.Class(); c.DeviceModel != "" {
		agg.devices[c.DeviceModel]++
	}
}

// CertSnap is one certificate's serializable Table XII/XIII state.
type CertSnap struct {
	CN         string
	SelfSigned bool
	Servers    int
	Devices    map[string]int
}

// FTPSSnap is the serializable state of an FTPSAcc.
type FTPSSnap struct {
	TotalFTP, Supported, RequirePre, SelfSigned int
	ByFP                                        map[string]CertSnap
}

// Snapshot captures the accumulator as plain data.
func (a *FTPSAcc) Snapshot() FTPSSnap {
	s := FTPSSnap{
		TotalFTP:   a.totalFTP,
		Supported:  a.supported,
		RequirePre: a.requirePre,
		SelfSigned: a.selfSigned,
	}
	if a.byFP != nil {
		s.ByFP = make(map[string]CertSnap, len(a.byFP))
		for fp, agg := range a.byFP {
			s.ByFP[fp] = CertSnap{
				CN:         agg.cn,
				SelfSigned: agg.selfSigned,
				Servers:    agg.servers,
				Devices:    copyCounts(agg.devices),
			}
		}
	}
	return s
}

// Merge folds a snapshot of another accumulator into this one.
func (a *FTPSAcc) Merge(s FTPSSnap) {
	a.totalFTP += s.TotalFTP
	a.supported += s.Supported
	a.requirePre += s.RequirePre
	a.selfSigned += s.SelfSigned
	if len(s.ByFP) == 0 {
		return
	}
	if a.byFP == nil {
		a.byFP = map[string]*certAgg{}
	}
	for fp, src := range s.ByFP {
		agg, ok := a.byFP[fp]
		if !ok {
			agg = &certAgg{cn: src.CN, selfSigned: src.SelfSigned, devices: map[string]int{}}
			a.byFP[fp] = agg
		}
		agg.servers += src.Servers
		addCounts(agg.devices, src.Devices)
	}
}

// Finalize produces §IX, Table XII, and Table XIII. Sort keys include the
// certificate fingerprint so tied rows order deterministically regardless
// of map iteration order — the streaming and batch paths must render
// byte-identically.
func (a *FTPSAcc) Finalize(topN int) FTPS {
	f := FTPS{
		Supported:       a.supported,
		RequirePreLogin: a.requirePre,
		SelfSigned:      a.selfSigned,
		TotalFTP:        a.totalFTP,
		UniqueCerts:     len(a.byFP),
	}
	f.PctSupported = percent(f.Supported, f.TotalFTP)
	f.PctSelfSigned = percent(f.SelfSigned, f.Supported)

	type deviceRow struct {
		row DeviceCert
		fp  string
	}
	var deviceRows []deviceRow
	for fp, agg := range a.byFP {
		f.TopCerts = append(f.TopCerts, CertCount{
			CommonName:  agg.cn,
			Fingerprint: fp,
			Servers:     agg.servers,
			SelfSigned:  agg.selfSigned,
		})
		// A certificate dominated by one device family is a shared
		// device certificate (Table XIII).
		for device, n := range agg.devices {
			if n*2 >= agg.servers && n > 1 {
				deviceRows = append(deviceRows, deviceRow{
					row: DeviceCert{Device: device, CommonName: agg.cn, Servers: n},
					fp:  fp,
				})
			}
		}
	}
	sort.Slice(f.TopCerts, func(i, j int) bool {
		if f.TopCerts[i].Servers != f.TopCerts[j].Servers {
			return f.TopCerts[i].Servers > f.TopCerts[j].Servers
		}
		if f.TopCerts[i].CommonName != f.TopCerts[j].CommonName {
			return f.TopCerts[i].CommonName < f.TopCerts[j].CommonName
		}
		return f.TopCerts[i].Fingerprint < f.TopCerts[j].Fingerprint
	})
	if len(f.TopCerts) > topN {
		f.TopCerts = f.TopCerts[:topN]
	}
	sort.Slice(deviceRows, func(i, j int) bool {
		a, b := deviceRows[i], deviceRows[j]
		if a.row.Servers != b.row.Servers {
			return a.row.Servers > b.row.Servers
		}
		if a.row.Device != b.row.Device {
			return a.row.Device < b.row.Device
		}
		if a.row.CommonName != b.row.CommonName {
			return a.row.CommonName < b.row.CommonName
		}
		return a.fp < b.fp
	})
	for _, dr := range deviceRows {
		f.DeviceCerts = append(f.DeviceCerts, dr.row)
	}
	return f
}

// ComputeFTPS derives §IX, Table XII, and Table XIII from a retained
// dataset.
func ComputeFTPS(in *Input, topN int) FTPS {
	var acc FTPSAcc
	in.fold(&acc)
	return acc.Finalize(topN)
}
