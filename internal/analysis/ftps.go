package analysis

import (
	"sort"
)

// CertCount is one Table XII row: one distinct certificate and its spread.
type CertCount struct {
	CommonName  string
	Fingerprint string
	Servers     int
	SelfSigned  bool
}

// DeviceCert is one Table XIII row: a device family shipping one cert.
type DeviceCert struct {
	Device     string
	CommonName string
	Servers    int
}

// FTPS aggregates §IX and Tables XII/XIII.
type FTPS struct {
	// Supported counts servers completing AUTH TLS (paper: 3.4M = 25%).
	Supported    int
	PctSupported float64
	// RequirePreLogin counts servers demanding TLS before USER (85K).
	RequirePreLogin int
	// UniqueCerts counts distinct certificates (paper: 793K across 3.4M).
	UniqueCerts int
	// SelfSigned counts servers presenting self-signed certs (50%).
	SelfSigned    int
	PctSelfSigned float64
	// TopCerts is Table XII.
	TopCerts []CertCount
	// DeviceCerts is Table XIII: certificate sharing by device families.
	DeviceCerts []DeviceCert
	TotalFTP    int
}

// ComputeFTPS derives §IX, Table XII, and Table XIII.
func ComputeFTPS(in *Input, topN int) FTPS {
	var f FTPS
	type certAgg struct {
		cn         string
		selfSigned bool
		servers    int
		devices    map[string]int
	}
	byFP := map[string]*certAgg{}

	for _, r := range in.FTPRecords() {
		f.TotalFTP++
		if !r.FTPS.Supported {
			continue
		}
		f.Supported++
		if r.FTPS.RequiredPreLogin {
			f.RequirePreLogin++
		}
		cert := r.FTPS.Cert
		if cert == nil {
			continue
		}
		if cert.SelfSigned {
			f.SelfSigned++
		}
		agg, ok := byFP[cert.FingerprintSHA256]
		if !ok {
			agg = &certAgg{cn: cert.CommonName, selfSigned: cert.SelfSigned, devices: map[string]int{}}
			byFP[cert.FingerprintSHA256] = agg
		}
		agg.servers++
		if c := in.Classify(r); c.DeviceModel != "" {
			agg.devices[c.DeviceModel]++
		}
	}

	f.UniqueCerts = len(byFP)
	f.PctSupported = percent(f.Supported, f.TotalFTP)
	f.PctSelfSigned = percent(f.SelfSigned, f.Supported)

	for fp, agg := range byFP {
		f.TopCerts = append(f.TopCerts, CertCount{
			CommonName:  agg.cn,
			Fingerprint: fp,
			Servers:     agg.servers,
			SelfSigned:  agg.selfSigned,
		})
		// A certificate dominated by one device family is a shared
		// device certificate (Table XIII).
		for device, n := range agg.devices {
			if n*2 >= agg.servers && n > 1 {
				f.DeviceCerts = append(f.DeviceCerts, DeviceCert{
					Device:     device,
					CommonName: agg.cn,
					Servers:    n,
				})
			}
		}
	}
	sort.Slice(f.TopCerts, func(i, j int) bool {
		if f.TopCerts[i].Servers != f.TopCerts[j].Servers {
			return f.TopCerts[i].Servers > f.TopCerts[j].Servers
		}
		return f.TopCerts[i].CommonName < f.TopCerts[j].CommonName
	})
	if len(f.TopCerts) > topN {
		f.TopCerts = f.TopCerts[:topN]
	}
	sort.Slice(f.DeviceCerts, func(i, j int) bool {
		if f.DeviceCerts[i].Servers != f.DeviceCerts[j].Servers {
			return f.DeviceCerts[i].Servers > f.DeviceCerts[j].Servers
		}
		return f.DeviceCerts[i].Device < f.DeviceCerts[j].Device
	})
	return f
}
