package analysis

import (
	"sort"

	"ftpcloud/internal/cvedb"
)

// CVECount is one Table XI row.
type CVECount struct {
	Implementation string
	ID             string
	CVSS           float64
	IPs            int
}

// CVEExposure is Table XI plus the headline "more than one million servers
// are vulnerable to known attacks".
type CVEExposure struct {
	Rows []CVECount
	// VulnerableIPs counts hosts matching at least one CVE.
	VulnerableIPs int
	TotalFTP      int
}

// ComputeCVEs derives Table XI from banner version strings.
func ComputeCVEs(in *Input) CVEExposure {
	counts := map[string]*CVECount{}
	var vulnerable, total int
	for _, r := range in.FTPRecords() {
		total++
		c := in.Classify(r)
		if c.Software == "" || c.Version == "" {
			continue
		}
		matches := cvedb.Match(c.Software, c.Version)
		if len(matches) > 0 {
			vulnerable++
		}
		for _, m := range matches {
			row, ok := counts[m.ID]
			if !ok {
				row = &CVECount{Implementation: m.Software, ID: m.ID, CVSS: m.CVSS}
				counts[m.ID] = row
			}
			row.IPs++
		}
	}
	out := CVEExposure{VulnerableIPs: vulnerable, TotalFTP: total}
	for _, row := range counts {
		out.Rows = append(out.Rows, *row)
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].Implementation != out.Rows[j].Implementation {
			return out.Rows[i].Implementation < out.Rows[j].Implementation
		}
		return out.Rows[i].ID > out.Rows[j].ID // newest CVE first, as the paper lists
	})
	return out
}
