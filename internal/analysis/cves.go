package analysis

import (
	"sort"

	"ftpcloud/internal/cvedb"
)

// CVECount is one Table XI row.
type CVECount struct {
	Implementation string
	ID             string
	CVSS           float64
	IPs            int
}

// CVEExposure is Table XI plus the headline "more than one million servers
// are vulnerable to known attacks".
type CVEExposure struct {
	Rows []CVECount
	// VulnerableIPs counts hosts matching at least one CVE.
	VulnerableIPs int
	TotalFTP      int
}

// CVEsAcc accumulates Table XI. The zero value is ready.
type CVEsAcc struct {
	counts            map[string]*CVECount
	vulnerable, total int
}

// Observe folds one record.
func (a *CVEsAcc) Observe(r *Record) {
	if !r.Host.FTP {
		return
	}
	a.total++
	c := r.Class()
	if c.Software == "" || c.Version == "" {
		return
	}
	matches := cvedb.Match(c.Software, c.Version)
	if len(matches) > 0 {
		a.vulnerable++
	}
	if a.counts == nil {
		a.counts = map[string]*CVECount{}
	}
	for _, m := range matches {
		row, ok := a.counts[m.ID]
		if !ok {
			row = &CVECount{Implementation: m.Software, ID: m.ID, CVSS: m.CVSS}
			a.counts[m.ID] = row
		}
		row.IPs++
	}
}

// CVEsSnap is the serializable state of a CVEsAcc.
type CVEsSnap struct {
	Counts            map[string]CVECount
	Vulnerable, Total int
}

// Snapshot captures the accumulator as plain data.
func (a *CVEsAcc) Snapshot() CVEsSnap {
	s := CVEsSnap{Vulnerable: a.vulnerable, Total: a.total}
	if a.counts != nil {
		s.Counts = make(map[string]CVECount, len(a.counts))
		for id, row := range a.counts {
			s.Counts[id] = *row
		}
	}
	return s
}

// Merge folds a snapshot of another accumulator into this one.
func (a *CVEsAcc) Merge(s CVEsSnap) {
	a.vulnerable += s.Vulnerable
	a.total += s.Total
	if len(s.Counts) == 0 {
		return
	}
	if a.counts == nil {
		a.counts = map[string]*CVECount{}
	}
	for id, src := range s.Counts {
		row, ok := a.counts[id]
		if !ok {
			row = &CVECount{Implementation: src.Implementation, ID: src.ID, CVSS: src.CVSS}
			a.counts[id] = row
		}
		row.IPs += src.IPs
	}
}

// Finalize produces Table XI.
func (a *CVEsAcc) Finalize() CVEExposure {
	out := CVEExposure{VulnerableIPs: a.vulnerable, TotalFTP: a.total}
	for _, row := range a.counts {
		out.Rows = append(out.Rows, *row)
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].Implementation != out.Rows[j].Implementation {
			return out.Rows[i].Implementation < out.Rows[j].Implementation
		}
		return out.Rows[i].ID > out.Rows[j].ID // newest CVE first, as the paper lists
	})
	return out
}

// ComputeCVEs derives Table XI from banner version strings.
func ComputeCVEs(in *Input) CVEExposure {
	var acc CVEsAcc
	in.fold(&acc)
	return acc.Finalize()
}
