package analysis

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Snapshot is an Aggregator frozen as plain data: the observed-record count
// plus every accumulator's state, with no pointers into the AS database or
// the world. Two snapshots of disjoint record sets merge into the state a
// single aggregator would have reached over the union — every accumulator
// is an additive fold, and every Finalize tie-breaks deterministically, so
// merge order cannot change any finalized table.
//
// The same serialization backs the sharded census merge and is the
// foundation for checkpoint/resume: a partial aggregate written to disk is
// a resumable position in the census.
type Snapshot struct {
	Observed        int
	Funnel          FunnelSnap
	Classification  ClassificationSnap
	ASConcentration ASConcentrationSnap
	Devices         DevicesSnap
	TopASes         TopASesSnap
	Exposure        ExposureSnap
	CVEs            CVEsSnap
	Malicious       MaliciousSnap
	PortBounce      PortBounceSnap
	FTPS            FTPSSnap
	// Unexpected rides the same version-1 frame: gob tolerates fields
	// absent from older streams, so pre-funnel snapshots decode with an
	// empty ledger.
	Unexpected UnexpectedSnap

	// Checkpoint, when non-nil, upgrades the snapshot from a mergeable
	// aggregate into a resumable census position: the scan cursors, the
	// ledger length, and the robustness counters a resumed run needs to
	// continue exactly where this one stopped. Snapshots carrying it are
	// written as frame version 2; plain aggregates stay version 1 so
	// older readers keep decoding them.
	Checkpoint *CheckpointState
}

// CheckpointState is the census-position half of a checkpoint: everything a
// resumed run needs beyond the aggregate itself. The zmap cyclic-group walk
// makes the scan position one integer per shard (see zmap.Permutation.Seek),
// so the whole scan state is Cursors.
type CheckpointState struct {
	// Seed, Epoch, Scale, Shards, and ScanSize identify the world and
	// pipeline shape this checkpoint belongs to; a resume against any
	// other configuration must be refused.
	Seed     uint64
	Epoch    uint64
	Scale    int
	Shards   int
	ScanSize uint64
	// ConfigDigest fingerprints the remaining census knobs (loss, retries,
	// identification, enumeration budgets …) that change what a run
	// observes. Resume validates it so a checkpoint cannot silently
	// continue under different measurement semantics.
	ConfigDigest uint64
	// Cursors holds each shard's permutation position (group steps
	// consumed), Shards entries in shard order.
	Cursors []uint64
	// Streamed counts the records in the JSONL ledger at checkpoint time;
	// a resume appends after exactly this many lines so the concatenated
	// ledger carries no duplicates.
	Streamed int
	// Probed/Responded carry the discovery counters folded so far.
	Probed    uint64
	Responded uint64
	// Truncated records whether the checkpoint was written on a truncated
	// exit (versus a periodic quiescent write).
	Truncated bool
	// Robustness carries the degradation ledger accumulated so far.
	Robustness RobustnessState
}

// RobustnessState mirrors the census robustness ledger as plain data (the
// core package owns the live type; this is its serialized form).
type RobustnessState struct {
	Records     int
	Partial     int
	Terminated  int
	Truncated   int
	SkippedDirs int
	Retries     int
	DataBytes   int64
	Failures    map[string]int
}

// snapshotMagic and the version byte frame the serialized form so corrupt
// or foreign bytes are rejected before gob sees them. Version 1 is a plain
// aggregate; version 2 adds the checkpoint fields. Encode picks the lowest
// version that represents the snapshot, so aggregates remain readable by
// version-1 decoders.
var snapshotMagic = [4]byte{'F', 'C', 'A', 'S'}

const (
	snapshotVersion           = 1
	snapshotVersionCheckpoint = 2
)

// ErrCorruptSnapshot marks bytes that do not decode as a snapshot — wrong
// magic, unknown version, or a gob stream damaged in transit. Callers
// detect it with errors.Is.
var ErrCorruptSnapshot = errors.New("analysis: corrupt snapshot")

// Snapshot captures the aggregator's full accumulator state as plain data.
// Like the finalize methods it is safe once observation has stopped.
func (a *Aggregator) Snapshot() *Snapshot {
	return &Snapshot{
		Observed:        a.observed,
		Funnel:          a.funnel.Snapshot(),
		Classification:  a.class.Snapshot(),
		ASConcentration: a.asconc.Snapshot(),
		Devices:         a.devices.Snapshot(),
		TopASes:         a.topASes.Snapshot(),
		Exposure:        a.exposure.Snapshot(),
		CVEs:            a.cves.Snapshot(),
		Malicious:       a.malicious.Snapshot(),
		PortBounce:      a.portBounce.Snapshot(),
		FTPS:            a.ftps.Snapshot(),
		Unexpected:      a.unexpected.Snapshot(),
	}
}

// MergeSnapshot folds a snapshot into the aggregator, as if the records it
// summarizes had been observed here. Like Observe it must not race with
// other mutations.
func (a *Aggregator) MergeSnapshot(s *Snapshot) {
	a.observed += s.Observed
	a.funnel.Merge(s.Funnel)
	a.class.Merge(s.Classification)
	a.asconc.Merge(s.ASConcentration)
	a.devices.Merge(s.Devices)
	a.topASes.Merge(s.TopASes)
	a.exposure.Merge(s.Exposure)
	a.cves.Merge(s.CVEs)
	a.malicious.Merge(s.Malicious)
	a.portBounce.Merge(s.PortBounce)
	a.ftps.Merge(s.FTPS)
	a.unexpected.Merge(s.Unexpected)
}

// Merge folds another aggregator's state into this one via its snapshot.
// The other aggregator is left untouched.
func (a *Aggregator) Merge(other *Aggregator) {
	a.MergeSnapshot(other.Snapshot())
}

// Encode writes the snapshot's compact binary form: a fixed header (magic
// plus version) followed by a gob stream. Snapshots without checkpoint
// state are framed as version 1, byte-compatible with earlier readers;
// checkpoints are framed as version 2.
func (s *Snapshot) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	version := byte(snapshotVersion)
	if s.Checkpoint != nil {
		version = snapshotVersionCheckpoint
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	if err := gob.NewEncoder(bw).Encode(s); err != nil {
		return fmt.Errorf("analysis: encoding snapshot: %w", err)
	}
	return bw.Flush()
}

// EncodeBytes returns the snapshot's serialized form.
func (s *Snapshot) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot reads one serialized snapshot. Bytes that do not frame and
// decode cleanly yield an error wrapping ErrCorruptSnapshot; decoding never
// panics on hostile input.
func DecodeSnapshot(r io.Reader) (s *Snapshot, err error) {
	// gob decoding of damaged streams can panic in pathological cases;
	// a corrupt checkpoint must surface as a typed error instead.
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("%w: decode panic: %v", ErrCorruptSnapshot, p)
		}
	}()
	// Buffer the stream ourselves: bufio.Reader satisfies io.ByteReader,
	// so gob reads exactly its message bytes and never overbuffers —
	// which is what makes the trailing-byte check below reliable.
	br := bufio.NewReader(r)
	var header [5]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorruptSnapshot, err)
	}
	if !bytes.Equal(header[:4], snapshotMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, header[:4])
	}
	version := header[4]
	if version != snapshotVersion && version != snapshotVersionCheckpoint {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptSnapshot, version)
	}
	s = new(Snapshot)
	if err := gob.NewDecoder(br).Decode(s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	// A version-1 frame must not smuggle checkpoint fields past readers
	// that validate them, and no frame may carry trailing bytes: a
	// concatenated or damaged checkpoint file is corrupt, not silently
	// half-read.
	if version == snapshotVersion && s.Checkpoint != nil {
		return nil, fmt.Errorf("%w: version-1 frame carries checkpoint state", ErrCorruptSnapshot)
	}
	var trailing [1]byte
	if _, err := io.ReadFull(br, trailing[:]); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after snapshot", ErrCorruptSnapshot)
	}
	return s, nil
}

// DecodeSnapshotBytes decodes a snapshot from its serialized form.
func DecodeSnapshotBytes(b []byte) (*Snapshot, error) {
	return DecodeSnapshot(bytes.NewReader(b))
}
