package analysis

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Snapshot is an Aggregator frozen as plain data: the observed-record count
// plus every accumulator's state, with no pointers into the AS database or
// the world. Two snapshots of disjoint record sets merge into the state a
// single aggregator would have reached over the union — every accumulator
// is an additive fold, and every Finalize tie-breaks deterministically, so
// merge order cannot change any finalized table.
//
// The same serialization backs the sharded census merge and is the
// foundation for checkpoint/resume: a partial aggregate written to disk is
// a resumable position in the census.
type Snapshot struct {
	Observed        int
	Funnel          FunnelSnap
	Classification  ClassificationSnap
	ASConcentration ASConcentrationSnap
	Devices         DevicesSnap
	TopASes         TopASesSnap
	Exposure        ExposureSnap
	CVEs            CVEsSnap
	Malicious       MaliciousSnap
	PortBounce      PortBounceSnap
	FTPS            FTPSSnap
	// Unexpected rides the same version-1 frame: gob tolerates fields
	// absent from older streams, so pre-funnel snapshots decode with an
	// empty ledger.
	Unexpected UnexpectedSnap
}

// snapshotMagic and snapshotVersion frame the serialized form so corrupt or
// foreign bytes are rejected before gob sees them.
var snapshotMagic = [4]byte{'F', 'C', 'A', 'S'}

const snapshotVersion = 1

// ErrCorruptSnapshot marks bytes that do not decode as a snapshot — wrong
// magic, unknown version, or a gob stream damaged in transit. Callers
// detect it with errors.Is.
var ErrCorruptSnapshot = errors.New("analysis: corrupt snapshot")

// Snapshot captures the aggregator's full accumulator state as plain data.
// Like the finalize methods it is safe once observation has stopped.
func (a *Aggregator) Snapshot() *Snapshot {
	return &Snapshot{
		Observed:        a.observed,
		Funnel:          a.funnel.Snapshot(),
		Classification:  a.class.Snapshot(),
		ASConcentration: a.asconc.Snapshot(),
		Devices:         a.devices.Snapshot(),
		TopASes:         a.topASes.Snapshot(),
		Exposure:        a.exposure.Snapshot(),
		CVEs:            a.cves.Snapshot(),
		Malicious:       a.malicious.Snapshot(),
		PortBounce:      a.portBounce.Snapshot(),
		FTPS:            a.ftps.Snapshot(),
		Unexpected:      a.unexpected.Snapshot(),
	}
}

// MergeSnapshot folds a snapshot into the aggregator, as if the records it
// summarizes had been observed here. Like Observe it must not race with
// other mutations.
func (a *Aggregator) MergeSnapshot(s *Snapshot) {
	a.observed += s.Observed
	a.funnel.Merge(s.Funnel)
	a.class.Merge(s.Classification)
	a.asconc.Merge(s.ASConcentration)
	a.devices.Merge(s.Devices)
	a.topASes.Merge(s.TopASes)
	a.exposure.Merge(s.Exposure)
	a.cves.Merge(s.CVEs)
	a.malicious.Merge(s.Malicious)
	a.portBounce.Merge(s.PortBounce)
	a.ftps.Merge(s.FTPS)
	a.unexpected.Merge(s.Unexpected)
}

// Merge folds another aggregator's state into this one via its snapshot.
// The other aggregator is left untouched.
func (a *Aggregator) Merge(other *Aggregator) {
	a.MergeSnapshot(other.Snapshot())
}

// Encode writes the snapshot's compact binary form: a fixed header (magic
// plus version) followed by a gob stream.
func (s *Snapshot) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	if err := gob.NewEncoder(bw).Encode(s); err != nil {
		return fmt.Errorf("analysis: encoding snapshot: %w", err)
	}
	return bw.Flush()
}

// EncodeBytes returns the snapshot's serialized form.
func (s *Snapshot) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot reads one serialized snapshot. Bytes that do not frame and
// decode cleanly yield an error wrapping ErrCorruptSnapshot; decoding never
// panics on hostile input.
func DecodeSnapshot(r io.Reader) (s *Snapshot, err error) {
	// gob decoding of damaged streams can panic in pathological cases;
	// a corrupt checkpoint must surface as a typed error instead.
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("%w: decode panic: %v", ErrCorruptSnapshot, p)
		}
	}()
	var header [5]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorruptSnapshot, err)
	}
	if !bytes.Equal(header[:4], snapshotMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, header[:4])
	}
	if header[4] != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptSnapshot, header[4])
	}
	s = new(Snapshot)
	if err := gob.NewDecoder(r).Decode(s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	return s, nil
}

// DecodeSnapshotBytes decodes a snapshot from its serialized form.
func DecodeSnapshotBytes(b []byte) (*Snapshot, error) {
	return DecodeSnapshot(bytes.NewReader(b))
}
