package analysis

import (
	"sort"
	"strings"

	"ftpcloud/internal/asdb"
	"ftpcloud/internal/campaigns"
	"ftpcloud/internal/dataset"
)

// CampaignHit is per-campaign prevalence.
type CampaignHit struct {
	Key     string
	Name    string
	Servers int
	Files   int
}

// Malicious aggregates §VI: world-writability evidence and the campaigns
// found on anonymous servers.
type Malicious struct {
	// WritableServers / WritableASes mirror "19.4K servers in 3.4K ASes
	// appear to be world-writable".
	WritableServers int
	WritableASes    int
	// AnonUploadConfirmed counts servers that confirmed anonymous
	// uploads via the Pure-FTPd RETR refusal (§VI.A's first evidence
	// type).
	AnonUploadConfirmed int
	// Campaigns is per-campaign prevalence, sorted by server count.
	Campaigns []CampaignHit
	// RATFiles / RATServers mirror "6K RAT related files on 724 servers".
	RATFiles   int
	RATServers int
	// DDoSServers mirrors the history.php/phzLtoxn.php total (1,792).
	DDoSServers int
	// HolyBibleServers and the fraction that also carry write evidence
	// (paper: 1,131 servers, 55.35%).
	HolyBibleServers     int
	HolyBiblePctWritable float64
	// WaReZServers mirrors the timestamped-directory campaign (4,868).
	WaReZServers int
	// RamnitServers counts the botnet's banner (1,051).
	RamnitServers int
	// HTTPOverlap / ScriptingOverlap are the Censys-join statistics:
	// FTP hosts that also run a web server / advertise scripting.
	HTTPOverlap      int
	ScriptingOverlap int
	TotalFTP         int
}

// ComputeMalicious derives §VI.
func ComputeMalicious(in *Input) Malicious {
	var m Malicious
	writableASes := map[*asdb.AS]bool{}
	campServers := map[string]int{}
	campFiles := map[string]int{}
	holyBibleWritable := 0

	for _, r := range in.FTPRecords() {
		m.TotalFTP++
		if info, ok := in.HTTP[r.IP]; ok && info.HTTP {
			m.HTTPOverlap++
			if info.Scripting {
				m.ScriptingOverlap++
			}
		}
		if in.Classify(r).Ramnit {
			m.RamnitServers++
		}
		if !r.AnonymousOK {
			continue
		}

		if Writable(r) {
			m.WritableServers++
			if as := in.AS(r); as != nil {
				writableASes[as] = true
			}
		}
		if r.AnonUploadConfirmed {
			m.AnonUploadConfirmed++
		}

		seenHere := map[string]bool{}
		ratSeen := false
		warezSeen := false
		for i := range r.Files {
			f := &r.Files[i]
			if f.IsDir {
				if campaigns.IsWaReZDir(f.Name) {
					warezSeen = true
				}
				continue
			}
			for _, key := range campaigns.DetectFilename(f.Name) {
				campFiles[key]++
				if !seenHere[key] {
					seenHere[key] = true
					campServers[key]++
				}
				if key == campaigns.KeyRATEval {
					m.RATFiles++
					ratSeen = true
				}
			}
		}
		if ratSeen {
			m.RATServers++
		}
		if warezSeen {
			m.WaReZServers++
			if !seenHere[campaigns.KeyWaReZ] {
				campServers[campaigns.KeyWaReZ]++
			}
		}
		if seenHere[campaigns.KeyDDoSHistory] || seenHere[campaigns.KeyDDoSPhzLtoxn] {
			m.DDoSServers++
		}
		if hasHolyBible(r) {
			m.HolyBibleServers++
			if Writable(r) {
				holyBibleWritable++
			}
		}
	}

	m.WritableASes = len(writableASes)
	m.HolyBiblePctWritable = percent(holyBibleWritable, m.HolyBibleServers)
	for key, n := range campServers {
		c := campaigns.ByKey(key)
		name := key
		if c != nil {
			name = c.Name
		}
		m.Campaigns = append(m.Campaigns, CampaignHit{
			Key: key, Name: name, Servers: n, Files: campFiles[key],
		})
	}
	sort.Slice(m.Campaigns, func(i, j int) bool {
		if m.Campaigns[i].Servers != m.Campaigns[j].Servers {
			return m.Campaigns[i].Servers > m.Campaigns[j].Servers
		}
		return m.Campaigns[i].Key < m.Campaigns[j].Key
	})
	return m
}

func hasHolyBible(r *dataset.HostRecord) bool {
	for i := range r.Files {
		if strings.EqualFold(r.Files[i].Name, "Holy-Bible.html") {
			return true
		}
	}
	return false
}
