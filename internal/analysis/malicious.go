package analysis

import (
	"sort"
	"strings"

	"ftpcloud/internal/campaigns"
	"ftpcloud/internal/dataset"
)

// CampaignHit is per-campaign prevalence.
type CampaignHit struct {
	Key     string
	Name    string
	Servers int
	Files   int
}

// Malicious aggregates §VI: world-writability evidence and the campaigns
// found on anonymous servers.
type Malicious struct {
	// WritableServers / WritableASes mirror "19.4K servers in 3.4K ASes
	// appear to be world-writable".
	WritableServers int
	WritableASes    int
	// AnonUploadConfirmed counts servers that confirmed anonymous
	// uploads via the Pure-FTPd RETR refusal (§VI.A's first evidence
	// type).
	AnonUploadConfirmed int
	// Campaigns is per-campaign prevalence, sorted by server count.
	Campaigns []CampaignHit
	// RATFiles / RATServers mirror "6K RAT related files on 724 servers".
	RATFiles   int
	RATServers int
	// DDoSServers mirrors the history.php/phzLtoxn.php total (1,792).
	DDoSServers int
	// HolyBibleServers and the fraction that also carry write evidence
	// (paper: 1,131 servers, 55.35%).
	HolyBibleServers     int
	HolyBiblePctWritable float64
	// WaReZServers mirrors the timestamped-directory campaign (4,868).
	WaReZServers int
	// RamnitServers counts the botnet's banner (1,051).
	RamnitServers int
	// HTTPOverlap / ScriptingOverlap are the Censys-join statistics:
	// FTP hosts that also run a web server / advertise scripting.
	HTTPOverlap      int
	ScriptingOverlap int
	TotalFTP         int
}

// MaliciousAcc accumulates §VI. The zero value is ready.
type MaliciousAcc struct {
	writableServers     int
	anonUploadConfirmed int
	ratFiles            int
	ratServers          int
	ddosServers         int
	holyBibleServers    int
	holyBibleWritable   int
	warezServers        int
	ramnitServers       int
	httpOverlap         int
	scriptingOverlap    int
	totalFTP            int

	// writableASes keys on the AS number — plain data, so snapshots of two
	// accumulators merge as a set union.
	writableASes map[uint32]bool
	campServers  map[string]int
	campFiles    map[string]int
}

// Observe folds one record.
func (a *MaliciousAcc) Observe(r *Record) {
	host := r.Host
	if !host.FTP {
		return
	}
	a.totalFTP++
	if info, ok := r.HTTP(); ok && info.HTTP {
		a.httpOverlap++
		if info.Scripting {
			a.scriptingOverlap++
		}
	}
	if r.Class().Ramnit {
		a.ramnitServers++
	}
	if !host.AnonymousOK {
		return
	}
	if a.writableASes == nil {
		a.writableASes = map[uint32]bool{}
		a.campServers = map[string]int{}
		a.campFiles = map[string]int{}
	}

	if Writable(host) {
		a.writableServers++
		if as := r.AS(); as != nil {
			a.writableASes[as.Number] = true
		}
	}
	if host.AnonUploadConfirmed {
		a.anonUploadConfirmed++
	}

	seenHere := map[string]bool{}
	ratSeen := false
	warezSeen := false
	for i := range host.Files {
		f := &host.Files[i]
		if f.IsDir {
			if campaigns.IsWaReZDir(f.Name) {
				warezSeen = true
			}
			continue
		}
		for _, key := range campaigns.DetectFilename(f.Name) {
			a.campFiles[key]++
			if !seenHere[key] {
				seenHere[key] = true
				a.campServers[key]++
			}
			if key == campaigns.KeyRATEval {
				a.ratFiles++
				ratSeen = true
			}
		}
	}
	if ratSeen {
		a.ratServers++
	}
	if warezSeen {
		a.warezServers++
		if !seenHere[campaigns.KeyWaReZ] {
			a.campServers[campaigns.KeyWaReZ]++
		}
	}
	if seenHere[campaigns.KeyDDoSHistory] || seenHere[campaigns.KeyDDoSPhzLtoxn] {
		a.ddosServers++
	}
	if hasHolyBible(host) {
		a.holyBibleServers++
		if Writable(host) {
			a.holyBibleWritable++
		}
	}
}

// MaliciousSnap is the serializable state of a MaliciousAcc.
type MaliciousSnap struct {
	WritableServers, AnonUploadConfirmed          int
	RATFiles, RATServers, DDoSServers             int
	HolyBibleServers, HolyBibleWritable           int
	WarezServers, RamnitServers                   int
	HTTPOverlap, ScriptingOverlap, TotalFTP       int
	// WritableASes is the writable-AS set as a sorted slice, so a given
	// accumulator state has one canonical snapshot.
	WritableASes []uint32
	CampServers  map[string]int
	CampFiles    map[string]int
}

// Snapshot captures the accumulator as plain data.
func (a *MaliciousAcc) Snapshot() MaliciousSnap {
	s := MaliciousSnap{
		WritableServers:     a.writableServers,
		AnonUploadConfirmed: a.anonUploadConfirmed,
		RATFiles:            a.ratFiles,
		RATServers:          a.ratServers,
		DDoSServers:         a.ddosServers,
		HolyBibleServers:    a.holyBibleServers,
		HolyBibleWritable:   a.holyBibleWritable,
		WarezServers:        a.warezServers,
		RamnitServers:       a.ramnitServers,
		HTTPOverlap:         a.httpOverlap,
		ScriptingOverlap:    a.scriptingOverlap,
		TotalFTP:            a.totalFTP,
		CampServers:         copyCounts(a.campServers),
		CampFiles:           copyCounts(a.campFiles),
	}
	for n := range a.writableASes {
		s.WritableASes = append(s.WritableASes, n)
	}
	sort.Slice(s.WritableASes, func(i, j int) bool { return s.WritableASes[i] < s.WritableASes[j] })
	return s
}

// Merge folds a snapshot of another accumulator into this one.
func (a *MaliciousAcc) Merge(s MaliciousSnap) {
	a.writableServers += s.WritableServers
	a.anonUploadConfirmed += s.AnonUploadConfirmed
	a.ratFiles += s.RATFiles
	a.ratServers += s.RATServers
	a.ddosServers += s.DDoSServers
	a.holyBibleServers += s.HolyBibleServers
	a.holyBibleWritable += s.HolyBibleWritable
	a.warezServers += s.WarezServers
	a.ramnitServers += s.RamnitServers
	a.httpOverlap += s.HTTPOverlap
	a.scriptingOverlap += s.ScriptingOverlap
	a.totalFTP += s.TotalFTP
	if len(s.WritableASes)+len(s.CampServers)+len(s.CampFiles) == 0 {
		return
	}
	if a.writableASes == nil {
		a.writableASes = map[uint32]bool{}
		a.campServers = map[string]int{}
		a.campFiles = map[string]int{}
	}
	for _, n := range s.WritableASes {
		a.writableASes[n] = true
	}
	addCounts(a.campServers, s.CampServers)
	addCounts(a.campFiles, s.CampFiles)
}

// Finalize produces §VI.
func (a *MaliciousAcc) Finalize() Malicious {
	m := Malicious{
		WritableServers:     a.writableServers,
		WritableASes:        len(a.writableASes),
		AnonUploadConfirmed: a.anonUploadConfirmed,
		RATFiles:            a.ratFiles,
		RATServers:          a.ratServers,
		DDoSServers:         a.ddosServers,
		HolyBibleServers:    a.holyBibleServers,
		WaReZServers:        a.warezServers,
		RamnitServers:       a.ramnitServers,
		HTTPOverlap:         a.httpOverlap,
		ScriptingOverlap:    a.scriptingOverlap,
		TotalFTP:            a.totalFTP,
	}
	m.HolyBiblePctWritable = percent(a.holyBibleWritable, a.holyBibleServers)
	for key, n := range a.campServers {
		c := campaigns.ByKey(key)
		name := key
		if c != nil {
			name = c.Name
		}
		m.Campaigns = append(m.Campaigns, CampaignHit{
			Key: key, Name: name, Servers: n, Files: a.campFiles[key],
		})
	}
	sort.Slice(m.Campaigns, func(i, j int) bool {
		if m.Campaigns[i].Servers != m.Campaigns[j].Servers {
			return m.Campaigns[i].Servers > m.Campaigns[j].Servers
		}
		return m.Campaigns[i].Key < m.Campaigns[j].Key
	})
	return m
}

// ComputeMalicious derives §VI from a retained dataset.
func ComputeMalicious(in *Input) Malicious {
	var acc MaliciousAcc
	in.fold(&acc)
	return acc.Finalize()
}

func hasHolyBible(r *dataset.HostRecord) bool {
	for i := range r.Files {
		if strings.EqualFold(r.Files[i].Name, "Holy-Bible.html") {
			return true
		}
	}
	return false
}
