package analysis

import "sort"

// UnexpectedServices is the identification ledger: what the staged funnel
// shed before enumeration, broken out by sniffed protocol. It is the
// simulation's analogue of LZR's headline result — most endpoints that
// accept a connection on a port do not speak the port's expected protocol —
// and it only populates on runs with the identification stage enabled.
type UnexpectedServices struct {
	// Total counts every shed endpoint.
	Total int
	// Services breaks Total out by protocol, largest first.
	Services []UnexpectedService
}

// UnexpectedService is one protocol's row in the shed ledger.
type UnexpectedService struct {
	Protocol string
	Count    int
	// PctShed is the protocol's share of everything shed.
	PctShed float64
	// SampleBanner is one observed first-response; the lexicographically
	// smallest is kept so the choice is deterministic under any shard
	// merge order.
	SampleBanner string
}

// UnexpectedAcc accumulates the shed ledger incrementally. The zero value is
// ready. Records without a Service (every FTP record, and every record of a
// two-stage run) are ignored, so the accumulator is inert unless the
// identification stage ran.
type UnexpectedAcc struct {
	total   int
	byProto map[string]int
	sample  map[string]string
}

// Observe folds one record.
func (a *UnexpectedAcc) Observe(r *Record) {
	proto := r.Host.Service
	if proto == "" {
		return
	}
	a.total++
	if a.byProto == nil {
		a.byProto = make(map[string]int)
		a.sample = make(map[string]string)
	}
	a.byProto[proto]++
	a.keepSample(proto, r.Host.Banner)
}

// keepSample retains the smallest non-empty banner seen for a protocol.
func (a *UnexpectedAcc) keepSample(proto, banner string) {
	if banner == "" {
		return
	}
	if cur, ok := a.sample[proto]; !ok || banner < cur {
		a.sample[proto] = banner
	}
}

// UnexpectedSnap is the serializable state of an UnexpectedAcc.
type UnexpectedSnap struct {
	Total   int
	ByProto map[string]int
	Sample  map[string]string
}

// Snapshot captures the accumulator as plain data.
func (a *UnexpectedAcc) Snapshot() UnexpectedSnap {
	s := UnexpectedSnap{Total: a.total}
	if a.byProto != nil {
		s.ByProto = make(map[string]int, len(a.byProto))
		for p, n := range a.byProto {
			s.ByProto[p] = n
		}
		s.Sample = make(map[string]string, len(a.sample))
		for p, b := range a.sample {
			s.Sample[p] = b
		}
	}
	return s
}

// Merge folds a snapshot of another accumulator into this one. Counts add;
// samples keep the smallest, so any merge order finalizes identically.
func (a *UnexpectedAcc) Merge(s UnexpectedSnap) {
	a.total += s.Total
	if len(s.ByProto) == 0 {
		return
	}
	if a.byProto == nil {
		a.byProto = make(map[string]int, len(s.ByProto))
		a.sample = make(map[string]string, len(s.Sample))
	}
	for p, n := range s.ByProto {
		a.byProto[p] += n
	}
	for p, b := range s.Sample {
		a.keepSample(p, b)
	}
}

// Finalize produces the ledger table: rows sorted by count descending,
// protocol name ascending on ties — deterministic regardless of fold or
// merge order.
func (a *UnexpectedAcc) Finalize() UnexpectedServices {
	u := UnexpectedServices{Total: a.total}
	for proto, n := range a.byProto {
		u.Services = append(u.Services, UnexpectedService{
			Protocol:     proto,
			Count:        n,
			PctShed:      percent(n, a.total),
			SampleBanner: a.sample[proto],
		})
	}
	sort.Slice(u.Services, func(i, j int) bool {
		if u.Services[i].Count != u.Services[j].Count {
			return u.Services[i].Count > u.Services[j].Count
		}
		return u.Services[i].Protocol < u.Services[j].Protocol
	})
	return u
}

// ComputeUnexpected derives the shed ledger from a retained dataset.
func ComputeUnexpected(in *Input) UnexpectedServices {
	var acc UnexpectedAcc
	in.fold(&acc)
	return acc.Finalize()
}
