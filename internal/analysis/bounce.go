package analysis

import (
	"ftpcloud/internal/dataset"
)

// PortBounce aggregates §VII.B: PORT-validation failures and their
// combinations with NAT and writability.
type PortBounce struct {
	// Tested counts anonymous hosts where the probe ran.
	Tested int
	// NotValidated counts hosts that connected to the third-party
	// collector (paper: 143,073 = 12.74% of anonymous servers).
	NotValidated    int
	PctNotValidated float64
	// HomePLShare is the fraction of failures inside AS12824 home.pl
	// (paper: 71.5%).
	HomePLShare float64
	// NATed counts servers whose PASV reply advertised a different
	// address (paper: 18,947); NATedNotValidated those also failing the
	// PORT check (846).
	NATed             int
	NATedNotValidated int
	// WritableNotValidated counts the bounce-attack-ready combination of
	// world-writable and unvalidated PORT (paper: 1,973).
	WritableNotValidated int
	// FileZillaServers counts FileZilla banners across the population
	// (paper: 409K, most exploitable after login).
	FileZillaServers int
}

// homePLASN is AS12824.
const homePLASN = 12824

// PortBounceAcc accumulates §VII.B. The zero value is ready.
type PortBounceAcc struct {
	b              PortBounce
	homePLFailures int
}

// Observe folds one record.
func (a *PortBounceAcc) Observe(r *Record) {
	host := r.Host
	if !host.FTP {
		return
	}
	if r.Class().Software == "FileZilla Server" {
		a.b.FileZillaServers++
	}
	if !host.AnonymousOK {
		return
	}
	if host.PASVMismatch {
		a.b.NATed++
	}
	if host.PortCheck == dataset.PortNotTested || host.PortCheck == "" {
		return
	}
	a.b.Tested++
	if host.PortCheck != dataset.PortNotValidated {
		return
	}
	a.b.NotValidated++
	if as := r.AS(); as != nil && as.Number == homePLASN {
		a.homePLFailures++
	}
	if host.PASVMismatch {
		a.b.NATedNotValidated++
	}
	if Writable(host) {
		a.b.WritableNotValidated++
	}
}

// PortBounceSnap is the serializable state of a PortBounceAcc. B carries
// only the counter fields — percentages are derived at Finalize.
type PortBounceSnap struct {
	B              PortBounce
	HomePLFailures int
}

// Snapshot captures the accumulator as plain data.
func (a *PortBounceAcc) Snapshot() PortBounceSnap {
	return PortBounceSnap{B: a.b, HomePLFailures: a.homePLFailures}
}

// Merge folds a snapshot of another accumulator into this one.
func (a *PortBounceAcc) Merge(s PortBounceSnap) {
	a.b.Tested += s.B.Tested
	a.b.NotValidated += s.B.NotValidated
	a.b.NATed += s.B.NATed
	a.b.NATedNotValidated += s.B.NATedNotValidated
	a.b.WritableNotValidated += s.B.WritableNotValidated
	a.b.FileZillaServers += s.B.FileZillaServers
	a.homePLFailures += s.HomePLFailures
}

// Finalize produces §VII.B.
func (a *PortBounceAcc) Finalize() PortBounce {
	b := a.b
	b.PctNotValidated = percent(b.NotValidated, b.Tested)
	b.HomePLShare = percent(a.homePLFailures, b.NotValidated)
	return b
}

// ComputePortBounce derives §VII.B from a retained dataset.
func ComputePortBounce(in *Input) PortBounce {
	var acc PortBounceAcc
	in.fold(&acc)
	return acc.Finalize()
}
