package analysis

import (
	"ftpcloud/internal/dataset"
)

// PortBounce aggregates §VII.B: PORT-validation failures and their
// combinations with NAT and writability.
type PortBounce struct {
	// Tested counts anonymous hosts where the probe ran.
	Tested int
	// NotValidated counts hosts that connected to the third-party
	// collector (paper: 143,073 = 12.74% of anonymous servers).
	NotValidated    int
	PctNotValidated float64
	// HomePLShare is the fraction of failures inside AS12824 home.pl
	// (paper: 71.5%).
	HomePLShare float64
	// NATed counts servers whose PASV reply advertised a different
	// address (paper: 18,947); NATedNotValidated those also failing the
	// PORT check (846).
	NATed             int
	NATedNotValidated int
	// WritableNotValidated counts the bounce-attack-ready combination of
	// world-writable and unvalidated PORT (paper: 1,973).
	WritableNotValidated int
	// FileZillaServers counts FileZilla banners across the population
	// (paper: 409K, most exploitable after login).
	FileZillaServers int
}

// homePLASN is AS12824.
const homePLASN = 12824

// ComputePortBounce derives §VII.B.
func ComputePortBounce(in *Input) PortBounce {
	var b PortBounce
	homePLFailures := 0
	for _, r := range in.FTPRecords() {
		if in.Classify(r).Software == "FileZilla Server" {
			b.FileZillaServers++
		}
		if !r.AnonymousOK {
			continue
		}
		if r.PASVMismatch {
			b.NATed++
		}
		if r.PortCheck == dataset.PortNotTested || r.PortCheck == "" {
			continue
		}
		b.Tested++
		if r.PortCheck != dataset.PortNotValidated {
			continue
		}
		b.NotValidated++
		if as := in.AS(r); as != nil && as.Number == homePLASN {
			homePLFailures++
		}
		if r.PASVMismatch {
			b.NATedNotValidated++
		}
		if Writable(r) {
			b.WritableNotValidated++
		}
	}
	b.PctNotValidated = percent(b.NotValidated, b.Tested)
	b.HomePLShare = percent(homePLFailures, b.NotValidated)
	return b
}
