package analysis

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// checkpointFixture returns a populated snapshot carrying checkpoint state,
// exercising every CheckpointState field including nested maps.
func checkpointFixture(t *testing.T) *Snapshot {
	t.Helper()
	in := buildInput(t)
	s := observeAll(t, in).Snapshot()
	s.Checkpoint = &CheckpointState{
		Seed:         42,
		Epoch:        3,
		Scale:        2,
		Shards:       4,
		ScanSize:     1 << 18,
		ConfigDigest: 0xdeadbeefcafe,
		Cursors:      []uint64{100, 2048, 0, 77},
		Streamed:     512,
		Probed:       262144,
		Responded:    9000,
		Truncated:    true,
		Robustness: RobustnessState{
			Records:     512,
			Partial:     3,
			Terminated:  1,
			Truncated:   2,
			SkippedDirs: 9,
			Retries:     40,
			DataBytes:   1 << 20,
			Failures:    map[string]int{"deadline": 1, "canceled": 2},
		},
	}
	return s
}

// TestCheckpointRoundTrip: a version-2 frame carries the checkpoint state
// through encode → decode unchanged, and the embedded aggregate still merges
// like a plain snapshot.
func TestCheckpointRoundTrip(t *testing.T) {
	s := checkpointFixture(t)
	raw, err := s.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if got := raw[4]; got != snapshotVersionCheckpoint {
		t.Fatalf("checkpoint snapshot framed as version %d, want %d", got, snapshotVersionCheckpoint)
	}
	decoded, err := DecodeSnapshotBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Checkpoint == nil {
		t.Fatal("checkpoint state lost in round trip")
	}
	if !reflect.DeepEqual(decoded.Checkpoint, s.Checkpoint) {
		t.Errorf("checkpoint diverges:\n got %+v\nwant %+v", decoded.Checkpoint, s.Checkpoint)
	}
	if decoded.Observed != s.Observed {
		t.Errorf("Observed = %d, want %d", decoded.Observed, s.Observed)
	}
}

// TestCheckpointFrameVersions: plain aggregates stay on version 1 (readable
// by older decoders); only checkpoint-carrying snapshots move to version 2,
// and a version-1 frame smuggling checkpoint state is corrupt.
func TestCheckpointFrameVersions(t *testing.T) {
	in := buildInput(t)
	plain := observeAll(t, in).Snapshot()
	raw, err := plain.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if got := raw[4]; got != snapshotVersion {
		t.Errorf("plain aggregate framed as version %d, want %d", got, snapshotVersion)
	}
	if _, err := DecodeSnapshotBytes(raw); err != nil {
		t.Errorf("version-1 frame failed to decode: %v", err)
	}

	// Forge a version-1 frame whose gob stream carries checkpoint fields.
	cp := checkpointFixture(t)
	forged, err := cp.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	forged[4] = snapshotVersion
	if _, err := DecodeSnapshotBytes(forged); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("version-1 frame with checkpoint state: got %v, want ErrCorruptSnapshot", err)
	}
}

// TestSnapshotDecodeTrailingGarbage: any bytes after the gob stream mean the
// file is damaged or concatenated — the decoder must refuse, not silently
// half-read it.
func TestSnapshotDecodeTrailingGarbage(t *testing.T) {
	for name, s := range map[string]*Snapshot{
		"aggregate":  observeAll(t, buildInput(t)).Snapshot(),
		"checkpoint": checkpointFixture(t),
	} {
		valid, err := s.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		for _, tail := range [][]byte{{0x00}, []byte("junk"), valid} {
			raw := append(append([]byte{}, valid...), tail...)
			if _, err := DecodeSnapshotBytes(raw); !errors.Is(err, ErrCorruptSnapshot) {
				t.Errorf("%s + %d trailing bytes: got %v, want ErrCorruptSnapshot", name, len(tail), err)
			}
		}
		// The untouched encoding still decodes.
		if _, err := DecodeSnapshotBytes(valid); err != nil {
			t.Errorf("%s: clean bytes rejected: %v", name, err)
		}
	}
}

// FuzzCheckpointDecode: checkpoint-bearing frames under arbitrary mutation
// must never panic and never yield an untyped error; frames that do decode
// must round-trip back to identical bytes.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed corpus: a valid v1 aggregate, a valid v2 checkpoint, a truncated
	// checkpoint, and a checkpoint with trailing garbage.
	var empty Snapshot
	if raw, err := empty.EncodeBytes(); err == nil {
		f.Add(raw)
	}
	cp := &Snapshot{Checkpoint: &CheckpointState{
		Seed: 7, Shards: 2, Cursors: []uint64{10, 20}, Streamed: 5,
		Robustness: RobustnessState{Failures: map[string]int{"deadline": 1}},
	}}
	if raw, err := cp.EncodeBytes(); err == nil {
		f.Add(raw)
		f.Add(raw[:len(raw)/2])
		f.Add(append(append([]byte{}, raw...), 0xff, 0x00))
	}
	f.Add([]byte{'F', 'C', 'A', 'S', 2})
	f.Add([]byte{'F', 'C', 'A', 'S', 3, 0x01})
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := DecodeSnapshotBytes(raw)
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Errorf("decode error is not ErrCorruptSnapshot: %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("nil snapshot with nil error")
		}
		// Valid decodes must re-encode and decode to the same snapshot.
		again, err := s.EncodeBytes()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		s2, err := DecodeSnapshotBytes(again)
		if err != nil {
			t.Fatalf("re-encoded bytes rejected: %v", err)
		}
		if !bytes.Equal(mustEncode(t, s), mustEncode(t, s2)) {
			t.Error("snapshot does not round-trip stably")
		}
	})
}

func mustEncode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	raw, err := s.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
