// Package analysis derives every table and figure in the paper's evaluation
// from the census dataset. Each experiment has a typed result and a Compute
// function over the same Input; nothing here consults the world generator —
// only wire-level observations, the AS database, and the external HTTP
// (Censys-equivalent) join.
package analysis

import (
	"runtime"
	"sync"

	"ftpcloud/internal/asdb"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/fingerprint"
	"ftpcloud/internal/simnet"
)

// HTTPInfo is the Censys-style external join: whether an IP also serves
// HTTP and whether that web server advertises server-side scripting.
type HTTPInfo struct {
	HTTP      bool
	Scripting bool
}

// Input is the dataset every experiment consumes.
type Input struct {
	// IPsScanned is the discovery sweep size (Table I row 1).
	IPsScanned uint64
	// Records holds one record per discovery-responsive host.
	Records []*dataset.HostRecord
	// ASDB resolves IP→AS.
	ASDB *asdb.DB
	// HTTP is the external web-scan join keyed by IP string.
	HTTP map[string]HTTPInfo

	// Per-record caches, built once by Prepare and read-only afterwards
	// so analyses can run concurrently over one Input.
	prep  sync.Once
	class map[*dataset.HostRecord]fingerprint.Classification
	as    map[*dataset.HostRecord]*asdb.AS
}

// Prepare builds the per-record classification and AS-resolution caches,
// fanning the fingerprinting work across CPUs. It runs at most once; after
// it returns the caches are immutable, so any number of Compute functions
// may run concurrently. Classify and AS call it lazily — an explicit call
// just front-loads the work.
func (in *Input) Prepare() {
	in.prep.Do(func() {
		n := len(in.Records)
		type derived struct {
			class fingerprint.Classification
			as    *asdb.AS
		}
		byIdx := make([]derived, n)
		workers := runtime.GOMAXPROCS(0)
		if workers > n {
			workers = 1
		}
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					byIdx[i].class = fingerprint.Classify(in.Records[i])
					byIdx[i].as = in.lookupAS(in.Records[i])
				}
			}(lo, hi)
		}
		wg.Wait()
		class := make(map[*dataset.HostRecord]fingerprint.Classification, n)
		as := make(map[*dataset.HostRecord]*asdb.AS, n)
		for i, rec := range in.Records {
			class[rec] = byIdx[i].class
			as[rec] = byIdx[i].as
		}
		in.class = class
		in.as = as
	})
}

// Classify returns the fingerprint classification of a record, answered
// from the Prepare cache. Records outside Input.Records are classified on
// the fly without touching the cache.
func (in *Input) Classify(rec *dataset.HostRecord) fingerprint.Classification {
	in.Prepare()
	if c, ok := in.class[rec]; ok {
		return c
	}
	return fingerprint.Classify(rec)
}

// AS resolves a record's AS, or nil. The per-record result is cached by
// Prepare, so the record's IP string is parsed once per census rather than
// once per analysis.
func (in *Input) AS(rec *dataset.HostRecord) *asdb.AS {
	in.Prepare()
	if as, ok := in.as[rec]; ok {
		return as
	}
	return in.lookupAS(rec)
}

func (in *Input) lookupAS(rec *dataset.HostRecord) *asdb.AS {
	if in.ASDB == nil {
		return nil
	}
	ip, err := simnet.ParseIP(rec.IP)
	if err != nil {
		return nil
	}
	as, ok := in.ASDB.Lookup(ip)
	if !ok {
		return nil
	}
	return as
}

// FTPRecords yields only hosts that spoke FTP.
func (in *Input) FTPRecords() []*dataset.HostRecord {
	out := make([]*dataset.HostRecord, 0, len(in.Records))
	for _, r := range in.Records {
		if r.FTP {
			out = append(out, r)
		}
	}
	return out
}

// AnonRecords yields hosts that allowed anonymous login.
func (in *Input) AnonRecords() []*dataset.HostRecord {
	out := make([]*dataset.HostRecord, 0, len(in.Records))
	for _, r := range in.Records {
		if r.FTP && r.AnonymousOK {
			out = append(out, r)
		}
	}
	return out
}

// Writable reports whether a record carries world-writability evidence.
func Writable(rec *dataset.HostRecord) bool {
	return len(rec.WriteEvidence) > 0
}

// percent guards divide-by-zero.
func percent(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
