// Package analysis derives every table and figure in the paper's evaluation
// from the census dataset. Each experiment has a typed result and two
// equivalent entry points: a streaming accumulator (the *Acc types, folded
// record by record as the enumerator fleet emits hosts — see Aggregator) and
// a batch Compute function over an Input slice. Both paths share the same
// Observe logic, so their outputs are identical by construction. Nothing
// here consults the world generator — only wire-level observations, the AS
// database, and the external HTTP (Censys-equivalent) join.
package analysis

import (
	"ftpcloud/internal/asdb"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/fingerprint"
	"ftpcloud/internal/simnet"
)

// HTTPInfo is the Censys-style external join: whether an IP also serves
// HTTP and whether that web server advertises server-side scripting.
type HTTPInfo struct {
	HTTP      bool
	Scripting bool
}

// Record is the per-host view the accumulators consume: the raw wire
// observations plus lazily derived facts (classification, AS resolution,
// HTTP join) that are computed at most once per record no matter how many
// accumulators ask. This replaces the old post-hoc map[*HostRecord] caches:
// derivation now happens at observe time, while the record is hot, and
// nothing outlives the Record once every accumulator has folded it.
type Record struct {
	Host *dataset.HostRecord

	d *deriver

	class    fingerprint.Classification
	classSet bool
	as       *asdb.AS
	asSet    bool
	http     HTTPInfo
	httpOK   bool
	httpSet  bool
	ip       simnet.IP
	ipOK     bool
	ipSet    bool
}

// deriver supplies a Record's derived facts: the AS database and the HTTP
// join source. The join is a hook rather than a map so the streaming path
// can answer from its own source without materializing a map first.
type deriver struct {
	db   *asdb.DB
	http func(*Record) (HTTPInfo, bool)
}

// Class returns the record's fingerprint classification, computed on first
// use.
func (r *Record) Class() fingerprint.Classification {
	if !r.classSet {
		r.class = fingerprint.Classify(r.Host)
		r.classSet = true
	}
	return r.class
}

// AS resolves the record's AS, or nil, parsing the IP string at most once
// per record (shared with the HTTP join via IPNum).
func (r *Record) AS() *asdb.AS {
	if !r.asSet {
		r.asSet = true
		if r.d != nil && r.d.db != nil {
			if ip, ok := r.IPNum(); ok {
				if as, found := r.d.db.Lookup(ip); found {
					r.as = as
				}
			}
		}
	}
	return r.as
}

// HTTP returns the external web-scan join for this host, if any.
func (r *Record) HTTP() (HTTPInfo, bool) {
	if !r.httpSet {
		r.httpSet = true
		if r.d != nil && r.d.http != nil {
			r.http, r.httpOK = r.d.http(r)
		}
	}
	return r.http, r.httpOK
}

// IPNum returns the record's address in numeric form, parsed once.
func (r *Record) IPNum() (simnet.IP, bool) {
	if !r.ipSet {
		r.ipSet = true
		ip, err := simnet.ParseIP(r.Host.IP)
		if err == nil {
			r.ip = ip
			r.ipOK = true
		}
	}
	return r.ip, r.ipOK
}

// observer is the incremental-accumulator contract every *Acc implements:
// fold one record into the running aggregate. Finalize methods are separate
// and pure, so tables can be produced repeatedly from the same state.
type observer interface {
	Observe(r *Record)
}

// Input is the batch-mode dataset: a retained record slice plus the join
// sources. Every Compute function folds it through the same accumulators
// the streaming path uses.
type Input struct {
	// IPsScanned is the discovery sweep size (Table I row 1).
	IPsScanned uint64
	// Records holds one record per discovery-responsive host.
	Records []*dataset.HostRecord
	// ASDB resolves IP→AS.
	ASDB *asdb.DB
	// HTTP is the external web-scan join keyed by IP string.
	HTTP map[string]HTTPInfo
}

// deriver builds the derivation hooks for this Input's join sources.
func (in *Input) deriver() deriver {
	return deriver{
		db: in.ASDB,
		http: func(r *Record) (HTTPInfo, bool) {
			info, ok := in.HTTP[r.Host.IP]
			return info, ok
		},
	}
}

// fold streams every record through the given accumulators, sharing one
// derived Record view per host so classification and AS resolution happen
// at most once no matter how many accumulators run.
func (in *Input) fold(obs ...observer) {
	d := in.deriver()
	for _, host := range in.Records {
		r := Record{Host: host, d: &d}
		for _, o := range obs {
			o.Observe(&r)
		}
	}
}

// Classify returns the fingerprint classification of a record.
func (in *Input) Classify(rec *dataset.HostRecord) fingerprint.Classification {
	return fingerprint.Classify(rec)
}

// AS resolves a record's AS, or nil.
func (in *Input) AS(rec *dataset.HostRecord) *asdb.AS {
	if in.ASDB == nil {
		return nil
	}
	ip, err := simnet.ParseIP(rec.IP)
	if err != nil {
		return nil
	}
	as, ok := in.ASDB.Lookup(ip)
	if !ok {
		return nil
	}
	return as
}

// FTPRecords yields only hosts that spoke FTP.
func (in *Input) FTPRecords() []*dataset.HostRecord {
	out := make([]*dataset.HostRecord, 0, len(in.Records))
	for _, r := range in.Records {
		if r.FTP {
			out = append(out, r)
		}
	}
	return out
}

// AnonRecords yields hosts that allowed anonymous login.
func (in *Input) AnonRecords() []*dataset.HostRecord {
	out := make([]*dataset.HostRecord, 0, len(in.Records))
	for _, r := range in.Records {
		if r.FTP && r.AnonymousOK {
			out = append(out, r)
		}
	}
	return out
}

// Writable reports whether a record carries world-writability evidence.
func Writable(rec *dataset.HostRecord) bool {
	return len(rec.WriteEvidence) > 0
}

// percent guards divide-by-zero.
func percent(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
