// Package analysis derives every table and figure in the paper's evaluation
// from the census dataset. Each experiment has a typed result and a Compute
// function over the same Input; nothing here consults the world generator —
// only wire-level observations, the AS database, and the external HTTP
// (Censys-equivalent) join.
package analysis

import (
	"ftpcloud/internal/asdb"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/fingerprint"
	"ftpcloud/internal/simnet"
)

// HTTPInfo is the Censys-style external join: whether an IP also serves
// HTTP and whether that web server advertises server-side scripting.
type HTTPInfo struct {
	HTTP      bool
	Scripting bool
}

// Input is the dataset every experiment consumes.
type Input struct {
	// IPsScanned is the discovery sweep size (Table I row 1).
	IPsScanned uint64
	// Records holds one record per discovery-responsive host.
	Records []*dataset.HostRecord
	// ASDB resolves IP→AS.
	ASDB *asdb.DB
	// HTTP is the external web-scan join keyed by IP string.
	HTTP map[string]HTTPInfo

	// classifications cache, built lazily.
	class map[*dataset.HostRecord]fingerprint.Classification
}

// Classify returns (and caches) the fingerprint classification of a record.
// The cache is not synchronized: analyses run sequentially over one Input.
func (in *Input) Classify(rec *dataset.HostRecord) fingerprint.Classification {
	if in.class == nil {
		in.class = make(map[*dataset.HostRecord]fingerprint.Classification, len(in.Records))
	}
	if c, ok := in.class[rec]; ok {
		return c
	}
	c := fingerprint.Classify(rec)
	in.class[rec] = c
	return c
}

// AS resolves a record's AS, or nil.
func (in *Input) AS(rec *dataset.HostRecord) *asdb.AS {
	if in.ASDB == nil {
		return nil
	}
	ip, err := simnet.ParseIP(rec.IP)
	if err != nil {
		return nil
	}
	as, ok := in.ASDB.Lookup(ip)
	if !ok {
		return nil
	}
	return as
}

// FTPRecords yields only hosts that spoke FTP.
func (in *Input) FTPRecords() []*dataset.HostRecord {
	out := make([]*dataset.HostRecord, 0, len(in.Records))
	for _, r := range in.Records {
		if r.FTP {
			out = append(out, r)
		}
	}
	return out
}

// AnonRecords yields hosts that allowed anonymous login.
func (in *Input) AnonRecords() []*dataset.HostRecord {
	out := make([]*dataset.HostRecord, 0, len(in.Records))
	for _, r := range in.Records {
		if r.FTP && r.AnonymousOK {
			out = append(out, r)
		}
	}
	return out
}

// Writable reports whether a record carries world-writability evidence.
func Writable(rec *dataset.HostRecord) bool {
	return len(rec.WriteEvidence) > 0
}

// percent guards divide-by-zero.
func percent(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
