package analysis

import (
	"regexp"
	"sort"
	"strings"

	"ftpcloud/internal/dataset"
	"ftpcloud/internal/personality"
)

// ExtensionCount is one Table VIII row.
type ExtensionCount struct {
	Ext     string
	Files   int
	Servers int
}

// SensitiveClass is one Table IX row.
type SensitiveClass struct {
	Type        string // "Financial Information", "Password Databases", ...
	Name        string // "TurboTax Export", ...
	Servers     int
	Files       int
	Readable    int
	NonReadable int
	UnkReadable int
}

// Exposure aggregates §V: what anonymous FTP leaks.
type Exposure struct {
	// Extensions is Table VIII, computed over identified SOHO devices.
	Extensions []ExtensionCount
	// Sensitive is Table IX.
	Sensitive []SensitiveClass
	// IndexHTMLFiles/Servers mirror the "index.html is the most common
	// file" observation.
	IndexHTMLFiles   int
	IndexHTMLServers int
	// Photo library stats.
	PhotoFiles    int
	PhotoReadable int
	PhotoServers  int
	// OS-root exposure counts.
	OSRootLinux   int
	OSRootWindows int
	// Scripting-source exposure.
	HtaccessFiles   int
	HtaccessServers int
	ScriptFiles     int
	ScriptServers   int
	// ExposingServers counts anonymous servers listing any entry at all
	// ("24% exposed some form of data").
	ExposingServers int
	AnonServers     int
	// RobotsSeen / RobotsExcludeAll mirror the robots.txt adoption stats.
	RobotsSeen       int
	RobotsExcludeAll int
	// Truncated counts hosts whose tree exceeded the request cap.
	Truncated int

	// Per-server sets feeding Table X.
	sensitiveServers map[*dataset.HostRecord]bool
	photoServers     map[*dataset.HostRecord]bool
	osRootServers    map[*dataset.HostRecord]bool
	scriptingServers map[*dataset.HostRecord]bool
}

var photoNamePattern = regexp.MustCompile(`^(?i)(DSC|DSCN|IMG|IMGP|P|PICT)[-_]?\d{3,}\.(jpe?g)$`)

var scriptExtensions = map[string]bool{
	"php": true, "asp": true, "aspx": true, "jsp": true, "cgi": true, "pl": true,
}

// sensitiveMatcher classifies a filename into a Table IX class.
type sensitiveMatcher struct {
	typ, name string
	match     func(name, lower string) bool
}

var sensitiveMatchers = []sensitiveMatcher{
	{"Financial Information", "TurboTax Export", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".txf") || strings.Contains(lower, "turbotax")
	}},
	{"Financial Information", "Quicken Data", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".qdf")
	}},
	{"Password Databases", "KeePass/KeePassX", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".kdbx") || strings.HasSuffix(lower, ".kdb")
	}},
	{"Password Databases", "1Password", func(name, lower string) bool {
		return strings.Contains(lower, "agilekeychain")
	}},
	{"Key Material", "SSH host private keys", func(name, lower string) bool {
		return strings.Contains(lower, "ssh_host_") && !strings.HasSuffix(lower, ".pub")
	}},
	{"Key Material", "Putty SSH client keys", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".ppk")
	}},
	{"Key Material", `"priv" .pem files`, func(name, lower string) bool {
		return strings.HasSuffix(lower, ".pem") && strings.Contains(lower, "priv")
	}},
	{"Other", "shadow files", func(name, lower string) bool {
		return lower == "shadow" || strings.HasPrefix(lower, "shadow.")
	}},
	{"Other", ".pst files", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".pst")
	}},
}

// linuxRootMarkers / windowsRootMarkers follow §V's detection method.
var (
	linuxRootMarkers   = []string{"/bin", "/var", "/boot", "/etc"}
	windowsRootMarkers = [][]string{
		{"/Windows", "/Program Files", "/Users"},
		{"/WINDOWS", "/Program Files", "/Documents and Settings"},
	}
)

// ComputeExposure derives Tables VIII and IX plus §V's prose statistics.
func ComputeExposure(in *Input) Exposure {
	e := Exposure{
		sensitiveServers: make(map[*dataset.HostRecord]bool),
		photoServers:     make(map[*dataset.HostRecord]bool),
		osRootServers:    make(map[*dataset.HostRecord]bool),
		scriptingServers: make(map[*dataset.HostRecord]bool),
	}
	extFiles := map[string]int{}
	extServers := map[string]map[*dataset.HostRecord]bool{}
	sens := map[string]*SensitiveClass{}
	for _, m := range sensitiveMatchers {
		sens[m.name] = &SensitiveClass{Type: m.typ, Name: m.name}
	}

	for _, r := range in.AnonRecords() {
		e.AnonServers++
		if r.RobotsTxt != "" {
			e.RobotsSeen++
			if r.RobotsExcludeAll {
				e.RobotsExcludeAll++
			}
		}
		if r.ListingTruncated {
			e.Truncated++
		}
		if len(r.Files) == 0 {
			continue
		}
		e.ExposingServers++

		c := in.Classify(r)
		isSOHO := c.Category == personality.CategoryEmbedded && !c.ProviderDeployed

		dirs := map[string]bool{}
		indexSeen, photoSeen := false, false
		scriptSeen, htaccessSeen := false, false
		sensSeen := map[string]bool{}

		for i := range r.Files {
			f := &r.Files[i]
			if f.IsDir {
				dirs[f.Path] = true
				continue
			}
			lower := strings.ToLower(f.Name)

			if isSOHO {
				if dot := strings.LastIndexByte(lower, '.'); dot >= 0 && dot < len(lower)-1 {
					ext := lower[dot+1:]
					extFiles["."+ext]++
					set, ok := extServers["."+ext]
					if !ok {
						set = make(map[*dataset.HostRecord]bool)
						extServers["."+ext] = set
					}
					set[r] = true
				}
			}

			if lower == "index.html" {
				e.IndexHTMLFiles++
				indexSeen = true
			}
			if photoNamePattern.MatchString(f.Name) {
				e.PhotoFiles++
				if f.Read == dataset.ReadYes || f.Read == dataset.ReadUnknown {
					e.PhotoReadable++
				}
				photoSeen = true
			}
			if lower == ".htaccess" {
				e.HtaccessFiles++
				htaccessSeen = true
			}
			if dot := strings.LastIndexByte(lower, '.'); dot >= 0 {
				if scriptExtensions[lower[dot+1:]] {
					e.ScriptFiles++
					scriptSeen = true
				}
			}

			for _, m := range sensitiveMatchers {
				if !m.match(f.Name, lower) {
					continue
				}
				sc := sens[m.name]
				sc.Files++
				switch f.Read {
				case dataset.ReadYes:
					sc.Readable++
				case dataset.ReadNo:
					sc.NonReadable++
				default:
					sc.UnkReadable++
				}
				if !sensSeen[m.name] {
					sensSeen[m.name] = true
					sc.Servers++
				}
				break
			}
		}

		if indexSeen {
			e.IndexHTMLServers++
		}
		if photoSeen {
			e.PhotoServers++
			e.photoServers[r] = true
		}
		if scriptSeen {
			e.ScriptServers++
			e.scriptingServers[r] = true
		}
		if htaccessSeen {
			e.HtaccessServers++
			if !scriptSeen {
				e.scriptingServers[r] = true
			}
		}
		if len(sensSeen) > 0 {
			e.sensitiveServers[r] = true
		}

		if countMarkers(dirs, linuxRootMarkers) >= 3 {
			e.OSRootLinux++
			e.osRootServers[r] = true
		} else {
			for _, markers := range windowsRootMarkers {
				if countMarkers(dirs, markers) >= 2 {
					e.OSRootWindows++
					e.osRootServers[r] = true
					break
				}
			}
		}
	}

	for ext, n := range extFiles {
		e.Extensions = append(e.Extensions, ExtensionCount{
			Ext: ext, Files: n, Servers: len(extServers[ext]),
		})
	}
	sort.Slice(e.Extensions, func(i, j int) bool {
		if e.Extensions[i].Files != e.Extensions[j].Files {
			return e.Extensions[i].Files > e.Extensions[j].Files
		}
		return e.Extensions[i].Ext < e.Extensions[j].Ext
	})

	for _, m := range sensitiveMatchers {
		e.Sensitive = append(e.Sensitive, *sens[m.name])
	}
	return e
}

func countMarkers(dirs map[string]bool, markers []string) int {
	n := 0
	for _, m := range markers {
		if dirs[m] {
			n++
		}
	}
	return n
}
