package analysis

import (
	"regexp"
	"sort"
	"strings"

	"ftpcloud/internal/dataset"
	"ftpcloud/internal/fingerprint"
	"ftpcloud/internal/personality"
)

// ExtensionCount is one Table VIII row.
type ExtensionCount struct {
	Ext     string
	Files   int
	Servers int
}

// SensitiveClass is one Table IX row.
type SensitiveClass struct {
	Type        string // "Financial Information", "Password Databases", ...
	Name        string // "TurboTax Export", ...
	Servers     int
	Files       int
	Readable    int
	NonReadable int
	UnkReadable int
}

// Exposure aggregates §V: what anonymous FTP leaks.
type Exposure struct {
	// Extensions is Table VIII, computed over identified SOHO devices.
	Extensions []ExtensionCount
	// Sensitive is Table IX.
	Sensitive []SensitiveClass
	// IndexHTMLFiles/Servers mirror the "index.html is the most common
	// file" observation.
	IndexHTMLFiles   int
	IndexHTMLServers int
	// Photo library stats.
	PhotoFiles    int
	PhotoReadable int
	PhotoServers  int
	// OS-root exposure counts.
	OSRootLinux   int
	OSRootWindows int
	// Scripting-source exposure.
	HtaccessFiles   int
	HtaccessServers int
	ScriptFiles     int
	ScriptServers   int
	// ExposingServers counts anonymous servers listing any entry at all
	// ("24% exposed some form of data").
	ExposingServers int
	AnonServers     int
	// RobotsSeen / RobotsExcludeAll mirror the robots.txt adoption stats.
	RobotsSeen       int
	RobotsExcludeAll int
	// Truncated counts hosts whose tree exceeded the request cap.
	Truncated int
}

// ExposureByDevice is Table X: which device classes account for each
// exposure type. Percentages are of servers showing that exposure.
type ExposureByDevice struct {
	// Rows map exposure type → class name → percentage.
	Rows map[string]map[string]float64
	// Totals is the number of servers per exposure type.
	Totals map[string]int
}

var photoNamePattern = regexp.MustCompile(`^(?i)(DSC|DSCN|IMG|IMGP|P|PICT)[-_]?\d{3,}\.(jpe?g)$`)

var scriptExtensions = map[string]bool{
	"php": true, "asp": true, "aspx": true, "jsp": true, "cgi": true, "pl": true,
}

// sensitiveMatcher classifies a filename into a Table IX class.
type sensitiveMatcher struct {
	typ, name string
	match     func(name, lower string) bool
}

var sensitiveMatchers = []sensitiveMatcher{
	{"Financial Information", "TurboTax Export", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".txf") || strings.Contains(lower, "turbotax")
	}},
	{"Financial Information", "Quicken Data", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".qdf")
	}},
	{"Password Databases", "KeePass/KeePassX", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".kdbx") || strings.HasSuffix(lower, ".kdb")
	}},
	{"Password Databases", "1Password", func(name, lower string) bool {
		return strings.Contains(lower, "agilekeychain")
	}},
	{"Key Material", "SSH host private keys", func(name, lower string) bool {
		return strings.Contains(lower, "ssh_host_") && !strings.HasSuffix(lower, ".pub")
	}},
	{"Key Material", "Putty SSH client keys", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".ppk")
	}},
	{"Key Material", `"priv" .pem files`, func(name, lower string) bool {
		return strings.HasSuffix(lower, ".pem") && strings.Contains(lower, "priv")
	}},
	{"Other", "shadow files", func(name, lower string) bool {
		return lower == "shadow" || strings.HasPrefix(lower, "shadow.")
	}},
	{"Other", ".pst files", func(name, lower string) bool {
		return strings.HasSuffix(lower, ".pst")
	}},
}

// linuxRootMarkers / windowsRootMarkers follow §V's detection method.
var (
	linuxRootMarkers   = []string{"/bin", "/var", "/boot", "/etc"}
	windowsRootMarkers = [][]string{
		{"/Windows", "/Program Files", "/Users"},
		{"/WINDOWS", "/Program Files", "/Documents and Settings"},
	}
)

// exposureTypes is Table X's row set (plus the derived "All" row).
var exposureTypes = []string{
	"Sensitive Documents", "Photo Libraries", "Root File Systems", "Scripting Source",
}

// exposureClassOf maps a classification to Table X's column set.
func exposureClassOf(c fingerprint.Classification) string {
	switch {
	case !c.Known():
		return "Unk"
	case c.Category == personality.CategoryHosted:
		return "Hosting"
	case c.Category == personality.CategoryGeneric:
		return "Generic"
	case c.DeviceClass == personality.DeviceNAS || c.DeviceClass == personality.DeviceStorage:
		return "NAS"
	case c.DeviceClass == personality.DeviceHomeRouter:
		return "Router"
	default:
		return "Other Embedded"
	}
}

// ExposureAcc accumulates §V plus Table X in one pass. Unlike the old
// slice-path implementation it keeps no per-server record sets — each
// record's exposure types and device class are resolved while the record
// is hot, so only counters survive and the listing memory can be freed.
// The zero value is ready.
type ExposureAcc struct {
	exp Exposure

	extFiles   map[string]int
	extServers map[string]int
	sens       map[string]*SensitiveClass

	// Table X: exposure type → device class → server count.
	typeClasses map[string]map[string]int
	typeTotals  map[string]int
}

func (a *ExposureAcc) init() {
	a.extFiles = map[string]int{}
	a.extServers = map[string]int{}
	a.sens = map[string]*SensitiveClass{}
	for _, m := range sensitiveMatchers {
		a.sens[m.name] = &SensitiveClass{Type: m.typ, Name: m.name}
	}
	a.typeClasses = map[string]map[string]int{}
	a.typeTotals = map[string]int{}
}

// Observe folds one record.
func (a *ExposureAcc) Observe(r *Record) {
	host := r.Host
	if !host.FTP || !host.AnonymousOK {
		return
	}
	if a.sens == nil {
		a.init()
	}
	e := &a.exp
	e.AnonServers++
	if host.RobotsTxt != "" {
		e.RobotsSeen++
		if host.RobotsExcludeAll {
			e.RobotsExcludeAll++
		}
	}
	if host.ListingTruncated {
		e.Truncated++
	}
	if len(host.Files) == 0 {
		return
	}
	e.ExposingServers++

	c := r.Class()
	isSOHO := c.Category == personality.CategoryEmbedded && !c.ProviderDeployed

	dirs := map[string]bool{}
	indexSeen, photoSeen := false, false
	scriptSeen, htaccessSeen := false, false
	sensSeen := map[string]bool{}
	var extSeen map[string]bool
	if isSOHO {
		extSeen = map[string]bool{}
	}

	for i := range host.Files {
		f := &host.Files[i]
		if f.IsDir {
			dirs[f.Path] = true
			continue
		}
		lower := strings.ToLower(f.Name)

		if isSOHO {
			if dot := strings.LastIndexByte(lower, '.'); dot >= 0 && dot < len(lower)-1 {
				ext := "." + lower[dot+1:]
				a.extFiles[ext]++
				if !extSeen[ext] {
					extSeen[ext] = true
					a.extServers[ext]++
				}
			}
		}

		if lower == "index.html" {
			e.IndexHTMLFiles++
			indexSeen = true
		}
		if photoNamePattern.MatchString(f.Name) {
			e.PhotoFiles++
			if f.Read == dataset.ReadYes || f.Read == dataset.ReadUnknown {
				e.PhotoReadable++
			}
			photoSeen = true
		}
		if lower == ".htaccess" {
			e.HtaccessFiles++
			htaccessSeen = true
		}
		if dot := strings.LastIndexByte(lower, '.'); dot >= 0 {
			if scriptExtensions[lower[dot+1:]] {
				e.ScriptFiles++
				scriptSeen = true
			}
		}

		for _, m := range sensitiveMatchers {
			if !m.match(f.Name, lower) {
				continue
			}
			sc := a.sens[m.name]
			sc.Files++
			switch f.Read {
			case dataset.ReadYes:
				sc.Readable++
			case dataset.ReadNo:
				sc.NonReadable++
			default:
				sc.UnkReadable++
			}
			if !sensSeen[m.name] {
				sensSeen[m.name] = true
				sc.Servers++
			}
			break
		}
	}

	if indexSeen {
		e.IndexHTMLServers++
	}
	if photoSeen {
		e.PhotoServers++
	}
	if scriptSeen {
		e.ScriptServers++
	}
	if htaccessSeen {
		e.HtaccessServers++
	}

	osRootSeen := false
	if countMarkers(dirs, linuxRootMarkers) >= 3 {
		e.OSRootLinux++
		osRootSeen = true
	} else {
		for _, markers := range windowsRootMarkers {
			if countMarkers(dirs, markers) >= 2 {
				e.OSRootWindows++
				osRootSeen = true
				break
			}
		}
	}

	// Table X: record which exposure types this server exhibits, bucketed
	// by its device class, while the classification is still at hand.
	exhibited := map[string]bool{
		"Sensitive Documents": len(sensSeen) > 0,
		"Photo Libraries":     photoSeen,
		"Root File Systems":   osRootSeen,
		"Scripting Source":    scriptSeen || htaccessSeen,
	}
	any := false
	cls := exposureClassOf(c)
	for _, typ := range exposureTypes {
		if !exhibited[typ] {
			continue
		}
		any = true
		a.bumpType(typ, cls)
	}
	if any {
		a.bumpType("All", cls)
	}
}

func (a *ExposureAcc) bumpType(typ, cls string) {
	m, ok := a.typeClasses[typ]
	if !ok {
		m = map[string]int{}
		a.typeClasses[typ] = m
	}
	m[cls]++
	a.typeTotals[typ]++
}

// ExposureSnap is the serializable state of an ExposureAcc. Exp carries
// only the counter fields — the Extensions/Sensitive slices are derived at
// Finalize and never populated in the accumulator.
type ExposureSnap struct {
	Exp         Exposure
	ExtFiles    map[string]int
	ExtServers  map[string]int
	Sens        map[string]SensitiveClass
	TypeClasses map[string]map[string]int
	TypeTotals  map[string]int
}

// Snapshot captures the accumulator as plain data.
func (a *ExposureAcc) Snapshot() ExposureSnap {
	s := ExposureSnap{
		Exp:        a.exp,
		ExtFiles:   copyCounts(a.extFiles),
		ExtServers: copyCounts(a.extServers),
		TypeTotals: copyCounts(a.typeTotals),
	}
	if a.sens != nil {
		s.Sens = make(map[string]SensitiveClass, len(a.sens))
		for name, sc := range a.sens {
			s.Sens[name] = *sc
		}
	}
	if a.typeClasses != nil {
		s.TypeClasses = make(map[string]map[string]int, len(a.typeClasses))
		for typ, m := range a.typeClasses {
			s.TypeClasses[typ] = copyCounts(m)
		}
	}
	return s
}

// Merge folds a snapshot of another accumulator into this one.
func (a *ExposureAcc) Merge(s ExposureSnap) {
	e := &a.exp
	o := s.Exp
	e.AnonServers += o.AnonServers
	e.ExposingServers += o.ExposingServers
	e.IndexHTMLFiles += o.IndexHTMLFiles
	e.IndexHTMLServers += o.IndexHTMLServers
	e.PhotoFiles += o.PhotoFiles
	e.PhotoReadable += o.PhotoReadable
	e.PhotoServers += o.PhotoServers
	e.OSRootLinux += o.OSRootLinux
	e.OSRootWindows += o.OSRootWindows
	e.HtaccessFiles += o.HtaccessFiles
	e.HtaccessServers += o.HtaccessServers
	e.ScriptFiles += o.ScriptFiles
	e.ScriptServers += o.ScriptServers
	e.RobotsSeen += o.RobotsSeen
	e.RobotsExcludeAll += o.RobotsExcludeAll
	e.Truncated += o.Truncated
	if len(s.ExtFiles)+len(s.ExtServers)+len(s.Sens)+len(s.TypeClasses)+len(s.TypeTotals) == 0 {
		return
	}
	if a.sens == nil {
		a.init()
	}
	addCounts(a.extFiles, s.ExtFiles)
	addCounts(a.extServers, s.ExtServers)
	for name, src := range s.Sens {
		sc, ok := a.sens[name]
		if !ok {
			sc = &SensitiveClass{Type: src.Type, Name: src.Name}
			a.sens[name] = sc
		}
		sc.Servers += src.Servers
		sc.Files += src.Files
		sc.Readable += src.Readable
		sc.NonReadable += src.NonReadable
		sc.UnkReadable += src.UnkReadable
	}
	for typ, src := range s.TypeClasses {
		m, ok := a.typeClasses[typ]
		if !ok {
			m = map[string]int{}
			a.typeClasses[typ] = m
		}
		addCounts(m, src)
	}
	addCounts(a.typeTotals, s.TypeTotals)
}

// Finalize produces Tables VIII/IX and §V's prose statistics.
func (a *ExposureAcc) Finalize() Exposure {
	e := a.exp
	e.Extensions = nil
	for ext, n := range a.extFiles {
		e.Extensions = append(e.Extensions, ExtensionCount{
			Ext: ext, Files: n, Servers: a.extServers[ext],
		})
	}
	sort.Slice(e.Extensions, func(i, j int) bool {
		if e.Extensions[i].Files != e.Extensions[j].Files {
			return e.Extensions[i].Files > e.Extensions[j].Files
		}
		return e.Extensions[i].Ext < e.Extensions[j].Ext
	})
	e.Sensitive = nil
	for _, m := range sensitiveMatchers {
		if sc, ok := a.sens[m.name]; ok {
			e.Sensitive = append(e.Sensitive, *sc)
		} else {
			e.Sensitive = append(e.Sensitive, SensitiveClass{Type: m.typ, Name: m.name})
		}
	}
	return e
}

// FinalizeByDevice produces Table X.
func (a *ExposureAcc) FinalizeByDevice() ExposureByDevice {
	out := ExposureByDevice{
		Rows:   make(map[string]map[string]float64),
		Totals: make(map[string]int),
	}
	for _, typ := range append(append([]string{}, exposureTypes...), "All") {
		total := a.typeTotals[typ]
		row := make(map[string]float64)
		for cls, n := range a.typeClasses[typ] {
			row[cls] = percent(n, total)
		}
		out.Rows[typ] = row
		out.Totals[typ] = total
	}
	return out
}

// ComputeExposure derives Tables VIII and IX plus §V from a retained
// dataset.
func ComputeExposure(in *Input) Exposure {
	var acc ExposureAcc
	in.fold(&acc)
	return acc.Finalize()
}

// ComputeExposureByDevice derives Table X from a retained dataset.
func ComputeExposureByDevice(in *Input) ExposureByDevice {
	var acc ExposureAcc
	in.fold(&acc)
	return acc.FinalizeByDevice()
}

func countMarkers(dirs map[string]bool, markers []string) int {
	n := 0
	for _, m := range markers {
		if dirs[m] {
			n++
		}
	}
	return n
}
