package analysis

// Funnel is Table I: the discovery-to-anonymous scan funnel.
type Funnel struct {
	IPsScanned   uint64
	OpenPort21   int
	FTPServers   int
	AnonServers  int
	PctOpen      float64 // of scanned
	PctFTP       float64 // of open
	PctAnonymous float64 // of FTP
}

// FunnelAcc accumulates Table I incrementally. The zero value is ready.
type FunnelAcc struct {
	open, ftp, anon int
}

// Observe folds one record.
func (a *FunnelAcc) Observe(r *Record) {
	if !r.Host.PortOpen {
		return
	}
	a.open++
	if !r.Host.FTP {
		return
	}
	a.ftp++
	if r.Host.AnonymousOK {
		a.anon++
	}
}

// FunnelSnap is the serializable state of a FunnelAcc.
type FunnelSnap struct {
	Open, FTP, Anon int
}

// Snapshot captures the accumulator as plain data.
func (a *FunnelAcc) Snapshot() FunnelSnap {
	return FunnelSnap{Open: a.open, FTP: a.ftp, Anon: a.anon}
}

// Merge folds a snapshot of another accumulator into this one.
func (a *FunnelAcc) Merge(s FunnelSnap) {
	a.open += s.Open
	a.ftp += s.FTP
	a.anon += s.Anon
}

// Finalize produces Table I for the given sweep size.
func (a *FunnelAcc) Finalize(ipsScanned uint64) Funnel {
	f := Funnel{
		IPsScanned:  ipsScanned,
		OpenPort21:  a.open,
		FTPServers:  a.ftp,
		AnonServers: a.anon,
	}
	if f.IPsScanned > 0 {
		f.PctOpen = 100 * float64(f.OpenPort21) / float64(f.IPsScanned)
	}
	f.PctFTP = percent(f.FTPServers, f.OpenPort21)
	f.PctAnonymous = percent(f.AnonServers, f.FTPServers)
	return f
}

// ComputeFunnel derives Table I from a retained dataset.
func ComputeFunnel(in *Input) Funnel {
	var acc FunnelAcc
	in.fold(&acc)
	return acc.Finalize(in.IPsScanned)
}
