package analysis

// Funnel is Table I: the discovery-to-anonymous scan funnel.
type Funnel struct {
	IPsScanned   uint64
	OpenPort21   int
	FTPServers   int
	AnonServers  int
	PctOpen      float64 // of scanned
	PctFTP       float64 // of open
	PctAnonymous float64 // of FTP
}

// ComputeFunnel derives Table I.
func ComputeFunnel(in *Input) Funnel {
	f := Funnel{IPsScanned: in.IPsScanned}
	for _, r := range in.Records {
		if !r.PortOpen {
			continue
		}
		f.OpenPort21++
		if !r.FTP {
			continue
		}
		f.FTPServers++
		if r.AnonymousOK {
			f.AnonServers++
		}
	}
	if f.IPsScanned > 0 {
		f.PctOpen = 100 * float64(f.OpenPort21) / float64(f.IPsScanned)
	}
	f.PctFTP = percent(f.FTPServers, f.OpenPort21)
	f.PctAnonymous = percent(f.AnonServers, f.FTPServers)
	return f
}
