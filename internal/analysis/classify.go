package analysis

import (
	"sort"

	"ftpcloud/internal/dataset"
	"ftpcloud/internal/personality"
)

// CategoryCount is one Table II row.
type CategoryCount struct {
	Name    string
	All     int
	PctAll  float64
	Anon    int
	PctAnon float64
}

// Classification is Table II: the category breakout of all vs anonymous
// servers.
type Classification struct {
	Rows      []CategoryCount // Generic, Hosted, Embedded, Unknown
	TotalFTP  int
	TotalAnon int
}

// ComputeClassification derives Table II.
func ComputeClassification(in *Input) Classification {
	counts := map[string]*CategoryCount{}
	order := []string{"Generic Server", "Hosted Server", "Embedded Server", "Unknown"}
	for _, name := range order {
		counts[name] = &CategoryCount{Name: name}
	}
	var totalFTP, totalAnon int
	for _, r := range in.FTPRecords() {
		totalFTP++
		c := in.Classify(r)
		name := "Unknown"
		if c.Known() {
			name = c.Category.String()
		}
		counts[name].All++
		if r.AnonymousOK {
			totalAnon++
			counts[name].Anon++
		}
	}
	out := Classification{TotalFTP: totalFTP, TotalAnon: totalAnon}
	for _, name := range order {
		row := counts[name]
		row.PctAll = percent(row.All, totalFTP)
		row.PctAnon = percent(row.Anon, totalAnon)
		out.Rows = append(out.Rows, *row)
	}
	return out
}

// DeviceCount is one row of Table V or VII.
type DeviceCount struct {
	Model   string
	Found   int
	Anon    int
	PctAnon float64
}

// DeviceBreakdown holds the device tables.
type DeviceBreakdown struct {
	// Provider is Table V (ISP-deployed devices, ~zero anonymous).
	Provider []DeviceCount
	// Consumer is Table VII (user-deployed devices and their wildly
	// varying anonymous-by-default rates).
	Consumer []DeviceCount
	// Classes is Table IV: embedded devices grouped into NAS / home
	// router / printer classes.
	Classes []DeviceCount
}

// ComputeDevices derives Tables IV, V, and VII.
func ComputeDevices(in *Input) DeviceBreakdown {
	provider := map[string]*DeviceCount{}
	consumer := map[string]*DeviceCount{}
	classes := map[string]*DeviceCount{}
	for _, r := range in.FTPRecords() {
		c := in.Classify(r)
		if c.DeviceModel == "" {
			continue
		}
		bucket := consumer
		if c.ProviderDeployed {
			bucket = provider
		}
		dc, ok := bucket[c.DeviceModel]
		if !ok {
			dc = &DeviceCount{Model: c.DeviceModel}
			bucket[c.DeviceModel] = dc
		}
		dc.Found++
		if r.AnonymousOK {
			dc.Anon++
		}

		var className string
		switch c.DeviceClass {
		case personality.DeviceNAS, personality.DeviceStorage:
			className = "NAS"
		case personality.DeviceHomeRouter:
			if !c.ProviderDeployed {
				className = "Home Router (user-deployed)"
			}
		case personality.DevicePrinter:
			className = "Printers"
		}
		if className != "" {
			cc, ok := classes[className]
			if !ok {
				cc = &DeviceCount{Model: className}
				classes[className] = cc
			}
			cc.Found++
			if r.AnonymousOK {
				cc.Anon++
			}
		}
	}
	finish := func(m map[string]*DeviceCount) []DeviceCount {
		out := make([]DeviceCount, 0, len(m))
		for _, dc := range m {
			dc.PctAnon = percent(dc.Anon, dc.Found)
			out = append(out, *dc)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Found != out[j].Found {
				return out[i].Found > out[j].Found
			}
			return out[i].Model < out[j].Model
		})
		return out
	}
	return DeviceBreakdown{
		Provider: finish(provider),
		Consumer: finish(consumer),
		Classes:  finish(classes),
	}
}

// ExposureByDevice is Table X: which device classes account for each
// exposure type. Percentages are of servers showing that exposure.
type ExposureByDevice struct {
	// Rows map exposure type → class name → percentage.
	Rows map[string]map[string]float64
	// Totals is the number of servers per exposure type.
	Totals map[string]int
}

// exposureClass maps a record to Table X's column set.
func exposureClass(in *Input, r *dataset.HostRecord) string {
	c := in.Classify(r)
	switch {
	case !c.Known():
		return "Unk"
	case c.Category == personality.CategoryHosted:
		return "Hosting"
	case c.Category == personality.CategoryGeneric:
		return "Generic"
	case c.DeviceClass == personality.DeviceNAS || c.DeviceClass == personality.DeviceStorage:
		return "NAS"
	case c.DeviceClass == personality.DeviceHomeRouter:
		return "Router"
	default:
		return "Other Embedded"
	}
}

// ComputeExposureByDevice derives Table X from the exposure analyses.
func ComputeExposureByDevice(in *Input) ExposureByDevice {
	exp := ComputeExposure(in)
	out := ExposureByDevice{
		Rows:   make(map[string]map[string]float64),
		Totals: make(map[string]int),
	}
	types := map[string]map[*dataset.HostRecord]bool{
		"Sensitive Documents": exp.sensitiveServers,
		"Photo Libraries":     exp.photoServers,
		"Root File Systems":   exp.osRootServers,
		"Scripting Source":    exp.scriptingServers,
	}
	all := make(map[*dataset.HostRecord]bool)
	for _, set := range types {
		for r := range set {
			all[r] = true
		}
	}
	types["All"] = all
	for name, set := range types {
		classCounts := make(map[string]int)
		for r := range set {
			classCounts[exposureClass(in, r)]++
		}
		row := make(map[string]float64)
		for class, n := range classCounts {
			row[class] = percent(n, len(set))
		}
		out.Rows[name] = row
		out.Totals[name] = len(set)
	}
	return out
}
