package analysis

import (
	"sort"

	"ftpcloud/internal/personality"
)

// CategoryCount is one Table II row.
type CategoryCount struct {
	Name    string
	All     int
	PctAll  float64
	Anon    int
	PctAnon float64
}

// Classification is Table II: the category breakout of all vs anonymous
// servers.
type Classification struct {
	Rows      []CategoryCount // Generic, Hosted, Embedded, Unknown
	TotalFTP  int
	TotalAnon int
}

// classificationOrder fixes Table II's row order.
var classificationOrder = []string{"Generic Server", "Hosted Server", "Embedded Server", "Unknown"}

// ClassificationAcc accumulates Table II. The zero value is ready.
type ClassificationAcc struct {
	counts              map[string]*CategoryCount
	totalFTP, totalAnon int
}

// Observe folds one record.
func (a *ClassificationAcc) Observe(r *Record) {
	if !r.Host.FTP {
		return
	}
	if a.counts == nil {
		a.counts = map[string]*CategoryCount{}
		for _, name := range classificationOrder {
			a.counts[name] = &CategoryCount{Name: name}
		}
	}
	a.totalFTP++
	c := r.Class()
	name := "Unknown"
	if c.Known() {
		name = c.Category.String()
	}
	a.counts[name].All++
	if r.Host.AnonymousOK {
		a.totalAnon++
		a.counts[name].Anon++
	}
}

// ClassificationSnap is the serializable state of a ClassificationAcc.
type ClassificationSnap struct {
	Counts              map[string]CategoryCount
	TotalFTP, TotalAnon int
}

// Snapshot captures the accumulator as plain data.
func (a *ClassificationAcc) Snapshot() ClassificationSnap {
	s := ClassificationSnap{TotalFTP: a.totalFTP, TotalAnon: a.totalAnon}
	if a.counts != nil {
		s.Counts = make(map[string]CategoryCount, len(a.counts))
		for name, c := range a.counts {
			s.Counts[name] = *c
		}
	}
	return s
}

// Merge folds a snapshot of another accumulator into this one.
func (a *ClassificationAcc) Merge(s ClassificationSnap) {
	a.totalFTP += s.TotalFTP
	a.totalAnon += s.TotalAnon
	if len(s.Counts) == 0 {
		return
	}
	if a.counts == nil {
		a.counts = map[string]*CategoryCount{}
		for _, name := range classificationOrder {
			a.counts[name] = &CategoryCount{Name: name}
		}
	}
	for name, c := range s.Counts {
		dst, ok := a.counts[name]
		if !ok {
			dst = &CategoryCount{Name: name}
			a.counts[name] = dst
		}
		dst.All += c.All
		dst.Anon += c.Anon
	}
}

// Finalize produces Table II.
func (a *ClassificationAcc) Finalize() Classification {
	out := Classification{TotalFTP: a.totalFTP, TotalAnon: a.totalAnon}
	for _, name := range classificationOrder {
		row := CategoryCount{Name: name}
		if a.counts != nil {
			row = *a.counts[name]
		}
		row.PctAll = percent(row.All, a.totalFTP)
		row.PctAnon = percent(row.Anon, a.totalAnon)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// ComputeClassification derives Table II from a retained dataset.
func ComputeClassification(in *Input) Classification {
	var acc ClassificationAcc
	in.fold(&acc)
	return acc.Finalize()
}

// DeviceCount is one row of Table V or VII.
type DeviceCount struct {
	Model   string
	Found   int
	Anon    int
	PctAnon float64
}

// DeviceBreakdown holds the device tables.
type DeviceBreakdown struct {
	// Provider is Table V (ISP-deployed devices, ~zero anonymous).
	Provider []DeviceCount
	// Consumer is Table VII (user-deployed devices and their wildly
	// varying anonymous-by-default rates).
	Consumer []DeviceCount
	// Classes is Table IV: embedded devices grouped into NAS / home
	// router / printer classes.
	Classes []DeviceCount
}

// DevicesAcc accumulates Tables IV, V, and VII. The zero value is ready.
type DevicesAcc struct {
	provider map[string]*DeviceCount
	consumer map[string]*DeviceCount
	classes  map[string]*DeviceCount
}

func bump(m map[string]*DeviceCount, model string, anon bool) {
	dc, ok := m[model]
	if !ok {
		dc = &DeviceCount{Model: model}
		m[model] = dc
	}
	dc.Found++
	if anon {
		dc.Anon++
	}
}

// Observe folds one record.
func (a *DevicesAcc) Observe(r *Record) {
	if !r.Host.FTP {
		return
	}
	c := r.Class()
	if c.DeviceModel == "" {
		return
	}
	if a.provider == nil {
		a.provider = map[string]*DeviceCount{}
		a.consumer = map[string]*DeviceCount{}
		a.classes = map[string]*DeviceCount{}
	}
	bucket := a.consumer
	if c.ProviderDeployed {
		bucket = a.provider
	}
	bump(bucket, c.DeviceModel, r.Host.AnonymousOK)

	var className string
	switch c.DeviceClass {
	case personality.DeviceNAS, personality.DeviceStorage:
		className = "NAS"
	case personality.DeviceHomeRouter:
		if !c.ProviderDeployed {
			className = "Home Router (user-deployed)"
		}
	case personality.DevicePrinter:
		className = "Printers"
	}
	if className != "" {
		bump(a.classes, className, r.Host.AnonymousOK)
	}
}

// DevicesSnap is the serializable state of a DevicesAcc.
type DevicesSnap struct {
	Provider, Consumer, Classes map[string]DeviceCount
}

// Snapshot captures the accumulator as plain data.
func (a *DevicesAcc) Snapshot() DevicesSnap {
	flatten := func(m map[string]*DeviceCount) map[string]DeviceCount {
		if m == nil {
			return nil
		}
		out := make(map[string]DeviceCount, len(m))
		for model, dc := range m {
			out[model] = *dc
		}
		return out
	}
	return DevicesSnap{
		Provider: flatten(a.provider),
		Consumer: flatten(a.consumer),
		Classes:  flatten(a.classes),
	}
}

// Merge folds a snapshot of another accumulator into this one.
func (a *DevicesAcc) Merge(s DevicesSnap) {
	if len(s.Provider)+len(s.Consumer)+len(s.Classes) == 0 {
		return
	}
	if a.provider == nil {
		a.provider = map[string]*DeviceCount{}
		a.consumer = map[string]*DeviceCount{}
		a.classes = map[string]*DeviceCount{}
	}
	add := func(dst map[string]*DeviceCount, src map[string]DeviceCount) {
		for model, c := range src {
			dc, ok := dst[model]
			if !ok {
				dc = &DeviceCount{Model: model}
				dst[model] = dc
			}
			dc.Found += c.Found
			dc.Anon += c.Anon
		}
	}
	add(a.provider, s.Provider)
	add(a.consumer, s.Consumer)
	add(a.classes, s.Classes)
}

// Finalize produces the device tables.
func (a *DevicesAcc) Finalize() DeviceBreakdown {
	finish := func(m map[string]*DeviceCount) []DeviceCount {
		out := make([]DeviceCount, 0, len(m))
		for _, dc := range m {
			row := *dc
			row.PctAnon = percent(row.Anon, row.Found)
			out = append(out, row)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Found != out[j].Found {
				return out[i].Found > out[j].Found
			}
			return out[i].Model < out[j].Model
		})
		return out
	}
	return DeviceBreakdown{
		Provider: finish(a.provider),
		Consumer: finish(a.consumer),
		Classes:  finish(a.classes),
	}
}

// ComputeDevices derives Tables IV, V, and VII from a retained dataset.
func ComputeDevices(in *Input) DeviceBreakdown {
	var acc DevicesAcc
	in.fold(&acc)
	return acc.Finalize()
}
