package analysis

import (
	"reflect"
	"testing"
)

// tableSet bundles every finalized analysis for equality comparison.
type tableSet struct {
	Funnel           Funnel
	Classification   Classification
	ASConcentration  ASConcentration
	Devices          DeviceBreakdown
	TopASes          []TopAS
	Exposure         Exposure
	ExposureByDevice ExposureByDevice
	CVEs             CVEExposure
	Malicious        Malicious
	PortBounce       PortBounce
	FTPS             FTPS
}

func computeAll(in *Input) tableSet {
	return tableSet{
		Funnel:           ComputeFunnel(in),
		Classification:   ComputeClassification(in),
		ASConcentration:  ComputeASConcentration(in),
		Devices:          ComputeDevices(in),
		TopASes:          ComputeTopASes(in, 10),
		Exposure:         ComputeExposure(in),
		ExposureByDevice: ComputeExposureByDevice(in),
		CVEs:             ComputeCVEs(in),
		Malicious:        ComputeMalicious(in),
		PortBounce:       ComputePortBounce(in),
		FTPS:             ComputeFTPS(in, 10),
	}
}

func finalizeAll(agg *Aggregator, ipsScanned uint64) tableSet {
	return tableSet{
		Funnel:           agg.Funnel(ipsScanned),
		Classification:   agg.Classification(),
		ASConcentration:  agg.ASConcentration(),
		Devices:          agg.Devices(),
		TopASes:          agg.TopASes(10),
		Exposure:         agg.Exposure(),
		ExposureByDevice: agg.ExposureByDevice(),
		CVEs:             agg.CVEs(),
		Malicious:        agg.Malicious(),
		PortBounce:       agg.PortBounce(),
		FTPS:             agg.FTPS(10),
	}
}

// TestAggregatorMatchesCompute feeds the hand-built dataset through a
// streaming Aggregator — in reverse order, to prove order independence —
// and checks every table against the batch Compute path.
func TestAggregatorMatchesCompute(t *testing.T) {
	in := buildInput(t)
	agg := NewAggregator(in.ASDB, func(r *Record) (HTTPInfo, bool) {
		info, ok := in.HTTP[r.Host.IP]
		return info, ok
	})
	for i := len(in.Records) - 1; i >= 0; i-- {
		if err := agg.Observe(in.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if agg.Observed() != len(in.Records) {
		t.Errorf("Observed = %d, want %d", agg.Observed(), len(in.Records))
	}
	got := finalizeAll(agg, in.IPsScanned)
	want := computeAll(in)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streaming tables diverge from batch tables:\n got %+v\nwant %+v", got, want)
	}

	// Finalize is pure: a second pass must be identical.
	again := finalizeAll(agg, in.IPsScanned)
	if !reflect.DeepEqual(got, again) {
		t.Error("second finalize diverges — finalize mutated accumulator state")
	}

	// Close drops hooks but keeps finalize working.
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, finalizeAll(agg, in.IPsScanned)) {
		t.Error("finalize after Close diverges")
	}
}

// TestAggregateInputMatchesCompute checks the batch bridge (parallel
// derivation + sequential fold) against the direct Compute path.
func TestAggregateInputMatchesCompute(t *testing.T) {
	in := buildInput(t)
	agg := AggregateInput(in)
	got := finalizeAll(agg, in.IPsScanned)
	want := computeAll(in)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AggregateInput tables diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestAggregatorEmpty: finalizing with no observations must match the
// batch path over an empty Input.
func TestAggregatorEmpty(t *testing.T) {
	in := &Input{IPsScanned: 10}
	agg := NewAggregator(nil, nil)
	got := finalizeAll(agg, 10)
	want := computeAll(in)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("empty aggregate diverges:\n got %+v\nwant %+v", got, want)
	}
}
