package analysis

import (
	"runtime"
	"sync"

	"ftpcloud/internal/asdb"
	"ftpcloud/internal/dataset"
)

// Aggregator folds records into every analysis accumulator in a single
// pass. It implements dataset.Sink, so the census pipeline feeds it
// directly from the enumerator fleet: each record is derived (classified,
// AS-resolved, HTTP-joined) exactly once while it is hot, folded into all
// eleven aggregates, and then released — the aggregator retains no record
// or listing memory, only O(aggregate state).
//
// Observe follows the Sink contract: one goroutine at a time. The finalize
// methods (Funnel, Classification, ...) are pure and may be called any
// number of times, concurrently, once observation has stopped.
type Aggregator struct {
	d        deriver
	observed int

	funnel     FunnelAcc
	class      ClassificationAcc
	asconc     ASConcentrationAcc
	devices    DevicesAcc
	topASes    TopASesAcc
	exposure   ExposureAcc
	cves       CVEsAcc
	malicious  MaliciousAcc
	portBounce PortBounceAcc
	ftps       FTPSAcc
	unexpected UnexpectedAcc
}

// NewAggregator builds an aggregator resolving ASes against db and the
// HTTP join through the given hook (nil for no join). The hook is invoked
// at most once per record, from the observing goroutine.
func NewAggregator(db *asdb.DB, http func(*Record) (HTTPInfo, bool)) *Aggregator {
	return &Aggregator{d: deriver{db: db, http: http}}
}

// Observe folds one record into every accumulator. Derivation is eager:
// classification, AS resolution, and the HTTP join run here, once, so the
// accumulators read memoized values and join hooks see every record.
func (a *Aggregator) Observe(host *dataset.HostRecord) error {
	r := Record{Host: host, d: &a.d}
	r.Class()
	r.AS()
	r.HTTP()
	a.fold(&r)
	return nil
}

// Close implements dataset.Sink and drops the derivation sources — the AS
// database and the HTTP join hook — so a finished aggregator does not pin
// them (in the census pipeline the hook closes over the simulated world).
// The accumulators only hold the individual *asdb.AS entries they counted.
// Finalize methods keep working after Close.
func (a *Aggregator) Close() error {
	a.d.db = nil
	a.d.http = nil
	return nil
}

// fold dispatches a derived record to the accumulators.
func (a *Aggregator) fold(r *Record) {
	a.observed++
	a.funnel.Observe(r)
	a.class.Observe(r)
	a.asconc.Observe(r)
	a.devices.Observe(r)
	a.topASes.Observe(r)
	a.exposure.Observe(r)
	a.cves.Observe(r)
	a.malicious.Observe(r)
	a.portBounce.Observe(r)
	a.ftps.Observe(r)
	a.unexpected.Observe(r)
}

// Observed returns how many records have been folded.
func (a *Aggregator) Observed() int { return a.observed }

// Funnel finalizes Table I for the given sweep size.
func (a *Aggregator) Funnel(ipsScanned uint64) Funnel { return a.funnel.Finalize(ipsScanned) }

// Classification finalizes Table II.
func (a *Aggregator) Classification() Classification { return a.class.Finalize() }

// ASConcentration finalizes Table III / Figure 1.
func (a *Aggregator) ASConcentration() ASConcentration { return a.asconc.Finalize() }

// Devices finalizes Tables IV, V, and VII.
func (a *Aggregator) Devices() DeviceBreakdown { return a.devices.Finalize() }

// TopASes finalizes Table VI.
func (a *Aggregator) TopASes(n int) []TopAS { return a.topASes.Finalize(n) }

// Exposure finalizes Tables VIII/IX and §V.
func (a *Aggregator) Exposure() Exposure { return a.exposure.Finalize() }

// ExposureByDevice finalizes Table X.
func (a *Aggregator) ExposureByDevice() ExposureByDevice { return a.exposure.FinalizeByDevice() }

// CVEs finalizes Table XI.
func (a *Aggregator) CVEs() CVEExposure { return a.cves.Finalize() }

// Malicious finalizes §VI.
func (a *Aggregator) Malicious() Malicious { return a.malicious.Finalize() }

// PortBounce finalizes §VII.B.
func (a *Aggregator) PortBounce() PortBounce { return a.portBounce.Finalize() }

// FTPS finalizes §IX and Tables XII/XIII.
func (a *Aggregator) FTPS(topN int) FTPS { return a.ftps.Finalize(topN) }

// Unexpected finalizes the identification ledger — the endpoints the staged
// funnel shed before enumeration, by sniffed protocol. Empty on two-stage
// runs.
func (a *Aggregator) Unexpected() UnexpectedServices { return a.unexpected.Finalize() }

// AggregateInput folds a retained record slice through a fresh Aggregator.
// This is the batch-mode bridge: classification and AS resolution — the
// expensive derivations — are fanned across CPUs first, then the derived
// records fold sequentially, preserving single-goroutine accumulator state.
func AggregateInput(in *Input) *Aggregator {
	agg := NewAggregator(in.ASDB, in.deriver().http)
	n := len(in.Records)
	recs := make([]Record, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				recs[i] = Record{Host: in.Records[i], d: &agg.d}
				recs[i].Class()
				recs[i].AS()
			}
		}(lo, hi)
	}
	wg.Wait()
	for i := range recs {
		agg.fold(&recs[i])
	}
	return agg
}
