package analysis

import (
	"sort"

	"ftpcloud/internal/asdb"
)

// ASConcentration is Table III plus Figure 1's CDF inputs.
type ASConcentration struct {
	// ASesForHalfAll/Anon/Writable: how many of the largest ASes hold
	// 50% of each population (paper: 78 / 42 / —).
	ASesForHalfAll      int
	ASesForHalfAnon     int
	ASesForHalfWritable int
	// TypeBreakdownAll/Anon: operator types among those covering ASes
	// (paper: 50 hosting / 25 ISP / 3 academic of the 78).
	TypeBreakdownAll  map[asdb.Type]int
	TypeBreakdownAnon map[asdb.Type]int
	// Totals.
	TotalASesAll      int
	TotalASesAnon     int
	TotalASesWritable int
	// CDFs are cumulative fractions per AS rank (Figure 1 series).
	CDFAll      []float64
	CDFAnon     []float64
	CDFWritable []float64
}

// ComputeASConcentration derives Table III and Figure 1.
func ComputeASConcentration(in *Input) ASConcentration {
	all := map[*asdb.AS]int{}
	anon := map[*asdb.AS]int{}
	writable := map[*asdb.AS]int{}
	for _, r := range in.FTPRecords() {
		as := in.AS(r)
		if as == nil {
			continue
		}
		all[as]++
		if r.AnonymousOK {
			anon[as]++
			if Writable(r) {
				writable[as]++
			}
		}
	}

	halfAll, typesAll, cdfAll := concentration(all)
	halfAnon, typesAnon, cdfAnon := concentration(anon)
	halfW, _, cdfW := concentration(writable)

	return ASConcentration{
		ASesForHalfAll:      halfAll,
		ASesForHalfAnon:     halfAnon,
		ASesForHalfWritable: halfW,
		TypeBreakdownAll:    typesAll,
		TypeBreakdownAnon:   typesAnon,
		TotalASesAll:        len(all),
		TotalASesAnon:       len(anon),
		TotalASesWritable:   len(writable),
		CDFAll:              cdfAll,
		CDFAnon:             cdfAnon,
		CDFWritable:         cdfW,
	}
}

// concentration sorts AS counts descending and returns the 50% crossing,
// the type mix of the ASes up to that crossing, and the full CDF.
func concentration(counts map[*asdb.AS]int) (half int, types map[asdb.Type]int, cdf []float64) {
	type pair struct {
		as *asdb.AS
		n  int
	}
	pairs := make([]pair, 0, len(counts))
	total := 0
	for as, n := range counts {
		pairs = append(pairs, pair{as, n})
		total += n
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].n != pairs[j].n {
			return pairs[i].n > pairs[j].n
		}
		return pairs[i].as.Number < pairs[j].as.Number
	})
	types = make(map[asdb.Type]int)
	cdf = make([]float64, len(pairs))
	cum := 0
	half = len(pairs)
	crossed := false
	for i, p := range pairs {
		cum += p.n
		if total > 0 {
			cdf[i] = float64(cum) / float64(total)
		}
		if !crossed {
			types[p.as.Type]++
			if float64(cum) >= 0.5*float64(total) {
				half = i + 1
				crossed = true
			}
		}
	}
	if total == 0 {
		half = 0
	}
	return half, types, cdf
}

// TopAS is one Table VI row.
type TopAS struct {
	Number        uint32
	Name          string
	IPsAdvertised uint64
	FTPServers    int
	AnonServers   int
	PctAnon       float64
}

// ComputeTopASes derives Table VI: the top-N ASes by anonymous server count.
func ComputeTopASes(in *Input, n int) []TopAS {
	type agg struct {
		ftp, anon int
	}
	counts := map[*asdb.AS]*agg{}
	for _, r := range in.FTPRecords() {
		as := in.AS(r)
		if as == nil {
			continue
		}
		a, ok := counts[as]
		if !ok {
			a = &agg{}
			counts[as] = a
		}
		a.ftp++
		if r.AnonymousOK {
			a.anon++
		}
	}
	out := make([]TopAS, 0, len(counts))
	for as, a := range counts {
		out = append(out, TopAS{
			Number:        as.Number,
			Name:          as.Name,
			IPsAdvertised: as.Advertised(),
			FTPServers:    a.ftp,
			AnonServers:   a.anon,
			PctAnon:       percent(a.anon, a.ftp),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AnonServers != out[j].AnonServers {
			return out[i].AnonServers > out[j].AnonServers
		}
		return out[i].Number < out[j].Number
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
