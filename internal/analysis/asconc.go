package analysis

import (
	"sort"

	"ftpcloud/internal/asdb"
)

// ASConcentration is Table III plus Figure 1's CDF inputs.
type ASConcentration struct {
	// ASesForHalfAll/Anon/Writable: how many of the largest ASes hold
	// 50% of each population (paper: 78 / 42 / —).
	ASesForHalfAll      int
	ASesForHalfAnon     int
	ASesForHalfWritable int
	// TypeBreakdownAll/Anon: operator types among those covering ASes
	// (paper: 50 hosting / 25 ISP / 3 academic of the 78).
	TypeBreakdownAll  map[asdb.Type]int
	TypeBreakdownAnon map[asdb.Type]int
	// Totals.
	TotalASesAll      int
	TotalASesAnon     int
	TotalASesWritable int
	// CDFs are cumulative fractions per AS rank (Figure 1 series).
	CDFAll      []float64
	CDFAnon     []float64
	CDFWritable []float64
}

// ASConcentrationAcc accumulates Table III / Figure 1. Counts key on the AS
// number — plain data rather than *asdb.AS identity — so two accumulators
// built against the same database merge exactly. The zero value is ready.
type ASConcentrationAcc struct {
	all      map[uint32]int
	anon     map[uint32]int
	writable map[uint32]int
	// types remembers each counted AS's operator type for the Table III
	// breakdown; an AS number maps to exactly one type in the database.
	types map[uint32]asdb.Type
}

// Observe folds one record.
func (a *ASConcentrationAcc) Observe(r *Record) {
	if !r.Host.FTP {
		return
	}
	as := r.AS()
	if as == nil {
		return
	}
	if a.all == nil {
		a.all = map[uint32]int{}
		a.anon = map[uint32]int{}
		a.writable = map[uint32]int{}
		a.types = map[uint32]asdb.Type{}
	}
	n := as.Number
	a.types[n] = as.Type
	a.all[n]++
	if r.Host.AnonymousOK {
		a.anon[n]++
		if Writable(r.Host) {
			a.writable[n]++
		}
	}
}

// ASConcentrationSnap is the serializable state of an ASConcentrationAcc.
type ASConcentrationSnap struct {
	All      map[uint32]int
	Anon     map[uint32]int
	Writable map[uint32]int
	Types    map[uint32]asdb.Type
}

// Snapshot captures the accumulator as plain data.
func (a *ASConcentrationAcc) Snapshot() ASConcentrationSnap {
	return ASConcentrationSnap{
		All:      copyCounts(a.all),
		Anon:     copyCounts(a.anon),
		Writable: copyCounts(a.writable),
		Types:    copyCounts(a.types),
	}
}

// Merge folds a snapshot of another accumulator into this one.
func (a *ASConcentrationAcc) Merge(s ASConcentrationSnap) {
	if len(s.All) == 0 && len(s.Types) == 0 {
		return
	}
	if a.all == nil {
		a.all = map[uint32]int{}
		a.anon = map[uint32]int{}
		a.writable = map[uint32]int{}
		a.types = map[uint32]asdb.Type{}
	}
	addCounts(a.all, s.All)
	addCounts(a.anon, s.Anon)
	addCounts(a.writable, s.Writable)
	for n, t := range s.Types {
		a.types[n] = t
	}
}

// Finalize produces Table III and Figure 1.
func (a *ASConcentrationAcc) Finalize() ASConcentration {
	halfAll, typesAll, cdfAll := concentration(a.all, a.types)
	halfAnon, typesAnon, cdfAnon := concentration(a.anon, a.types)
	halfW, _, cdfW := concentration(a.writable, a.types)

	return ASConcentration{
		ASesForHalfAll:      halfAll,
		ASesForHalfAnon:     halfAnon,
		ASesForHalfWritable: halfW,
		TypeBreakdownAll:    typesAll,
		TypeBreakdownAnon:   typesAnon,
		TotalASesAll:        len(a.all),
		TotalASesAnon:       len(a.anon),
		TotalASesWritable:   len(a.writable),
		CDFAll:              cdfAll,
		CDFAnon:             cdfAnon,
		CDFWritable:         cdfW,
	}
}

// ComputeASConcentration derives Table III and Figure 1 from a retained
// dataset.
func ComputeASConcentration(in *Input) ASConcentration {
	var acc ASConcentrationAcc
	in.fold(&acc)
	return acc.Finalize()
}

// concentration sorts AS counts descending and returns the 50% crossing,
// the type mix of the ASes up to that crossing, and the full CDF.
func concentration(counts map[uint32]int, asTypes map[uint32]asdb.Type) (half int, types map[asdb.Type]int, cdf []float64) {
	type pair struct {
		as uint32
		n  int
	}
	pairs := make([]pair, 0, len(counts))
	total := 0
	for as, n := range counts {
		pairs = append(pairs, pair{as, n})
		total += n
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].n != pairs[j].n {
			return pairs[i].n > pairs[j].n
		}
		return pairs[i].as < pairs[j].as
	})
	types = make(map[asdb.Type]int)
	cdf = make([]float64, len(pairs))
	cum := 0
	half = len(pairs)
	crossed := false
	for i, p := range pairs {
		cum += p.n
		if total > 0 {
			cdf[i] = float64(cum) / float64(total)
		}
		if !crossed {
			types[asTypes[p.as]]++
			if float64(cum) >= 0.5*float64(total) {
				half = i + 1
				crossed = true
			}
		}
	}
	if total == 0 {
		half = 0
	}
	return half, types, cdf
}

// TopAS is one Table VI row.
type TopAS struct {
	Number        uint32
	Name          string
	IPsAdvertised uint64
	FTPServers    int
	AnonServers   int
	PctAnon       float64
}

// TopASesAcc accumulates Table VI, keyed by AS number with the row metadata
// (name, advertised space) carried alongside so snapshots are plain data.
// The zero value is ready.
type TopASesAcc struct {
	counts map[uint32]*topASAgg
}

type topASAgg struct {
	ftp, anon  int
	name       string
	advertised uint64
}

// Observe folds one record.
func (a *TopASesAcc) Observe(r *Record) {
	if !r.Host.FTP {
		return
	}
	as := r.AS()
	if as == nil {
		return
	}
	if a.counts == nil {
		a.counts = map[uint32]*topASAgg{}
	}
	agg, ok := a.counts[as.Number]
	if !ok {
		agg = &topASAgg{name: as.Name, advertised: as.Advertised()}
		a.counts[as.Number] = agg
	}
	agg.ftp++
	if r.Host.AnonymousOK {
		agg.anon++
	}
}

// TopASCounts is one AS's serializable Table VI state.
type TopASCounts struct {
	FTP, Anon  int
	Name       string
	Advertised uint64
}

// TopASesSnap is the serializable state of a TopASesAcc.
type TopASesSnap struct {
	Counts map[uint32]TopASCounts
}

// Snapshot captures the accumulator as plain data.
func (a *TopASesAcc) Snapshot() TopASesSnap {
	s := TopASesSnap{}
	if a.counts != nil {
		s.Counts = make(map[uint32]TopASCounts, len(a.counts))
		for n, agg := range a.counts {
			s.Counts[n] = TopASCounts{FTP: agg.ftp, Anon: agg.anon, Name: agg.name, Advertised: agg.advertised}
		}
	}
	return s
}

// Merge folds a snapshot of another accumulator into this one.
func (a *TopASesAcc) Merge(s TopASesSnap) {
	if len(s.Counts) == 0 {
		return
	}
	if a.counts == nil {
		a.counts = map[uint32]*topASAgg{}
	}
	for n, c := range s.Counts {
		agg, ok := a.counts[n]
		if !ok {
			agg = &topASAgg{name: c.Name, advertised: c.Advertised}
			a.counts[n] = agg
		}
		agg.ftp += c.FTP
		agg.anon += c.Anon
	}
}

// Finalize produces the top-n Table VI rows.
func (a *TopASesAcc) Finalize(n int) []TopAS {
	out := make([]TopAS, 0, len(a.counts))
	for number, agg := range a.counts {
		out = append(out, TopAS{
			Number:        number,
			Name:          agg.name,
			IPsAdvertised: agg.advertised,
			FTPServers:    agg.ftp,
			AnonServers:   agg.anon,
			PctAnon:       percent(agg.anon, agg.ftp),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AnonServers != out[j].AnonServers {
			return out[i].AnonServers > out[j].AnonServers
		}
		return out[i].Number < out[j].Number
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ComputeTopASes derives Table VI (top-n ASes by anonymous server count)
// from a retained dataset.
func ComputeTopASes(in *Input, n int) []TopAS {
	var acc TopASesAcc
	in.fold(&acc)
	return acc.Finalize(n)
}

// copyCounts clones a map for a snapshot; nil stays nil.
func copyCounts[K comparable, V any](m map[K]V) map[K]V {
	if m == nil {
		return nil
	}
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// addCounts adds src's counts into dst.
func addCounts[K comparable](dst, src map[K]int) {
	for k, v := range src {
		dst[k] += v
	}
}
