package analysis

import (
	"sort"

	"ftpcloud/internal/asdb"
)

// ASConcentration is Table III plus Figure 1's CDF inputs.
type ASConcentration struct {
	// ASesForHalfAll/Anon/Writable: how many of the largest ASes hold
	// 50% of each population (paper: 78 / 42 / —).
	ASesForHalfAll      int
	ASesForHalfAnon     int
	ASesForHalfWritable int
	// TypeBreakdownAll/Anon: operator types among those covering ASes
	// (paper: 50 hosting / 25 ISP / 3 academic of the 78).
	TypeBreakdownAll  map[asdb.Type]int
	TypeBreakdownAnon map[asdb.Type]int
	// Totals.
	TotalASesAll      int
	TotalASesAnon     int
	TotalASesWritable int
	// CDFs are cumulative fractions per AS rank (Figure 1 series).
	CDFAll      []float64
	CDFAnon     []float64
	CDFWritable []float64
}

// ASConcentrationAcc accumulates Table III / Figure 1. The zero value is
// ready.
type ASConcentrationAcc struct {
	all      map[*asdb.AS]int
	anon     map[*asdb.AS]int
	writable map[*asdb.AS]int
}

// Observe folds one record.
func (a *ASConcentrationAcc) Observe(r *Record) {
	if !r.Host.FTP {
		return
	}
	as := r.AS()
	if as == nil {
		return
	}
	if a.all == nil {
		a.all = map[*asdb.AS]int{}
		a.anon = map[*asdb.AS]int{}
		a.writable = map[*asdb.AS]int{}
	}
	a.all[as]++
	if r.Host.AnonymousOK {
		a.anon[as]++
		if Writable(r.Host) {
			a.writable[as]++
		}
	}
}

// Finalize produces Table III and Figure 1.
func (a *ASConcentrationAcc) Finalize() ASConcentration {
	halfAll, typesAll, cdfAll := concentration(a.all)
	halfAnon, typesAnon, cdfAnon := concentration(a.anon)
	halfW, _, cdfW := concentration(a.writable)

	return ASConcentration{
		ASesForHalfAll:      halfAll,
		ASesForHalfAnon:     halfAnon,
		ASesForHalfWritable: halfW,
		TypeBreakdownAll:    typesAll,
		TypeBreakdownAnon:   typesAnon,
		TotalASesAll:        len(a.all),
		TotalASesAnon:       len(a.anon),
		TotalASesWritable:   len(a.writable),
		CDFAll:              cdfAll,
		CDFAnon:             cdfAnon,
		CDFWritable:         cdfW,
	}
}

// ComputeASConcentration derives Table III and Figure 1 from a retained
// dataset.
func ComputeASConcentration(in *Input) ASConcentration {
	var acc ASConcentrationAcc
	in.fold(&acc)
	return acc.Finalize()
}

// concentration sorts AS counts descending and returns the 50% crossing,
// the type mix of the ASes up to that crossing, and the full CDF.
func concentration(counts map[*asdb.AS]int) (half int, types map[asdb.Type]int, cdf []float64) {
	type pair struct {
		as *asdb.AS
		n  int
	}
	pairs := make([]pair, 0, len(counts))
	total := 0
	for as, n := range counts {
		pairs = append(pairs, pair{as, n})
		total += n
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].n != pairs[j].n {
			return pairs[i].n > pairs[j].n
		}
		return pairs[i].as.Number < pairs[j].as.Number
	})
	types = make(map[asdb.Type]int)
	cdf = make([]float64, len(pairs))
	cum := 0
	half = len(pairs)
	crossed := false
	for i, p := range pairs {
		cum += p.n
		if total > 0 {
			cdf[i] = float64(cum) / float64(total)
		}
		if !crossed {
			types[p.as.Type]++
			if float64(cum) >= 0.5*float64(total) {
				half = i + 1
				crossed = true
			}
		}
	}
	if total == 0 {
		half = 0
	}
	return half, types, cdf
}

// TopAS is one Table VI row.
type TopAS struct {
	Number        uint32
	Name          string
	IPsAdvertised uint64
	FTPServers    int
	AnonServers   int
	PctAnon       float64
}

// TopASesAcc accumulates Table VI. The zero value is ready.
type TopASesAcc struct {
	counts map[*asdb.AS]*topASAgg
}

type topASAgg struct {
	ftp, anon int
}

// Observe folds one record.
func (a *TopASesAcc) Observe(r *Record) {
	if !r.Host.FTP {
		return
	}
	as := r.AS()
	if as == nil {
		return
	}
	if a.counts == nil {
		a.counts = map[*asdb.AS]*topASAgg{}
	}
	agg, ok := a.counts[as]
	if !ok {
		agg = &topASAgg{}
		a.counts[as] = agg
	}
	agg.ftp++
	if r.Host.AnonymousOK {
		agg.anon++
	}
}

// Finalize produces the top-n Table VI rows.
func (a *TopASesAcc) Finalize(n int) []TopAS {
	out := make([]TopAS, 0, len(a.counts))
	for as, agg := range a.counts {
		out = append(out, TopAS{
			Number:        as.Number,
			Name:          as.Name,
			IPsAdvertised: as.Advertised(),
			FTPServers:    agg.ftp,
			AnonServers:   agg.anon,
			PctAnon:       percent(agg.anon, agg.ftp),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AnonServers != out[j].AnonServers {
			return out[i].AnonServers > out[j].AnonServers
		}
		return out[i].Number < out[j].Number
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ComputeTopASes derives Table VI (top-n ASes by anonymous server count)
// from a retained dataset.
func ComputeTopASes(in *Input, n int) []TopAS {
	var acc TopASesAcc
	in.fold(&acc)
	return acc.Finalize(n)
}
