package analysis

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// observeAll folds the dataset through a fresh aggregator with the test
// HTTP-join hook.
func observeAll(t *testing.T, in *Input) *Aggregator {
	t.Helper()
	agg := NewAggregator(in.ASDB, func(r *Record) (HTTPInfo, bool) {
		info, ok := in.HTTP[r.Host.IP]
		return info, ok
	})
	for _, rec := range in.Records {
		if err := agg.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	return agg
}

// TestSnapshotRoundTrip: every accumulator survives serialize →
// deserialize → merge-into-fresh unchanged — the finalized tables of the
// reconstructed aggregator match the original exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	in := buildInput(t)
	agg := observeAll(t, in)
	want := finalizeAll(agg, in.IPsScanned)

	raw, err := agg.Snapshot().EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshotBytes(raw)
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewAggregator(nil, nil)
	fresh.MergeSnapshot(decoded)
	if fresh.Observed() != agg.Observed() {
		t.Errorf("Observed survives round trip: got %d, want %d", fresh.Observed(), agg.Observed())
	}
	got := finalizeAll(fresh, in.IPsScanned)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-tripped tables diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotMergeWithEmpty: merging an empty aggregator's snapshot in
// either direction changes nothing.
func TestSnapshotMergeWithEmpty(t *testing.T) {
	in := buildInput(t)
	agg := observeAll(t, in)
	want := finalizeAll(agg, in.IPsScanned)

	empty := NewAggregator(nil, nil)
	agg.Merge(empty)
	if got := finalizeAll(agg, in.IPsScanned); !reflect.DeepEqual(got, want) {
		t.Errorf("merging empty into populated changed tables:\n got %+v\nwant %+v", got, want)
	}

	onto := NewAggregator(nil, nil)
	onto.Merge(agg)
	if got := finalizeAll(onto, in.IPsScanned); !reflect.DeepEqual(got, want) {
		t.Errorf("merging populated into empty diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestAggregatorMergeMatchesSingle: partitioning the dataset over several
// aggregators and merging the partials reproduces the single-aggregator
// tables — for every partition width.
func TestAggregatorMergeMatchesSingle(t *testing.T) {
	in := buildInput(t)
	want := finalizeAll(observeAll(t, in), in.IPsScanned)

	for _, parts := range []int{2, 3, 4, 8} {
		aggs := make([]*Aggregator, parts)
		for i := range aggs {
			aggs[i] = NewAggregator(in.ASDB, func(r *Record) (HTTPInfo, bool) {
				info, ok := in.HTTP[r.Host.IP]
				return info, ok
			})
		}
		for i, rec := range in.Records {
			if err := aggs[i%parts].Observe(rec); err != nil {
				t.Fatal(err)
			}
		}
		// Merge in reverse order to prove order independence.
		merged := NewAggregator(nil, nil)
		for i := parts - 1; i >= 0; i-- {
			merged.Merge(aggs[i])
		}
		if merged.Observed() != len(in.Records) {
			t.Errorf("parts=%d: merged Observed = %d, want %d", parts, merged.Observed(), len(in.Records))
		}
		got := finalizeAll(merged, in.IPsScanned)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parts=%d: merged tables diverge from single aggregator:\n got %+v\nwant %+v",
				parts, got, want)
		}
	}
}

// TestSnapshotDecodeCorrupt: damaged bytes surface as ErrCorruptSnapshot,
// never a panic.
func TestSnapshotDecodeCorrupt(t *testing.T) {
	in := buildInput(t)
	valid, err := observeAll(t, in).Snapshot().EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":        {},
		"short header": valid[:3],
		"bad magic":    append([]byte("XXXX"), valid[4:]...),
		"bad version":  append(append([]byte{}, valid[:4]...), append([]byte{99}, valid[5:]...)...),
		"truncated":    valid[:len(valid)/2],
		"garbage tail": append(append([]byte{}, valid[:8]...), bytes.Repeat([]byte{0xff}, 64)...),
	}
	for name, raw := range cases {
		if _, err := DecodeSnapshotBytes(raw); !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("%s: got %v, want ErrCorruptSnapshot", name, err)
		}
	}

	// Flipping any single byte must never panic; errors are acceptable,
	// silent success only for bytes gob ignores.
	for i := range valid {
		mutated := append([]byte{}, valid...)
		mutated[i] ^= 0x5a
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("byte %d flipped: decode panicked: %v", i, p)
				}
			}()
			_, _ = DecodeSnapshotBytes(mutated)
		}()
	}
}

// FuzzSnapshotDecode: arbitrary bytes must yield either a snapshot or an
// error wrapping ErrCorruptSnapshot — never a panic, never an untyped
// error.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FCAS"))
	f.Add([]byte{'F', 'C', 'A', 'S', 1})
	f.Add([]byte{'F', 'C', 'A', 'S', 1, 0xff, 0x00, 0x42})
	f.Add(bytes.Repeat([]byte{0x7f}, 128))
	var empty Snapshot
	if raw, err := empty.EncodeBytes(); err == nil {
		f.Add(raw)
		f.Add(raw[:len(raw)-1])
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := DecodeSnapshotBytes(raw)
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Errorf("decode error is not ErrCorruptSnapshot: %v", err)
			}
			return
		}
		if s == nil {
			t.Error("nil snapshot with nil error")
		}
	})
}
