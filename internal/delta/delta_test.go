package delta

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/core"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/worldgen"
)

func rec(ip, banner string, anon bool) *dataset.HostRecord {
	return &dataset.HostRecord{IP: ip, PortOpen: true, FTP: true, Banner: banner, AnonymousOK: anon}
}

func TestDiffLedgersSynthetic(t *testing.T) {
	before := []*dataset.HostRecord{
		rec("10.0.0.1", "220 (vsFTPd 2.3.5)", false),          // migrates to 3.0.2
		rec("10.0.0.2", "220 ProFTPD 1.3.5 Server", true),     // unchanged, loses anon
		rec("10.0.0.3", "220 FTP server ready.", false),       // vanishes
		{IP: "10.0.0.9", PortOpen: true, FTP: false},          // shed endpoint: ignored
		rec("10.0.0.4", "220 Pure-FTPd 1.0.36 ready.", false), // gains anon
	}
	after := []*dataset.HostRecord{
		rec("10.0.0.1", "220 (vsFTPd 3.0.2)", false),
		rec("10.0.0.2", "220 ProFTPD 1.3.5 Server", false),
		rec("10.0.0.4", "220 Pure-FTPd 1.0.36 ready.", true),
		rec("10.0.0.5", "220 FTP server ready.", false), // new
	}
	d := DiffLedgers(before, after)

	if d.New != 1 || d.Vanished != 1 || d.Persisted != 3 {
		t.Fatalf("partition = new %d / vanished %d / persisted %d, want 1/1/3", d.New, d.Vanished, d.Persisted)
	}
	if got := d.Flows[Flow{From: "vsFTPd 2.3.5", To: "vsFTPd 3.0.2"}]; got != 1 {
		t.Errorf("migration edge count = %d, want 1", got)
	}
	if got := d.Flows[Flow{From: "ProFTPD 1.3.5", To: "ProFTPD 1.3.5"}]; got != 1 {
		t.Errorf("identity edge count = %d, want 1", got)
	}
	total := 0
	for _, n := range d.Flows {
		total += n
	}
	if total != d.Persisted {
		t.Errorf("flow matrix sums to %d, want persisted %d", total, d.Persisted)
	}
	if d.AnonGained != 1 || d.AnonLost != 1 {
		t.Errorf("anon gained %d / lost %d, want 1/1", d.AnonGained, d.AnonLost)
	}
}

func TestComputeAggregateTrends(t *testing.T) {
	from := &analysis.Snapshot{
		Observed: 100,
		Funnel:   analysis.FunnelSnap{Open: 90, FTP: 80, Anon: 20},
		Classification: analysis.ClassificationSnap{Counts: map[string]analysis.CategoryCount{
			"Hosted":   {Name: "Hosted", All: 40},
			"Embedded": {Name: "Embedded", All: 10},
		}},
	}
	to := &analysis.Snapshot{
		Observed: 110,
		Funnel:   analysis.FunnelSnap{Open: 95, FTP: 88, Anon: 18},
		Classification: analysis.ClassificationSnap{Counts: map[string]analysis.CategoryCount{
			"Hosted":  {Name: "Hosted", All: 44},
			"Generic": {Name: "Generic", All: 5},
		}},
	}
	r := Compute(from, to)
	if r.FTP.Delta() != 8 {
		t.Errorf("FTP delta = %d, want 8", r.FTP.Delta())
	}
	if r.FTP.Pct() != 10 {
		t.Errorf("FTP pct = %v, want 10", r.FTP.Pct())
	}
	if r.Anon.Delta() != -2 {
		t.Errorf("Anon delta = %d, want -2", r.Anon.Delta())
	}
	// Categories present on only one side still appear, zero on the other.
	if tr := r.Categories["Embedded"]; tr.Before != 10 || tr.After != 0 {
		t.Errorf("Embedded trend = %+v, want 10 → 0", tr)
	}
	if tr := r.Categories["Generic"]; tr.Before != 0 || tr.After != 5 {
		t.Errorf("Generic trend = %+v, want 0 → 5", tr)
	}
	out := r.Render()
	for _, want := range []string{"Delta I", "Delta II", "Delta III", "FTP servers", "+8"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if strings.Contains(out, "Delta IV") {
		t.Error("render shows host tables without ledgers")
	}
	if out != r.Render() {
		t.Error("render not deterministic")
	}
}

// censusAt sweeps the standard test world at one epoch and returns the
// snapshot and ledger.
func censusAt(t *testing.T, epoch uint64) (*analysis.Snapshot, []*dataset.HostRecord, *core.Result) {
	t.Helper()
	var ledger bytes.Buffer
	stamp := time.Date(2016, 2, 22, 0, 0, 0, 0, time.UTC)
	c, err := core.NewCensus(core.CensusConfig{
		Seed:          42,
		Scale:         32768,
		Epoch:         epoch,
		RetainRecords: core.RetainNone,
		StreamTo:      dataset.NewWriterSink(&ledger),
		Now:           func() time.Time { return stamp },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := dataset.ReadAll(&ledger)
	if err != nil {
		t.Fatal(err)
	}
	return res.Snapshot(), recs, res
}

// TestDeltaMatchesBruteForce is the acceptance check: the delta engine run
// over two epochs' census outputs must agree exactly with a brute-force
// diff of the two worlds' FTP host sets.
func TestDeltaMatchesBruteForce(t *testing.T) {
	snap0, recs0, _ := censusAt(t, 0)
	snap2, recs2, _ := censusAt(t, 2)

	r := Compute(snap0, snap2)
	r.Hosts = DiffLedgers(recs0, recs2)

	// Brute force over world truth.
	mkWorld := func(epoch uint64) *worldgen.World {
		p := worldgen.DefaultParams(42, 32768)
		p.Epoch = epoch
		w, err := worldgen.New(p)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w0, w2 := mkWorld(0), mkWorld(2)
	var wantNew, wantVanished, wantPersisted, ftp0, ftp2 int
	base := uint64(w0.ScanBase)
	for off := uint64(0); off < w0.ScanSize; off++ {
		ip := simnet.IP(base + off)
		t0, ok0 := w0.Truth(ip)
		t2, ok2 := w2.Truth(ip)
		in0 := ok0 && t0.FTP
		in2 := ok2 && t2.FTP
		switch {
		case in0 && in2:
			wantPersisted++
		case in2:
			wantNew++
		case in0:
			wantVanished++
		}
		if in0 {
			ftp0++
		}
		if in2 {
			ftp2++
		}
	}
	if wantNew == 0 || wantVanished == 0 {
		t.Fatal("epochs produced no churn; test vacuous")
	}

	h := r.Hosts
	if h.New != wantNew || h.Vanished != wantVanished || h.Persisted != wantPersisted {
		t.Errorf("ledger diff new/vanished/persisted = %d/%d/%d, brute force says %d/%d/%d",
			h.New, h.Vanished, h.Persisted, wantNew, wantVanished, wantPersisted)
	}
	if r.FTP.Before != ftp0 || r.FTP.After != ftp2 {
		t.Errorf("aggregate FTP trend %d → %d, brute force says %d → %d",
			r.FTP.Before, r.FTP.After, ftp0, ftp2)
	}
	total := 0
	migrated := 0
	for f, n := range h.Flows {
		total += n
		if f.From != f.To {
			migrated += n
		}
	}
	if total != wantPersisted {
		t.Errorf("flow matrix sums to %d, want persisted %d", total, wantPersisted)
	}
	if migrated == 0 {
		t.Error("no version migrations across two epochs with the default upgrade rate")
	}

	out := r.Render()
	for _, want := range []string{"Delta IV", "Delta V", "Persisted", "(unchanged)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
