// Package delta compares two census snapshots taken at different epochs —
// the longitudinal half of the study. The paper's census is a single
// point-in-time sweep; rescanning the same world at a later epoch (see
// worldgen.Params.Epoch) and diffing the results shows what one scan
// cannot: hosts appearing and vanishing with provider churn, server
// populations migrating across versions as operators upgrade, and exposure
// trending as the anonymous population shifts.
//
// Two granularities are supported. Aggregate diffs (Compute) need only the
// two snapshot files every census writes and trend the headline counters.
// Host-level diffs (DiffLedgers) need the streamed JSONL ledgers and
// resolve the actual host sets: which addresses are new, which vanished,
// and — for hosts present in both — how their classified software moved.
package delta

import (
	"fmt"
	"sort"
	"strings"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/fingerprint"
	"ftpcloud/internal/report"
)

// Trend is one counter measured at two epochs.
type Trend struct {
	Before, After int
}

// Delta is the signed change.
func (t Trend) Delta() int { return t.After - t.Before }

// Pct is the relative change in percent; 0 when the base is empty.
func (t Trend) Pct() float64 {
	if t.Before == 0 {
		return 0
	}
	return 100 * float64(t.After-t.Before) / float64(t.Before)
}

// Report is the aggregate-level diff of two snapshots, with the optional
// host-level diff attached when ledgers were available.
type Report struct {
	Observed Trend
	// Funnel trends the discovery counts (Table I's rows).
	Open, FTP, Anon Trend
	// Categories trends Table II's classification rows, keyed by category
	// name; categories present in either snapshot appear.
	Categories map[string]Trend
	// Exposure trends the headline §VI counters.
	ExposingServers, AnonUploadConfirmed Trend
	// FTPS trends the TLS posture.
	FTPSSupported, FTPSSelfSigned Trend
	// Vulnerable trends the CVE-matched population.
	Vulnerable Trend

	// Hosts is nil unless DiffLedgers ran.
	Hosts *HostDelta
}

// Compute diffs two aggregate snapshots, from → to.
func Compute(from, to *analysis.Snapshot) *Report {
	r := &Report{
		Observed:            Trend{from.Observed, to.Observed},
		Open:                Trend{from.Funnel.Open, to.Funnel.Open},
		FTP:                 Trend{from.Funnel.FTP, to.Funnel.FTP},
		Anon:                Trend{from.Funnel.Anon, to.Funnel.Anon},
		ExposingServers:     Trend{from.Exposure.Exp.ExposingServers, to.Exposure.Exp.ExposingServers},
		AnonUploadConfirmed: Trend{from.Malicious.AnonUploadConfirmed, to.Malicious.AnonUploadConfirmed},
		FTPSSupported:       Trend{from.FTPS.Supported, to.FTPS.Supported},
		FTPSSelfSigned:      Trend{from.FTPS.SelfSigned, to.FTPS.SelfSigned},
		Vulnerable:          Trend{from.CVEs.Vulnerable, to.CVEs.Vulnerable},
		Categories:          map[string]Trend{},
	}
	for name, c := range from.Classification.Counts {
		r.Categories[name] = Trend{Before: c.All}
	}
	for name, c := range to.Classification.Counts {
		t := r.Categories[name]
		t.After = c.All
		r.Categories[name] = t
	}
	return r
}

// Flow is one version-migration edge: hosts classified as From in the
// earlier ledger and as To in the later one. Labels are
// "software version" (or "unidentified" when classification yields
// nothing).
type Flow struct {
	From, To string
}

// HostDelta is the host-level diff of two ledgers.
type HostDelta struct {
	// New / Vanished / Persisted partition the union of FTP host sets:
	// addresses only in the later ledger, only in the earlier, or in both.
	New, Vanished, Persisted int
	// Flows counts persisted hosts per version-migration edge, including
	// identity edges (no migration) — the full flow matrix.
	Flows map[Flow]int
	// AnonGained / AnonLost count persisted hosts whose anonymous access
	// opened or closed between the epochs.
	AnonGained, AnonLost int
}

// label renders a record's classified implementation for flow edges.
func label(rec *dataset.HostRecord) string {
	c := fingerprint.Classify(rec)
	switch {
	case c.Software == "":
		return "unidentified"
	case c.Version == "":
		return c.Software
	default:
		return c.Software + " " + c.Version
	}
}

// DiffLedgers diffs two streamed ledgers host by host. Only FTP-compliant
// records participate (shed endpoints from identification runs are
// skipped); if an address somehow appears twice in one ledger the last
// record wins, matching a resume-appended file.
func DiffLedgers(before, after []*dataset.HostRecord) *HostDelta {
	index := func(recs []*dataset.HostRecord) map[string]*dataset.HostRecord {
		m := make(map[string]*dataset.HostRecord, len(recs))
		for _, rec := range recs {
			if rec.FTP {
				m[rec.IP] = rec
			}
		}
		return m
	}
	b, a := index(before), index(after)

	d := &HostDelta{Flows: map[Flow]int{}}
	for ip, rec := range a {
		old, ok := b[ip]
		if !ok {
			d.New++
			continue
		}
		d.Persisted++
		d.Flows[Flow{From: label(old), To: label(rec)}]++
		switch {
		case rec.AnonymousOK && !old.AnonymousOK:
			d.AnonGained++
		case !rec.AnonymousOK && old.AnonymousOK:
			d.AnonLost++
		}
	}
	for ip := range b {
		if _, ok := a[ip]; !ok {
			d.Vanished++
		}
	}
	return d
}

// signed formats a delta with an explicit sign, the way longitudinal
// tables read.
func signed(n int) string { return fmt.Sprintf("%+d", n) }

// Render lays the report out as aligned tables in the house style.
func (r *Report) Render() string {
	var b strings.Builder

	t := report.NewTable("Delta I — Census funnel between epochs",
		"Stage", "Before", "After", "Delta", "Pct")
	for _, row := range []struct {
		name  string
		trend Trend
	}{
		{"Hosts observed", r.Observed},
		{"Open port 21", r.Open},
		{"FTP servers", r.FTP},
		{"Anonymous FTP", r.Anon},
	} {
		t.Row(row.name, row.trend.Before, row.trend.After, signed(row.trend.Delta()), row.trend.Pct())
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	names := make([]string, 0, len(r.Categories))
	for name := range r.Categories {
		names = append(names, name)
	}
	sort.Strings(names)
	t = report.NewTable("Delta II — Classification drift",
		"Category", "Before", "After", "Delta")
	for _, name := range names {
		tr := r.Categories[name]
		if tr.Before == 0 && tr.After == 0 {
			continue
		}
		t.Row(name, tr.Before, tr.After, signed(tr.Delta()))
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	t = report.NewTable("Delta III — Exposure and posture trends",
		"Indicator", "Before", "After", "Delta")
	t.Row("Servers exposing data", r.ExposingServers.Before, r.ExposingServers.After, signed(r.ExposingServers.Delta()))
	t.Row("Anonymous upload confirmed", r.AnonUploadConfirmed.Before, r.AnonUploadConfirmed.After, signed(r.AnonUploadConfirmed.Delta()))
	t.Row("FTPS supported", r.FTPSSupported.Before, r.FTPSSupported.After, signed(r.FTPSSupported.Delta()))
	t.Row("FTPS self-signed", r.FTPSSelfSigned.Before, r.FTPSSelfSigned.After, signed(r.FTPSSelfSigned.Delta()))
	t.Row("CVE-vulnerable servers", r.Vulnerable.Before, r.Vulnerable.After, signed(r.Vulnerable.Delta()))
	b.WriteString(t.String())

	if h := r.Hosts; h != nil {
		b.WriteString("\n")
		t = report.NewTable("Delta IV — Host churn (from ledgers)",
			"Population", "Hosts")
		t.Row("New", h.New)
		t.Row("Vanished", h.Vanished)
		t.Row("Persisted", h.Persisted)
		t.Row("Anonymous access gained", h.AnonGained)
		t.Row("Anonymous access lost", h.AnonLost)
		b.WriteString(t.String())
		b.WriteString("\n")
		b.WriteString(renderFlows(h.Flows))
	}
	return b.String()
}

// renderFlows lists migration edges, largest first, identity edges last;
// ties break lexically so rendering is deterministic.
func renderFlows(flows map[Flow]int) string {
	type edge struct {
		f Flow
		n int
	}
	edges := make([]edge, 0, len(flows))
	for f, n := range flows {
		edges = append(edges, edge{f, n})
	}
	sort.Slice(edges, func(i, j int) bool {
		ei, ej := edges[i], edges[j]
		mi, mj := ei.f.From != ei.f.To, ej.f.From != ej.f.To
		if mi != mj {
			return mi
		}
		if ei.n != ej.n {
			return ei.n > ej.n
		}
		if ei.f.From != ej.f.From {
			return ei.f.From < ej.f.From
		}
		return ei.f.To < ej.f.To
	})
	t := report.NewTable("Delta V — Version migration flows",
		"From", "To", "Hosts")
	for _, e := range edges {
		to := e.f.To
		if e.f.From == e.f.To {
			to = "(unchanged)"
		}
		t.Row(e.f.From, to, e.n)
	}
	return t.String()
}
