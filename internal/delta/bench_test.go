package delta

import (
	"fmt"
	"testing"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/dataset"
)

// syntheticLedger builds n FTP host records with a realistic software mix
// and a deterministic drift pattern, so ledger diffing benchmarks at the
// scale of a real sweep (~100k responsive hosts) without running one.
func syntheticLedger(n int, epoch int) []*dataset.HostRecord {
	banners := []string{
		"220 (vsFTPd 2.3.5)",
		"220 (vsFTPd 3.0.2)",
		"220 ProFTPD 1.3.5 Server ready",
		"220 Pure-FTPd 1.0.36 ready.",
		"220 FTP server ready.",
	}
	recs := make([]*dataset.HostRecord, 0, n)
	for i := 0; i < n; i++ {
		// ~3% of hosts churn per epoch: skip them in the later ledger
		// and give the survivors a shifted banner mix so flows are
		// non-trivial.
		if epoch > 0 && i%33 == 0 {
			continue
		}
		recs = append(recs, &dataset.HostRecord{
			IP:          fmt.Sprintf("10.%d.%d.%d", i>>16&255, i>>8&255, i&255),
			PortOpen:    true,
			FTP:         true,
			Banner:      banners[(i+epoch*(i%7))%len(banners)],
			AnonymousOK: i%5 == 0,
		})
	}
	return recs
}

// checkpointSnapshot builds a populated v2 snapshot of benchmark size.
func checkpointSnapshot() *analysis.Snapshot {
	counts := make(map[string]analysis.CategoryCount, 64)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("cat-%d", i)
		counts[name] = analysis.CategoryCount{Name: name, All: i * 11, Anon: i * 3}
	}
	return &analysis.Snapshot{
		Observed:       100_000,
		Funnel:         analysis.FunnelSnap{Open: 120_000, FTP: 100_000, Anon: 21_000},
		Classification: analysis.ClassificationSnap{Counts: counts, TotalFTP: 100_000, TotalAnon: 21_000},
		Checkpoint: &analysis.CheckpointState{
			Seed:      42,
			Scale:     4096,
			Shards:    4,
			ScanSize:  1 << 20,
			Cursors:   []uint64{100, 200, 300, 400},
			Streamed:  100_000,
			Probed:    1 << 20,
			Responded: 120_000,
			Robustness: analysis.RobustnessState{
				Records:  100_000,
				Failures: map[string]int{"timeout": 120, "reset": 45},
			},
		},
	}
}

func BenchmarkCheckpointEncode(b *testing.B) {
	snap := checkpointSnapshot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := snap.EncodeBytes(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointDecode(b *testing.B) {
	raw, err := checkpointSnapshot().EncodeBytes()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.DecodeSnapshotBytes(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResumeMerge measures folding a checkpointed aggregate into a
// fresh aggregator — the fixed cost a resumed census pays at assembly.
func BenchmarkResumeMerge(b *testing.B) {
	snap := checkpointSnapshot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agg := analysis.NewAggregator(nil, nil)
		agg.MergeSnapshot(snap)
	}
}

func BenchmarkDiffLedgers100k(b *testing.B) {
	before := syntheticLedger(100_000, 0)
	after := syntheticLedger(100_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := DiffLedgers(before, after)
		if d.Persisted == 0 {
			b.Fatal("empty diff")
		}
	}
}
