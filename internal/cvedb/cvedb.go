// Package cvedb holds the known-vulnerability database the paper matches
// against FTP banner version strings (Table XI), plus the version-string
// extraction and comparison machinery that matching requires.
//
// As in the paper, matching is purely banner-based: no exploitation is ever
// attempted; a host "matches" a CVE when its advertised implementation and
// version fall inside the vulnerable range.
package cvedb

import (
	"strings"
)

// CVE is one known vulnerability affecting an FTP implementation.
type CVE struct {
	ID       string
	Software string
	CVSS     float64
	// Description summarizes the flaw.
	Description string
	// AffectedMax is the highest vulnerable version (inclusive).
	AffectedMax string
	// AffectedMin, when non-empty, is the lowest vulnerable version
	// (inclusive); empty means all versions up to AffectedMax.
	AffectedMin string
}

// Database returns the CVE set from the paper's Table XI. The returned slice
// is freshly allocated each call.
func Database() []CVE {
	return []CVE{
		{
			ID: "CVE-2015-3306", Software: "ProFTPD", CVSS: 10.0,
			Description: "mod_copy unauthenticated SITE CPFR/CPTO file read/write",
			AffectedMin: "1.3.5", AffectedMax: "1.3.5",
		},
		{
			ID: "CVE-2013-4359", Software: "ProFTPD", CVSS: 5.0,
			Description: "mod_sftp/mod_sftp_pam integer overflow denial of service",
			AffectedMin: "1.3.4", AffectedMax: "1.3.4c",
		},
		{
			ID: "CVE-2012-6095", Software: "ProFTPD", CVSS: 1.2,
			Description: "MKD/symlink race allows group-permission escalation",
			AffectedMax: "1.3.4b",
		},
		{
			ID: "CVE-2011-4130", Software: "ProFTPD", CVSS: 9.0,
			Description: "Response pool use-after-free allows remote code execution",
			AffectedMax: "1.3.3f",
		},
		{
			ID: "CVE-2011-1137", Software: "ProFTPD", CVSS: 5.0,
			Description: "mod_sftp malformed SSH message denial of service",
			AffectedMax: "1.3.3d",
		},
		{
			ID: "CVE-2011-1575", Software: "Pure-FTPd", CVSS: 5.8,
			Description: "STARTTLS command injection into the TLS session",
			AffectedMax: "1.0.29",
		},
		{
			ID: "CVE-2011-0418", Software: "Pure-FTPd", CVSS: 4.0,
			Description: "glob_() resource exhaustion denial of service",
			AffectedMax: "1.0.31",
		},
		{
			ID: "CVE-2015-1419", Software: "vsFTPd", CVSS: 5.0,
			Description: "deny_file filtering bypass via unspecified vectors",
			AffectedMax: "3.0.2",
		},
		{
			ID: "CVE-2011-0762", Software: "vsFTPd", CVSS: 4.0,
			Description: "vsf_filename_passes_filter glob denial of service",
			AffectedMax: "2.3.2",
		},
		{
			ID: "CVE-2011-4800", Software: "Serv-U", CVSS: 9.0,
			Description: "Directory traversal allows arbitrary file access",
			AffectedMax: "11.1.0.2",
		},
	}
}

// Match returns every CVE whose software and version range cover the given
// implementation. Software names compare case-insensitively.
func Match(software, version string) []CVE {
	if software == "" || version == "" {
		return nil
	}
	var out []CVE
	for _, c := range Database() {
		if !strings.EqualFold(c.Software, software) {
			continue
		}
		if CompareVersions(version, c.AffectedMax) > 0 {
			continue
		}
		if c.AffectedMin != "" && CompareVersions(version, c.AffectedMin) < 0 {
			continue
		}
		out = append(out, c)
	}
	return out
}

// CompareVersions orders dotted, letter-suffixed version strings the way
// FTP implementations use them: "1.3.4a" < "1.3.4b" < "1.3.5" and
// "1.3.5" < "1.3.10". Numeric segments compare numerically, alphabetic
// suffixes lexicographically, and a missing segment sorts before any
// present one ("1.3.4" < "1.3.4a").
func CompareVersions(a, b string) int {
	ta := tokenize(a)
	tb := tokenize(b)
	for i := 0; i < len(ta) || i < len(tb); i++ {
		var x, y token
		if i < len(ta) {
			x = ta[i]
		}
		if i < len(tb) {
			y = tb[i]
		}
		if c := x.compare(y); c != 0 {
			return c
		}
	}
	return 0
}

// token is one version segment: numeric or alphabetic.
type token struct {
	present bool
	numeric bool
	num     int64
	str     string
}

func (t token) compare(o token) int {
	switch {
	case !t.present && !o.present:
		return 0
	case !t.present:
		return -1
	case !o.present:
		return 1
	}
	// Numeric sorts before alphabetic when kinds differ (rare; keeps
	// ordering total).
	if t.numeric != o.numeric {
		if t.numeric {
			return -1
		}
		return 1
	}
	if t.numeric {
		switch {
		case t.num < o.num:
			return -1
		case t.num > o.num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(t.str, o.str)
}

// tokenize splits "1.3.4a" into [1 3 4 a], treating '.', '-', '_' as
// separators and splitting at digit/letter boundaries.
func tokenize(v string) []token {
	var out []token
	i := 0
	for i < len(v) {
		c := v[i]
		switch {
		case c >= '0' && c <= '9':
			j := i
			var n int64
			for j < len(v) && v[j] >= '0' && v[j] <= '9' {
				n = n*10 + int64(v[j]-'0')
				j++
			}
			out = append(out, token{present: true, numeric: true, num: n})
			i = j
		case (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(v) && ((v[j] >= 'a' && v[j] <= 'z') || (v[j] >= 'A' && v[j] <= 'Z')) {
				j++
			}
			out = append(out, token{present: true, str: strings.ToLower(v[i:j])})
			i = j
		default:
			i++
		}
	}
	return out
}

// HighestCVSS returns the maximum CVSS score among the matches, or 0.
func HighestCVSS(matches []CVE) float64 {
	var top float64
	for _, m := range matches {
		if m.CVSS > top {
			top = m.CVSS
		}
	}
	return top
}
