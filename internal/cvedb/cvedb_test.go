package cvedb

import (
	"testing"
	"testing/quick"
)

func TestCompareVersions(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"1.3.5", "1.3.5", 0},
		{"1.3.4", "1.3.5", -1},
		{"1.3.5", "1.3.4", 1},
		{"1.3.4a", "1.3.4b", -1},
		{"1.3.4", "1.3.4a", -1},
		{"1.3.5", "1.3.10", -1},
		{"2.3.2", "3.0.2", -1},
		{"1.0.29", "1.0.31", -1},
		{"11.1.0.2", "6.4", 1},
		{"1.3.3f", "1.3.3d", 1},
		{"1.3-4", "1.3.4", 0}, // separators equivalent
		{"", "1.0", -1},
	}
	for _, tt := range tests {
		if got := CompareVersions(tt.a, tt.b); got != tt.want {
			t.Errorf("CompareVersions(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

// Properties: comparison is reflexive and antisymmetric over realistic
// version shapes.
func TestCompareVersionsProperties(t *testing.T) {
	gen := func(maj, min, patch uint8, suffix uint8) string {
		v := ""
		v += string(rune('0' + maj%4))
		v += "."
		v += string(rune('0' + min%10))
		v += "."
		v += string(rune('0' + patch%10))
		if suffix%3 == 1 {
			v += string(rune('a' + suffix%26))
		}
		return v
	}
	reflexive := func(a, b, c, d uint8) bool {
		v := gen(a, b, c, d)
		return CompareVersions(v, v) == 0
	}
	if err := quick.Check(reflexive, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	antisym := func(a1, b1, c1, d1, a2, b2, c2, d2 uint8) bool {
		x := gen(a1, b1, c1, d1)
		y := gen(a2, b2, c2, d2)
		return CompareVersions(x, y) == -CompareVersions(y, x)
	}
	if err := quick.Check(antisym, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMatchProFTPD135(t *testing.T) {
	matches := Match("ProFTPD", "1.3.5")
	ids := make(map[string]bool)
	for _, m := range matches {
		ids[m.ID] = true
	}
	if !ids["CVE-2015-3306"] {
		t.Errorf("ProFTPD 1.3.5 must match CVE-2015-3306: %v", ids)
	}
	if ids["CVE-2012-6095"] || ids["CVE-2011-4130"] {
		t.Errorf("ProFTPD 1.3.5 must not match old-version CVEs: %v", ids)
	}
}

func TestMatchProFTPDOld(t *testing.T) {
	matches := Match("ProFTPD", "1.3.2")
	ids := make(map[string]bool)
	for _, m := range matches {
		ids[m.ID] = true
	}
	for _, want := range []string{"CVE-2012-6095", "CVE-2011-4130", "CVE-2011-1137"} {
		if !ids[want] {
			t.Errorf("ProFTPD 1.3.2 must match %s: %v", want, ids)
		}
	}
	if ids["CVE-2015-3306"] || ids["CVE-2013-4359"] {
		t.Errorf("ProFTPD 1.3.2 matched newer-range CVEs: %v", ids)
	}
}

func TestMatchVsftpd(t *testing.T) {
	m302 := Match("vsFTPd", "3.0.2")
	if len(m302) != 1 || m302[0].ID != "CVE-2015-1419" {
		t.Errorf("vsFTPd 3.0.2: %v", m302)
	}
	m232 := Match("vsftpd", "2.3.2") // case-insensitive
	if len(m232) != 2 {
		t.Errorf("vsFTPd 2.3.2 should match both CVEs: %v", m232)
	}
	if len(Match("vsFTPd", "3.0.3")) != 0 {
		t.Error("vsFTPd 3.0.3 should be clean")
	}
}

func TestMatchServU(t *testing.T) {
	if len(Match("Serv-U", "6.4")) != 1 {
		t.Error("Serv-U 6.4 should match CVE-2011-4800")
	}
	if len(Match("Serv-U", "15.1")) != 0 {
		t.Error("Serv-U 15.1 should be clean")
	}
}

func TestMatchPureFTPd(t *testing.T) {
	m := Match("Pure-FTPd", "1.0.29")
	if len(m) != 2 {
		t.Errorf("Pure-FTPd 1.0.29: %v", m)
	}
	if len(Match("Pure-FTPd", "1.0.36")) != 0 {
		t.Error("Pure-FTPd 1.0.36 should be clean")
	}
}

func TestMatchEdgeCases(t *testing.T) {
	if Match("", "1.0") != nil {
		t.Error("empty software matched")
	}
	if Match("ProFTPD", "") != nil {
		t.Error("empty version matched")
	}
	if Match("UnknownFTPd", "1.0") != nil {
		t.Error("unknown software matched")
	}
}

func TestHighestCVSS(t *testing.T) {
	if got := HighestCVSS(Match("ProFTPD", "1.3.5")); got != 10.0 {
		t.Errorf("HighestCVSS ProFTPD 1.3.5 = %v", got)
	}
	if got := HighestCVSS(nil); got != 0 {
		t.Errorf("HighestCVSS(nil) = %v", got)
	}
}

func TestDatabaseComplete(t *testing.T) {
	db := Database()
	if len(db) != 10 {
		t.Fatalf("database has %d CVEs, want the paper's 10", len(db))
	}
	for _, c := range db {
		if c.ID == "" || c.Software == "" || c.CVSS <= 0 || c.AffectedMax == "" {
			t.Errorf("incomplete CVE record: %+v", c)
		}
	}
}
