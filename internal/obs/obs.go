// Package obs is the census's observability substrate: a dependency-free
// metrics layer of atomic counters, gauges, and fixed-bucket latency
// histograms behind a Registry, plus a diffable Snapshot for rate
// computation. The paper's measurement ran for days; its operators watched
// probe rates, enumeration throughput, and failure classes live ("Ten Years
// of ZMap" stresses exactly this layer). Every pipeline stage registers its
// counters here, the progress reporter diffs snapshots on an interval, and
// the debug endpoint exports the registry as expvar alongside pprof.
//
// Metrics are cheap enough for hot paths: a Counter.Add is one atomic add,
// and components resolve their metric pointers once at construction, never
// per operation. A nil *Registry is valid everywhere and yields unregistered
// (but still functional) metrics, so instrumented code needs no nil checks.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. A counter may be
// linked to a parent (Registry.ChildCounter): every increment then flows to
// the parent as well, so a per-shard counter and the merged global view
// stay consistent from one atomic add each.
type Counter struct {
	v      atomic.Uint64
	parent *Counter
}

// NewCounter returns a standalone (unregistered) counter.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n, and its parent chain with it.
func (c *Counter) Add(n uint64) {
	for ; c != nil; c = c.parent {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (in-flight work, queue depth).
type Gauge struct{ v atomic.Int64 }

// NewGauge returns a standalone (unregistered) gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark idiom (peak in-flight sessions, peak live state). Lock-free
// and safe against concurrent SetMax callers.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DefaultLatencyBuckets covers the per-interaction latencies LZR-style
// service identification leans on: sub-millisecond simulated round trips up
// through multi-second hostile stalls.
var DefaultLatencyBuckets = []time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// WideBuckets suits whole-host durations: the enumerator's per-host budget
// defaults to two minutes, so the top buckets reach past it.
var WideBuckets = []time.Duration{
	1 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 5 * time.Second, 15 * time.Second, 30 * time.Second,
	time.Minute, 2 * time.Minute, 5 * time.Minute,
}

// Histogram is a fixed-bucket latency histogram. Each bucket counts
// observations at or below its upper bound; observations above the last
// bound land in an implicit +Inf bucket. All methods are lock-free.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram builds a standalone histogram over the given ascending
// bounds; no bounds means DefaultLatencyBuckets.
func NewHistogram(bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Since observes the time elapsed from start — the timing idiom at call
// sites: defer-free, one line after the operation.
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Registry is a named collection of metrics. All methods are safe for
// concurrent use and valid on a nil receiver: a nil registry hands out
// functional but unregistered metrics, so instrumentation can be wired
// unconditionally and enabled by supplying a registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return NewCounter()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// ChildCounter returns the counter named prefix+name whose increments also
// flow into the plain counter named name — the per-shard/merged pattern:
// shard pipelines write "shard0.zmap.probed" and readers of "zmap.probed"
// see the fleet-wide total. An empty prefix is just Counter(name); a nil
// registry hands out a standalone counter.
func (r *Registry) ChildCounter(prefix, name string) *Counter {
	if prefix == "" || r == nil {
		return r.Counter(name)
	}
	parent := r.Counter(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[prefix+name]
	if !ok {
		c = &Counter{parent: parent}
		r.counters[prefix+name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return NewGauge()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls reuse the existing buckets regardless of
// bounds). No bounds means DefaultLatencyBuckets.
func (r *Registry) Histogram(name string, bounds ...time.Duration) *Histogram {
	if r == nil {
		return NewHistogram(bounds...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot. LENanos is the inclusive
// upper bound in nanoseconds; -1 marks the +Inf bucket.
type Bucket struct {
	LENanos int64  `json:"le_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is a histogram frozen at snapshot time.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	SumNanos int64    `json:"sum_ns"`
	Buckets  []Bucket `json:"buckets"`
}

// Snapshot is the registry frozen at one instant. Snapshots are plain data:
// JSON-serializable for -metrics-out and expvar, and diffable with Sub for
// rate computation.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes every registered metric. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:    h.count.Load(),
			SumNanos: h.sum.Load(),
			Buckets:  make([]Bucket, len(h.counts)),
		}
		for i := range h.counts {
			le := int64(-1)
			if i < len(h.bounds) {
				le = int64(h.bounds[i])
			}
			hs.Buckets[i] = Bucket{LENanos: le, Count: h.counts[i].Load()}
		}
		s.Histograms[name] = hs
	}
	return s
}

// Sub returns the delta from prev to s: counter and histogram counts are
// subtracted (clamped at zero), gauges keep their current value — a gauge
// delta has no operational meaning.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		p := prev.Counters[name]
		if v < p {
			p = v
		}
		d.Counters[name] = v - p
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		ph := prev.Histograms[name]
		dh := HistogramSnapshot{Count: h.Count, SumNanos: h.SumNanos}
		if ph.Count <= h.Count {
			dh.Count = h.Count - ph.Count
			dh.SumNanos = h.SumNanos - ph.SumNanos
		}
		dh.Buckets = make([]Bucket, len(h.Buckets))
		copy(dh.Buckets, h.Buckets)
		for i := range dh.Buckets {
			if i < len(ph.Buckets) && ph.Buckets[i].Count <= dh.Buckets[i].Count {
				dh.Buckets[i].Count -= ph.Buckets[i].Count
			}
		}
		d.Histograms[name] = dh
	}
	return d
}

// Empty reports whether the snapshot carries no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// sortedKeys returns map keys in stable order for rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
