package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test.counter")
	g := reg.Gauge("test.gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Load())
	}
	if g.Load() != 0 {
		t.Errorf("gauge = %d, want 0", g.Load())
	}
	if got := reg.Counter("test.counter"); got != c {
		t.Error("Counter is not get-or-create: second lookup returned a new counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (inclusive upper bound)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	want := []uint64{2, 1, 0, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + time.Second
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestNilRegistryIsUsable(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(3)
	reg.Histogram("z").Observe(time.Millisecond)
	if !reg.Snapshot().Empty() {
		t.Error("nil registry snapshot is not empty")
	}
}

func TestSnapshotSubAndJSON(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("probes")
	h := reg.Histogram("lat", time.Millisecond, time.Second)
	c.Add(10)
	h.Observe(2 * time.Millisecond)
	prev := reg.Snapshot()
	c.Add(5)
	h.Observe(3 * time.Millisecond)
	cur := reg.Snapshot()

	delta := cur.Sub(prev)
	if delta.Counters["probes"] != 5 {
		t.Errorf("counter delta = %d, want 5", delta.Counters["probes"])
	}
	if delta.Histograms["lat"].Count != 1 {
		t.Errorf("histogram count delta = %d, want 1", delta.Histograms["lat"].Count)
	}

	var buf bytes.Buffer
	if err := cur.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["probes"] != 15 {
		t.Errorf("round-tripped counter = %d, want 15", back.Counters["probes"])
	}
	hs := back.Histograms["lat"]
	if hs.Count != 2 || len(hs.Buckets) != 3 {
		t.Errorf("round-tripped histogram = %+v", hs)
	}
	if hs.Buckets[len(hs.Buckets)-1].LENanos != -1 {
		t.Error("last bucket is not the +Inf bucket")
	}
}

func TestReporterEmitsRates(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("work.items").Add(100)
	reg.Gauge("work.inflight").Set(7)
	var mu sync.Mutex
	var buf bytes.Buffer
	rep := &Reporter{
		Registry: reg,
		Interval: 10 * time.Millisecond,
		W: writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return buf.Write(p)
		}),
	}
	stop := rep.Start(context.Background())
	time.Sleep(25 * time.Millisecond)
	reg.Counter("work.items").Add(50)
	stop()
	stop() // idempotent

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "work.items=150") {
		t.Errorf("final line missing updated counter:\n%s", out)
	}
	if !strings.Contains(out, "work.inflight=7") {
		t.Errorf("line missing gauge:\n%s", out)
	}
	if strings.Count(out, "progress:") < 2 {
		t.Errorf("expected at least two progress lines:\n%s", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestServeDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo.counter").Add(42)
	reg.Histogram("demo.lat").Observe(3 * time.Millisecond)
	ds, err := ServeDebug("127.0.0.1:0", "obs_test_demo", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not a snapshot: %v", err)
	}
	if snap.Counters["demo.counter"] != 42 {
		t.Errorf("/metrics counter = %d, want 42", snap.Counters["demo.counter"])
	}
	if snap.Histograms["demo.lat"].Count != 1 {
		t.Error("/metrics missing histogram")
	}

	vars := string(get("/debug/vars"))
	if !strings.Contains(vars, "obs_test_demo") || !strings.Contains(vars, "demo.counter") {
		t.Errorf("/debug/vars missing published registry:\n%.400s", vars)
	}

	if body := string(get("/debug/pprof/")); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ does not look like the pprof index")
	}

	// Re-publishing the same name must not panic and must re-point the var.
	reg2 := NewRegistry()
	reg2.Counter("demo.second").Inc()
	Publish("obs_test_demo", reg2)
	if vars := string(get("/debug/vars")); !strings.Contains(vars, "demo.second") {
		t.Error("re-published registry not visible in /debug/vars")
	}
}

func TestChildCounterFlowsToParent(t *testing.T) {
	reg := NewRegistry()
	shard0 := reg.ChildCounter("shard0.", "zmap.probed")
	shard1 := reg.ChildCounter("shard1.", "zmap.probed")
	shard0.Add(3)
	shard1.Add(4)
	shard1.Inc()

	snap := reg.Snapshot()
	if got := snap.Counters["shard0.zmap.probed"]; got != 3 {
		t.Errorf("shard0 counter = %d, want 3", got)
	}
	if got := snap.Counters["shard1.zmap.probed"]; got != 5 {
		t.Errorf("shard1 counter = %d, want 5", got)
	}
	if got := snap.Counters["zmap.probed"]; got != 8 {
		t.Errorf("parent counter = %d, want per-shard sum 8", got)
	}

	// Writes to the parent stay on the parent.
	reg.Counter("zmap.probed").Inc()
	if got := reg.Counter("zmap.probed").Load(); got != 9 {
		t.Errorf("parent after direct Inc = %d, want 9", got)
	}
	if got := shard0.Load(); got != 3 {
		t.Errorf("child changed by parent write: %d, want 3", got)
	}

	// Same prefix+name resolves to the same child.
	if again := reg.ChildCounter("shard0.", "zmap.probed"); again != shard0 {
		t.Error("ChildCounter did not reuse the registered child")
	}
}

func TestChildCounterDegenerateForms(t *testing.T) {
	reg := NewRegistry()
	// Empty prefix is the plain counter.
	if reg.ChildCounter("", "plain") != reg.Counter("plain") {
		t.Error("empty prefix should resolve to the plain counter")
	}
	// Nil registry hands out a functional standalone counter.
	var nilReg *Registry
	c := nilReg.ChildCounter("shard0.", "x")
	c.Add(2)
	if c.Load() != 2 {
		t.Error("nil-registry child counter not functional")
	}
}

func TestGaugeSetMax(t *testing.T) {
	g := NewGauge()
	g.SetMax(5)
	if g.Load() != 5 {
		t.Errorf("gauge = %d, want 5", g.Load())
	}
	g.SetMax(3)
	if g.Load() != 5 {
		t.Errorf("SetMax lowered the high-water mark to %d", g.Load())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for v := int64(0); v <= 1000; v++ {
				g.SetMax(v + int64(i))
			}
		}(i)
	}
	wg.Wait()
	if g.Load() != 1007 {
		t.Errorf("concurrent SetMax = %d, want 1007", g.Load())
	}
}
