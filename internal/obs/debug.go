package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// published tracks expvar names already claimed, with one indirection so a
// name can be re-pointed at a newer registry: expvar.Publish itself panics
// on duplicates, which would make repeated runs (and tests) fragile.
var (
	pubMu     sync.Mutex
	published = map[string]*Registry{}
)

// Publish exports the registry's live snapshot as the named expvar var.
// Publishing the same name again re-points it at the new registry.
func Publish(name string, r *Registry) {
	pubMu.Lock()
	defer pubMu.Unlock()
	if _, ok := published[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			pubMu.Lock()
			reg := published[name]
			pubMu.Unlock()
			return reg.Snapshot()
		}))
	}
	published[name] = r
}

// DebugServer is a live diagnostics endpoint: net/http/pprof under
// /debug/pprof/, the process expvar page (including the published registry)
// under /debug/vars, and the raw registry snapshot as JSON under /metrics.
type DebugServer struct {
	lis net.Listener
	srv *http.Server
}

// ServeDebug binds addr and serves the debug endpoints, publishing the
// registry as the named expvar var. It returns immediately; Close shuts the
// listener down.
func ServeDebug(addr, name string, r *Registry) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	Publish(name, r)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	ds := &DebugServer{lis: lis, srv: &http.Server{Handler: mux}}
	go ds.srv.Serve(lis)
	return ds, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
