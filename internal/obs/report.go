package obs

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// FormatFunc renders one progress line. delta is the snapshot difference
// since the previous line, cur the current absolute snapshot, and elapsed
// the wall-clock time the delta covers.
type FormatFunc func(w io.Writer, delta, cur Snapshot, elapsed time.Duration)

// Reporter periodically snapshots a registry and prints progress — the
// live view a days-long scan needs. It also emits one final line when
// stopped, so even runs shorter than the interval report once.
type Reporter struct {
	// Registry is the metrics source. A nil registry produces empty lines
	// but is not an error, matching the rest of the package.
	Registry *Registry
	// Interval is the reporting period; 0 means 5s.
	Interval time.Duration
	// W receives the lines; nil means os.Stderr.
	W io.Writer
	// Format renders each line; nil means DefaultFormat.
	Format FormatFunc
}

// Start launches the reporting loop. It returns a stop function that emits
// a final line and waits for the loop to exit; stop is idempotent. The loop
// also ends (with a final line) when ctx is cancelled.
func (r *Reporter) Start(ctx context.Context) (stop func()) {
	interval := r.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	w := r.W
	if w == nil {
		w = os.Stderr
	}
	format := r.Format
	if format == nil {
		format = DefaultFormat
	}

	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		prev := r.Registry.Snapshot()
		last := time.Now()
		emit := func() {
			cur := r.Registry.Snapshot()
			now := time.Now()
			format(w, cur.Sub(prev), cur, now.Sub(last))
			prev, last = cur, now
		}
		for {
			select {
			case <-tick.C:
				emit()
			case <-ctx.Done():
				emit()
				return
			case <-done:
				emit()
				return
			}
		}
	}()

	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// DefaultFormat prints every nonzero counter with its delta-derived rate,
// followed by the gauges — a generic line for tools without a bespoke
// formatter.
func DefaultFormat(w io.Writer, delta, cur Snapshot, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	parts := make([]string, 0, len(cur.Counters)+len(cur.Gauges))
	for _, name := range sortedKeys(cur.Counters) {
		v := cur.Counters[name]
		if v == 0 {
			continue
		}
		if d := delta.Counters[name]; d > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d (+%d, %.0f/s)", name, v, d, float64(d)/secs))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	for _, name := range sortedKeys(cur.Gauges) {
		parts = append(parts, fmt.Sprintf("%s=%d", name, cur.Gauges[name]))
	}
	if len(parts) == 0 {
		parts = append(parts, "(no activity)")
	}
	fmt.Fprintf(w, "progress: %s\n", strings.Join(parts, " "))
}
