package obs

import (
	"context"
	"sync"
	"time"
)

// Every runs fn every interval until ctx is cancelled or the returned stop
// function is called. Unlike Reporter it carries no registry or formatting —
// it is the bare periodic-action primitive the census checkpoint coordinator
// (and anything else needing a supervised ticker) builds on.
//
// fn invocations never overlap: the loop is a single goroutine. stop is
// idempotent and blocks until any in-flight fn has returned, so after stop
// the caller may tear down whatever fn touches.
func Every(ctx context.Context, interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-stopCh:
				return
			case <-t.C:
				fn()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-done
	}
}
