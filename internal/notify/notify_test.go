package notify

import (
	"strings"
	"testing"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/asdb"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/simnet"
)

func testInput(t *testing.T) *analysis.Input {
	t.Helper()
	db, err := asdb.NewDB([]*asdb.AS{
		{Number: 100, Name: "Net A", Type: asdb.TypeHosting,
			Prefixes: []simnet.Prefix{{Base: simnet.MustParseIP("10.0.0.0"), Bits: 16}}},
		{Number: 200, Name: "Net B", Type: asdb.TypeISP,
			Prefixes: []simnet.Prefix{{Base: simnet.MustParseIP("20.0.0.0"), Bits: 16}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Input{
		ASDB: db,
		Records: []*dataset.HostRecord{
			{
				IP: "10.0.0.1", FTP: true, AnonymousOK: true, PortOpen: true,
				Banner: "ProFTPD 1.3.2 Server",
				Files: []dataset.FileEntry{
					{Path: "/d/mail.pst", Name: "mail.pst"},
					{Path: "/d/passwords.kdbx", Name: "passwords.kdbx"},
					{Path: "/d/ssh_host_rsa_key", Name: "ssh_host_rsa_key"},
				},
				PortCheck: dataset.PortNotValidated,
			},
			{
				IP: "10.0.0.2", FTP: true, AnonymousOK: true, PortOpen: true,
				Banner:        "FTP server ready.",
				WriteEvidence: []string{"w0000000t.txt"},
			},
			{IP: "20.0.0.1", FTP: true, PortOpen: true, Banner: "(vsFTPd 2.3.2)"},
			{IP: "20.0.0.2", FTP: true, PortOpen: true, Banner: "FTP server ready."},
		},
	}
}

func TestBuildGroupsByAS(t *testing.T) {
	notices := Build(testInput(t))
	if len(notices) != 2 {
		t.Fatalf("notices = %d", len(notices))
	}
	// Net A has more findings: sensitive + bounce + cve + writable = 4.
	a := notices[0]
	if a.ASNumber != 100 {
		t.Fatalf("first notice AS%d", a.ASNumber)
	}
	if len(a.Findings) != 4 {
		t.Errorf("Net A findings = %d: %+v", len(a.Findings), a.Findings)
	}
	kinds := map[Kind]int{}
	for _, f := range a.Findings {
		kinds[f.Kind]++
	}
	for _, want := range []Kind{KindSensitiveExposure, KindWorldWritable, KindBounceVulnerable, KindKnownCVE} {
		if kinds[want] != 1 {
			t.Errorf("missing finding kind %s: %+v", want, kinds)
		}
	}
	b := notices[1]
	if b.ASNumber != 200 || len(b.Findings) != 1 || b.Findings[0].Kind != KindKnownCVE {
		t.Errorf("Net B notice: %+v", b)
	}
}

func TestRenderWithholdsPaths(t *testing.T) {
	notices := Build(testInput(t))
	out := Render(notices[0])
	for _, want := range []string{"abuse@as100.example.net", "AS100", "email archives (1 files)",
		"password databases", "cryptographic key material", "FTP bounce"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The notice must never reveal file paths or names.
	for _, forbidden := range []string{"mail.pst", "passwords.kdbx", "/d/"} {
		if strings.Contains(out, forbidden) {
			t.Errorf("render leaked %q:\n%s", forbidden, out)
		}
	}
}

func TestSensitiveCategory(t *testing.T) {
	tests := []struct {
		name, want string
	}{
		{"mail.PST", "email archives"},
		{"q.qdf", "financial records"},
		{"tax.txf", "financial records"},
		{"x.kdbx", "password databases"},
		{"1Password.agilekeychain", "password databases"},
		{"ssh_host_rsa_key", "cryptographic key material"},
		{"ssh_host_rsa_key.pub", ""},
		{"key.ppk", "cryptographic key material"},
		{"server-priv.pem", "cryptographic key material"},
		{"shadow", "system password files"},
		{"shadow.1", "system password files"},
		{"vacation.jpg", ""},
	}
	for _, tt := range tests {
		if got := sensitiveCategory(tt.name); got != tt.want {
			t.Errorf("sensitiveCategory(%q) = %q, want %q", tt.name, got, tt.want)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	if notices := Build(&analysis.Input{}); len(notices) != 0 {
		t.Errorf("empty input produced notices: %+v", notices)
	}
}
