// Package notify implements the paper's disclosure step: "We are working
// to notify responsible entities in likely instances of sensitive
// information disclosure." It groups census findings by autonomous system
// and renders operator-facing notification reports, the way large
// measurement groups batch abuse notifications per network.
//
// Finding text deliberately names only categories and counts, never file
// paths — the paper declined to publish anything that would make retrieval
// trivial, and so does this generator.
package notify

import (
	"fmt"
	"sort"
	"strings"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/asdb"
	"ftpcloud/internal/cvedb"
	"ftpcloud/internal/dataset"
)

// Kind classifies a finding.
type Kind string

// Finding kinds.
const (
	KindSensitiveExposure Kind = "sensitive-exposure"
	KindWorldWritable     Kind = "world-writable"
	KindInfected          Kind = "infected"
	KindBounceVulnerable  Kind = "port-bounce"
	KindKnownCVE          Kind = "known-cve"
)

// Finding is one per-host issue worth notifying about.
type Finding struct {
	IP     string
	Kind   Kind
	Detail string
}

// Notice is the per-AS notification.
type Notice struct {
	ASNumber uint32
	ASName   string
	// Contact is the synthesized abuse address for the simulated AS.
	Contact  string
	Findings []Finding
}

// sensitiveClasses maps filename predicates to category labels; only
// category names ever appear in notices.
func sensitiveCategory(name string) string {
	lower := strings.ToLower(name)
	switch {
	case strings.HasSuffix(lower, ".pst"):
		return "email archives"
	case strings.HasSuffix(lower, ".qdf"), strings.HasSuffix(lower, ".txf"):
		return "financial records"
	case strings.HasSuffix(lower, ".kdbx"), strings.HasSuffix(lower, ".kdb"),
		strings.Contains(lower, "agilekeychain"):
		return "password databases"
	case strings.Contains(lower, "ssh_host_") && !strings.HasSuffix(lower, ".pub"),
		strings.HasSuffix(lower, ".ppk"),
		strings.HasSuffix(lower, ".pem") && strings.Contains(lower, "priv"):
		return "cryptographic key material"
	case lower == "shadow" || strings.HasPrefix(lower, "shadow."):
		return "system password files"
	default:
		return ""
	}
}

// Build derives notices from a census dataset.
func Build(in *analysis.Input) []Notice {
	byAS := map[*asdb.AS][]Finding{}
	add := func(as *asdb.AS, f Finding) {
		if as == nil {
			return
		}
		byAS[as] = append(byAS[as], f)
	}

	for _, rec := range in.Records {
		if !rec.FTP {
			continue
		}
		as := in.AS(rec)

		if rec.AnonymousOK {
			cats := map[string]int{}
			for i := range rec.Files {
				if rec.Files[i].IsDir {
					continue
				}
				if cat := sensitiveCategory(rec.Files[i].Name); cat != "" {
					cats[cat]++
				}
			}
			if len(cats) > 0 {
				var parts []string
				for _, cat := range sortedKeys(cats) {
					parts = append(parts, fmt.Sprintf("%s (%d files)", cat, cats[cat]))
				}
				add(as, Finding{IP: rec.IP, Kind: KindSensitiveExposure,
					Detail: "anonymous FTP exposes " + strings.Join(parts, ", ")})
			}
			if len(rec.WriteEvidence) > 0 {
				add(as, Finding{IP: rec.IP, Kind: KindWorldWritable,
					Detail: fmt.Sprintf("anonymous uploads enabled; %d known abuse-campaign artifacts present", len(rec.WriteEvidence))})
			}
			if rec.PortCheck == dataset.PortNotValidated {
				add(as, Finding{IP: rec.IP, Kind: KindBounceVulnerable,
					Detail: "server relays data connections to third parties (FTP bounce)"})
			}
		}

		c := in.Classify(rec)
		if matches := cvedb.Match(c.Software, c.Version); len(matches) > 0 {
			top := matches[0]
			for _, m := range matches[1:] {
				if m.CVSS > top.CVSS {
					top = m
				}
			}
			add(as, Finding{IP: rec.IP, Kind: KindKnownCVE,
				Detail: fmt.Sprintf("%s %s banner matches %s (CVSS %.1f)",
					c.Software, c.Version, top.ID, top.CVSS)})
		}
	}

	notices := make([]Notice, 0, len(byAS))
	for as, findings := range byAS {
		sort.Slice(findings, func(i, j int) bool {
			if findings[i].IP != findings[j].IP {
				return findings[i].IP < findings[j].IP
			}
			return findings[i].Kind < findings[j].Kind
		})
		notices = append(notices, Notice{
			ASNumber: as.Number,
			ASName:   as.Name,
			Contact:  fmt.Sprintf("abuse@as%d.example.net", as.Number),
			Findings: findings,
		})
	}
	sort.Slice(notices, func(i, j int) bool {
		if len(notices[i].Findings) != len(notices[j].Findings) {
			return len(notices[i].Findings) > len(notices[j].Findings)
		}
		return notices[i].ASNumber < notices[j].ASNumber
	})
	return notices
}

// Render formats one notice as an operator-facing report.
func Render(n Notice) string {
	var b strings.Builder
	fmt.Fprintf(&b, "To: %s\n", n.Contact)
	fmt.Fprintf(&b, "Subject: FTP security findings in AS%d (%s)\n\n", n.ASNumber, n.ASName)
	fmt.Fprintf(&b, "During a research survey of the FTP ecosystem we observed %d\n", len(n.Findings))
	fmt.Fprintf(&b, "issue(s) on hosts announced by your network. File paths are withheld;\n")
	fmt.Fprintf(&b, "please contact us to coordinate remediation details.\n\n")
	for _, f := range n.Findings {
		fmt.Fprintf(&b, "  %-15s [%s] %s\n", f.IP, f.Kind, f.Detail)
	}
	return b.String()
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
