package fingerprint

import (
	"testing"

	"ftpcloud/internal/dataset"
	"ftpcloud/internal/personality"
)

func rec(banner string) *dataset.HostRecord {
	return &dataset.HostRecord{Banner: banner, FTP: true}
}

func TestClassifyDevices(t *testing.T) {
	tests := []struct {
		banner   string
		model    string
		class    personality.DeviceClass
		provider bool
	}{
		{"NASFTPD Turbo station 1.3.1e Server (ProFTPD) [192.168.1.5]", "QNAP Turbo NAS", personality.DeviceNAS, false},
		{"Welcome to ASUS RT-AC66U FTP service.", "ASUS wireless routers", personality.DeviceHomeRouter, false},
		{"Synology DiskStation FTP server ready.", "Synology NAS devices", personality.DeviceNAS, false},
		{"LinkStation FTP server ready.", "Buffalo NAS storage", personality.DeviceNAS, false},
		{"RICOH Aficio MP C3003 FTP server (RICOH-FTPD) ready.", "RICOH Printers", personality.DevicePrinter, false},
		{"FRITZ!Box7490 FTP server ready.", "FRITZ!Box DSL modem", personality.DeviceDSLModem, true},
		{"AXIS 221 Network Camera 4.45 (2015) ready.", "AXIS Physical Security Device", personality.DeviceCamera, true},
		{"Lutron HomeWorks Processor FTP server ready.", "Lutron HomeWorks Processor", personality.DeviceAutomation, false},
		{"Seagate Central Shared Storage FTP server ready.", "Seagate Storage devices", personality.DeviceStorage, false},
	}
	for _, tt := range tests {
		c := Classify(rec(tt.banner))
		if c.Category != personality.CategoryEmbedded {
			t.Errorf("%q: category = %v", tt.banner, c.Category)
		}
		if c.DeviceModel != tt.model || c.DeviceClass != tt.class || c.ProviderDeployed != tt.provider {
			t.Errorf("%q: got %+v", tt.banner, c)
		}
	}
}

func TestClassifySoftwareVersions(t *testing.T) {
	tests := []struct {
		banner   string
		software string
		version  string
	}{
		{"ProFTPD 1.3.5 Server (Debian) [1.2.3.4]", "ProFTPD", "1.3.5"},
		{"(vsFTPd 3.0.2)", "vsFTPd", "3.0.2"},
		{"Welcome to Pure-FTPd 1.0.29 ----------", "Pure-FTPd", "1.0.29"},
		{"-FileZilla Server version 0.9.41 beta", "FileZilla Server", "0.9.41"},
		{"Serv-U FTP Server v6.4 ready...", "Serv-U", "6.4"},
		{"files.example.net FTP server (Version wu-2.6.2-5) ready.", "wu-ftpd", "2.6.2"},
		{"Microsoft FTP Service", "Microsoft FTP Service", ""},
	}
	for _, tt := range tests {
		c := Classify(rec(tt.banner))
		if c.Software != tt.software || c.Version != tt.version {
			t.Errorf("%q: software %q/%q, want %q/%q",
				tt.banner, c.Software, c.Version, tt.software, tt.version)
		}
		if c.Category != personality.CategoryGeneric {
			t.Errorf("%q: category = %v, want generic", tt.banner, c.Category)
		}
	}
}

func TestClassifyHosted(t *testing.T) {
	c := Classify(rec("home.pl FTP server ready [h1.example.net]"))
	if c.Category != personality.CategoryHosted {
		t.Errorf("home.pl banner: %+v", c)
	}
	c = Classify(rec("ProFTPD 1.3.5 Server (Plesk FTP server) [1.2.3.4]"))
	if c.Category != personality.CategoryHosted || c.Software != "ProFTPD" {
		t.Errorf("plesk banner: %+v", c)
	}
	// Hosting identified through a shared wildcard certificate.
	r := rec("---------- Welcome to Pure-FTPd [privsep] [TLS] ----------")
	r.EnsureFTPS().Cert = &dataset.CertInfo{CommonName: "*.bluehost.com"}
	c = Classify(r)
	if c.Category != personality.CategoryHosted {
		t.Errorf("cert-based hosting: %+v", c)
	}
}

func TestClassifyUnknown(t *testing.T) {
	c := Classify(rec("FTP server ready."))
	if c.Known() {
		t.Errorf("bare banner classified: %+v", c)
	}
	if c.Software != "" || c.Version != "" {
		t.Errorf("bare banner yielded software: %+v", c)
	}
}

func TestClassifyRamnit(t *testing.T) {
	c := Classify(rec("220 RMNetwork FTP"))
	if !c.Ramnit {
		t.Error("Ramnit banner not flagged")
	}
}

func TestClassifyPureFTPdNoVersion(t *testing.T) {
	c := Classify(rec("---------- Welcome to Pure-FTPd [privsep] [TLS] ----------"))
	if c.Software != "Pure-FTPd" || c.Version != "" {
		t.Errorf("got %+v", c)
	}
	if c.Category != personality.CategoryGeneric {
		t.Errorf("category = %v", c.Category)
	}
}

// TestRegistryBannersClassifiable sanity-checks that the fingerprints cover
// the personalities the world generator deploys: every device personality's
// banner must classify as embedded with the right model name.
func TestRegistryBannersClassifiable(t *testing.T) {
	for _, p := range personality.All() {
		if p.DeviceModel == "" {
			continue
		}
		banner := p.ExpandBanner("192.0.2.1", "h.example.net")
		c := Classify(rec(banner))
		if c.Category != personality.CategoryEmbedded {
			t.Errorf("%s: banner %q classified as %v", p.Key, banner, c.Category)
			continue
		}
		if c.DeviceModel != p.DeviceModel {
			t.Errorf("%s: model %q, want %q", p.Key, c.DeviceModel, p.DeviceModel)
		}
		if c.ProviderDeployed != p.ProviderDeployed {
			t.Errorf("%s: provider %v, want %v", p.Key, c.ProviderDeployed, p.ProviderDeployed)
		}
	}
}

// TestRegistryVersionsExtracted ensures version extraction works for every
// versioned generic personality (CVE matching depends on it).
func TestRegistryVersionsExtracted(t *testing.T) {
	for _, key := range []string{
		personality.KeyProFTPD135, personality.KeyProFTPD132,
		personality.KeyVsftpd232, personality.KeyPureFTPd1029,
		personality.KeyServU64, personality.KeyFileZilla0941,
	} {
		p := personality.ByKey(key)
		banner := p.ExpandBanner("192.0.2.1", "h.example.net")
		c := Classify(rec(banner))
		if c.Software != p.Software || c.Version != p.Version {
			t.Errorf("%s: extracted %q/%q, want %q/%q",
				key, c.Software, c.Version, p.Software, p.Version)
		}
	}
}
