// Package fingerprint re-identifies hosts from wire observations the way
// the paper's classifiers do: banner patterns, FTPS certificate subjects,
// and implementation-specific responses map each host to a broad category
// (generic / hosted / embedded / unknown, Table II), a device model
// (Tables V and VII), and a software+version pair for CVE matching
// (Table XI).
//
// Classification is deliberately independent of the world generator: it
// sees only what came over the wire, so hosts with uninformative banners
// land in Unknown exactly as ~31% of the paper's population did.
package fingerprint

import (
	"regexp"
	"strings"

	"ftpcloud/internal/dataset"
	"ftpcloud/internal/personality"
)

// Classification is the fingerprinting outcome for one host.
type Classification struct {
	// Category is personality.Category, or 0 when unclassifiable.
	Category personality.Category
	// DeviceModel uses the paper's device naming when identified.
	DeviceModel string
	// DeviceClass refines embedded devices.
	DeviceClass personality.DeviceClass
	// ProviderDeployed marks ISP-installed gear.
	ProviderDeployed bool
	// Software and Version identify the implementation for CVE matching.
	Software string
	Version  string
	// Ramnit marks the botnet's characteristic banner.
	Ramnit bool
}

// Known reports whether the host was classified at all.
func (c Classification) Known() bool { return c.Category != 0 }

// devicePattern maps a banner substring to a device identification.
type devicePattern struct {
	substr   string
	model    string
	class    personality.DeviceClass
	provider bool
}

// devicePatterns covers every device family the paper names. Order matters:
// first match wins.
var devicePatterns = []devicePattern{
	{"NASFTPD Turbo station", "QNAP Turbo NAS", personality.DeviceNAS, false},
	{"ASUS RT-", "ASUS wireless routers", personality.DeviceHomeRouter, false},
	{"Synology DiskStation", "Synology NAS devices", personality.DeviceNAS, false},
	{"LinkStation", "Buffalo NAS storage", personality.DeviceNAS, false},
	{"NSA-3", "ZyXEL/MitraStar NAS", personality.DeviceNAS, false},
	{"RICOH", "RICOH Printers", personality.DevicePrinter, false},
	{"LaCie CloudBox", "LaCie storage", personality.DeviceNAS, false},
	{"Lexmark", "Lexmark Printers", personality.DevicePrinter, false},
	{"Xerox", "Xerox Printers", personality.DevicePrinter, false},
	{"Dell Laser", "Dell Printers", personality.DevicePrinter, false},
	{"Linksys", "Linksys Wifi Routers", personality.DeviceHomeRouter, false},
	{"Lutron HomeWorks", "Lutron HomeWorks Processor", personality.DeviceAutomation, false},
	{"Seagate Central", "Seagate Storage devices", personality.DeviceStorage, false},

	{"FRITZ!Box", "FRITZ!Box DSL modem", personality.DeviceDSLModem, true},
	{"P-660HN", "ZyXEL DSL Modem", personality.DeviceDSLModem, true},
	{"AXIS", "AXIS Physical Security Device", personality.DeviceCamera, true},
	{"ZTE WiMax", "ZTE WiMax Router", personality.DeviceWiMaxRouter, true},
	{"Speedport", "Speedport DSL Modem", personality.DeviceDSLModem, true},
	{"Dreambox", "Dreambox Set-top Box", personality.DeviceSetTopBox, true},
	{"ZyXEL USG", "ZyXEL Unified Security Gateway", personality.DeviceSecurityGateway, true},
	{"Alcatel", "Alcatel Router", personality.DeviceHomeRouter, true},
	{"DrayTek", "DrayTek Network Devices", personality.DeviceHomeRouter, true},

	{"HipServ", "Axentra HipServ", personality.DeviceNAS, false},
	{"LG Electronics NAS", "LGE NAS", personality.DeviceNAS, false},
	{"Symon Media", "Symon Media Player", personality.DeviceMediaPlayer, false},
	{"AsusTor", "AsusTor NAS", personality.DeviceNAS, false},
}

// hostingCertCNs are shared-hosting certificate subjects (Table XII).
var hostingCertCNs = []string{
	"*.opentransfer.com", "*.securesites.com", "*.home.pl", "*.bluehost.com",
	"*.bizmw.com", "*.turnkeywebspace.com", "*.sakura.ne.jp", "ispgateway.de",
}

// Version-extraction patterns per software family.
var (
	reProFTPD = regexp.MustCompile(`ProFTPD (\d[\w.]*)`)
	// QNAP's rebranded ProFTPD carries its version before "Server":
	// "NASFTPD Turbo station 1.3.1e Server (ProFTPD)".
	reNASFTPD   = regexp.MustCompile(`NASFTPD Turbo station (\d[\w.]*)`)
	rePureFTPd  = regexp.MustCompile(`Pure-FTPd (\d[\w.]*)`)
	reVsftpd    = regexp.MustCompile(`\(vsFTPd (\d[\w.]*)\)`)
	reFileZilla = regexp.MustCompile(`FileZilla Server version (\d[\w.]*)`)
	reServU     = regexp.MustCompile(`Serv-U FTP Server v(\d[\w.]*)`)
	reWuFTPd    = regexp.MustCompile(`Version wu-(\d[\w.-]*)`)
)

// Classify fingerprints one host record.
func Classify(rec *dataset.HostRecord) Classification {
	var c Classification
	banner := rec.Banner

	if strings.Contains(banner, "RMNetwork FTP") {
		c.Ramnit = true
		c.Category = personality.CategoryGeneric
		c.Software = "RMNetwork"
		return c
	}

	// Device banners identify embedded gear most specifically.
	for _, dp := range devicePatterns {
		if strings.Contains(banner, dp.substr) {
			c.Category = personality.CategoryEmbedded
			c.DeviceModel = dp.model
			c.DeviceClass = dp.class
			c.ProviderDeployed = dp.provider
			c.Software, c.Version = softwareVersion(banner)
			return c
		}
	}

	// Hosting signals: provider banners or shared wildcard certificates.
	hosted := strings.Contains(banner, "home.pl") || strings.Contains(banner, "Plesk")
	if cert := rec.FTPSCert(); !hosted && cert != nil {
		for _, cn := range hostingCertCNs {
			if cert.CommonName == cn {
				hosted = true
				break
			}
		}
	}
	c.Software, c.Version = softwareVersion(banner)
	if hosted {
		c.Category = personality.CategoryHosted
		return c
	}

	if c.Software != "" {
		c.Category = personality.CategoryGeneric
		return c
	}
	// Bare banners ("FTP server ready.") stay unknown, as ~31% of the
	// paper's hosts did.
	return c
}

// softwareVersion extracts the implementation family and version string
// from a banner.
func softwareVersion(banner string) (software, version string) {
	if m := reNASFTPD.FindStringSubmatch(banner); m != nil {
		return "ProFTPD", m[1]
	}
	if m := reProFTPD.FindStringSubmatch(banner); m != nil {
		return "ProFTPD", m[1]
	}
	if m := rePureFTPd.FindStringSubmatch(banner); m != nil {
		return "Pure-FTPd", m[1]
	}
	if strings.Contains(banner, "Pure-FTPd") {
		return "Pure-FTPd", ""
	}
	if m := reVsftpd.FindStringSubmatch(banner); m != nil {
		return "vsFTPd", m[1]
	}
	if m := reFileZilla.FindStringSubmatch(banner); m != nil {
		return "FileZilla Server", m[1]
	}
	if m := reServU.FindStringSubmatch(banner); m != nil {
		return "Serv-U", m[1]
	}
	if m := reWuFTPd.FindStringSubmatch(banner); m != nil {
		return "wu-ftpd", strings.TrimSuffix(m[1], "-5")
	}
	if strings.Contains(banner, "Microsoft FTP Service") {
		return "Microsoft FTP Service", ""
	}
	return "", ""
}
