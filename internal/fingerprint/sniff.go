package fingerprint

// Wire-protocol sniffing from first response bytes — the LZR-style
// identification primitive. Where Classify maps an FTP host's banner to the
// paper's categories, SniffProtocol answers a prior question: is this even
// FTP? The identification stage (internal/identify) reads at most a few
// hundred bytes off a fresh connection and routes on this answer, shedding
// everything non-FTP after one round-trip.

// Protocol is a wire protocol recognizable from its first response bytes.
type Protocol string

// Sniffable protocols. ProtoNone marks endpoints that never sent a byte
// (silent accepts, tarpits); ProtoGarbage marks bytes matching no known
// protocol opening.
const (
	ProtoFTP     Protocol = "ftp"
	ProtoHTTP    Protocol = "http"
	ProtoSSH     Protocol = "ssh"
	ProtoTLS     Protocol = "tls"
	ProtoTelnet  Protocol = "telnet"
	ProtoGarbage Protocol = "garbage"
	ProtoNone    Protocol = "none"
)

// SniffProtocol classifies first response bytes. It keys on protocol
// openings, not payload heuristics: an FTP reply starts with a three-digit
// code, SSH and HTTP identify themselves in ASCII, TLS answers with a
// record-layer byte, telnet with IAC negotiation. Anything else is garbage;
// no bytes at all is ProtoNone.
func SniffProtocol(b []byte) Protocol {
	if len(b) == 0 {
		return ProtoNone
	}
	switch {
	case isFTPReplyStart(b):
		return ProtoFTP
	case hasPrefix(b, "SSH-"):
		return ProtoSSH
	case hasPrefix(b, "HTTP/"):
		return ProtoHTTP
	case b[0] == 0xFF:
		return ProtoTelnet
	case (b[0] == 0x15 || b[0] == 0x16) && len(b) >= 2 && b[1] == 0x03:
		return ProtoTLS
	default:
		return ProtoGarbage
	}
}

// isFTPReplyStart reports whether the bytes open like an RFC 959 reply: a
// three-digit code followed by a space or the multi-line hyphen. The first
// digit must be a valid reply class (1-6) so timestamps and version strings
// do not masquerade as FTP.
func isFTPReplyStart(b []byte) bool {
	if len(b) < 4 {
		return false
	}
	if b[0] < '1' || b[0] > '6' {
		return false
	}
	if b[1] < '0' || b[1] > '9' || b[2] < '0' || b[2] > '9' {
		return false
	}
	return b[3] == ' ' || b[3] == '-'
}

// hasPrefix is bytes.HasPrefix without converting the needle.
func hasPrefix(b []byte, prefix string) bool {
	if len(b) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		if b[i] != prefix[i] {
			return false
		}
	}
	return true
}
