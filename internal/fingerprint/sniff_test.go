package fingerprint

import (
	"testing"

	"ftpcloud/internal/dataset"
)

// nonFTPFirstBytes is the corpus of first-response bytes the worldgen
// service layer puts on port 21 — every non-FTP shape the identification
// stage must shed.
var nonFTPFirstBytes = []struct {
	name  string
	bytes []byte
	want  Protocol
}{
	{"http response", []byte("HTTP/1.1 400 Bad Request\r\nServer: nginx/1.10.3\r\n\r\n"), ProtoHTTP},
	{"ssh banner", []byte("SSH-2.0-OpenSSH_7.4\r\n"), ProtoSSH},
	{"ssh dropbear", []byte("SSH-2.0-dropbear_2014.63\r\n"), ProtoSSH},
	{"tls alert", []byte{0x15, 0x03, 0x03, 0x00, 0x02, 0x02, 0x28}, ProtoTLS},
	{"tls server hello", []byte{0x16, 0x03, 0x01, 0x00, 0x31, 0x02}, ProtoTLS},
	{"telnet negotiation", []byte{0xFF, 0xFD, 0x18, 0xFF, 0xFD, 0x1F}, ProtoTelnet},
	{"binary garbage", []byte{0x8a, 0xc3, 0x9e, 0xb1, 0x80, 0xdd}, ProtoGarbage},
	{"ascii garbage", []byte("hello whoever is knocking"), ProtoGarbage},
	{"legacy junk banner", []byte{0x00, 0x00, 0x00, 0x00, 'g', 'a', 'r', 'b'}, ProtoGarbage},
	{"short digits", []byte("22"), ProtoGarbage},
	{"date masquerade", []byte("2024-01-01 00:00"), ProtoGarbage},
}

// TestSniffProtocolNonFTP: every non-FTP shape sniffs to its protocol,
// never to FTP.
func TestSniffProtocolNonFTP(t *testing.T) {
	for _, tc := range nonFTPFirstBytes {
		if got := SniffProtocol(tc.bytes); got != tc.want {
			t.Errorf("%s: sniffed %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestSniffProtocolFTP: real FTP openings sniff as FTP, including
// multi-line banners and dripped prefixes.
func TestSniffProtocolFTP(t *testing.T) {
	for _, b := range []string{
		"220 FTP server ready\r\n",
		"220-Welcome to the\r\n220-file archi",
		"421 Too many connections\r\n",
		"220 (vsFTPd 3.0.2)\r\n",
	} {
		if got := SniffProtocol([]byte(b)); got != ProtoFTP {
			t.Errorf("SniffProtocol(%q) = %q, want ftp", b, got)
		}
	}
	if got := SniffProtocol(nil); got != ProtoNone {
		t.Errorf("SniffProtocol(nil) = %q, want none", got)
	}
}

// TestNonFTPBytesNeverClassify: first-response bytes from unexpected
// services must never land in a paper category — Table II's population is
// FTP servers, so the shed decision feeds on Known() staying false. This
// guards the identification stage's contract with the ledger: a shed
// endpoint can appear in the unexpected-services table, never in the
// classification breakout.
func TestNonFTPBytesNeverClassify(t *testing.T) {
	for _, tc := range nonFTPFirstBytes {
		rec := &dataset.HostRecord{
			IP:       "192.0.2.1",
			PortOpen: true,
			FTP:      false,
			Banner:   string(tc.bytes),
		}
		c := Classify(rec)
		if c.Known() {
			t.Errorf("%s: classified into paper category %v", tc.name, c.Category)
		}
		if c.Software != "" || c.DeviceModel != "" {
			t.Errorf("%s: fingerprinted as %s %s", tc.name, c.Software, c.DeviceModel)
		}
	}
}
