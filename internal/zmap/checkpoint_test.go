package zmap

import (
	"context"
	"testing"
	"time"

	"ftpcloud/internal/simnet"
)

// collectRemaining drains a permutation into a slice.
func collectRemaining(pm *Permutation) []uint64 {
	var out []uint64
	for {
		v, ok := pm.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// TestPermutationSeekContinuesWalk: Seek(Cursor()) on a fresh permutation
// reproduces the remainder of the original walk exactly — the cyclic-group
// property that lets a census checkpoint be one integer per shard.
func TestPermutationSeekContinuesWalk(t *testing.T) {
	const n, seed = 5000, 42
	for _, stop := range []int{0, 1, 7, 100, 2499} {
		pm, err := NewPermutation(n, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < stop; i++ {
			if _, ok := pm.Next(); !ok {
				t.Fatalf("walk exhausted at %d", i)
			}
		}
		cursor := pm.Cursor()
		want := collectRemaining(pm)

		fresh, err := NewPermutation(n, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Seek(cursor); err != nil {
			t.Fatalf("Seek(%d): %v", cursor, err)
		}
		if got := fresh.Cursor(); got != cursor {
			t.Fatalf("after Seek(%d), Cursor()=%d", cursor, got)
		}
		got := collectRemaining(fresh)
		if len(got) != len(want) {
			t.Fatalf("stop=%d: resumed walk emits %d values, want %d", stop, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stop=%d: resumed walk diverges at %d: %d != %d", stop, i, got[i], want[i])
			}
		}
	}
}

// TestShardedPermutationSeek: the same resume property holds on every shard
// of a strided walk.
func TestShardedPermutationSeek(t *testing.T) {
	const n, seed, shards = 3000, 9, 4
	for shard := 0; shard < shards; shard++ {
		pm, err := NewShardedPermutation(n, seed, shard, shards)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 123; i++ {
			if _, ok := pm.Next(); !ok {
				break
			}
		}
		cursor := pm.Cursor()
		want := collectRemaining(pm)

		fresh, err := NewShardedPermutation(n, seed, shard, shards)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Seek(cursor); err != nil {
			t.Fatal(err)
		}
		got := collectRemaining(fresh)
		if len(got) != len(want) {
			t.Fatalf("shard %d: resumed walk emits %d values, want %d", shard, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shard %d: resumed walk diverges at %d", shard, i)
			}
		}
	}
}

// TestPermutationSeekBounds: Seek(0) is Reset, Seek(Span()) exhausts the
// walk, and seeking beyond the span is an error.
func TestPermutationSeekBounds(t *testing.T) {
	pm, err := NewPermutation(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := pm.Next()
	if err := pm.Seek(0); err != nil {
		t.Fatal(err)
	}
	if again, _ := pm.Next(); again != first {
		t.Errorf("Seek(0) then Next = %d, want first element %d", again, first)
	}
	if err := pm.Seek(pm.Span()); err != nil {
		t.Fatal(err)
	}
	if v, ok := pm.Next(); ok {
		t.Errorf("Seek(Span) should exhaust the walk, got %d", v)
	}
	if err := pm.Seek(pm.Span() + 1); err == nil {
		t.Error("Seek beyond span succeeded")
	}
}

// TestScannerHaltResumeCoversExactlyOnce: a scan halted mid-walk and a
// second scan resumed from its committed cursor together probe every address
// exactly once — no gap, no overlap. This is the kill-and-resume foundation.
func TestScannerHaltResumeCoversExactlyOnce(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	const size = 4000
	hosts := &sparseHosts{base: base, every: 7, size: size}
	nw := simnet.NewNetwork(hosts)

	// Rate-limit the first scan so Pause lands mid-walk deterministically:
	// at 200 offsets/s the full walk needs 20s, and the scan below runs
	// for ~100ms before pausing.
	s1, err := NewScanner(Config{
		Network: nw, Base: base, Size: size, Port: 21, Seed: 13,
		Workers: 4, RatePerSec: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var firstHalf []Result
	go func() {
		defer close(done)
		var err error
		firstHalf, err = s1.Collect(context.Background())
		if err != nil {
			t.Errorf("halted scan returned error: %v", err)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	s1.Pause()
	cursor := s1.Cursor()
	s1.Halt()
	<-done

	span := mustSpan(t, size, 13)
	if cursor == 0 || cursor >= span {
		t.Fatalf("halt cursor %d not mid-walk (span %d)", cursor, span)
	}
	if got := s1.Cursor(); got != cursor {
		t.Fatalf("cursor moved after halt: %d != %d", got, cursor)
	}
	// Everything emitted must be accounted: found + dead == emitted once
	// RunBatches returns.
	if acc := s1.Dead() + uint64(len(firstHalf)); acc != s1.Emitted() {
		t.Fatalf("accounting: dead %d + found %d != emitted %d",
			s1.Dead(), len(firstHalf), s1.Emitted())
	}

	s2, err := NewScanner(Config{
		Network: nw, Base: base, Size: size, Port: 21, Seed: 13,
		Workers: 4, StartCursor: cursor,
	})
	if err != nil {
		t.Fatal(err)
	}
	secondHalf, err := s2.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[simnet.IP]int)
	for _, r := range firstHalf {
		seen[r.IP]++
	}
	for _, r := range secondHalf {
		seen[r.IP]++
	}
	want := size/7 + 1
	if len(seen) != want {
		t.Errorf("halt+resume found %d distinct hosts, want %d", len(seen), want)
	}
	for ip, n := range seen {
		if n != 1 {
			t.Errorf("%v probed by both halves (%d times)", ip, n)
		}
	}
	// Probe volume must split exactly too: the two halves together probe
	// each address once.
	if total := s1.Stats.Probed.Load() + s2.Stats.Probed.Load(); total != size {
		t.Errorf("halves probed %d addresses total, want %d", total, size)
	}
}

// TestScannerPauseResumeCompletes: pausing and resuming mid-scan perturbs
// nothing — the scan still covers every address exactly once.
func TestScannerPauseResumeCompletes(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	const size = 3000
	hosts := &sparseHosts{base: base, every: 5, size: size}
	nw := simnet.NewNetwork(hosts)
	s, err := NewScanner(Config{
		Network: nw, Base: base, Size: size, Port: 21, Seed: 21,
		Workers: 4, RatePerSec: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var results []Result
	go func() {
		defer close(done)
		var err error
		results, err = s.Collect(context.Background())
		if err != nil {
			t.Errorf("scan error: %v", err)
		}
	}()
	for i := 0; i < 3; i++ {
		time.Sleep(10 * time.Millisecond)
		s.Pause()
		// While parked the emitted count is frozen.
		e1 := s.Emitted()
		time.Sleep(5 * time.Millisecond)
		if e2 := s.Emitted(); e2 != e1 {
			t.Errorf("emitted moved while paused: %d -> %d", e1, e2)
		}
		s.Resume()
	}
	<-done
	if want := (size + 4) / 5; len(results) != want {
		t.Errorf("pause/resume scan found %d hosts, want %d", len(results), want)
	}
	if got := s.Stats.Probed.Load(); got != size {
		t.Errorf("probed %d, want %d", got, size)
	}
	if got, want := s.Cursor(), mustSpan(t, size, 21); got != want {
		t.Errorf("finished cursor %d, want span %d", got, want)
	}
}

// TestScannerPauseAfterFinish: Pause on a completed scan must not block.
func TestScannerPauseAfterFinish(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 9, size: 500}
	nw := simnet.NewNetwork(hosts)
	s, err := NewScanner(Config{Network: nw, Base: base, Size: 500, Port: 21, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	finished := make(chan struct{})
	go func() {
		s.Pause()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("Pause blocked on a finished scan")
	}
}

// mustSpan returns the group-step span of the unsharded walk over size.
func mustSpan(t *testing.T, size, seed uint64) uint64 {
	t.Helper()
	pm, err := NewPermutation(size, seed)
	if err != nil {
		t.Fatal(err)
	}
	return pm.Span()
}
