package zmap

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ftpcloud/internal/simnet"
)

// ExclusionList holds address ranges a scan must never probe. The paper
// "preemptively excluded any hosts that our institution had previously been
// asked to exclude from scanning research"; this is that mechanism.
type ExclusionList struct {
	prefixes []simnet.Prefix
}

// NewExclusionList builds a list from prefixes.
func NewExclusionList(prefixes ...simnet.Prefix) *ExclusionList {
	return &ExclusionList{prefixes: prefixes}
}

// ParseExclusionList reads a conventional exclusion file: one CIDR or bare
// IP per line, '#' comments, blank lines ignored.
func ParseExclusionList(r io.Reader) (*ExclusionList, error) {
	list := &ExclusionList{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if !strings.ContainsRune(line, '/') {
			line += "/32"
		}
		p, err := simnet.ParsePrefix(line)
		if err != nil {
			return nil, fmt.Errorf("zmap: exclusion line %d: %w", lineNo, err)
		}
		list.prefixes = append(list.prefixes, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("zmap: reading exclusions: %w", err)
	}
	return list, nil
}

// Add appends a prefix.
func (l *ExclusionList) Add(p simnet.Prefix) { l.prefixes = append(l.prefixes, p) }

// Len returns the number of excluded prefixes.
func (l *ExclusionList) Len() int {
	if l == nil {
		return 0
	}
	return len(l.prefixes)
}

// Excluded reports whether ip falls in any excluded range.
func (l *ExclusionList) Excluded(ip simnet.IP) bool {
	if l == nil {
		return false
	}
	for _, p := range l.prefixes {
		if p.Contains(ip) {
			return true
		}
	}
	return false
}
