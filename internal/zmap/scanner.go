package zmap

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
)

// Result is one responsive address found by host discovery.
type Result struct {
	IP simnet.IP
}

// Config controls a scan.
type Config struct {
	// Network is the simulated Internet to probe.
	Network *simnet.Network
	// Base and Size delimit the target range [Base, Base+Size).
	Base simnet.IP
	Size uint64
	// Port is the TCP port to probe (21 for the census).
	Port uint16
	// Seed orders the permutation.
	Seed uint64
	// Workers is the probe parallelism; 0 means 64.
	Workers int
	// RatePerSec caps total probes per second across the whole scan; 0
	// disables limiting (the simulation has no intermediary networks to
	// protect, but the limiter is exercised in tests and real deployments
	// would use it). Sharded scanners divide the cap: N cooperating
	// shards each take ~RatePerSec/N so together they stay at the global
	// cap (see EffectiveRate).
	RatePerSec int
	// Retries sends up to this many additional probes to non-responsive
	// addresses, recovering deterministic "packet loss" in the
	// simulation as retransmission does for real scans.
	Retries int
	// Shard/TotalShards split the scan across cooperating scanners;
	// TotalShards 0 means unsharded. Each shard walks its own stride of
	// the shared permutation — O(n/N) work per shard, not a filtered
	// full walk.
	Shard       int
	TotalShards int
	// StartCursor resumes the permutation walk at this many group steps
	// from its start — the value a previous scan's Cursor() reported when
	// it was halted. Zero starts from the beginning.
	StartCursor uint64
	// Exclusions lists ranges that must never be probed (opt-out
	// requests, critical infrastructure); nil means none.
	Exclusions *ExclusionList
	// Metrics, when non-nil, registers the scanner's counters under
	// zmap.* so live progress and snapshots can read probe rates.
	Metrics *obs.Registry
	// MetricsPrefix namespaces this scanner's counters (e.g. "shard3."
	// yields shard3.zmap.probed) while still feeding the unprefixed
	// global counters, so per-shard and merged views coexist in one
	// registry. Empty means unprefixed.
	MetricsPrefix string
}

// Stats counts scanner activity. The fields are obs counters: with
// Config.Metrics set they are registry views (zmap.probed, zmap.responded,
// zmap.excluded); otherwise they are standalone.
type Stats struct {
	Probed    *obs.Counter
	Responded *obs.Counter
	Excluded  *obs.Counter
}

// Scanner performs ZMap-style host discovery.
type Scanner struct {
	cfg   Config
	Stats Stats

	// Checkpoint accounting. cursor is the permutation position (group
	// steps) the producer last committed — stable while the producer is
	// parked or after it stops, which is exactly when checkpoints read it.
	// emitted counts offsets handed to probe workers; dead counts offsets
	// that can never yield a record (excluded, or non-responsive after
	// retries). emitted − dead − accepted-downstream is the pipeline's
	// in-flight count: zero means the cursor is an exact watermark.
	cursor  atomic.Uint64
	emitted atomic.Uint64
	dead    atomic.Uint64

	// halted asks the producer to stop at the next offset boundary;
	// haltCh wakes a parked producer so Halt works mid-pause.
	halted   atomic.Bool
	haltOnce sync.Once
	haltCh   chan struct{}

	// Pause/Resume handshake: pauseFlag is the producer's cheap per-offset
	// check; the channels carry the parked/resume edges.
	pauseFlag atomic.Bool
	mu        sync.Mutex
	paused    bool
	parkedCh  chan struct{}
	resumeCh  chan struct{}
	// prodDone closes when the producer goroutine exits, so Pause never
	// blocks on a walk that already finished.
	prodDone chan struct{}
}

// NewScanner validates configuration.
func NewScanner(cfg Config) (*Scanner, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("zmap: nil network")
	}
	if cfg.Size == 0 {
		return nil, fmt.Errorf("zmap: empty target range")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.TotalShards > 0 && (cfg.Shard < 0 || cfg.Shard >= cfg.TotalShards) {
		return nil, fmt.Errorf("zmap: shard %d out of range [0,%d)", cfg.Shard, cfg.TotalShards)
	}
	return &Scanner{cfg: cfg, Stats: Stats{
		Probed:    cfg.Metrics.ChildCounter(cfg.MetricsPrefix, "zmap.probed"),
		Responded: cfg.Metrics.ChildCounter(cfg.MetricsPrefix, "zmap.responded"),
		Excluded:  cfg.Metrics.ChildCounter(cfg.MetricsPrefix, "zmap.excluded"),
	}, haltCh: make(chan struct{}), prodDone: make(chan struct{})}, nil
}

// Cursor returns the last committed permutation position (group steps
// consumed). It is an exact resume watermark only once the scanner is
// halted or parked and everything it emitted has drained downstream.
func (s *Scanner) Cursor() uint64 { return s.cursor.Load() }

// Emitted returns the number of offsets handed to probe workers.
func (s *Scanner) Emitted() uint64 { return s.emitted.Load() }

// Dead returns the number of emitted offsets that terminated inside the
// scanner: excluded addresses and addresses that never responded.
func (s *Scanner) Dead() uint64 { return s.dead.Load() }

// Halt asks the producer to stop emitting at the next offset boundary and
// commit its cursor. Unlike context cancellation, a halt does not abort
// in-flight work: probe workers and downstream stages keep draining
// everything already emitted, so the scan ends with the cursor an exact
// watermark — the foundation of checkpoint-on-truncation. Idempotent.
func (s *Scanner) Halt() {
	s.haltOnce.Do(func() {
		s.halted.Store(true)
		close(s.haltCh)
	})
}

// Pause asks the producer to park at the next offset boundary and blocks
// until it has (or until the walk finishes on its own). While parked the
// cursor is committed and no new offsets enter the pipeline, so a
// checkpoint coordinator can wait for in-flight work to drain and then
// snapshot a consistent (cursor, aggregate) pair. Resume continues the walk.
func (s *Scanner) Pause() {
	s.mu.Lock()
	if s.paused {
		parked := s.parkedCh
		s.mu.Unlock()
		select {
		case <-parked:
		case <-s.prodDone:
		}
		return
	}
	s.paused = true
	s.parkedCh = make(chan struct{})
	s.resumeCh = make(chan struct{})
	parked := s.parkedCh
	s.pauseFlag.Store(true)
	s.mu.Unlock()
	select {
	case <-parked:
	case <-s.prodDone:
	}
}

// Resume releases a paused producer. A no-op when not paused.
func (s *Scanner) Resume() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.paused {
		return
	}
	s.paused = false
	s.pauseFlag.Store(false)
	close(s.resumeCh)
}

// park blocks the producer until Resume, halt, or pipeline cancellation.
// It reports whether the walk should continue.
func (s *Scanner) park(ctx context.Context) bool {
	s.mu.Lock()
	if !s.paused {
		// Resume raced ahead of the park; nothing to wait for.
		s.mu.Unlock()
		return true
	}
	parked, resume := s.parkedCh, s.resumeCh
	s.mu.Unlock()
	close(parked)
	select {
	case <-resume:
		return true
	case <-s.haltCh:
		return false
	case <-ctx.Done():
		return false
	}
}

// EffectiveRate returns this scanner's share of the global RatePerSec cap:
// an unsharded scanner takes it all; shard i of N takes RatePerSec/N, with
// the remainder spread one-each over the lowest-numbered shards, so the
// per-shard shares always sum exactly to the configured cap. Zero means
// unlimited. A shard's share never falls below 1 probe/s (a zero share
// would stall it), so with more shards than the cap the aggregate can
// exceed the cap by up to N-1 probes/s.
func (s *Scanner) EffectiveRate() int {
	rate := s.cfg.RatePerSec
	if rate <= 0 || s.cfg.TotalShards <= 1 {
		return rate
	}
	share := rate / s.cfg.TotalShards
	if s.cfg.Shard < rate%s.cfg.TotalShards {
		share++
	}
	if share < 1 {
		share = 1
	}
	return share
}

// BatchSize is the number of permutation offsets handed to a worker per
// channel operation; handoff cost amortizes across the batch, so the
// per-probe fan-out overhead is a fraction of a channel send.
const BatchSize = 256

// RunBatches scans the target range, delivering discovered hosts to out in
// slices. The channel is closed when the scan finishes. RunBatches blocks
// until complete or ctx cancels. Each delivered slice is owned by the
// receiver.
func (s *Scanner) RunBatches(ctx context.Context, out chan<- []Result) error {
	defer close(out)
	perm, err := NewShardedPermutation(s.cfg.Size, s.cfg.Seed, s.cfg.Shard, s.cfg.TotalShards)
	if err != nil {
		close(s.prodDone)
		return err
	}
	if s.cfg.StartCursor > 0 {
		if err := perm.Seek(s.cfg.StartCursor); err != nil {
			close(s.prodDone)
			return err
		}
	}
	s.cursor.Store(perm.Cursor())

	// The permutation is drained by one goroutine into a work channel of
	// offset batches; probe workers fan out from there.
	work := make(chan []uint64, 64)
	var limiter *time.Ticker
	var perTick int
	if rate := s.EffectiveRate(); rate > 0 {
		// Batch the limiter into 10ms ticks to avoid a timer per probe;
		// the budget is still accounted per offset, so the cap holds
		// regardless of batch boundaries.
		perTick = rate / 100
		if perTick < 1 {
			perTick = 1
		}
		limiter = time.NewTicker(10 * time.Millisecond)
		defer limiter.Stop()
	}

	go func() {
		defer close(s.prodDone)
		defer close(work)
		batch := make([]uint64, 0, BatchSize)
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			select {
			case work <- batch:
				s.emitted.Add(uint64(len(batch)))
				batch = make([]uint64, 0, BatchSize)
				return true
			case <-ctx.Done():
				return false
			}
		}
		budget := perTick
		for {
			// Halt/pause are checked between offsets, where the walk
			// position and the emitted set agree exactly: every offset
			// the permutation has produced is in a flushed batch, so the
			// committed cursor is a precise watermark once the pipeline
			// drains. The atomic flags keep the common case to two loads.
			if s.halted.Load() || s.pauseFlag.Load() {
				if !flush() {
					return
				}
				s.cursor.Store(perm.Cursor())
				if s.halted.Load() {
					return
				}
				if !s.park(ctx) {
					return
				}
				continue
			}
			off, ok := perm.Next()
			if !ok {
				break
			}
			if limiter != nil {
				if budget == 0 {
					// Flush the partial batch before blocking so
					// workers stay busy while the producer waits
					// out the tick. The cancellation returns leave
					// the cursor at its last committed value: a
					// hard-canceled scan has no consistent position
					// to report, and no checkpoint reads it.
					if !flush() {
						return
					}
					select {
					case <-limiter.C:
						budget = perTick
					case <-ctx.Done():
						return
					}
				}
				budget--
			}
			batch = append(batch, off)
			if len(batch) == BatchSize {
				if !flush() {
					return
				}
			}
		}
		flush()
		s.cursor.Store(perm.Cursor())
	}()

	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var found []Result
			for batch := range work {
				found = found[:0]
				dead := uint64(0)
				for _, off := range batch {
					ip := simnet.IP(uint64(s.cfg.Base) + off)
					if s.cfg.Exclusions.Excluded(ip) {
						s.Stats.Excluded.Add(1)
						dead++
						continue
					}
					s.Stats.Probed.Add(1)
					open := s.cfg.Network.Probe(ip, s.cfg.Port, 0)
					for attempt := 1; !open && attempt <= s.cfg.Retries; attempt++ {
						open = s.cfg.Network.Probe(ip, s.cfg.Port, attempt)
					}
					if open {
						s.Stats.Responded.Add(1)
						found = append(found, Result{IP: ip})
					} else {
						dead++
					}
				}
				if dead > 0 {
					s.dead.Add(dead)
				}
				if len(found) == 0 {
					continue
				}
				res := make([]Result, len(found))
				copy(res, found)
				select {
				case out <- res:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.halted.Load() && ctx.Err() == nil {
		// A halted scan is a deliberate early stop, not a failure: the
		// caller holds the cursor and resumes later.
		return nil
	}
	return ctx.Err()
}

// Run scans the target range, sending results to out one at a time. The
// channel is closed when the scan finishes. Run blocks until complete or
// ctx cancels. It adapts RunBatches for callers that prefer a flat stream.
func (s *Scanner) Run(ctx context.Context, out chan<- Result) error {
	defer close(out)
	batches := make(chan []Result, 64)
	errc := make(chan error, 1)
	go func() { errc <- s.RunBatches(ctx, batches) }()
	for batch := range batches {
		for _, r := range batch {
			select {
			case out <- r:
			case <-ctx.Done():
				for range batches {
					// Drain so the scan goroutine can finish.
				}
				return <-errc
			}
		}
	}
	return <-errc
}

// Collect runs the scan and gathers all results into a slice.
func (s *Scanner) Collect(ctx context.Context) ([]Result, error) {
	out := make(chan []Result, 64)
	var results []Result
	done := make(chan struct{})
	go func() {
		defer close(done)
		for batch := range out {
			results = append(results, batch...)
		}
	}()
	err := s.RunBatches(ctx, out)
	<-done
	return results, err
}
