package zmap

import "testing"

// drain exhausts a permutation walk into a slice.
func drain(t *testing.T, pm *Permutation) []uint64 {
	t.Helper()
	var out []uint64
	for {
		v, ok := pm.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// TestShardedPermutationStride: interleaving the N shard walks
// position-by-position reconstructs the unsharded sequence exactly —
// position k of the full group walk belongs to shard k mod N. This is the
// property that lets shards skip straight along their stride instead of
// filtering the full walk.
func TestShardedPermutationStride(t *testing.T) {
	for _, n := range []uint64{1, 2, 97, 1000, 4096} {
		for _, shards := range []int{2, 3, 4, 8} {
			for _, seed := range []uint64{0, 7, 12345} {
				full, err := NewPermutation(n, seed)
				if err != nil {
					t.Fatal(err)
				}
				// Walk the raw group sequence (pre-filter) by tracking which
				// emitted values land where: reconstruct by merging shard
				// walks against the full filtered sequence instead.
				want := drain(t, full)

				walks := make([][]uint64, shards)
				total := 0
				for i := 0; i < shards; i++ {
					pm, err := NewShardedPermutation(n, seed, i, shards)
					if err != nil {
						t.Fatal(err)
					}
					walks[i] = drain(t, pm)
					total += len(walks[i])
				}
				if total != len(want) {
					t.Fatalf("n=%d shards=%d seed=%d: shard walks emit %d values, full walk %d",
						n, shards, seed, total, len(want))
				}
				// Each shard walk must be a subsequence of the full walk, and
				// together they partition it. Replay the full walk, checking
				// each value against the head of its owning shard's walk.
				heads := make([]int, shards)
				for _, v := range want {
					owner := -1
					for i := 0; i < shards; i++ {
						if heads[i] < len(walks[i]) && walks[i][heads[i]] == v {
							owner = i
							break
						}
					}
					if owner < 0 {
						t.Fatalf("n=%d shards=%d seed=%d: value %d from full walk heads no shard walk",
							n, shards, seed, v)
					}
					heads[owner]++
				}
			}
		}
	}
}

// TestShardedPermutationSpan: a shard's walk length is its fair share of the
// group cycle — O(n/N), not a filtered O(n) — and the shares sum to the
// whole cycle.
func TestShardedPermutationSpan(t *testing.T) {
	for _, n := range []uint64{97, 1000, 65536} {
		for _, shards := range []int{2, 4, 7, 63} {
			var sum uint64
			var cycle uint64
			for i := 0; i < shards; i++ {
				pm, err := NewShardedPermutation(n, 7, i, shards)
				if err != nil {
					t.Fatal(err)
				}
				cycle = pm.prime - 1
				fair := cycle/uint64(shards) + 1
				if pm.span > fair {
					t.Errorf("n=%d shards=%d: shard %d span %d exceeds fair share %d",
						n, shards, i, pm.span, fair)
				}
				sum += pm.span
			}
			if sum != cycle {
				t.Errorf("n=%d shards=%d: spans sum to %d, want full cycle %d", n, shards, sum, cycle)
			}
		}
	}
}

// TestShardedPermutationReset: Reset rewinds a shard to its own stride
// start, not the unsharded first element.
func TestShardedPermutationReset(t *testing.T) {
	pm, err := NewShardedPermutation(1000, 42, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := drain(t, pm)
	pm.Reset()
	second := drain(t, pm)
	if len(first) != len(second) {
		t.Fatalf("reset walk emits %d values, first walk %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("walks diverge at %d: %d vs %d", i, first[i], second[i])
		}
	}
}

// TestShardedPermutationErrors: invalid shard indices are rejected; shard
// counts ≤ 1 degrade to the plain permutation.
func TestShardedPermutationErrors(t *testing.T) {
	if _, err := NewShardedPermutation(100, 1, -1, 4); err == nil {
		t.Error("negative shard accepted")
	}
	if _, err := NewShardedPermutation(100, 1, 4, 4); err == nil {
		t.Error("shard == totalShards accepted")
	}
	pm, err := NewShardedPermutation(100, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewPermutation(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := drain(t, pm), drain(t, full)
	if len(a) != len(b) {
		t.Fatalf("unsharded fallback emits %d values, plain permutation %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unsharded fallback diverges at %d", i)
		}
	}
}
