// Package zmap implements the host-discovery stage of the census: a
// ZMap-style single-probe scanner over the simulated network. Like the real
// tool (Durumeric et al., USENIX Security 2013) it iterates the target space
// in a pseudorandom order derived from a cyclic group, so probes to adjacent
// addresses are spread over time and the scan can be sharded and resumed
// from nothing more than a position in the cycle.
package zmap

import (
	"fmt"
	"math/bits"
)

// Permutation enumerates [0, n) in pseudorandom order by iterating the
// multiplicative group of integers modulo a prime p > n, skipping values
// outside the range. Each element appears exactly once per cycle.
//
// A sharded permutation (NewShardedPermutation) walks a stride of the same
// cycle: shard i of N visits group positions i, i+N, i+2N, ... by stepping
// with gen^N from a start of first*gen^i. The union of all N shards is
// exactly the unsharded sequence and the shards are pairwise disjoint, so
// cooperating scanners each pay O(n/N) work with no filtering.
type Permutation struct {
	n     uint64
	prime uint64
	gen   uint64
	first uint64
	cur   uint64
	// span is how many group elements this walk emits (p-1 unsharded, a
	// near-equal share of that per shard); remaining counts down to zero.
	span      uint64
	remaining uint64
}

// smallPrimes seed the generator search.
var generatorCandidates = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// NewPermutation builds a permutation of [0, n) whose order is derived from
// seed. n must be positive.
func NewPermutation(n uint64, seed uint64) (*Permutation, error) {
	if n == 0 {
		return nil, fmt.Errorf("zmap: empty permutation")
	}
	if n >= 1<<62 {
		return nil, fmt.Errorf("zmap: range %d too large", n)
	}
	p := nextPrime(n + 1)
	gen := findGenerator(p, seed)
	// The starting point is any group element derived from the seed.
	first := seed%(p-1) + 1
	return &Permutation{
		n:         n,
		prime:     p,
		gen:       gen,
		first:     first,
		cur:       first,
		span:      p - 1,
		remaining: p - 1,
	}, nil
}

// NewShardedPermutation builds shard (0-based) of totalShards strided walks
// over the same cycle NewPermutation(n, seed) produces: identical union,
// pairwise disjoint, each ~1/totalShards of the group.
func NewShardedPermutation(n, seed uint64, shard, totalShards int) (*Permutation, error) {
	pm, err := NewPermutation(n, seed)
	if err != nil {
		return nil, err
	}
	if totalShards <= 1 {
		return pm, nil
	}
	if shard < 0 || shard >= totalShards {
		return nil, fmt.Errorf("zmap: shard %d out of range [0,%d)", shard, totalShards)
	}
	seq := pm.prime - 1 // full-cycle length
	// Shard i owns positions k ≡ i (mod N) of the full walk: start at
	// first*gen^i, step by gen^N, and emit ceil((seq-i)/N) elements.
	var span uint64
	if uint64(shard) < seq {
		span = (seq-1-uint64(shard))/uint64(totalShards) + 1
	}
	pm.first = mulmod(pm.first, powmod(pm.gen, uint64(shard), pm.prime), pm.prime)
	pm.gen = powmod(pm.gen, uint64(totalShards), pm.prime)
	pm.cur = pm.first
	pm.span = span
	pm.remaining = span
	return pm, nil
}

// Next returns the next element of the permutation; ok is false once this
// walk's share of the cycle has been emitted.
func (pm *Permutation) Next() (uint64, bool) {
	for pm.remaining > 0 {
		// Group elements are 1..p-1; map to 0..p-2 and filter to < n.
		val := pm.cur - 1
		pm.cur = mulmod(pm.cur, pm.gen, pm.prime)
		pm.remaining--
		if val < pm.n {
			return val, true
		}
	}
	return 0, false
}

// Reset rewinds the permutation to its first element.
func (pm *Permutation) Reset() {
	pm.cur = pm.first
	pm.remaining = pm.span
}

// Len returns the number of elements the permutation emits.
func (pm *Permutation) Len() uint64 { return pm.n }

// Span returns the number of group steps this walk consumes in total —
// the cursor value of a finished walk.
func (pm *Permutation) Span() uint64 { return pm.span }

// Cursor returns the number of group steps consumed so far. Because the
// walk is a cyclic-group iteration, this single index is the complete scan
// position: Seek(Cursor()) on a fresh permutation built from the same
// (n, seed, shard) reproduces the walk's continuation exactly. This is what
// makes a census checkpoint carry one integer per shard instead of a probe
// bitmap.
func (pm *Permutation) Cursor() uint64 { return pm.span - pm.remaining }

// Seek positions the walk exactly steps group steps from its start, as if
// Next had been called until Cursor() == steps. The jump is O(log steps):
// cur = first·gen^steps mod p.
func (pm *Permutation) Seek(steps uint64) error {
	if steps > pm.span {
		return fmt.Errorf("zmap: seek %d beyond walk span %d", steps, pm.span)
	}
	pm.cur = mulmod(pm.first, powmod(pm.gen, steps, pm.prime), pm.prime)
	pm.remaining = pm.span - steps
	return nil
}

// mulmod computes (a*b) mod m without overflow via 128-bit intermediates.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// bits.Div64 requires hi < m; hi%m guarantees it and preserves the
	// remainder.
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// nextPrime returns the smallest prime >= v.
func nextPrime(v uint64) uint64 {
	if v <= 2 {
		return 2
	}
	if v%2 == 0 {
		v++
	}
	for !isPrime(v) {
		v += 2
	}
	return v
}

// isPrime is deterministic Miller-Rabin for 64-bit inputs.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	// These witnesses are sufficient for all n < 2^64.
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powmod(a%n, d, n)
		if x == 1 || x == n-1 || x == 0 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

func powmod(base, exp, m uint64) uint64 {
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = mulmod(result, base, m)
		}
		base = mulmod(base, base, m)
		exp >>= 1
	}
	return result
}

// findGenerator locates a generator of the multiplicative group mod p by
// testing candidates against the factorization of p-1.
func findGenerator(p uint64, seed uint64) uint64 {
	factors := primeFactors(p - 1)
	offset := int(seed % uint64(len(generatorCandidates)))
	for i := 0; i < 64; i++ {
		var g uint64
		if i < len(generatorCandidates) {
			g = generatorCandidates[(offset+i)%len(generatorCandidates)]
		} else {
			g = uint64(i) + 2
		}
		if g >= p {
			continue
		}
		if isGenerator(g, p, factors) {
			return g
		}
	}
	// p has a generator by construction; the fallback scan always finds
	// one for the small primes used here.
	for g := uint64(2); g < p; g++ {
		if isGenerator(g, p, factors) {
			return g
		}
	}
	return 1
}

func isGenerator(g, p uint64, factors []uint64) bool {
	for _, f := range factors {
		if powmod(g, (p-1)/f, p) == 1 {
			return false
		}
	}
	return true
}

// primeFactors returns the distinct prime factors of n.
func primeFactors(n uint64) []uint64 {
	var factors []uint64
	for _, p := range []uint64{2, 3, 5, 7, 11, 13} {
		if n%p == 0 {
			factors = append(factors, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	for f := uint64(17); f*f <= n; f += 2 {
		if n%f == 0 {
			factors = append(factors, f)
			for n%f == 0 {
				n /= f
			}
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	return factors
}
