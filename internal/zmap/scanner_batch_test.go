package zmap

import (
	"context"
	"testing"
	"time"

	"ftpcloud/internal/simnet"
)

// TestScannerShardsPartitionProbes: under the batched fan-out, shards must
// partition the offset space exactly — every offset probed by exactly one
// shard, none skipped — including when the shard count does not divide the
// space evenly.
func TestScannerShardsPartitionProbes(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	const size = 4099 // prime: never a multiple of the shard count
	hosts := &sparseHosts{base: base, every: 7, size: size}
	nw := simnet.NewNetwork(hosts)

	for _, shards := range []int{2, 3, 5} {
		seen := make(map[simnet.IP]int)
		var probed uint64
		for shard := 0; shard < shards; shard++ {
			s, err := NewScanner(Config{
				Network: nw, Base: base, Size: size, Port: 21, Seed: 9,
				Shard: shard, TotalShards: shards, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			results, err := s.Collect(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			probed += s.Stats.Probed.Load()
			for _, r := range results {
				seen[r.IP]++
			}
		}
		if probed != size {
			t.Errorf("%d shards probed %d offsets, want %d", shards, probed, size)
		}
		want := size/7 + 1
		if len(seen) != want {
			t.Errorf("%d shards found %d hosts, want %d", shards, len(seen), want)
		}
		for ip, n := range seen {
			if n != 1 {
				t.Errorf("%d shards: %s found %d times", shards, ip, n)
			}
		}
	}
}

// TestScannerRateCapTolerance: the batched producer still accounts the rate
// budget per offset, so the effective probe rate stays at the cap within
// tolerance — neither instant (cap ignored) nor wildly over.
func TestScannerRateCapTolerance(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	const size = 1000
	const rate = 2500
	hosts := &sparseHosts{base: base, every: 4, size: size}
	nw := simnet.NewNetwork(hosts)
	s, err := NewScanner(Config{
		Network: nw, Base: base, Size: size, Port: 21, Seed: 13,
		RatePerSec: rate, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	ideal := time.Duration(float64(size) / rate * float64(time.Second))
	if elapsed < ideal*4/10 {
		t.Errorf("rate cap not respected: %d probes at %d/s took %v (ideal %v)",
			size, rate, elapsed, ideal)
	}
	if effective := float64(size) / elapsed.Seconds(); effective > 2*rate {
		t.Errorf("effective rate %.0f/s exceeds cap %d/s by more than 2x", effective, rate)
	}
}

// TestScannerRateCapWithShards: rate limiting composes with sharding —
// RatePerSec is the global cap, so each shard throttles to its
// EffectiveRate share and the strided walk covers only the offsets the
// shard owns.
func TestScannerRateCapWithShards(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	const size = 2000
	hosts := &sparseHosts{base: base, every: 4, size: size}
	nw := simnet.NewNetwork(hosts)
	s, err := NewScanner(Config{
		Network: nw, Base: base, Size: size, Port: 21, Seed: 13,
		RatePerSec: 5000, Workers: 4, Shard: 1, TotalShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EffectiveRate(); got != 2500 {
		t.Fatalf("shard 1 of 2 at 5000/s global: EffectiveRate = %d, want 2500", got)
	}
	start := time.Now()
	if _, err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The shard owns ~1000 offsets; at its 2500/s share that is ≥ ~400ms
	// of ticks.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("sharded rate cap not applied: took %v", elapsed)
	}
	if probed := s.Stats.Probed.Load(); probed != size/2 {
		t.Errorf("shard probed %d offsets, want %d", probed, size/2)
	}
}

// TestEffectiveRateSumsToGlobalCap: across all shards the per-shard shares
// sum exactly to the configured RatePerSec, for caps that divide evenly and
// ones that leave a remainder.
func TestEffectiveRateSumsToGlobalCap(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	nw := simnet.NewNetwork(&sparseHosts{base: base, every: 4, size: 64})
	for _, tc := range []struct{ rate, shards int }{
		{1000, 1}, {1000, 4}, {1001, 4}, {997, 8}, {5, 3},
	} {
		sum := 0
		for shard := 0; shard < tc.shards; shard++ {
			s, err := NewScanner(Config{
				Network: nw, Base: base, Size: 64, Port: 21,
				RatePerSec: tc.rate, Shard: shard, TotalShards: tc.shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			share := s.EffectiveRate()
			if share < 1 {
				t.Errorf("rate=%d shards=%d: shard %d got share %d < 1", tc.rate, tc.shards, shard, share)
			}
			sum += share
		}
		if sum != tc.rate {
			t.Errorf("rate=%d shards=%d: shares sum to %d, want exact global cap", tc.rate, tc.shards, sum)
		}
	}
	// More shards than the cap: every shard clamps to 1 probe/s, so the
	// aggregate overshoots by at most shards-1 — the documented tradeoff
	// for never stalling a shard.
	sum := 0
	for shard := 0; shard < 8; shard++ {
		s, err := NewScanner(Config{
			Network: nw, Base: base, Size: 64, Port: 21,
			RatePerSec: 3, Shard: shard, TotalShards: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum += s.EffectiveRate()
	}
	if sum != 8 {
		t.Errorf("rate=3 shards=8: clamped shares sum to %d, want 8 (1 each)", sum)
	}
}

// TestRunBatchesMatchesRun: the flat Run adapter delivers exactly the hosts
// RunBatches discovers.
func TestRunBatchesMatchesRun(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 11, size: 5000}
	nw := simnet.NewNetwork(hosts)

	mk := func() *Scanner {
		s, err := NewScanner(Config{Network: nw, Base: base, Size: 5000, Port: 21, Seed: 21, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	fromBatches := make(map[simnet.IP]bool)
	batchCh := make(chan []Result, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for batch := range batchCh {
			if len(batch) == 0 {
				t.Error("empty batch delivered")
			}
			if len(batch) > BatchSize {
				t.Errorf("batch of %d exceeds BatchSize %d", len(batch), BatchSize)
			}
			for _, r := range batch {
				fromBatches[r.IP] = true
			}
		}
	}()
	if err := mk().RunBatches(context.Background(), batchCh); err != nil {
		t.Fatal(err)
	}
	<-done

	fromRun := make(map[simnet.IP]bool)
	flat := make(chan Result, 16)
	done = make(chan struct{})
	go func() {
		defer close(done)
		for r := range flat {
			fromRun[r.IP] = true
		}
	}()
	if err := mk().Run(context.Background(), flat); err != nil {
		t.Fatal(err)
	}
	<-done

	if len(fromBatches) != len(fromRun) {
		t.Fatalf("RunBatches found %d hosts, Run found %d", len(fromBatches), len(fromRun))
	}
	for ip := range fromRun {
		if !fromBatches[ip] {
			t.Errorf("host %s missing from batched results", ip)
		}
	}
	want := 5000/11 + 1
	if len(fromRun) != want {
		t.Errorf("found %d hosts, want %d", len(fromRun), want)
	}
}

// TestRunBatchesCancellation: a cancelled batched scan terminates and
// reports the context error.
func TestRunBatchesCancellation(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 2, size: 1 << 20}
	nw := simnet.NewNetwork(hosts)
	s, err := NewScanner(Config{
		Network: nw, Base: base, Size: 1 << 20, Port: 21, Seed: 3,
		RatePerSec: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	out := make(chan []Result, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range out {
		}
	}()
	if err := s.RunBatches(ctx, out); err == nil {
		t.Error("cancelled batched scan returned nil error")
	}
	<-done
	if probed := s.Stats.Probed.Load(); probed >= 1<<20 {
		t.Error("scan completed despite cancellation")
	}
}

// TestEffectiveRateFloorMixedShards covers the regime where the shard count
// exceeds RatePerSec but a remainder still exists: remainder shards take
// their +1 while the rest clamp to the 1 probe/s floor. The invariants that
// must hold everywhere: no shard below 1, remainder spread over the
// lowest-numbered shards only, and the aggregate within [rate, rate+N-1].
func TestEffectiveRateFloorMixedShards(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	nw := simnet.NewNetwork(&sparseHosts{base: base, every: 4, size: 64})
	for _, tc := range []struct{ rate, shards int }{
		{5, 8},  // shards 0-4 get the remainder 1s, shards 5-7 clamp to the floor
		{1, 63}, // extreme: one remainder shard, 62 floored
		{7, 12},
		{62, 63},
	} {
		shares := make([]int, tc.shards)
		sum := 0
		for shard := 0; shard < tc.shards; shard++ {
			s, err := NewScanner(Config{
				Network: nw, Base: base, Size: 64, Port: 21,
				RatePerSec: tc.rate, Shard: shard, TotalShards: tc.shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			shares[shard] = s.EffectiveRate()
			if shares[shard] < 1 {
				t.Fatalf("rate=%d shards=%d: shard %d share %d < 1 floor",
					tc.rate, tc.shards, shard, shares[shard])
			}
			sum += shares[shard]
		}
		// rate < shards ⇒ base share is 0: remainder shards get exactly 1
		// from the +1, floor-clamped shards also sit at 1, so every share
		// is exactly the floor and the aggregate is exactly the shard
		// count — the documented worst-case overshoot.
		for shard, share := range shares {
			if share != 1 {
				t.Errorf("rate=%d shards=%d: shard %d share = %d, want 1",
					tc.rate, tc.shards, shard, share)
			}
		}
		if sum < tc.rate || sum > tc.rate+tc.shards-1 {
			t.Errorf("rate=%d shards=%d: aggregate %d outside [rate, rate+N-1]",
				tc.rate, tc.shards, sum)
		}
		if sum != tc.shards {
			t.Errorf("rate=%d shards=%d: aggregate = %d, want %d (1 per shard)",
				tc.rate, tc.shards, sum, tc.shards)
		}
	}
}
