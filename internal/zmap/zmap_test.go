package zmap

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"ftpcloud/internal/simnet"
)

func TestPermutationCoversExactlyOnce(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 100, 1000, 4096, 10007} {
		perm, err := NewPermutation(n, 42)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := make(map[uint64]bool, n)
		for {
			v, ok := perm.Next()
			if !ok {
				break
			}
			if v >= n {
				t.Fatalf("n=%d: out-of-range value %d", n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %d", n, v)
			}
			seen[v] = true
		}
		if uint64(len(seen)) != n {
			t.Fatalf("n=%d: covered %d values", n, len(seen))
		}
	}
}

// Property: every (n, seed) pair yields a bijection on [0, n).
func TestPermutationBijectionProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := uint64(nRaw)%500 + 1
		perm, err := NewPermutation(n, seed)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool, n)
		for {
			v, ok := perm.Next()
			if !ok {
				break
			}
			if v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return uint64(len(seen)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPermutationNotSequential(t *testing.T) {
	perm, err := NewPermutation(10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	sequentialPairs := 0
	prev, _ := perm.Next()
	for i := 0; i < 1000; i++ {
		v, ok := perm.Next()
		if !ok {
			break
		}
		if v == prev+1 {
			sequentialPairs++
		}
		prev = v
	}
	if sequentialPairs > 20 {
		t.Errorf("permutation looks sequential: %d adjacent pairs in 1000", sequentialPairs)
	}
}

func TestPermutationReset(t *testing.T) {
	perm, err := NewPermutation(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	var first []uint64
	for {
		v, ok := perm.Next()
		if !ok {
			break
		}
		first = append(first, v)
	}
	perm.Reset()
	for i := range first {
		v, ok := perm.Next()
		if !ok || v != first[i] {
			t.Fatalf("reset diverged at %d: %d vs %d", i, v, first[i])
		}
	}
}

func TestPermutationSeedVariation(t *testing.T) {
	a, _ := NewPermutation(1000, 1)
	b, _ := NewPermutation(1000, 99999)
	same := 0
	for i := 0; i < 100; i++ {
		va, _ := a.Next()
		vb, _ := b.Next()
		if va == vb {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different seeds produced near-identical orders (%d/100 equal)", same)
	}
}

func TestPermutationErrors(t *testing.T) {
	if _, err := NewPermutation(0, 1); err == nil {
		t.Error("zero-size permutation accepted")
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 101, 7919, 104729, 2147483647}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	composites := []uint64{0, 1, 4, 9, 100, 7917, 104730, 2147483649}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("isPrime(%d) = true", c)
		}
	}
}

// sparseHosts opens port 21 on every k-th address.
type sparseHosts struct {
	base  simnet.IP
	every uint64
	size  uint64
}

func (s *sparseHosts) Lookup(ip simnet.IP) simnet.Host {
	off := uint64(ip) - uint64(s.base)
	if off >= s.size || off%s.every != 0 {
		return nil
	}
	return s
}

func (s *sparseHosts) Listening(port uint16) bool    { return port == 21 }
func (s *sparseHosts) Handler(uint16) simnet.Handler { return nil }

func TestScannerFindsAllHosts(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 17, size: 10000}
	nw := simnet.NewNetwork(hosts)
	s, err := NewScanner(Config{
		Network: nw, Base: base, Size: 10000, Port: 21, Seed: 5, Workers: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := 10000/17 + 1
	if len(results) != want {
		t.Errorf("found %d hosts, want %d", len(results), want)
	}
	if got := s.Stats.Probed.Load(); got != 10000 {
		t.Errorf("probed %d, want 10000", got)
	}
}

func TestScannerRetriesRecoverLoss(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 5, size: 5000}
	nw := simnet.NewNetwork(hosts)
	nw.LossRate = 0.3
	nw.LossSeed = 77

	noRetry, err := NewScanner(Config{Network: nw, Base: base, Size: 5000, Port: 21, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := noRetry.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	withRetry, err := NewScanner(Config{Network: nw, Base: base, Size: 5000, Port: 21, Seed: 5, Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := withRetry.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	want := 1000
	if len(lossy) >= want {
		t.Errorf("lossless results under 30%% loss: %d", len(lossy))
	}
	if len(recovered) < want*95/100 {
		t.Errorf("retries recovered only %d of %d", len(recovered), want)
	}
}

func TestScannerSharding(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 3, size: 3000}
	nw := simnet.NewNetwork(hosts)

	seen := make(map[simnet.IP]int)
	total := 0
	for shard := 0; shard < 3; shard++ {
		s, err := NewScanner(Config{
			Network: nw, Base: base, Size: 3000, Port: 21, Seed: 11,
			Shard: shard, TotalShards: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		results, err := s.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		total += len(results)
		for _, r := range results {
			seen[r.IP]++
		}
	}
	if total != 1000 {
		t.Errorf("shards found %d total, want 1000", total)
	}
	for ip, n := range seen {
		if n != 1 {
			t.Errorf("%s found by %d shards", ip, n)
		}
	}
}

func TestScannerRateLimit(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 2, size: 600}
	nw := simnet.NewNetwork(hosts)
	s, err := NewScanner(Config{
		Network: nw, Base: base, Size: 600, Port: 21, Seed: 3,
		RatePerSec: 2000, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 600 probes at 2000/s should take roughly 300ms; allow slack but
	// catch a broken (instant) limiter.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("rate limit not applied: scan took %v", elapsed)
	}
}

func TestScannerCancellation(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 2, size: 1 << 20}
	nw := simnet.NewNetwork(hosts)
	s, err := NewScanner(Config{
		Network: nw, Base: base, Size: 1 << 20, Port: 21, Seed: 3,
		RatePerSec: 1000, // slow enough to guarantee cancellation hits mid-scan
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = s.Collect(ctx)
	if err == nil {
		t.Error("cancelled scan returned nil error")
	}
	if probed := s.Stats.Probed.Load(); probed >= 1<<20 {
		t.Error("scan completed despite cancellation")
	}
}

func TestScannerConfigValidation(t *testing.T) {
	nw := simnet.NewNetwork(nil)
	if _, err := NewScanner(Config{Base: 0, Size: 10}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewScanner(Config{Network: nw, Size: 0}); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewScanner(Config{Network: nw, Size: 10, Shard: 5, TotalShards: 3}); err == nil {
		t.Error("bad shard accepted")
	}
}
