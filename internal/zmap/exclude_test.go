package zmap

import (
	"context"
	"strings"
	"testing"

	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
)

func TestParseExclusionList(t *testing.T) {
	input := strings.Join([]string{
		"# institutional opt-outs",
		"10.1.0.0/16",
		"",
		"192.0.2.7          # single host",
		"172.16.0.0/12",
	}, "\n")
	list, err := ParseExclusionList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if list.Len() != 3 {
		t.Fatalf("Len = %d", list.Len())
	}
	for _, tt := range []struct {
		ip   string
		want bool
	}{
		{"10.1.2.3", true},
		{"10.2.0.1", false},
		{"192.0.2.7", true},
		{"192.0.2.8", false},
		{"172.20.5.5", true},
	} {
		if got := list.Excluded(simnet.MustParseIP(tt.ip)); got != tt.want {
			t.Errorf("Excluded(%s) = %v, want %v", tt.ip, got, tt.want)
		}
	}
}

func TestParseExclusionListErrors(t *testing.T) {
	for _, bad := range []string{"not-an-ip", "10.0.0.0/40", "300.1.1.1"} {
		if _, err := ParseExclusionList(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExclusionList(%q) succeeded", bad)
		}
	}
}

func TestNilExclusionList(t *testing.T) {
	var l *ExclusionList
	if l.Excluded(simnet.MustParseIP("1.2.3.4")) {
		t.Error("nil list excluded an address")
	}
	if l.Len() != 0 {
		t.Error("nil list has nonzero length")
	}
}

func TestScannerHonorsExclusions(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 10, size: 1000}
	nw := simnet.NewNetwork(hosts)

	// Exclude the first half of the range.
	excl := NewExclusionList(simnet.Prefix{Base: base, Bits: 23}) // 10.0.0.0-10.0.1.255
	s, err := NewScanner(Config{
		Network: nw, Base: base, Size: 1000, Port: 21, Seed: 5,
		Exclusions: excl,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if excl.Excluded(r.IP) {
			t.Errorf("excluded address %s was probed and reported", r.IP)
		}
	}
	if got := s.Stats.Excluded.Load(); got != 512 {
		t.Errorf("excluded count = %d, want 512", got)
	}
	if got := s.Stats.Probed.Load(); got != 1000-512 {
		t.Errorf("probed = %d, want %d", got, 1000-512)
	}
	// Hosts at offsets 520..1000 step 10: 48 hosts.
	want := 0
	for off := uint64(0); off < 1000; off += 10 {
		if off >= 512 {
			want++
		}
	}
	if len(results) != want {
		t.Errorf("found %d hosts, want %d", len(results), want)
	}
}

// TestExclusionsSurfaceInRegistry: exclusion skips are counted through the
// metrics registry, not just the scanner's private Stats — an operator
// watching /debug/vars or a snapshot sees exactly what the blocklist ate.
func TestExclusionsSurfaceInRegistry(t *testing.T) {
	base := simnet.MustParseIP("10.0.0.0")
	hosts := &sparseHosts{base: base, every: 10, size: 1000}
	nw := simnet.NewNetwork(hosts)

	reg := obs.NewRegistry()
	excl := NewExclusionList(simnet.Prefix{Base: base, Bits: 23}) // 512 addresses
	s, err := NewScanner(Config{
		Network: nw, Base: base, Size: 1000, Port: 21, Seed: 5,
		Exclusions: excl,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["zmap.excluded"]; got != 512 {
		t.Errorf("zmap.excluded = %d, want 512", got)
	}
	if snap.Counters["zmap.excluded"] != s.Stats.Excluded.Load() {
		t.Errorf("registry %d disagrees with Stats.Excluded %d",
			snap.Counters["zmap.excluded"], s.Stats.Excluded.Load())
	}
	if got := snap.Counters["zmap.probed"]; got != 1000-512 {
		t.Errorf("zmap.probed = %d, want %d", got, 1000-512)
	}
	// Excluded addresses never reach the wire, so probed + excluded
	// covers the whole sweep.
	if snap.Counters["zmap.probed"]+snap.Counters["zmap.excluded"] != 1000 {
		t.Error("probed + excluded does not cover the address space")
	}
}
