// Package ftp implements wire-level primitives for the File Transfer
// Protocol (RFC 959) and the extensions the measurement toolchain relies on:
// passive mode (RFC 1579), feature negotiation (RFC 2389), extended passive
// mode (RFC 2428), and the AUTH TLS upgrade (RFC 4217).
//
// The package is deliberately agnostic about transport: everything operates
// on net.Conn, so the same code drives real TCP sockets and simulated
// connections from the simnet package.
package ftp

import (
	"fmt"
	"strings"
)

// Command is a single client request on the control channel.
type Command struct {
	// Name is the command verb, upper-cased ("USER", "PASV", ...).
	Name string
	// Arg is the raw argument text following the verb, if any.
	Arg string
}

// String renders the command as it appears on the wire, without the CRLF.
func (c Command) String() string {
	if c.Arg == "" {
		return c.Name
	}
	return c.Name + " " + c.Arg
}

// ParseCommand parses one control-channel line (without trailing CRLF) into
// a Command. FTP verbs are case-insensitive; the verb is canonicalized to
// upper case while the argument is preserved byte-for-byte (paths are case
// sensitive on most servers).
func ParseCommand(line string) (Command, error) {
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return Command{}, fmt.Errorf("ftp: empty command line")
	}
	verb := line
	arg := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		verb, arg = line[:i], strings.TrimLeft(line[i+1:], " ")
	}
	for _, r := range verb {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') && r != '-' {
			return Command{}, fmt.Errorf("ftp: malformed command verb %q", verb)
		}
	}
	return Command{Name: strings.ToUpper(verb), Arg: arg}, nil
}

// Reply is a server response on the control channel. A reply carries a
// three-digit code and one or more lines of text. Multi-line replies use the
// RFC 959 "123-text ... 123 text" framing.
type Reply struct {
	Code  int
	Lines []string
}

// NewReply builds a single- or multi-line reply from code and text lines.
func NewReply(code int, lines ...string) Reply {
	if len(lines) == 0 {
		lines = []string{""}
	}
	return Reply{Code: code, Lines: lines}
}

// Replyf builds a one-line reply with fmt formatting.
func Replyf(code int, format string, args ...any) Reply {
	return Reply{Code: code, Lines: []string{fmt.Sprintf(format, args...)}}
}

// Text returns the reply's text joined with newlines.
func (r Reply) Text() string { return strings.Join(r.Lines, "\n") }

// Wire renders the reply once into its wire-format bytes. Servers preformat
// their hot constant replies ("200 NOOP command successful", "226 Transfer
// complete", banners) at construction time and send the bytes directly,
// instead of re-rendering the same string on every command.
func (r Reply) Wire() []byte { return []byte(r.String()) }

// String renders the reply in wire format, including CRLF terminators.
func (r Reply) String() string {
	var b strings.Builder
	lines := r.Lines
	if len(lines) == 0 {
		lines = []string{""}
	}
	if len(lines) == 1 {
		fmt.Fprintf(&b, "%03d %s\r\n", r.Code, lines[0])
		return b.String()
	}
	fmt.Fprintf(&b, "%03d-%s\r\n", r.Code, lines[0])
	for _, l := range lines[1 : len(lines)-1] {
		// Continuation lines may optionally carry the code; plain text
		// is the most widely compatible form.
		fmt.Fprintf(&b, " %s\r\n", l)
	}
	fmt.Fprintf(&b, "%03d %s\r\n", r.Code, lines[len(lines)-1])
	return b.String()
}

// Reply-code classification per RFC 959 §4.2.
const (
	ClassPositivePreliminary  = 1
	ClassPositiveCompletion   = 2
	ClassPositiveIntermediate = 3
	ClassTransientNegative    = 4
	ClassPermanentNegative    = 5
)

// Class returns the first digit of the reply code.
func (r Reply) Class() int { return r.Code / 100 }

// Positive reports whether the reply indicates success (2xx).
func (r Reply) Positive() bool { return r.Class() == ClassPositiveCompletion }

// Intermediate reports whether the reply asks for more input (3xx).
func (r Reply) Intermediate() bool { return r.Class() == ClassPositiveIntermediate }

// Preliminary reports whether the reply is a transfer-start mark (1xx).
func (r Reply) Preliminary() bool { return r.Class() == ClassPositivePreliminary }

// Negative reports whether the reply indicates failure (4xx or 5xx).
func (r Reply) Negative() bool { return r.Class() >= ClassTransientNegative }

// Common reply codes used throughout the toolchain.
const (
	CodeDataOpen          = 150 // file status okay; opening data connection
	CodeOK                = 200
	CodeHelp              = 214
	CodeSystem            = 215
	CodeReady             = 220 // service ready
	CodeClosing           = 221
	CodeTransferOK        = 226
	CodePassive           = 227
	CodeExtendedPassive   = 229
	CodeLoggedIn          = 230
	CodeAuthOK            = 234 // AUTH security exchange complete
	CodeFileOK            = 250
	CodePathCreated       = 257
	CodeNeedPassword      = 331
	CodeNeedAccount       = 332
	CodePendingInfo       = 350
	CodeServiceNotAvail   = 421
	CodeCantOpenData      = 425
	CodeTransferAborted   = 426
	CodeFileBusy          = 450
	CodeLocalError        = 451
	CodeCmdUnrecognized   = 500
	CodeSyntaxError       = 501
	CodeNotImplemented    = 502
	CodeBadSequence       = 503
	CodeNotLoggedIn       = 530
	CodeFileUnavailable   = 550
	CodePageTypeUnknown   = 551
	CodeExceededStorage   = 552
	CodeBadFileName       = 553
	FeatureListCode       = 211 // FEAT response code
	CodeCommandNotNeeded  = 202
	CodeTLSNotAvailable   = 534
	CodeBadProtSetting    = 536
	CodeEnteringEPSVError = 522
)
