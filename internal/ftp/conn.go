package ftp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// MaxLineLen caps control-channel lines. Real servers emit long banners and
// directory names, but an unbounded reader is a denial-of-service hazard for
// a crawler talking to adversarial hosts.
const MaxLineLen = 8192

// MaxReplyBytes caps a complete (possibly multi-line) reply. A garbage-
// spewing server can stay under MaxLineLen per line while streaming an
// endless multi-line reply; the total cap bounds memory and forces a typed
// failure instead of unbounded growth.
const MaxReplyBytes = 64 << 10

// ErrProtocol is the root of every typed protocol violation this package
// reports: oversized lines, oversized replies, and malformed reply framing
// all wrap it, so callers can classify hostile-server behaviour with a
// single errors.Is check.
var ErrProtocol = errors.New("ftp: protocol violation")

// ErrLineTooLong marks a control line exceeding MaxLineLen — the signature
// of a server spewing garbage without line framing.
var ErrLineTooLong = fmt.Errorf("%w: control line exceeds %d bytes", ErrProtocol, MaxLineLen)

// ErrReplyTooLong marks a reply exceeding MaxReplyBytes across all lines.
var ErrReplyTooLong = fmt.Errorf("%w: reply exceeds %d bytes", ErrProtocol, MaxReplyBytes)

// Conn wraps a control connection with buffered line-oriented I/O and the
// FTP reply state machine. It is used from both sides: servers read commands
// and send replies; clients send commands and read replies.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer

	// Timeout, when non-zero, bounds each single read or write.
	Timeout time.Duration
}

// NewConn wraps a network connection. The wrapped connection is used for
// both directions; callers retain responsibility for closing it.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 4096),
		w:  bufio.NewWriterSize(nc, 4096),
	}
}

// NetConn returns the underlying network connection.
func (c *Conn) NetConn() net.Conn { return c.nc }

// Upgrade replaces the underlying connection (after a TLS handshake) while
// preserving the wrapper. Any bytes buffered from the old connection are
// discarded; AUTH TLS semantics guarantee the server sends nothing between
// its 234 reply and the handshake.
func (c *Conn) Upgrade(nc net.Conn) {
	c.nc = nc
	c.r = bufio.NewReaderSize(nc, 4096)
	c.w = bufio.NewWriterSize(nc, 4096)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// Reset rebinds the wrapper to a new connection, reusing both buffers and
// clearing the timeout — the hook that lets a busy server pool Conn
// wrappers across sessions instead of allocating 8 KiB of bufio per accept.
func (c *Conn) Reset(nc net.Conn) {
	c.nc = nc
	c.r.Reset(nc)
	c.w.Reset(nc)
	c.Timeout = 0
}

func (c *Conn) armRead() {
	if c.Timeout > 0 {
		c.nc.SetReadDeadline(time.Now().Add(c.Timeout))
	}
}

func (c *Conn) armWrite() {
	if c.Timeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.Timeout))
	}
}

// readLine reads one CRLF- (or bare-LF-) terminated line, enforcing
// MaxLineLen. Real-world servers are sloppy about line endings.
func (c *Conn) readLine() (string, error) {
	c.armRead()
	var b strings.Builder
	for {
		chunk, err := c.r.ReadSlice('\n')
		b.Write(chunk)
		if b.Len() > MaxLineLen {
			return "", ErrLineTooLong
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			if b.Len() > 0 && err == io.EOF {
				return "", io.ErrUnexpectedEOF
			}
			return "", err
		}
		return strings.TrimRight(stripIAC(b.String()), "\r\n"), nil
	}
}

// stripIAC removes telnet IAC (0xFF) escape sequences. FTP's control
// channel is formally a telnet stream, and some clients (notably when
// aborting transfers) prefix commands with IAC IP / IAC DM; parsers that
// choke on them break against real traffic.
func stripIAC(line string) string {
	if strings.IndexByte(line, 0xFF) < 0 {
		return line
	}
	var b strings.Builder
	b.Grow(len(line))
	for i := 0; i < len(line); i++ {
		if line[i] != 0xFF {
			b.WriteByte(line[i])
			continue
		}
		// IAC IAC is an escaped literal 0xFF; other sequences are a
		// two-byte command (or three for WILL/WONT/DO/DONT).
		if i+1 < len(line) {
			switch line[i+1] {
			case 0xFF:
				b.WriteByte(0xFF)
				i++
			case 251, 252, 253, 254: // WILL WONT DO DONT <option>
				i += 2
			default:
				i++
			}
		}
	}
	return b.String()
}

// ReadCommand reads the next client command (server side).
func (c *Conn) ReadCommand() (Command, error) {
	line, err := c.readLine()
	if err != nil {
		return Command{}, err
	}
	return ParseCommand(line)
}

// SendCommand writes a command line (client side) and flushes.
func (c *Conn) SendCommand(name, arg string) error {
	c.armWrite()
	if arg != "" {
		fmt.Fprintf(c.w, "%s %s\r\n", name, arg)
	} else {
		fmt.Fprintf(c.w, "%s\r\n", name)
	}
	return c.w.Flush()
}

// SendReply writes a reply (server side) and flushes.
func (c *Conn) SendReply(r Reply) error {
	c.armWrite()
	if _, err := io.WriteString(c.w, r.String()); err != nil {
		return err
	}
	return c.w.Flush()
}

// SendRaw writes preformatted wire bytes (a Reply.Wire result) and flushes.
// It is the zero-allocation send path for replies rendered ahead of time.
func (c *Conn) SendRaw(b []byte) error {
	c.armWrite()
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	return c.w.Flush()
}

// SendReplyLine formats and sends a single-line reply directly into the
// connection's write buffer, avoiding the intermediate Reply allocation of
// SendReply. scratch, when non-nil, is used as the format buffer and the
// (possibly grown) buffer is returned for reuse.
func (c *Conn) SendReplyLine(scratch []byte, code int, format string, args ...any) ([]byte, error) {
	b := scratch[:0]
	b = append(b, byte('0'+code/100%10), byte('0'+code/10%10), byte('0'+code%10), ' ')
	if len(args) == 0 {
		b = append(b, format...)
	} else {
		b = fmt.Appendf(b, format, args...)
	}
	b = append(b, '\r', '\n')
	c.armWrite()
	if _, err := c.w.Write(b); err != nil {
		return b, err
	}
	return b, c.w.Flush()
}

// ReadReply reads a complete (possibly multi-line) server reply.
//
// The parser is deliberately lenient, mirroring the reverse-engineering
// posture the paper describes: it accepts continuation lines with or without
// a leading code, tolerates bare-LF endings, and treats any line starting
// with "ddd " (matching the opening code) as the terminator of a multi-line
// reply.
func (c *Conn) ReadReply() (Reply, error) {
	line, err := c.readLine()
	if err != nil {
		return Reply{}, err
	}
	code, rest, multi, err := parseReplyLine(line)
	if err != nil {
		return Reply{}, err
	}
	reply := Reply{Code: code, Lines: []string{rest}}
	if !multi {
		return reply, nil
	}
	terminator := fmt.Sprintf("%03d ", code)
	terminatorBare := fmt.Sprintf("%03d", code)
	total := len(line)
	for {
		line, err := c.readLine()
		if err != nil {
			return reply, fmt.Errorf("ftp: truncated multi-line reply: %w", err)
		}
		total += len(line)
		if total > MaxReplyBytes {
			return reply, ErrReplyTooLong
		}
		if strings.HasPrefix(line, terminator) {
			reply.Lines = append(reply.Lines, line[len(terminator):])
			return reply, nil
		}
		if line == terminatorBare {
			reply.Lines = append(reply.Lines, "")
			return reply, nil
		}
		// Continuation line; strip an optional "ddd-" prefix.
		if strings.HasPrefix(line, terminatorBare+"-") {
			line = line[len(terminatorBare)+1:]
		}
		reply.Lines = append(reply.Lines, strings.TrimPrefix(line, " "))
		if len(reply.Lines) > 4096 {
			return reply, fmt.Errorf("%w: multi-line reply exceeds 4096 lines", ErrProtocol)
		}
	}
}

// parseReplyLine splits a reply's first line into code, text, and whether it
// opens a multi-line reply.
func parseReplyLine(line string) (code int, text string, multi bool, err error) {
	if len(line) < 3 {
		return 0, "", false, fmt.Errorf("%w: short reply line %q", ErrProtocol, line)
	}
	code, err = strconv.Atoi(line[:3])
	if err != nil || code < 100 || code > 599 {
		return 0, "", false, fmt.Errorf("%w: bad reply code in %q", ErrProtocol, line)
	}
	switch {
	case len(line) == 3:
		return code, "", false, nil
	case line[3] == ' ':
		return code, line[4:], false, nil
	case line[3] == '-':
		return code, line[4:], true, nil
	default:
		return 0, "", false, fmt.Errorf("%w: malformed reply line %q", ErrProtocol, line)
	}
}

// Cmd sends a command and reads the reply — the client-side request/response
// helper used pervasively by the enumerator.
func (c *Conn) Cmd(name, arg string) (Reply, error) {
	if err := c.SendCommand(name, arg); err != nil {
		return Reply{}, err
	}
	return c.ReadReply()
}
