package ftp

import (
	"fmt"
	"net"
	"strconv"
	"strings"
)

// HostPort is an IPv4 address and TCP port as carried by PORT commands and
// PASV replies.
type HostPort struct {
	IP   [4]byte
	Port uint16
}

// Addr renders the host-port as a dotted "ip:port" dial string.
func (hp HostPort) Addr() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", hp.IP[0], hp.IP[1], hp.IP[2], hp.IP[3], hp.Port)
}

// IPString renders just the IPv4 address in dotted form.
func (hp HostPort) IPString() string {
	return fmt.Sprintf("%d.%d.%d.%d", hp.IP[0], hp.IP[1], hp.IP[2], hp.IP[3])
}

// Encode renders the RFC 959 six-tuple "h1,h2,h3,h4,p1,p2" used as the PORT
// argument and inside PASV replies.
func (hp HostPort) Encode() string {
	return fmt.Sprintf("%d,%d,%d,%d,%d,%d",
		hp.IP[0], hp.IP[1], hp.IP[2], hp.IP[3], hp.Port>>8, hp.Port&0xff)
}

// HostPortFromAddr builds a HostPort from an "ip:port" string. Only IPv4
// addresses are representable in the classic six-tuple encoding.
func HostPortFromAddr(addr string) (HostPort, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return HostPort{}, fmt.Errorf("ftp: bad address %q: %w", addr, err)
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return HostPort{}, fmt.Errorf("ftp: bad IP in address %q", addr)
	}
	v4 := ip.To4()
	if v4 == nil {
		return HostPort{}, fmt.Errorf("ftp: %q is not IPv4", host)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return HostPort{}, fmt.Errorf("ftp: bad port in address %q: %w", addr, err)
	}
	var hp HostPort
	copy(hp.IP[:], v4)
	hp.Port = uint16(port)
	return hp, nil
}

// ParseHostPort parses the six-tuple "h1,h2,h3,h4,p1,p2" form.
func ParseHostPort(s string) (HostPort, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 6 {
		return HostPort{}, fmt.Errorf("ftp: host-port %q: want 6 comma-separated fields, got %d", s, len(parts))
	}
	var vals [6]byte
	for i, p := range parts {
		n, err := strconv.ParseUint(strings.TrimSpace(p), 10, 8)
		if err != nil {
			return HostPort{}, fmt.Errorf("ftp: host-port %q: field %d: %w", s, i, err)
		}
		vals[i] = byte(n)
	}
	return HostPort{
		IP:   [4]byte{vals[0], vals[1], vals[2], vals[3]},
		Port: uint16(vals[4])<<8 | uint16(vals[5]),
	}, nil
}

// ParsePASVReply extracts the HostPort from the text of a 227 reply.
// Implementations wrap the six-tuple in wildly different text — some use
// parentheses, some do not, some add trailing punctuation — so the parser
// scans for the first plausible six-tuple rather than anchoring on syntax.
func ParsePASVReply(text string) (HostPort, error) {
	// Find a maximal run of digits and commas containing exactly five
	// commas; that is the six-tuple regardless of surrounding text.
	isTupleByte := func(b byte) bool { return b == ',' || (b >= '0' && b <= '9') }
	for i := 0; i < len(text); i++ {
		if !isTupleByte(text[i]) {
			continue
		}
		j := i
		for j < len(text) && isTupleByte(text[j]) {
			j++
		}
		run := strings.Trim(text[i:j], ",")
		if strings.Count(run, ",") == 5 {
			hp, err := ParseHostPort(run)
			if err == nil {
				return hp, nil
			}
		}
		i = j
	}
	return HostPort{}, fmt.Errorf("ftp: no host-port tuple in PASV reply %q", text)
}

// FormatPASVReply renders a conventional 227 reply text for a host-port.
func FormatPASVReply(hp HostPort) string {
	return fmt.Sprintf("Entering Passive Mode (%s).", hp.Encode())
}

// ParseEPSVReply extracts the listening port from the text of a 229 reply,
// e.g. "Entering Extended Passive Mode (|||6446|)".
func ParseEPSVReply(text string) (uint16, error) {
	open := strings.IndexByte(text, '(')
	closing := strings.LastIndexByte(text, ')')
	if open < 0 || closing < open {
		return 0, fmt.Errorf("ftp: no delimited block in EPSV reply %q", text)
	}
	inner := text[open+1 : closing]
	if len(inner) < 5 {
		return 0, fmt.Errorf("ftp: EPSV block too short in %q", text)
	}
	d := inner[0]
	fields := strings.Split(inner, string(d))
	// "|||6446|" splits into ["", "", "", "6446", ""].
	if len(fields) != 5 {
		return 0, fmt.Errorf("ftp: malformed EPSV block %q", inner)
	}
	port, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("ftp: bad EPSV port in %q: %w", inner, err)
	}
	return uint16(port), nil
}

// FormatEPSVReply renders a conventional 229 reply text.
func FormatEPSVReply(port uint16) string {
	return fmt.Sprintf("Entering Extended Passive Mode (|||%d|)", port)
}
