package ftp

import (
	"net"
	"testing"
)

func TestStripIAC(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"plain", "USER anonymous", "USER anonymous"},
		{"iac ip dm prefix", "\xff\xf4\xff\xf2ABOR", "ABOR"},
		{"escaped literal ff", "A\xff\xffB", "A\xffB"},
		{"will option", "\xff\xfb\x01QUIT", "QUIT"},
		{"dont option", "\xff\xfe\x03NOOP", "NOOP"},
		{"trailing bare iac", "STAT\xff", "STAT"},
		{"empty", "", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := stripIAC(tt.in); got != tt.want {
				t.Errorf("stripIAC(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

// TestIACPrefixedABOR drives the classic client behaviour end to end: ABOR
// sent with telnet interrupt markers must still parse as a command.
func TestIACPrefixedABOR(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	server := NewConn(a)
	go b.Write([]byte("\xff\xf4\xff\xf2ABOR\r\n"))
	cmd, err := server.ReadCommand()
	if err != nil {
		t.Fatalf("ReadCommand: %v", err)
	}
	if cmd.Name != "ABOR" {
		t.Errorf("got %+v", cmd)
	}
}
