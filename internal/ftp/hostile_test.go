package ftp

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// replyFrom feeds raw bytes to a fresh Conn and reads one reply. closeAfter
// closes the writer when the bytes are exhausted, simulating a server that
// dies mid-reply.
func replyFrom(t *testing.T, raw string, closeAfter bool) (Reply, error) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go func() {
		b.Write([]byte(raw))
		if closeAfter {
			b.Close()
		}
	}()
	c := NewConn(a)
	c.Timeout = 2 * time.Second
	return c.ReadReply()
}

// TestMalformedMultilineReplies drives the reply reader through the framing
// corruption real hostile servers produce. Every case must terminate with a
// classified error — never a hang, panic, or silent misparse.
func TestMalformedMultilineReplies(t *testing.T) {
	for _, tt := range []struct {
		name string
		raw  string
		// wantErr nil means the lenient parser should accept it; wantIs
		// non-nil requires errors.Is(err, wantIs).
		wantErr bool
		wantIs  error
	}{
		{
			name:    "truncated multiline then EOF",
			raw:     "220-welcome\r\npart of the banner\r\n",
			wantErr: true,
		},
		{
			name:    "mid-line cutoff",
			raw:     "220-welcome\r\n220 don",
			wantErr: true,
		},
		{
			name: "wrong code terminator accepted as continuation then EOF",
			// A 230 terminator never closes a 220 reply.
			raw:     "220-hello\r\n230 done\r\n",
			wantErr: true,
		},
		{
			name:    "garbage opening line",
			raw:     "!!! not ftp at all\r\n",
			wantErr: true,
			wantIs:  ErrProtocol,
		},
		{
			name:    "code out of range",
			raw:     "999 impossible\r\n",
			wantErr: true,
			wantIs:  ErrProtocol,
		},
		{
			name:    "bad separator after code",
			raw:     "220~oops\r\n",
			wantErr: true,
			wantIs:  ErrProtocol,
		},
		{
			name: "continuation lines with and without code prefixes",
			raw:  "220-a\r\n220-b\r\n  indented\r\n220 end\r\n",
		},
		{
			name: "bare code terminator",
			raw:  "211-Features:\r\nMDTM\r\n211\r\n",
		},
	} {
		t.Run(tt.name, func(t *testing.T) {
			r, err := replyFrom(t, tt.raw, true)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parsed hostile input as %+v", r)
				}
				if tt.wantIs != nil && !errors.Is(err, tt.wantIs) {
					t.Errorf("err = %v, want errors.Is(%v)", err, tt.wantIs)
				}
				return
			}
			if err != nil {
				t.Fatalf("lenient case rejected: %v", err)
			}
		})
	}
}

// TestOversizedLineTypedError: a garbage-spewing server that never sends a
// newline must yield ErrLineTooLong (and ErrProtocol) with bounded memory —
// the reader gives up after MaxLineLen, long before the stream ends.
func TestOversizedLineTypedError(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go func() {
		b.Write([]byte("220 "))
		junk := strings.Repeat("A", 4096)
		// Stream far more than the cap; the reader must abort early.
		for i := 0; i < 16; i++ {
			if _, err := b.Write([]byte(junk)); err != nil {
				return
			}
		}
	}()
	c := NewConn(a)
	c.Timeout = 2 * time.Second
	_, err := c.ReadReply()
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("ErrLineTooLong does not wrap ErrProtocol")
	}
}

// TestOversizedReplyTypedError: a server can stay under the per-line cap
// while streaming an endless multi-line reply; the total-bytes cap must stop
// it with a typed error.
func TestOversizedReplyTypedError(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go func() {
		if _, err := b.Write([]byte("220-endless\r\n")); err != nil {
			return
		}
		line := []byte(strings.Repeat("y", 1024) + "\r\n")
		for {
			if _, err := b.Write(line); err != nil {
				return
			}
		}
	}()
	c := NewConn(a)
	c.Timeout = 2 * time.Second
	_, err := c.ReadReply()
	if !errors.Is(err, ErrReplyTooLong) {
		t.Fatalf("err = %v, want ErrReplyTooLong", err)
	}
	a.Close() // unblock the writer goroutine
}

// TestCommandLineTooLong: the server side shares the line cap, so a hostile
// client cannot grow server memory either.
func TestCommandLineTooLong(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go func() {
		b.Write([]byte("STOR "))
		junk := strings.Repeat("x", 4096)
		for i := 0; i < 8; i++ {
			if _, err := b.Write([]byte(junk)); err != nil {
				return
			}
		}
	}()
	c := NewConn(a)
	c.Timeout = 2 * time.Second
	_, err := c.ReadCommand()
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
}

// TestMidReplyConnectionDrop: the banner arrives, then the connection dies
// before the next reply — the second read must surface an I/O error, not
// block or fabricate a reply.
func TestMidReplyConnectionDrop(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close() })
	go func() {
		b.Write([]byte("220 ready\r\n"))
		b.Close()
	}()
	c := NewConn(a)
	c.Timeout = 2 * time.Second
	if r, err := c.ReadReply(); err != nil || r.Code != 220 {
		t.Fatalf("banner: %+v, %v", r, err)
	}
	if _, err := c.ReadReply(); err == nil {
		t.Fatal("read after connection drop succeeded")
	}
}

// TestUnexpectedEOFMidLine: bytes then EOF without a newline is the
// premature-EOF fault class; it must map to io.ErrUnexpectedEOF.
func TestUnexpectedEOFMidLine(t *testing.T) {
	_, err := replyFrom(t, "220 rea", true)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}
