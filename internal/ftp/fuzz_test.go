package ftp

import (
	"net"
	"strings"
	"testing"
	"time"
)

// FuzzParsePASVReply: the PASV parser faces arbitrary server text and must
// never panic; successful parses must produce in-range values.
func FuzzParsePASVReply(f *testing.F) {
	for _, s := range []string{
		"Entering Passive Mode (10,1,2,3,4,5).",
		"=10,1,2,3,4,5",
		"227 227 227",
		"(,,,,,)",
		"999,999,999,999,999,999",
		"1,2,3,4,5,6,7,8,9",
		"",
		"(((((((",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		hp, err := ParsePASVReply(text)
		if err != nil {
			return
		}
		// A successful parse must round-trip through its own encoding.
		back, err := ParseHostPort(hp.Encode())
		if err != nil || back != hp {
			t.Errorf("round trip failed for %q → %+v", text, hp)
		}
	})
}

// FuzzParseCommand exercises the server-side command parser.
func FuzzParseCommand(f *testing.F) {
	for _, s := range []string{"USER anonymous", "QUIT", "PORT 1,2,3,4,5,6", "A B C", "\xff\xfe"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		cmd, err := ParseCommand(line)
		if err != nil {
			return
		}
		if cmd.Name == "" {
			t.Errorf("empty verb accepted from %q", line)
		}
		for _, r := range cmd.Name {
			if r >= 'a' && r <= 'z' {
				t.Errorf("verb not canonicalized: %q", cmd.Name)
			}
		}
	})
}

// FuzzReadReply streams arbitrary bytes into the reply reader: it must
// terminate (no unbounded buffering) and never panic.
func FuzzReadReply(f *testing.F) {
	for _, s := range []string{
		"220 hello\r\n",
		"220-multi\r\n220 done\r\n",
		"220-multi\r\nmiddle\r\n220 done\r\n",
		"999 impossible\r\n",
		"22",
		"",
		"220-never terminated\r\nmore\r\n",
		// Hostile-server shapes: oversized single line, endless multi-line
		// body, mid-line truncation, and continuation with a wrong code.
		"220 " + strings.Repeat("A", MaxLineLen+1) + "\r\n",
		"220-spew\r\n" + strings.Repeat("x\r\n", 256),
		"220-hello\r\n230 done\r\n",
		"220 cut-off-mid-li",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		a, b := net.Pipe()
		defer a.Close()
		go func() {
			b.Write([]byte(input))
			b.Close()
		}()
		c := NewConn(a)
		c.Timeout = 2 * time.Second
		r, err := c.ReadReply()
		if err != nil {
			return
		}
		if r.Code < 100 || r.Code > 599 {
			t.Errorf("out-of-range code %d from %q", r.Code, input)
		}
	})
}
