package ftp

import (
	"strings"
	"testing"
)

func TestParseCommand(t *testing.T) {
	tests := []struct {
		name    string
		line    string
		want    Command
		wantErr bool
	}{
		{name: "plain", line: "QUIT", want: Command{Name: "QUIT"}},
		{name: "lower case verb", line: "user anonymous", want: Command{Name: "USER", Arg: "anonymous"}},
		{name: "arg preserved", line: "CWD /Pub/Photos", want: Command{Name: "CWD", Arg: "/Pub/Photos"}},
		{name: "trailing crlf", line: "NOOP\r\n", want: Command{Name: "NOOP"}},
		{name: "multiple spaces before arg", line: "PASS   secret", want: Command{Name: "PASS", Arg: "secret"}},
		{name: "arg with spaces", line: "RETR my file.txt", want: Command{Name: "RETR", Arg: "my file.txt"}},
		{name: "hyphenated verb", line: "X-FOO bar", want: Command{Name: "X-FOO", Arg: "bar"}},
		{name: "empty", line: "", wantErr: true},
		{name: "garbage verb", line: "\x01\x02 x", wantErr: true},
		{name: "numeric verb", line: "123 x", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseCommand(tt.line)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseCommand(%q) error = %v, wantErr %v", tt.line, err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("ParseCommand(%q) = %+v, want %+v", tt.line, got, tt.want)
			}
		})
	}
}

func TestCommandString(t *testing.T) {
	if got := (Command{Name: "USER", Arg: "anonymous"}).String(); got != "USER anonymous" {
		t.Errorf("String() = %q", got)
	}
	if got := (Command{Name: "QUIT"}).String(); got != "QUIT" {
		t.Errorf("String() = %q", got)
	}
}

func TestReplyString(t *testing.T) {
	tests := []struct {
		name  string
		reply Reply
		want  string
	}{
		{
			name:  "single line",
			reply: NewReply(220, "Service ready"),
			want:  "220 Service ready\r\n",
		},
		{
			name:  "empty text",
			reply: Reply{Code: 200},
			want:  "200 \r\n",
		},
		{
			name:  "multi line",
			reply: NewReply(214, "The following commands are recognized.", "USER PASS QUIT", "Help OK"),
			want:  "214-The following commands are recognized.\r\n USER PASS QUIT\r\n214 Help OK\r\n",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.reply.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestReplyClassification(t *testing.T) {
	if r := NewReply(150, "opening"); !r.Preliminary() || r.Positive() {
		t.Error("150 should be preliminary only")
	}
	if r := NewReply(226, "done"); !r.Positive() || r.Negative() {
		t.Error("226 should be positive")
	}
	if r := NewReply(331, "need pass"); !r.Intermediate() {
		t.Error("331 should be intermediate")
	}
	if r := NewReply(421, "bye"); !r.Negative() {
		t.Error("421 should be negative")
	}
	if r := NewReply(550, "no"); !r.Negative() {
		t.Error("550 should be negative")
	}
}

func TestHostPortEncodeDecode(t *testing.T) {
	hp := HostPort{IP: [4]byte{192, 168, 1, 2}, Port: 51234}
	enc := hp.Encode()
	if enc != "192,168,1,2,200,34" {
		t.Fatalf("Encode() = %q", enc)
	}
	back, err := ParseHostPort(enc)
	if err != nil {
		t.Fatalf("ParseHostPort: %v", err)
	}
	if back != hp {
		t.Errorf("round trip = %+v, want %+v", back, hp)
	}
}

func TestParseHostPortErrors(t *testing.T) {
	for _, bad := range []string{
		"", "1,2,3,4,5", "1,2,3,4,5,6,7", "256,0,0,1,0,1", "a,b,c,d,e,f", "1,2,3,4,5,-1",
	} {
		if _, err := ParseHostPort(bad); err == nil {
			t.Errorf("ParseHostPort(%q) succeeded, want error", bad)
		}
	}
}

func TestHostPortFromAddr(t *testing.T) {
	hp, err := HostPortFromAddr("10.0.0.5:2121")
	if err != nil {
		t.Fatalf("HostPortFromAddr: %v", err)
	}
	want := HostPort{IP: [4]byte{10, 0, 0, 5}, Port: 2121}
	if hp != want {
		t.Errorf("got %+v, want %+v", hp, want)
	}
	if hp.Addr() != "10.0.0.5:2121" {
		t.Errorf("Addr() = %q", hp.Addr())
	}
	if hp.IPString() != "10.0.0.5" {
		t.Errorf("IPString() = %q", hp.IPString())
	}
	for _, bad := range []string{"nope", "1.2.3.4", "::1:21", "[::1]:21", "1.2.3.4:99999"} {
		if _, err := HostPortFromAddr(bad); err == nil {
			t.Errorf("HostPortFromAddr(%q) succeeded, want error", bad)
		}
	}
}

func TestParsePASVReplyVariants(t *testing.T) {
	want := HostPort{IP: [4]byte{10, 1, 2, 3}, Port: 256*4 + 5}
	variants := []string{
		"Entering Passive Mode (10,1,2,3,4,5).",
		"Entering Passive Mode (10,1,2,3,4,5)",
		"Entering Passive Mode 10,1,2,3,4,5",
		"=10,1,2,3,4,5",
		"Passive mode OK (10,1,2,3,4,5);",
		"Entering Passive Mode. 10,1,2,3,4,5",
	}
	for _, v := range variants {
		hp, err := ParsePASVReply(v)
		if err != nil {
			t.Errorf("ParsePASVReply(%q): %v", v, err)
			continue
		}
		if hp != want {
			t.Errorf("ParsePASVReply(%q) = %+v, want %+v", v, hp, want)
		}
	}
	for _, bad := range []string{"", "Entering Passive Mode", "(1,2,3)", "999,999,999,999,999,999"} {
		if _, err := ParsePASVReply(bad); err == nil {
			t.Errorf("ParsePASVReply(%q) succeeded, want error", bad)
		}
	}
}

func TestEPSVReplyRoundTrip(t *testing.T) {
	text := FormatEPSVReply(6446)
	port, err := ParseEPSVReply(text)
	if err != nil {
		t.Fatalf("ParseEPSVReply(%q): %v", text, err)
	}
	if port != 6446 {
		t.Errorf("port = %d, want 6446", port)
	}
	for _, bad := range []string{"", "(|||x|)", "(||6446|)", "no block here", "()"} {
		if _, err := ParseEPSVReply(bad); err == nil {
			t.Errorf("ParseEPSVReply(%q) succeeded, want error", bad)
		}
	}
}

func TestParseReplyLine(t *testing.T) {
	code, text, multi, err := parseReplyLine("220-Welcome")
	if err != nil || code != 220 || text != "Welcome" || !multi {
		t.Errorf("got (%d,%q,%v,%v)", code, text, multi, err)
	}
	code, text, multi, err = parseReplyLine("230")
	if err != nil || code != 230 || text != "" || multi {
		t.Errorf("bare code: got (%d,%q,%v,%v)", code, text, multi, err)
	}
	for _, bad := range []string{"", "99 x", "abc hello", "2x0 hi", "600 x", "220x"} {
		if _, _, _, err := parseReplyLine(bad); err == nil {
			t.Errorf("parseReplyLine(%q) succeeded, want error", bad)
		}
	}
}

func TestFormatPASVReplyParsesBack(t *testing.T) {
	hp := HostPort{IP: [4]byte{203, 0, 113, 9}, Port: 65535}
	got, err := ParsePASVReply(FormatPASVReply(hp))
	if err != nil {
		t.Fatalf("ParsePASVReply: %v", err)
	}
	if got != hp {
		t.Errorf("round trip = %+v, want %+v", got, hp)
	}
}

func TestReplyTextJoins(t *testing.T) {
	r := NewReply(211, "Features:", "UTF8", "End")
	if !strings.Contains(r.Text(), "UTF8") {
		t.Errorf("Text() = %q", r.Text())
	}
}
