package ftp

import (
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// pipePair builds a connected Conn pair over net.Pipe.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewConn(a), NewConn(b)
}

func TestConnCommandRoundTrip(t *testing.T) {
	client, server := pipePair(t)
	done := make(chan error, 1)
	go func() { done <- client.SendCommand("USER", "anonymous") }()
	cmd, err := server.ReadCommand()
	if err != nil {
		t.Fatalf("ReadCommand: %v", err)
	}
	if cmd.Name != "USER" || cmd.Arg != "anonymous" {
		t.Errorf("got %+v", cmd)
	}
	if err := <-done; err != nil {
		t.Fatalf("SendCommand: %v", err)
	}
}

func TestConnReplyRoundTrip(t *testing.T) {
	client, server := pipePair(t)
	go server.SendReply(NewReply(220, "ProFTPD 1.3.5 Server ready."))
	r, err := client.ReadReply()
	if err != nil {
		t.Fatalf("ReadReply: %v", err)
	}
	if r.Code != 220 || r.Lines[0] != "ProFTPD 1.3.5 Server ready." {
		t.Errorf("got %+v", r)
	}
}

func TestConnMultiLineReply(t *testing.T) {
	client, server := pipePair(t)
	go server.SendReply(NewReply(211, "Features:", "MDTM", "SIZE", "End"))
	r, err := client.ReadReply()
	if err != nil {
		t.Fatalf("ReadReply: %v", err)
	}
	if r.Code != 211 || len(r.Lines) != 4 || r.Lines[1] != "MDTM" || r.Lines[3] != "End" {
		t.Errorf("got %+v", r)
	}
}

// TestConnMultiLineWithCodePrefixedContinuations covers servers that prefix
// every continuation line with "ddd-" (wu-ftpd style).
func TestConnMultiLineWithCodePrefixedContinuations(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	client := NewConn(a)
	go func() {
		b.Write([]byte("230-Welcome!\r\n230-Enjoy your stay.\r\n230 Login successful.\r\n"))
	}()
	r, err := client.ReadReply()
	if err != nil {
		t.Fatalf("ReadReply: %v", err)
	}
	if r.Code != 230 || len(r.Lines) != 3 || r.Lines[1] != "Enjoy your stay." {
		t.Errorf("got %+v", r)
	}
}

// TestConnBareLFTolerance covers sloppy servers that terminate lines with a
// bare LF.
func TestConnBareLFTolerance(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	client := NewConn(a)
	go b.Write([]byte("220 hi there\n"))
	r, err := client.ReadReply()
	if err != nil {
		t.Fatalf("ReadReply: %v", err)
	}
	if r.Code != 220 || r.Lines[0] != "hi there" {
		t.Errorf("got %+v", r)
	}
}

func TestConnLineTooLong(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	client := NewConn(a)
	go func() {
		b.Write([]byte("220 "))
		junk := strings.Repeat("x", MaxLineLen+10)
		b.Write([]byte(junk))
		b.Write([]byte("\r\n"))
	}()
	if _, err := client.ReadReply(); err == nil {
		t.Fatal("want error for oversized line")
	}
}

func TestConnReadTimeout(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	client := NewConn(a)
	client.Timeout = 20 * time.Millisecond
	start := time.Now()
	_, err := client.ReadReply()
	if err == nil {
		t.Fatal("want timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestConnCmd(t *testing.T) {
	client, server := pipePair(t)
	go func() {
		cmd, err := server.ReadCommand()
		if err != nil || cmd.Name != "SYST" {
			server.SendReply(NewReply(500, "bad"))
			return
		}
		server.SendReply(NewReply(215, "UNIX Type: L8"))
	}()
	r, err := client.Cmd("SYST", "")
	if err != nil {
		t.Fatalf("Cmd: %v", err)
	}
	if r.Code != 215 {
		t.Errorf("code = %d", r.Code)
	}
}

// Property: every encodable HostPort survives Encode → ParseHostPort and
// FormatPASVReply → ParsePASVReply unchanged.
func TestHostPortRoundTripProperty(t *testing.T) {
	f := func(a, b, c, d byte, port uint16) bool {
		hp := HostPort{IP: [4]byte{a, b, c, d}, Port: port}
		back, err := ParseHostPort(hp.Encode())
		if err != nil || back != hp {
			return false
		}
		back2, err := ParsePASVReply(FormatPASVReply(hp))
		return err == nil && back2 == hp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: EPSV replies round-trip for every port.
func TestEPSVRoundTripProperty(t *testing.T) {
	f := func(port uint16) bool {
		got, err := ParseEPSVReply(FormatEPSVReply(port))
		return err == nil && got == port
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: parsing a rendered single-line reply returns the original code
// and text for all valid codes and printable text.
func TestReplyRenderParseProperty(t *testing.T) {
	f := func(codeSeed uint16, raw string) bool {
		code := 100 + int(codeSeed)%500
		text := strings.Map(func(r rune) rune {
			if r == '\r' || r == '\n' {
				return ' '
			}
			return r
		}, raw)
		rendered := NewReply(code, text).String()
		gotCode, gotText, multi, err := parseReplyLine(strings.TrimRight(rendered, "\r\n"))
		return err == nil && gotCode == code && gotText == text && !multi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
