package honeypot

import (
	"context"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftpcloud/internal/campaigns"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/obs"
)

// This file is the streaming half of the honeypot apparatus. The seed-era
// path buffered every event in a Log slice and summarized after the fact —
// fine for 8 honeypots and a few thousand sessions, fatal at Honeybuckets
// scale (hundreds of honeypots, millions of sessions). The Accumulator
// mirrors analysis.Aggregator's shape instead: per-event incremental folds,
// a plain-data Snapshot, additive Merge, and deterministic finalizers. Live
// state is bounded by the *population* (honeypots, attacking IPs, credential
// pairs), never by the session count.

// Clock supplies event timestamps; honeypot fleets inject one so interaction
// timelines are reproducible run to run.
type Clock func() time.Time

// SimClock returns a deterministic logical clock: every reading advances the
// clock by step from start. With a single-threaded campaign the resulting
// timeline is byte-reproducible; with concurrency it stays deterministic in
// distribution (each reading is distinct and monotone).
func SimClock(start time.Time, step time.Duration) Clock {
	var ticks atomic.Int64
	return func() time.Time {
		n := ticks.Add(1)
		return start.Add(time.Duration(n) * step)
	}
}

// remoteState tracks what one attacking IP did across the whole fleet.
type remoteState struct {
	spokeFTP  bool
	httpGet   bool
	traversed bool
	listed    bool
	authTLS   bool
	cve       bool
	rootLogin bool
	uploads   int
	mkdirs    int
}

// credState tracks one username:password pair and the distinct sources that
// tried it — the raw material of credential-reuse clustering.
type credState struct {
	count   int
	sources map[string]bool
}

// hpState is one honeypot's timeline state: lure identity, deployment time,
// and the earliest observed interaction.
type hpState struct {
	lure     LureStrategy
	deployed time.Time
	first    time.Time
	probed   bool
	sessions int
}

// campState is one attributed campaign's tally.
type campState struct {
	events  int
	sources map[string]bool
}

// accMetrics is the registry view of the accumulator, resolved once.
type accMetrics struct {
	events   *obs.Counter
	sessions *obs.Counter
	uploads  *obs.Counter
	deletes  *obs.Counter
	creds    *obs.Counter
	remotes  *obs.Gauge
}

// Accumulator folds honeypot session events into §VIII statistics and
// Honeybuckets-style timelines as they happen. It is safe for concurrent
// sessions across many honeypots; per-event work is one short critical
// section over population-bounded maps.
type Accumulator struct {
	mu        sync.Mutex
	events    uint64
	sessions  uint64
	closed    uint64
	remotes   map[string]*remoteState
	creds     map[string]*credState
	bounce    map[string]int
	bounceN   int
	uploads   int
	deletes   int
	anonOK    int
	honeypots map[string]*hpState
	camps     map[string]*campState
	m         accMetrics
	bound     bool
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		remotes:   make(map[string]*remoteState),
		creds:     make(map[string]*credState),
		bounce:    make(map[string]int),
		honeypots: make(map[string]*hpState),
		camps:     make(map[string]*campState),
	}
}

// BindMetrics mirrors the accumulator's folds into registry instruments:
// honeypot.events (every observer event), honeypot.sessions (connects),
// honeypot.uploads / honeypot.deletes (successful writes), honeypot.creds
// (distinct credential pairs), and the honeypot.remotes gauge (distinct
// attacking IPs seen). Bind before traffic flows.
func (a *Accumulator) BindMetrics(reg *obs.Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m = accMetrics{
		events:   reg.Counter("honeypot.events"),
		sessions: reg.Counter("honeypot.sessions"),
		uploads:  reg.Counter("honeypot.uploads"),
		deletes:  reg.Counter("honeypot.deletes"),
		creds:    reg.Counter("honeypot.creds"),
		remotes:  reg.Gauge("honeypot.remotes"),
	}
	a.bound = true
}

// Register adds one honeypot's identity before its traffic flows: the lure
// it runs and the moment it went live (the zero of its time-to-first-probe
// measurement).
func (a *Accumulator) Register(honeypotIP string, lure LureStrategy, deployed time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.honeypots[honeypotIP] = &hpState{lure: lure, deployed: deployed}
}

// Observer returns the per-honeypot streaming observer: an ftpserver
// Observer that tags the honeypot's identity onto every event and folds it
// into the shared accumulator. This replaces the buffered Log for fleets at
// scale — no event is ever retained.
func (a *Accumulator) Observer(honeypotIP string) ftpserver.Observer {
	return &streamObserver{acc: a, ip: honeypotIP}
}

type streamObserver struct {
	acc *Accumulator
	ip  string
}

func (o *streamObserver) Event(e ftpserver.Event) { o.acc.observe(o.ip, e) }

// observe folds one event. The switch mirrors the legacy Summarize loop,
// with two deliberate fixes: deletes count successful EventDelete
// observations (not every DELE command), and nothing here depends on
// iteration order, so streamed and buffered folds agree byte for byte.
func (a *Accumulator) observe(honeypotIP string, e ftpserver.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++
	if a.bound {
		a.m.events.Inc()
	}

	if hp, ok := a.honeypots[honeypotIP]; ok {
		if !hp.probed || e.Time.Before(hp.first) {
			hp.probed, hp.first = true, e.Time
		}
		if e.Kind == ftpserver.EventConnect {
			hp.sessions++
		}
	}

	rs, ok := a.remotes[e.RemoteIP]
	if !ok {
		rs = &remoteState{}
		a.remotes[e.RemoteIP] = rs
		if a.bound {
			a.m.remotes.Set(int64(len(a.remotes)))
		}
	}

	switch e.Kind {
	case ftpserver.EventConnect:
		a.sessions++
		if a.bound {
			a.m.sessions.Inc()
		}
	case ftpserver.EventDisconnect:
		a.closed++
	case ftpserver.EventCommand:
		switch e.Command {
		case "GET", "POST", "HEAD":
			rs.httpGet = true
		case "CWD", "CDUP":
			rs.spokeFTP = true
			rs.traversed = true
		case "LIST", "NLST":
			rs.spokeFTP = true
			rs.listed = true
		case "AUTH":
			rs.spokeFTP = true
			rs.authTLS = true
		case "SITE":
			rs.spokeFTP = true
			upper := strings.ToUpper(e.Arg)
			if strings.HasPrefix(upper, "CPFR") || strings.HasPrefix(upper, "CPTO") {
				rs.cve = true
				a.attribute(campaigns.KeyCVEModCopy, e.RemoteIP)
			}
		case "MKD", "XMKD":
			rs.spokeFTP = true
			rs.mkdirs++
			if key := campaigns.AttributeMkdir(path.Base(e.Arg)); key != "" {
				a.attribute(key, e.RemoteIP)
			}
		default:
			rs.spokeFTP = true
		}
	case ftpserver.EventLoginOK:
		if e.Detail == "anonymous" {
			a.anonOK++
		}
	case ftpserver.EventLoginFail:
		if e.User != "" || e.Pass != "" {
			pair := e.User + ":" + e.Pass
			cs, ok := a.creds[pair]
			if !ok {
				cs = &credState{sources: make(map[string]bool, 1)}
				a.creds[pair] = cs
				if a.bound {
					a.m.creds.Inc()
				}
			}
			cs.count++
			cs.sources[e.RemoteIP] = true
		}
		if e.User == "root" && e.Pass == "" {
			rs.rootLogin = true
			a.attribute(campaigns.KeySeagateRoot, e.RemoteIP)
		}
	case ftpserver.EventUpload:
		rs.uploads++
		a.uploads++
		if a.bound {
			a.m.uploads.Inc()
		}
		a.attribute(campaigns.AttributeUpload(path.Base(e.Path)), e.RemoteIP)
	case ftpserver.EventDelete:
		a.deletes++
		if a.bound {
			a.m.deletes.Inc()
		}
	case ftpserver.EventPortBounceAttempt:
		a.bounceN++
		a.bounce[e.Detail]++
		a.attribute(campaigns.KeyPortBounce, e.RemoteIP)
	}
}

// attribute tallies one campaign observation under a.mu.
func (a *Accumulator) attribute(key, source string) {
	cs, ok := a.camps[key]
	if !ok {
		cs = &campState{sources: make(map[string]bool, 1)}
		a.camps[key] = cs
	}
	cs.events++
	cs.sources[source] = true
}

// Events returns the total number of folded events.
func (a *Accumulator) Events() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events
}

// Sessions returns the number of observed connects.
func (a *Accumulator) Sessions() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sessions
}

// Closed returns the number of observed disconnects.
func (a *Accumulator) Closed() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// Quiesce blocks until every honeypot session has fully torn down: at
// least `dialed` connects observed and a disconnect folded for each
// connect. Session events arrive from server goroutines that outlive the
// attacker's dial, so a fleet run returning does not mean the stream is
// done; snapshotting a report or closing an event stream before Quiesce
// races the teardown tail. Returns false if ctx expires first.
func (a *Accumulator) Quiesce(ctx context.Context, dialed uint64) bool {
	for {
		a.mu.Lock()
		done := a.sessions >= dialed && a.closed >= a.sessions
		a.mu.Unlock()
		if done {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

// --- Snapshot / Merge -----------------------------------------------------

// RemoteSnap is one attacking IP's state as plain data.
type RemoteSnap struct {
	SpokeFTP  bool
	HTTPGet   bool
	Traversed bool
	Listed    bool
	AuthTLS   bool
	CVE       bool
	RootLogin bool
	Uploads   int
	Mkdirs    int
}

// CredSnap is one credential pair's tally.
type CredSnap struct {
	Count   int
	Sources map[string]bool
}

// HoneypotSnap is one honeypot's timeline state.
type HoneypotSnap struct {
	Lure     LureStrategy
	Deployed time.Time
	First    time.Time
	Probed   bool
	Sessions int
}

// CampaignSnap is one attributed campaign's tally.
type CampaignSnap struct {
	Events  int
	Sources map[string]bool
}

// Snapshot is an Accumulator frozen as plain data, mergeable with snapshots
// of disjoint traffic the way analysis.Snapshot merges shard aggregates:
// every field is an additive fold (sets union, flags OR, counters add,
// first-probe times take the minimum), so merge order cannot change any
// finalized table.
type Snapshot struct {
	Events         uint64
	Sessions       uint64
	Closed         uint64
	Uploads        int
	Deletes        int
	AnonLogins     int
	BounceAttempts int
	Remotes        map[string]RemoteSnap
	Creds          map[string]CredSnap
	BounceTargets  map[string]int
	Honeypots      map[string]HoneypotSnap
	Campaigns      map[string]CampaignSnap
}

// Snapshot captures the accumulator's state as plain data. Safe to call
// concurrently with observation; the snapshot is a consistent point-in-time
// copy.
func (a *Accumulator) Snapshot() *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := &Snapshot{
		Events:         a.events,
		Sessions:       a.sessions,
		Closed:         a.closed,
		Uploads:        a.uploads,
		Deletes:        a.deletes,
		AnonLogins:     a.anonOK,
		BounceAttempts: a.bounceN,
		Remotes:        make(map[string]RemoteSnap, len(a.remotes)),
		Creds:          make(map[string]CredSnap, len(a.creds)),
		BounceTargets:  make(map[string]int, len(a.bounce)),
		Honeypots:      make(map[string]HoneypotSnap, len(a.honeypots)),
		Campaigns:      make(map[string]CampaignSnap, len(a.camps)),
	}
	for ip, rs := range a.remotes {
		s.Remotes[ip] = RemoteSnap{
			SpokeFTP: rs.spokeFTP, HTTPGet: rs.httpGet, Traversed: rs.traversed,
			Listed: rs.listed, AuthTLS: rs.authTLS, CVE: rs.cve,
			RootLogin: rs.rootLogin, Uploads: rs.uploads, Mkdirs: rs.mkdirs,
		}
	}
	for pair, cs := range a.creds {
		s.Creds[pair] = CredSnap{Count: cs.count, Sources: copySet(cs.sources)}
	}
	for target, n := range a.bounce {
		s.BounceTargets[target] = n
	}
	for ip, hp := range a.honeypots {
		s.Honeypots[ip] = HoneypotSnap{
			Lure: hp.lure, Deployed: hp.deployed, First: hp.first,
			Probed: hp.probed, Sessions: hp.sessions,
		}
	}
	for key, cs := range a.camps {
		s.Campaigns[key] = CampaignSnap{Events: cs.events, Sources: copySet(cs.sources)}
	}
	return s
}

// MergeSnapshot folds a snapshot into the accumulator, as if the traffic it
// summarizes had been observed here.
func (a *Accumulator) MergeSnapshot(s *Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events += s.Events
	a.sessions += s.Sessions
	a.closed += s.Closed
	a.uploads += s.Uploads
	a.deletes += s.Deletes
	a.anonOK += s.AnonLogins
	a.bounceN += s.BounceAttempts
	for ip, rsnap := range s.Remotes {
		rs, ok := a.remotes[ip]
		if !ok {
			rs = &remoteState{}
			a.remotes[ip] = rs
		}
		rs.spokeFTP = rs.spokeFTP || rsnap.SpokeFTP
		rs.httpGet = rs.httpGet || rsnap.HTTPGet
		rs.traversed = rs.traversed || rsnap.Traversed
		rs.listed = rs.listed || rsnap.Listed
		rs.authTLS = rs.authTLS || rsnap.AuthTLS
		rs.cve = rs.cve || rsnap.CVE
		rs.rootLogin = rs.rootLogin || rsnap.RootLogin
		rs.uploads += rsnap.Uploads
		rs.mkdirs += rsnap.Mkdirs
	}
	for pair, csnap := range s.Creds {
		cs, ok := a.creds[pair]
		if !ok {
			cs = &credState{sources: make(map[string]bool, len(csnap.Sources))}
			a.creds[pair] = cs
		}
		cs.count += csnap.Count
		for src := range csnap.Sources {
			cs.sources[src] = true
		}
	}
	for target, n := range s.BounceTargets {
		a.bounce[target] += n
	}
	for ip, hsnap := range s.Honeypots {
		hp, ok := a.honeypots[ip]
		if !ok {
			hp = &hpState{lure: hsnap.Lure, deployed: hsnap.Deployed}
			a.honeypots[ip] = hp
		}
		if hsnap.Probed && (!hp.probed || hsnap.First.Before(hp.first)) {
			hp.probed, hp.first = true, hsnap.First
		}
		hp.sessions += hsnap.Sessions
	}
	for key, csnap := range s.Campaigns {
		cs, ok := a.camps[key]
		if !ok {
			cs = &campState{sources: make(map[string]bool, len(csnap.Sources))}
			a.camps[key] = cs
		}
		cs.events += csnap.Events
		for src := range csnap.Sources {
			cs.sources[src] = true
		}
	}
}

// Merge folds another accumulator's state into this one via its snapshot.
func (a *Accumulator) Merge(other *Accumulator) { a.MergeSnapshot(other.Snapshot()) }

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// --- Finalizers -----------------------------------------------------------

// Summary finalizes the §VIII statistics. Deterministic: the top source
// prefix breaks count ties lexicographically.
func (a *Accumulator) Summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Summary{
		CredentialPairs: len(a.creds),
		AnonymousLogins: a.anonOK,
		Uploads:         a.uploads,
		Deletes:         a.deletes,
		BounceAttempts:  a.bounceN,
		BounceTargets:   make(map[string]int, len(a.bounce)),
	}
	for target, n := range a.bounce {
		s.BounceTargets[target] = n
	}
	prefixCounts := map[string]int{}
	for ip, rs := range a.remotes {
		s.UniqueScanners++
		if rs.spokeFTP {
			s.SpokeFTP++
		}
		if rs.httpGet {
			s.HTTPGet++
		}
		if rs.traversed {
			s.Traversed++
		}
		if rs.listed {
			s.Listed++
		}
		if rs.authTLS {
			s.AuthTLS++
		}
		if rs.cve {
			s.CVEAttempts++
		}
		if rs.rootLogin {
			s.RootLogins++
		}
		if rs.mkdirs > 0 && rs.uploads == 0 {
			s.MkdirOnly++
		}
		if dot := strings.IndexByte(ip, '.'); dot > 0 {
			prefixCounts[ip[:dot]+".0.0.0/8"]++
		}
	}
	// Max selection over sorted keys: ties resolve to the lexicographically
	// smallest prefix no matter what order the folds arrived in.
	for _, prefix := range sortedPrefixes(prefixCounts) {
		if s.TopSourcePrefix == "" || prefixCounts[prefix] > prefixCounts[s.TopSourcePrefix] {
			s.TopSourcePrefix = prefix
		}
	}
	if s.UniqueScanners > 0 {
		s.TopSourcePrefixShare = 100 * float64(prefixCounts[s.TopSourcePrefix]) / float64(s.UniqueScanners)
	}
	return s
}

func sortedPrefixes(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LureTimeline is one lure strategy's interaction timeline: how many
// honeypots ran it, how many were probed at all, session volume, and the
// exact time-to-first-probe distribution (one sample per probed honeypot,
// so the distribution is population-bounded and quantiles are exact).
type LureTimeline struct {
	Lure      LureStrategy
	Honeypots int
	Probed    int
	Sessions  int
	TTFMin    time.Duration
	TTFMedian time.Duration
	TTFP90    time.Duration
	TTFMax    time.Duration
}

// Timelines finalizes the per-lure time-to-first-probe distributions,
// sorted by lure name.
func (a *Accumulator) Timelines() []LureTimeline {
	a.mu.Lock()
	defer a.mu.Unlock()
	byLure := map[LureStrategy]*LureTimeline{}
	samples := map[LureStrategy][]time.Duration{}
	for _, hp := range a.honeypots {
		tl, ok := byLure[hp.lure]
		if !ok {
			tl = &LureTimeline{Lure: hp.lure}
			byLure[hp.lure] = tl
		}
		tl.Honeypots++
		tl.Sessions += hp.sessions
		if hp.probed {
			tl.Probed++
			samples[hp.lure] = append(samples[hp.lure], hp.first.Sub(hp.deployed))
		}
	}
	out := make([]LureTimeline, 0, len(byLure))
	for lure, tl := range byLure {
		if ds := samples[lure]; len(ds) > 0 {
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			tl.TTFMin = ds[0]
			tl.TTFMedian = ds[(len(ds)-1)/2]
			tl.TTFP90 = ds[(len(ds)-1)*9/10]
			tl.TTFMax = ds[len(ds)-1]
		}
		out = append(out, *tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lure < out[j].Lure })
	return out
}

// CredCluster is one credential pair reused across distinct sources.
type CredCluster struct {
	Pair    string
	Sources int
	Tries   int
}

// CredClusters summarizes credential reuse across the bot population.
type CredClusters struct {
	UniquePairs int
	ReusedPairs int
	// Top holds the most widely shared pairs, ordered by source count
	// descending, then tries descending, then pair ascending.
	Top []CredCluster
}

// CredReuse finalizes credential-reuse clustering: pairs tried from two or
// more distinct sources mark coordinated campaigns (shared dictionaries
// walking the fleet). topN bounds the reported cluster table; topN <= 0
// means 10.
func (a *Accumulator) CredReuse(topN int) CredClusters {
	a.mu.Lock()
	defer a.mu.Unlock()
	if topN <= 0 {
		topN = 10
	}
	c := CredClusters{UniquePairs: len(a.creds)}
	clusters := make([]CredCluster, 0, len(a.creds))
	for pair, cs := range a.creds {
		if len(cs.sources) >= 2 {
			c.ReusedPairs++
		}
		clusters = append(clusters, CredCluster{Pair: pair, Sources: len(cs.sources), Tries: cs.count})
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].Sources != clusters[j].Sources {
			return clusters[i].Sources > clusters[j].Sources
		}
		if clusters[i].Tries != clusters[j].Tries {
			return clusters[i].Tries > clusters[j].Tries
		}
		return clusters[i].Pair < clusters[j].Pair
	})
	if len(clusters) > topN {
		clusters = clusters[:topN]
	}
	c.Top = clusters
	return c
}

// CampaignRow is one attributed campaign in the §VIII attribution table.
type CampaignRow struct {
	Key     string
	Events  int
	Sources int
}

// Attribution finalizes the campaign attribution table, sorted by key.
func (a *Accumulator) Attribution() []CampaignRow {
	a.mu.Lock()
	defer a.mu.Unlock()
	rows := make([]CampaignRow, 0, len(a.camps))
	for key, cs := range a.camps {
		rows = append(rows, CampaignRow{Key: key, Events: cs.events, Sources: len(cs.sources)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	return rows
}

// Report is the full streamed study output: the paper's §VIII summary plus
// the Honeybuckets-style fleet analyses.
type Report struct {
	Summary     Summary
	Timelines   []LureTimeline
	Creds       CredClusters
	Attribution []CampaignRow
	Events      uint64
	Sessions    uint64
}

// Report finalizes everything at once.
func (a *Accumulator) Report() Report {
	return Report{
		Summary:     a.Summary(),
		Timelines:   a.Timelines(),
		Creds:       a.CredReuse(0),
		Attribution: a.Attribution(),
		Events:      a.Events(),
		Sessions:    a.Sessions(),
	}
}

// --- Event stream ---------------------------------------------------------

// StreamEvent is the JSONL wire form of one honeypot event: the ftpserver
// audit shape plus the honeypot identity the per-server Observer cannot
// know. This is what -events-out persists.
type StreamEvent struct {
	Honeypot string    `json:"honeypot"`
	Lure     string    `json:"lure"`
	Time     time.Time `json:"time"`
	Kind     string    `json:"kind"`
	RemoteIP string    `json:"remote_ip,omitempty"`
	User     string    `json:"user,omitempty"`
	Pass     string    `json:"pass,omitempty"`
	Command  string    `json:"command,omitempty"`
	Arg      string    `json:"arg,omitempty"`
	Path     string    `json:"path,omitempty"`
	Detail   string    `json:"detail,omitempty"`
	Bytes    int64     `json:"bytes,omitempty"`
}

// EventStream adapts a dataset.Lines into per-honeypot observers that
// persist every event as one JSON line tagged with the honeypot's identity.
type EventStream struct {
	lines *dataset.Lines
}

// NewEventStream wraps lines for the fleet's event firehose.
func NewEventStream(lines *dataset.Lines) *EventStream {
	return &EventStream{lines: lines}
}

// Observer returns the observer for one honeypot.
func (s *EventStream) Observer(honeypotIP string, lure LureStrategy) ftpserver.Observer {
	return &streamEventObserver{lines: s.lines, ip: honeypotIP, lure: string(lure)}
}

// Close flushes the underlying stream.
func (s *EventStream) Close() error { return s.lines.Close() }

type streamEventObserver struct {
	lines *dataset.Lines
	ip    string
	lure  string
}

func (o *streamEventObserver) Event(e ftpserver.Event) {
	o.lines.Write(StreamEvent{
		Honeypot: o.ip,
		Lure:     o.lure,
		Time:     e.Time,
		Kind:     e.Kind.String(),
		RemoteIP: e.RemoteIP,
		User:     e.User,
		Pass:     e.Pass,
		Command:  e.Command,
		Arg:      e.Arg,
		Path:     e.Path,
		Detail:   e.Detail,
		Bytes:    e.Bytes,
	})
}
