package honeypot

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ftpcloud/internal/attacker"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/simnet"
)

// deployFleetTest stands up a differentiated fleet with the buffered Logs
// retained, so streamed and buffered summaries can be compared on identical
// traffic.
func deployFleetTest(t *testing.T, count int, cfg FleetConfig) (*simnet.Network, *Deployment) {
	t.Helper()
	provider := simnet.NewStaticProvider()
	cfg.Base = simnet.MustParseIP("100.64.0.1")
	cfg.Count = count
	dep, err := DeployFleet(provider, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return simnet.NewNetwork(provider), dep
}

func runFleet(t *testing.T, nw *simnet.Network, dep *Deployment, bots int, fleetCfg func(*attacker.Fleet)) attacker.Stats {
	t.Helper()
	fleet := &attacker.Fleet{
		Network:      nw,
		Bots:         attacker.DefaultMix(bots, 77, 0.30),
		Targets:      dep.IPs,
		BounceTarget: ftp.HostPort{IP: [4]byte{203, 0, 113, 66}, Port: 9999},
		Timeout:      5 * time.Second,
	}
	if fleetCfg != nil {
		fleetCfg(fleet)
	}
	stats := fleet.Run(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if !dep.Acc.Quiesce(ctx, uint64(stats.Sessions)) {
		t.Fatal("accumulator never quiesced")
	}
	return stats
}

// quiesce waits for straggling session-teardown events (disconnects folded
// after the fleet returns) so comparisons see a stable accumulator.
func quiesce(t *testing.T, acc *Accumulator) {
	t.Helper()
	if acc == nil {
		return
	}
	prev := acc.Events()
	for i := 0; i < 250; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := acc.Events()
		if cur == prev {
			return
		}
		prev = cur
	}
	t.Fatal("accumulator never quiesced")
}

// TestStreamedMatchesBufferedSummary is the tentpole equivalence check: the
// streaming accumulator and the buffered replay must produce byte-identical
// tables on the same traffic, because they share one fold implementation.
func TestStreamedMatchesBufferedSummary(t *testing.T) {
	nw, dep := deployFleetTest(t, 16, FleetConfig{Seed: 9, Buffered: true})
	runFleet(t, nw, dep, 150, nil)

	streamed := dep.Acc
	// Rebuild a purely buffered deployment view (no accumulator) and
	// replay its retained Logs through a fresh fold.
	buffered := Replay(&Deployment{IPs: dep.IPs, Logs: dep.Logs, Lures: dep.Lures})

	if got, want := Render(streamed.Summary()), Render(buffered.Summary()); got != want {
		t.Errorf("streamed summary diverges from buffered replay:\nstreamed:\n%s\nbuffered:\n%s", got, want)
	}
	if got, want := streamed.CredReuse(0), buffered.CredReuse(0); !reflect.DeepEqual(got, want) {
		t.Errorf("cred clusters diverge:\nstreamed: %+v\nbuffered: %+v", got, want)
	}
	if got, want := streamed.Attribution(), buffered.Attribution(); !reflect.DeepEqual(got, want) {
		t.Errorf("attribution diverges:\nstreamed: %+v\nbuffered: %+v", got, want)
	}
	if streamed.Events() != buffered.Events() {
		t.Errorf("event counts diverge: streamed %d, buffered %d", streamed.Events(), buffered.Events())
	}
}

// TestSummarizePrefersAccumulator: a streaming deployment summarizes from
// its accumulator even when no Logs were retained.
func TestSummarizePrefersAccumulator(t *testing.T) {
	nw, dep := deployFleetTest(t, 4, FleetConfig{Seed: 5})
	runFleet(t, nw, dep, 40, nil)
	if len(dep.Logs) != 0 {
		t.Fatalf("streaming deployment retained %d logs", len(dep.Logs))
	}
	s := Summarize(dep)
	if s.UniqueScanners == 0 {
		t.Error("accumulator-backed summary saw no scanners")
	}
}

// TestTopSourcePrefixDeterministic: when two /8s tie on scanner count, the
// lexicographically smallest prefix must win every time — the legacy
// map-iteration selection resolved ties randomly across runs.
func TestTopSourcePrefixDeterministic(t *testing.T) {
	for run := 0; run < 50; run++ {
		acc := NewAccumulator()
		for _, ip := range []string{"9.1.1.1", "9.2.2.2", "8.1.1.1", "8.2.2.2"} {
			acc.observe("hp", ftpserver.Event{Kind: ftpserver.EventConnect, RemoteIP: ip})
		}
		s := acc.Summary()
		if s.TopSourcePrefix != "8.0.0.0/8" {
			t.Fatalf("run %d: tie resolved to %s, want 8.0.0.0/8", run, s.TopSourcePrefix)
		}
		if s.TopSourcePrefixShare != 50 {
			t.Fatalf("run %d: share = %.1f, want 50", run, s.TopSourcePrefixShare)
		}
	}
}

// TestDeletesCountSuccessfulOnly: a failed DELE must not count — the legacy
// summarizer tallied every DELE command while Uploads counted only
// successful transfers, so the two columns weren't comparable.
func TestDeletesCountSuccessfulOnly(t *testing.T) {
	nw, dep := deployFleetTest(t, 1, FleetConfig{Seed: 1, Mix: LureMix{Webroot: 1}})
	ip := dep.IPs[0]

	nc, err := nw.DialFrom(simnet.MustParseIP("9.9.9.9"), ip, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = 5 * time.Second
	if r, _ := c.ReadReply(); r.Code != ftp.CodeReady {
		t.Fatalf("banner: %+v", r)
	}
	c.Cmd("USER", "anonymous")
	if r, _ := c.Cmd("PASS", "x@x"); r.Code != ftp.CodeLoggedIn {
		t.Fatalf("login: %+v", r)
	}
	// Failed delete: the file does not exist.
	if r, _ := c.Cmd("DELE", "/no-such-file.txt"); !r.Negative() {
		t.Fatalf("DELE of missing file succeeded: %+v", r)
	}
	s := Summarize(dep)
	if s.Deletes != 0 {
		t.Fatalf("failed DELE counted: Deletes = %d, want 0", s.Deletes)
	}

	// Successful upload + delete via a write-prober bot.
	fleet := &attacker.Fleet{
		Network: nw,
		Bots:    []attacker.Bot{{Source: simnet.MustParseIP("9.9.9.10"), Profile: attacker.ProfileWriteProber, Seed: 3}},
		Targets: dep.IPs,
		Timeout: 5 * time.Second,
	}
	fleet.Run(context.Background())
	quiesce(t, dep.Acc)
	s = Summarize(dep)
	if s.Uploads != 1 || s.Deletes != 1 {
		t.Errorf("write probe: uploads/deletes = %d/%d, want 1/1", s.Uploads, s.Deletes)
	}
}

// TestSnapshotMergeEquivalence: folding traffic into two accumulators and
// merging must match folding everything into one — the sharding contract.
func TestSnapshotMergeEquivalence(t *testing.T) {
	events := []ftpserver.Event{
		{Kind: ftpserver.EventConnect, RemoteIP: "9.1.1.1"},
		{Kind: ftpserver.EventCommand, RemoteIP: "9.1.1.1", Command: "LIST"},
		{Kind: ftpserver.EventLoginFail, RemoteIP: "9.1.1.1", User: "admin", Pass: "admin"},
		{Kind: ftpserver.EventConnect, RemoteIP: "9.2.2.2"},
		{Kind: ftpserver.EventLoginFail, RemoteIP: "9.2.2.2", User: "admin", Pass: "admin"},
		{Kind: ftpserver.EventUpload, RemoteIP: "9.2.2.2", Path: "/ftpchk3.txt"},
		{Kind: ftpserver.EventDelete, RemoteIP: "9.2.2.2", Path: "/ftpchk3.txt"},
		{Kind: ftpserver.EventPortBounceAttempt, RemoteIP: "9.3.3.3", Detail: "203.0.113.66:9999"},
	}
	t0 := time.Unix(1_450_000_000, 0)

	whole := NewAccumulator()
	whole.Register("hp-a", LureWebroot, t0)
	whole.Register("hp-b", LureVault, t0)
	left := NewAccumulator()
	left.Register("hp-a", LureWebroot, t0)
	right := NewAccumulator()
	right.Register("hp-b", LureVault, t0)

	for i, e := range events {
		e.Time = t0.Add(time.Duration(i+1) * time.Second)
		if i%2 == 0 {
			whole.observe("hp-a", e)
			left.observe("hp-a", e)
		} else {
			whole.observe("hp-b", e)
			right.observe("hp-b", e)
		}
	}

	merged := NewAccumulator()
	merged.Merge(left)
	merged.MergeSnapshot(right.Snapshot())

	if got, want := merged.Report(), whole.Report(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged report diverges:\nmerged: %+v\nwhole:  %+v", got, want)
	}
}

// TestLureDeterminism: the same (seed, index) must always yield the same
// honeypot, and a default-mix fleet must actually be differentiated.
func TestLureDeterminism(t *testing.T) {
	_, a := deployFleetTest(t, 32, FleetConfig{Seed: 11})
	_, b := deployFleetTest(t, 32, FleetConfig{Seed: 11})
	if !reflect.DeepEqual(a.Lures, b.Lures) {
		t.Error("same seed drew different lure assignments")
	}
	distinct := map[LureStrategy]bool{}
	for _, lure := range a.Lures {
		distinct[lure] = true
	}
	if len(distinct) < 3 {
		t.Errorf("32-honeypot default-mix fleet drew only %d strategies: %v", len(distinct), distinct)
	}
}

// TestVaultLureRejectsWrites: the read-only vault posture must refuse
// anonymous uploads while still recording the attempt as traffic.
func TestVaultLureRejectsWrites(t *testing.T) {
	nw, dep := deployFleetTest(t, 1, FleetConfig{Seed: 2, Mix: LureMix{Vault: 1}})
	stats := runFleet(t, nw, dep, 0, func(f *attacker.Fleet) {
		f.Bots = []attacker.Bot{{Source: simnet.MustParseIP("9.4.4.4"), Profile: attacker.ProfileWriteProber, Seed: 8}}
	})
	if stats.Errors == 0 {
		t.Error("write probe against read-only vault reported no error")
	}
	s := Summarize(dep)
	if s.Uploads != 0 {
		t.Errorf("vault accepted %d uploads", s.Uploads)
	}
	if s.UniqueScanners == 0 {
		t.Error("vault recorded no traffic at all")
	}
}

// TestSimClockReproducibleTimelines: two runs with the same seed and a fresh
// SimClock must draw identical fleets and campaign assignments, so the
// structural timeline (lures, probe coverage, session counts) reproduces
// exactly and every probed lure carries a sane TTF distribution. Exact tick
// values are not compared: session teardown folds concurrently with the
// next session's connect, so tick assignment may interleave.
func TestSimClockReproducibleTimelines(t *testing.T) {
	type shape struct {
		Lure      LureStrategy
		Honeypots int
		Probed    int
		Sessions  int
	}
	run := func() []LureTimeline {
		clock := SimClock(time.Unix(1_450_000_000, 0), 250*time.Millisecond)
		nw, dep := deployFleetTest(t, 8, FleetConfig{Seed: 4, Now: clock})
		runFleet(t, nw, dep, 20, func(f *attacker.Fleet) {
			f.Sessions = 64
			f.Concurrency = 1
			f.Now = clock
		})
		return dep.Acc.Timelines()
	}
	shapes := func(rows []LureTimeline) []shape {
		out := make([]shape, len(rows))
		for i, tl := range rows {
			out[i] = shape{tl.Lure, tl.Honeypots, tl.Probed, tl.Sessions}
		}
		return out
	}
	first, second := run(), run()
	if !reflect.DeepEqual(shapes(first), shapes(second)) {
		t.Errorf("timeline shapes diverge across identical runs:\nfirst:  %+v\nsecond: %+v", shapes(first), shapes(second))
	}
	probed := 0
	for _, tl := range first {
		probed += tl.Probed
		if tl.Probed > 0 {
			if tl.TTFMin <= 0 {
				t.Errorf("lure %s: TTF min %v, want > 0 under SimClock", tl.Lure, tl.TTFMin)
			}
			if tl.TTFMax < tl.TTFMin || tl.TTFMedian < tl.TTFMin || tl.TTFP90 > tl.TTFMax {
				t.Errorf("lure %s: TTF quantiles out of order: %+v", tl.Lure, tl)
			}
		}
	}
	if probed == 0 {
		t.Error("no honeypot was ever probed")
	}
}

// TestEventStreamJSONL: the -events-out firehose must tag every event with
// the honeypot identity and lure, one JSON object per line.
func TestEventStreamJSONL(t *testing.T) {
	var buf bytes.Buffer
	stream := NewEventStream(dataset.NewLines(&buf))
	nw, dep := deployFleetTest(t, 2, FleetConfig{Seed: 6, Events: stream})
	runFleet(t, nw, dep, 10, nil)
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if uint64(len(lines)) != dep.Acc.Events() {
		t.Errorf("stream wrote %d lines, accumulator folded %d events", len(lines), dep.Acc.Events())
	}
	for i, line := range lines {
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Honeypot == "" || ev.Lure == "" || ev.Kind == "" {
			t.Fatalf("line %d missing identity: %+v", i, ev)
		}
	}
}

// TestQuiesceBarriersEventStream: Quiesce(dialed) is the close barrier for
// -events-out — once it returns, every folded event is already on the
// stream (observer order puts the stream before the accumulator), so
// closing immediately loses nothing. This is exact, not a settle loop: one
// disconnect per dialed session.
func TestQuiesceBarriersEventStream(t *testing.T) {
	var buf bytes.Buffer
	stream := NewEventStream(dataset.NewLines(&buf))
	nw, dep := deployFleetTest(t, 4, FleetConfig{Seed: 11, Events: stream})
	stats := runFleet(t, nw, dep, 30, func(f *attacker.Fleet) {
		f.Sessions = 400
		f.Concurrency = 16
	})
	if got := dep.Acc.Closed(); got != dep.Acc.Sessions() {
		t.Fatalf("quiesced with %d disconnects for %d connects", got, dep.Acc.Sessions())
	}
	if uint64(stats.Sessions) != dep.Acc.Sessions() {
		t.Errorf("fleet dialed %d sessions, accumulator saw %d connects", stats.Sessions, dep.Acc.Sessions())
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if uint64(len(lines)) != dep.Acc.Events() {
		t.Errorf("stream wrote %d lines, accumulator folded %d events", len(lines), dep.Acc.Events())
	}

	// An expired context reports failure instead of spinning.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if NewAccumulator().Quiesce(expired, 1) {
		t.Error("Quiesce returned true on an expired context with work outstanding")
	}
}

// TestParseLureMix covers the flag syntax.
func TestParseLureMix(t *testing.T) {
	if m, err := ParseLureMix(""); err != nil || m != DefaultLureMix() {
		t.Errorf("empty mix: %+v, %v", m, err)
	}
	m, err := ParseLureMix("webroot=3,vault=1")
	if err != nil || m.Webroot != 3 || m.Vault != 1 || m.Backup != 0 {
		t.Errorf("parsed mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"webroot", "webroot=x", "nope=1", "webroot=-1", "webroot=0"} {
		if _, err := ParseLureMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

// TestAccumulatorConcurrentFold: many goroutines folding into one
// accumulator while snapshots are taken — the race detector's target.
func TestAccumulatorConcurrentFold(t *testing.T) {
	acc := NewAccumulator()
	acc.Register("hp", LureWebroot, time.Unix(0, 0))
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				acc.observe("hp", ftpserver.Event{
					Kind:     ftpserver.EventConnect,
					RemoteIP: fmt.Sprintf("9.%d.%d.1", g, i%10),
					Time:     time.Unix(int64(i), 0),
				})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		acc.Snapshot()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := acc.Sessions(); got != 1600 {
		t.Errorf("sessions = %d, want 1600", got)
	}
}
