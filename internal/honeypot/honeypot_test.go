package honeypot

import (
	"context"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/attacker"
	"ftpcloud/internal/certs"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/simnet"
)

func deployTest(t *testing.T, count int) (*simnet.Network, *Deployment) {
	t.Helper()
	pool, err := certs.GeneratePool(5, []certs.Spec{
		{Name: "hp", CommonName: "honeypot.example.edu", SelfSigned: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	dep, err := Deploy(provider, simnet.MustParseIP("100.64.0.1"), count, pool.Get("hp"))
	if err != nil {
		t.Fatal(err)
	}
	return simnet.NewNetwork(provider), dep
}

func TestDeployValidation(t *testing.T) {
	provider := simnet.NewStaticProvider()
	if _, err := Deploy(provider, 1, 0, nil); err == nil {
		t.Error("zero-count deploy accepted")
	}
}

func TestDeployServesAnonymousWritable(t *testing.T) {
	nw, dep := deployTest(t, 1)
	nc, err := nw.DialFrom(simnet.MustParseIP("9.9.9.9"), dep.IPs[0], 21)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = 5 * time.Second
	if r, _ := c.ReadReply(); r.Code != ftp.CodeReady {
		t.Fatalf("banner: %+v", r)
	}
	c.Cmd("USER", "anonymous")
	if r, _ := c.Cmd("PASS", "x@x"); r.Code != ftp.CodeLoggedIn {
		t.Fatalf("login: %+v", r)
	}
	if r, _ := c.Cmd("MKD", "/droptest"); r.Code != ftp.CodePathCreated {
		t.Fatalf("MKD: %+v", r)
	}
	if dep.Logs[dep.IPs[0]].Len() == 0 {
		t.Error("honeypot recorded nothing")
	}
}

// TestFullStudy runs the calibrated attacker fleet against eight honeypots
// and verifies the §VIII-style summary statistics.
func TestFullStudy(t *testing.T) {
	nw, dep := deployTest(t, 8)
	bots := attacker.DefaultMix(457, 1234, 0.30)
	fleet := &attacker.Fleet{
		Network:      nw,
		Bots:         bots,
		Targets:      dep.IPs,
		BounceTarget: ftp.HostPort{IP: [4]byte{203, 0, 113, 66}, Port: 9999},
		Timeout:      5 * time.Second,
	}
	stats := fleet.Run(context.Background())
	if stats.BotsRun != 457 {
		t.Fatalf("bots run: %d", stats.BotsRun)
	}

	s := Summarize(dep)
	if s.UniqueScanners != 457 {
		t.Errorf("unique scanners = %d, want 457", s.UniqueScanners)
	}
	// ~30% of sources come from the concentrated /8.
	if s.TopSourcePrefixShare < 20 || s.TopSourcePrefixShare > 40 {
		t.Errorf("top prefix share = %.1f, want ≈30", s.TopSourcePrefixShare)
	}
	if s.TopSourcePrefix != "61.0.0.0/8" {
		t.Errorf("top prefix = %s", s.TopSourcePrefix)
	}
	// FTP speakers: all non-scanner/http bots (paper: 85 of 457).
	if s.SpokeFTP < 60 || s.SpokeFTP > 130 {
		t.Errorf("spoke FTP = %d, paper has 85", s.SpokeFTP)
	}
	if s.HTTPGet < 200 {
		t.Errorf("HTTP GETs = %d, most scanners probe HTTP", s.HTTPGet)
	}
	if s.Traversed == 0 || s.Listed == 0 {
		t.Errorf("traversal stats: %d/%d", s.Traversed, s.Listed)
	}
	// Credential diversity: 24 guessers × 6 pairs ≥ 100 unique pairs.
	if s.CredentialPairs < 50 {
		t.Errorf("credential pairs = %d", s.CredentialPairs)
	}
	// All bounce attempts target the same third party (paper's signature).
	if len(s.BounceTargets) != 1 {
		t.Errorf("bounce targets: %+v", s.BounceTargets)
	}
	if s.BounceAttempts < 8 {
		t.Errorf("bounce attempts = %d", s.BounceAttempts)
	}
	if s.AuthTLS < 20 {
		t.Errorf("AUTH TLS fingerprinters = %d", s.AuthTLS)
	}
	if s.CVEAttempts == 0 {
		t.Error("CVE-2015-3306 probe not recorded")
	}
	if s.RootLogins == 0 {
		t.Error("Seagate root-login attempt not recorded")
	}
	if s.Uploads == 0 || s.Deletes == 0 {
		t.Errorf("write probes: %d uploads / %d deletes", s.Uploads, s.Deletes)
	}
	if s.MkdirOnly == 0 {
		t.Error("WaReZ mkdir-without-upload not recorded")
	}

	out := Render(s)
	for _, want := range []string{"Section VIII", "unique scanning IPs", "PORT bounce"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(&Deployment{Logs: map[simnet.IP]*Log{}})
	if s.UniqueScanners != 0 || s.CredentialPairs != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}
