package honeypot

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// Honeybuckets differentiated the honeypots it deployed — different names,
// different contents, different writability — and compared what scanners did
// to each. This file is that differentiation for the FTP fleet: a LureMix
// assigns every honeypot a lure strategy, and the strategy (plus a
// per-honeypot salt derived from the fleet seed) decides its personality,
// hostname, bait tree, and whether anonymous writes are allowed. The same
// (seed, index) always yields the same honeypot, so fleets are reproducible.

// LureStrategy names one bait posture.
type LureStrategy string

// Lure strategies.
const (
	// LureWebroot is the paper's §VIII posture: a writable anonymous
	// server with web-root bait directories (cgi-bin, www, public_html).
	LureWebroot LureStrategy = "webroot"
	// LureBackup poses as a forgotten backup dump: database exports and
	// tarballs with dated names, writable incoming directory.
	LureBackup LureStrategy = "backup"
	// LureMedia poses as a personal media library, world-writable.
	LureMedia LureStrategy = "media"
	// LureVault poses as a credential-rich config share — the juiciest
	// read bait — but is read-only, so write probes fail and get logged.
	LureVault LureStrategy = "vault"
	// LureBare is an empty writable server: no bait at all, the control
	// group that measures blind scanning.
	LureBare LureStrategy = "bare"
)

// LureMix weights the strategies across a fleet. The zero value is invalid;
// use DefaultLureMix or ParseLureMix.
type LureMix struct {
	Webroot float64
	Backup  float64
	Media   float64
	Vault   float64
	Bare    float64
}

// DefaultLureMix leans on the paper's webroot posture while keeping every
// strategy represented: webroot=4, backup=2, media=2, vault=1, bare=1.
func DefaultLureMix() LureMix {
	return LureMix{Webroot: 4, Backup: 2, Media: 2, Vault: 1, Bare: 1}
}

// total returns the summed weight.
func (m LureMix) total() float64 {
	return m.Webroot + m.Backup + m.Media + m.Vault + m.Bare
}

// ParseLureMix parses "webroot=4,backup=2,media=2,vault=1,bare=1". Omitted
// strategies get weight zero; an empty string means DefaultLureMix.
func ParseLureMix(s string) (LureMix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultLureMix(), nil
	}
	var m LureMix
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("honeypot: lure mix term %q: want strategy=weight", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("honeypot: lure mix weight %q", kv[1])
		}
		switch LureStrategy(strings.ToLower(kv[0])) {
		case LureWebroot:
			m.Webroot = w
		case LureBackup:
			m.Backup = w
		case LureMedia:
			m.Media = w
		case LureVault:
			m.Vault = w
		case LureBare:
			m.Bare = w
		default:
			return m, fmt.Errorf("honeypot: unknown lure strategy %q", kv[0])
		}
	}
	if m.total() <= 0 {
		return m, fmt.Errorf("honeypot: lure mix has no weight")
	}
	return m, nil
}

// mix64 is the splitmix64 finalizer; all per-honeypot draws flow through it
// so fleets derive deterministically from (seed, index).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// honeypotSalt derives honeypot i's private randomness from the fleet seed.
func honeypotSalt(seed uint64, i int) uint64 {
	return mix64(seed ^ mix64(uint64(i)))
}

// unitFloat maps a salt to [0,1).
func unitFloat(salt uint64) float64 {
	return float64(salt>>11) / float64(uint64(1)<<53)
}

// pickLure draws a strategy from the mix.
func pickLure(m LureMix, salt uint64) LureStrategy {
	r := unitFloat(salt) * m.total()
	for _, c := range []struct {
		s LureStrategy
		w float64
	}{
		{LureWebroot, m.Webroot}, {LureBackup, m.Backup},
		{LureMedia, m.Media}, {LureVault, m.Vault}, {LureBare, m.Bare},
	} {
		if r < c.w {
			return c.s
		}
		r -= c.w
	}
	return LureWebroot
}

// lureProfile is everything a strategy decides about one honeypot.
type lureProfile struct {
	personality string
	hostname    string
	writable    bool
	fs          *vfs.FS
}

// buildLure materializes honeypot i's bait from its strategy and salt.
func buildLure(strategy LureStrategy, i int, salt uint64) lureProfile {
	pick := func(keys ...string) string {
		return keys[salt%uint64(len(keys))]
	}
	switch strategy {
	case LureBackup:
		return lureProfile{
			personality: pick(personality.KeyVsftpd302, personality.KeyVsftpd235),
			hostname:    fmt.Sprintf("backup%02d.corp.example", i),
			writable:    true,
			fs:          backupFS(salt),
		}
	case LureMedia:
		return lureProfile{
			personality: pick(personality.KeyPureFTPd1036, personality.KeyGenericUnix),
			hostname:    fmt.Sprintf("media%02d.example.net", i),
			writable:    true,
			fs:          mediaFS(salt),
		}
	case LureVault:
		return lureProfile{
			personality: personality.KeyWuFTPd262,
			hostname:    fmt.Sprintf("files%02d.internal.example", i),
			writable:    false,
			fs:          vaultFS(salt),
		}
	case LureBare:
		return lureProfile{
			personality: pick(personality.KeyGenericUnix, personality.KeyFileZilla0941),
			hostname:    fmt.Sprintf("ftp%02d.example.org", i),
			writable:    true,
			fs:          vfs.New(vfs.NewDir("/", vfs.Perm777)),
		}
	default: // LureWebroot — the paper's posture.
		return lureProfile{
			personality: pick(personality.KeyProFTPD135, personality.KeyProFTPD134a),
			hostname:    fmt.Sprintf("honeypot-%d.example.edu", i),
			writable:    true,
			fs:          baitFS(),
		}
	}
}

// baitSize derives a plausible salted file size.
func baitSize(salt uint64, min, spread int64) int64 {
	return min + int64(salt%uint64(spread))
}

// backupFS builds the backup-dump bait tree.
func backupFS(salt uint64) *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm777)
	backups := root.Add(vfs.NewDir("backups", vfs.Perm755))
	day := 1 + salt%27
	backups.Add(vfs.NewFile(fmt.Sprintf("db-201510%02d.sql.gz", day), vfs.Perm644, baitSize(salt, 1<<20, 1<<24)))
	backups.Add(vfs.NewFile(fmt.Sprintf("site-201510%02d.tar.gz", day), vfs.Perm644, baitSize(mix64(salt), 1<<22, 1<<25)))
	root.Add(vfs.NewDir("archive", vfs.Perm755)).
		Add(vfs.NewFile("users.csv", vfs.Perm644, baitSize(salt^0x5c, 4096, 1<<16)))
	root.Add(vfs.NewDir("incoming", vfs.Perm777))
	return vfs.New(root)
}

// mediaFS builds the media-library bait tree.
func mediaFS(salt uint64) *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm777)
	movies := root.Add(vfs.NewDir("movies", vfs.Perm755))
	movies.Add(vfs.NewFile(fmt.Sprintf("holiday-%03d.mp4", salt%900), vfs.Perm644, baitSize(salt, 1<<26, 1<<28)))
	music := root.Add(vfs.NewDir("music", vfs.Perm755))
	music.Add(vfs.NewFile("collection.m3u", vfs.Perm644, baitSize(salt^0x11, 512, 8192)))
	root.Add(vfs.NewDir("upload", vfs.Perm777))
	return vfs.New(root)
}

// vaultFS builds the credential-vault bait tree (served read-only).
func vaultFS(salt uint64) *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm755)
	cfg := root.Add(vfs.NewDir("config", vfs.Perm755))
	cfg.Add(vfs.NewFile("wp-config.php.bak", vfs.Perm644, baitSize(salt, 2048, 4096)))
	cfg.Add(vfs.NewFile(".env", vfs.Perm644, baitSize(salt^0x2f, 256, 2048)))
	root.Add(vfs.NewFile("passwords.xlsx", vfs.Perm644, baitSize(salt^0x77, 8192, 1<<16)))
	return vfs.New(root)
}

// FleetConfig sizes and shapes a differentiated honeypot fleet.
type FleetConfig struct {
	// Base is the first honeypot address; honeypot i listens at Base+i.
	Base simnet.IP
	// Count is the fleet size.
	Count int
	// Seed drives every per-honeypot draw.
	Seed uint64
	// Mix weights the lure strategies; the zero value means DefaultLureMix.
	Mix LureMix
	// Cert enables AUTH TLS on every honeypot when non-nil.
	Cert *certs.Cert
	// Acc receives the streamed events; nil allocates a fresh accumulator.
	Acc *Accumulator
	// Events, when non-nil, additionally persists every event as JSONL.
	Events *EventStream
	// Buffered additionally retains the legacy per-honeypot Logs — only
	// sane at legacy scale (equivalence tests); fatal at millions of
	// sessions.
	Buffered bool
	// Now is the fleet clock for deploy stamps and event times; nil means
	// time.Now.
	Now func() time.Time
	// IdleTimeout bounds session inactivity; zero means 20s.
	IdleTimeout time.Duration
	// Metrics, when non-nil, wires server and accumulator counters.
	Metrics *obs.Registry
}

// DeployFleet installs a differentiated honeypot fleet on the provider:
// every honeypot draws its lure strategy, personality, hostname, bait tree,
// and writability from its salt, registers with the streaming accumulator,
// and (optionally) tees events into a JSONL stream and a buffered Log.
func DeployFleet(provider *simnet.StaticProvider, cfg FleetConfig) (*Deployment, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("honeypot: count must be positive")
	}
	if cfg.Mix.total() <= 0 {
		cfg.Mix = DefaultLureMix()
	}
	if cfg.Acc == nil {
		cfg.Acc = NewAccumulator()
	}
	if cfg.Metrics != nil {
		cfg.Acc.BindMetrics(cfg.Metrics)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	idle := cfg.IdleTimeout
	if idle == 0 {
		idle = 20 * time.Second
	}
	d := &Deployment{
		Logs:  make(map[simnet.IP]*Log),
		Lures: make(map[simnet.IP]LureStrategy, cfg.Count),
		Acc:   cfg.Acc,
	}
	for i := 0; i < cfg.Count; i++ {
		ip := simnet.IP(uint64(cfg.Base) + uint64(i))
		salt := honeypotSalt(cfg.Seed, i)
		strategy := pickLure(cfg.Mix, salt)
		prof := buildLure(strategy, i, mix64(salt))

		ipStr := ip.String()
		cfg.Acc.Register(ipStr, strategy, now())
		// The stream and log observers run BEFORE the accumulator: once an
		// event has folded into Acc it is durably in every other sink, so
		// Acc.Quiesce doubles as the close barrier for the event stream.
		var observers []ftpserver.Observer
		if cfg.Events != nil {
			observers = append(observers, cfg.Events.Observer(ipStr, strategy))
		}
		if cfg.Buffered {
			log := &Log{}
			d.Logs[ip] = log
			observers = append(observers, log)
		}
		observers = append(observers, cfg.Acc.Observer(ipStr))

		srv, err := ftpserver.New(ftpserver.Config{
			Pers:           personality.ByKey(prof.personality),
			FS:             prof.fs,
			HostName:       prof.hostname,
			PublicIP:       ip,
			AllowAnonymous: true,
			AnonWritable:   prof.writable,
			Users:          map[string]string{}, // real logins fail but are recorded
			Cert:           cfg.Cert,
			Observer:       ftpserver.MultiObserver(observers...),
			Now:            cfg.Now,
			IdleTimeout:    idle,
			Metrics:        cfg.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("honeypot: building server %d: %w", i, err)
		}
		provider.Add(ip, 21, srv.SimHandler())
		d.IPs = append(d.IPs, ip)
		d.Lures[ip] = strategy
	}
	return d, nil
}
