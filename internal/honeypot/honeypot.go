// Package honeypot implements §VIII's measurement apparatus: anonymous,
// world-writable FTP servers that record every interaction, plus the
// summarizer that turns interaction logs into the paper's reported
// statistics (scanning IPs, FTP speakers, credential guesses, write probes,
// PORT-bounce attempts, exploit attempts, AUTH TLS fingerprinting).
package honeypot

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// Log records one honeypot's observed events. It implements
// ftpserver.Observer and is safe for concurrent sessions.
type Log struct {
	mu      sync.Mutex
	events  []ftpserver.Event
	counter *obs.Counter
}

// BindCounter mirrors every subsequently recorded event into c — the
// registry view of honeypot activity. Bind before traffic flows.
func (l *Log) BindCounter(c *obs.Counter) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.counter = c
}

// Event implements ftpserver.Observer.
func (l *Log) Event(e ftpserver.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
	if l.counter != nil {
		l.counter.Inc()
	}
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []ftpserver.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ftpserver.Event(nil), l.events...)
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Deployment is a set of live honeypots on a simulated network.
type Deployment struct {
	IPs  []simnet.IP
	Logs map[simnet.IP]*Log
	// Lures records each honeypot's lure strategy (legacy deployments are
	// all LureWebroot).
	Lures map[simnet.IP]LureStrategy
	// Acc is the streaming accumulator a DeployFleet deployment folds
	// into; nil on legacy buffered deployments.
	Acc *Accumulator
}

// BindMetrics mirrors the deployment's event stream into the registry.
// Streaming deployments bind the accumulator's instruments; legacy buffered
// deployments mirror each Log into the honeypot.events counter. Bind before
// the attacker fleet runs.
func (d *Deployment) BindMetrics(reg *obs.Registry) {
	if d.Acc != nil {
		d.Acc.BindMetrics(reg)
		return
	}
	c := reg.Counter("honeypot.events")
	for _, log := range d.Logs {
		log.BindCounter(c)
	}
}

// baitFS builds the honeypot tree: writable root plus the web-root bait
// directories the paper populated after observing attackers' blind
// traversals (cgi-bin, www, public_html).
func baitFS() *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm777)
	for _, name := range []string{"cgi-bin", "www", "public_html", "incoming"} {
		d := root.Add(vfs.NewDir(name, vfs.Perm777))
		d.Add(vfs.NewFile("index.html", vfs.Perm644, 1024))
	}
	docs := root.Add(vfs.NewDir("files", vfs.Perm755))
	docs.Add(vfs.NewFile("readme.txt", vfs.Perm644, 512))
	return vfs.New(root)
}

// Deploy installs count honeypots starting at base on the provider. The
// honeypots pose as a ProFTPD server vulnerable-looking enough to attract
// CVE probes and accept any anonymous activity.
func Deploy(provider *simnet.StaticProvider, base simnet.IP, count int, cert *certs.Cert) (*Deployment, error) {
	if count <= 0 {
		return nil, fmt.Errorf("honeypot: count must be positive")
	}
	d := &Deployment{
		Logs:  make(map[simnet.IP]*Log, count),
		Lures: make(map[simnet.IP]LureStrategy, count),
	}
	for i := 0; i < count; i++ {
		ip := simnet.IP(uint64(base) + uint64(i))
		log := &Log{}
		cfg := ftpserver.Config{
			Pers:           personality.ByKey(personality.KeyProFTPD135),
			FS:             baitFS(),
			HostName:       fmt.Sprintf("honeypot-%d.example.edu", i),
			PublicIP:       ip,
			AllowAnonymous: true,
			AnonWritable:   true,
			Users:          map[string]string{}, // all real logins fail but are recorded
			Cert:           cert,
			Observer:       log,
			IdleTimeout:    20 * time.Second,
		}
		srv, err := ftpserver.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("honeypot: building server %d: %w", i, err)
		}
		provider.Add(ip, 21, srv.SimHandler())
		d.IPs = append(d.IPs, ip)
		d.Logs[ip] = log
		d.Lures[ip] = LureWebroot
	}
	return d, nil
}

// Summary aggregates a deployment's logs into §VIII's statistics.
type Summary struct {
	// UniqueScanners counts distinct remote IPs that connected at all.
	UniqueScanners int
	// SpokeFTP counts remotes that issued at least one FTP command.
	SpokeFTP int
	// HTTPGet counts remotes that tried an HTTP GET against port 21.
	HTTPGet int
	// Traversed counts remotes that changed directories; Listed counts
	// remotes that requested listings.
	Traversed int
	Listed    int
	// CredentialPairs counts unique username:password combinations seen.
	CredentialPairs int
	// AnonymousLogins counts successful anonymous sessions.
	AnonymousLogins int
	// Uploads / Deletes count write activity (probe campaigns upload and
	// then delete their markers).
	Uploads int
	Deletes int
	// BounceAttempts counts PORT commands naming third parties;
	// BounceTargets the distinct third-party addresses named.
	BounceAttempts int
	BounceTargets  map[string]int
	// AuthTLS counts remotes that issued AUTH (certificate
	// fingerprinting per §VIII).
	AuthTLS int
	// CVEAttempts counts distinct remotes probing SITE CPFR/CPTO
	// (CVE-2015-3306; the paper observed one).
	CVEAttempts int
	// RootLogins counts distinct remotes attempting the Seagate
	// root/no-password exploit (the paper observed one).
	RootLogins int
	// MkdirOnly counts remotes that created directories without
	// uploading — the WaReZ-transport signature.
	MkdirOnly int
	// TopSourcePrefix reports the /8 with the most scanners and its
	// share (the paper's "over 30% from China Unicom Henan" analogue).
	TopSourcePrefix      string
	TopSourcePrefixShare float64
}

// Summarize folds a deployment into a Summary. Streaming deployments
// finalize their accumulator directly; buffered deployments replay every
// retained Log through a fresh accumulator — one fold implementation serves
// both paths, which is what makes streamed and buffered tables byte-identical
// (TestStreamedMatchesBufferedSummary). Every fold is commutative and the
// finalize tie-breaks lexicographically, so the replay order cannot matter.
func Summarize(d *Deployment) Summary {
	return Replay(d).Summary()
}

// Replay folds a deployment's state into an accumulator: the streaming
// accumulator as-is, or the buffered Logs replayed event by event.
func Replay(d *Deployment) *Accumulator {
	if d.Acc != nil {
		return d.Acc
	}
	acc := NewAccumulator()
	for ip, log := range d.Logs {
		ipStr := ip.String()
		lure := d.Lures[ip]
		if lure == "" {
			lure = LureWebroot
		}
		acc.Register(ipStr, lure, time.Time{})
		for _, e := range log.Events() {
			acc.observe(ipStr, e)
		}
	}
	return acc
}

// Render formats the summary as a §VIII-style report.
func Render(s Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VIII — Honeypot study\n")
	fmt.Fprintf(&b, "  unique scanning IPs:      %d\n", s.UniqueScanners)
	fmt.Fprintf(&b, "  top source prefix:        %s (%.1f%%)\n", s.TopSourcePrefix, s.TopSourcePrefixShare)
	fmt.Fprintf(&b, "  spoke FTP:                %d\n", s.SpokeFTP)
	fmt.Fprintf(&b, "  HTTP GET on port 21:      %d\n", s.HTTPGet)
	fmt.Fprintf(&b, "  traversed directories:    %d\n", s.Traversed)
	fmt.Fprintf(&b, "  listed directories:       %d\n", s.Listed)
	fmt.Fprintf(&b, "  credential pairs tried:   %d\n", s.CredentialPairs)
	fmt.Fprintf(&b, "  anonymous logins:         %d\n", s.AnonymousLogins)
	fmt.Fprintf(&b, "  uploads / deletes:        %d / %d\n", s.Uploads, s.Deletes)
	fmt.Fprintf(&b, "  PORT bounce attempts:     %d toward %d distinct targets\n",
		s.BounceAttempts, len(s.BounceTargets))
	fmt.Fprintf(&b, "  AUTH TLS fingerprinting:  %d\n", s.AuthTLS)
	fmt.Fprintf(&b, "  CVE-2015-3306 attempts:   %d\n", s.CVEAttempts)
	fmt.Fprintf(&b, "  root/no-password logins:  %d\n", s.RootLogins)
	fmt.Fprintf(&b, "  mkdir-without-upload:     %d\n", s.MkdirOnly)
	return b.String()
}
