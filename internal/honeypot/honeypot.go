// Package honeypot implements §VIII's measurement apparatus: anonymous,
// world-writable FTP servers that record every interaction, plus the
// summarizer that turns interaction logs into the paper's reported
// statistics (scanning IPs, FTP speakers, credential guesses, write probes,
// PORT-bounce attempts, exploit attempts, AUTH TLS fingerprinting).
package honeypot

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// Log records one honeypot's observed events. It implements
// ftpserver.Observer and is safe for concurrent sessions.
type Log struct {
	mu      sync.Mutex
	events  []ftpserver.Event
	counter *obs.Counter
}

// BindCounter mirrors every subsequently recorded event into c — the
// registry view of honeypot activity. Bind before traffic flows.
func (l *Log) BindCounter(c *obs.Counter) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.counter = c
}

// Event implements ftpserver.Observer.
func (l *Log) Event(e ftpserver.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
	if l.counter != nil {
		l.counter.Inc()
	}
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []ftpserver.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ftpserver.Event(nil), l.events...)
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Deployment is a set of live honeypots on a simulated network.
type Deployment struct {
	IPs  []simnet.IP
	Logs map[simnet.IP]*Log
}

// BindMetrics mirrors every honeypot's event stream into the registry's
// honeypot.events counter. Bind before the attacker fleet runs.
func (d *Deployment) BindMetrics(reg *obs.Registry) {
	c := reg.Counter("honeypot.events")
	for _, log := range d.Logs {
		log.BindCounter(c)
	}
}

// baitFS builds the honeypot tree: writable root plus the web-root bait
// directories the paper populated after observing attackers' blind
// traversals (cgi-bin, www, public_html).
func baitFS() *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm777)
	for _, name := range []string{"cgi-bin", "www", "public_html", "incoming"} {
		d := root.Add(vfs.NewDir(name, vfs.Perm777))
		d.Add(vfs.NewFile("index.html", vfs.Perm644, 1024))
	}
	docs := root.Add(vfs.NewDir("files", vfs.Perm755))
	docs.Add(vfs.NewFile("readme.txt", vfs.Perm644, 512))
	return vfs.New(root)
}

// Deploy installs count honeypots starting at base on the provider. The
// honeypots pose as a ProFTPD server vulnerable-looking enough to attract
// CVE probes and accept any anonymous activity.
func Deploy(provider *simnet.StaticProvider, base simnet.IP, count int, cert *certs.Cert) (*Deployment, error) {
	if count <= 0 {
		return nil, fmt.Errorf("honeypot: count must be positive")
	}
	d := &Deployment{Logs: make(map[simnet.IP]*Log, count)}
	for i := 0; i < count; i++ {
		ip := simnet.IP(uint64(base) + uint64(i))
		log := &Log{}
		cfg := ftpserver.Config{
			Pers:           personality.ByKey(personality.KeyProFTPD135),
			FS:             baitFS(),
			HostName:       fmt.Sprintf("honeypot-%d.example.edu", i),
			PublicIP:       ip,
			AllowAnonymous: true,
			AnonWritable:   true,
			Users:          map[string]string{}, // all real logins fail but are recorded
			Cert:           cert,
			Observer:       log,
			IdleTimeout:    20 * time.Second,
		}
		srv, err := ftpserver.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("honeypot: building server %d: %w", i, err)
		}
		provider.Add(ip, 21, srv.SimHandler())
		d.IPs = append(d.IPs, ip)
		d.Logs[ip] = log
	}
	return d, nil
}

// Summary aggregates a deployment's logs into §VIII's statistics.
type Summary struct {
	// UniqueScanners counts distinct remote IPs that connected at all.
	UniqueScanners int
	// SpokeFTP counts remotes that issued at least one FTP command.
	SpokeFTP int
	// HTTPGet counts remotes that tried an HTTP GET against port 21.
	HTTPGet int
	// Traversed counts remotes that changed directories; Listed counts
	// remotes that requested listings.
	Traversed int
	Listed    int
	// CredentialPairs counts unique username:password combinations seen.
	CredentialPairs int
	// AnonymousLogins counts successful anonymous sessions.
	AnonymousLogins int
	// Uploads / Deletes count write activity (probe campaigns upload and
	// then delete their markers).
	Uploads int
	Deletes int
	// BounceAttempts counts PORT commands naming third parties;
	// BounceTargets the distinct third-party addresses named.
	BounceAttempts int
	BounceTargets  map[string]int
	// AuthTLS counts remotes that issued AUTH (certificate
	// fingerprinting per §VIII).
	AuthTLS int
	// CVEAttempts counts distinct remotes probing SITE CPFR/CPTO
	// (CVE-2015-3306; the paper observed one).
	CVEAttempts int
	// RootLogins counts distinct remotes attempting the Seagate
	// root/no-password exploit (the paper observed one).
	RootLogins int
	// MkdirOnly counts remotes that created directories without
	// uploading — the WaReZ-transport signature.
	MkdirOnly int
	// TopSourcePrefix reports the /8 with the most scanners and its
	// share (the paper's "over 30% from China Unicom Henan" analogue).
	TopSourcePrefix      string
	TopSourcePrefixShare float64
}

// Summarize folds all logs into a Summary.
func Summarize(d *Deployment) Summary {
	s := Summary{BounceTargets: make(map[string]int)}
	type remoteState struct {
		spokeFTP  bool
		httpGet   bool
		traversed bool
		listed    bool
		authTLS   bool
		cve       bool
		rootLogin bool
		uploads   int
		mkdirs    int
	}
	remotes := map[string]*remoteState{}
	creds := map[string]bool{}
	prefixCounts := map[string]int{}

	for _, log := range d.Logs {
		for _, e := range log.Events() {
			rs, ok := remotes[e.RemoteIP]
			if !ok {
				rs = &remoteState{}
				remotes[e.RemoteIP] = rs
			}
			switch e.Kind {
			case ftpserver.EventCommand:
				switch e.Command {
				case "GET", "POST", "HEAD":
					rs.httpGet = true
				case "CWD", "CDUP":
					rs.spokeFTP = true
					rs.traversed = true
				case "LIST", "NLST":
					rs.spokeFTP = true
					rs.listed = true
				case "AUTH":
					rs.spokeFTP = true
					rs.authTLS = true
				case "SITE":
					rs.spokeFTP = true
					upper := strings.ToUpper(e.Arg)
					if strings.HasPrefix(upper, "CPFR") || strings.HasPrefix(upper, "CPTO") {
						rs.cve = true
					}
				case "MKD", "XMKD":
					rs.spokeFTP = true
					rs.mkdirs++
				case "DELE":
					rs.spokeFTP = true
					s.Deletes++
				default:
					rs.spokeFTP = true
				}
			case ftpserver.EventLoginOK:
				if e.Detail == "anonymous" {
					s.AnonymousLogins++
				}
			case ftpserver.EventLoginFail:
				if e.User != "" || e.Pass != "" {
					creds[e.User+":"+e.Pass] = true
				}
				if e.User == "root" && e.Pass == "" {
					rs.rootLogin = true
				}
			case ftpserver.EventUpload:
				rs.uploads++
				s.Uploads++
			case ftpserver.EventPortBounceAttempt:
				s.BounceAttempts++
				s.BounceTargets[e.Detail]++
			}
		}
	}

	for ip, rs := range remotes {
		s.UniqueScanners++
		if rs.spokeFTP {
			s.SpokeFTP++
		}
		if rs.httpGet {
			s.HTTPGet++
		}
		if rs.traversed {
			s.Traversed++
		}
		if rs.listed {
			s.Listed++
		}
		if rs.authTLS {
			s.AuthTLS++
		}
		if rs.cve {
			s.CVEAttempts++
		}
		if rs.rootLogin {
			s.RootLogins++
		}
		if rs.mkdirs > 0 && rs.uploads == 0 {
			s.MkdirOnly++
		}
		if slash := strings.IndexByte(ip, '.'); slash > 0 {
			prefixCounts[ip[:slash]+".0.0.0/8"]++
		}
	}
	s.CredentialPairs = len(creds)
	for prefix, n := range prefixCounts {
		if n > prefixCounts[s.TopSourcePrefix] || s.TopSourcePrefix == "" {
			s.TopSourcePrefix = prefix
		}
	}
	if s.UniqueScanners > 0 {
		s.TopSourcePrefixShare = 100 * float64(prefixCounts[s.TopSourcePrefix]) / float64(s.UniqueScanners)
	}
	return s
}

// Render formats the summary as a §VIII-style report.
func Render(s Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VIII — Honeypot study\n")
	fmt.Fprintf(&b, "  unique scanning IPs:      %d\n", s.UniqueScanners)
	fmt.Fprintf(&b, "  top source prefix:        %s (%.1f%%)\n", s.TopSourcePrefix, s.TopSourcePrefixShare)
	fmt.Fprintf(&b, "  spoke FTP:                %d\n", s.SpokeFTP)
	fmt.Fprintf(&b, "  HTTP GET on port 21:      %d\n", s.HTTPGet)
	fmt.Fprintf(&b, "  traversed directories:    %d\n", s.Traversed)
	fmt.Fprintf(&b, "  listed directories:       %d\n", s.Listed)
	fmt.Fprintf(&b, "  credential pairs tried:   %d\n", s.CredentialPairs)
	fmt.Fprintf(&b, "  anonymous logins:         %d\n", s.AnonymousLogins)
	fmt.Fprintf(&b, "  uploads / deletes:        %d / %d\n", s.Uploads, s.Deletes)
	fmt.Fprintf(&b, "  PORT bounce attempts:     %d toward %d distinct targets\n",
		s.BounceAttempts, len(s.BounceTargets))
	fmt.Fprintf(&b, "  AUTH TLS fingerprinting:  %d\n", s.AuthTLS)
	fmt.Fprintf(&b, "  CVE-2015-3306 attempts:   %d\n", s.CVEAttempts)
	fmt.Fprintf(&b, "  root/no-password logins:  %d\n", s.RootLogins)
	fmt.Fprintf(&b, "  mkdir-without-upload:     %d\n", s.MkdirOnly)
	return b.String()
}
