package worldgen

import (
	"fmt"
	"hash/fnv"
	"testing"

	"ftpcloud/internal/simnet"
)

// benignWorldDigest folds every present host truth of a world into one
// FNV-64a digest. Fields are hashed explicitly (not via struct formatting)
// so the digest is stable when HostTruth later grows fields that must stay
// zero on benign default-parameter worlds.
func benignWorldDigest(t *testing.T, w *World) uint64 {
	t.Helper()
	h := fnv.New64a()
	base := uint64(w.ScanBase)
	present := 0
	for off := uint64(0); off < w.ScanSize; off++ {
		ip := simnet.IP(base + off)
		truth, ok := w.Truth(ip)
		if !ok {
			continue
		}
		present++
		if truth.Service != ServiceNone {
			t.Fatalf("%s: benign world derived service %v; zero-value ServiceMix must stay legacy", ip, truth.Service)
		}
		asn := uint32(0)
		if truth.AS != nil {
			asn = truth.AS.Number
		}
		fmt.Fprintf(h, "%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v\n",
			truth.IP, truth.FTP, truth.NonFTPOpen, asn, truth.PersonalityKey,
			truth.Anonymous, truth.Writable, truth.FTPS, truth.RequireTLS,
			truth.CertName, truth.NAT, truth.InternalIP, truth.Exposed,
			truth.Tree, truth.Sensitive, truth.Robots, truth.HTTP,
			truth.Scripting, truth.Campaigns, truth.RequestLimit,
			truth.Fault, truth.HostName, truth.Fault.String())
	}
	if present == 0 {
		t.Fatal("benign world digest covered no hosts; test vacuous")
	}
	return h.Sum64()
}

// Golden digests of default-parameter worlds, captured before the ServiceMix
// layer existed. Every later change to worldgen must keep these exact values:
// a benign world (no hostile rate, no service mix) is bit-identical across
// versions because new derivations only draw from end-appended salts.
var benignGoldenDigests = []struct {
	seed   uint64
	scale  int
	digest uint64
}{
	{seed: 42, scale: 262144, digest: 0xff4730e51c0f9234},
	{seed: 7, scale: 524288, digest: 0xda4ff489eb5ee2d},
}

// TestBenignWorldBitIdentity: default-params worldgen output is byte-for-byte
// identical to the worlds generated before the ServiceMix (and any future)
// layer — the regression guard for the end-appended-salt discipline.
func TestBenignWorldBitIdentity(t *testing.T) {
	for _, g := range benignGoldenDigests {
		w, err := New(DefaultParams(g.seed, g.scale))
		if err != nil {
			t.Fatal(err)
		}
		got := benignWorldDigest(t, w)
		if got != g.digest {
			t.Errorf("seed=%d scale=%d: benign world digest %#x, want golden %#x — default worlds must stay bit-identical",
				g.seed, g.scale, got, g.digest)
		}
	}
}
