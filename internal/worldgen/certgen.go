package worldgen

import (
	"fmt"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/personality"
)

// Named certificates reproducing Table XII (most common FTPS certificates)
// and Table XIII (device families shipping identical certificates).
func namedCertSpecs() []certs.Spec {
	return []certs.Spec{
		// Hosting wildcard certificates (browser-trusted).
		{Name: "cert-opentransfer", CommonName: "*.opentransfer.com"},
		{Name: "cert-securesites", CommonName: "*.securesites.com"},
		{Name: "cert-homepl", CommonName: "*.home.pl"},
		{Name: "cert-bluehost", CommonName: "*.bluehost.com"},
		{Name: "cert-bizmw", CommonName: "*.bizmw.com"},
		{Name: "cert-turnkey", CommonName: "*.turnkeywebspace.com"},
		{Name: "cert-sakura", CommonName: "*.sakura.ne.jp"},
		// Self-signed defaults.
		{Name: "cert-localhost", CommonName: "localhost", SelfSigned: true},
		{Name: "cert-servu", CommonName: "ftp.Serv-U.com", SelfSigned: true},
		{Name: "cert-ispgateway", CommonName: "ispgateway.de", SelfSigned: true},
		// Device-family certificates (Table XIII).
		{Name: "cert-qnap1", CommonName: "QNAP NAS", SelfSigned: true},
		{Name: "cert-qnap2", CommonName: "NAS.qnap.com", SelfSigned: true},
		{Name: "cert-zyxel", CommonName: "ZyXEL Device", SelfSigned: true},
		{Name: "cert-buffalo", CommonName: "BUFFALO LinkStation", SelfSigned: true},
		{Name: "cert-lge", CommonName: "LG Electronics NAS", SelfSigned: true},
		{Name: "cert-axentra", CommonName: "Axentra HipServ", SelfSigned: true},
		{Name: "cert-rhinosoft", CommonName: "RhinoSoft Serv-U", SelfSigned: true},
		{Name: "cert-symon", CommonName: "Symon Media Player", SelfSigned: true},
		{Name: "cert-asustor", CommonName: "AsusTor NAS", SelfSigned: true},
		{Name: "cert-synology", CommonName: "synology.com", SelfSigned: true},
	}
}

// deviceCertNames maps device personalities to their family certificates.
var deviceCertNames = map[string]string{
	personality.KeyQNAPNAS:     "cert-qnap1",
	personality.KeyZyXELNAS:    "cert-zyxel",
	personality.KeyZyXELDSL:    "cert-zyxel",
	personality.KeyZyXELUSG:    "cert-zyxel",
	personality.KeyBuffaloNAS:  "cert-buffalo",
	personality.KeyLGENAS:      "cert-lge",
	personality.KeyAxentra:     "cert-axentra",
	personality.KeySymonMedia:  "cert-symon",
	personality.KeyAsusTorNAS:  "cert-asustor",
	personality.KeySynologyNAS: "cert-synology",
	personality.KeySeagate:     "cert-qnap2",
	personality.KeyServU64:     "cert-rhinosoft",
	personality.KeyServU15:     "cert-servu",
}

// uniqueCertCount sizes the per-host "unique" certificate pool: the paper
// found 793K unique certificates across 3.4M FTPS servers; the pool scales
// with the world but is bounded to keep generation fast.
func uniqueCertCount(p Params) int {
	n := paperUniqueCerts / p.Scale
	if n < 8 {
		return 8
	}
	if n > 384 {
		return 384
	}
	return n
}

// buildCertPool mints every certificate the world needs.
func buildCertPool(p Params) (*certs.Pool, []string, error) {
	specs := namedCertSpecs()
	unique := uniqueCertCount(p)
	uniqueNames := make([]string, 0, unique)
	for i := 0; i < unique; i++ {
		name := fmt.Sprintf("unique-%03d", i)
		specs = append(specs, certs.Spec{
			Name:       name,
			CommonName: fmt.Sprintf("srv-%03d.example.net", i),
			SelfSigned: i%2 == 0, // half the ecosystem is self-signed (§IX)
		})
		uniqueNames = append(uniqueNames, name)
	}
	pool, err := certs.GeneratePool(p.Seed^0xcafe, specs)
	if err != nil {
		return nil, nil, err
	}
	return pool, uniqueNames, nil
}
