package worldgen

// Params controls world synthesis. The zero value is unusable; start from
// DefaultParams and override.
type Params struct {
	// Seed derandomizes everything in the world.
	Seed uint64
	// Scale divides the paper's full-Internet counts. At Scale=2048 the
	// scanned space is ~1.8M addresses holding ~6.7K FTP servers; tests
	// use larger scales for speed.
	Scale int

	// FTPRateOfOpen is the fraction of open-port-21 hosts that speak FTP
	// (paper: 13.79M of 21.83M = 63.16%). The remainder accept the
	// connection but send a non-FTP banner.
	FTPRateOfOpen float64

	// AnonWritableRate is the fraction of anonymous servers that permit
	// anonymous writes (paper evidence: ≥19.4K of 1.12M ≈ 1.7%; the true
	// rate is necessarily higher than the evidence-based lower bound).
	AnonWritableRate float64

	// RobotsRate is the fraction of anonymous servers carrying a
	// robots.txt (paper: 11.3K of 1.12M ≈ 1%); RobotsExcludeAllRate is
	// the fraction of those that exclude the entire tree (5.9K of 11.3K).
	RobotsRate           float64
	RobotsExcludeAllRate float64

	// ExposureRate is the fraction of anonymous servers whose listings
	// contain any data at all (paper: 268K of 1.12M = 24%).
	ExposureRate float64

	// FTPSRate is the probability that an FTPS-capable implementation
	// has TLS enabled; combined with the capable share of the population
	// it lands at the paper's 25%-of-all-servers support rate.
	// FTPSRequireRate is the fraction of FTPS servers requiring TLS
	// before login (85K of 3.4M = 2.5%); FTPSSelfSignedRate the
	// fraction using self-signed certificates.
	FTPSRate           float64
	FTPSRequireRate    float64
	FTPSSelfSignedRate float64

	// HTTPOverlapRate is the fraction of FTP hosts also running a web
	// server (paper/Censys: 65.27%); ScriptingRate the fraction of FTP
	// hosts whose web server reports PHP/ASP.NET (15.01%).
	HTTPOverlapRate float64
	ScriptingRate   float64

	// NATRate is the fraction of anonymous consumer devices behind a NAT
	// (drives the PASV internal-IP leak; paper: 18.9K anon servers).
	NATRate float64

	// DeepTreeRate is the fraction of anonymous servers whose accessible
	// tree needs more than the enumerator's request cap (paper: 26.7K of
	// 1.12M ≈ 2.4%).
	DeepTreeRate float64

	// HostileRate is the fraction of FTP hosts assigned a hostile fault
	// personality (slow drip, mid-session reset, stalled data channels,
	// garbage replies, premature EOF, connect latency). Zero — the
	// default — generates the calibrated benign world bit-for-bit; chaos
	// runs opt in.
	HostileRate float64
	// FaultMix weights the hostile classes; the zero value means
	// DefaultFaultMix.
	FaultMix FaultMix

	// Epoch advances the world through deterministic churn for
	// longitudinal studies: each epoch re-rolls a ChurnRate fraction of
	// host-presence slots at the AS density (hosts leave, new ones
	// appear), redraws software for an UpgradeRate fraction of hosts
	// (version migrations), and renumbers a ReallocRate fraction of tail
	// ASes (prefix reallocation). Everything derives from (Seed, Epoch),
	// so the same pair yields the same world in any process — and Epoch 0
	// draws nothing, staying bit-identical to pre-longitudinal worlds.
	Epoch uint64
	// ChurnRate is the per-epoch fraction of presence slots re-rolled;
	// UpgradeRate the per-epoch fraction of hosts redrawing their
	// implementation; ReallocRate the per-epoch fraction of tail ASes
	// reallocated. All three only matter when Epoch > 0.
	ChurnRate   float64
	UpgradeRate float64
	ReallocRate float64

	// ServiceMix puts real non-FTP services (HTTP, SSH, TLS, telnet,
	// garbage, silence) on port 21 of the non-FTP-open population — the
	// unexpected-service layer LZR identifies and sheds. The zero value —
	// the default — keeps the legacy junk handler and generates the
	// calibrated world bit-for-bit; mixed-world runs opt in. See
	// services.go.
	ServiceMix ServiceMix
}

// DefaultParams returns parameters calibrated to the paper's published
// aggregates at the given scale.
func DefaultParams(seed uint64, scale int) Params {
	if scale < 1 {
		scale = 1
	}
	return Params{
		Seed:  seed,
		Scale: scale,

		FTPRateOfOpen:    0.6316,
		AnonWritableRate: 0.020,

		RobotsRate:           0.010,
		RobotsExcludeAllRate: 0.52,

		ExposureRate: 0.24,

		FTPSRate:           0.46,
		FTPSRequireRate:    0.025,
		FTPSSelfSignedRate: 0.50,

		HTTPOverlapRate: 0.6527,
		ScriptingRate:   0.1501,

		NATRate: 0.55,

		DeepTreeRate: 0.024,

		ChurnRate:   0.08,
		UpgradeRate: 0.12,
		ReallocRate: 0.05,
	}
}

// Paper-scale constants used to derive scaled counts.
const (
	paperIPsScanned  = 3_684_755_175
	paperOpenPort21  = 21_832_903
	paperFTPServers  = 13_789_641
	paperAnonServers = 1_123_326
	paperUniqueCerts = 793_000
)

// scaled divides a paper-scale count by the world scale, keeping at least
// min when the paper count is nonzero.
func (p Params) scaled(paperCount int, min int) int {
	v := paperCount / p.Scale
	if v < min && paperCount > 0 {
		return min
	}
	return v
}

// ScanSpaceSize returns the number of addresses the scan must cover to
// mirror the paper's funnel (Table I).
func (p Params) ScanSpaceSize() uint64 {
	return uint64(p.scaled(paperIPsScanned, 4096))
}
