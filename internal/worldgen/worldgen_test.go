package worldgen

import (
	"io"
	"testing"
	"time"

	"ftpcloud/internal/ftp"
	"ftpcloud/internal/simnet"
)

// testWorld builds a small world for unit tests: scale 8192 gives
// ~450K scanned addresses holding ~1.7K FTP servers.
func testWorld(t testing.TB, scale int) *World {
	t.Helper()
	w, err := New(DefaultParams(42, scale))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldDeterministic(t *testing.T) {
	a := testWorld(t, 32768)
	b := testWorld(t, 32768)
	sa := a.Audit(7)
	sb := b.Audit(7)
	if sa.FTP != sb.FTP || sa.Anonymous != sb.Anonymous || sa.Writable != sb.Writable {
		t.Errorf("same seed diverged: %+v vs %+v", sa, sb)
	}
	c, err := New(DefaultParams(43, 32768))
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Audit(7)
	if sa.FTP == sc.FTP && sa.Anonymous == sc.Anonymous && sa.FTPS == sc.FTPS {
		t.Error("different seeds produced identical worlds (suspicious)")
	}
}

func TestTruthIsPure(t *testing.T) {
	w := testWorld(t, 32768)
	// Find an FTP host.
	var found simnet.IP
	for off := uint64(0); off < w.ScanSize; off++ {
		ip := simnet.IP(uint64(w.ScanBase) + off)
		if tr, ok := w.Truth(ip); ok && tr.FTP {
			found = ip
			break
		}
	}
	if found == 0 {
		t.Fatal("no FTP host in test world")
	}
	t1, _ := w.Truth(found)
	t2, _ := w.Truth(found)
	if t1.PersonalityKey != t2.PersonalityKey || t1.Anonymous != t2.Anonymous ||
		t1.Tree != t2.Tree || t1.CertName != t2.CertName {
		t.Errorf("Truth not pure: %+v vs %+v", t1, t2)
	}
}

// TestCalibration checks the world's aggregates against the paper's
// distributions at a moderate scale. Tolerances are loose: the generator is
// stochastic and the scaled populations are small.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration walk is slow")
	}
	w := testWorld(t, 4096)
	s := w.Audit(1)

	ftpTarget := float64(paperFTPServers) / 4096
	if ratio := float64(s.FTP) / ftpTarget; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("FTP count = %d, want ≈%.0f (ratio %.2f)", s.FTP, ftpTarget, ratio)
	}

	anonRate := float64(s.Anonymous) / float64(s.FTP)
	if anonRate < 0.05 || anonRate > 0.13 {
		t.Errorf("anonymous rate = %.3f, paper has 0.081", anonRate)
	}

	ftpOfOpen := float64(s.FTP) / float64(s.Open)
	if ftpOfOpen < 0.5 || ftpOfOpen > 0.8 {
		t.Errorf("FTP/open = %.3f, paper has 0.632", ftpOfOpen)
	}

	ftpsRate := float64(s.FTPS) / float64(s.FTP)
	if ftpsRate < 0.15 || ftpsRate > 0.40 {
		t.Errorf("FTPS rate = %.3f, paper has 0.25", ftpsRate)
	}

	exposedRate := float64(s.Exposed) / float64(s.Anonymous)
	if exposedRate < 0.15 || exposedRate > 0.38 {
		t.Errorf("exposure rate = %.3f, paper has 0.24", exposedRate)
	}

	writableRatio := float64(s.Writable) / float64(s.Anonymous)
	if writableRatio < 0.005 || writableRatio > 0.06 {
		t.Errorf("writable rate = %.3f, paper evidence is ≈0.017", writableRatio)
	}

	// Concentration: the paper's 78-ASes-for-50% (Figure 1 / Table III).
	n50 := ASesForShare(s.FTPByAS, 0.5)
	if n50 < 25 || n50 > 220 {
		t.Errorf("ASes for 50%% of FTP = %d, paper has 78", n50)
	}
	n50anon := ASesForShare(s.AnonByAS, 0.5)
	if n50anon < 10 || n50anon > 160 {
		t.Errorf("ASes for 50%% of anon = %d, paper has 42", n50anon)
	}
	if n50anon > n50 {
		t.Errorf("anonymous servers should be more concentrated: %d vs %d", n50anon, n50)
	}
}

func TestHomePLShape(t *testing.T) {
	w := testWorld(t, 8192)
	s := w.Audit(1)
	homeFTP := s.FTPByAS[12824]
	homeAnon := s.AnonByAS[12824]
	if homeFTP == 0 {
		t.Fatal("home.pl AS has no FTP servers")
	}
	rate := float64(homeAnon) / float64(homeFTP)
	if rate < 0.55 || rate > 0.95 {
		t.Errorf("home.pl anonymous rate = %.2f, paper has 0.754", rate)
	}
}

func TestDeviceAnonymousRates(t *testing.T) {
	w := testWorld(t, 2048)
	s := w.Audit(1)
	// Printers ship with anonymous FTP enabled (Table VII: RICOH 87%,
	// Lexmark 99.7%); QNAP NAS mostly does not (2.8%).
	check := func(key string, lo, hi float64) {
		total := s.ByPersonality[key]
		anon := s.AnonByPersonality[key]
		if total < 5 {
			t.Logf("skipping %s: only %d hosts at this scale", key, total)
			return
		}
		rate := float64(anon) / float64(total)
		if rate < lo || rate > hi {
			t.Errorf("%s anonymous rate = %.2f (n=%d), want [%.2f, %.2f]",
				key, rate, total, lo, hi)
		}
	}
	check("ricoh-printer", 0.6, 1.0)
	check("qnap-turbo-nas", 0.0, 0.15)
	check("fritzbox-dsl", 0.0, 0.02)
	check("buffalo-linkstation", 0.15, 0.65)
}

func TestLookupServesFTP(t *testing.T) {
	w := testWorld(t, 32768)
	nw := simnet.NewNetwork(w)

	// Find an anonymous host via truth, then actually speak FTP to it.
	var target simnet.IP
	for off := uint64(0); off < w.ScanSize; off++ {
		ip := simnet.IP(uint64(w.ScanBase) + off)
		if tr, ok := w.Truth(ip); ok && tr.FTP && tr.Anonymous && !tr.RequireTLS {
			target = ip
			break
		}
	}
	if target == 0 {
		t.Fatal("no anonymous host found")
	}
	nc, err := nw.DialFrom(simnet.MustParseIP("99.0.0.1"), target, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = 5 * time.Second
	banner, err := c.ReadReply()
	if err != nil || banner.Code != ftp.CodeReady {
		t.Fatalf("banner: %+v %v", banner, err)
	}
	if r, _ := c.Cmd("USER", "anonymous"); r.Code != ftp.CodeNeedPassword {
		t.Fatalf("USER: %+v", r)
	}
	if r, _ := c.Cmd("PASS", "research@example.org"); r.Code != ftp.CodeLoggedIn {
		t.Fatalf("PASS: %+v", r)
	}
}

func TestFilesystemPersistsAcrossConnections(t *testing.T) {
	w := testWorld(t, 8192)
	nw := simnet.NewNetwork(w)

	var target simnet.IP
	for off := uint64(0); off < w.ScanSize; off++ {
		ip := simnet.IP(uint64(w.ScanBase) + off)
		if tr, ok := w.Truth(ip); ok && tr.FTP && tr.Anonymous && tr.Writable && !tr.RequireTLS {
			target = ip
			break
		}
	}
	if target == 0 {
		t.Skip("no writable host at this scale")
	}

	upload := func() {
		nc, err := nw.DialFrom(simnet.MustParseIP("99.0.0.1"), target, 21)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		c := ftp.NewConn(nc)
		c.Timeout = 5 * time.Second
		c.ReadReply()
		c.Cmd("USER", "anonymous")
		c.Cmd("PASS", "x@x")
		r, _ := c.Cmd("PASV", "")
		hp, err := ftp.ParsePASVReply(r.Text())
		if err != nil {
			t.Fatal(err)
		}
		dc, err := nw.DialFrom(simnet.MustParseIP("99.0.0.1"),
			simnet.IPFromOctets(hp.IP[0], hp.IP[1], hp.IP[2], hp.IP[3]), hp.Port)
		if err != nil {
			// NAT-leaked address: dial the control peer instead.
			dc, err = nw.DialFrom(simnet.MustParseIP("99.0.0.1"), target, hp.Port)
			if err != nil {
				t.Fatal(err)
			}
		}
		if r, _ := c.Cmd("STOR", "/persist-probe.txt"); !r.Preliminary() {
			t.Fatalf("STOR: %+v", r)
		}
		dc.Write([]byte("marker"))
		dc.Close()
		c.ReadReply()
	}
	upload()

	// A second, separate connection must see the upload.
	nc, err := nw.DialFrom(simnet.MustParseIP("99.0.0.2"), target, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = 5 * time.Second
	c.ReadReply()
	c.Cmd("USER", "anonymous")
	c.Cmd("PASS", "x@x")
	if r, _ := c.Cmd("SIZE", "/persist-probe.txt"); r.Code != 213 {
		t.Fatalf("uploaded file not visible on second connection: %+v", r)
	}
}

func TestNonFTPHosts(t *testing.T) {
	w := testWorld(t, 8192)
	nw := simnet.NewNetwork(w)
	var target simnet.IP
	for off := uint64(0); off < w.ScanSize; off++ {
		ip := simnet.IP(uint64(w.ScanBase) + off)
		if tr, ok := w.Truth(ip); ok && tr.NonFTPOpen {
			target = ip
			break
		}
	}
	if target == 0 {
		t.Skip("no non-FTP open host at this scale")
	}
	nc, err := nw.DialFrom(simnet.MustParseIP("99.0.0.1"), target, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf, _ := io.ReadAll(nc)
	// Whatever arrives must not be an FTP 220 banner.
	if len(buf) >= 4 && string(buf[:4]) == "220 " {
		t.Errorf("non-FTP host sent an FTP banner: %q", buf)
	}
}

func TestCampaignPlanting(t *testing.T) {
	w := testWorld(t, 2048)
	s := w.Audit(1)
	if s.Writable == 0 {
		t.Skip("no writable hosts at this scale")
	}
	total := 0
	for _, n := range s.CampaignServers {
		total += n
	}
	if total == 0 {
		t.Error("writable hosts exist but no campaigns planted")
	}
}

func TestScaledHelpers(t *testing.T) {
	p := DefaultParams(1, 2048)
	if p.ScanSpaceSize() != uint64(paperIPsScanned/2048) {
		t.Errorf("ScanSpaceSize = %d", p.ScanSpaceSize())
	}
	if got := p.scaled(100, 5); got != 5 {
		t.Errorf("scaled floor = %d", got)
	}
	if _, err := New(Params{Scale: 0}); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestTreeKindsBuild(t *testing.T) {
	kinds := []treeKind{
		treeEmpty, treeWebroot, treeNASPersonal, treePrinterScans,
		treeRouterUSB, treeModemConfig, treeGenericPub,
		treeOSRootLinux, treeOSRootWindows, treeDeep,
	}
	for _, k := range kinds {
		fs := buildTree(k, 123, true)
		if fs == nil || fs.Root() == nil {
			t.Errorf("%v: nil tree", k)
		}
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		// Determinism.
		a := buildTree(k, 99, true).TotalEntries()
		b := buildTree(k, 99, true).TotalEntries()
		if a != b {
			t.Errorf("%v: tree not deterministic (%d vs %d entries)", k, a, b)
		}
	}
	if buildTree(treeEmpty, 1, false).TotalEntries() != 1 {
		t.Error("empty tree should have only the root")
	}
	if buildTree(treeDeep, 1, false).TotalEntries() < 500 {
		t.Error("deep tree should exceed the request cap")
	}
}

func TestOSRootMarkers(t *testing.T) {
	fs := buildTree(treeOSRootLinux, 5, false)
	for _, p := range []string{"/bin", "/etc", "/var", "/boot", "/etc/passwd", "/etc/shadow"} {
		if fs.Lookup(p) == nil {
			t.Errorf("linux os-root missing %s", p)
		}
	}
	fs = buildTree(treeOSRootWindows, 5, false)
	for _, p := range []string{"/Windows", "/Program Files", "/Users"} {
		if fs.Lookup(p) == nil {
			t.Errorf("windows os-root missing %s", p)
		}
	}
}

func TestASLayoutDisjoint(t *testing.T) {
	w := testWorld(t, 32768)
	// asdb.NewDB already rejects overlap; verify named ASes exist.
	for _, num := range []uint32{12824, 4134, 4766, 3320} {
		if _, ok := w.ASDB.ByNumber(num); !ok {
			t.Errorf("AS%d missing", num)
		}
	}
	if w.ASDB.Len() < 600 {
		t.Errorf("AS count = %d, want named + tail", w.ASDB.Len())
	}
}

func TestCertAssignment(t *testing.T) {
	w := testWorld(t, 2048)
	seenHomePL := false
	var deviceCert, hostingCert int
	for off := uint64(0); off < w.ScanSize; off++ {
		ip := simnet.IP(uint64(w.ScanBase) + off)
		tr, ok := w.Truth(ip)
		if !ok || !tr.FTP || !tr.FTPS {
			continue
		}
		if tr.CertName == "" {
			t.Fatalf("FTPS host without certificate: %+v", tr)
		}
		if w.Certs.Get(tr.CertName) == nil {
			t.Fatalf("host references unknown cert %q", tr.CertName)
		}
		if tr.AS != nil && tr.AS.Number == 12824 {
			seenHomePL = true
			// Hosting boxes carry either the provider wildcard or the
			// stack's self-signed default.
			if tr.CertName != "cert-homepl" && tr.CertName != "cert-localhost" {
				t.Errorf("home.pl host has cert %q", tr.CertName)
			}
		}
		switch tr.CertName {
		case "cert-qnap1", "cert-synology", "cert-buffalo":
			deviceCert++
		case "cert-homepl", "cert-bluehost", "cert-opentransfer", "cert-securesites":
			hostingCert++
		}
	}
	if !seenHomePL {
		t.Log("no home.pl FTPS host at this scale (acceptable)")
	}
	if hostingCert == 0 {
		t.Error("no hosting certificates assigned")
	}
	_ = deviceCert
}
