package worldgen

import (
	"fmt"
	"time"

	"ftpcloud/internal/vfs"
)

// treeKind selects the procedural filesystem profile for a host.
type treeKind int

// Filesystem profiles. Distribution across hosts follows §V of the paper:
// most anonymous servers expose nothing; hosting servers expose web roots;
// consumer NAS devices expose personal data; a small fraction expose an
// OS root.
const (
	treeEmpty treeKind = iota
	treeWebroot
	treeNASPersonal
	treePrinterScans
	treeRouterUSB
	treeModemConfig
	treeGenericPub
	treeOSRootLinux
	treeOSRootWindows
	treeDeep
)

// String names the tree kind.
func (k treeKind) String() string {
	switch k {
	case treeEmpty:
		return "empty"
	case treeWebroot:
		return "webroot"
	case treeNASPersonal:
		return "nas-personal"
	case treePrinterScans:
		return "printer-scans"
	case treeRouterUSB:
		return "router-usb"
	case treeModemConfig:
		return "modem-config"
	case treeGenericPub:
		return "generic-pub"
	case treeOSRootLinux:
		return "os-root-linux"
	case treeOSRootWindows:
		return "os-root-windows"
	case treeDeep:
		return "deep"
	default:
		return "unknown"
	}
}

// worldEpoch anchors synthetic file timestamps near the paper's scan window.
var worldEpoch = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

// mtime derives a plausible modification time.
func mtime(r *rng) time.Time {
	return worldEpoch.Add(-time.Duration(r.intn(3*365*24)) * time.Hour)
}

// addFile attaches a synthetic file with content derived from its seed.
func addFile(r *rng, dir *vfs.Node, name string, perm vfs.Mode, size int64) *vfs.Node {
	f := vfs.NewFile(name, perm, size)
	f.Seed = r.next()
	f.MTime = mtime(r)
	return dir.Add(f)
}

func addDir(r *rng, parent *vfs.Node, name string) *vfs.Node {
	d := vfs.NewDir(name, vfs.Perm755)
	d.MTime = mtime(r)
	return parent.Add(d)
}

// buildTree constructs the filesystem for one host.
func buildTree(kind treeKind, seed uint64, sensitive bool) *vfs.FS {
	r := newRNG(seed)
	root := vfs.NewDir("/", vfs.Perm755)
	root.MTime = mtime(r)
	switch kind {
	case treeWebroot:
		buildWebroot(r, root)
	case treeNASPersonal:
		buildNAS(r, root, sensitive)
	case treePrinterScans:
		buildPrinter(r, root)
	case treeRouterUSB:
		buildRouterUSB(r, root, sensitive)
	case treeModemConfig:
		buildModem(r, root)
	case treeGenericPub:
		buildGenericPub(r, root, sensitive)
	case treeOSRootLinux:
		buildOSRootLinux(r, root, sensitive)
	case treeOSRootWindows:
		buildOSRootWindows(r, root)
	case treeDeep:
		buildDeep(r, root)
	}
	return vfs.New(root)
}

// buildWebroot models shared-hosting accounts: web roots with HTML, images,
// and — on a fraction of hosts — server-side scripting source, .htaccess
// files, and inline secrets (§V "Scripting Source Code").
func buildWebroot(r *rng, root *vfs.Node) {
	webName := []string{"public_html", "htdocs", "www", "wwwroot"}[r.intn(4)]
	web := addDir(r, root, webName)
	addFile(r, web, "index.html", vfs.Perm644, int64(r.rangeInt(500, 20_000)))
	for i, n := 0, r.rangeInt(0, 6); i < n; i++ {
		addFile(r, web, fmt.Sprintf("page%d.html", i+1), vfs.Perm644, int64(r.rangeInt(1_000, 30_000)))
	}
	img := addDir(r, web, "images")
	for i, n := 0, r.rangeInt(2, 12); i < n; i++ {
		ext := []string{"jpg", "png", "gif"}[r.intn(3)]
		addFile(r, img, fmt.Sprintf("img%02d.%s", i+1, ext), vfs.Perm644, int64(r.rangeInt(5_000, 400_000)))
	}
	if r.chance(0.30) { // server-side scripting exposed
		for i, n := 0, r.rangeInt(4, 40); i < n; i++ {
			name := []string{"index.php", "config.php", "db.php", "functions.php",
				"admin.php", "login.asp", "main.asp"}[r.intn(7)]
			if i > 0 {
				name = fmt.Sprintf("inc%02d_%s", i, name)
			}
			addFile(r, web, name, vfs.Perm644, int64(r.rangeInt(500, 40_000)))
		}
		if r.chance(0.13) { // .htaccess exposure (§V)
			addFile(r, web, ".htaccess", vfs.Perm644, int64(r.rangeInt(100, 2_000)))
			for i, n := 0, r.rangeInt(0, 5); i < n; i++ {
				sub := addDir(r, web, fmt.Sprintf("app%d", i+1))
				addFile(r, sub, ".htaccess", vfs.Perm644, int64(r.rangeInt(100, 1_000)))
				addFile(r, sub, "settings.php", vfs.Perm644, int64(r.rangeInt(500, 5_000)))
			}
		}
	}
	if r.chance(0.2) {
		logs := addDir(r, root, "logs")
		addFile(r, logs, "access.log", vfs.Perm644, int64(r.rangeInt(10_000, 4_000_000)))
	}
	if webName != "www" && r.chance(0.25) {
		// The classic web-root convenience symlink.
		link := vfs.NewSymlink("www", webName)
		link.MTime = mtime(r)
		root.Add(link)
	}
}

// photoDirNames mirror the personal-event organization the paper describes.
var photoDirNames = []string{
	"Wedding 2014", "Family Reunion", "Vacation 2013", "Birthday Party",
	"Summer Trip", "Christmas", "Graduation", "New Baby", "Camping 2012",
}

// buildNAS models consumer NAS devices: personal media libraries plus, when
// sensitive, the document classes of Table IX.
func buildNAS(r *rng, root *vfs.Node, sensitive bool) {
	photos := addDir(r, root, "Photos")
	for d, nd := 0, r.rangeInt(1, 4); d < nd; d++ {
		event := addDir(r, photos, photoDirNames[r.intn(len(photoDirNames))]+fmt.Sprintf(" %d", d+1))
		for i, n := 0, r.rangeInt(15, 80); i < n; i++ {
			addFile(r, event, fmt.Sprintf("DSC_%04d.JPG", r.rangeInt(1, 9999)),
				vfs.Perm644, int64(r.rangeInt(800_000, 6_000_000)))
		}
	}
	if r.chance(0.55) {
		music := addDir(r, root, "Music")
		for i, n := 0, r.rangeInt(8, 40); i < n; i++ {
			addFile(r, music, fmt.Sprintf("Track %02d.mp3", i+1),
				vfs.Perm644, int64(r.rangeInt(2_000_000, 12_000_000)))
		}
	}
	if r.chance(0.45) {
		videos := addDir(r, root, "Videos")
		for i, n := 0, r.rangeInt(2, 12); i < n; i++ {
			ext := []string{"avi", "mp4", "mkv"}[r.intn(3)]
			addFile(r, videos, fmt.Sprintf("movie_%02d.%s", i+1, ext),
				vfs.Perm644, int64(r.rangeInt(100_000_000, 900_000_000)))
		}
	}
	docs := addDir(r, root, "Documents")
	for i, n := 0, r.rangeInt(2, 15); i < n; i++ {
		ext := []string{"doc", "pdf", "xls", "docx", "txt"}[r.intn(5)]
		addFile(r, docs, fmt.Sprintf("document_%02d.%s", i+1, ext),
			vfs.Perm644, int64(r.rangeInt(10_000, 2_000_000)))
	}
	if sensitive {
		addSensitiveDocs(r, docs)
	}
}

// addSensitiveDocs plants the Table IX document classes. Relative
// per-class probabilities and multiplicities follow the paper's server and
// file counts; permission bits follow its readability split (SSH host keys
// and shadow files are mostly mode 600; tax exports and mailboxes are
// mostly world-readable).
func addSensitiveDocs(r *rng, docs *vfs.Node) {
	if r.chance(0.42) { // .pst mailboxes: the most common class
		n := r.rangeInt(1, 10)
		if r.chance(0.02) {
			n = r.rangeInt(100, 700) // company-wide backup outlier (§V)
		}
		backup := addDir(r, docs, "Outlook Backup")
		for i := 0; i < n; i++ {
			perm := vfs.Perm644
			if r.chance(0.13) {
				perm = vfs.Perm600
			}
			addFile(r, backup, fmt.Sprintf("mailbox_%03d.pst", i+1), perm,
				int64(r.rangeInt(5_000_000, 300_000_000)))
		}
	}
	if r.chance(0.22) { // email archives
		for i, n := 0, r.rangeInt(1, 6); i < n; i++ {
			addFile(r, docs, fmt.Sprintf("mail-archive-%d.mbox", 2010+i), vfs.Perm644,
				int64(r.rangeInt(1_000_000, 80_000_000)))
		}
	}
	if r.chance(0.16) { // TurboTax exports
		tax := addDir(r, docs, "Taxes")
		for i, n := 0, r.rangeInt(2, 30); i < n; i++ {
			addFile(r, tax, fmt.Sprintf("TurboTax-Export-%d.txf", 2001+i%14), vfs.Perm644,
				int64(r.rangeInt(10_000, 500_000)))
		}
	}
	if r.chance(0.15) { // Quicken data
		fin := addDir(r, docs, "Finances")
		for i, n := 0, r.rangeInt(2, 30); i < n; i++ {
			addFile(r, fin, fmt.Sprintf("quicken-%d.qdf", 2002+i%13), vfs.Perm644,
				int64(r.rangeInt(100_000, 5_000_000)))
		}
	}
	if r.chance(0.14) { // SSH host keys: mostly NOT world-readable
		ssh := addDir(r, docs, "ssh-backup")
		for i, n := 0, r.rangeInt(1, 3); i < n; i++ {
			perm := vfs.Perm600
			if r.chance(0.09) {
				perm = vfs.Perm644
			}
			addFile(r, ssh, fmt.Sprintf("ssh_host_rsa_key.%d", i), perm, 1679)
			addFile(r, ssh, fmt.Sprintf("ssh_host_rsa_key.%d.pub", i), vfs.Perm644, 400)
		}
	}
	if r.chance(0.11) { // private .pem files: mostly world-readable
		certs := addDir(r, docs, "certs")
		for i, n := 0, r.rangeInt(1, 3); i < n; i++ {
			perm := vfs.Perm644
			if r.chance(0.04) {
				perm = vfs.Perm600
			}
			addFile(r, certs, fmt.Sprintf("server%d-priv.pem", i+1), perm, 1704)
		}
	}
	if r.chance(0.10) { // shadow files: ~1/3 readable
		perm := vfs.Perm600
		if r.chance(0.33) {
			perm = vfs.Perm644
		}
		n := 1
		if r.chance(0.02) {
			n = r.rangeInt(50, 150) // the 146-shadow-file outlier
		}
		sys := addDir(r, docs, "system-backup")
		for i := 0; i < n; i++ {
			name := "shadow"
			if i > 0 {
				name = fmt.Sprintf("shadow.%d", i)
			}
			addFile(r, sys, name, perm, 718)
		}
	}
	if r.chance(0.08) { // KeePass databases
		for i, n := 0, r.rangeInt(1, 15); i < n; i++ {
			addFile(r, docs, fmt.Sprintf("passwords-%d.kdbx", i+1), vfs.Perm644,
				int64(r.rangeInt(2_000, 200_000)))
		}
	}
	if r.chance(0.03) { // PuTTY client keys
		for i, n := 0, r.rangeInt(1, 3); i < n; i++ {
			addFile(r, docs, fmt.Sprintf("putty-key-%d.ppk", i+1), vfs.Perm644, 1460)
		}
	}
	if r.chance(0.005) { // 1Password keychains (rarest class)
		addFile(r, docs, "1Password.agilekeychain", vfs.Perm644, int64(r.rangeInt(50_000, 400_000)))
	}
}

// buildPrinter models office printers exposing their scan spool.
func buildPrinter(r *rng, root *vfs.Node) {
	scans := addDir(r, root, "scans")
	for i, n := 0, r.rangeInt(2, 25); i < n; i++ {
		addFile(r, scans, fmt.Sprintf("scan%04d.pdf", i+1), vfs.Perm644,
			int64(r.rangeInt(50_000, 3_000_000)))
	}
	if r.chance(0.4) {
		cfg := addDir(r, root, "config")
		addFile(r, cfg, "address-book.csv", vfs.Perm644, int64(r.rangeInt(500, 40_000)))
	}
}

// buildRouterUSB models smart routers exposing an attached USB disk.
func buildRouterUSB(r *rng, root *vfs.Node, sensitive bool) {
	usb := addDir(r, root, []string{"sda1", "USB_Storage", "usbdisk"}[r.intn(3)])
	for i, n := 0, r.rangeInt(3, 20); i < n; i++ {
		ext := []string{"jpg", "mp3", "mp4", "avi", "doc", "zip", "pdf"}[r.intn(7)]
		addFile(r, usb, fmt.Sprintf("file_%02d.%s", i+1, ext),
			vfs.Perm644, int64(r.rangeInt(10_000, 50_000_000)))
	}
	if sensitive {
		docs := addDir(r, usb, "backup")
		addSensitiveDocs(r, docs)
	}
}

// buildModem models provider-deployed gear with almost nothing exposed.
func buildModem(r *rng, root *vfs.Node) {
	if r.chance(0.3) {
		cfg := addDir(r, root, "config")
		addFile(r, cfg, "device.cfg", vfs.Perm600, int64(r.rangeInt(500, 5_000)))
	}
}

// buildGenericPub models classic anonymous FTP mirrors and drop boxes.
func buildGenericPub(r *rng, root *vfs.Node, sensitive bool) {
	pub := addDir(r, root, "pub")
	for i, n := 0, r.rangeInt(2, 18); i < n; i++ {
		ext := []string{"zip", "tar.gz", "iso", "pdf", "txt", "html"}[r.intn(6)]
		addFile(r, pub, fmt.Sprintf("release-%d.%s", i+1, ext),
			vfs.Perm644, int64(r.rangeInt(10_000, 700_000_000)))
	}
	addFile(r, pub, "README", vfs.Perm644, int64(r.rangeInt(200, 4_000)))
	if r.chance(0.5) {
		addDir(r, root, "incoming")
	}
	if sensitive {
		docs := addDir(r, root, "private")
		addSensitiveDocs(r, docs)
	}
}

// buildOSRootLinux models servers exposing their whole filesystem (§V
// "Root File Systems Exposed"): the marker directories the paper greps for
// plus representative content.
func buildOSRootLinux(r *rng, root *vfs.Node, sensitive bool) {
	for _, name := range []string{"bin", "var", "boot", "usr", "home", "tmp"} {
		addDir(r, root, name)
	}
	etc := addDir(r, root, "etc")
	addFile(r, etc, "passwd", vfs.Perm644, int64(r.rangeInt(800, 4_000)))
	perm := vfs.Perm600
	if r.chance(0.33) {
		perm = vfs.Perm644
	}
	addFile(r, etc, "shadow", perm, 718)
	addFile(r, etc, "hosts", vfs.Perm644, 220)
	sshDir := addDir(r, etc, "ssh")
	addFile(r, sshDir, "ssh_host_rsa_key", vfs.Perm600, 1679)
	addFile(r, sshDir, "ssh_host_rsa_key.pub", vfs.Perm644, 400)
	home := root.Child("home")
	user := addDir(r, home, "user")
	if sensitive {
		addSensitiveDocs(r, user)
	}
}

// buildOSRootWindows models exposed Windows system drives.
func buildOSRootWindows(r *rng, root *vfs.Node) {
	for _, name := range []string{"Windows", "Program Files", "Users"} {
		addDir(r, root, name)
	}
	if r.chance(0.4) {
		addDir(r, root, "Documents and Settings")
	}
	users := root.Child("Users")
	u := addDir(r, users, "Owner")
	docs := addDir(r, u, "Documents")
	addFile(r, docs, "budget.xls", vfs.Perm644, int64(r.rangeInt(20_000, 400_000)))
}

// buildDeep constructs a tree whose traversal exceeds the enumerator's
// request cap (paper: 26.7K servers needed >500 requests).
func buildDeep(r *rng, root *vfs.Node) {
	for i := 0; i < 30; i++ {
		branch := addDir(r, root, fmt.Sprintf("archive-%02d", i))
		for j := 0; j < 20; j++ {
			leaf := addDir(r, branch, fmt.Sprintf("batch-%02d", j))
			addFile(r, leaf, "data.bin", vfs.Perm644, int64(r.rangeInt(1_000, 100_000)))
		}
	}
}
