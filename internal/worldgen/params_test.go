package worldgen

import (
	"testing"
	"testing/quick"

	"ftpcloud/internal/simnet"
)

// TestExposureRateParamScales halving ExposureRate should roughly halve the
// exposed population while leaving the FTP population unchanged.
func TestExposureRateParamScales(t *testing.T) {
	base := DefaultParams(42, 4096)
	low := base
	low.ExposureRate = base.ExposureRate / 2

	wBase, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	wLow, err := New(low)
	if err != nil {
		t.Fatal(err)
	}
	sBase := wBase.Audit(1)
	sLow := wLow.Audit(1)

	if sBase.FTP != sLow.FTP {
		t.Errorf("exposure param changed FTP population: %d vs %d", sBase.FTP, sLow.FTP)
	}
	if sBase.Exposed == 0 {
		t.Fatal("no exposed hosts in base world")
	}
	ratio := float64(sLow.Exposed) / float64(sBase.Exposed)
	if ratio < 0.3 || ratio > 0.8 {
		t.Errorf("halving ExposureRate gave exposed ratio %.2f (=%d/%d), want ≈0.5",
			ratio, sLow.Exposed, sBase.Exposed)
	}
}

// TestFTPRateOfOpenParam: raising the FTP share of open hosts reduces the
// non-FTP-open population.
func TestFTPRateOfOpenParam(t *testing.T) {
	base := DefaultParams(42, 4096)
	pure := base
	pure.FTPRateOfOpen = 0.99

	wBase, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	wPure, err := New(pure)
	if err != nil {
		t.Fatal(err)
	}
	sBase := wBase.Audit(1)
	sPure := wPure.Audit(1)

	nonFTPBase := sBase.Open - sBase.FTP
	nonFTPPure := sPure.Open - sPure.FTP
	if nonFTPBase == 0 {
		t.Fatal("base world has no non-FTP open hosts")
	}
	if nonFTPPure >= nonFTPBase/5 {
		t.Errorf("FTPRateOfOpen=0.99 left %d non-FTP hosts (base %d)", nonFTPPure, nonFTPBase)
	}
	// Degenerate values disable the population rather than dividing by
	// zero.
	degenerate := base
	degenerate.FTPRateOfOpen = 0
	w, err := New(degenerate)
	if err != nil {
		t.Fatal(err)
	}
	if rate := w.nonFTPOpenRate(); rate != 0 {
		t.Errorf("nonFTPOpenRate with r=0: %v", rate)
	}
}

// TestTruthPurityProperty: Truth must be a pure function of (seed, ip)
// across random addresses — repeated calls agree on every field that
// matters downstream.
func TestTruthPurityProperty(t *testing.T) {
	w := testWorld(t, 32768)
	base := uint64(w.ScanBase)
	f := func(off uint32) bool {
		ip := simnet.IP(base + uint64(off)%w.ScanSize)
		a, okA := w.Truth(ip)
		b, okB := w.Truth(ip)
		if okA != okB {
			return false
		}
		if !okA {
			return true
		}
		return a.FTP == b.FTP &&
			a.PersonalityKey == b.PersonalityKey &&
			a.Anonymous == b.Anonymous &&
			a.Writable == b.Writable &&
			a.FTPS == b.FTPS &&
			a.CertName == b.CertName &&
			a.Tree == b.Tree &&
			a.Robots == b.Robots &&
			len(a.Campaigns) == len(b.Campaigns)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
