package worldgen

import (
	"sync"
	"testing"

	"ftpcloud/internal/simnet"
)

// TestOpenMatchesTruth: the probe fast path's presence decision must agree
// exactly with the full Truth derivation for every address.
func TestOpenMatchesTruth(t *testing.T) {
	w := testWorld(t, 65536)
	base := uint64(w.ScanBase)
	limit := w.ScanSize
	if limit > 60000 {
		limit = 60000
	}
	open := 0
	for off := uint64(0); off < limit; off++ {
		ip := simnet.IP(base + off)
		_, present := w.Truth(ip)
		if got := w.Open(ip); got != present {
			t.Fatalf("Open(%s) = %v, Truth present = %v", ip, got, present)
		}
		if present {
			open++
		}
	}
	if open == 0 {
		t.Fatal("no open hosts in sweep; test vacuous")
	}
	// Addresses outside the scan range must agree too.
	outside := simnet.MustParseIP("250.0.0.7")
	if _, present := w.Truth(outside); w.Open(outside) != present {
		t.Error("Open disagrees with Truth outside the scan range")
	}
}

// TestPortOpenOnlyPort21: every simulated host listens on 21 alone, so the
// fast path refuses other ports without deriving truth.
func TestPortOpenOnlyPort21(t *testing.T) {
	w := testWorld(t, 65536)
	base := uint64(w.ScanBase)
	for off := uint64(0); off < 2000; off++ {
		ip := simnet.IP(base + off)
		if w.PortOpen(ip, 2121) {
			t.Fatalf("PortOpen(%s, 2121) = true", ip)
		}
		if w.PortOpen(ip, 21) != w.Open(ip) {
			t.Fatalf("PortOpen(%s, 21) disagrees with Open", ip)
		}
	}
}

// TestProbeDoesNotMaterialize: truth-only discovery — a full probe sweep
// builds zero hosts; only an actual connection materializes one.
func TestProbeDoesNotMaterialize(t *testing.T) {
	w := testWorld(t, 65536)
	nw := simnet.NewNetwork(w)
	base := uint64(w.ScanBase)
	var firstOpen simnet.IP
	found := 0
	for off := uint64(0); off < w.ScanSize; off++ {
		ip := simnet.IP(base + off)
		if nw.Probe(ip, 21, 0) {
			if found == 0 {
				firstOpen = ip
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("probe sweep found no hosts")
	}
	if got := w.MaterializedHosts(); got != 0 {
		t.Fatalf("probe sweep materialized %d hosts, want 0", got)
	}
	conn, err := nw.DialFrom(simnet.MustParseIP("250.0.0.1"), firstOpen, 21)
	if err != nil {
		t.Fatalf("DialFrom(%s): %v", firstOpen, err)
	}
	conn.Close()
	if got := w.MaterializedHosts(); got != 1 {
		t.Fatalf("after one dial, materialized %d hosts, want 1", got)
	}
}

// TestLookupShardedConcurrent: concurrent Lookups across the sharded host
// cache return one stable entry per address.
func TestLookupShardedConcurrent(t *testing.T) {
	w := testWorld(t, 65536)
	base := uint64(w.ScanBase)
	var opens []simnet.IP
	for off := uint64(0); off < w.ScanSize && len(opens) < 32; off++ {
		ip := simnet.IP(base + off)
		if w.Open(ip) {
			opens = append(opens, ip)
		}
	}
	if len(opens) == 0 {
		t.Fatal("no open hosts")
	}
	entries := make([][]simnet.Host, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			entries[g] = make([]simnet.Host, len(opens))
			for i, ip := range opens {
				entries[g][i] = w.Lookup(ip)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range opens {
			if entries[g][i] != entries[0][i] {
				t.Fatalf("goroutine %d saw a different entry for %s", g, opens[i])
			}
		}
	}
	if got := w.MaterializedHosts(); got != len(opens) {
		t.Errorf("materialized %d hosts, want %d", got, len(opens))
	}
}
