package worldgen

import (
	"fmt"
	"sync"
	"time"

	"ftpcloud/internal/asdb"
	"ftpcloud/internal/certs"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
)

// World is the synthesized FTP ecosystem. It implements simnet.HostProvider:
// the scanner probes addresses, and hosts materialize on first contact.
type World struct {
	Params Params
	ASDB   *asdb.DB
	Certs  *certs.Pool

	profiles    []*asProfile
	profileByAS map[*asdb.AS]*asProfile
	uniqueCerts []string

	// ScanBase/ScanSize delimit the address range a full census scans.
	ScanBase simnet.IP
	ScanSize uint64

	// nonFTPRate is nonFTPOpenRate precomputed at construction; the
	// probe fast path consults it for every closed address.
	nonFTPRate float64

	// hosts is the materialized-host cache, sharded by IP so concurrent
	// enumerator workers materializing different hosts never contend on
	// one lock. The probe path never touches it.
	hosts [hostShards]hostShard
}

// hostShards is the host-cache fan-out; a power of two so the shard index
// is a mask.
const hostShards = 64

type hostShard struct {
	mu sync.Mutex
	m  map[simnet.IP]*hostEntry
}

// New synthesizes a world from parameters.
func New(p Params) (*World, error) {
	if p.Scale < 1 {
		return nil, fmt.Errorf("worldgen: scale must be >= 1, got %d", p.Scale)
	}
	db, profiles, err := buildASLayout(p)
	if err != nil {
		return nil, err
	}
	pool, uniqueNames, err := buildCertPool(p)
	if err != nil {
		return nil, err
	}
	byAS := make(map[*asdb.AS]*asProfile, len(profiles))
	for _, prof := range profiles {
		byAS[prof.AS] = prof
	}
	w := &World{
		Params:      p,
		ASDB:        db,
		Certs:       pool,
		profiles:    profiles,
		profileByAS: byAS,
		uniqueCerts: uniqueNames,
		ScanBase:    simnet.MustParseIP("1.0.0.0"),
		ScanSize:    p.ScanSpaceSize(),
	}
	w.nonFTPRate = nonFTPOpenRateFor(p)
	for i := range w.hosts {
		w.hosts[i].m = make(map[simnet.IP]*hostEntry)
	}
	return w, nil
}

// profileFor maps an IP to its AS profile, or nil.
func (w *World) profileFor(ip simnet.IP) *asProfile {
	as, ok := w.ASDB.Lookup(ip)
	if !ok {
		return nil
	}
	return w.profileByAS[as]
}

// Profiles returns the per-AS generation profiles (read-only).
func (w *World) Profiles() []*asProfile { return w.profiles }

// Derivation salts: each per-host decision draws from an independent stream.
const (
	saltFTP = iota + 1
	saltNonFTP
	saltPers
	saltAnon
	saltWritable
	saltFTPS
	saltCert
	saltTLSReq
	saltNAT
	saltTree
	saltExposed
	saltSensitive
	saltRobots
	saltHTTP
	saltScript
	saltCampaign
	saltDeep
	saltLimit
	saltInternal
	saltTreeSeed
	saltOSRoot
	// Hostile-layer salts; appended so earlier derivations are unchanged
	// across versions (worlds with HostileRate=0 are bit-identical to
	// worlds generated before the fault layer existed).
	saltFault
	saltFaultClass
	saltFaultParam
	// Service-layer salts; appended for the same reason (worlds with the
	// zero-value ServiceMix are bit-identical to worlds generated before
	// the unexpected-service layer existed).
	saltService
	saltServiceParam
	// Epoch-churn salts; appended so Epoch-0 worlds are bit-identical to
	// worlds generated before the longitudinal layer existed. Epoch draws
	// additionally mix the epoch number into the seed (epochSeed), so each
	// epoch's churn is an independent stream.
	saltEpochChurn
	saltEpochChurnDraw
	saltEpochUpgrade
	saltEpochRealloc
)

// nonFTPOpenRate derives the global density of hosts that accept TCP/21
// without speaking FTP from the configured FTP-of-open rate: with r =
// FTPRateOfOpen, non-FTP open hosts are FTP·(1−r)/r spread over the scan
// space (paper: 21.8M open − 13.8M FTP over 3.68B scanned).
func (w *World) nonFTPOpenRate() float64 { return w.nonFTPRate }

func nonFTPOpenRateFor(p Params) float64 {
	r := p.FTPRateOfOpen
	if r <= 0 || r >= 1 {
		return 0
	}
	return float64(paperFTPServers) * (1 - r) / r / float64(paperIPsScanned)
}

// RobotsMode describes a host's robots.txt posture.
type RobotsMode int

// Robots postures.
const (
	RobotsNone RobotsMode = iota
	RobotsPartial
	RobotsExcludeAll
)

// HostTruth is the generator's ground truth for one address — everything
// decidable without building the filesystem. The analysis pipeline never
// sees this; tests compare pipeline output against it.
type HostTruth struct {
	IP         simnet.IP
	FTP        bool
	NonFTPOpen bool
	// Service is the non-FTP protocol the host speaks on port 21 when a
	// ServiceMix is configured (ServiceNone for FTP hosts and for worlds
	// without the service layer; see services.go).
	Service        ServiceClass
	AS             *asdb.AS
	PersonalityKey string
	Anonymous      bool
	Writable       bool
	FTPS           bool
	RequireTLS     bool
	CertName       string
	NAT            bool
	InternalIP     simnet.IP
	Exposed        bool
	Tree           treeKind
	Sensitive      bool
	Robots         RobotsMode
	HTTP           bool
	Scripting      bool
	Campaigns      []string
	RequestLimit   int
	HostName       string
	// Fault is the host's hostile personality (FaultNone for the well
	// behaved majority; see hostile.go).
	Fault FaultClass
}

// LatencyModel returns a deterministic per-pair connection-setup latency
// function: 5–150ms derived from both endpoints, so repeated connections
// between the same hosts observe stable RTTs. Plug into
// simnet.Network.Latency for wall-clock-realistic runs.
func (w *World) LatencyModel() func(src, dst simnet.IP) time.Duration {
	seed := w.Params.Seed
	return func(src, dst simnet.IP) time.Duration {
		h := splitmix64(derive(seed, uint32(src), 0x17a7e9c) ^ uint64(uint32(dst)))
		return 5*time.Millisecond + time.Duration(h%145)*time.Millisecond
	}
}

// ftpPresent decides whether an address runs FTP at the world's epoch. At
// Epoch 0 it is exactly the base density draw; each later epoch churns a
// ChurnRate fraction of addresses by re-rolling their presence at the same
// AS density, so hosts leave and appear at the stationary rate and the
// population stays calibrated at every epoch. Both Truth and Open route
// through this, so the scanner's presence answer always agrees with ground
// truth.
func (w *World) ftpPresent(prof *asProfile, u uint32) bool {
	if prof == nil {
		return false
	}
	seed := w.Params.Seed
	present := chance(derive(seed, u, saltFTP), prof.Density)
	if rate := w.Params.ChurnRate; rate > 0 {
		for k := uint64(1); k <= w.Params.Epoch; k++ {
			es := epochSeed(seed, k)
			if chance(derive(es, u, saltEpochChurn), rate) {
				present = chance(derive(es, u, saltEpochChurnDraw), prof.Density)
			}
		}
	}
	return present
}

// personalityHash returns the draw that selects a host's personality,
// upgraded through the world's epochs: each epoch an UpgradeRate fraction
// of hosts redraw their software from the AS mix (an upgrade or
// replacement), everyone else keeps what they ran.
func (w *World) personalityHash(u uint32) uint64 {
	seed := w.Params.Seed
	h := derive(seed, u, saltPers)
	if rate := w.Params.UpgradeRate; rate > 0 {
		for k := uint64(1); k <= w.Params.Epoch; k++ {
			eh := derive(epochSeed(seed, k), u, saltEpochUpgrade)
			if chance(eh, rate) {
				h = splitmix64(eh)
			}
		}
	}
	return h
}

// Truth derives the ground truth for an address. It is a pure function of
// (seed, ip): no allocation is cached.
func (w *World) Truth(ip simnet.IP) (HostTruth, bool) {
	t := HostTruth{IP: ip}
	prof := w.profileFor(ip)
	seed := w.Params.Seed
	u := uint32(ip)

	if !w.ftpPresent(prof, u) {
		if chance(derive(seed, u, saltNonFTP), w.nonFTPOpenRate()) {
			t.NonFTPOpen = true
			if prof != nil {
				t.AS = prof.AS
			}
			// With a service mix, the non-FTP host speaks a real
			// protocol — and can carry a transport fault personality,
			// so the identification stage meets the same adversarial
			// tail the enumerator does. Both draws use end-appended
			// salts: zero-mix worlds are bit-identical to pre-service
			// worlds.
			if w.Params.ServiceMix.Enabled() {
				t.Service = w.Params.ServiceMix.pick(derive(seed, u, saltService))
				t.Fault = w.faultClassFor(u)
			}
			return t, true
		}
		return HostTruth{}, false
	}

	t.FTP = true
	t.AS = prof.AS
	t.HostName = fmt.Sprintf("h%08x.example.net", u)
	t.Fault = w.faultClassFor(u)

	entry := prof.Mix.pick(w.personalityHash(u))
	t.PersonalityKey = entry.key
	pers := personality.ByKey(entry.key)

	anonRate := prof.AnonRate
	if entry.anonRate >= 0 {
		anonRate = entry.anonRate
	}
	t.Anonymous = chance(derive(seed, u, saltAnon), anonRate)

	// FTPS: implementation must support it and the operator must have
	// enabled it.
	if pers.Quirks.SupportsFTPS && chance(derive(seed, u, saltFTPS), w.Params.FTPSRate) {
		t.FTPS = true
		t.CertName = w.certNameFor(prof, pers, u)
		t.RequireTLS = chance(derive(seed, u, saltTLSReq), w.Params.FTPSRequireRate)
	}

	// NAT posture applies to consumer devices with the leak quirk.
	if pers.Quirks.PASVLeaksInternalIP && chance(derive(seed, u, saltNAT), w.Params.NATRate) {
		t.NAT = true
		h := derive(seed, u, saltInternal)
		t.InternalIP = simnet.IPFromOctets(192, 168, byte(h%5), byte(1+h/7%250))
	}

	t.HTTP = chance(derive(seed, u, saltHTTP), w.Params.HTTPOverlapRate)
	if t.HTTP {
		t.Scripting = chance(derive(seed, u, saltScript), w.Params.ScriptingRate/w.Params.HTTPOverlapRate)
	}

	if !t.Anonymous {
		return t, true
	}

	// The remaining attributes only matter for anonymously visible hosts.
	// Per-class exposure rates are calibrated for the default 24%
	// aggregate; the parameter scales them proportionally.
	t.Exposed = chance(derive(seed, u, saltExposed), exposureRate(pers)*w.Params.ExposureRate/0.24)
	t.Writable = chance(derive(seed, u, saltWritable), writableRate(pers, w.Params.AnonWritableRate))
	if t.Writable {
		t.Exposed = true
		t.Campaigns = pickCampaigns(derive(seed, u, saltCampaign))
	}
	t.Tree = chooseTree(pers, t.Exposed, derive(seed, u, saltTree), derive(seed, u, saltOSRoot))
	if t.Exposed && chance(derive(seed, u, saltDeep), w.Params.DeepTreeRate) {
		t.Tree = treeDeep
	}
	t.Sensitive = t.Exposed && chance(derive(seed, u, saltSensitive), sensitiveRate(pers))
	if chance(derive(seed, u, saltRobots), w.Params.RobotsRate) {
		if chance(derive(seed, u, saltRobots+100), w.Params.RobotsExcludeAllRate) {
			t.Robots = RobotsExcludeAll
		} else {
			t.Robots = RobotsPartial
		}
	}
	if h := derive(seed, u, saltLimit); chance(h, 0.03) {
		t.RequestLimit = 40 + pickN(h, 160)
	}
	return t, true
}

// Open reports whether an address answers on TCP/21, deriving only the
// presence decision (at most two hash draws and an AS lookup) instead of
// the full truth record. It agrees exactly with Truth's presence result and
// performs no allocation — this is the scanner's per-probe cost.
func (w *World) Open(ip simnet.IP) bool {
	if w.ftpPresent(w.profileFor(ip), uint32(ip)) {
		return true
	}
	return chance(derive(w.Params.Seed, uint32(ip), saltNonFTP), w.nonFTPRate)
}

// PortOpen implements simnet.PortScanner: discovery probes are answered
// from ground truth without taking any world lock or materializing the
// host. Hosts are built only when the enumerator actually connects
// (Lookup, via DialFrom).
func (w *World) PortOpen(ip simnet.IP, port uint16) bool {
	if port != 21 {
		return false
	}
	return w.Open(ip)
}

// certNameFor assigns the FTPS certificate: hosting providers share the AS
// wildcard, device families share their built-in, everything else draws a
// default or pool certificate.
func (w *World) certNameFor(prof *asProfile, pers *personality.Personality, u uint32) string {
	h := derive(w.Params.Seed, u, saltCert)
	if prof.CertName != "" {
		// Not every shared-hosting box carries the provider wildcard:
		// many keep the stack's default self-signed certificate, which
		// is what pushes the ecosystem's self-signed share toward the
		// paper's 50%.
		if chance(splitmix64(h^0x51ab), 0.45) {
			return "cert-localhost"
		}
		return prof.CertName
	}
	if name, ok := deviceCertNames[pers.Key]; ok {
		return name
	}
	// The "localhost" default dominates generic installs (Table XII).
	if chance(splitmix64(h), 0.30) {
		return "cert-localhost"
	}
	if len(w.uniqueCerts) == 0 {
		return "cert-localhost"
	}
	return w.uniqueCerts[pickN(h, len(w.uniqueCerts))]
}

// exposureRate is the probability an anonymous host's tree shows any data,
// by device class (§V: 24% of anonymous servers exposed data overall).
func exposureRate(pers *personality.Personality) float64 {
	switch {
	case pers.ProviderDeployed:
		return 0.08
	case pers.DeviceClass == personality.DevicePrinter:
		return 0.90
	case pers.DeviceClass == personality.DeviceNAS,
		pers.DeviceClass == personality.DeviceStorage,
		pers.DeviceClass == personality.DeviceHomeRouter:
		return 0.85
	case pers.Category == personality.CategoryHosted:
		return 0.16
	default:
		return 0.22
	}
}

// writableRate concentrates anonymous write access on generic servers and
// hosting accounts, as the campaign evidence in §VI suggests.
func writableRate(pers *personality.Personality, base float64) float64 {
	switch {
	case pers.ProviderDeployed:
		return base * 0.05
	case pers.DeviceClass == personality.DevicePrinter:
		return base * 0.1
	case pers.DeviceClass != personality.DeviceNone:
		return base * 0.5
	case pers.Category == personality.CategoryHosted:
		return base * 1.2
	default:
		return base * 1.5
	}
}

// sensitiveRate is the probability an exposed host leaks Table IX-class
// documents (≈5% of anonymous servers overall).
func sensitiveRate(pers *personality.Personality) float64 {
	switch {
	case pers.DeviceClass == personality.DeviceNAS,
		pers.DeviceClass == personality.DeviceStorage,
		pers.DeviceClass == personality.DeviceHomeRouter:
		return 0.38
	case pers.Category == personality.CategoryHosted:
		return 0.04
	case pers.ProviderDeployed:
		return 0.02
	default:
		return 0.16
	}
}

// chooseTree selects the filesystem profile.
func chooseTree(pers *personality.Personality, exposed bool, h, hOS uint64) treeKind {
	if !exposed {
		return treeEmpty
	}
	switch {
	case pers.Category == personality.CategoryHosted:
		return treeWebroot
	case pers.DeviceClass == personality.DevicePrinter:
		return treePrinterScans
	case pers.DeviceClass == personality.DeviceNAS || pers.DeviceClass == personality.DeviceStorage:
		if chance(hOS, 0.02) {
			return treeOSRootLinux
		}
		return treeNASPersonal
	case pers.DeviceClass == personality.DeviceHomeRouter && !pers.ProviderDeployed:
		return treeRouterUSB
	case pers.ProviderDeployed:
		return treeModemConfig
	case pers.Quirks.CaseInsensitive: // Windows servers
		if chance(hOS, 0.035) {
			return treeOSRootWindows
		}
		return treeGenericPub
	default:
		if chance(hOS, 0.016) {
			return treeOSRootLinux
		}
		return treeGenericPub
	}
}
