// Package worldgen synthesizes the simulated FTP ecosystem: an AS-structured
// IPv4 address space populated with FTP hosts whose implementations, access
// policies, filesystems, certificates, and infections follow the aggregate
// distributions the paper publishes (Tables I–XIII).
//
// The generator is lazy and deterministic: a host's entire configuration is
// a pure function of (world seed, IP address). Nothing is allocated until
// the scanner touches an address, so worlds of hundreds of millions of
// notional addresses cost memory proportional only to the hosts actually
// visited. See BenchmarkAblationLazyWorld for the measured difference.
package worldgen

// splitmix64 is the mixing function all world derivations flow through.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// derive produces an independent stream value for (seed, ip, salt).
func derive(seed uint64, ip uint32, salt uint64) uint64 {
	return splitmix64(splitmix64(seed^salt) ^ uint64(ip)*0x9e3779b97f4a7c15)
}

// epochSeed derives the sub-seed for epoch k's churn draws. splitmix64(0)
// is nonzero, so even epoch draws that were never made (k > Epoch) occupy
// streams disjoint from the base world's.
func epochSeed(seed, epoch uint64) uint64 {
	return seed ^ splitmix64(epoch)
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// chance reports whether the event with probability p occurs for hash h.
func chance(h uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return unitFloat(h) < p
}

// pickWeighted selects an index from a weight vector using hash h; weights
// need not be normalized. Returns -1 for an empty or all-zero vector.
func pickWeighted(h uint64, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return -1
	}
	target := unitFloat(h) * total
	for i, w := range weights {
		target -= w
		if target < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// pickN selects an integer in [0, n) from hash h.
func pickN(h uint64, n int) int {
	if n <= 0 {
		return 0
	}
	return int(h % uint64(n))
}

// rng is a tiny deterministic generator for tree construction, where a
// sequence of draws is needed from one seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: splitmix64(seed)} }

func (r *rng) next() uint64 {
	r.state = splitmix64(r.state)
	return r.state
}

// float returns the next draw in [0, 1).
func (r *rng) float() float64 { return unitFloat(r.next()) }

// intn returns the next draw in [0, n).
func (r *rng) intn(n int) int { return pickN(r.next(), n) }

// rangeInt returns a draw in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// chance reports an event with probability p.
func (r *rng) chance(p float64) bool { return chance(r.next(), p) }
