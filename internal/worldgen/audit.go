package worldgen

import (
	"sort"

	"ftpcloud/internal/simnet"
)

// AuditSummary is ground truth aggregated over the scan space. It is the
// generator-side counterpart of what the measurement pipeline must recover;
// tests and EXPERIMENTS.md compare the two.
type AuditSummary struct {
	Scanned    uint64
	Open       int
	FTP        int
	Anonymous  int
	Writable   int
	FTPS       int
	RequireTLS int
	NAT        int
	Exposed    int
	Sensitive  int
	DeepTrees  int
	RobotsAll  int

	ByPersonality     map[string]int
	AnonByPersonality map[string]int
	FTPByAS           map[uint32]int
	AnonByAS          map[uint32]int
	WritableByAS      map[uint32]int
	CampaignServers   map[string]int
}

// Audit walks the scan space with the given stride (1 = exhaustive),
// deriving truth without materializing hosts. Counts are raw (not
// de-strided); callers comparing against a strided pipeline should stride
// both sides identically.
func (w *World) Audit(stride int) AuditSummary {
	if stride < 1 {
		stride = 1
	}
	s := AuditSummary{
		ByPersonality:     make(map[string]int),
		AnonByPersonality: make(map[string]int),
		FTPByAS:           make(map[uint32]int),
		AnonByAS:          make(map[uint32]int),
		WritableByAS:      make(map[uint32]int),
		CampaignServers:   make(map[string]int),
	}
	base := uint64(w.ScanBase)
	for off := uint64(0); off < w.ScanSize; off += uint64(stride) {
		ip := simnet.IP(base + off)
		s.Scanned++
		t, ok := w.Truth(ip)
		if !ok {
			continue
		}
		s.Open++
		if !t.FTP {
			continue
		}
		s.FTP++
		s.ByPersonality[t.PersonalityKey]++
		if t.AS != nil {
			s.FTPByAS[t.AS.Number]++
		}
		if t.FTPS {
			s.FTPS++
		}
		if t.RequireTLS {
			s.RequireTLS++
		}
		if !t.Anonymous {
			continue
		}
		s.Anonymous++
		s.AnonByPersonality[t.PersonalityKey]++
		if t.AS != nil {
			s.AnonByAS[t.AS.Number]++
		}
		if t.NAT {
			s.NAT++
		}
		if t.Exposed {
			s.Exposed++
		}
		if t.Sensitive {
			s.Sensitive++
		}
		if t.Tree == treeDeep {
			s.DeepTrees++
		}
		if t.Robots == RobotsExcludeAll {
			s.RobotsAll++
		}
		if t.Writable {
			s.Writable++
			if t.AS != nil {
				s.WritableByAS[t.AS.Number]++
			}
			for _, c := range t.Campaigns {
				s.CampaignServers[c]++
			}
		}
	}
	return s
}

// ConcentrationCurve returns per-AS counts sorted descending — the basis of
// the paper's Figure 1 CDF.
func ConcentrationCurve(byAS map[uint32]int) []int {
	out := make([]int, 0, len(byAS))
	for _, n := range byAS {
		out = append(out, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// ASesForShare returns how many of the largest ASes cover the given share
// of the total (e.g. 0.5 → the paper's "78 ASes account for 50%").
func ASesForShare(byAS map[uint32]int, share float64) int {
	curve := ConcentrationCurve(byAS)
	var total int
	for _, n := range curve {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := share * float64(total)
	var cum float64
	for i, n := range curve {
		cum += float64(n)
		if cum >= target {
			return i + 1
		}
	}
	return len(curve)
}
