package worldgen

import (
	"fmt"
	"math"

	"ftpcloud/internal/asdb"
	"ftpcloud/internal/simnet"
)

// archetype groups ASes by operator behaviour.
type archetype int

// AS archetypes.
const (
	archHostingNamed archetype = iota + 1
	archHostingTail
	archISPNamed
	archISPEmbedded
	archISPTail
	archAcademic
	archOther
)

// asProfile is the generator's view of one AS: its address allocation plus
// the behavioural distribution of the FTP hosts inside it.
type asProfile struct {
	AS   *asdb.AS
	Arch archetype
	// FTPShare is this AS's fraction of the world's FTP servers.
	FTPShare float64
	// AnonRate is the default anonymous-access probability for hosts in
	// this AS (personalities with their own rates override it).
	AnonRate float64
	// Density is the probability that an address in the AS runs FTP.
	Density float64
	// Mix is the personality distribution.
	Mix *personalityMix
	// CertName names the hosting provider's shared FTPS certificate; ""
	// means hosts fall back to implementation/device defaults.
	CertName string
	// ExpectedFTP is the scaled expected server count (diagnostic).
	ExpectedFTP float64
}

// namedAS describes a hand-calibrated AS from the paper's tables.
type namedAS struct {
	number   uint32
	name     string
	typ      asdb.Type
	arch     archetype
	ftpShare float64 // FTP servers / 13.79M (Table VI or Table V derivation)
	anonRate float64 // anonymous share within the AS
	density  float64 // FTP servers / advertised IPs
	mix      *personalityMix
	certName string
}

// namedASes reproduces Table VI's top-10 ASes plus the provider-device ISPs
// behind Table V, with shares and densities derived from published counts.
func namedASes() []namedAS {
	return []namedAS{
		// Table VI top-10 by anonymous servers.
		{12824, "home.pl S.A.", asdb.TypeHosting, archHostingNamed, 0.009918, 0.7544, 0.6661, mixHomePL, "cert-homepl"},
		{46606, "Unified Layer", asdb.TypeHosting, archHostingNamed, 0.017874, 0.1796, 0.4769, mixHosting, "cert-bluehost"},
		{2914, "NTT America, Inc.", asdb.TypeISP, archISPNamed, 0.021644, 0.1208, 0.0379, mixISPGeneric, ""},
		{20013, "CyrusOne LLC", asdb.TypeHosting, archHostingNamed, 0.004699, 0.4750, 0.5818, mixHosting, "cert-opentransfer"},
		{40676, "Psychz Networks", asdb.TypeHosting, archHostingNamed, 0.004658, 0.4282, 0.1002, mixHosting, "cert-securesites"},
		{34011, "domainfactory GmbH", asdb.TypeHosting, archHostingNamed, 0.001534, 0.9019, 0.2264, mixHosting, "cert-ispgateway"},
		{4134, "Chinanet", asdb.TypeISP, archISPNamed, 0.033676, 0.0409, 0.003845, mixISPGeneric, ""},
		{18978, "Enzu Inc", asdb.TypeHosting, archHostingNamed, 0.005333, 0.2381, 0.1011, mixHosting, "cert-opentransfer"},
		{18779, "EGIHosting", asdb.TypeHosting, archHostingNamed, 0.002016, 0.5873, 0.0147, mixHosting, "cert-securesites"},
		{4766, "Korea Telecom", asdb.TypeISP, archISPNamed, 0.015336, 0.0767, 0.003936, mixISPGeneric, ""},

		// Provider-deployed embedded fleets (Table V). Shares derive from
		// device counts / 13.79M; anonymous access is essentially absent.
		{3320, "Deutsche Telekom AG", asdb.TypeISP, archISPEmbedded, 0.014003, 0.0004, 0.012, mixTelekom, ""},
		{9143, "EuroDSL Networks", asdb.TypeISP, archISPEmbedded, 0.003186, 0.0001, 0.010, mixZyXELISP, ""},
		{29518, "SecureNet Surveillance", asdb.TypeISP, archISPEmbedded, 0.001543, 0.0029, 0.008, mixAXISISP, ""},
		{24445, "WiMax Country Carrier", asdb.TypeISP, archISPEmbedded, 0.001098, 0.0001, 0.009, mixZTEISP, ""},
		{6830, "CableVision Europe", asdb.TypeISP, archISPEmbedded, 0.000949, 0.0001, 0.007, mixCableISP, ""},
		{5610, "Continental Telco", asdb.TypeISP, archISPEmbedded, 0.001121, 0.0001, 0.008, mixTelcoC, ""},
	}
}

// Tail layout constants: shares follow a truncated power law calibrated so
// the top ~78 ASes hold ~50% of servers (Figure 1, Table III).
const (
	tailASCount   = 600
	tailExponent  = 0.92
	tailIndexBase = 14.0
)

// tailHostingCerts rotates shared hosting certificates across tail
// providers, reproducing Table XII's concentration.
var tailHostingCerts = []string{
	"cert-opentransfer", "cert-securesites", "cert-turnkey",
	"cert-bizmw", "cert-sakura", "cert-opentransfer", "cert-securesites",
}

// buildASLayout constructs the AS database and per-AS profiles, allocating
// disjoint prefixes from the base of the scan space.
func buildASLayout(p Params) (*asdb.DB, []*asProfile, error) {
	named := namedASes()

	var namedShare float64
	for _, n := range named {
		namedShare += n.ftpShare
	}

	// Normalize the tail power law over the remaining share.
	tailRaw := make([]float64, tailASCount)
	var tailSum float64
	for i := range tailRaw {
		tailRaw[i] = math.Pow(float64(i)+1+tailIndexBase, -tailExponent)
		tailSum += tailRaw[i]
	}
	remaining := 1.0 - namedShare

	scaledFTPTotal := float64(paperFTPServers) / float64(p.Scale)

	var profiles []*asProfile
	for _, n := range named {
		profiles = append(profiles, &asProfile{
			AS:       &asdb.AS{Number: n.number, Name: n.name, Type: n.typ},
			Arch:     n.arch,
			FTPShare: n.ftpShare,
			AnonRate: n.anonRate,
			Density:  n.density,
			Mix:      n.mix,
			CertName: n.certName,
		})
	}

	// Tail composition cycles through archetypes: predominantly hosting
	// and ISPs (Table III's 50/25/3 split among the top 78), with
	// academic networks sprinkled in.
	for i := 0; i < tailASCount; i++ {
		share := remaining * tailRaw[i] / tailSum
		prof := &asProfile{FTPShare: share}
		switch {
		case i%11 == 7: // academic: ~9% of ASes
			prof.AS = &asdb.AS{
				Number: uint32(64000 + i),
				Name:   fmt.Sprintf("State University Network %d", i),
				Type:   asdb.TypeAcademic,
			}
			prof.Arch = archAcademic
			prof.AnonRate = 0.12
			prof.Density = 0.010
			prof.Mix = mixAcademic
		case i%3 != 0: // hosting: ~2/3 of the big tail
			prof.AS = &asdb.AS{
				Number: uint32(50000 + i),
				Name:   fmt.Sprintf("Hosting Provider %d", i),
				Type:   asdb.TypeHosting,
			}
			prof.Arch = archHostingTail
			// Tail providers are far less anonymous-friendly than the
			// named outliers: the paper attributes 42% of anonymous
			// servers to hosting overall, most of it in the top ASes.
			prof.AnonRate = 0.035
			prof.Density = 0.18
			prof.Mix = mixHosting
			prof.CertName = tailHostingCerts[i%len(tailHostingCerts)]
		default: // ISPs
			prof.AS = &asdb.AS{
				Number: uint32(30000 + i),
				Name:   fmt.Sprintf("Regional ISP %d", i),
				Type:   asdb.TypeISP,
			}
			prof.Arch = archISPTail
			prof.AnonRate = 0.060
			prof.Density = 0.0042
			prof.Mix = mixISPGeneric
		}
		// Tail ASes churn across epochs: a ReallocRate fraction per epoch
		// is renumbered and renamed — the prefix sold on to a new operator.
		// The allocation itself (prefix, density, mix) is untouched so host
		// presence stays anchored to the address space; only the AS
		// identity the census attributes hosts to changes. Named ASes from
		// the paper's tables never reallocate. At Epoch 0 the loop draws
		// nothing.
		if p.ReallocRate > 0 {
			gen := uint32(0)
			for k := uint64(1); k <= p.Epoch; k++ {
				if chance(derive(epochSeed(p.Seed, k), uint32(i), saltEpochRealloc), p.ReallocRate) {
					gen++
				}
			}
			if gen > 0 {
				prof.AS.Number += gen * 1_000_000
				prof.AS.Name = fmt.Sprintf("%s (realloc %d)", prof.AS.Name, gen)
			}
		}
		profiles = append(profiles, prof)
	}

	// Allocate disjoint address ranges. Each AS gets one prefix sized to
	// expected-count/density, rounded up to a power of two; the density
	// is then recomputed against the allocation so expected counts hold.
	next := uint64(simnet.MustParseIP("1.0.0.0"))
	spaceEnd := uint64(simnet.MustParseIP("1.0.0.0")) + p.ScanSpaceSize()
	for _, prof := range profiles {
		expected := prof.FTPShare * scaledFTPTotal
		prof.ExpectedFTP = expected
		want := expected / prof.Density
		if want < 8 {
			want = 8
		}
		bits := 32 - int(math.Ceil(math.Log2(want)))
		if bits < 2 {
			bits = 2
		}
		if bits > 29 {
			bits = 29
		}
		size := uint64(1) << (32 - bits)
		// Align the base to the prefix size.
		base := (next + size - 1) &^ (size - 1)
		if base+size > uint64(1)<<32 {
			return nil, nil, fmt.Errorf("worldgen: address space exhausted at AS%d", prof.AS.Number)
		}
		prof.AS.Prefixes = []simnet.Prefix{{Base: simnet.IP(base), Bits: bits}}
		prof.Density = expected / float64(size)
		next = base + size
	}
	if next > spaceEnd {
		// The allocation overflowing the nominal scan space only skews
		// the funnel's leading row; allow it but keep densities intact.
		spaceEnd = next
	}

	ases := make([]*asdb.AS, len(profiles))
	for i, prof := range profiles {
		ases[i] = prof.AS
	}
	db, err := asdb.NewDB(ases)
	if err != nil {
		return nil, nil, fmt.Errorf("worldgen: building AS DB: %w", err)
	}
	return db, profiles, nil
}
