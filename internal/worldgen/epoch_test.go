package worldgen

import (
	"testing"

	"ftpcloud/internal/simnet"
)

// epochWorld builds a default-params world at the given epoch.
func epochWorld(t *testing.T, seed uint64, scale int, epoch uint64) *World {
	t.Helper()
	p := DefaultParams(seed, scale)
	p.Epoch = epoch
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEpochZeroBitIdentity: an explicit Epoch-0 world digests identically to
// a world built before the longitudinal layer existed — churn draws nothing
// at epoch zero even with the default nonzero churn rates.
func TestEpochZeroBitIdentity(t *testing.T) {
	for _, g := range benignGoldenDigests {
		w := epochWorld(t, g.seed, g.scale, 0)
		if got := benignWorldDigest(t, w); got != g.digest {
			t.Errorf("seed=%d scale=%d epoch=0: digest %#x, want golden %#x — Epoch 0 must stay bit-identical",
				g.seed, g.scale, got, g.digest)
		}
	}
}

// epochDigest hashes a world's full truth including epoch-visible fields.
// It reuses benignWorldDigest's field walk but tolerates churned services.
func epochDigest(t *testing.T, w *World) uint64 {
	t.Helper()
	return benignWorldDigest(t, w)
}

// TestEpochDeterminism: the same (Seed, Epoch) pair yields an identical
// world on every construction — the cross-process reproducibility the
// longitudinal census depends on. Different epochs yield different worlds.
func TestEpochDeterminism(t *testing.T) {
	const seed, scale = 42, 262144
	digests := make(map[uint64]uint64)
	for _, epoch := range []uint64{0, 1, 2, 5} {
		a := epochDigest(t, epochWorld(t, seed, scale, epoch))
		b := epochDigest(t, epochWorld(t, seed, scale, epoch))
		if a != b {
			t.Errorf("epoch %d: two constructions digest %#x vs %#x", epoch, a, b)
		}
		digests[epoch] = a
	}
	if digests[0] == digests[1] || digests[1] == digests[2] || digests[0] == digests[5] {
		t.Errorf("epochs digest identically (%v); churn is not being applied", digests)
	}
}

// TestEpochChurnIsIncremental: most hosts survive an epoch transition — the
// churned fraction is near ChurnRate, not a wholesale reshuffle — and the
// population size stays calibrated (re-rolls at the stationary density).
func TestEpochChurnIsIncremental(t *testing.T) {
	const seed, scale = 7, 262144
	w0 := epochWorld(t, seed, scale, 0)
	w1 := epochWorld(t, seed, scale, 1)

	base := uint64(w0.ScanBase)
	var ftp0, ftp1, both int
	for off := uint64(0); off < w0.ScanSize; off++ {
		ip := simnet.IP(base + off)
		t0, ok0 := w0.Truth(ip)
		t1, ok1 := w1.Truth(ip)
		if ok0 && t0.FTP {
			ftp0++
		}
		if ok1 && t1.FTP {
			ftp1++
		}
		if ok0 && ok1 && t0.FTP && t1.FTP {
			both++
		}
	}
	if ftp0 == 0 || ftp1 == 0 {
		t.Fatal("no FTP hosts; test vacuous")
	}
	// Population stays within 15% across the epoch (stationary re-roll).
	if ratio := float64(ftp1) / float64(ftp0); ratio < 0.85 || ratio > 1.15 {
		t.Errorf("population drifted %d -> %d (ratio %.3f); churn should be stationary", ftp0, ftp1, ratio)
	}
	// Survivors dominate: with ChurnRate 0.08 well over 80% of epoch-0
	// hosts persist into epoch 1.
	if surv := float64(both) / float64(ftp0); surv < 0.80 {
		t.Errorf("only %.1f%% of hosts survived one epoch; churn too aggressive", surv*100)
	}
	// And some hosts did churn — otherwise the epochs are identical.
	if both == ftp0 && ftp0 == ftp1 {
		t.Error("no host churned across the epoch")
	}
}

// TestEpochUpgradeMigratesVersions: across an epoch some surviving hosts
// change personality (a software upgrade) while most keep theirs.
func TestEpochUpgradeMigratesVersions(t *testing.T) {
	const seed, scale = 42, 262144
	w0 := epochWorld(t, seed, scale, 0)
	w1 := epochWorld(t, seed, scale, 1)

	base := uint64(w0.ScanBase)
	var survived, migrated int
	for off := uint64(0); off < w0.ScanSize; off++ {
		ip := simnet.IP(base + off)
		t0, ok0 := w0.Truth(ip)
		t1, ok1 := w1.Truth(ip)
		if !ok0 || !ok1 || !t0.FTP || !t1.FTP {
			continue
		}
		survived++
		if t0.PersonalityKey != t1.PersonalityKey {
			migrated++
		}
	}
	if survived == 0 {
		t.Fatal("no surviving hosts; test vacuous")
	}
	frac := float64(migrated) / float64(survived)
	// UpgradeRate 0.12 redraws from the same mix, so the observed
	// migration fraction is a bit below 0.12 (a redraw can land on the
	// same personality). Expect a clearly nonzero minority.
	if frac == 0 {
		t.Error("no surviving host migrated personality across the epoch")
	}
	if frac > 0.30 {
		t.Errorf("%.1f%% of survivors migrated; upgrade churn too aggressive", frac*100)
	}
}

// TestEpochReallocRenumbersTailASes: across epochs some tail ASes are
// renumbered while the paper's named ASes never move.
func TestEpochReallocRenumbersTailASes(t *testing.T) {
	const seed, scale = 7, 262144
	w0 := epochWorld(t, seed, scale, 0)
	w3 := epochWorld(t, seed, scale, 3)

	named := make(map[uint32]bool)
	for _, n := range namedASes() {
		named[n.number] = true
	}

	p0, p3 := w0.Profiles(), w3.Profiles()
	if len(p0) != len(p3) {
		t.Fatalf("profile count changed across epochs: %d vs %d", len(p0), len(p3))
	}
	realloc := 0
	for i := range p0 {
		a, b := p0[i].AS, p3[i].AS
		if named[a.Number] {
			if b.Number != a.Number || b.Name != a.Name {
				t.Errorf("named AS%d reallocated to AS%d %q; named ASes must not churn", a.Number, b.Number, b.Name)
			}
			continue
		}
		if b.Number != a.Number {
			realloc++
			if b.Number%1_000_000 != a.Number%1_000_000 {
				t.Errorf("realloc changed AS identity beyond generation: %d -> %d", a.Number, b.Number)
			}
			// The allocation itself must be untouched.
			if len(a.Prefixes) != len(b.Prefixes) || a.Prefixes[0] != b.Prefixes[0] {
				t.Errorf("realloc moved AS%d prefixes", a.Number)
			}
		}
	}
	if realloc == 0 {
		t.Error("no tail AS reallocated over 3 epochs at ReallocRate 0.05")
	}
	if realloc > len(p0)/2 {
		t.Errorf("%d of %d ASes reallocated; realloc churn too aggressive", realloc, len(p0))
	}
}
