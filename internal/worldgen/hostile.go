package worldgen

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"ftpcloud/internal/simnet"
)

// The hostile layer assigns a fraction of FTP hosts a fault personality —
// the adversarial tail every Internet-wide crawl meets: consumer gear on
// congested links, middleboxes that reset long sessions, broken stacks that
// stall data channels, and servers that spew garbage. Transport faults
// (latency, drip, reset, stall) are realized as simnet fault profiles;
// application faults (garbage, premature EOF) replace the host's handler.
//
// Like everything in worldgen, fault assignment is a pure function of
// (seed, ip), so the same world always misbehaves in the same ways.

// FaultClass is a host's hostile personality.
type FaultClass int

// Fault classes.
const (
	FaultNone FaultClass = iota
	// FaultConnectLatency delays connection establishment by 100-350ms.
	FaultConnectLatency
	// FaultSlowDrip delivers bytes a few at a time with per-read delays.
	FaultSlowDrip
	// FaultMidReset resets the control connection after a few hundred
	// bytes — mid-login or mid-traversal.
	FaultMidReset
	// FaultDataStall freezes data channels shortly into each transfer.
	FaultDataStall
	// FaultGarbage greets politely, then answers commands with an endless
	// unterminated reply line.
	FaultGarbage
	// FaultPrematureEOF closes the connection partway through a reply.
	FaultPrematureEOF
)

// String names the class for counters and logs.
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultConnectLatency:
		return "latency"
	case FaultSlowDrip:
		return "drip"
	case FaultMidReset:
		return "rst"
	case FaultDataStall:
		return "stall"
	case FaultGarbage:
		return "garbage"
	case FaultPrematureEOF:
		return "eof"
	default:
		return fmt.Sprintf("fault(%d)", int(c))
	}
}

// FaultMix weights the hostile classes among hostile hosts. Weights are
// relative; the zero value means DefaultFaultMix.
type FaultMix struct {
	Latency float64
	Drip    float64
	Reset   float64
	Stall   float64
	Garbage float64
	EOF     float64
}

// DefaultFaultMix spreads hostile hosts evenly across the classes.
func DefaultFaultMix() FaultMix {
	return FaultMix{Latency: 1, Drip: 1, Reset: 1, Stall: 1, Garbage: 1, EOF: 1}
}

func (m FaultMix) total() float64 {
	return m.Latency + m.Drip + m.Reset + m.Stall + m.Garbage + m.EOF
}

// pick selects a class from the mix with a uniform hash draw.
func (m FaultMix) pick(h uint64) FaultClass {
	if m.total() <= 0 {
		m = DefaultFaultMix()
	}
	x := float64(h%1_000_000) / 1_000_000 * m.total()
	for _, c := range []struct {
		w     float64
		class FaultClass
	}{
		{m.Latency, FaultConnectLatency},
		{m.Drip, FaultSlowDrip},
		{m.Reset, FaultMidReset},
		{m.Stall, FaultDataStall},
		{m.Garbage, FaultGarbage},
		{m.EOF, FaultPrematureEOF},
	} {
		if x < c.w {
			return c.class
		}
		x -= c.w
	}
	return FaultPrematureEOF
}

// ParseFaultMix parses "latency=1,drip=2,rst=1,stall=1,garbage=0,eof=1".
// Omitted classes get weight zero; an empty string means DefaultFaultMix.
func ParseFaultMix(s string) (FaultMix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultFaultMix(), nil
	}
	var m FaultMix
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("worldgen: fault mix term %q: want class=weight", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("worldgen: fault mix weight %q", kv[1])
		}
		switch strings.ToLower(kv[0]) {
		case "latency":
			m.Latency = w
		case "drip":
			m.Drip = w
		case "rst":
			m.Reset = w
		case "stall":
			m.Stall = w
		case "garbage":
			m.Garbage = w
		case "eof":
			m.EOF = w
		default:
			return m, fmt.Errorf("worldgen: unknown fault class %q", kv[0])
		}
	}
	if m.total() <= 0 {
		return m, fmt.Errorf("worldgen: fault mix %q has zero total weight", s)
	}
	return m, nil
}

// faultClassFor derives a host's fault personality — a pure function of
// (seed, ip), independent of every pre-existing derivation (the salts sit at
// the end of the list).
func (w *World) faultClassFor(u uint32) FaultClass {
	if w.Params.HostileRate <= 0 {
		return FaultNone
	}
	seed := w.Params.Seed
	if !chance(derive(seed, u, saltFault), w.Params.HostileRate) {
		return FaultNone
	}
	return w.Params.FaultMix.pick(derive(seed, u, saltFaultClass))
}

// Compile-time assertion: a World plugs straight into Network.Faults.
var _ simnet.FaultInjector = (*World)(nil)

// FaultFor implements simnet.FaultInjector: transport-level fault profiles
// for connections to hostile hosts. It derives from truth without
// materializing anything — the scan path stays allocation-free for the
// benign majority. Application-level classes (garbage, EOF) return nil here;
// they are realized in materialize.
func (w *World) FaultFor(_, dst simnet.IP, port uint16) *simnet.FaultProfile {
	if w.Params.HostileRate <= 0 {
		return nil
	}
	// Fault personalities attach to FTP hosts (the derivation mirrors
	// Truth's presence decision) — and, when the service layer is on, to
	// the non-FTP services squatting on 21, so the identification stage
	// meets dripped banners and mid-read resets exactly as the
	// enumerator does.
	u := uint32(dst)
	prof := w.profileFor(dst)
	if prof == nil || !chance(derive(w.Params.Seed, u, saltFTP), prof.Density) {
		if !w.Params.ServiceMix.Enabled() ||
			!chance(derive(w.Params.Seed, u, saltNonFTP), w.nonFTPRate) {
			return nil
		}
	}
	h := derive(w.Params.Seed, u, saltFaultParam)
	switch w.faultClassFor(u) {
	case FaultConnectLatency:
		return &simnet.FaultProfile{
			ConnectLatency: 100*time.Millisecond + time.Duration(h%250)*time.Millisecond,
		}
	case FaultSlowDrip:
		return &simnet.FaultProfile{
			DripBytes: 16 + int(h%48),
			DripDelay: time.Millisecond + time.Duration(h>>8%4)*time.Millisecond,
		}
	case FaultMidReset:
		if port != 21 {
			return nil
		}
		return &simnet.FaultProfile{ResetAfterBytes: 256 + int64(h%1024)}
	case FaultDataStall:
		if port == 21 {
			return nil
		}
		return &simnet.FaultProfile{StallAfterBytes: int64(h % 256)}
	default:
		return nil
	}
}

// garbageHandler greets with a valid banner, then answers the first command
// with a bounded flood of unterminated garbage — the shape that trips the
// ftp package's line cap.
func garbageHandler(u uint32, seed uint64) simnet.Handler {
	return simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		if _, err := conn.Write([]byte("220 FTP server ready\r\n")); err != nil {
			return
		}
		buf := make([]byte, 512)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		h := derive(seed, u, saltFaultParam)
		junk := []byte(strings.Repeat("\xfe#@!", 1024)) // 4 KiB, no newline
		for i, n := 0, 16+int(h%48); i < n; i++ {
			if _, err := conn.Write(junk); err != nil {
				return
			}
		}
	})
}

// prematureEOFHandler sends part of a multi-line banner and hangs up.
func prematureEOFHandler() simnet.Handler {
	return simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		conn.Write([]byte("220-Welcome to the\r\n220-file archi"))
		conn.Close()
	})
}
