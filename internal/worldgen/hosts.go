package worldgen

import (
	"net"
	"path"
	"time"

	"ftpcloud/internal/campaigns"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// hostEntry is one materialized host. FTP hosts carry a live server whose
// filesystem persists across connections (so an attacker's upload is visible
// to a later crawl); non-FTP hosts carry a junk banner handler.
type hostEntry struct {
	truth   HostTruth
	handler simnet.Handler
}

// Listening implements simnet.Host.
func (h *hostEntry) Listening(port uint16) bool { return port == 21 }

// Handler implements simnet.Host.
func (h *hostEntry) Handler(port uint16) simnet.Handler {
	if port != 21 {
		return nil
	}
	return h.handler
}

// Lookup implements simnet.HostProvider. Scanner probes never reach it —
// they go through PortOpen, which answers from truth alone — so Lookup only
// runs when a connection is actually built. Materialization happens on that
// first real contact and is cached (sharded by IP) so filesystem state
// persists across connections.
func (w *World) Lookup(ip simnet.IP) simnet.Host {
	sh := &w.hosts[uint32(ip)&(hostShards-1)]
	sh.mu.Lock()
	if entry, ok := sh.m[ip]; ok {
		sh.mu.Unlock()
		return entry
	}
	sh.mu.Unlock()

	truth, present := w.Truth(ip)
	if !present {
		return nil
	}
	entry := w.materialize(truth)

	sh.mu.Lock()
	// Another goroutine may have materialized concurrently; keep the
	// first entry so filesystem state stays consistent.
	if prior, ok := sh.m[ip]; ok {
		sh.mu.Unlock()
		return prior
	}
	sh.m[ip] = entry
	sh.mu.Unlock()
	return entry
}

// MaterializedHosts reports how many hosts have been built (diagnostics and
// the lazy-vs-eager ablation). With truth-only discovery this equals the
// hosts the enumerator dialed, not the hosts the scanner probed.
func (w *World) MaterializedHosts() int {
	n := 0
	for i := range w.hosts {
		w.hosts[i].mu.Lock()
		n += len(w.hosts[i].m)
		w.hosts[i].mu.Unlock()
	}
	return n
}

// materialize builds the live host for a ground truth record.
func (w *World) materialize(t HostTruth) *hostEntry {
	if t.NonFTPOpen {
		if t.Service != ServiceNone {
			return &hostEntry{truth: t, handler: serviceHandler(t.Service, uint32(t.IP), w.Params.Seed)}
		}
		return &hostEntry{truth: t, handler: nonFTPHandler(uint32(t.IP), w.Params.Seed)}
	}

	// Application-level hostile personalities replace the server outright;
	// transport-level classes keep the real server and get their faults
	// from FaultFor via the network layer.
	switch t.Fault {
	case FaultGarbage:
		return &hostEntry{truth: t, handler: garbageHandler(uint32(t.IP), w.Params.Seed)}
	case FaultPrematureEOF:
		return &hostEntry{truth: t, handler: prematureEOFHandler()}
	}

	pers := personality.ByKey(t.PersonalityKey)
	fs := w.buildHostFS(t)

	cfg := ftpserver.Config{
		Pers:           pers,
		FS:             fs,
		HostName:       t.HostName,
		PublicIP:       t.IP,
		InternalIP:     t.InternalIP,
		AllowAnonymous: t.Anonymous,
		AnonWritable:   t.Writable,
		RequireTLS:     t.RequireTLS,
		RequestLimit:   t.RequestLimit,
		IdleTimeout:    30 * time.Second,
	}
	if t.CertName != "" {
		cfg.Cert = w.Certs.Get(t.CertName)
	}
	srv, err := ftpserver.New(cfg)
	if err != nil {
		// Config assembly is internal; a failure is a generator bug.
		panic("worldgen: building host server: " + err.Error())
	}
	return &hostEntry{truth: t, handler: srv.SimHandler()}
}

// buildHostFS constructs the filesystem, robots.txt, and infections.
func (w *World) buildHostFS(t HostTruth) *vfs.FS {
	treeSeed := derive(w.Params.Seed, uint32(t.IP), saltTreeSeed)
	fs := buildTree(t.Tree, treeSeed, t.Sensitive)
	r := newRNG(treeSeed ^ 0xbeef)

	switch t.Robots {
	case RobotsExcludeAll:
		putFile(fs, "/robots.txt", []byte("User-agent: *\nDisallow: /\n"))
	case RobotsPartial:
		putFile(fs, "/robots.txt", []byte("User-agent: *\nDisallow: /private\nDisallow: /tmp\n"))
	}

	for _, key := range t.Campaigns {
		plantCampaign(fs, r, key)
	}
	return fs
}

func putFile(fs *vfs.FS, p string, content []byte) {
	// Campaign artifacts arrived via anonymous upload, so they carry the
	// attribution that lets approval-gated servers (Pure-FTPd) confirm
	// them with the RETR refusal the paper's reference set keys on.
	if _, err := fs.PutUpload(p, content, vfs.Perm644, true, "ftp", true); err != nil {
		// The parent always exists for root-level plants; deeper plants
		// fall back to the root.
		base := path.Base(p)
		fs.PutUpload("/"+base, content, vfs.Perm644, true, "ftp", true)
	}
}

// pickCampaigns selects the infections for a writable host. Probabilities
// follow §VI's relative prevalence among the ~19.4K writable servers.
func pickCampaigns(h uint64) []string {
	var keys []string
	draw := func(salt uint64, p float64) bool {
		return chance(splitmix64(h^salt), p)
	}
	if draw(1, 0.70) { // write probes: the dominant evidence class
		probes := []string{
			campaigns.KeyProbeW0000000t,
			campaigns.KeyProbeSjutd,
			campaigns.KeyProbeHelloWorld,
		}
		keys = append(keys, probes[pickN(splitmix64(h^2), len(probes))])
	}
	if draw(3, 0.25) {
		keys = append(keys, campaigns.KeyWaReZ)
	}
	if draw(4, 0.108) {
		keys = append(keys, campaigns.KeyCrackFlier)
	}
	if draw(5, 0.092) {
		ddos := []string{campaigns.KeyDDoSHistory, campaigns.KeyDDoSPhzLtoxn}
		keys = append(keys, ddos[pickN(splitmix64(h^6), len(ddos))])
	}
	if draw(7, 0.065) {
		keys = append(keys, campaigns.KeyFtpchk3)
	}
	if draw(8, 0.058) {
		keys = append(keys, campaigns.KeyHolyBible)
	}
	if draw(9, 0.037) {
		keys = append(keys, campaigns.KeyRATEval)
	}
	return keys
}

// plantCampaign drops one campaign's artifacts into a filesystem the way
// its operators do: probes and fliers at the login root, RATs sprinkled
// toward web roots, WaReZ as timestamped directories.
func plantCampaign(fs *vfs.FS, r *rng, key string) {
	switch key {
	case campaigns.KeyWaReZ:
		for i, n := 0, r.rangeInt(1, 5); i < n; i++ {
			name := warezDirName(r)
			if _, err := fs.Mkdir("/"+name, vfs.Perm777); err != nil {
				continue
			}
			// Many WaReZ drops were found already emptied (§VI.C).
			if r.chance(0.4) {
				fs.Put("/"+name+"/release.r"+twoDigits(r.intn(100)),
					[]byte("synthetic warez payload"), vfs.Perm644, true)
			}
		}
		return
	case campaigns.KeyFtpchk3:
		c := campaigns.ByKey(key)
		// Infection stage determines which artifacts are present.
		stage := 1 + r.intn(len(c.Artifacts))
		for _, a := range c.Artifacts {
			if a.Stage <= stage {
				putFile(fs, "/"+a.Name, []byte(a.Content))
			}
		}
		return
	}

	c := campaigns.ByKey(key)
	if c == nil {
		return
	}
	for _, a := range c.Artifacts {
		target := "/" + a.Name
		if key == campaigns.KeyRATEval {
			// RATs are uploaded across the tree to improve the odds of
			// landing in a web root.
			if dir := pickDir(fs, r); dir != "/" {
				target = dir + "/" + a.Name
			}
			putFile(fs, "/"+a.Name, []byte(a.Content))
		}
		putFile(fs, target, []byte(a.Content))
	}
}

// pickDir selects a random existing directory.
func pickDir(fs *vfs.FS, r *rng) string {
	var dirs []string
	fs.Root().Walk("/", func(p string, n *vfs.Node) bool {
		if n.IsDir {
			dirs = append(dirs, p)
		}
		return len(dirs) < 64
	})
	if len(dirs) == 0 {
		return "/"
	}
	return dirs[r.intn(len(dirs))]
}

func warezDirName(r *rng) string {
	return twoDigits(r.rangeInt(4, 15)) + twoDigits(r.rangeInt(1, 12)) +
		twoDigits(r.rangeInt(1, 28)) + twoDigits(r.intn(24)) +
		twoDigits(r.intn(60)) + twoDigits(r.intn(60)) + "p"
}

func twoDigits(n int) string {
	return string([]byte{byte('0' + n/10%10), byte('0' + n%10)})
}

// nonFTPHandler mimics the 8M hosts that accept TCP/21 without speaking
// FTP: most emit a non-FTP banner, the rest close silently.
func nonFTPHandler(ip uint32, seed uint64) simnet.Handler {
	return simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		h := derive(seed, ip, saltNonFTP+1)
		switch h % 3 {
		case 0:
			conn.Write([]byte("SSH-2.0-OpenSSH_5.3\r\n"))
		case 1:
			conn.Write([]byte("\x00\x00\x00\x00garbage"))
		default:
			// Silent close.
		}
	})
}
