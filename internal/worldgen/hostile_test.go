package worldgen

import (
	"testing"

	"ftpcloud/internal/simnet"
)

func hostileWorld(t *testing.T, rate float64, mix FaultMix) *World {
	t.Helper()
	p := DefaultParams(77, 65536)
	p.HostileRate = rate
	p.FaultMix = mix
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// ftpHosts samples FTP addresses from the scan space.
func ftpHosts(w *World, max int) []simnet.IP {
	var out []simnet.IP
	for off := uint64(0); off < w.ScanSize && len(out) < max; off++ {
		ip := simnet.IP(uint32(w.ScanBase) + uint32(off))
		if t, ok := w.Truth(ip); ok && t.FTP {
			out = append(out, ip)
		}
	}
	return out
}

func TestHostileRateZeroMeansNoFaults(t *testing.T) {
	w := hostileWorld(t, 0, FaultMix{})
	for _, ip := range ftpHosts(w, 200) {
		truth, _ := w.Truth(ip)
		if truth.Fault != FaultNone {
			t.Fatalf("%s assigned %v with HostileRate=0", ip, truth.Fault)
		}
		if prof := w.FaultFor(0, ip, 21); prof != nil {
			t.Fatalf("%s got a fault profile with HostileRate=0", ip)
		}
	}
}

func TestFaultAssignmentDeterministic(t *testing.T) {
	a := hostileWorld(t, 0.5, DefaultFaultMix())
	b := hostileWorld(t, 0.5, DefaultFaultMix())
	for _, ip := range ftpHosts(a, 300) {
		ta, _ := a.Truth(ip)
		tb, _ := b.Truth(ip)
		if ta.Fault != tb.Fault {
			t.Fatalf("%s: fault differs across identical worlds: %v vs %v", ip, ta.Fault, tb.Fault)
		}
	}
}

// TestFaultForAgreesWithTruth: the injector consulted by the network must
// describe the same personality Truth reports — transport classes yield a
// profile, application classes and FaultNone yield none on the control port.
func TestFaultForAgreesWithTruth(t *testing.T) {
	w := hostileWorld(t, 1.0, DefaultFaultMix())
	seen := map[FaultClass]int{}
	for _, ip := range ftpHosts(w, 400) {
		truth, _ := w.Truth(ip)
		seen[truth.Fault]++
		ctl := w.FaultFor(0, ip, 21)
		data := w.FaultFor(0, ip, 2121)
		switch truth.Fault {
		case FaultConnectLatency:
			if ctl == nil || ctl.ConnectLatency <= 0 {
				t.Errorf("%s: latency class without latency profile", ip)
			}
		case FaultSlowDrip:
			if ctl == nil || ctl.DripBytes == 0 {
				t.Errorf("%s: drip class without drip profile", ip)
			}
		case FaultMidReset:
			if ctl == nil || ctl.ResetAfterBytes == 0 {
				t.Errorf("%s: reset class without control-port profile", ip)
			}
			if data != nil {
				t.Errorf("%s: reset profile leaked onto data port", ip)
			}
		case FaultDataStall:
			if data == nil || data.StallAfterBytes < 0 {
				t.Errorf("%s: stall class without data-port profile", ip)
			}
			if ctl != nil {
				t.Errorf("%s: stall profile leaked onto control port", ip)
			}
		case FaultGarbage, FaultPrematureEOF:
			if ctl != nil || data != nil {
				t.Errorf("%s: application-level class %v got a transport profile", ip, truth.Fault)
			}
		}
	}
	// With HostileRate=1 and a uniform mix, every class must appear.
	for _, c := range []FaultClass{
		FaultConnectLatency, FaultSlowDrip, FaultMidReset,
		FaultDataStall, FaultGarbage, FaultPrematureEOF,
	} {
		if seen[c] == 0 {
			t.Errorf("class %v never assigned across %d hosts", c, len(ftpHosts(w, 400)))
		}
	}
	if seen[FaultNone] != 0 {
		t.Errorf("HostileRate=1 left %d hosts benign", seen[FaultNone])
	}
}

func TestFaultForNonFTPHostsClean(t *testing.T) {
	w := hostileWorld(t, 1.0, DefaultFaultMix())
	checked := 0
	for off := uint64(0); off < w.ScanSize && checked < 300; off++ {
		ip := simnet.IP(uint32(w.ScanBase) + uint32(off))
		if truth, ok := w.Truth(ip); ok && truth.FTP {
			continue
		}
		checked++
		if prof := w.FaultFor(0, ip, 21); prof != nil {
			t.Fatalf("non-FTP address %s got a fault profile", ip)
		}
	}
}

func TestParseFaultMix(t *testing.T) {
	m, err := ParseFaultMix("drip=2,rst=1,stall=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if m.Drip != 2 || m.Reset != 1 || m.Stall != 0.5 || m.Garbage != 0 {
		t.Errorf("parsed mix: %+v", m)
	}
	if m, err := ParseFaultMix(""); err != nil || m != DefaultFaultMix() {
		t.Errorf("empty mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"bogus=1", "drip", "drip=-1", "drip=0"} {
		if _, err := ParseFaultMix(bad); err == nil {
			t.Errorf("ParseFaultMix(%q) succeeded", bad)
		}
	}
}

// TestHostileSaltsPreserveBenignDerivations: a hostile world's benign hosts
// must be identical to the same seed's fully benign world — the new salts
// sit at the end of the list and perturb nothing else.
func TestHostileSaltsPreserveBenignDerivations(t *testing.T) {
	benign := hostileWorld(t, 0, FaultMix{})
	hostile := hostileWorld(t, 0.3, DefaultFaultMix())
	for _, ip := range ftpHosts(benign, 200) {
		tb, _ := benign.Truth(ip)
		th, okH := hostile.Truth(ip)
		if !okH {
			t.Fatalf("%s present in benign world only", ip)
		}
		th.Fault = FaultNone
		tb.Fault = FaultNone
		if tb.PersonalityKey != th.PersonalityKey || tb.Anonymous != th.Anonymous ||
			tb.Writable != th.Writable || tb.Tree != th.Tree || tb.CertName != th.CertName {
			t.Fatalf("%s: benign attributes changed by hostile layer:\n%+v\n%+v", ip, tb, th)
		}
	}
}
