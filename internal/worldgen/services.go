package worldgen

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"ftpcloud/internal/simnet"
)

// The service layer puts non-FTP protocols on port 21, the population LZR
// ("LZR: Identifying Unexpected Internet Services") found behind a large
// share of hits on any scanned port: web servers on wrong ports, SSH and
// telnet daemons, TLS endpoints, and boxes that answer with garbage or
// nothing at all. With a ServiceMix configured, the hosts that accept TCP/21
// without speaking FTP (the paper's 8M-host remainder) are materialized as
// real dialable services instead of the legacy three-way junk handler, so
// the scan path's identification stage has honest protocols to fingerprint.
//
// Like every worldgen layer, service assignment is a pure function of
// (seed, ip) drawn from end-appended salts: worlds with the zero-value
// ServiceMix are bit-identical to worlds generated before this layer
// existed (TestBenignWorldBitIdentity).

// ServiceClass is the protocol a non-FTP host speaks on port 21.
type ServiceClass int

// Service classes. ServiceNone marks hosts outside the mix (legacy junk
// handler); the rest are realized as dialable protocol responders.
const (
	ServiceNone ServiceClass = iota
	// ServiceHTTP waits for a request and answers with an HTTP error —
	// client-first, so a banner-waiting scanner sees silence.
	ServiceHTTP
	// ServiceSSH sends its version banner immediately (server-first).
	ServiceSSH
	// ServiceTLS waits for a ClientHello and answers any bytes with a
	// fatal TLS alert record (client-first).
	ServiceTLS
	// ServiceTelnet sends IAC option negotiation immediately (server-first).
	ServiceTelnet
	// ServiceGarbage sends protocol-less junk bytes immediately.
	ServiceGarbage
	// ServiceSilent accepts the connection and never sends a byte.
	ServiceSilent
)

// String names the class for counters, tables, and logs.
func (c ServiceClass) String() string {
	switch c {
	case ServiceNone:
		return "none"
	case ServiceHTTP:
		return "http"
	case ServiceSSH:
		return "ssh"
	case ServiceTLS:
		return "tls"
	case ServiceTelnet:
		return "telnet"
	case ServiceGarbage:
		return "garbage"
	case ServiceSilent:
		return "silent"
	default:
		return fmt.Sprintf("service(%d)", int(c))
	}
}

// ServiceMix weights the service classes among non-FTP-open hosts. Weights
// are relative; the zero value disables the layer entirely (legacy junk
// handler, bit-identical worlds).
type ServiceMix struct {
	HTTP    float64
	SSH     float64
	TLS     float64
	Telnet  float64
	Garbage float64
	Silent  float64
}

// DefaultServiceMix approximates LZR's port-diversity finding: HTTP
// dominates unexpected services, followed by TLS, SSH, and the
// garbage/silent tail.
func DefaultServiceMix() ServiceMix {
	return ServiceMix{HTTP: 4, TLS: 2, SSH: 2, Telnet: 1, Garbage: 2, Silent: 1}
}

// Enabled reports whether the mix puts services on port 21 at all.
func (m ServiceMix) Enabled() bool { return m.total() > 0 }

func (m ServiceMix) total() float64 {
	return m.HTTP + m.SSH + m.TLS + m.Telnet + m.Garbage + m.Silent
}

// pick selects a class from the mix with a uniform hash draw.
func (m ServiceMix) pick(h uint64) ServiceClass {
	if m.total() <= 0 {
		return ServiceNone
	}
	x := float64(h%1_000_000) / 1_000_000 * m.total()
	for _, c := range []struct {
		w     float64
		class ServiceClass
	}{
		{m.HTTP, ServiceHTTP},
		{m.SSH, ServiceSSH},
		{m.TLS, ServiceTLS},
		{m.Telnet, ServiceTelnet},
		{m.Garbage, ServiceGarbage},
		{m.Silent, ServiceSilent},
	} {
		if x < c.w {
			return c.class
		}
		x -= c.w
	}
	return ServiceSilent
}

// ParseServiceMix parses "http=4,ssh=2,tls=2,telnet=1,garbage=2,silent=1".
// Omitted classes get weight zero; an empty string means DefaultServiceMix.
func ParseServiceMix(s string) (ServiceMix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultServiceMix(), nil
	}
	var m ServiceMix
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("worldgen: service mix term %q: want class=weight", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("worldgen: service mix weight %q", kv[1])
		}
		switch strings.ToLower(kv[0]) {
		case "http":
			m.HTTP = w
		case "ssh":
			m.SSH = w
		case "tls":
			m.TLS = w
		case "telnet":
			m.Telnet = w
		case "garbage":
			m.Garbage = w
		case "silent":
			m.Silent = w
		default:
			return m, fmt.Errorf("worldgen: unknown service class %q", kv[0])
		}
	}
	if m.total() <= 0 {
		return m, fmt.Errorf("worldgen: service mix %q has zero total weight", s)
	}
	return m, nil
}

// serviceReadWindow bounds how long a materialized service waits on client
// bytes before hanging up — simulated scanners that never speak must not pin
// handler goroutines.
const serviceReadWindow = 5 * time.Second

// serviceHandler materializes one service class as a dialable handler.
// Per-host variability (server header, SSH version) draws from
// saltServiceParam so it never perturbs other derivations.
func serviceHandler(class ServiceClass, u uint32, seed uint64) simnet.Handler {
	h := derive(seed, u, saltServiceParam)
	switch class {
	case ServiceHTTP:
		return httpServiceHandler(h)
	case ServiceSSH:
		return sshServiceHandler(h)
	case ServiceTLS:
		return tlsServiceHandler()
	case ServiceTelnet:
		return telnetServiceHandler()
	case ServiceGarbage:
		return garbageServiceHandler(h)
	case ServiceSilent:
		return silentServiceHandler()
	default:
		return nonFTPHandler(u, seed)
	}
}

// httpServers is the Server-header population for misplaced web servers.
var httpServers = []string{
	"Apache/2.2.15 (CentOS)",
	"nginx/1.10.3",
	"Microsoft-IIS/7.5",
	"lighttpd/1.4.35",
}

// httpServiceHandler waits for a request (HTTP is client-first on the wire)
// and answers anything with a 400 and a Connection: close.
func httpServiceHandler(h uint64) simnet.Handler {
	server := httpServers[pickN(h, len(httpServers))]
	return simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(serviceReadWindow))
		buf := make([]byte, 1024)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		fmt.Fprintf(conn, "HTTP/1.1 400 Bad Request\r\nServer: %s\r\nContent-Length: 0\r\nConnection: close\r\n\r\n", server)
	})
}

// sshVersions is the banner population for SSH daemons squatting on 21.
var sshVersions = []string{
	"SSH-2.0-OpenSSH_5.3",
	"SSH-2.0-OpenSSH_7.4",
	"SSH-2.0-dropbear_2014.63",
	"SSH-1.99-Cisco-1.25",
}

// sshServiceHandler greets immediately (SSH is server-first), then waits for
// the client's identification string before hanging up.
func sshServiceHandler(h uint64) simnet.Handler {
	banner := sshVersions[pickN(h, len(sshVersions))] + "\r\n"
	return simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		if _, err := conn.Write([]byte(banner)); err != nil {
			return
		}
		conn.SetReadDeadline(time.Now().Add(serviceReadWindow))
		buf := make([]byte, 256)
		conn.Read(buf)
	})
}

// tlsAlertHandshakeFailure is a TLS record-layer fatal alert (type 21,
// version 3.3, handshake_failure) — the shape a TLS endpoint answers when
// the client's first bytes are not a ClientHello it accepts.
var tlsAlertHandshakeFailure = []byte{0x15, 0x03, 0x03, 0x00, 0x02, 0x02, 0x28}

// tlsServiceHandler waits for client bytes (TLS is client-first) and answers
// anything with a fatal alert record.
func tlsServiceHandler() simnet.Handler {
	return simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(serviceReadWindow))
		buf := make([]byte, 1024)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		conn.Write(tlsAlertHandshakeFailure)
	})
}

// telnetNegotiation is a typical telnetd opener: IAC DO TERMINAL-TYPE,
// IAC DO WINDOW-SIZE, IAC WILL ECHO, IAC WILL SUPPRESS-GO-AHEAD.
var telnetNegotiation = []byte{
	0xFF, 0xFD, 0x18,
	0xFF, 0xFD, 0x1F,
	0xFF, 0xFB, 0x01,
	0xFF, 0xFB, 0x03,
}

// telnetServiceHandler negotiates immediately (telnet is server-first), then
// waits briefly for the client's side before hanging up.
func telnetServiceHandler() simnet.Handler {
	return simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		if _, err := conn.Write(telnetNegotiation); err != nil {
			return
		}
		conn.SetReadDeadline(time.Now().Add(serviceReadWindow))
		buf := make([]byte, 256)
		conn.Read(buf)
	})
}

// garbageServiceHandler speaks no protocol at all: a deterministic burst of
// high bytes chosen to collide with no real protocol's opening (never a
// digit, never 0xFF, never a TLS record type).
func garbageServiceHandler(h uint64) simnet.Handler {
	n := 32 + int(h%96)
	junk := make([]byte, n)
	x := h
	for i := range junk {
		x = splitmix64(x)
		junk[i] = 0x80 | byte(x%0x60) // 0x80..0xDF
	}
	return simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		conn.Write(junk)
	})
}

// silentServiceHandler accepts and never writes — the tarpit shape LZR
// sheds with its wait-then-trigger round-trip. The connection closes once
// the client stops sending or the read window lapses.
func silentServiceHandler() simnet.Handler {
	return simnet.HandlerFunc(func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(serviceReadWindow))
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	})
}
