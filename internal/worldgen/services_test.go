package worldgen

import (
	"testing"
	"time"

	"ftpcloud/internal/simnet"
)

func mixedWorld(t *testing.T, scale int, hostile float64) *World {
	t.Helper()
	p := DefaultParams(11, scale)
	p.FTPRateOfOpen = 0.35 // densify the non-FTP population for coverage
	p.ServiceMix = DefaultServiceMix()
	p.HostileRate = hostile
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestParseServiceMix: the flag grammar round-trips and rejects nonsense.
func TestParseServiceMix(t *testing.T) {
	m, err := ParseServiceMix("http=4,ssh=1,tls=2,telnet=0.5,garbage=1,silent=1")
	if err != nil {
		t.Fatal(err)
	}
	if m.HTTP != 4 || m.Telnet != 0.5 {
		t.Errorf("parsed mix %+v", m)
	}
	if m, err := ParseServiceMix(""); err != nil || m != DefaultServiceMix() {
		t.Errorf("empty mix: got %+v, %v; want default", m, err)
	}
	for _, bad := range []string{"http", "http=x", "ftp=1", "http=0,ssh=0"} {
		if _, err := ParseServiceMix(bad); err == nil {
			t.Errorf("ParseServiceMix(%q) accepted", bad)
		}
	}
}

// TestServiceAssignmentDeterministic: service classes are a pure function of
// (seed, ip) and cover every class at a realistic density.
func TestServiceAssignmentDeterministic(t *testing.T) {
	w1 := mixedWorld(t, 262144, 0)
	w2 := mixedWorld(t, 262144, 0)
	base := uint64(w1.ScanBase)
	seen := map[ServiceClass]int{}
	for off := uint64(0); off < w1.ScanSize; off++ {
		ip := simnet.IP(base + off)
		t1, ok1 := w1.Truth(ip)
		t2, ok2 := w2.Truth(ip)
		if ok1 != ok2 || t1.Service != t2.Service {
			t.Fatalf("%s: service derivation not deterministic (%v vs %v)", ip, t1.Service, t2.Service)
		}
		if !ok1 {
			continue
		}
		if t1.FTP && t1.Service != ServiceNone {
			t.Fatalf("%s: FTP host carries service %v", ip, t1.Service)
		}
		if t1.NonFTPOpen {
			if t1.Service == ServiceNone {
				t.Fatalf("%s: non-FTP host missed the service mix", ip)
			}
			seen[t1.Service]++
		}
	}
	for _, class := range []ServiceClass{ServiceHTTP, ServiceSSH, ServiceTLS, ServiceTelnet, ServiceGarbage, ServiceSilent} {
		if seen[class] == 0 {
			t.Errorf("service class %v never assigned (population %v)", class, seen)
		}
	}
}

// TestServiceHandlersDialable: every service class materializes as a real
// dialable host whose first response bytes match its protocol.
func TestServiceHandlersDialable(t *testing.T) {
	w := mixedWorld(t, 262144, 0)
	nw := simnet.NewNetwork(w)
	src := simnet.MustParseIP("250.0.0.9")
	base := uint64(w.ScanBase)
	checked := map[ServiceClass]bool{}
	for off := uint64(0); off < w.ScanSize && len(checked) < 6; off++ {
		ip := simnet.IP(base + off)
		truth, ok := w.Truth(ip)
		if !ok || !truth.NonFTPOpen || checked[truth.Service] {
			continue
		}
		checked[truth.Service] = true
		conn, err := nw.DialFrom(src, ip, 21)
		if err != nil {
			t.Fatalf("dial %s (%v): %v", ip, truth.Service, err)
		}
		// Server-first classes answer without a trigger; client-first
		// classes need bytes on the wire.
		conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		buf := make([]byte, 256)
		n, _ := conn.Read(buf)
		if n == 0 {
			conn.Write([]byte("GET / HTTP/1.0\r\n\r\n"))
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, _ = conn.Read(buf)
		}
		got := buf[:n]
		switch truth.Service {
		case ServiceSSH:
			if string(got[:4]) != "SSH-" {
				t.Errorf("%s: ssh host answered %q", ip, got)
			}
		case ServiceHTTP:
			if string(got[:5]) != "HTTP/" {
				t.Errorf("%s: http host answered %q", ip, got)
			}
		case ServiceTLS:
			if len(got) < 2 || got[0] != 0x15 || got[1] != 0x03 {
				t.Errorf("%s: tls host answered %x", ip, got)
			}
		case ServiceTelnet:
			if len(got) == 0 || got[0] != 0xFF {
				t.Errorf("%s: telnet host answered %x", ip, got)
			}
		case ServiceGarbage:
			if len(got) == 0 || got[0] < 0x80 {
				t.Errorf("%s: garbage host answered %x", ip, got)
			}
		case ServiceSilent:
			if n != 0 {
				t.Errorf("%s: silent host answered %x", ip, got)
			}
		}
		conn.Close()
	}
	if len(checked) < 6 {
		t.Fatalf("only saw service classes %v in the sweep", checked)
	}
}

// TestServiceFaultInjection: with a hostile rate, transport faults attach to
// service hosts too — the identification stage must meet dripped and
// delayed banners (fault injection intact through the service layer).
func TestServiceFaultInjection(t *testing.T) {
	w := mixedWorld(t, 262144, 0.5)
	base := uint64(w.ScanBase)
	src := simnet.MustParseIP("250.0.0.9")
	faulted := 0
	for off := uint64(0); off < w.ScanSize; off++ {
		ip := simnet.IP(base + off)
		truth, ok := w.Truth(ip)
		if !ok || !truth.NonFTPOpen {
			continue
		}
		if prof := w.FaultFor(src, ip, 21); prof != nil {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("no service host drew a transport fault profile at HostileRate=0.5")
	}
}
