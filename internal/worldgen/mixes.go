package worldgen

import (
	"ftpcloud/internal/personality"
)

// mixEntry weights one personality within an AS archetype, optionally
// overriding the AS-level anonymous rate (consumer devices ship with their
// own defaults — Table VII's per-device anonymous percentages).
type mixEntry struct {
	key      string
	weight   float64
	anonRate float64 // negative = inherit the AS rate
}

// personalityMix is a named distribution over personalities.
type personalityMix struct {
	entries []mixEntry
	weights []float64 // cached for pickWeighted
}

func newMix(entries ...mixEntry) *personalityMix {
	m := &personalityMix{entries: entries}
	m.weights = make([]float64, len(entries))
	for i, e := range entries {
		if personality.ByKey(e.key) == nil {
			panic("worldgen: mix references unknown personality " + e.key)
		}
		m.weights[i] = e.weight
	}
	return m
}

// pick selects a mix entry by hash.
func (m *personalityMix) pick(h uint64) mixEntry {
	i := pickWeighted(h, m.weights)
	if i < 0 {
		panic("worldgen: empty personality mix")
	}
	return m.entries[i]
}

// inherit marks entries that use the AS-level anonymous rate.
const inherit = -1.0

// Per-device anonymous rates from Table VII (consumer) and Table V
// (provider-deployed, all ≈ zero).
var (
	mixHosting = newMix(
		mixEntry{personality.KeyHostedCPanel, 0.38, inherit},
		mixEntry{personality.KeyHostedPlesk, 0.20, inherit},
		mixEntry{personality.KeyProFTPD135, 0.08, inherit},
		mixEntry{personality.KeyProFTPD134a, 0.04, inherit},
		mixEntry{personality.KeyProFTPD133c, 0.06, inherit},
		mixEntry{personality.KeyPureFTPd1036, 0.08, inherit},
		mixEntry{personality.KeyFileZilla0941, 0.06, inherit},
		mixEntry{personality.KeyFileZilla0953, 0.03, inherit},
		mixEntry{personality.KeyIIS75, 0.04, inherit},
		mixEntry{personality.KeyServU64, 0.015, inherit},
		mixEntry{personality.KeyServU15, 0.005, inherit},
		mixEntry{personality.KeyGenericUnix, 0.03, inherit},
	)

	mixHomePL = newMix(
		mixEntry{personality.KeyHostedHomePL, 1.0, inherit},
	)

	// mixISPGeneric models consumer access networks: mostly generic
	// servers plus the consumer-device population of Table VII. Device
	// weights are proportional to the paper's device counts relative to
	// total FTP; devices carry their own anonymous-access rates.
	mixISPGeneric = newMix(
		mixEntry{personality.KeyGenericUnix, 0.360, inherit},
		mixEntry{personality.KeyProFTPD133c, 0.050, inherit},
		mixEntry{personality.KeyProFTPD132, 0.055, inherit},
		mixEntry{personality.KeyProFTPD135, 0.045, inherit},
		mixEntry{personality.KeyVsftpd302, 0.040, inherit},
		mixEntry{personality.KeyVsftpd235, 0.040, inherit},
		mixEntry{personality.KeyVsftpd232, 0.024, inherit},
		mixEntry{personality.KeyWuFTPd262, 0.020, inherit},
		mixEntry{personality.KeyIIS75, 0.060, inherit},
		mixEntry{personality.KeyFileZilla0941, 0.035, inherit},
		mixEntry{personality.KeyFileZilla0953, 0.015, inherit},
		mixEntry{personality.KeyServU64, 0.024, inherit},
		mixEntry{personality.KeyServU15, 0.004, inherit},
		mixEntry{personality.KeyPureFTPd1029, 0.006, inherit},
		mixEntry{personality.KeyRamnit, 0.0015, 0},

		// Consumer devices (Table VII counts / 13.79M, scaled up ~4.3x
		// because consumer gear concentrates in ISP space, which is
		// roughly 23% of the FTP population).
		mixEntry{personality.KeyQNAPNAS, 0.0360, 0.0284},
		mixEntry{personality.KeyASUSRouter, 0.0330, 0.1113},
		mixEntry{personality.KeySynologyNAS, 0.0270, 0.0682},
		mixEntry{personality.KeyBuffaloNAS, 0.0140, 0.3932},
		mixEntry{personality.KeyZyXELNAS, 0.0060, 0.0328},
		mixEntry{personality.KeyRicohPrinter, 0.0054, 0.8747},
		mixEntry{personality.KeyLaCieNAS, 0.0028, 0.6404},
		mixEntry{personality.KeyLexmarkPrinter, 0.0024, 0.9969},
		mixEntry{personality.KeyXeroxPrinter, 0.0020, 0.9284},
		mixEntry{personality.KeyDellPrinter, 0.0016, 0.9843},
		mixEntry{personality.KeyLinksysRouter, 0.0014, 0.2872},
		mixEntry{personality.KeyLutron, 0.0003, 0.9970},
		mixEntry{personality.KeySeagate, 0.0002, 0.9444},

		// FTPS cert-sharing families (Table XIII).
		mixEntry{personality.KeyLGENAS, 0.0019, 0.05},
		mixEntry{personality.KeyAxentra, 0.0009, 0.05},
		mixEntry{personality.KeySymonMedia, 0.0002, 0.02},
		mixEntry{personality.KeyAsusTorNAS, 0.0001, 0.05},
	)

	mixAcademic = newMix(
		mixEntry{personality.KeyGenericUnix, 0.35, inherit},
		mixEntry{personality.KeyWuFTPd262, 0.20, inherit},
		mixEntry{personality.KeyVsftpd235, 0.20, inherit},
		mixEntry{personality.KeyProFTPD133c, 0.15, inherit},
		mixEntry{personality.KeyIIS75, 0.10, inherit},
	)
)

// providerMix builds a mix for an ISP AS dominated by specific
// provider-deployed devices; a small remainder is generic servers.
func providerMix(devices ...mixEntry) *personalityMix {
	entries := append([]mixEntry{}, devices...)
	entries = append(entries,
		mixEntry{personality.KeyGenericUnix, 0.04, inherit},
		mixEntry{personality.KeyVsftpd235, 0.02, inherit},
	)
	return newMix(entries...)
}

// Provider-deployed device anonymous rates are effectively zero (Table V:
// 49 of 152,520 FRITZ!Boxes, 58 of 20,002 AXIS devices, 0 elsewhere).
var (
	mixTelekom = providerMix(
		mixEntry{personality.KeyFritzBox, 0.86, 0.0003},
		mixEntry{personality.KeySpeedport, 0.08, 0.0},
	)
	mixZyXELISP = providerMix(
		mixEntry{personality.KeyZyXELDSL, 0.66, 0.0},
		mixEntry{personality.KeyZyXELUSG, 0.28, 0.0},
	)
	mixAXISISP = providerMix(
		mixEntry{personality.KeyAXISCamera, 0.94, 0.0029},
	)
	mixZTEISP = providerMix(
		mixEntry{personality.KeyZTEWiMax, 0.94, 0.0},
	)
	mixCableISP = providerMix(
		mixEntry{personality.KeyDreambox, 0.94, 0.0},
	)
	mixTelcoC = providerMix(
		mixEntry{personality.KeyAlcatel, 0.66, 0.0},
		mixEntry{personality.KeyDrayTek, 0.28, 0.0},
	)
)
