package listparse

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseLine hammers the listing parser with arbitrary bytes: it must
// never panic and must uphold basic invariants on success — the enumerator
// feeds it raw data from adversarial servers.
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		"-rw-r--r--   1 ftp      ftp          1024 Mar  1  2014 report.pdf",
		"drwxrwxrwx   5 root     wheel        4096 Jun 10 09:15 incoming",
		"lrwxrwxrwx   1 ftp ftp 11 Jun  1 08:00 www -> public_html",
		"06-18-15  03:24PM       <DIR>          wwwroot",
		"02-14-15  09:01AM                 4096 Data Base.mdb",
		"total 123",
		"",
		"-rw-r--r-- 1 ftp ftp 99999999999999999999 Jun 1 08:00 big",
		"-rw-r--r-- 1 ftp ftp 10 Jun 99 08:00 f",
		"\x00\x01\x02\x03",
		strings.Repeat("-", 100),
		"-rw-r--r-- 1 a b 1 Jun 1 08:00 " + strings.Repeat("n", 300),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	now := time.Date(2015, 6, 18, 12, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseLine(line, now)
		if err != nil {
			return
		}
		if e.Name == "" {
			t.Errorf("parsed entry with empty name from %q", line)
		}
		if e.Size < 0 {
			t.Errorf("negative size %d from %q", e.Size, line)
		}
		if e.Read != ReadYes && e.Read != ReadNo && e.Read != ReadUnknown {
			t.Errorf("invalid readability %v from %q", e.Read, line)
		}
	})
}

// FuzzParseListing exercises the multi-line path with embedded noise.
func FuzzParseListing(f *testing.F) {
	f.Add("total 1\r\n-rw-r--r-- 1 a b 1 Jun 1 08:00 x\r\n")
	f.Add("garbage\nmore garbage\n")
	f.Add("\r\n\r\n\r\n")
	now := time.Date(2015, 6, 18, 12, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, body string) {
		entries, skipped := ParseListing(body, now)
		if skipped < 0 {
			t.Error("negative skip count")
		}
		for _, e := range entries {
			if e.Name == "" || e.Name == "." || e.Name == ".." {
				t.Errorf("bad entry name %q", e.Name)
			}
		}
	})
}
