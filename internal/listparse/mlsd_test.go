package listparse

import (
	"testing"
	"time"

	"ftpcloud/internal/vfs"
)

func TestParseMLSDLine(t *testing.T) {
	e, err := ParseMLSDLine("type=file;size=1024;modify=20150618120000;UNIX.mode=0644;UNIX.owner=ftp; report.pdf")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "report.pdf" || e.IsDir || e.Size != 1024 {
		t.Errorf("got %+v", e)
	}
	if e.Read != ReadYes || e.Write != ReadNo {
		t.Errorf("perm facts: read=%v write=%v", e.Read, e.Write)
	}
	if e.Owner != "ftp" {
		t.Errorf("owner = %q", e.Owner)
	}
	if e.ModTime.Year() != 2015 || e.ModTime.Month() != time.June {
		t.Errorf("mtime = %v", e.ModTime)
	}
}

func TestParseMLSDDirAndMode600(t *testing.T) {
	e, err := ParseMLSDLine("type=dir;size=4096;UNIX.mode=0755; pub")
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsDir || e.Name != "pub" || e.Read != ReadYes {
		t.Errorf("dir: %+v", e)
	}
	e, err = ParseMLSDLine("type=file;size=718;UNIX.mode=0600; shadow")
	if err != nil {
		t.Fatal(err)
	}
	if e.Read != ReadNo || e.Write != ReadNo {
		t.Errorf("600 facts: %+v", e)
	}
	// World-writable.
	e, err = ParseMLSDLine("type=dir;UNIX.mode=0777; incoming")
	if err != nil {
		t.Fatal(err)
	}
	if e.Write != ReadYes {
		t.Errorf("777 write fact: %+v", e)
	}
}

func TestParseMLSDNameWithSemicolonSpace(t *testing.T) {
	// Names may contain "; " only after the separator; the first "; "
	// wins.
	e, err := ParseMLSDLine("type=file;size=1; my file; with oddities.txt")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "my file; with oddities.txt" {
		t.Errorf("name = %q", e.Name)
	}
}

func TestParseMLSDErrors(t *testing.T) {
	for _, bad := range []string{
		"", "no separator here", "type=file;size=x; f", "size=-5; f",
		"type=file;badfact; f", "type=file;size=1; ",
	} {
		if _, err := ParseMLSDLine(bad); err == nil {
			t.Errorf("ParseMLSDLine(%q) succeeded", bad)
		}
	}
}

func TestParseMLSDListingSkipsDots(t *testing.T) {
	body := "type=cdir;UNIX.mode=0755; .\r\n" +
		"type=pdir;UNIX.mode=0755; ..\r\n" +
		"type=file;size=5;UNIX.mode=0644; a.txt\r\n" +
		"garbage line\r\n"
	entries, skipped := ParseMLSDListing(body)
	if len(entries) != 1 || entries[0].Name != "a.txt" {
		t.Errorf("entries: %+v", entries)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d", skipped)
	}
}

// TestMLSDRoundTripAgainstVFS: every line the vfs MLSD renderer emits must
// parse back with matching name, kind, size, and permissions.
func TestMLSDRoundTripAgainstVFS(t *testing.T) {
	now := time.Date(2015, 6, 18, 12, 0, 0, 0, time.UTC)
	nodes := []*vfs.Node{
		vfs.NewDir("pub", vfs.Perm755),
		vfs.NewFile("index.html", vfs.Perm644, 494),
		vfs.NewFile("id_rsa", vfs.Perm600, 1679),
		vfs.NewDir("incoming drop", vfs.Perm777),
	}
	for _, n := range nodes {
		n.MTime = now.AddDate(0, -1, 0)
	}
	body := vfs.FormatMLSDListing(nodes, now)
	entries, skipped := ParseMLSDListing(body)
	if skipped != 0 || len(entries) != len(nodes) {
		t.Fatalf("parsed %d (skipped %d) of %d: %q", len(entries), skipped, len(nodes), body)
	}
	for i, e := range entries {
		n := nodes[i]
		if e.Name != n.Name || e.IsDir != n.IsDir {
			t.Errorf("entry %d: %+v vs node %q", i, e, n.Name)
		}
		wantRead := ReadNo
		if n.OtherReadable() {
			wantRead = ReadYes
		}
		if e.Read != wantRead {
			t.Errorf("entry %d read = %v, want %v", i, e.Read, wantRead)
		}
		wantWrite := ReadNo
		if n.OtherWritable() {
			wantWrite = ReadYes
		}
		if e.Write != wantWrite {
			t.Errorf("entry %d write = %v, want %v", i, e.Write, wantWrite)
		}
		if !e.IsDir && e.Size != n.Size {
			t.Errorf("entry %d size = %d, want %d", i, e.Size, n.Size)
		}
	}
}

// TestParseMLSDTruncatedFacts models a listing cut off mid-transfer (a
// stalled or reset data channel): complete leading lines must parse, the
// severed tail must be skipped — not crash, and not fabricate an entry.
func TestParseMLSDTruncatedFacts(t *testing.T) {
	for _, tt := range []struct {
		name    string
		body    string
		want    int // complete entries recovered
		skipped int
	}{
		{
			name: "cut mid-fact",
			body: "type=file;size=5;UNIX.mode=0644; a.txt\r\n" +
				"type=file;siz",
			want: 1, skipped: 1,
		},
		{
			name: "cut before name separator",
			body: "type=dir;UNIX.mode=0755; pub\r\n" +
				"type=file;size=100;UNIX.mode=0644;",
			want: 1, skipped: 1,
		},
		{
			name: "cut mid-name keeps the damaged entry",
			// The "; " separator survived, so the truncated name is
			// indistinguishable from a short one; the entry parses.
			body: "type=file;size=7;UNIX.mode=0644; repor",
			want: 1, skipped: 0,
		},
		{
			name:    "only a fragment",
			body:    "type=",
			want:    0,
			skipped: 1,
		},
		{
			name: "fragment between valid lines",
			// "e=..." still looks like a fact, so the damaged middle
			// line parses leniently — with unknown readability rather
			// than a fabricated permission.
			body: "type=file;size=1;UNIX.mode=0644; a\r\n" +
				"e=20150618120000; b.txt\r\n" +
				"type=file;size=2;UNIX.mode=0644; c\r\n",
			want: 3, skipped: 0,
		},
	} {
		t.Run(tt.name, func(t *testing.T) {
			entries, skipped := ParseMLSDListing(tt.body)
			if len(entries) != tt.want || skipped != tt.skipped {
				t.Errorf("got %d entries (%d skipped), want %d (%d): %+v",
					len(entries), skipped, tt.want, tt.skipped, entries)
			}
		})
	}
}
