package listparse

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ftpcloud/internal/vfs"
)

var testNow = time.Date(2015, 6, 18, 12, 0, 0, 0, time.UTC)

func TestParseUnixFile(t *testing.T) {
	line := "-rw-r--r--   1 ftp      ftp          1024 Mar  1  2014 report.pdf"
	e, err := ParseLine(line, testNow)
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if e.Name != "report.pdf" || e.IsDir || e.Size != 1024 {
		t.Errorf("got %+v", e)
	}
	if e.Read != ReadYes {
		t.Errorf("Read = %v", e.Read)
	}
	if e.Write != ReadNo {
		t.Errorf("Write = %v", e.Write)
	}
	if e.Owner != "ftp" || e.Group != "ftp" {
		t.Errorf("owner/group = %q/%q", e.Owner, e.Group)
	}
	if e.ModTime.Year() != 2014 || e.ModTime.Month() != time.March {
		t.Errorf("ModTime = %v", e.ModTime)
	}
}

func TestParseUnixDir(t *testing.T) {
	line := "drwxrwxrwx   5 root     wheel        4096 Jun 10 09:15 incoming"
	e, err := ParseLine(line, testNow)
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if !e.IsDir || e.Name != "incoming" {
		t.Errorf("got %+v", e)
	}
	if e.Write != ReadYes {
		t.Errorf("world-writable dir not detected: %+v", e)
	}
	if e.ModTime.Year() != 2015 || e.ModTime.Hour() != 9 {
		t.Errorf("ModTime = %v", e.ModTime)
	}
}

func TestParseUnixYearlessFutureDateRollsBack(t *testing.T) {
	// "Dec 25 10:00" seen in June 2015 must resolve to December 2014.
	line := "-rw-r--r--   1 ftp ftp 1 Dec 25 10:00 holiday.jpg"
	e, err := ParseLine(line, testNow)
	if err != nil {
		t.Fatal(err)
	}
	if e.ModTime.Year() != 2014 {
		t.Errorf("ModTime = %v, want year 2014", e.ModTime)
	}
}

func TestParseUnixNonReadable(t *testing.T) {
	line := "-rw-------   1 root     root          718 Jan  5  2013 shadow"
	e, err := ParseLine(line, testNow)
	if err != nil {
		t.Fatal(err)
	}
	if e.Read != ReadNo {
		t.Errorf("Read = %v, want ReadNo", e.Read)
	}
}

func TestParseUnixSymlink(t *testing.T) {
	line := "lrwxrwxrwx   1 ftp ftp 11 Jun  1 08:00 www -> public_html"
	e, err := ParseLine(line, testNow)
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsLink || e.Name != "www" || e.Target != "public_html" {
		t.Errorf("got %+v", e)
	}
}

func TestParseUnixNameWithSpaces(t *testing.T) {
	line := "-rw-r--r--   1 ftp ftp 99 Jun  1 08:00 My Tax Return 2014.pdf"
	e, err := ParseLine(line, testNow)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "My Tax Return 2014.pdf" {
		t.Errorf("Name = %q", e.Name)
	}
}

func TestParseDOS(t *testing.T) {
	e, err := ParseLine("06-18-15  03:24PM       <DIR>          wwwroot", testNow)
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsDir || e.Name != "wwwroot" || e.Read != ReadUnknown {
		t.Errorf("got %+v", e)
	}
	e, err = ParseLine("02-14-15  09:01AM                 4096 Data Base.mdb", testNow)
	if err != nil {
		t.Fatal(err)
	}
	if e.IsDir || e.Size != 4096 || e.Name != "Data Base.mdb" {
		t.Errorf("got %+v", e)
	}
	if e.Read != ReadUnknown || e.Write != ReadUnknown {
		t.Errorf("DOS readability must be unknown: %+v", e)
	}
	if e.ModTime.Year() != 2015 || e.ModTime.Hour() != 9 {
		t.Errorf("ModTime = %v", e.ModTime)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"total 123",
		"garbage line here",
		"-rw-r--r-- oops",
		"-rw-r--r-- 1 ftp ftp xyz Jun 1 08:00 f", // bad size
		"-rw-r--r-- 1 ftp ftp 10 Zzz 1 08:00 f",  // bad month
		"-rw-r--r-- 1 ftp ftp 10 Jun 99 08:00 f",
		"99-99-99  03:24PM  <DIR> x",
		"06-18-15  03:24PM  notasize x",
	}
	for _, line := range bad {
		if _, err := ParseLine(line, testNow); err == nil {
			t.Errorf("ParseLine(%q) succeeded, want error", line)
		}
	}
}

func TestParseListing(t *testing.T) {
	body := "total 16\r\n" +
		"drwxr-xr-x   2 ftp ftp 4096 Jun 10 09:15 pub\r\n" +
		".\r\n" + // noise
		"-rw-r--r--   1 ftp ftp  123 Jun 10 09:15 readme.txt\r\n" +
		"drwxr-xr-x   2 ftp ftp 4096 Jun 10 09:15 .\r\n" + // dot entry
		"drwxr-xr-x   2 ftp ftp 4096 Jun 10 09:15 ..\r\n"
	entries, skipped := ParseListing(body, testNow)
	if len(entries) != 2 {
		t.Fatalf("entries = %d (%+v)", len(entries), entries)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if entries[0].Name != "pub" || entries[1].Name != "readme.txt" {
		t.Errorf("entries: %+v", entries)
	}
}

func TestReadabilityString(t *testing.T) {
	if ReadYes.String() != "readable" || ReadNo.String() != "non-readable" || ReadUnknown.String() != "unk-readability" {
		t.Error("readability names wrong")
	}
}

// TestRoundTripAgainstVFS ensures every line the vfs renderer produces is
// parsed back with the same name, kind, size, and readability.
func TestRoundTripAgainstVFS(t *testing.T) {
	nodes := []*vfs.Node{
		vfs.NewDir("pub", vfs.Perm755),
		vfs.NewFile("index.html", vfs.Perm644, 494),
		vfs.NewFile("id_rsa", vfs.Perm600, 1679),
		vfs.NewFile("with space.doc", vfs.Perm644, 20000),
		vfs.NewDir("incoming drop", vfs.Perm777),
	}
	for i, n := range nodes {
		n.MTime = testNow.AddDate(0, -1-i, 0)
	}
	for _, style := range []vfs.ListStyle{vfs.StyleUnix, vfs.StyleDOS} {
		body := vfs.FormatListing(nodes, style, testNow)
		entries, skipped := ParseListing(body, testNow)
		if skipped != 0 {
			t.Fatalf("%v: skipped %d lines of %q", style, skipped, body)
		}
		if len(entries) != len(nodes) {
			t.Fatalf("%v: parsed %d of %d entries", style, len(entries), len(nodes))
		}
		for i, e := range entries {
			n := nodes[i]
			if e.Name != n.Name || e.IsDir != n.IsDir {
				t.Errorf("%v: entry %d = %+v, want name %q dir %v", style, i, e, n.Name, n.IsDir)
			}
			if !e.IsDir && e.Size != n.Size {
				t.Errorf("%v: entry %d size %d, want %d", style, i, e.Size, n.Size)
			}
			if style == vfs.StyleUnix {
				wantRead := ReadNo
				if n.OtherReadable() {
					wantRead = ReadYes
				}
				if e.Read != wantRead {
					t.Errorf("unix: entry %d read = %v, want %v", i, e.Read, wantRead)
				}
			} else if e.Read != ReadUnknown {
				t.Errorf("dos: entry %d read = %v, want unknown", i, e.Read)
			}
		}
	}
}

// Property: rendering a random valid file node and parsing it back preserves
// name, size, and the all-users read bit (Unix style).
func TestUnixRoundTripProperty(t *testing.T) {
	f := func(nameSeed uint16, size uint32, otherRead, isDir bool) bool {
		name := "f" + strings.Repeat("x", int(nameSeed)%20) // non-empty, no spaces edge
		perm := vfs.Perm600
		if otherRead {
			perm = vfs.Perm644
		}
		var n *vfs.Node
		if isDir {
			n = vfs.NewDir(name, perm)
		} else {
			n = vfs.NewFile(name, perm, int64(size))
		}
		n.MTime = testNow.AddDate(-1, 0, 0)
		e, err := ParseLine(vfs.FormatUnixLine(n, testNow), testNow)
		if err != nil || e.Name != name || e.IsDir != isDir {
			return false
		}
		if !isDir && e.Size != int64(size) {
			return false
		}
		wantRead := ReadNo
		if otherRead {
			wantRead = ReadYes
		}
		return e.Read == wantRead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
