// Package listparse parses FTP directory listings back into structured
// entries. It is the client-side inverse of the vfs package's renderers and
// handles the two dialects that dominate the real-world server population:
// Unix "ls -l" output and IIS's MS-DOS format.
//
// Permission knowledge is tri-state. Unix listings expose the all-users read
// bit the paper keys on; DOS listings carry no permissions at all, which is
// why the paper reports those files as "unk-readability".
package listparse

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Readability is the anonymous user's inferred ability to RETR a file.
type Readability int

// Tri-state readability values.
const (
	ReadUnknown Readability = iota // listing carries no permission data
	ReadYes                        // all-users read bit set
	ReadNo                         // all-users read bit clear
)

// String names the readability state.
func (r Readability) String() string {
	switch r {
	case ReadYes:
		return "readable"
	case ReadNo:
		return "non-readable"
	default:
		return "unk-readability"
	}
}

// Entry is one parsed listing line.
type Entry struct {
	Name    string
	IsDir   bool
	IsLink  bool
	Target  string // symlink target, if any
	Size    int64
	Owner   string
	Group   string
	ModTime time.Time // zero when the line's date could not be resolved

	Read  Readability
	Write Readability // all-users write bit, same tri-state semantics
}

var monthNames = map[string]time.Month{
	"jan": time.January, "feb": time.February, "mar": time.March,
	"apr": time.April, "may": time.May, "jun": time.June,
	"jul": time.July, "aug": time.August, "sep": time.September,
	"oct": time.October, "nov": time.November, "dec": time.December,
}

// ParseLine parses a single listing line, auto-detecting the dialect.
// The now parameter resolves Unix listings' yearless timestamps.
func ParseLine(line string, now time.Time) (Entry, error) {
	line = strings.TrimRight(line, "\r\n")
	if strings.TrimSpace(line) == "" {
		return Entry{}, fmt.Errorf("listparse: empty line")
	}
	if isUnixLine(line) {
		return parseUnixLine(line, now)
	}
	if e, err := parseDOSLine(line); err == nil {
		return e, nil
	}
	return Entry{}, fmt.Errorf("listparse: unrecognized listing line %q", line)
}

// ParseListing parses a full LIST body, skipping "total NNN" headers and
// unparseable lines (real servers interleave noise); it returns the entries
// and the count of skipped lines.
func ParseListing(body string, now time.Time) (entries []Entry, skipped int) {
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "total ") || strings.HasPrefix(line, "Total ") {
			continue
		}
		e, err := ParseLine(line, now)
		if err != nil {
			skipped++
			continue
		}
		// "." and ".." entries are navigation noise.
		if e.Name == "." || e.Name == ".." {
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped
}

func isUnixLine(line string) bool {
	if len(line) < 10 {
		return false
	}
	switch line[0] {
	case '-', 'd', 'l', 'b', 'c', 'p', 's':
	default:
		return false
	}
	for i := 1; i < 10; i++ {
		switch line[i] {
		case 'r', 'w', 'x', '-', 's', 'S', 't', 'T':
		default:
			return false
		}
	}
	return true
}

func parseUnixLine(line string, now time.Time) (Entry, error) {
	perms := line[:10]
	rest := line[10:]
	fields := strings.Fields(rest)
	// links owner group size month day (year|time) name...
	if len(fields) < 7 {
		return Entry{}, fmt.Errorf("listparse: short unix line %q", line)
	}

	e := Entry{
		IsDir:  perms[0] == 'd',
		IsLink: perms[0] == 'l',
		Owner:  fields[1],
		Group:  fields[2],
	}
	if perms[7] == 'r' {
		e.Read = ReadYes
	} else {
		e.Read = ReadNo
	}
	if perms[8] == 'w' {
		e.Write = ReadYes
	} else {
		e.Write = ReadNo
	}

	size, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("listparse: bad size in %q", line)
	}
	e.Size = size

	month, ok := monthNames[strings.ToLower(fields[4])]
	if !ok {
		return Entry{}, fmt.Errorf("listparse: bad month in %q", line)
	}
	day, err := strconv.Atoi(fields[5])
	if err != nil || day < 1 || day > 31 {
		return Entry{}, fmt.Errorf("listparse: bad day in %q", line)
	}
	yearOrTime := fields[6]
	if strings.Contains(yearOrTime, ":") {
		parts := strings.SplitN(yearOrTime, ":", 2)
		hh, err1 := strconv.Atoi(parts[0])
		mm, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return Entry{}, fmt.Errorf("listparse: bad time in %q", line)
		}
		t := time.Date(now.Year(), month, day, hh, mm, 0, 0, time.UTC)
		// A yearless date "in the future" belongs to last year.
		if t.After(now.Add(48 * time.Hour)) {
			t = t.AddDate(-1, 0, 0)
		}
		e.ModTime = t
	} else {
		year, err := strconv.Atoi(yearOrTime)
		if err != nil {
			return Entry{}, fmt.Errorf("listparse: bad year in %q", line)
		}
		e.ModTime = time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	}

	// The name is everything after the date token in the raw line;
	// reconstruct from the original to preserve internal spaces.
	idx := indexOfNthField(rest, 7)
	if idx < 0 {
		return Entry{}, fmt.Errorf("listparse: no name in %q", line)
	}
	name := rest[idx:]
	if e.IsLink {
		if arrow := strings.Index(name, " -> "); arrow >= 0 {
			e.Target = name[arrow+4:]
			name = name[:arrow]
		}
	}
	if name == "" {
		return Entry{}, fmt.Errorf("listparse: empty name in %q", line)
	}
	e.Name = name
	return e, nil
}

// indexOfNthField returns the byte offset of the n-th (0-based)
// whitespace-separated field in s, or -1.
func indexOfNthField(s string, n int) int {
	field := 0
	inField := false
	for i := 0; i < len(s); i++ {
		isSpace := s[i] == ' ' || s[i] == '\t'
		if !isSpace && !inField {
			if field == n {
				return i
			}
			field++
			inField = true
		} else if isSpace {
			inField = false
		}
	}
	return -1
}

func parseDOSLine(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, fmt.Errorf("listparse: short DOS line %q", line)
	}
	t, err := time.Parse("01-02-06 03:04PM", fields[0]+" "+fields[1])
	if err != nil {
		return Entry{}, fmt.Errorf("listparse: bad DOS date in %q: %w", line, err)
	}
	e := Entry{ModTime: t, Read: ReadUnknown, Write: ReadUnknown}
	sizeOrDir := fields[2]
	if sizeOrDir == "<DIR>" {
		e.IsDir = true
	} else {
		size, err := strconv.ParseInt(sizeOrDir, 10, 64)
		if err != nil {
			return Entry{}, fmt.Errorf("listparse: bad DOS size in %q", line)
		}
		e.Size = size
	}
	// Name is the remainder after the third field, preserving spaces.
	idx := indexOfNthField(line, 3)
	if idx < 0 {
		return Entry{}, fmt.Errorf("listparse: no DOS name in %q", line)
	}
	e.Name = line[idx:]
	return e, nil
}
