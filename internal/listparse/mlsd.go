package listparse

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseMLSDLine parses one RFC 3659 machine-readable listing line:
// "fact=value;fact=value; name". MLSD carries explicit permission facts, so
// entries parsed this way never land in the "unk-readability" bucket that
// plagues DOS-style listings.
func ParseMLSDLine(line string) (Entry, error) {
	line = strings.TrimRight(line, "\r\n")
	// The name follows the first "; " separator after the fact list.
	sep := strings.Index(line, "; ")
	if sep < 0 {
		return Entry{}, fmt.Errorf("listparse: no name separator in MLSD line %q", line)
	}
	facts := line[:sep+1] // keep the trailing ';' for uniform splitting
	name := line[sep+2:]
	if name == "" {
		return Entry{}, fmt.Errorf("listparse: empty name in MLSD line %q", line)
	}
	e := Entry{Name: name, Read: ReadUnknown, Write: ReadUnknown}
	for _, fact := range strings.Split(facts, ";") {
		fact = strings.TrimSpace(fact)
		if fact == "" {
			continue
		}
		eq := strings.IndexByte(fact, '=')
		if eq < 0 {
			return Entry{}, fmt.Errorf("listparse: malformed fact %q in %q", fact, line)
		}
		key := strings.ToLower(fact[:eq])
		val := fact[eq+1:]
		switch key {
		case "type":
			switch strings.ToLower(val) {
			case "dir", "cdir", "pdir":
				e.IsDir = true
				if strings.EqualFold(val, "cdir") {
					e.Name = "."
				}
				if strings.EqualFold(val, "pdir") {
					e.Name = ".."
				}
			case "os.unix=symlink":
				e.IsLink = true
			}
		case "size":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return Entry{}, fmt.Errorf("listparse: bad MLSD size %q", val)
			}
			e.Size = n
		case "modify":
			t, err := time.Parse("20060102150405", val)
			if err == nil {
				e.ModTime = t.UTC()
			}
		case "unix.mode":
			mode, err := strconv.ParseUint(val, 8, 16)
			if err == nil {
				if mode&0o004 != 0 {
					e.Read = ReadYes
				} else {
					e.Read = ReadNo
				}
				if mode&0o002 != 0 {
					e.Write = ReadYes
				} else {
					e.Write = ReadNo
				}
			}
		case "unix.owner":
			e.Owner = val
		}
	}
	return e, nil
}

// ParseMLSDListing parses a full MLSD body, skipping cdir/pdir entries and
// unparseable lines.
func ParseMLSDListing(body string) (entries []Entry, skipped int) {
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		e, err := ParseMLSDLine(line)
		if err != nil {
			skipped++
			continue
		}
		if e.Name == "." || e.Name == ".." {
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped
}
