package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"ftpcloud/internal/dataset"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/worldgen"
)

// countingSink counts records and Close calls, for stream-consistency
// assertions across shard drains.
type countingSink struct {
	mu      sync.Mutex
	records int
	closes  int
}

func (s *countingSink) Observe(rec *dataset.HostRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records++
	return nil
}

func (s *countingSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closes++
	return nil
}

// shardedOver reruns the same census (same world — certificates vary
// across world builds, so equivalence must compare runs over one world)
// with N shard pipelines.
func shardedOver(t *testing.T, c *Census, shards int) *Result {
	t.Helper()
	sc := &ShardedCensus{Census: c, Shards: shards}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatalf("%d-shard run: %v", shards, err)
	}
	return res
}

// TestShardedMatchesSingleProcess: the merge-equivalence property on a
// benign world — an N-shard run renders byte-identical tables and
// identical robustness counters to the single-process run, for N in
// {2, 4, 8}.
func TestShardedMatchesSingleProcess(t *testing.T) {
	c, single := testCensus(t, 32768)
	want := single.ComputeTables().Render()
	wantRobust := single.Robustness

	for _, shards := range []int{2, 4, 8} {
		res := shardedOver(t, c, shards)
		if got := res.ComputeTables().Render(); got != want {
			t.Errorf("%d shards: rendered tables diverge from single-process run (%d vs %d bytes)",
				shards, len(got), len(want))
		}
		if !reflect.DeepEqual(res.Robustness, wantRobust) {
			t.Errorf("%d shards: robustness diverges:\n got %+v\nwant %+v",
				shards, res.Robustness, wantRobust)
		}
		if res.Observed != single.Observed {
			t.Errorf("%d shards: observed %d, want %d", shards, res.Observed, single.Observed)
		}
		if res.Probed != single.Probed {
			t.Errorf("%d shards: probed %d, want %d — strided shards must cover the sweep exactly",
				shards, res.Probed, single.Probed)
		}
		if res.Responded != single.Responded {
			t.Errorf("%d shards: responded %d, want %d", shards, res.Responded, single.Responded)
		}
		if len(res.Records) != len(single.Records) {
			t.Errorf("%d shards: retained %d records, want %d", shards, len(res.Records), len(single.Records))
		}
		if !reflect.DeepEqual(res.Input.HTTP, single.Input.HTTP) {
			t.Errorf("%d shards: HTTP join diverges", shards)
		}
	}
}

// TestShardedHostileMatchesSingleProcess: merge equivalence holds on a
// hostile world too — partial records, failure classes, and retry counts
// merge to exactly the single-process ledger. Timeouts are generous so
// fault outcomes stay deterministic under scheduler load.
func TestShardedHostileMatchesSingleProcess(t *testing.T) {
	c, err := NewCensus(CensusConfig{
		Seed:        7,
		Scale:       131072,
		HostileRate: 0.4,
		FaultMix:    worldgen.DefaultFaultMix(),
		EnumTimeout: 1500 * time.Millisecond,
		HostBudget:  6 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if single.Robustness.Partial == 0 && len(single.Robustness.Failures) == 0 {
		t.Fatal("hostile world produced no degradation — test is vacuous")
	}
	want := single.ComputeTables().Render()

	res := shardedOver(t, c, 4)
	if got := res.ComputeTables().Render(); got != want {
		t.Errorf("4-shard hostile run renders differently from single-process run")
	}
	if !reflect.DeepEqual(res.Robustness, single.Robustness) {
		t.Errorf("4-shard hostile robustness diverges:\n got %+v\nwant %+v",
			res.Robustness, single.Robustness)
	}
}

// TestShardedSeedVariation: the property holds across seeds, not just the
// shared test world.
func TestShardedSeedVariation(t *testing.T) {
	for _, seed := range []uint64{1, 99} {
		c, err := NewCensus(CensusConfig{Seed: seed, Scale: 65536})
		if err != nil {
			t.Fatal(err)
		}
		single, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		res := shardedOver(t, c, 3)
		if single.ComputeTables().Render() != res.ComputeTables().Render() {
			t.Errorf("seed %d: 3-shard tables diverge from single-process run", seed)
		}
	}
}

// TestShardedStreamCounts: the shared stream sink sees every record exactly
// once across all shard drains, and is closed exactly once.
func TestShardedStreamCounts(t *testing.T) {
	sink := &countingSink{}
	reg := obs.NewRegistry()
	sc, err := NewShardedCensus(CensusConfig{
		Seed:          7,
		Scale:         131072,
		RetainRecords: RetainNone,
		StreamTo:      sink,
		Metrics:       reg,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Observed == 0 {
		t.Fatal("sharded census observed no hosts")
	}
	if sink.records != res.Observed {
		t.Errorf("stream saw %d records, result observed %d", sink.records, res.Observed)
	}
	if sink.closes != 1 {
		t.Errorf("stream closed %d times, want exactly once", sink.closes)
	}
	if res.Observed != res.Robustness.Records {
		t.Errorf("observed %d != robustness records %d", res.Observed, res.Robustness.Records)
	}

	// Per-shard counters must sum to the merged view.
	snap := reg.Snapshot()
	var perShard uint64
	for i := 0; i < 4; i++ {
		perShard += snap.Counters[fmt.Sprintf("shard%d.census.observed", i)]
	}
	if merged := snap.Counters["census.observed"]; perShard != merged {
		t.Errorf("per-shard observed sums to %d, merged counter %d", perShard, merged)
	}
	if probed := snap.Counters["zmap.probed"]; probed != res.Probed {
		t.Errorf("merged zmap.probed %d, result probed %d", probed, res.Probed)
	}
}

// TestShardedTruncation: PR 5's truncation semantics survive the merge — a
// deadline mid-run yields a flagged, internally consistent partial result
// whose drained records (from every shard) are all merged, not dropped.
func TestShardedTruncation(t *testing.T) {
	sink := &countingSink{}
	sc, err := NewShardedCensus(CensusConfig{
		Seed:             7,
		Scale:            16384,
		RealisticLatency: true, // slow the run so the deadline lands mid-enumeration
		RetainRecords:    RetainNone,
		StreamTo:         sink,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(500*time.Millisecond))
	defer cancel()
	res, err := sc.Run(ctx)
	if err != nil {
		t.Fatalf("deadline-truncated sharded census returned error: %v", err)
	}
	if !res.Truncated || res.TruncatedBy != TruncateDeadline {
		t.Errorf("Truncated=%v TruncatedBy=%q, want true/%q", res.Truncated, res.TruncatedBy, TruncateDeadline)
	}
	if res.Robustness.Failures[TruncateDeadline] != 1 {
		t.Errorf("robustness missing %q class: %v", TruncateDeadline, res.Robustness.Failures)
	}
	if res.Observed != res.Robustness.Records {
		t.Errorf("observed %d != robustness records %d", res.Observed, res.Robustness.Records)
	}
	if sink.records != res.Observed {
		t.Errorf("stream saw %d records, result observed %d — truncated shards must merge their partials",
			sink.records, res.Observed)
	}
	if sink.closes != 1 {
		t.Errorf("stream closed %d times, want exactly once", sink.closes)
	}
	// The partial aggregate must still finalize.
	tables := res.ComputeTables()
	if tables.Funnel.FTPServers < 0 {
		t.Error("truncated tables failed to compute")
	}
}

// TestShardedCensusValidation: shard counts beyond the source-address
// budget and oversized per-shard fleets are rejected up front.
func TestShardedCensusValidation(t *testing.T) {
	if _, err := NewShardedCensus(CensusConfig{Scale: 131072}, maxShards+1); err == nil {
		t.Error("oversized shard count accepted")
	}
	if _, err := NewShardedCensus(CensusConfig{Scale: 131072, EnumWorkers: shardSourceStride + 1}, 2); err == nil {
		t.Error("per-shard worker count exceeding the source block accepted")
	}
	sc, err := NewShardedCensus(CensusConfig{Scale: 131072}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Shards != 1 {
		t.Errorf("shards normalized to %d, want 1", sc.Shards)
	}
}
