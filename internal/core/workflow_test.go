package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/certify"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/enumerator"
	"ftpcloud/internal/notify"
	"ftpcloud/internal/simnet"
)

// TestDownstreamWorkflow chains the library the way an operator would:
// census → per-AS disclosure notices → certification audit of a flagged
// host. It exercises the cross-module seams end to end on one world.
func TestDownstreamWorkflow(t *testing.T) {
	census, err := NewCensus(CensusConfig{Seed: 21, Scale: 8192})
	if err != nil {
		t.Fatal(err)
	}
	result, err := census.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Disclosure notices must exist and withhold file names.
	notices := notify.Build(result.Input)
	if len(notices) == 0 {
		t.Fatal("census produced no disclosure notices")
	}
	rendered := notify.Render(notices[0])
	if strings.Contains(rendered, ".pst") || strings.Contains(rendered, ".kdbx") {
		t.Error("notice leaked a filename")
	}

	// Pick a flagged anonymous host and audit it; the grade must be F
	// for anything carrying a critical finding.
	var flagged string
	for _, rec := range result.Records {
		if rec.AnonymousOK && rec.PortCheck == dataset.PortNotValidated {
			flagged = rec.IP
			break
		}
	}
	if flagged == "" {
		t.Skip("no bounce-vulnerable host at this scale")
	}
	collector, err := enumerator.NewSimCollector(census.Network, simnet.MustParseIP("250.0.255.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	auditor := &certify.Auditor{
		Dialer:    simnet.Dialer{Net: census.Network, Src: simnet.MustParseIP("250.0.0.99")},
		Collector: collector,
		Timeout:   5 * time.Second,
	}
	report, err := auditor.Audit(context.Background(), flagged)
	if err != nil {
		t.Fatal(err)
	}
	if report.Grade != "F" {
		t.Errorf("bounce-vulnerable anonymous host graded %s: %+v", report.Grade, report.Failed())
	}
	failedPort := false
	for _, f := range report.Failed() {
		if f.ID == certify.CheckPortValidation {
			failedPort = true
		}
	}
	if !failedPort {
		t.Error("audit did not reproduce the census's PORT finding")
	}
}
