package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/dataset"
)

// testCensus runs a small end-to-end census: scale 32768 scans ~112K
// addresses holding ~420 FTP servers.
func testCensus(t *testing.T, scale int) (*Census, *Result) {
	t.Helper()
	c, err := NewCensus(CensusConfig{Seed: 7, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

func TestCensusEndToEnd(t *testing.T) {
	c, res := testCensus(t, 32768)

	if res.Probed != c.World.ScanSize {
		t.Errorf("probed %d of %d addresses", res.Probed, c.World.ScanSize)
	}
	if len(res.Records) == 0 {
		t.Fatal("no hosts discovered")
	}
	if uint64(len(res.Records)) != res.Responded {
		t.Errorf("records %d != responded %d", len(res.Records), res.Responded)
	}

	tables := res.ComputeTables()

	// The measured funnel must match the generator's ground truth.
	audit := c.World.Audit(1)
	f := tables.Funnel
	if f.OpenPort21 != audit.Open {
		t.Errorf("open: measured %d, truth %d", f.OpenPort21, audit.Open)
	}
	if f.FTPServers != audit.FTP {
		t.Errorf("ftp: measured %d, truth %d", f.FTPServers, audit.FTP)
	}
	// Anonymous measurement is a lower bound: banner opt-outs stop the
	// login attempt on some anonymous-capable hosts (ethics behaviour),
	// so measured ≤ truth, within a modest margin.
	if f.AnonServers > audit.Anonymous {
		t.Errorf("anon: measured %d exceeds truth %d", f.AnonServers, audit.Anonymous)
	}
	if audit.Anonymous > 0 && float64(f.AnonServers) < 0.5*float64(audit.Anonymous) {
		t.Errorf("anon: measured %d far below truth %d", f.AnonServers, audit.Anonymous)
	}

	// FTPS support must be measured on non-anonymous hosts too.
	if tables.FTPS.Supported == 0 {
		t.Error("no FTPS hosts measured")
	}
	ftpsTruth := audit.FTPS
	if tables.FTPS.Supported > ftpsTruth {
		t.Errorf("ftps: measured %d exceeds truth %d", tables.FTPS.Supported, ftpsTruth)
	}

	// PORT validation: home.pl's default stack fails it, so failures
	// must exist and concentrate there.
	if tables.PortBounce.Tested == 0 {
		t.Error("no PORT probes ran")
	}

	if tables.Classification.TotalFTP != f.FTPServers {
		t.Error("classification total mismatch")
	}

	// Rendering must not panic and must carry every section.
	out := tables.Render()
	for _, want := range []string{
		"Table I", "Table II", "Table III", "Table VI", "Table VIII",
		"Table IX", "Table X", "Table XI", "Table XII", "Table XIII",
		"Section V", "Section VI", "Section VII.B", "Section IX", "Figure 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestTruthOnlyDiscovery: the scanner's 100K+ probes answer from ground
// truth alone; the world materializes exactly the hosts the enumerator
// dialed — one per discovery-responsive address — not the hosts probed.
func TestTruthOnlyDiscovery(t *testing.T) {
	c, res := testCensus(t, 65536)
	if res.Probed <= uint64(len(res.Records)) {
		t.Fatalf("probed %d, records %d; probe volume should dwarf dials",
			res.Probed, len(res.Records))
	}
	if got, want := c.World.MaterializedHosts(), len(res.Records); got != want {
		t.Errorf("materialized %d hosts, want %d (hosts dialed by the enumerator)",
			got, want)
	}
}

func TestCensusDeterministicDiscovery(t *testing.T) {
	_, res1 := testCensus(t, 65536)
	_, res2 := testCensus(t, 65536)
	if len(res1.Records) != len(res2.Records) {
		t.Errorf("same seed found %d vs %d hosts", len(res1.Records), len(res2.Records))
	}
	f1 := res1.ComputeTables().Funnel
	f2 := res2.ComputeTables().Funnel
	if f1 != f2 {
		t.Errorf("funnels diverge: %+v vs %+v", f1, f2)
	}
}

func TestCensusWithLossAndRetries(t *testing.T) {
	c, err := NewCensus(CensusConfig{Seed: 7, Scale: 65536, LossRate: 0.2, Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	audit := c.World.Audit(1)
	// Retries should recover nearly all hosts despite 20% probe loss.
	if len(res.Records) < audit.Open*9/10 {
		t.Errorf("loss recovery: found %d of %d", len(res.Records), audit.Open)
	}
}

func TestHTTPJoin(t *testing.T) {
	c, res := testCensus(t, 65536)
	join := c.HTTPJoin(res.Records)
	if len(join) == 0 {
		t.Fatal("empty HTTP join")
	}
	withHTTP := 0
	for _, info := range join {
		if info.HTTP {
			withHTTP++
		}
	}
	// Around 65% of FTP hosts also serve HTTP.
	rate := float64(withHTTP) / float64(len(join))
	if rate < 0.4 || rate > 0.9 {
		t.Errorf("HTTP overlap rate = %.2f, want ≈0.65", rate)
	}
}

// TestCensusCancellation: caller cancellation is graceful truncation, not
// failure — the partial result comes back flagged instead of being thrown
// away (the pre-fix behaviour lost the whole run).
func TestCensusCancellation(t *testing.T) {
	c, err := NewCensus(CensusConfig{Seed: 7, Scale: 2048, ScanWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("cancelled census returned error: %v", err)
	}
	if !res.Truncated || res.TruncatedBy != TruncateCanceled {
		t.Errorf("Truncated=%v TruncatedBy=%q, want true/%q",
			res.Truncated, res.TruncatedBy, TruncateCanceled)
	}
	if res.Robustness.Failures[TruncateCanceled] != 1 {
		t.Errorf("robustness missing %q class: %v", TruncateCanceled, res.Robustness.Failures)
	}
}

// TestCensusDeadlineTruncation: an expired deadline mid-run must yield the
// partial dataset — every record drained before the cut, flagged with the
// deadline truncation class — and the tables must still compute.
func TestCensusDeadlineTruncation(t *testing.T) {
	probe := &cancelAfterSink{after: 2}
	c, err := NewCensus(CensusConfig{
		Seed: 7, Scale: 32768,
		RetainRecords: RetainNone,
		StreamTo:      probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The sink stalls the third record until after the deadline, so the
	// deadline deterministically fires mid-run no matter how fast the
	// machine: the run cannot complete before the stall lifts at 100ms,
	// and the deadline expires at 50ms.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(50*time.Millisecond))
	defer cancel()
	probe.block = make(chan struct{})
	time.AfterFunc(100*time.Millisecond, func() { close(probe.block) })

	res, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("deadline-truncated census returned error: %v", err)
	}
	if !res.Truncated || res.TruncatedBy != TruncateDeadline {
		t.Fatalf("Truncated=%v TruncatedBy=%q, want true/%q",
			res.Truncated, res.TruncatedBy, TruncateDeadline)
	}
	if res.Observed != probe.seen {
		t.Errorf("Observed=%d but StreamTo saw %d records", res.Observed, probe.seen)
	}
	if res.Observed != res.Robustness.Records {
		t.Errorf("Observed=%d disagrees with Robustness.Records=%d",
			res.Observed, res.Robustness.Records)
	}
	if res.Robustness.Failures[TruncateDeadline] != 1 {
		t.Errorf("robustness missing %q class: %v", TruncateDeadline, res.Robustness.Failures)
	}
	// The partial ledger still renders.
	if out := res.ComputeTables().Render(); !strings.Contains(out, "Table I") {
		t.Error("partial tables failed to render")
	}
}

// cancelAfterSink passes records through, optionally stalling after a few
// so a surrounding deadline reliably fires mid-drain.
type cancelAfterSink struct {
	after int
	seen  int
	block chan struct{}
}

func (s *cancelAfterSink) Observe(*dataset.HostRecord) error {
	if s.block != nil && s.seen >= s.after {
		<-s.block
	}
	s.seen++
	return nil
}

func (s *cancelAfterSink) Close() error { return nil }

// TestDrainConsistencyOnSinkFailure: a sink failing mid-stream must not
// desynchronize the ledgers — Robustness counts exactly the records the
// sink chain accepted, which is exactly what the aggregator observed, and
// the pipeline still drains to completion instead of deadlocking.
func TestDrainConsistencyOnSinkFailure(t *testing.T) {
	c, err := NewCensus(CensusConfig{
		Seed: 7, Scale: 32768,
		RetainRecords: RetainNone,
		StreamTo:      &failAfterSink{after: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("Run succeeded despite failing sink")
	}
	if res == nil {
		t.Fatal("Run returned no partial result alongside the sink error")
	}
	if res.Observed != 3 {
		t.Errorf("Observed=%d, want 3 (records accepted before the sink broke)", res.Observed)
	}
	if res.Robustness.Records != res.Observed {
		t.Errorf("Robustness.Records=%d disagrees with Observed=%d",
			res.Robustness.Records, res.Observed)
	}
}

func TestHoneypotStudyViaCore(t *testing.T) {
	r, err := HoneypotStudy(context.Background(), HoneypotStudyConfig{
		Seed: 3, Honeypots: 4, Attackers: 60, Concentrated: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.UniqueScanners != 60 {
		t.Errorf("scanners = %d", r.Summary.UniqueScanners)
	}
	if r.Summary.SpokeFTP == 0 {
		t.Error("no FTP speakers")
	}
	if r.Sessions == 0 {
		t.Error("streamed report recorded no sessions")
	}
	if len(r.Timelines) == 0 {
		t.Error("streamed report has no lure timelines")
	}
}

func TestWriteEvidenceFlowsThrough(t *testing.T) {
	_, res := testCensus(t, 8192)
	writable := 0
	for _, rec := range res.Records {
		if len(rec.WriteEvidence) > 0 {
			writable++
		}
	}
	tables := res.ComputeTables()
	if tables.Malicious.WritableServers != writable {
		t.Errorf("writable: analysis %d vs records %d",
			tables.Malicious.WritableServers, writable)
	}
}

func TestDatasetRoundTripFromCensus(t *testing.T) {
	_, res := testCensus(t, 65536)
	var sb strings.Builder
	w := dataset.NewWriter(&sb)
	for _, rec := range res.Records {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	back, err := dataset.ReadAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Records) {
		t.Errorf("round trip: %d vs %d", len(back), len(res.Records))
	}
}
