// Package core is the library's public face: it wires the substrates into
// the paper's end-to-end measurement pipeline. A Census builds a simulated
// world, performs ZMap-style host discovery on TCP/21, runs the enumerator
// fleet against every responsive host, and hands the dataset to the
// analysis layer that regenerates each of the paper's tables and figures.
//
// The same package exposes the honeypot study (§VIII) runner.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/attacker"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/enumerator"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/honeypot"
	"ftpcloud/internal/identify"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/worldgen"
	"ftpcloud/internal/zmap"
)

// Infrastructure addresses live far above the world generator's
// allocations (which grow upward from 1.0.0.0).
var (
	// ScannerBase is the first source address of the measurement fleet.
	ScannerBase = simnet.MustParseIP("250.0.0.1")
	// CollectorIP hosts the PORT-validation collector.
	CollectorIP = simnet.MustParseIP("250.0.255.1")
	// HoneypotBase is where the honeypot study deploys.
	HoneypotBase = simnet.MustParseIP("250.1.0.1")
	// IdentifyBase is the first source address of the identification
	// stage; shard i binds its identify workers starting at IdentifyBase +
	// i*shardSourceStride. The block sits above the honeypot range so it
	// can never collide with enumerator sources or deployed listeners.
	IdentifyBase = simnet.MustParseIP("250.2.0.1")
)

// CensusConfig sizes a census run.
type CensusConfig struct {
	// Seed derandomizes the world and the scan order.
	Seed uint64
	// Scale divides the paper's full-Internet population (see worldgen).
	Scale int
	// ScanWorkers / EnumWorkers set stage parallelism.
	ScanWorkers int
	EnumWorkers int
	// ScanRate caps discovery probes per second across all shards (the
	// paper's ZMap rate knob); 0 means unthrottled. Pacing changes when
	// hosts are observed, never what is observed, so it is not part of
	// the checkpoint's config digest.
	ScanRate int
	// Retries resends discovery probes to absorb simulated loss.
	Retries int
	// LossRate injects deterministic probe loss.
	LossRate float64
	// PortProbe enables the PORT-validation test (on by default in
	// Run; disable for ablations).
	DisablePortProbe bool
	// DisableTLS skips certificate collection.
	DisableTLS bool
	// RequestCap bounds enumerator requests per connection (default 500).
	RequestCap int
	// RealisticLatency applies the world's deterministic 5–150ms
	// per-pair connection-setup latency; off by default because it
	// costs real wall-clock time.
	RealisticLatency bool
	// Params overrides the generated world's parameters entirely when
	// non-nil.
	Params *worldgen.Params

	// Epoch advances the generated world through deterministic churn for
	// longitudinal series (see worldgen.Params.Epoch): same Seed, later
	// Epoch, and a fraction of hosts have left, appeared, upgraded, or
	// changed AS. Zero is today's world. Ignored when Params is set
	// (set Params.Epoch there instead).
	Epoch uint64

	// HostileRate assigns this fraction of FTP hosts a hostile fault
	// personality (slow drip, mid-session reset, stalled data channels,
	// garbage replies, premature EOF, connect latency). Zero — the
	// default — keeps the calibrated benign world. Ignored when Params
	// is set (override Params.HostileRate there instead).
	HostileRate float64
	// FaultMix weights the hostile classes; the zero value means the
	// uniform default mix. Only meaningful with HostileRate > 0.
	FaultMix worldgen.FaultMix

	// Identify inserts the LZR-style identification stage between
	// discovery and enumeration: every discovered endpoint gets one
	// connection that reads only its first response bytes (waiting for a
	// server-first banner, else sending a minimal trigger), and only
	// endpoints that speak FTP reach the enumerator fleet. Everything
	// else is recorded as a shed HostRecord (Service set to the sniffed
	// protocol) and dropped after that single round-trip. Off by default:
	// the two-stage probe→enumerate pipeline is the paper's original
	// toolchain and stays byte-identical.
	Identify bool
	// IdentifyWorkers sets the identification concurrency (default 32).
	IdentifyWorkers int
	// IdentifyWait bounds the banner and post-trigger read windows; zero
	// means identify.DefaultBannerWait.
	IdentifyWait time.Duration
	// ServiceMix populates the world's non-FTP open ports with real
	// dialable services (HTTP, SSH, TLS, telnet, garbage, silent) for the
	// identification stage to meet. The zero value keeps the legacy
	// abstract non-FTP hosts — and the world bit-identical to earlier
	// versions. Ignored when Params is set (set Params.ServiceMix there).
	ServiceMix worldgen.ServiceMix

	// EnumTimeout bounds individual enumerator control-channel
	// operations. Zero means 15s.
	EnumTimeout time.Duration
	// EnumRetry bounds enumerator transport retries (control dial,
	// banner read, data dial) with jittered backoff; the zero value
	// means the enumerator defaults.
	EnumRetry enumerator.RetryPolicy
	// HostBudget caps wall-clock time spent enumerating one host;
	// ByteBudget caps data-channel bytes read from one host. Zero means
	// the enumerator defaults; negative disables the budget.
	HostBudget time.Duration
	ByteBudget int64

	// RetainRecords chooses what Run keeps after folding each record
	// into the analysis accumulators. The zero value (RetainAll) is the
	// legacy buffered mode.
	RetainRecords Retention
	// StreamTo, when non-nil, receives every record the moment its
	// enumeration finishes — ahead of the analysis accumulators in the
	// sink chain. Run closes it when the census ends. Combine with
	// RetainNone and a dataset.WriterSink for constant-memory
	// persistence.
	StreamTo dataset.Sink

	// Metrics, when non-nil, wires every stage into one registry: the
	// simulated network (simnet.*), discovery (zmap.*), the enumerator
	// fleet (enum.*), and the drain-side robustness deltas (census.*).
	// The caller can then serve it over expvar, diff it for progress
	// lines, or snapshot it to disk.
	Metrics *obs.Registry

	// Now stamps each host record's ScannedAt. Nil means time.Now.
	// Injecting a fixed clock makes streamed ledgers reproducible
	// byte-for-byte, which the resume-equivalence tests rely on.
	Now func() time.Time

	// Checkpoint, when non-nil, makes the census resumable: caller
	// cancellation halts the scanners at a batch boundary and drains
	// everything in flight before the run returns, and the policy's Write
	// receives a checkpoint snapshot on truncation (and periodically at
	// quiescent points when Every is set). See CheckpointPolicy.
	Checkpoint *CheckpointPolicy
	// Resume, when non-nil, continues a census from the checkpoint a
	// previous run wrote: the scanners seek to the saved cursors, the
	// saved aggregate and robustness ledger merge into the result, and —
	// when the caller appends to the same JSONL ledger — the finished
	// series is byte-identical to an uninterrupted run. The snapshot must
	// carry checkpoint state matching this configuration (same seed,
	// epoch, scale, shard count, and measurement knobs) or Run fails with
	// ErrCheckpointMismatch. In RetainAll mode only the resumed portion's
	// records are retained; resume is built for streaming runs.
	Resume *analysis.Snapshot
}

// Retention selects the census memory model.
type Retention int

const (
	// RetainAll keeps every HostRecord: Result.Records and the legacy
	// analysis Input are populated. The default.
	RetainAll Retention = iota
	// RetainNone streams: each record is folded into the analysis
	// accumulators (and StreamTo) as it arrives and then dropped, so
	// peak memory is the aggregate state, not the dataset — listings
	// never accumulate. Result.Records and Result.Input stay nil.
	RetainNone
)

// Truncation classes recorded in Result.TruncatedBy (and folded into
// Robustness.Failures) when a run is cut short by its caller.
const (
	// TruncateDeadline marks a run cut by context deadline expiry.
	TruncateDeadline = "deadline"
	// TruncateCanceled marks a run cut by explicit cancellation.
	TruncateCanceled = "canceled"
)

// Robustness sums the per-record fault and degradation counters.
type Robustness struct {
	// Records counts the records folded into these counters. A record is
	// counted only after the sink chain accepts it, so Records always
	// equals Result.Observed — the two ledgers cannot disagree even when
	// a sink fails mid-stream.
	Records int
	// Partial counts records flagged incomplete by the degradation
	// layer; Failures breaks them (and outright failures) down by class.
	Partial int
	// Terminated counts control connections that ended early — server
	// request limits and transport faults both land here.
	Terminated int
	// Truncated counts listings cut by the request cap.
	Truncated int
	// SkippedDirs, Retries, and DataBytes sum the per-record counters.
	SkippedDirs int
	Retries     int
	DataBytes   int64
	Failures    map[string]int
}

// Merge folds another robustness ledger into this one — the shard-merge
// counterpart of observe.
func (r *Robustness) Merge(o Robustness) {
	r.Records += o.Records
	r.Partial += o.Partial
	r.Terminated += o.Terminated
	r.Truncated += o.Truncated
	r.SkippedDirs += o.SkippedDirs
	r.Retries += o.Retries
	r.DataBytes += o.DataBytes
	if len(o.Failures) == 0 {
		return
	}
	if r.Failures == nil {
		r.Failures = make(map[string]int, len(o.Failures))
	}
	for class, n := range o.Failures {
		r.Failures[class] += n
	}
}

// observe folds one record in. Called only from the census drain
// goroutine, so no locking is needed.
func (r *Robustness) observe(rec *dataset.HostRecord) {
	r.Records++
	if rec.Partial {
		r.Partial++
	}
	if rec.ConnTerminated {
		r.Terminated++
	}
	if rec.ListingTruncated {
		r.Truncated++
	}
	r.SkippedDirs += rec.SkippedDirs
	r.Retries += rec.Retries
	r.DataBytes += rec.DataBytes
	if rec.FailureClass != "" {
		if r.Failures == nil {
			r.Failures = make(map[string]int)
		}
		r.Failures[rec.FailureClass]++
	}
}

// Census is a ready-to-run measurement pipeline over one world.
type Census struct {
	Config  CensusConfig
	World   *worldgen.World
	Network *simnet.Network
}

// NewCensus synthesizes the world and network.
func NewCensus(cfg CensusConfig) (*Census, error) {
	if cfg.Scale < 1 {
		cfg.Scale = 2048
	}
	params := worldgen.DefaultParams(cfg.Seed, cfg.Scale)
	if cfg.Params != nil {
		params = *cfg.Params
	} else {
		params.HostileRate = cfg.HostileRate
		params.FaultMix = cfg.FaultMix
		params.ServiceMix = cfg.ServiceMix
		params.Epoch = cfg.Epoch
	}
	world, err := worldgen.New(params)
	if err != nil {
		return nil, fmt.Errorf("core: building world: %w", err)
	}
	nw := simnet.NewNetwork(world)
	if cfg.Metrics != nil {
		nw.BindMetrics(cfg.Metrics)
	}
	nw.LossRate = cfg.LossRate
	nw.LossSeed = cfg.Seed
	if world.Params.HostileRate > 0 {
		// The world doubles as the network's fault injector: transport
		// faults derive from the same truth as everything else.
		nw.Faults = world
	}
	if cfg.RealisticLatency {
		nw.Latency = world.LatencyModel()
	}
	return &Census{Config: cfg, World: world, Network: nw}, nil
}

// Result is a completed census.
type Result struct {
	// Input and Records are populated only in RetainAll mode; in
	// streaming mode the records were folded into the accumulators and
	// released.
	Input   *analysis.Input
	Records []*dataset.HostRecord

	// Observed counts the records that flowed through the sink chain —
	// equal to len(Records) in retained mode, and the only cardinality
	// available in streaming mode.
	Observed int

	// ScanDuration is the time until discovery finished; EnumDuration
	// the time until the last enumeration finished. The stages overlap
	// (enumeration follows discovery host by host), so both measure
	// from the same start.
	ScanDuration time.Duration
	EnumDuration time.Duration
	Probed       uint64
	Responded    uint64

	// Truncated reports that the run was cut short by caller
	// cancellation or deadline expiry. The result still holds every
	// record drained before the cut — a scan stopped at its deadline is
	// a usable (truncated) dataset, not a failure. TruncatedBy names the
	// cause: TruncateDeadline or TruncateCanceled.
	Truncated   bool
	TruncatedBy string

	// Robustness aggregates the fault and degradation counters across
	// every record — the evidence that hostile hosts degraded into
	// classified partial records instead of hanging the pipeline or
	// silently vanishing from the dataset.
	Robustness Robustness

	// agg holds the streaming accumulators Run folded every record
	// into; ComputeTables finalizes from it without touching records.
	agg     *analysis.Aggregator
	scanned uint64
}

// Run executes discovery and enumeration as an overlapping pipeline — the
// enumerator fleet follows up on hosts as the scanner discovers them, the
// way the paper's toolchain chained ZMap with its libevent enumerator.
// Every finished record flows through a sink chain in a single pass:
// first the caller's StreamTo sink (if any), then the analysis
// accumulators, then — in RetainAll mode only — an in-memory collector.
// The HTTP (Censys-equivalent) join is resolved per record inside that
// pass, so the join is always consistent with the records that actually
// flowed, even when the run is cancelled mid-flight.
//
// Run drives a single pipeline; ShardedCensus fans the same pipeline out
// over strided permutation shards and merges the partial aggregates. Both
// are runN, which also hosts the checkpoint/resume machinery (see
// checkpoint.go).
func (c *Census) Run(ctx context.Context) (*Result, error) {
	return c.runN(ctx, 1)
}

// newCollector builds the PORT-validation collector unless disabled. The
// returned closer is a no-op when there is nothing to close.
func (c *Census) newCollector() (enumerator.Collector, func(), error) {
	if c.Config.DisablePortProbe {
		return nil, func() {}, nil
	}
	sim, err := enumerator.NewSimCollector(c.Network, CollectorIP, 3100)
	if err != nil {
		return nil, nil, fmt.Errorf("core: collector: %w", err)
	}
	return sim, func() { sim.Close() }, nil
}

// shardSpec parameterizes one census pipeline over the shared world: its
// stride of the permutation, its source-address block, and the resources
// shared with sibling shards (the collector and the merged stream) that
// the pipeline must use but not own.
type shardSpec struct {
	index, total int
	sourceBase   simnet.IP
	// identifySource is the first source address of this shard's
	// identification workers (unused when identification is off).
	identifySource simnet.IP
	collector      enumerator.Collector
	// stream receives every record ahead of the aggregator; the pipeline
	// wraps it KeepOpen so the run's owner closes it exactly once.
	stream dataset.Sink
	// prefix namespaces the pipeline's registry counters ("shard3.");
	// prefixed counters also feed the unprefixed merged view.
	prefix string
	// startCursor resumes this shard's permutation walk at the saved
	// checkpoint position (group steps); zero starts from the beginning.
	startCursor uint64
}

// shardOutcome is one pipeline's partial census: the aggregate, the
// robustness ledger, retained records, timings, and any errors.
type shardOutcome struct {
	agg       *analysis.Aggregator
	robust    Robustness
	records   []*dataset.HostRecord
	join      map[string]analysis.HTTPInfo
	scanDur   time.Duration
	probed    uint64
	responded uint64
	setupErr  error
	sinkErr   error
	closeErr  error
	scanErr   error
}

// runShard executes one discovery+enumeration pipeline over the spec's
// slice of the scan. A sink failure cancels the whole run (all shards share
// the cancel); every other error is recorded in the outcome for assemble to
// order by the established precedence. The shard publishes its live pieces
// through rt for the checkpoint coordinator (see checkpoint.go).
func (c *Census) runShard(ctx context.Context, cancel context.CancelFunc, start time.Time, spec shardSpec, rt *shardRuntime) *shardOutcome {
	o := &shardOutcome{}
	scanner, err := zmap.NewScanner(zmap.Config{
		Network:       c.Network,
		Base:          c.World.ScanBase,
		Size:          c.World.ScanSize,
		Port:          21,
		Seed:          c.Config.Seed,
		Workers:       c.Config.ScanWorkers,
		RatePerSec:    c.Config.ScanRate,
		Retries:       c.Config.Retries,
		Shard:         spec.index,
		TotalShards:   spec.total,
		StartCursor:   spec.startCursor,
		Metrics:       c.Config.Metrics,
		MetricsPrefix: spec.prefix,
	})
	if err != nil {
		o.setupErr = fmt.Errorf("core: scanner: %w", err)
		close(rt.ready)
		return o
	}

	enumTimeout := c.Config.EnumTimeout
	if enumTimeout == 0 {
		enumTimeout = 15 * time.Second
	}
	fleet := &enumerator.Fleet{
		Cfg: enumerator.Config{
			Collector:  spec.collector,
			RequestCap: c.Config.RequestCap,
			TryTLS:     !c.Config.DisableTLS,
			Timeout:    enumTimeout,
			Retry:      c.Config.EnumRetry,
			HostBudget: c.Config.HostBudget,
			ByteBudget: c.Config.ByteBudget,
			Now:        c.Config.Now,
		},
		Network:    c.Network,
		SourceBase: spec.sourceBase,
		Workers:    c.Config.EnumWorkers,
		Metrics:    c.Config.Metrics,
	}

	// The sink chain. The aggregator resolves each record's HTTP join
	// through a per-record truth lookup — replacing the old post-hoc
	// join over a `discovered` slice that could be left inconsistent
	// with in-flight records on cancellation. In retained mode the same
	// hook also materializes the legacy Input.HTTP map as a side effect,
	// so the map covers exactly the records that flowed.
	retained := c.Config.RetainRecords == RetainAll
	var join map[string]analysis.HTTPInfo
	if retained {
		join = make(map[string]analysis.HTTPInfo)
	}
	world := c.World
	httpHook := func(r *analysis.Record) (analysis.HTTPInfo, bool) {
		ip, ok := r.IPNum()
		if !ok {
			return analysis.HTTPInfo{}, false
		}
		truth, ok := world.Truth(ip)
		if !ok || !truth.FTP {
			return analysis.HTTPInfo{}, false
		}
		info := analysis.HTTPInfo{HTTP: truth.HTTP, Scripting: truth.Scripting}
		if join != nil {
			join[r.Host.IP] = info
		}
		return info, true
	}
	agg := analysis.NewAggregator(c.World.ASDB, httpHook)
	sinks := make([]dataset.Sink, 0, 3)
	if spec.stream != nil {
		sinks = append(sinks, dataset.KeepOpen(spec.stream))
	}
	sinks = append(sinks, agg)
	var coll *dataset.Collector
	if retained {
		coll = &dataset.Collector{}
		sinks = append(sinks, coll)
	}
	sink := dataset.Tee(sinks...)

	// Publish the shard's live pieces for the checkpoint coordinator, then
	// signal readiness: from here on the halt watcher can stop the scanner
	// and the quiescence loop can read its accounting.
	var robust Robustness
	rt.scanner = scanner
	rt.agg = agg
	rt.robust = &robust
	close(rt.ready)

	// Pipeline: scanner results flow straight into the next stage's
	// intake, in batches so discovery fan-out costs one channel handoff
	// per slice. With identification enabled the next stage is the
	// identify pool (which forwards only FTP speakers into the fleet's
	// intake); otherwise it is the fleet directly.
	found := make(chan []zmap.Result, 64)
	in := make(chan simnet.IP, 1024)
	out := make(chan *dataset.HostRecord, 1024)

	intake := in
	var idin chan simnet.IP
	var shed chan identify.Result
	if c.Config.Identify {
		idin = make(chan simnet.IP, 1024)
		shed = make(chan identify.Result, 1024)
		intake = idin
	}

	scanErr := make(chan error, 1)
	go func() {
		err := scanner.RunBatches(ctx, found)
		o.scanDur = time.Since(start)
		scanErr <- err
	}()
	go func() {
		defer close(intake)
		for batch := range found {
			for _, r := range batch {
				select {
				case intake <- r.IP:
				case <-ctx.Done():
					// Drain so the scanner can finish closing.
					for range found {
					}
					return
				}
			}
		}
	}()
	// The single drain goroutine feeds the sink chain, honoring the Sink
	// contract (one Observe at a time). A sink failure cancels the
	// pipeline but keeps draining so the fleet can shut down. Robustness
	// is folded only after the whole chain accepts a record, so its
	// totals always agree with the aggregator's Observed count.
	mets := newCensusMetrics(c.Config.Metrics, spec.prefix)
	drained := make(chan error, 1)
	go func() {
		var sinkErr error
		for rec := range out {
			mets.drained.Inc()
			if sinkErr != nil {
				continue
			}
			if err := sink.Observe(rec); err != nil {
				sinkErr = err
				mets.sinkErrors.Inc()
				rt.sinkFailed.Store(true)
				cancel()
				continue
			}
			robust.observe(rec)
			// The accepted count is the quiescence watermark: it is
			// bumped only after the whole chain (and the robustness
			// fold) has the record, so a coordinator that sees
			// emitted − dead − accepted == 0 also sees every fold.
			rt.accepted.Add(1)
			mets.record(rec)
		}
		drained <- sinkErr
	}()
	if !c.Config.Identify {
		fleet.Run(ctx, in, out)
	} else {
		// Three-stage funnel: the identify pool owns the fleet intake
		// (closing it when identification finishes), shed results and
		// fleet records merge into the one drain stream, and the drain
		// keeps consuming unconditionally — so neither forwarder ever
		// blocks against a stopped consumer, even on cancellation.
		stage := &identify.Stage{
			Cfg: identify.Config{
				BannerWait: c.Config.IdentifyWait,
			},
			Network:       c.Network,
			SourceBase:    spec.identifySource,
			Workers:       c.Config.IdentifyWorkers,
			Metrics:       c.Config.Metrics,
			MetricsPrefix: spec.prefix,
		}
		fleetOut := make(chan *dataset.HostRecord, 1024)
		var fwd sync.WaitGroup
		fwd.Add(2)
		go func() {
			defer fwd.Done()
			stage.Run(ctx, idin, in, shed)
		}()
		go func() {
			defer fwd.Done()
			for res := range shed {
				out <- shedRecord(res)
			}
		}()
		go func() {
			for rec := range fleetOut {
				out <- rec
			}
			fwd.Wait()
			close(out)
		}()
		fleet.Run(ctx, in, fleetOut)
	}
	o.sinkErr = <-drained
	o.closeErr = sink.Close()
	o.scanErr = <-scanErr

	o.agg = agg
	o.robust = robust
	o.probed = scanner.Stats.Probed.Load()
	o.responded = scanner.Stats.Responded.Load()
	if retained {
		o.records = coll.Records
		o.join = join
	}
	return o
}

// shedRecord converts an identification result into the ledger record of a
// shed endpoint: discovered, connected, not FTP. The shape deliberately
// matches what the two-stage pipeline records for the same host — PortOpen
// set, FTP false — so the discovery funnel counts identically whether the
// endpoint burned a full enumeration or one identification round-trip; only
// the Service field (and the saved enumeration) distinguishes the paths.
func shedRecord(res identify.Result) *dataset.HostRecord {
	return &dataset.HostRecord{
		IP:       res.IP,
		PortOpen: true,
		Banner:   res.Banner,
		Service:  string(res.Protocol),
	}
}

// assemble merges shard outcomes into one Result, ordering errors by the
// established precedence and flagging graceful truncation. With a single
// outcome it reduces to the unsharded epilogue.
func (c *Census) assemble(ctx context.Context, start time.Time, outcomes []*shardOutcome, streamErr error) (*Result, error) {
	for _, o := range outcomes {
		if o.setupErr != nil {
			return nil, o.setupErr
		}
	}

	// Fold every shard into the first, in shard order. Ordering is for
	// reproducibility of Result.Records only — the aggregates themselves
	// are additive, so any merge order finalizes identically.
	base := outcomes[0]
	agg := base.agg
	robust := base.robust
	result := &Result{
		ScanDuration: base.scanDur,
		Probed:       base.probed,
		Responded:    base.responded,
		agg:          agg,
		scanned:      c.World.ScanSize,
	}
	records := base.records
	join := base.join
	for _, o := range outcomes[1:] {
		agg.Merge(o.agg)
		robust.Merge(o.robust)
		result.Probed += o.probed
		result.Responded += o.responded
		if o.scanDur > result.ScanDuration {
			result.ScanDuration = o.scanDur
		}
		records = append(records, o.records...)
		for ip, info := range o.join {
			join[ip] = info
		}
	}
	// A resumed run folds the previous run's checkpoint in last: the saved
	// aggregate merges like one more shard (additive, order-independent),
	// the robustness ledger sums, and the discovery counters extend — so
	// the finished result is what an uninterrupted run would have produced.
	if r := c.Config.Resume; r != nil && r.Checkpoint != nil {
		agg.MergeSnapshot(r)
		robust.Merge(robustFromState(r.Checkpoint.Robustness))
		result.Probed += r.Checkpoint.Probed
		result.Responded += r.Checkpoint.Responded
	}
	result.Observed = agg.Observed()
	result.Robustness = robust
	result.EnumDuration = time.Since(start)
	if c.Config.RetainRecords == RetainAll {
		result.Records = records
		result.Input = &analysis.Input{
			IPsScanned: c.World.ScanSize,
			Records:    records,
			ASDB:       c.World.ASDB,
			HTTP:       join,
		}
	}

	// Error precedence: a broken sink is fatal (the dataset is suspect)
	// but the partial result still rides along for inspection; a scanner
	// failure other than cancellation is fatal outright.
	for _, o := range outcomes {
		if o.sinkErr != nil {
			return result, fmt.Errorf("core: record sink: %w", o.sinkErr)
		}
	}
	for _, o := range outcomes {
		if o.closeErr != nil {
			return result, fmt.Errorf("core: closing record sink: %w", o.closeErr)
		}
	}
	if streamErr != nil {
		return result, fmt.Errorf("core: closing record sink: %w", streamErr)
	}
	for _, o := range outcomes {
		if o.scanErr != nil && !isContextErr(o.scanErr) {
			return nil, fmt.Errorf("core: discovery scan: %w", o.scanErr)
		}
	}

	// Caller cancellation is graceful truncation, not failure: everything
	// drained before the cut is a usable dataset — the paper's days-long
	// measurement had to survive exactly this. All shards share the run
	// context, so a deadline truncates them together; each one's partial
	// records are already folded in, and the cause is recorded once.
	if err := ctx.Err(); err != nil {
		result.Truncated = true
		result.TruncatedBy = TruncateCanceled
		if err == context.DeadlineExceeded {
			result.TruncatedBy = TruncateDeadline
		}
		if result.Robustness.Failures == nil {
			result.Robustness.Failures = make(map[string]int)
		}
		result.Robustness.Failures[result.TruncatedBy]++
		c.Config.Metrics.Counter("census.truncated." + result.TruncatedBy).Inc()
	}
	return result, nil
}

// isContextErr reports whether err is caller cancellation or deadline
// expiry — the graceful-truncation causes.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// censusMetrics is the drain side of the registry: robustness deltas as
// they fold, so live progress can show failure classes mid-run.
type censusMetrics struct {
	reg        *obs.Registry
	drained    *obs.Counter
	observed   *obs.Counter
	partial    *obs.Counter
	terminated *obs.Counter
	sinkErrors *obs.Counter
	failures   map[string]*obs.Counter
}

// newCensusMetrics binds the drain counters, namespaced by prefix for
// sharded pipelines (prefixed counters feed the merged unprefixed view).
// Failure-class counters stay global: progress reads classes, not shards.
func newCensusMetrics(reg *obs.Registry, prefix string) *censusMetrics {
	return &censusMetrics{
		reg:        reg,
		drained:    reg.ChildCounter(prefix, "census.drained"),
		observed:   reg.ChildCounter(prefix, "census.observed"),
		partial:    reg.ChildCounter(prefix, "census.partial"),
		terminated: reg.ChildCounter(prefix, "census.terminated"),
		sinkErrors: reg.ChildCounter(prefix, "census.sink_errors"),
		failures:   make(map[string]*obs.Counter),
	}
}

// record mirrors one accepted record into the counters. Called only from
// the drain goroutine, so the failure-class cache needs no lock.
func (m *censusMetrics) record(rec *dataset.HostRecord) {
	m.observed.Inc()
	if rec.Partial {
		m.partial.Inc()
	}
	if rec.ConnTerminated {
		m.terminated.Inc()
	}
	if class := rec.FailureClass; class != "" {
		c, ok := m.failures[class]
		if !ok {
			c = m.reg.Counter("census.failure." + class)
			m.failures[class] = c
		}
		c.Inc()
	}
}

// HTTPJoin plays the role of the paper's Censys HTTP dataset: an external
// scan of the same address space reporting web servers and their scripting
// headers. In the simulation the web-scan ground truth comes from the world
// generator, exactly as Censys is generated independently of the FTP scan.
func (c *Census) HTTPJoin(records []*dataset.HostRecord) map[string]analysis.HTTPInfo {
	ips := make([]simnet.IP, 0, len(records))
	for _, rec := range records {
		if !rec.FTP {
			continue
		}
		ip, err := simnet.ParseIP(rec.IP)
		if err != nil {
			continue
		}
		ips = append(ips, ip)
	}
	return c.httpJoinIPs(ips)
}

// httpJoinIPs builds the join from numeric addresses. The census pipeline
// feeds it the discovery results directly, so host IPs never round-trip
// through their string form on this path.
func (c *Census) httpJoinIPs(ips []simnet.IP) map[string]analysis.HTTPInfo {
	join := make(map[string]analysis.HTTPInfo, len(ips))
	for _, ip := range ips {
		truth, ok := c.World.Truth(ip)
		if !ok || !truth.FTP {
			continue
		}
		join[ip.String()] = analysis.HTTPInfo{HTTP: truth.HTTP, Scripting: truth.Scripting}
	}
	return join
}

// Tables bundles every computed experiment.
type Tables struct {
	Funnel           analysis.Funnel
	Classification   analysis.Classification
	ASConcentration  analysis.ASConcentration
	Devices          analysis.DeviceBreakdown
	TopASes          []analysis.TopAS
	Exposure         analysis.Exposure
	ExposureByDevice analysis.ExposureByDevice
	CVEs             analysis.CVEExposure
	Malicious        analysis.Malicious
	PortBounce       analysis.PortBounce
	FTPS             analysis.FTPS

	// Unexpected is the identification ledger: endpoints the staged
	// funnel shed before enumeration, by sniffed protocol. Always empty
	// on two-stage runs. It lives outside Render's paper tables so those
	// bytes never change; RenderFull appends it when populated.
	Unexpected analysis.UnexpectedServices
}

// Snapshot returns the serializable aggregate state this run folded — the
// mergeable/checkpoint form of the census (see analysis.Snapshot). Nil for
// hand-built results that never ran a pipeline.
func (r *Result) Snapshot() *analysis.Snapshot {
	if r.agg == nil {
		return nil
	}
	return r.agg.Snapshot()
}

// ComputeTables produces every analysis table. After a census run this is
// a thin finalize over the accumulators the pipeline already folded — no
// record is touched again, which is what lets streaming mode drop them.
// For hand-built Results (an Input loaded from disk, say) it folds the
// retained records through a fresh aggregator first, fanning the per-record
// derivation across CPUs.
func (r *Result) ComputeTables() Tables {
	agg := r.agg
	scanned := r.scanned
	if agg == nil {
		agg = analysis.AggregateInput(r.Input)
		scanned = r.Input.IPsScanned
	}
	return Tables{
		Funnel:           agg.Funnel(scanned),
		Classification:   agg.Classification(),
		ASConcentration:  agg.ASConcentration(),
		Devices:          agg.Devices(),
		TopASes:          agg.TopASes(10),
		Exposure:         agg.Exposure(),
		ExposureByDevice: agg.ExposureByDevice(),
		CVEs:             agg.CVEs(),
		Malicious:        agg.Malicious(),
		PortBounce:       agg.PortBounce(),
		FTPS:             agg.FTPS(10),
		Unexpected:       agg.Unexpected(),
	}
}

// HoneypotStudyConfig sizes a §VIII run. The defaults reproduce the paper's
// posture (8 webroot-style honeypots, 457 attackers, one bot-per-target
// visit each); the fleet knobs scale it to the Honeybuckets shape — hundreds
// of differentiated honeypots, millions of streamed sessions.
type HoneypotStudyConfig struct {
	Seed         uint64
	Honeypots    int     // paper: 8
	Attackers    int     // paper: 457 unique IPs
	Concentrated float64 // share of attackers from one network (paper: ~0.30)
	// Sessions, when positive, switches the attacker fleet into campaign
	// mode: the bots collectively run exactly this many sessions instead of
	// one visit per bot-target pair.
	Sessions int64
	// Concurrency caps in-flight attacker sessions; zero means the fleet
	// default (32).
	Concurrency int
	// LureMix weights the honeypots' bait postures; the zero value means
	// honeypot.DefaultLureMix.
	LureMix honeypot.LureMix
	// Events, when non-nil, persists every honeypot event as JSONL.
	Events *honeypot.EventStream
	// Now is the study clock (deploy stamps, event times, fleet elapsed);
	// nil means time.Now. Injecting honeypot.SimClock makes timelines
	// reproducible run to run.
	Now func() time.Time
	// Buffered additionally retains per-honeypot event Logs — only sane at
	// legacy scale (equivalence tests).
	Buffered bool
	// Metrics, when non-nil, wires the study into one registry: network
	// counters (simnet.*), honeypot fold counters (honeypot.*), and
	// attacker fleet progress (attacker.*).
	Metrics *obs.Registry
}

// HoneypotStudy deploys a differentiated honeypot fleet on a fresh network,
// runs the attacker fleet, and finalizes the streamed report. No event is
// buffered (unless cfg.Buffered): every session folds into the streaming
// accumulator as it happens, so live memory is bounded by the population,
// not the session count.
func HoneypotStudy(ctx context.Context, cfg HoneypotStudyConfig) (honeypot.Report, error) {
	if cfg.Honeypots <= 0 {
		cfg.Honeypots = 8
	}
	if cfg.Attackers <= 0 {
		cfg.Attackers = 457
	}
	if cfg.Concentrated == 0 {
		cfg.Concentrated = 0.30
	}
	provider := simnet.NewStaticProvider()
	acc := honeypot.NewAccumulator()
	dep, err := honeypot.DeployFleet(provider, honeypot.FleetConfig{
		Base:     HoneypotBase,
		Count:    cfg.Honeypots,
		Seed:     cfg.Seed,
		Mix:      cfg.LureMix,
		Acc:      acc,
		Events:   cfg.Events,
		Buffered: cfg.Buffered,
		Now:      cfg.Now,
		Metrics:  cfg.Metrics,
	})
	if err != nil {
		return honeypot.Report{}, err
	}
	nw := simnet.NewNetwork(provider)
	if cfg.Metrics != nil {
		nw.BindMetrics(cfg.Metrics)
	}
	fleet := &attacker.Fleet{
		Network:      nw,
		Bots:         attacker.DefaultMix(cfg.Attackers, cfg.Seed, cfg.Concentrated),
		Targets:      dep.IPs,
		BounceTarget: ftp.HostPort{IP: [4]byte{203, 0, 113, 66}, Port: 9999},
		Concurrency:  cfg.Concurrency,
		Sessions:     cfg.Sessions,
		Now:          cfg.Now,
		Metrics:      cfg.Metrics,
	}
	stats := fleet.Run(ctx)
	// Fleet.Run returning means every attacker hung up, not that every
	// server goroutine finished folding its teardown events. Wait for a
	// disconnect per dialed session before freezing the report (and before
	// the caller closes any -events-out stream) — on a bounded context so
	// even a deadline-truncated run drains its tail.
	qctx, qcancel := context.WithTimeout(context.Background(), 10*time.Second)
	acc.Quiesce(qctx, uint64(stats.Sessions))
	qcancel()
	return acc.Report(), nil
}
