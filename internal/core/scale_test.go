package core

import (
	"context"
	"math"
	"testing"
)

// TestScaleInvariance is the reproduction's validity check: the headline
// percentages must be stable across world scales, because the paper's
// findings are rates over a population, not artifacts of a particular
// sample size. Counts scale linearly; rates stay put.
func TestScaleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale sweep is slow")
	}
	type point struct {
		scale   int
		pctOpen float64
		pctFTP  float64
		pctAnon float64
		pctFTPS float64
		ftp     int
	}
	scales := []int{4096, 16384, 65536}
	points := make([]point, 0, len(scales))
	for _, scale := range scales {
		c, err := NewCensus(CensusConfig{Seed: 42, Scale: scale})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		tab := res.ComputeTables()
		points = append(points, point{
			scale:   scale,
			pctOpen: tab.Funnel.PctOpen,
			pctFTP:  tab.Funnel.PctFTP,
			pctAnon: tab.Funnel.PctAnonymous,
			pctFTPS: tab.FTPS.PctSupported,
			ftp:     tab.Funnel.FTPServers,
		})
	}

	base := points[0]
	for _, p := range points[1:] {
		// Percentages: small-sample noise grows at high scales, so the
		// tolerance is generous but still catches systematic drift.
		if math.Abs(p.pctOpen-base.pctOpen) > 0.15 {
			t.Errorf("pctOpen drifts: %.2f at 1:%d vs %.2f at 1:%d",
				p.pctOpen, p.scale, base.pctOpen, base.scale)
		}
		if math.Abs(p.pctFTP-base.pctFTP) > 6 {
			t.Errorf("pctFTP drifts: %.2f at 1:%d vs %.2f at 1:%d",
				p.pctFTP, p.scale, base.pctFTP, base.scale)
		}
		if math.Abs(p.pctAnon-base.pctAnon) > 4 {
			t.Errorf("pctAnon drifts: %.2f at 1:%d vs %.2f at 1:%d",
				p.pctAnon, p.scale, base.pctAnon, base.scale)
		}
		if math.Abs(p.pctFTPS-base.pctFTPS) > 8 {
			t.Errorf("pctFTPS drifts: %.2f at 1:%d vs %.2f at 1:%d",
				p.pctFTPS, p.scale, base.pctFTPS, base.scale)
		}
	}
	// Counts scale ~linearly with 1/scale.
	ratio := float64(points[0].ftp) / float64(points[2].ftp)
	wantRatio := float64(scales[2]) / float64(scales[0])
	if ratio < wantRatio*0.6 || ratio > wantRatio*1.6 {
		t.Errorf("FTP count ratio %.1f across 16x scale change, want ≈%.0f", ratio, wantRatio)
	}
}
