package core

import (
	"strings"

	"ftpcloud/internal/report"
)

// Render formats every table and figure as the full census report.
func (t Tables) Render() string {
	var b strings.Builder
	sections := []string{
		report.Funnel(t.Funnel),
		report.Classification(t.Classification),
		report.ASConcentration(t.ASConcentration),
		report.Devices(t.Devices),
		report.TopASes(t.TopASes),
		report.Extensions(t.Exposure, 10),
		report.Sensitive(t.Exposure),
		report.ExposureProse(t.Exposure),
		report.ExposureByDevice(t.ExposureByDevice),
		report.CVEs(t.CVEs),
		report.Malicious(t.Malicious),
		report.PortBounce(t.PortBounce),
		report.FTPS(t.FTPS),
		report.Figure1(t.ASConcentration),
	}
	for i, s := range sections {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(s)
	}
	return b.String()
}

// RenderFull renders the paper tables plus the operational sections that
// live outside the paper — today the identification ledger, when the staged
// funnel shed anything. Render's bytes are a strict prefix, so everything
// comparing paper-table output stays stable.
func (t Tables) RenderFull() string {
	s := t.Render()
	if t.Unexpected.Total > 0 {
		s += "\n" + report.UnexpectedServices(t.Unexpected)
	}
	return s
}
