package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/zmap"
)

// CheckpointPolicy makes a census resumable. With a policy configured,
// caller cancellation no longer tears the pipeline down: the scanners halt
// at a batch boundary, everything already emitted drains through the sink
// chain, and Write receives a snapshot whose per-shard cursors exactly
// cover the records the run folded (and streamed). A later run configured
// with Resume continues from that snapshot as if the interruption never
// happened.
type CheckpointPolicy struct {
	// Write persists one checkpoint snapshot — on truncation always, and
	// at each quiescent point when Every is set. It is never called
	// concurrently with itself. Must not be nil.
	Write func(*analysis.Snapshot) error
	// Every enables periodic checkpoints: at this interval the coordinator
	// parks the scanners, waits for in-flight work to drain, flushes the
	// ledger, and writes a snapshot — so even a SIGKILL loses at most one
	// interval of work. Zero disables periodic writes (truncation still
	// checkpoints).
	Every time.Duration
	// DrainGrace bounds how long truncation waits for in-flight work to
	// drain before hard-canceling the pipeline. After a hard cancel no
	// checkpoint is written — the cursors are no longer exact. Zero means
	// 30s.
	DrainGrace time.Duration
}

// ErrCheckpointMismatch rejects a Resume snapshot written under a different
// world or pipeline configuration; continuing it would silently change the
// measurement semantics mid-series.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match census configuration")

// shardRuntime exposes one running shard's live pieces to the checkpoint
// coordinator: the scanner (halt/pause/cursor), the aggregate, and the
// accounting that defines quiescence. ready closes once the fields are
// published (scanner nil means setup failed).
type shardRuntime struct {
	ready      chan struct{}
	scanner    *zmap.Scanner
	agg        *analysis.Aggregator
	robust     *Robustness
	accepted   atomic.Uint64
	sinkFailed atomic.Bool
}

// runN executes n shard pipelines (n==1 is the plain census) and merges
// their partial results. It owns the checkpoint machinery: the detached
// pipeline context, the halt watcher, the periodic quiescent coordinator,
// and the truncation checkpoint write.
func (c *Census) runN(callerCtx context.Context, n int) (*Result, error) {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		return nil, fmt.Errorf("core: %d shards exceeds the source-address budget (max %d)", n, maxShards)
	}
	start := time.Now()

	resume, err := c.resumeState(n)
	if err != nil {
		return nil, err
	}

	// With a checkpoint policy the pipelines run under a context detached
	// from the caller's: cancellation must not abort in-flight work, or
	// the committed cursors would not cover what drained. The halt watcher
	// below translates caller cancellation into a graceful stop. Without a
	// policy the legacy behavior stands — caller cancellation cuts the
	// pipeline directly.
	policy := c.Config.Checkpoint
	var pipeCtx context.Context
	var cancel context.CancelFunc
	if policy != nil {
		pipeCtx, cancel = context.WithCancel(context.WithoutCancel(callerCtx))
	} else {
		pipeCtx, cancel = context.WithCancel(callerCtx)
	}
	defer cancel()

	collector, closeCollector, err := c.newCollector()
	if err != nil {
		return nil, err
	}
	defer closeCollector()

	// One merged ledger: with several shards the caller's sink observes
	// records from N drain goroutines, so serialize it; each shard gets a
	// KeepOpen view and the real Close happens once, below.
	var stream dataset.Sink
	if c.Config.StreamTo != nil {
		stream = c.Config.StreamTo
		if n > 1 {
			stream = dataset.Synced(stream)
		}
	}

	runtimes := make([]*shardRuntime, n)
	for i := range runtimes {
		runtimes[i] = &shardRuntime{ready: make(chan struct{})}
	}

	pipesDone := make(chan struct{})
	var hardCanceled atomic.Bool
	var watcherDone chan struct{}
	if policy != nil {
		watcherDone = make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-pipesDone:
				return
			case <-callerCtx.Done():
			}
			// Halt every scanner at its next batch boundary; in-flight
			// work keeps draining under the detached pipeline context,
			// so when the pipelines finish the cursors are exact.
			for _, rt := range runtimes {
				<-rt.ready
				if rt.scanner != nil {
					rt.scanner.Halt()
				}
			}
			grace := policy.DrainGrace
			if grace <= 0 {
				grace = 30 * time.Second
			}
			select {
			case <-pipesDone:
			case <-time.After(grace):
				// The drain is stuck; cut it. The cursors no longer
				// bound what drained, so the checkpoint is skipped.
				hardCanceled.Store(true)
				cancel()
			}
		}()
	}

	var stopTicker func()
	if policy != nil && policy.Every > 0 {
		stopTicker = obs.Every(pipeCtx, policy.Every, func() {
			c.quiescentCheckpoint(pipeCtx, runtimes, n)
		})
	}

	outcomes := make([]*shardOutcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		spec := shardSpec{
			sourceBase:     simnet.IP(uint64(ScannerBase) + uint64(i)*shardSourceStride),
			identifySource: simnet.IP(uint64(IdentifyBase) + uint64(i)*shardSourceStride),
			collector:      collector,
			stream:         stream,
		}
		if n > 1 {
			spec.index, spec.total = i, n
			spec.prefix = fmt.Sprintf("shard%d.", i)
		}
		if resume != nil {
			spec.startCursor = resume.Cursors[i]
		}
		wg.Add(1)
		go func(i int, spec shardSpec) {
			defer wg.Done()
			outcomes[i] = c.runShard(pipeCtx, cancel, start, spec, runtimes[i])
		}(i, spec)
	}
	wg.Wait()
	close(pipesDone)
	if stopTicker != nil {
		stopTicker()
	}
	if watcherDone != nil {
		<-watcherDone
	}

	var streamErr error
	if c.Config.StreamTo != nil {
		streamErr = c.Config.StreamTo.Close()
	}

	// With the pipelines detached from the caller, truncation shows on
	// callerCtx, not pipeCtx — assemble reads whichever context carries
	// the caller's intent.
	assembleCtx := pipeCtx
	if policy != nil {
		assembleCtx = callerCtx
	}
	result, runErr := c.assemble(assembleCtx, start, outcomes, streamErr)

	// The truncation checkpoint: written after everything drained and
	// merged, so it is the exact state an uninterrupted run would have
	// passed through. Skipped after a hard cancel (cursors not exact) and
	// after a sink failure (the ledger is suspect).
	if policy != nil && runErr == nil && result != nil && result.Truncated && !hardCanceled.Load() {
		snap := result.agg.Snapshot()
		cursors := make([]uint64, n)
		for i, rt := range runtimes {
			if rt.scanner != nil {
				cursors[i] = rt.scanner.Cursor()
			}
		}
		snap.Checkpoint = c.checkpointState(n, cursors, result.Observed, result.Probed, result.Responded, true, result.Robustness)
		if werr := policy.Write(snap); werr != nil {
			runErr = fmt.Errorf("core: writing truncation checkpoint: %w", werr)
		} else {
			c.Config.Metrics.Counter("census.checkpoints").Inc()
		}
	}
	return result, runErr
}

// quiescentCheckpoint pauses every scanner, waits until everything emitted
// has been accounted (dead or accepted by the sink chain), flushes the
// ledger, writes a checkpoint, and resumes the walk. Runs on the obs.Every
// goroutine, so invocations never overlap.
func (c *Census) quiescentCheckpoint(pipeCtx context.Context, runtimes []*shardRuntime, n int) {
	for _, rt := range runtimes {
		select {
		case <-rt.ready:
		case <-pipeCtx.Done():
			return
		}
		if rt.scanner == nil {
			return
		}
	}
	for _, rt := range runtimes {
		rt.scanner.Pause()
	}
	defer func() {
		for _, rt := range runtimes {
			rt.scanner.Resume()
		}
	}()

	// Quiescence: with the producers parked, emitted is frozen, so the
	// in-flight count only decreases. accepted is bumped after each
	// record's folds complete, so pending == 0 is also the memory barrier
	// that makes reading the aggregates below race-free.
	for {
		pending := uint64(0)
		for _, rt := range runtimes {
			if rt.sinkFailed.Load() {
				return
			}
			pending += rt.scanner.Emitted() - rt.scanner.Dead() - rt.accepted.Load()
		}
		if pending == 0 {
			break
		}
		select {
		case <-pipeCtx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}

	// Flush the raw stream (not the Synced wrapper — at quiescence no
	// Observe is in flight) so the ledger on disk holds exactly the
	// records the checkpoint counts.
	if f, ok := c.Config.StreamTo.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil {
			c.Config.Metrics.Counter("census.checkpoint_errors").Inc()
			return
		}
	}

	agg := analysis.NewAggregator(nil, nil)
	var robust Robustness
	var probed, responded uint64
	cursors := make([]uint64, n)
	for i, rt := range runtimes {
		agg.Merge(rt.agg)
		robust.Merge(*rt.robust)
		probed += rt.scanner.Stats.Probed.Load()
		responded += rt.scanner.Stats.Responded.Load()
		cursors[i] = rt.scanner.Cursor()
	}
	if r := c.Config.Resume; r != nil && r.Checkpoint != nil {
		agg.MergeSnapshot(r)
		robust.Merge(robustFromState(r.Checkpoint.Robustness))
		probed += r.Checkpoint.Probed
		responded += r.Checkpoint.Responded
	}
	snap := agg.Snapshot()
	snap.Checkpoint = c.checkpointState(n, cursors, agg.Observed(), probed, responded, false, robust)
	if err := c.Config.Checkpoint.Write(snap); err != nil {
		c.Config.Metrics.Counter("census.checkpoint_errors").Inc()
		return
	}
	c.Config.Metrics.Counter("census.checkpoints").Inc()
}

// checkpointState assembles the census-position half of a checkpoint.
func (c *Census) checkpointState(n int, cursors []uint64, observed int, probed, responded uint64, truncated bool, robust Robustness) *analysis.CheckpointState {
	streamed := 0
	if c.Config.StreamTo != nil {
		// The stream sink sits first in every shard's chain, so every
		// observed record is on the ledger: line count == Observed.
		streamed = observed
	}
	p := c.World.Params
	return &analysis.CheckpointState{
		Seed:         p.Seed,
		Epoch:        p.Epoch,
		Scale:        p.Scale,
		Shards:       n,
		ScanSize:     c.World.ScanSize,
		ConfigDigest: c.configDigest(),
		Cursors:      cursors,
		Streamed:     streamed,
		Probed:       probed,
		Responded:    responded,
		Truncated:    truncated,
		Robustness:   robustState(robust),
	}
}

// resumeState validates the configured Resume snapshot against this census
// and shard count, returning its checkpoint state (nil when not resuming).
func (c *Census) resumeState(n int) (*analysis.CheckpointState, error) {
	if c.Config.Resume == nil {
		return nil, nil
	}
	cp := c.Config.Resume.Checkpoint
	if cp == nil {
		return nil, fmt.Errorf("%w: snapshot carries no checkpoint state (a plain aggregate cannot seed the scan position)", ErrCheckpointMismatch)
	}
	p := c.World.Params
	switch {
	case cp.Seed != p.Seed:
		return nil, fmt.Errorf("%w: seed %d != %d", ErrCheckpointMismatch, cp.Seed, p.Seed)
	case cp.Epoch != p.Epoch:
		return nil, fmt.Errorf("%w: epoch %d != %d", ErrCheckpointMismatch, cp.Epoch, p.Epoch)
	case cp.Scale != p.Scale:
		return nil, fmt.Errorf("%w: scale %d != %d", ErrCheckpointMismatch, cp.Scale, p.Scale)
	case cp.ScanSize != c.World.ScanSize:
		return nil, fmt.Errorf("%w: scan size %d != %d", ErrCheckpointMismatch, cp.ScanSize, c.World.ScanSize)
	case cp.Shards != n:
		return nil, fmt.Errorf("%w: checkpoint has %d shards, resuming with %d", ErrCheckpointMismatch, cp.Shards, n)
	case len(cp.Cursors) != n:
		return nil, fmt.Errorf("%w: %d cursors for %d shards", ErrCheckpointMismatch, len(cp.Cursors), n)
	case cp.ConfigDigest != c.configDigest():
		return nil, fmt.Errorf("%w: measurement configuration changed (digest %#x != %#x)", ErrCheckpointMismatch, cp.ConfigDigest, c.configDigest())
	}
	return cp, nil
}

// configDigest fingerprints every knob beyond (seed, epoch, scale, shards)
// that changes what a census observes; resume refuses a checkpoint whose
// digest differs. Parallelism, retention, and metrics wiring are excluded —
// they change how the run executes, not what it measures.
func (c *Census) configDigest() uint64 {
	h := fnv.New64a()
	cfg := c.Config
	p := c.World.Params
	fmt.Fprintf(h, "retries=%d loss=%g portprobe=%t tls=%t cap=%d identify=%t idwait=%s enumtimeout=%s enumretry=%+v hostbudget=%s bytebudget=%d",
		cfg.Retries, cfg.LossRate, !cfg.DisablePortProbe, !cfg.DisableTLS, cfg.RequestCap,
		cfg.Identify, cfg.IdentifyWait, cfg.EnumTimeout, cfg.EnumRetry, cfg.HostBudget, cfg.ByteBudget)
	fmt.Fprintf(h, " hostile=%g faultmix=%+v servicemix=%+v churn=%g/%g/%g",
		p.HostileRate, p.FaultMix, p.ServiceMix, p.ChurnRate, p.UpgradeRate, p.ReallocRate)
	return h.Sum64()
}

// robustState converts the live robustness ledger to its serialized form.
func robustState(r Robustness) analysis.RobustnessState {
	s := analysis.RobustnessState{
		Records:     r.Records,
		Partial:     r.Partial,
		Terminated:  r.Terminated,
		Truncated:   r.Truncated,
		SkippedDirs: r.SkippedDirs,
		Retries:     r.Retries,
		DataBytes:   r.DataBytes,
	}
	if len(r.Failures) > 0 {
		s.Failures = make(map[string]int, len(r.Failures))
		for class, n := range r.Failures {
			s.Failures[class] = n
		}
	}
	return s
}

// robustFromState is the inverse of robustState.
func robustFromState(s analysis.RobustnessState) Robustness {
	r := Robustness{
		Records:     s.Records,
		Partial:     s.Partial,
		Terminated:  s.Terminated,
		Truncated:   s.Truncated,
		SkippedDirs: s.SkippedDirs,
		Retries:     s.Retries,
		DataBytes:   s.DataBytes,
	}
	if len(s.Failures) > 0 {
		r.Failures = make(map[string]int, len(s.Failures))
		for class, n := range s.Failures {
			r.Failures[class] = n
		}
	}
	return r
}
