package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/worldgen"
)

// runWithIdentify reruns the same census (same world — certificates vary
// across world builds, so equivalence must compare runs over one world) with
// the identification stage toggled.
func runWithIdentify(t *testing.T, c *Census, on bool) *Result {
	t.Helper()
	c.Config.Identify = on
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("census run (identify=%v): %v", on, err)
	}
	return res
}

// truthCounts tallies the world's ground truth: FTP hosts and open non-FTP
// endpoints in the scanned range.
func truthCounts(w *worldgen.World) (ftp, nonFTP int) {
	base := uint64(w.ScanBase)
	for off := uint64(0); off < w.ScanSize; off++ {
		truth, ok := w.Truth(simnet.IP(base + off))
		if !ok {
			continue
		}
		if truth.FTP {
			ftp++
		}
		if truth.NonFTPOpen {
			nonFTP++
		}
	}
	return ftp, nonFTP
}

// TestIdentifyPureFTPByteIdentical: on a world where every open endpoint is
// FTP, the three-stage funnel is a pure pass-through — the rendered paper
// tables, the robustness ledger, and the observed count are byte-identical
// to the pre-funnel two-stage pipeline, and the shed ledger stays empty.
func TestIdentifyPureFTPByteIdentical(t *testing.T) {
	p := worldgen.DefaultParams(7, 131072)
	p.FTPRateOfOpen = 1 // every open port speaks FTP
	c, err := NewCensus(CensusConfig{
		Seed:         7,
		Scale:        131072,
		Params:       &p,
		IdentifyWait: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	legacy := runWithIdentify(t, c, false)
	funnel := runWithIdentify(t, c, true)

	lt, ft := legacy.ComputeTables(), funnel.ComputeTables()
	if lt.Render() != ft.Render() {
		t.Error("identify on/off render different paper tables on a pure-FTP world")
	}
	if ft.RenderFull() != ft.Render() {
		t.Error("empty shed ledger still changed RenderFull output")
	}
	if !reflect.DeepEqual(legacy.Robustness, funnel.Robustness) {
		t.Errorf("robustness diverges:\n legacy %+v\n funnel %+v", legacy.Robustness, funnel.Robustness)
	}
	if legacy.Observed != funnel.Observed {
		t.Errorf("observed %d with identify, %d without", funnel.Observed, legacy.Observed)
	}
	if ft.Unexpected.Total != 0 {
		t.Errorf("pure-FTP world shed %d endpoints", ft.Unexpected.Total)
	}
	for _, rec := range funnel.Records {
		if rec.Service != "" {
			t.Fatalf("%s: pure-FTP record carries service %q", rec.IP, rec.Service)
		}
	}
}

// TestIdentifyMixedWorldSheds: the acceptance property of the staged
// funnel — on a mixed world every non-FTP endpoint is shed after exactly one
// identification round-trip (one dial per discovered endpoint, counted by
// identify.*), every true FTP endpoint is enumerated, and the paper tables
// come out byte-identical to the two-stage pipeline that burned a full
// enumeration slot on every service host.
func TestIdentifyMixedWorldSheds(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := NewCensus(CensusConfig{
		Seed:         7,
		Scale:        262144,
		ServiceMix:   worldgen.DefaultServiceMix(),
		IdentifyWait: 150 * time.Millisecond,
		EnumTimeout:  time.Second, // keep the legacy run's silent-host timeouts short
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ftpHosts, nonFTP := truthCounts(c.World)
	if nonFTP == 0 {
		t.Fatal("mixed world generated no service hosts — test is vacuous")
	}

	legacy := runWithIdentify(t, c, false)
	before := reg.Snapshot()
	funnel := runWithIdentify(t, c, true)
	delta := reg.Snapshot().Sub(before)

	// One identification round-trip per discovered endpoint, no retries.
	open := uint64(ftpHosts + nonFTP)
	if got := delta.Counters["identify.dials"]; got != open {
		t.Errorf("identify.dials = %d, want exactly one per endpoint (%d)", got, open)
	}
	if got := delta.Counters["identify.passed"]; got != uint64(ftpHosts) {
		t.Errorf("identify.passed = %d, want %d FTP hosts", got, ftpHosts)
	}
	if got := delta.Counters["identify.shed"]; got != uint64(nonFTP) {
		t.Errorf("identify.shed = %d, want all %d service hosts", got, nonFTP)
	}
	if got := delta.Counters["identify.errors"]; got != 0 {
		t.Errorf("benign mixed world produced %d identify errors", got)
	}

	// The shed ledger accounts for every service host, by protocol.
	ft := funnel.ComputeTables()
	if ft.Unexpected.Total != nonFTP {
		t.Errorf("unexpected-services ledger holds %d endpoints, want %d", ft.Unexpected.Total, nonFTP)
	}
	sum := 0
	for _, s := range ft.Unexpected.Services {
		if s.Protocol == "ftp" || s.Protocol == "" {
			t.Errorf("shed ledger carries protocol %q", s.Protocol)
		}
		sum += s.Count
	}
	if sum != ft.Unexpected.Total {
		t.Errorf("ledger rows sum to %d, total %d", sum, ft.Unexpected.Total)
	}

	// Every record is consistently labeled: FTP records never carry a
	// service, shed records always do.
	for _, rec := range funnel.Records {
		if rec.FTP && rec.Service != "" {
			t.Errorf("%s: FTP record carries service %q", rec.IP, rec.Service)
		}
		if !rec.FTP && rec.Service == "" {
			t.Errorf("%s: shed record missing its sniffed service", rec.IP)
		}
	}

	// Paper tables are unchanged by how non-FTP endpoints were disposed
	// of: the funnel's open/FTP counts match, and every FTP-gated table is
	// fed identical records.
	if legacy.ComputeTables().Render() != ft.Render() {
		t.Error("identify on/off render different paper tables on a mixed world")
	}
	if legacy.Observed != funnel.Observed {
		t.Errorf("observed %d with identify, %d without — both pipelines must record every open endpoint",
			funnel.Observed, legacy.Observed)
	}
}

// TestIdentifyShardedUnexpectedMerge: N shard pipelines each run their own
// identification pool, and the merged unexpected-services table (and full
// report) is byte-identical to the single-pipeline run — the shed ledger is
// an additive fold with deterministic tie-breaking like every other
// accumulator. Per-shard identify counters must sum to the merged view.
func TestIdentifyShardedUnexpectedMerge(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := NewCensus(CensusConfig{
		Seed:         7,
		Scale:        262144,
		ServiceMix:   worldgen.DefaultServiceMix(),
		Identify:     true,
		IdentifyWait: 150 * time.Millisecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := single.ComputeTables()
	if st.Unexpected.Total == 0 {
		t.Fatal("single-pipeline run shed nothing — merge test is vacuous")
	}
	want := st.RenderFull()

	for _, shards := range []int{2, 4} {
		before := reg.Snapshot()
		res := shardedOver(t, c, shards)
		delta := reg.Snapshot().Sub(before)
		rt := res.ComputeTables()
		if !reflect.DeepEqual(rt.Unexpected, st.Unexpected) {
			t.Errorf("%d shards: unexpected-services table diverges:\n got %+v\nwant %+v",
				shards, rt.Unexpected, st.Unexpected)
		}
		if got := rt.RenderFull(); got != want {
			t.Errorf("%d shards: full report diverges from single-pipeline run (%d vs %d bytes)",
				shards, len(got), len(want))
		}
		var perShard uint64
		for i := 0; i < shards; i++ {
			perShard += delta.Counters[fmt.Sprintf("shard%d.identify.shed", i)]
		}
		if merged := delta.Counters["identify.shed"]; perShard != merged || merged != uint64(st.Unexpected.Total) {
			t.Errorf("%d shards: per-shard shed sums to %d, merged %d, ledger %d",
				shards, perShard, merged, st.Unexpected.Total)
		}
	}
}

// TestIdentifyChaosHostileMixedCensus: with transport faults on FTP and
// service hosts alike, the staged funnel still accounts for every endpoint
// exactly once — dials balance against passed+shed, the drain records one
// ledger entry per endpoint, and the run neither hangs nor double-counts.
// Faulted FTP hosts may legally shed (a pre-banner reset looks dead from one
// connection); what is not legal is losing or duplicating an endpoint.
func TestIdentifyChaosHostileMixedCensus(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := NewCensus(CensusConfig{
		Seed:         7,
		Scale:        262144,
		ServiceMix:   worldgen.DefaultServiceMix(),
		HostileRate:  0.4,
		FaultMix:     worldgen.DefaultFaultMix(),
		Identify:     true,
		IdentifyWait: 300 * time.Millisecond,
		EnumTimeout:  1500 * time.Millisecond,
		HostBudget:   6 * time.Second,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	dials := snap.Counters["identify.dials"]
	passed := snap.Counters["identify.passed"]
	shed := snap.Counters["identify.shed"]
	if dials == 0 || passed == 0 || shed == 0 {
		t.Fatalf("hostile mixed census exercised nothing: dials=%d passed=%d shed=%d", dials, passed, shed)
	}
	if passed+shed != dials {
		t.Errorf("identification ledger out of balance: %d passed + %d shed != %d dials", passed, shed, dials)
	}
	if uint64(res.Observed) != dials {
		t.Errorf("observed %d records for %d identified endpoints — every endpoint must yield exactly one record",
			res.Observed, dials)
	}
	tables := res.ComputeTables()
	if tables.Unexpected.Total != int(shed) {
		t.Errorf("shed ledger holds %d, identify.shed counted %d", tables.Unexpected.Total, shed)
	}
	if res.Robustness.Records != res.Observed {
		t.Errorf("robustness records %d != observed %d", res.Robustness.Records, res.Observed)
	}
}
