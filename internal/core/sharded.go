package core

import (
	"context"
	"fmt"
)

// ShardedCensus fans one census out over N cooperating shard pipelines,
// the way "Ten Years of ZMap" describes multi-machine scanning: the
// discovery permutation is strided so each shard probes a disjoint 1/N of
// the address walk, and every shard runs its own scanner, enumerator
// fleet, sink chain, and aggregator against the one shared world. When the
// shards finish, their partial aggregates merge through the accumulator
// snapshots and their robustness ledgers sum — the merged Result finalizes
// byte-identical tables to a single-process run over the same world,
// because every accumulator is an additive fold with deterministic
// tie-breaking (see analysis.Snapshot).
//
// Shared pieces are shared safely: one PORT-validation collector serves
// all shards, and a configured StreamTo sink is serialized behind a mutex
// so the merged JSONL ledger carries every shard's records (interleaved in
// completion order) and is closed exactly once. All shards run under one
// context, so a deadline truncates them together; each shard's partial
// records are merged as truncated partials, not dropped.
type ShardedCensus struct {
	Census *Census
	Shards int
}

// shardSourceStride spaces the shards' enumerator source-address blocks:
// shard i's fleet binds sources starting at ScannerBase + i*stride. The
// block must hold EnumWorkers addresses, and maxShards blocks must stay
// below CollectorIP.
const shardSourceStride = 1024

// maxShards caps the fan-out at what the measurement-address block holds:
// (CollectorIP - ScannerBase) / shardSourceStride.
const maxShards = 63

// NewShardedCensus synthesizes the world and network once, shared by every
// shard. Shards below 1 mean 1 (a plain single-pipeline census).
func NewShardedCensus(cfg CensusConfig, shards int) (*ShardedCensus, error) {
	if shards < 1 {
		shards = 1
	}
	if shards > maxShards {
		return nil, fmt.Errorf("core: %d shards exceeds the source-address budget (max %d)", shards, maxShards)
	}
	if shards > 1 && cfg.EnumWorkers > shardSourceStride {
		return nil, fmt.Errorf("core: %d enum workers per shard exceeds the source block (max %d)", cfg.EnumWorkers, shardSourceStride)
	}
	if shards > 1 && cfg.IdentifyWorkers > shardSourceStride {
		return nil, fmt.Errorf("core: %d identify workers per shard exceeds the source block (max %d)", cfg.IdentifyWorkers, shardSourceStride)
	}
	c, err := NewCensus(cfg)
	if err != nil {
		return nil, err
	}
	return &ShardedCensus{Census: c, Shards: shards}, nil
}

// Run executes the shard pipelines concurrently and merges their partial
// results. With one shard it is exactly Census.Run. Both paths are runN
// (see checkpoint.go), so checkpoint/resume works identically sharded and
// unsharded.
func (s *ShardedCensus) Run(ctx context.Context) (*Result, error) {
	return s.Census.runN(ctx, s.Shards)
}
