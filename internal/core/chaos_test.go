package core

import (
	"context"
	"testing"
	"time"

	"ftpcloud/internal/worldgen"
)

// chaosCensus runs a census over a fully or partially hostile world with
// short enumerator budgets so fault paths trigger quickly.
func chaosCensus(t *testing.T, rate float64, scale int) (*Census, *Result) {
	t.Helper()
	c, err := NewCensus(CensusConfig{
		Seed:        7,
		Scale:       scale,
		HostileRate: rate,
		FaultMix:    worldgen.DefaultFaultMix(),
		EnumTimeout: 700 * time.Millisecond,
		HostBudget:  3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

// TestChaosCensusDropsNoHosts: with every FTP host hostile, the census must
// still terminate and account for every responsive address — each one
// yields a record (possibly partial, possibly an outright classified
// failure), never a silent drop or a hang.
func TestChaosCensusDropsNoHosts(t *testing.T) {
	_, res := chaosCensus(t, 1.0, 131072)

	if res.Observed == 0 {
		t.Fatal("hostile census observed no hosts")
	}
	if uint64(res.Observed) != res.Responded {
		t.Fatalf("observed %d records for %d responsive hosts — hosts dropped silently",
			res.Observed, res.Responded)
	}

	r := res.Robustness
	if r.Partial == 0 {
		t.Error("no partial records in a fully hostile world")
	}
	if len(r.Failures) < 3 {
		t.Errorf("failure classes seen: %v, want at least 3 distinct classes", r.Failures)
	}

	// Degradation invariant: a partial record always names its failure.
	for _, rec := range res.Records {
		if rec.Partial && rec.FailureClass == "" {
			t.Errorf("%s: partial record without a failure class", rec.IP)
		}
	}
}

// TestChaosMixedWorldStillAnalyzes: at a realistic hostile fraction the
// benign majority must still produce the analysis tables while the hostile
// tail shows up in the robustness counters.
func TestChaosMixedWorldStillAnalyzes(t *testing.T) {
	_, res := chaosCensus(t, 0.3, 131072)

	if uint64(res.Observed) != res.Responded {
		t.Fatalf("observed %d != responded %d", res.Observed, res.Responded)
	}
	r := res.Robustness
	if r.Partial == 0 && len(r.Failures) == 0 {
		t.Error("30%% hostile world produced no fault evidence")
	}
	if r.Partial >= res.Observed {
		t.Errorf("every record partial (%d of %d) — benign majority lost",
			r.Partial, res.Observed)
	}

	tables := res.ComputeTables()
	if tables.Funnel.FTPServers == 0 {
		t.Error("no FTP servers measured in mixed world")
	}
	if tables.Funnel.AnonServers == 0 {
		t.Error("no anonymous servers measured in mixed world")
	}
}

// TestBenignCensusHasQuietCounters: with HostileRate zero the degradation
// layer must stay out of the way — no partial records, no skipped subtrees,
// no fault evidence on any host that spoke FTP.
func TestBenignCensusHasQuietCounters(t *testing.T) {
	c, err := NewCensus(CensusConfig{Seed: 7, Scale: 131072})
	if err != nil {
		t.Fatal(err)
	}
	if c.Network.Faults != nil {
		t.Error("benign census wired a fault injector")
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Robustness
	if r.Partial != 0 || r.SkippedDirs != 0 {
		t.Errorf("benign world shows degradation: %+v", r)
	}
	if r.DataBytes == 0 {
		t.Error("no data-channel bytes accounted")
	}
	// Non-FTP hosts that close silently or spew junk banners are honestly
	// classified (eof/protocol), so Failures need not be empty — but no
	// host that actually spoke FTP may carry fault evidence.
	for _, rec := range res.Records {
		if rec.FTP && (rec.Partial || rec.FailureClass != "") {
			t.Errorf("%s: benign FTP host carries fault evidence %q", rec.IP, rec.FailureClass)
		}
	}
}
