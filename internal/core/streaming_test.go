package core

import (
	"context"
	"reflect"
	"testing"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/dataset"
)

// listingProbe is a StreamTo sink that inspects records as they flow by,
// without retaining them.
type listingProbe struct {
	records   int
	withFiles int
	closed    bool
}

func (p *listingProbe) Observe(rec *dataset.HostRecord) error {
	p.records++
	if len(rec.Files) > 0 {
		p.withFiles++
	}
	return nil
}

func (p *listingProbe) Close() error {
	p.closed = true
	return nil
}

// TestStreamingMatchesRetained runs the same world twice — once retained
// (legacy), once streaming-only — and demands byte-identical table output.
// The world is shared between the runs rather than regenerated: certificate
// DER (and so fingerprints) varies across GeneratePool calls because Go's
// ECDSA signer is intentionally randomized (see internal/certs).
func TestStreamingMatchesRetained(t *testing.T) {
	c, retained := testCensus(t, 32768)

	c.Config.RetainRecords = RetainNone
	streaming, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if streaming.Records != nil || streaming.Input != nil {
		t.Errorf("streaming run retained records: Records=%d Input=%v",
			len(streaming.Records), streaming.Input != nil)
	}
	if streaming.Observed != len(retained.Records) {
		t.Errorf("streaming observed %d records, retained run kept %d",
			streaming.Observed, len(retained.Records))
	}

	got := streaming.ComputeTables()
	want := retained.ComputeTables()
	if !reflect.DeepEqual(got, want) {
		t.Error("streaming tables are not deep-equal to retained tables")
	}
	if got.Render() != want.Render() {
		t.Error("streaming table render diverges from retained render")
	}
}

// TestAccumulatorMatchesSlicePath checks that the retained-mode
// ComputeTables (which reuses the streaming aggregator) agrees with
// computing every table directly from the retained Input slices.
func TestAccumulatorMatchesSlicePath(t *testing.T) {
	_, res := testCensus(t, 32768)
	in := res.Input

	got := res.ComputeTables()
	want := Tables{
		Funnel:           analysis.ComputeFunnel(in),
		Classification:   analysis.ComputeClassification(in),
		ASConcentration:  analysis.ComputeASConcentration(in),
		Devices:          analysis.ComputeDevices(in),
		TopASes:          analysis.ComputeTopASes(in, 10),
		Exposure:         analysis.ComputeExposure(in),
		ExposureByDevice: analysis.ComputeExposureByDevice(in),
		CVEs:             analysis.ComputeCVEs(in),
		Malicious:        analysis.ComputeMalicious(in),
		PortBounce:       analysis.ComputePortBounce(in),
		FTPS:             analysis.ComputeFTPS(in, 10),
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("accumulator tables are not deep-equal to the slice-path tables")
	}
	if got.Render() != want.Render() {
		t.Error("accumulator render diverges from slice-path render")
	}
}

// TestStreamingRetainsNoListings proves the constant-memory claim's
// mechanism: listings flow through the sink chain (a probe sees them)
// but nothing in the Result pins them afterwards.
func TestStreamingRetainsNoListings(t *testing.T) {
	probe := &listingProbe{}
	c, err := NewCensus(CensusConfig{
		Seed: 7, Scale: 32768,
		RetainRecords: RetainNone,
		StreamTo:      probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if !probe.closed {
		t.Error("Run did not close the StreamTo sink")
	}
	if probe.records != res.Observed {
		t.Errorf("probe saw %d records, result observed %d", probe.records, res.Observed)
	}
	if probe.withFiles == 0 {
		t.Fatal("no record carried a file listing — world too small to exercise retention")
	}
	if res.Records != nil || res.Input != nil {
		t.Error("streaming-only result still retains records")
	}

	tables := res.ComputeTables()
	if tables.Exposure.ExposingServers == 0 {
		t.Error("exposure table empty despite listed files")
	}
	if tables.Exposure.ExposingServers > probe.withFiles {
		t.Errorf("exposing servers %d exceeds servers with listings %d",
			tables.Exposure.ExposingServers, probe.withFiles)
	}
}

// TestStreamToErrorSurfaced: a failing sink must abort the census and
// surface the error.
type failAfterSink struct {
	after int
	seen  int
}

func (s *failAfterSink) Observe(*dataset.HostRecord) error {
	s.seen++
	if s.seen > s.after {
		return errSinkBoom
	}
	return nil
}

func (s *failAfterSink) Close() error { return nil }

var errSinkBoom = &sinkBoomError{}

type sinkBoomError struct{}

func (*sinkBoomError) Error() string { return "sink boom" }

func TestStreamToErrorSurfaced(t *testing.T) {
	c, err := NewCensus(CensusConfig{
		Seed: 7, Scale: 32768,
		RetainRecords: RetainNone,
		StreamTo:      &failAfterSink{after: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("Run succeeded despite failing sink")
	}
}
