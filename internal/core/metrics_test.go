package core

import (
	"context"
	"testing"

	"ftpcloud/internal/obs"
)

// TestCensusMetricsEndToEnd: one registry wired through CensusConfig must
// collect every stage — simnet transport counters, zmap probe counters,
// enumerator latency histograms, and the drain-side census ledger — and
// the registry's numbers must agree with the result's.
func TestCensusMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := NewCensus(CensusConfig{Seed: 7, Scale: 32768, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["zmap.probed"]; got != res.Probed {
		t.Errorf("zmap.probed=%d, result says %d", got, res.Probed)
	}
	if got := snap.Counters["zmap.responded"]; got != res.Responded {
		t.Errorf("zmap.responded=%d, result says %d", got, res.Responded)
	}
	if got := snap.Counters["census.observed"]; got != uint64(res.Observed) {
		t.Errorf("census.observed=%d, result says %d", got, res.Observed)
	}
	if got := snap.Counters["census.drained"]; got != uint64(res.Observed) {
		t.Errorf("census.drained=%d, want %d (no sink errors)", got, res.Observed)
	}
	if snap.Counters["simnet.probes"] < snap.Counters["zmap.probed"] {
		t.Errorf("simnet.probes=%d below zmap.probed=%d",
			snap.Counters["simnet.probes"], snap.Counters["zmap.probed"])
	}
	if snap.Counters["simnet.dials"] == 0 {
		t.Error("simnet.dials never counted")
	}
	if got := snap.Counters["enum.hosts"]; got != uint64(res.Observed) {
		t.Errorf("enum.hosts=%d, want %d", got, res.Observed)
	}
	if got := snap.Gauges["enum.inflight"]; got != 0 {
		t.Errorf("enum.inflight=%d after the run, want 0", got)
	}

	// The per-interaction latency histograms the paper-adjacent LZR work
	// leans on must be populated: every host dials and reads a banner,
	// and anonymous hosts get listed.
	for _, name := range []string{
		"enum.latency.dial", "enum.latency.banner",
		"enum.latency.list", "enum.latency.cmd", "enum.host_seconds",
	} {
		if snap.Histograms[name].Count == 0 {
			t.Errorf("histogram %s is empty", name)
		}
	}
}

// TestHoneypotStudyMetrics: the §VIII runner wires the same registry layer.
func TestHoneypotStudyMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, err := HoneypotStudy(context.Background(), HoneypotStudyConfig{
		Seed: 3, Honeypots: 2, Attackers: 30, Concentrated: 0.3, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["honeypot.events"] == 0 {
		t.Error("honeypot.events never counted")
	}
	if got := snap.Counters["attacker.bots"]; got != 30 {
		t.Errorf("attacker.bots=%d, want 30", got)
	}
	if snap.Counters["attacker.sessions"] == 0 {
		t.Error("attacker.sessions never counted")
	}
}
