package core

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/dataset"
)

// cancelAtSink forwards records to an inner sink and cancels the run's
// context once n records have passed — a deterministic (record-counted)
// mid-run kill switch.
type cancelAtSink struct {
	inner  dataset.Sink
	n      int
	seen   int
	cancel context.CancelFunc
}

func (s *cancelAtSink) Observe(rec *dataset.HostRecord) error {
	if err := s.inner.Observe(rec); err != nil {
		return err
	}
	s.seen++
	if s.seen == s.n {
		s.cancel()
	}
	return nil
}

func (s *cancelAtSink) Close() error { return s.inner.Close() }

// sortedLines splits a JSONL buffer into sorted lines. Record completion
// order is nondeterministic even uninterrupted (workers race), so ledgers
// compare as sets; byte-identity means identical sorted lines.
func sortedLines(t *testing.T, raw []byte) []string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	sort.Strings(lines)
	return lines
}

// resumeConfig builds the shared census configuration for the equivalence
// tests: streaming mode, small world, optional hostility.
func resumeConfig(seed uint64, scale int, hostile bool) CensusConfig {
	// A fixed clock keeps ScannedAt identical across runs — JSONL
	// byte-identity is part of the equivalence contract.
	stamp := time.Date(2016, 2, 22, 0, 0, 0, 0, time.UTC)
	cfg := CensusConfig{
		Seed:          seed,
		Scale:         scale,
		RetainRecords: RetainNone,
		Now:           func() time.Time { return stamp },
	}
	if hostile {
		cfg.HostileRate = 0.2
	}
	return cfg
}

// runReference runs the census uninterrupted and returns its rendered
// tables, sorted ledger, and result.
func runReference(t *testing.T, cfg CensusConfig, shards int) (string, []string, *Result) {
	t.Helper()
	var ledger bytes.Buffer
	cfg.StreamTo = dataset.NewWriterSink(&ledger)
	sc, err := NewShardedCensus(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res.ComputeTables().Render(), sortedLines(t, ledger.Bytes()), res
}

// TestKillAndResumeEquivalence: a census killed mid-run and resumed from
// its truncation checkpoint produces tables and JSONL byte-identical to the
// same census run uninterrupted — benign and hostile worlds, single and
// sharded. This is the tentpole acceptance criterion.
func TestKillAndResumeEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		hostile bool
		shards  int
	}{
		{"benign/1shard", false, 1},
		{"benign/4shards", false, 4},
		{"hostile/1shard", true, 1},
		{"hostile/4shards", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := resumeConfig(11, 32768, tc.hostile)
			wantRender, wantLedger, wantRes := runReference(t, cfg, tc.shards)

			// First leg: same census, killed after 5 records reach the
			// ledger. The checkpoint policy turns the cancellation into a
			// graceful halt + drain + checkpoint write.
			var checkpoint *analysis.Snapshot
			var ledger bytes.Buffer
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			killCfg := cfg
			// Throttle the walk so the kill lands mid-scan even when the
			// race detector slows enumeration to a crawl: at 100k probes/s
			// the ~112k-address walk takes >1s, while the 5th record (from
			// hosts near the walk's start) arrives within tens of ms. Rate
			// only paces the scan, so the result is still comparable to
			// the unthrottled reference.
			killCfg.ScanRate = 100_000
			killCfg.StreamTo = &cancelAtSink{inner: dataset.NewWriterSink(&ledger), n: 5, cancel: cancel}
			killCfg.Checkpoint = &CheckpointPolicy{
				Write: func(s *analysis.Snapshot) error {
					checkpoint = s
					return nil
				},
			}
			sc, err := NewShardedCensus(killCfg, tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			res1, err := sc.Run(ctx)
			if err != nil {
				t.Fatalf("killed run returned error: %v", err)
			}
			if !res1.Truncated {
				t.Fatal("killed run not flagged truncated")
			}
			if checkpoint == nil {
				t.Fatal("truncation wrote no checkpoint")
			}
			cp := checkpoint.Checkpoint
			if cp == nil {
				t.Fatal("checkpoint snapshot carries no checkpoint state")
			}
			if !cp.Truncated {
				t.Error("checkpoint not marked as written on truncation")
			}
			if len(cp.Cursors) != tc.shards {
				t.Fatalf("checkpoint has %d cursors, want %d", len(cp.Cursors), tc.shards)
			}
			// The halt drained everything emitted: the ledger holds
			// exactly the records the checkpoint counts, no truncation
			// needed before appending.
			if got := len(sortedLines(t, ledger.Bytes())); got != cp.Streamed {
				t.Fatalf("ledger holds %d records, checkpoint says %d", got, cp.Streamed)
			}
			if res1.Observed >= wantRes.Observed {
				t.Fatalf("kill was not mid-run: %d of %d records already observed", res1.Observed, wantRes.Observed)
			}

			// The checkpoint survives serialization (what the CLI does).
			raw, err := checkpoint.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := analysis.DecodeSnapshotBytes(raw)
			if err != nil {
				t.Fatal(err)
			}

			// Second leg: resume, appending to the same ledger.
			resCfg := cfg
			resCfg.StreamTo = dataset.NewWriterSink(&ledger)
			resCfg.Resume = decoded
			sc2, err := NewShardedCensus(resCfg, tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := sc2.Run(context.Background())
			if err != nil {
				t.Fatalf("resumed run returned error: %v", err)
			}
			if res2.Truncated {
				t.Error("resumed run flagged truncated")
			}

			if got := res2.ComputeTables().Render(); got != wantRender {
				t.Errorf("resumed tables diverge from uninterrupted run:\n got:\n%s\nwant:\n%s", got, wantRender)
			}
			gotLedger := sortedLines(t, ledger.Bytes())
			if len(gotLedger) != len(wantLedger) {
				t.Fatalf("concatenated ledger holds %d records, want %d", len(gotLedger), len(wantLedger))
			}
			for i := range wantLedger {
				if gotLedger[i] != wantLedger[i] {
					t.Fatalf("ledger line %d diverges:\n got %s\nwant %s", i, gotLedger[i], wantLedger[i])
				}
			}
			if res2.Observed != wantRes.Observed {
				t.Errorf("Observed %d, want %d", res2.Observed, wantRes.Observed)
			}
			if res2.Probed != wantRes.Probed {
				t.Errorf("Probed %d, want %d — halves must cover the space exactly once", res2.Probed, wantRes.Probed)
			}
			if res2.Responded != wantRes.Responded {
				t.Errorf("Responded %d, want %d", res2.Responded, wantRes.Responded)
			}
		})
	}
}

// stallSink forwards records to an inner sink, stalling once at the n-th
// record until block closes — holding the run open long enough for the
// periodic checkpoint ticker to fire deterministically.
type stallSink struct {
	inner dataset.Sink
	n     int
	seen  int
	block chan struct{}
}

func (s *stallSink) Observe(rec *dataset.HostRecord) error {
	s.seen++
	if s.seen == s.n {
		<-s.block
	}
	return s.inner.Observe(rec)
}

func (s *stallSink) Close() error { return s.inner.Close() }

// Flush forwards to the inner writer so the checkpoint coordinator's
// pre-write flush reaches the buffered ledger.
func (s *stallSink) Flush() error {
	if f, ok := s.inner.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// TestPeriodicCheckpointResumesLikeSIGKILL: a periodic checkpoint taken at
// a quiescent point mid-run, plus the ledger bytes flushed at that moment,
// reconstruct the full census exactly — the SIGKILL story: a run killed
// without warning resumes from its last periodic write.
func TestPeriodicCheckpointResumesLikeSIGKILL(t *testing.T) {
	cfg := resumeConfig(23, 32768, false)
	wantRender, wantLedger, wantRes := runReference(t, cfg, 1)

	// The stall holds the pipeline open ~80ms; the 10ms ticker fires
	// during it, waits out the stall in its quiescence poll, and writes a
	// checkpoint with the ledger flushed. Write captures both.
	var lastSnap []byte
	var lastLedger []byte
	var ledger bytes.Buffer
	stall := &stallSink{inner: dataset.NewWriterSink(&ledger), n: 3, block: make(chan struct{})}
	time.AfterFunc(80*time.Millisecond, func() { close(stall.block) })

	runCfg := cfg
	runCfg.StreamTo = stall
	runCfg.Checkpoint = &CheckpointPolicy{
		Every: 10 * time.Millisecond,
		Write: func(s *analysis.Snapshot) error {
			raw, err := s.EncodeBytes()
			if err != nil {
				return err
			}
			lastSnap = raw
			lastLedger = append([]byte(nil), ledger.Bytes()...)
			return nil
		},
	}
	c, err := NewCensus(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("census with periodic checkpoints failed: %v", err)
	}
	if res.Truncated {
		t.Fatal("uncancelled run flagged truncated")
	}
	// Periodic checkpointing must not perturb the run itself.
	if got := res.ComputeTables().Render(); got != wantRender {
		t.Error("periodic checkpointing changed the census tables")
	}
	if lastSnap == nil {
		t.Fatal("no periodic checkpoint fired during an ~80ms run with a 10ms ticker")
	}

	// Crash recovery: resume from the last periodic write, appending to
	// the ledger bytes as they were at that instant.
	decoded, err := analysis.DecodeSnapshotBytes(lastSnap)
	if err != nil {
		t.Fatal(err)
	}
	cp := decoded.Checkpoint
	if cp == nil {
		t.Fatal("periodic snapshot carries no checkpoint state")
	}
	if cp.Truncated {
		t.Error("periodic checkpoint marked as truncation write")
	}
	if got := len(sortedLines(t, lastLedger)); cp.Streamed != got {
		t.Fatalf("periodic checkpoint says %d streamed, captured ledger holds %d", cp.Streamed, got)
	}

	recovered := bytes.NewBuffer(append([]byte(nil), lastLedger...))
	resCfg := cfg
	resCfg.StreamTo = dataset.NewWriterSink(recovered)
	resCfg.Resume = decoded
	c2, err := NewCensus(resCfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.ComputeTables().Render(); got != wantRender {
		t.Error("recovered tables diverge from uninterrupted run")
	}
	gotLedger := sortedLines(t, recovered.Bytes())
	if len(gotLedger) != len(wantLedger) {
		t.Fatalf("recovered ledger holds %d records, want %d", len(gotLedger), len(wantLedger))
	}
	for i := range wantLedger {
		if gotLedger[i] != wantLedger[i] {
			t.Fatalf("recovered ledger line %d diverges", i)
		}
	}
	if res2.Observed != wantRes.Observed {
		t.Errorf("recovered Observed %d, want %d", res2.Observed, wantRes.Observed)
	}
}

// TestResumeValidation: a checkpoint from a different world or pipeline
// shape is refused with ErrCheckpointMismatch, never silently continued.
func TestResumeValidation(t *testing.T) {
	cfg := resumeConfig(31, 262144, false)

	// Produce a real checkpoint by killing a run immediately.
	var checkpoint *analysis.Snapshot
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killCfg := cfg
	killCfg.StreamTo = &cancelAtSink{inner: &dataset.Collector{}, n: 1, cancel: cancel}
	killCfg.Checkpoint = &CheckpointPolicy{Write: func(s *analysis.Snapshot) error {
		checkpoint = s
		return nil
	}}
	c, err := NewCensus(killCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if checkpoint == nil {
		t.Fatal("no checkpoint written")
	}

	run := func(mutate func(*CensusConfig, *analysis.Snapshot), shards int) error {
		resCfg := cfg
		snap := *checkpoint
		cp := *checkpoint.Checkpoint
		snap.Checkpoint = &cp
		resCfg.Resume = &snap
		mutate(&resCfg, &snap)
		sc, err := NewShardedCensus(resCfg, shards)
		if err != nil {
			return err
		}
		_, err = sc.Run(context.Background())
		return err
	}

	cases := map[string]func() error{
		"different seed": func() error {
			return run(func(c *CensusConfig, _ *analysis.Snapshot) { c.Seed = 99 }, 1)
		},
		"different epoch": func() error {
			return run(func(c *CensusConfig, _ *analysis.Snapshot) { c.Epoch = 2 }, 1)
		},
		"different shards": func() error {
			return run(func(*CensusConfig, *analysis.Snapshot) {}, 4)
		},
		"different measurement knobs": func() error {
			return run(func(c *CensusConfig, _ *analysis.Snapshot) { c.Retries = 3 }, 1)
		},
		"plain aggregate": func() error {
			return run(func(_ *CensusConfig, s *analysis.Snapshot) { s.Checkpoint = nil }, 1)
		},
	}
	for name, f := range cases {
		if err := f(); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s: got %v, want ErrCheckpointMismatch", name, err)
		}
	}

	// The untouched checkpoint must still be accepted.
	if err := run(func(*CensusConfig, *analysis.Snapshot) {}, 1); err != nil {
		t.Errorf("valid checkpoint refused: %v", err)
	}
}
