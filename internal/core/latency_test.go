package core

import (
	"context"
	"testing"
	"time"

	"ftpcloud/internal/simnet"
)

// TestCensusWithRealisticLatency verifies the pipeline completes and finds
// the same hosts when every connection pays a 5–150ms setup latency.
func TestCensusWithRealisticLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency run costs wall-clock time")
	}
	fast, err := NewCensus(CensusConfig{Seed: 7, Scale: 262144})
	if err != nil {
		t.Fatal(err)
	}
	fastRes, err := fast.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	slow, err := NewCensus(CensusConfig{Seed: 7, Scale: 262144, RealisticLatency: true, EnumWorkers: 64})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	slowRes, err := slow.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	if len(slowRes.Records) != len(fastRes.Records) {
		t.Errorf("latency changed discovery: %d vs %d hosts",
			len(slowRes.Records), len(fastRes.Records))
	}
	fastFunnel := fastRes.ComputeTables().Funnel
	slowFunnel := slowRes.ComputeTables().Funnel
	if fastFunnel != slowFunnel {
		t.Errorf("latency changed measurements: %+v vs %+v", slowFunnel, fastFunnel)
	}
	// Latency must actually have been paid (each enumeration opens
	// several connections at ≥5ms each).
	if slowRes.EnumDuration <= fastRes.EnumDuration {
		t.Logf("enum durations: fast=%v slow=%v (elapsed %v)",
			fastRes.EnumDuration, slowRes.EnumDuration, elapsed)
	}
}

// TestLatencyModelDeterministic checks per-pair stability.
func TestLatencyModelDeterministic(t *testing.T) {
	c, err := NewCensus(CensusConfig{Seed: 9, Scale: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m := c.World.LatencyModel()
	a := m(1, 2)
	for i := 0; i < 10; i++ {
		if m(1, 2) != a {
			t.Fatal("latency not stable per pair")
		}
	}
	if a < 5*time.Millisecond || a >= 150*time.Millisecond {
		t.Errorf("latency %v out of range", a)
	}
	diverse := false
	for i := uint32(0); i < 32; i++ {
		if m(1, 2+simnet.IP(i)) != a {
			diverse = true
			break
		}
	}
	if !diverse {
		t.Error("latency identical across pairs")
	}
}
