// Package vfs implements the virtual filesystems served by simulated FTP
// hosts: an in-memory tree of nodes with Unix-style permission bits, owners,
// sizes, and modification times, plus renderers for the two directory-listing
// dialects the enumerator must parse (Unix ls -l and MS-DOS style).
//
// Trees are small relative to the worlds they model because file content is
// synthesized on demand: a node carries either literal bytes or a declared
// size whose content is derived deterministically from the node's seed.
package vfs

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Mode captures the subset of file metadata FTP listings expose.
type Mode uint16

// Permission bits follow the Unix convention.
const (
	PermOtherExec Mode = 1 << iota
	PermOtherWrite
	PermOtherRead
	PermGroupExec
	PermGroupWrite
	PermGroupRead
	PermOwnerExec
	PermOwnerWrite
	PermOwnerRead
)

// Common permission sets.
const (
	Perm644 = PermOwnerRead | PermOwnerWrite | PermGroupRead | PermOtherRead
	Perm600 = PermOwnerRead | PermOwnerWrite
	Perm755 = PermOwnerRead | PermOwnerWrite | PermOwnerExec |
		PermGroupRead | PermGroupExec | PermOtherRead | PermOtherExec
	Perm777 = Perm755 | PermGroupWrite | PermOtherWrite
)

// Node is a file or directory in a virtual filesystem.
type Node struct {
	Name  string
	IsDir bool
	Perm  Mode
	Owner string
	Group string
	MTime time.Time

	// Content holds literal file bytes when small and meaningful (probe
	// files, scripts). For bulk files only Size is set and content is
	// synthesized from Seed on retrieval.
	Content []byte
	Size    int64
	Seed    uint64

	// AnonUpload marks files uploaded by the anonymous user but not yet
	// approved by an administrator (Pure-FTPd's behaviour, which the
	// paper uses as world-writability evidence).
	AnonUpload bool

	// LinkTarget, when non-empty, marks this node as a symbolic link to
	// the given target (rendered as "name -> target" in Unix listings).
	LinkTarget string

	children map[string]*Node
}

// NewDir builds an empty directory node.
func NewDir(name string, perm Mode) *Node {
	return &Node{
		Name:     name,
		IsDir:    true,
		Perm:     perm,
		Owner:    "ftp",
		Group:    "ftp",
		children: make(map[string]*Node),
	}
}

// NewFile builds a file node with a declared size.
func NewFile(name string, perm Mode, size int64) *Node {
	return &Node{Name: name, IsDir: false, Perm: perm, Owner: "ftp", Group: "ftp", Size: size}
}

// NewSymlink builds a symbolic-link node.
func NewSymlink(name, target string) *Node {
	return &Node{
		Name: name, Perm: Perm777, Owner: "ftp", Group: "ftp",
		LinkTarget: target, Size: int64(len(target)),
	}
}

// NewFileContent builds a file node with literal content.
func NewFileContent(name string, perm Mode, content []byte) *Node {
	return &Node{
		Name: name, IsDir: false, Perm: perm,
		Owner: "ftp", Group: "ftp",
		Content: content, Size: int64(len(content)),
	}
}

// Add inserts a child into a directory, replacing any same-named entry, and
// returns the child to allow chained construction.
func (n *Node) Add(child *Node) *Node {
	if !n.IsDir {
		panic("vfs: Add on non-directory")
	}
	if n.children == nil {
		n.children = make(map[string]*Node)
	}
	n.children[child.Name] = child
	return child
}

// Child returns the named child, or nil.
func (n *Node) Child(name string) *Node {
	if n.children == nil {
		return nil
	}
	return n.children[name]
}

// Remove deletes the named child, reporting whether it existed.
func (n *Node) Remove(name string) bool {
	if n.children == nil {
		return false
	}
	if _, ok := n.children[name]; !ok {
		return false
	}
	delete(n.children, name)
	return true
}

// Children returns the directory's entries sorted by name.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CountChildren returns the number of direct entries.
func (n *Node) CountChildren() int { return len(n.children) }

// OtherReadable reports whether the all-users read bit is set — the signal
// the paper uses to classify a file as anonymously retrievable.
func (n *Node) OtherReadable() bool { return n.Perm&PermOtherRead != 0 }

// OtherWritable reports whether the all-users write bit is set.
func (n *Node) OtherWritable() bool { return n.Perm&PermOtherWrite != 0 }

// Walk visits the node and all descendants depth-first, passing each node's
// absolute path. Returning false from fn prunes descent into a directory.
func (n *Node) Walk(base string, fn func(p string, node *Node) bool) {
	p := base
	if p == "" {
		p = "/"
	}
	if !fn(p, n) || !n.IsDir {
		return
	}
	for _, c := range n.Children() {
		c.Walk(path.Join(p, c.Name), fn)
	}
}

// FS is a virtual filesystem rooted at a directory node. Methods are safe
// for concurrent use; FTP sessions against the same host share one FS so
// that uploads by one attacker are visible to subsequent crawls.
type FS struct {
	mu   sync.RWMutex
	root *Node

	// CaseInsensitive models Windows-backed servers.
	CaseInsensitive bool
}

// New builds a filesystem around a root directory node. A nil root yields
// an empty world-readable root.
func New(root *Node) *FS {
	if root == nil {
		root = NewDir("/", Perm755)
	}
	return &FS{root: root}
}

// Root returns the root node. Callers must not mutate the tree without
// holding the FS's locks; it is exposed for construction and analysis.
func (f *FS) Root() *Node { return f.root }

// Clean normalizes an FTP path: backslashes become slashes, the result is
// absolute, and "."/".." segments are resolved without escaping the root.
func Clean(p string) string {
	p = strings.ReplaceAll(p, "\\", "/")
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	cleaned := path.Clean(p)
	if cleaned == "." {
		return "/"
	}
	return cleaned
}

// Join resolves a possibly relative FTP path against a current directory.
func Join(cwd, p string) string {
	p = strings.ReplaceAll(p, "\\", "/")
	if strings.HasPrefix(p, "/") {
		return Clean(p)
	}
	return Clean(path.Join(cwd, p))
}

// Lookup resolves an absolute path to a node, or nil.
func (f *FS) Lookup(p string) *Node {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.lookupLocked(p)
}

func (f *FS) lookupLocked(p string) *Node {
	p = Clean(p)
	if p == "/" {
		return f.root
	}
	cur := f.root
	for _, seg := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if cur == nil || !cur.IsDir {
			return nil
		}
		next := cur.Child(seg)
		if next == nil && f.CaseInsensitive {
			lower := strings.ToLower(seg)
			for name, c := range cur.children {
				if strings.ToLower(name) == lower {
					next = c
					break
				}
			}
		}
		cur = next
	}
	return cur
}

// List returns the sorted entries of the directory at p.
func (f *FS) List(p string) ([]*Node, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := f.lookupLocked(p)
	if n == nil {
		return nil, fmt.Errorf("vfs: %s: no such file or directory", p)
	}
	if !n.IsDir {
		return []*Node{n}, nil
	}
	return n.Children(), nil
}

// Mkdir creates a directory at p; the parent must exist.
func (f *FS) Mkdir(p string, perm Mode) (*Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = Clean(p)
	dir, base := path.Split(p)
	parent := f.lookupLocked(dir)
	if parent == nil || !parent.IsDir {
		return nil, fmt.Errorf("vfs: %s: parent does not exist", p)
	}
	if base == "" {
		return nil, fmt.Errorf("vfs: cannot create root")
	}
	if parent.Child(base) != nil {
		return nil, fmt.Errorf("vfs: %s: already exists", p)
	}
	child := NewDir(base, perm)
	child.MTime = time.Now()
	parent.Add(child)
	return child, nil
}

// Put stores a file at p, creating or replacing it; the parent must exist.
// When replace is false and the name is taken, an incrementing suffix is
// appended ("name.1", "name.2", …) — the upload-rename behaviour some real
// servers exhibit, which the paper uses as write evidence.
func (f *FS) Put(p string, content []byte, perm Mode, replace bool) (*Node, error) {
	return f.PutUpload(p, content, perm, replace, "", false)
}

// PutUpload is Put with upload attribution set atomically: nodes published
// into the tree are never mutated afterwards, so concurrent sessions can
// render listings without synchronizing on individual nodes.
func (f *FS) PutUpload(p string, content []byte, perm Mode, replace bool, owner string, anonUpload bool) (*Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = Clean(p)
	dir, base := path.Split(p)
	parent := f.lookupLocked(dir)
	if parent == nil || !parent.IsDir {
		return nil, fmt.Errorf("vfs: %s: parent does not exist", p)
	}
	if base == "" {
		return nil, fmt.Errorf("vfs: empty file name")
	}
	name := base
	if !replace {
		for i := 1; parent.Child(name) != nil; i++ {
			name = fmt.Sprintf("%s.%d", base, i)
			if i > 1000 {
				return nil, fmt.Errorf("vfs: %s: too many rename collisions", p)
			}
		}
	}
	node := NewFileContent(name, perm, content)
	node.MTime = time.Now()
	if owner != "" {
		node.Owner = owner
	}
	node.AnonUpload = anonUpload
	parent.Add(node)
	return node, nil
}

// Delete removes the file or empty directory at p.
func (f *FS) Delete(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = Clean(p)
	if p == "/" {
		return fmt.Errorf("vfs: cannot delete root")
	}
	dir, base := path.Split(p)
	parent := f.lookupLocked(dir)
	if parent == nil || !parent.IsDir {
		return fmt.Errorf("vfs: %s: no such file", p)
	}
	target := parent.Child(base)
	if target == nil {
		return fmt.Errorf("vfs: %s: no such file", p)
	}
	if target.IsDir && target.CountChildren() > 0 {
		return fmt.Errorf("vfs: %s: directory not empty", p)
	}
	parent.Remove(base)
	return nil
}

// TotalEntries counts all nodes in the tree (including the root).
func (f *FS) TotalEntries() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	count := 0
	f.root.Walk("/", func(string, *Node) bool { count++; return true })
	return count
}

// SynthContent deterministically generates size bytes from seed; used for
// bulk file bodies the analysis never inspects.
func SynthContent(seed uint64, size int64) []byte {
	out := make([]byte, size)
	// splitmix64 finalizer decorrelates adjacent seeds before the xorshift run.
	state := seed + 0x9e3779b97f4a7c15
	state = (state ^ (state >> 30)) * 0xbf58476d1ce4e5b9
	state = (state ^ (state >> 27)) * 0x94d049bb133111eb
	state ^= state >> 31
	state |= 1
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = byte(state)
	}
	return out
}
