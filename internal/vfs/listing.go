package vfs

import (
	"fmt"
	"strconv"
	"time"
)

// ListStyle selects the directory-listing dialect a server emits.
type ListStyle int

// Listing dialects observed in the wild and handled by the enumerator.
const (
	// StyleUnix is the ubiquitous "ls -l" format emitted by ProFTPD,
	// vsftpd, Pure-FTPd and most embedded Linux devices.
	StyleUnix ListStyle = iota + 1
	// StyleDOS is the MS-DOS format emitted by IIS and many Windows
	// servers; it carries no permission bits, which is why the paper
	// labels such files "unk-readability".
	StyleDOS
)

// String names the style.
func (s ListStyle) String() string {
	switch s {
	case StyleUnix:
		return "unix"
	case StyleDOS:
		return "dos"
	default:
		return fmt.Sprintf("ListStyle(%d)", int(s))
	}
}

// appendPerm appends "drwxr-xr-x"-style mode text.
func appendPerm(dst []byte, n *Node) []byte {
	kind := byte('-')
	if n.IsDir {
		kind = 'd'
	}
	if n.LinkTarget != "" {
		kind = 'l'
	}
	dst = append(dst, kind)
	const bits = "rwxrwxrwx"
	for i := 0; i < 9; i++ {
		if n.Perm&(1<<(8-i)) != 0 {
			dst = append(dst, bits[i])
		} else {
			dst = append(dst, '-')
		}
	}
	return dst
}

// permString renders "drwxr-xr-x"-style mode text.
func permString(n *Node) string {
	var b [10]byte
	return string(appendPerm(b[:0], n))
}

// appendPadInt appends v right-aligned in a space-padded field of width w.
func appendPadInt(dst []byte, v int64, w int) []byte {
	var tmp [20]byte
	num := strconv.AppendInt(tmp[:0], v, 10)
	for pad := w - len(num); pad > 0; pad-- {
		dst = append(dst, ' ')
	}
	return append(dst, num...)
}

// appendPadRight appends s left-aligned in a space-padded field of width w.
func appendPadRight(dst []byte, s string, w int) []byte {
	dst = append(dst, s...)
	for pad := w - len(s); pad > 0; pad-- {
		dst = append(dst, ' ')
	}
	return dst
}

// listDate resolves the timestamp rendered for a node: zero times become
// "about a year ago" so synthetic trees still list plausibly.
func listDate(t, now time.Time) time.Time {
	if t.IsZero() {
		return now.Add(-365 * 24 * time.Hour)
	}
	return t
}

// AppendUnixLine appends one node as an ls -l line (no terminator).
// The Append* family writes into a caller-owned scratch buffer so a busy
// server renders listings without per-entry string allocation.
func AppendUnixLine(dst []byte, n *Node, now time.Time) []byte {
	links := 1
	if n.IsDir {
		links = 2 + n.CountChildren()
	}
	size := n.Size
	if n.IsDir {
		size = 4096
	}
	dst = appendPerm(dst, n)
	dst = append(dst, ' ')
	dst = appendPadInt(dst, int64(links), 3)
	dst = append(dst, ' ')
	dst = appendPadRight(dst, n.Owner, 8)
	dst = append(dst, ' ')
	dst = appendPadRight(dst, n.Group, 8)
	dst = append(dst, ' ')
	dst = appendPadInt(dst, size, 12)
	dst = append(dst, ' ')
	t := listDate(n.MTime, now)
	if d := now.Sub(t); d < 180*24*time.Hour && d > -180*24*time.Hour {
		dst = t.AppendFormat(dst, "Jan _2 15:04")
	} else {
		dst = t.AppendFormat(dst, "Jan _2  2006")
	}
	dst = append(dst, ' ')
	dst = append(dst, n.Name...)
	if n.LinkTarget != "" {
		dst = append(dst, " -> "...)
		dst = append(dst, n.LinkTarget...)
	}
	return dst
}

// FormatUnixLine renders one node as an ls -l line.
func FormatUnixLine(n *Node, now time.Time) string {
	return string(AppendUnixLine(nil, n, now))
}

// AppendDOSLine appends one node as an IIS-style line (no terminator).
func AppendDOSLine(dst []byte, n *Node, now time.Time) []byte {
	dst = listDate(n.MTime, now).AppendFormat(dst, "01-02-06  03:04PM")
	if n.IsDir {
		dst = append(dst, "       <DIR>          "...)
	} else {
		dst = append(dst, ' ')
		dst = appendPadInt(dst, n.Size, 20)
		dst = append(dst, ' ')
	}
	return append(dst, n.Name...)
}

// FormatDOSLine renders one node as an IIS-style line.
func FormatDOSLine(n *Node, now time.Time) string {
	return string(AppendDOSLine(nil, n, now))
}

// AppendListing appends a full LIST response body for the given entries.
// Lines are CRLF-terminated as they are on the data channel.
func AppendListing(dst []byte, entries []*Node, style ListStyle, now time.Time) []byte {
	for _, n := range entries {
		switch style {
		case StyleDOS:
			dst = AppendDOSLine(dst, n, now)
		default:
			dst = AppendUnixLine(dst, n, now)
		}
		dst = append(dst, '\r', '\n')
	}
	return dst
}

// FormatListing renders a full LIST response body for the given entries.
func FormatListing(entries []*Node, style ListStyle, now time.Time) string {
	return string(AppendListing(nil, entries, style, now))
}

// AppendMLSDLine appends one node as an RFC 3659 machine-readable listing
// line: "fact=value;fact=value; name" (no terminator).
func AppendMLSDLine(dst []byte, n *Node, now time.Time) []byte {
	typ := "file"
	size := n.Size
	if n.IsDir {
		typ = "dir"
		size = 4096
	}
	dst = append(dst, "type="...)
	dst = append(dst, typ...)
	dst = append(dst, ";size="...)
	dst = strconv.AppendInt(dst, size, 10)
	dst = append(dst, ";modify="...)
	dst = listDate(n.MTime, now).UTC().AppendFormat(dst, "20060102150405")
	dst = append(dst, ";UNIX.mode="...)
	var oct [8]byte
	o := strconv.AppendUint(oct[:0], uint64(uint16(n.Perm)), 8)
	for pad := 4 - len(o); pad > 0; pad-- {
		dst = append(dst, '0')
	}
	dst = append(dst, o...)
	dst = append(dst, ";UNIX.owner="...)
	dst = append(dst, n.Owner...)
	dst = append(dst, "; "...)
	return append(dst, n.Name...)
}

// FormatMLSDLine renders one node as an RFC 3659 machine-readable listing
// line: "fact=value;fact=value; name".
func FormatMLSDLine(n *Node, now time.Time) string {
	return string(AppendMLSDLine(nil, n, now))
}

// AppendMLSDListing appends a full MLSD response body.
func AppendMLSDListing(dst []byte, entries []*Node, now time.Time) []byte {
	for _, n := range entries {
		dst = AppendMLSDLine(dst, n, now)
		dst = append(dst, '\r', '\n')
	}
	return dst
}

// FormatMLSDListing renders a full MLSD response body.
func FormatMLSDListing(entries []*Node, now time.Time) string {
	return string(AppendMLSDListing(nil, entries, now))
}

// AppendNameList appends an NLST response body (bare names).
func AppendNameList(dst []byte, entries []*Node) []byte {
	for _, n := range entries {
		dst = append(dst, n.Name...)
		dst = append(dst, '\r', '\n')
	}
	return dst
}

// FormatNameList renders an NLST response body (bare names).
func FormatNameList(entries []*Node) string {
	return string(AppendNameList(nil, entries))
}
