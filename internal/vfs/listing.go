package vfs

import (
	"fmt"
	"strings"
	"time"
)

// ListStyle selects the directory-listing dialect a server emits.
type ListStyle int

// Listing dialects observed in the wild and handled by the enumerator.
const (
	// StyleUnix is the ubiquitous "ls -l" format emitted by ProFTPD,
	// vsftpd, Pure-FTPd and most embedded Linux devices.
	StyleUnix ListStyle = iota + 1
	// StyleDOS is the MS-DOS format emitted by IIS and many Windows
	// servers; it carries no permission bits, which is why the paper
	// labels such files "unk-readability".
	StyleDOS
)

// String names the style.
func (s ListStyle) String() string {
	switch s {
	case StyleUnix:
		return "unix"
	case StyleDOS:
		return "dos"
	default:
		return fmt.Sprintf("ListStyle(%d)", int(s))
	}
}

// permString renders "drwxr-xr-x"-style mode text.
func permString(n *Node) string {
	var b [10]byte
	b[0] = '-'
	if n.IsDir {
		b[0] = 'd'
	}
	if n.LinkTarget != "" {
		b[0] = 'l'
	}
	bits := "rwxrwxrwx"
	for i := 0; i < 9; i++ {
		if n.Perm&(1<<(8-i)) != 0 {
			b[i+1] = bits[i]
		} else {
			b[i+1] = '-'
		}
	}
	return string(b[:])
}

// unixDate renders the ls -l date column: time-of-day for recent files,
// year for older ones.
func unixDate(t, now time.Time) string {
	if t.IsZero() {
		t = now.Add(-365 * 24 * time.Hour)
	}
	if now.Sub(t) < 180*24*time.Hour && now.Sub(t) > -180*24*time.Hour {
		return t.Format("Jan _2 15:04")
	}
	return t.Format("Jan _2  2006")
}

// FormatUnixLine renders one node as an ls -l line.
func FormatUnixLine(n *Node, now time.Time) string {
	links := 1
	if n.IsDir {
		links = 2 + n.CountChildren()
	}
	size := n.Size
	if n.IsDir {
		size = 4096
	}
	name := n.Name
	if n.LinkTarget != "" {
		name = n.Name + " -> " + n.LinkTarget
	}
	return fmt.Sprintf("%s %3d %-8s %-8s %12d %s %s",
		permString(n), links, n.Owner, n.Group, size, unixDate(n.MTime, now), name)
}

// FormatDOSLine renders one node as an IIS-style line.
func FormatDOSLine(n *Node, now time.Time) string {
	t := n.MTime
	if t.IsZero() {
		t = now.Add(-365 * 24 * time.Hour)
	}
	stamp := t.Format("01-02-06  03:04PM")
	if n.IsDir {
		return fmt.Sprintf("%s       <DIR>          %s", stamp, n.Name)
	}
	return fmt.Sprintf("%s %20d %s", stamp, n.Size, n.Name)
}

// FormatListing renders a full LIST response body for the given entries.
// Lines are CRLF-terminated as they are on the data channel.
func FormatListing(entries []*Node, style ListStyle, now time.Time) string {
	var b strings.Builder
	for _, n := range entries {
		switch style {
		case StyleDOS:
			b.WriteString(FormatDOSLine(n, now))
		default:
			b.WriteString(FormatUnixLine(n, now))
		}
		b.WriteString("\r\n")
	}
	return b.String()
}

// FormatMLSDLine renders one node as an RFC 3659 machine-readable listing
// line: "fact=value;fact=value; name".
func FormatMLSDLine(n *Node, now time.Time) string {
	t := n.MTime
	if t.IsZero() {
		t = now.Add(-365 * 24 * time.Hour)
	}
	typ := "file"
	size := n.Size
	if n.IsDir {
		typ = "dir"
		size = 4096
	}
	return fmt.Sprintf("type=%s;size=%d;modify=%s;UNIX.mode=%04o;UNIX.owner=%s; %s",
		typ, size, t.UTC().Format("20060102150405"), uint16(n.Perm), n.Owner, n.Name)
}

// FormatMLSDListing renders a full MLSD response body.
func FormatMLSDListing(entries []*Node, now time.Time) string {
	var b strings.Builder
	for _, n := range entries {
		b.WriteString(FormatMLSDLine(n, now))
		b.WriteString("\r\n")
	}
	return b.String()
}

// FormatNameList renders an NLST response body (bare names).
func FormatNameList(entries []*Node) string {
	var b strings.Builder
	for _, n := range entries {
		b.WriteString(n.Name)
		b.WriteString("\r\n")
	}
	return b.String()
}
