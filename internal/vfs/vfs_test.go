package vfs

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleFS() *FS {
	root := NewDir("/", Perm755)
	pub := root.Add(NewDir("pub", Perm755))
	pub.Add(NewFile("index.html", Perm644, 1234))
	pub.Add(NewFile("secret.key", Perm600, 512))
	photos := pub.Add(NewDir("photos", Perm755))
	photos.Add(NewFile("DSC_0001.jpg", Perm644, 2_000_000))
	root.Add(NewDir("incoming", Perm777))
	return New(root)
}

func TestCleanAndJoin(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"", "/"},
		{"/", "/"},
		{"pub", "/pub"},
		{"/pub/", "/pub"},
		{"/pub/../etc", "/etc"},
		{"/../..", "/"},
		{"a/b/./c", "/a/b/c"},
		{"\\pub\\sub", "/pub/sub"},
		{"/pub//x", "/pub/x"},
	}
	for _, tt := range tests {
		if got := Clean(tt.in); got != tt.want {
			t.Errorf("Clean(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	if got := Join("/pub", "photos"); got != "/pub/photos" {
		t.Errorf("Join = %q", got)
	}
	if got := Join("/pub", "/abs"); got != "/abs" {
		t.Errorf("Join abs = %q", got)
	}
	if got := Join("/pub", ".."); got != "/" {
		t.Errorf("Join .. = %q", got)
	}
}

// Property: Clean is idempotent, always absolute, and never contains "..".
func TestCleanProperties(t *testing.T) {
	f := func(raw string) bool {
		c := Clean(raw)
		return strings.HasPrefix(c, "/") &&
			Clean(c) == c &&
			!strings.Contains(c, "..") || !strings.ContainsAny(raw, "/\\")
	}
	// Restrict to path-ish strings for meaningful coverage.
	g := func(segs []uint8) bool {
		parts := make([]string, 0, len(segs))
		choices := []string{"a", "bb", ".", "..", "", "pub", "x y"}
		for _, s := range segs {
			parts = append(parts, choices[int(s)%len(choices)])
		}
		return f(strings.Join(parts, "/"))
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestLookup(t *testing.T) {
	fs := sampleFS()
	if n := fs.Lookup("/"); n == nil || !n.IsDir {
		t.Fatal("root lookup failed")
	}
	if n := fs.Lookup("/pub/photos/DSC_0001.jpg"); n == nil || n.Size != 2_000_000 {
		t.Fatal("deep lookup failed")
	}
	if n := fs.Lookup("/pub/../incoming"); n == nil {
		t.Fatal("dotdot lookup failed")
	}
	if fs.Lookup("/nope") != nil {
		t.Fatal("phantom lookup succeeded")
	}
	if fs.Lookup("/pub/index.html/deeper") != nil {
		t.Fatal("descending through file succeeded")
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	fs := sampleFS()
	if fs.Lookup("/PUB") != nil {
		t.Fatal("case-sensitive FS matched wrong case")
	}
	fs.CaseInsensitive = true
	if fs.Lookup("/PUB/Index.HTML") == nil {
		t.Fatal("case-insensitive lookup failed")
	}
}

func TestListErrors(t *testing.T) {
	fs := sampleFS()
	if _, err := fs.List("/ghost"); err == nil {
		t.Error("List of missing path succeeded")
	}
	entries, err := fs.List("/pub")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("len = %d", len(entries))
	}
	// Sorted order.
	if entries[0].Name != "index.html" || entries[2].Name != "secret.key" {
		t.Errorf("order: %s, %s, %s", entries[0].Name, entries[1].Name, entries[2].Name)
	}
	// Listing a file yields the file itself (ls semantics).
	single, err := fs.List("/pub/index.html")
	if err != nil || len(single) != 1 || single[0].Name != "index.html" {
		t.Errorf("file list: %v %v", single, err)
	}
}

func TestMkdirPutDelete(t *testing.T) {
	fs := sampleFS()
	if _, err := fs.Mkdir("/incoming/drop", Perm777); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if _, err := fs.Mkdir("/incoming/drop", Perm777); err == nil {
		t.Fatal("duplicate Mkdir succeeded")
	}
	if _, err := fs.Mkdir("/ghost/sub", Perm777); err == nil {
		t.Fatal("Mkdir under missing parent succeeded")
	}
	if _, err := fs.Put("/incoming/drop/w0000000t.txt", []byte("Anonymous"), Perm644, true); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if fs.Lookup("/incoming/drop/w0000000t.txt") == nil {
		t.Fatal("uploaded file missing")
	}
	if err := fs.Delete("/incoming/drop/w0000000t.txt"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := fs.Delete("/incoming/drop"); err != nil {
		t.Fatalf("Delete empty dir: %v", err)
	}
	if err := fs.Delete("/pub"); err == nil {
		t.Fatal("Delete non-empty dir succeeded")
	}
	if err := fs.Delete("/"); err == nil {
		t.Fatal("Delete root succeeded")
	}
	if err := fs.Delete("/nope"); err == nil {
		t.Fatal("Delete missing succeeded")
	}
}

func TestPutUploadRename(t *testing.T) {
	fs := sampleFS()
	for i := 0; i < 3; i++ {
		if _, err := fs.Put("/incoming/probe", []byte("x"), Perm644, false); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for _, name := range []string{"/incoming/probe", "/incoming/probe.1", "/incoming/probe.2"} {
		if fs.Lookup(name) == nil {
			t.Errorf("missing %s", name)
		}
	}
}

func TestPermissionBits(t *testing.T) {
	f := NewFile("x", Perm644, 1)
	if !f.OtherReadable() || f.OtherWritable() {
		t.Error("644 wrong")
	}
	s := NewFile("k", Perm600, 1)
	if s.OtherReadable() {
		t.Error("600 should not be other-readable")
	}
	d := NewDir("in", Perm777)
	if !d.OtherWritable() {
		t.Error("777 should be other-writable")
	}
}

func TestWalkAndTotalEntries(t *testing.T) {
	fs := sampleFS()
	var paths []string
	fs.Root().Walk("/", func(p string, n *Node) bool {
		paths = append(paths, p)
		return true
	})
	want := 7 // root, pub, index, secret, photos, dsc, incoming
	if len(paths) != want {
		t.Errorf("walked %d paths (%v), want %d", len(paths), paths, want)
	}
	if fs.TotalEntries() != want {
		t.Errorf("TotalEntries = %d", fs.TotalEntries())
	}
	// Pruned walk.
	count := 0
	fs.Root().Walk("/", func(p string, n *Node) bool {
		count++
		return p == "/" // descend only from root
	})
	if count != 3 { // root + its two children
		t.Errorf("pruned walk visited %d", count)
	}
}

func TestPermString(t *testing.T) {
	d := NewDir("pub", Perm755)
	if got := permString(d); got != "drwxr-xr-x" {
		t.Errorf("dir perm = %q", got)
	}
	f := NewFile("x", Perm644, 1)
	if got := permString(f); got != "-rw-r--r--" {
		t.Errorf("file perm = %q", got)
	}
	k := NewFile("k", Perm600, 1)
	if got := permString(k); got != "-rw-------" {
		t.Errorf("600 perm = %q", got)
	}
}

func TestFormatUnixLine(t *testing.T) {
	now := time.Date(2015, 6, 18, 12, 0, 0, 0, time.UTC)
	f := NewFile("report.pdf", Perm644, 102400)
	f.MTime = time.Date(2014, 3, 1, 10, 30, 0, 0, time.UTC)
	line := FormatUnixLine(f, now)
	for _, want := range []string{"-rw-r--r--", "ftp", "102400", "Mar  1  2014", "report.pdf"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// Recent file gets time-of-day, not year.
	f.MTime = time.Date(2015, 6, 1, 10, 30, 0, 0, time.UTC)
	line = FormatUnixLine(f, now)
	if !strings.Contains(line, "10:30") || strings.Contains(line, " 2015") {
		t.Errorf("recent line = %q", line)
	}
}

func TestFormatDOSLine(t *testing.T) {
	now := time.Date(2015, 6, 18, 12, 0, 0, 0, time.UTC)
	d := NewDir("wwwroot", Perm755)
	d.MTime = time.Date(2015, 2, 14, 15, 4, 0, 0, time.UTC)
	line := FormatDOSLine(d, now)
	if !strings.Contains(line, "<DIR>") || !strings.Contains(line, "wwwroot") || !strings.Contains(line, "02-14-15") {
		t.Errorf("dir line = %q", line)
	}
	f := NewFile("data.mdb", Perm644, 4096)
	f.MTime = d.MTime
	line = FormatDOSLine(f, now)
	if strings.Contains(line, "<DIR>") || !strings.Contains(line, "4096") {
		t.Errorf("file line = %q", line)
	}
}

func TestFormatListingAndNameList(t *testing.T) {
	fs := sampleFS()
	entries, _ := fs.List("/pub")
	now := time.Now()
	body := FormatListing(entries, StyleUnix, now)
	if strings.Count(body, "\r\n") != 3 {
		t.Errorf("unix listing lines: %q", body)
	}
	body = FormatListing(entries, StyleDOS, now)
	if !strings.Contains(body, "<DIR>") {
		t.Errorf("dos listing: %q", body)
	}
	names := FormatNameList(entries)
	if !strings.Contains(names, "index.html\r\n") {
		t.Errorf("name list: %q", names)
	}
}

func TestSynthContentDeterministic(t *testing.T) {
	a := SynthContent(42, 1024)
	b := SynthContent(42, 1024)
	c := SynthContent(43, 1024)
	if string(a) != string(b) {
		t.Error("same seed produced different content")
	}
	if string(a) == string(c) {
		t.Error("different seeds produced same content")
	}
	if len(a) != 1024 {
		t.Errorf("len = %d", len(a))
	}
}

func TestListStyleString(t *testing.T) {
	if StyleUnix.String() != "unix" || StyleDOS.String() != "dos" {
		t.Error("style names wrong")
	}
	if ListStyle(99).String() == "" {
		t.Error("unknown style should still render")
	}
}
