package personality

import "ftpcloud/internal/vfs"

// Profile keys, exported so the world generator and tests reference
// profiles without string literals.
const (
	KeyProFTPD135    = "proftpd-1.3.5"
	KeyProFTPD134a   = "proftpd-1.3.4a"
	KeyProFTPD133c   = "proftpd-1.3.3c"
	KeyProFTPD132    = "proftpd-1.3.2"
	KeyPureFTPd1036  = "pure-ftpd-1.0.36"
	KeyPureFTPd1029  = "pure-ftpd-1.0.29"
	KeyVsftpd302     = "vsftpd-3.0.2"
	KeyVsftpd235     = "vsftpd-2.3.5"
	KeyVsftpd232     = "vsftpd-2.3.2"
	KeyWuFTPd262     = "wu-ftpd-2.6.2"
	KeyFileZilla0941 = "filezilla-0.9.41"
	KeyFileZilla0953 = "filezilla-0.9.53"
	KeyServU64       = "serv-u-6.4"
	KeyServU15       = "serv-u-15.1"
	KeyIIS75         = "iis-7.5"
	KeyGenericUnix   = "generic-unix"
	KeyRamnit        = "ramnit-backdoor"

	KeyHostedHomePL = "hosted-homepl"
	KeyHostedCPanel = "hosted-cpanel"
	KeyHostedPlesk  = "hosted-plesk"

	KeyQNAPNAS        = "qnap-turbo-nas"
	KeyASUSRouter     = "asus-router"
	KeySynologyNAS    = "synology-nas"
	KeyBuffaloNAS     = "buffalo-linkstation"
	KeyZyXELNAS       = "zyxel-nsa-nas"
	KeyRicohPrinter   = "ricoh-printer"
	KeyLaCieNAS       = "lacie-cloudbox"
	KeyLexmarkPrinter = "lexmark-printer"
	KeyXeroxPrinter   = "xerox-printer"
	KeyDellPrinter    = "dell-printer"
	KeyLinksysRouter  = "linksys-router"
	KeyLutron         = "lutron-homeworks"
	KeySeagate        = "seagate-central"

	KeyFritzBox   = "fritzbox-dsl"
	KeyZyXELDSL   = "zyxel-dsl"
	KeyAXISCamera = "axis-camera"
	KeyZTEWiMax   = "zte-wimax"
	KeySpeedport  = "speedport-dsl"
	KeyDreambox   = "dreambox-stb"
	KeyZyXELUSG   = "zyxel-usg"
	KeyAlcatel    = "alcatel-router"
	KeyDrayTek    = "draytek-vigor"
	KeySymonMedia = "symon-media-player"
	KeyAxentra    = "axentra-hipserv"
	KeyLGENAS     = "lge-nas"
	KeyAsusTorNAS = "asustor-nas"
)

// standardFeatures is the common FEAT body for modern Unix servers.
func standardFeatures(tls bool) []string {
	f := []string{"MDTM", "REST STREAM", "SIZE", "UTF8", "EPSV", "PASV"}
	if tls {
		f = append(f, "AUTH TLS", "PBSZ", "PROT")
	}
	return f
}

// mlstFeature advertises RFC 3659 machine-readable listings; appended to
// the FEAT body of implementations modern enough to ship MLSD.
const mlstFeature = "MLST type*;size*;modify*;UNIX.mode*;UNIX.owner*;"

// withMLST appends the MLST feature line.
func withMLST(features []string) []string {
	return append(append([]string(nil), features...), mlstFeature)
}

var standardHelp = []string{
	"The following commands are recognized (* =>'s unimplemented):",
	"USER PASS QUIT PORT PASV TYPE MODE STRU RETR STOR DELE MKD RMD",
	"PWD CWD CDUP LIST NLST SYST STAT HELP NOOP FEAT SIZE MDTM",
}

// buildRegistry constructs every profile. Banners and quirks mirror the
// implementations and devices the paper names; version choices align with
// the CVE exposure it measures (Table XI).
func buildRegistry() []*Personality {
	var list []*Personality
	add := func(p *Personality) { list = append(list, p) }

	// --- Generic server software -----------------------------------------

	proftpd := func(key, version string, ftps bool) *Personality {
		features := standardFeatures(ftps)
		if version >= "1.3.4" {
			features = withMLST(features)
		}
		return &Personality{
			Key:       key,
			Software:  "ProFTPD",
			Version:   version,
			Banner:    "ProFTPD " + version + " Server (ProFTPD Default Installation) [%IP%]",
			Features:  features,
			HelpLines: standardHelp,
			SiteHelp:  []string{"CHMOD", "HELP"},
			Reply331:  "Password required for %USER%",
			Category:  CategoryGeneric,
			Quirks: Quirks{
				ValidatePORT: true,
				SupportsFTPS: ftps,
				BannerHasIP:  true,
				ListStyle:    vfs.StyleUnix,
			},
		}
	}
	add(proftpd(KeyProFTPD135, "1.3.5", true))
	add(proftpd(KeyProFTPD134a, "1.3.4a", true))
	add(proftpd(KeyProFTPD133c, "1.3.3c", false))
	add(proftpd(KeyProFTPD132, "1.3.2", false))

	add(&Personality{
		Key:      KeyPureFTPd1036,
		Software: "Pure-FTPd",
		Version:  "1.0.36",
		Banner: "---------- Welcome to Pure-FTPd [privsep] [TLS] ----------\n" +
			"You are user number 1 of 50 allowed.\n" +
			"This is a private system - No anonymous login",
		Features:  withMLST(standardFeatures(true)),
		HelpLines: standardHelp,
		Reply331:  "User %USER% OK. Password required",
		Category:  CategoryGeneric,
		Quirks: Quirks{
			ValidatePORT:            true,
			SupportsFTPS:            true,
			UploadRenameSuffix:      true,
			AnonUploadNeedsApproval: true,
			ListStyle:               vfs.StyleUnix,
		},
	})
	add(&Personality{
		Key:       KeyPureFTPd1029,
		Software:  "Pure-FTPd",
		Version:   "1.0.29",
		Banner:    "Welcome to Pure-FTPd 1.0.29 ----------",
		Features:  standardFeatures(false),
		HelpLines: standardHelp,
		Reply331:  "User %USER% OK. Password required",
		Category:  CategoryGeneric,
		Quirks: Quirks{
			ValidatePORT:            true,
			UploadRenameSuffix:      true,
			AnonUploadNeedsApproval: true,
			ListStyle:               vfs.StyleUnix,
		},
	})

	vsftpd := func(key, version string) *Personality {
		return &Personality{
			Key:       key,
			Software:  "vsFTPd",
			Version:   version,
			Banner:    "(vsFTPd " + version + ")",
			Features:  standardFeatures(false),
			HelpLines: standardHelp,
			Reply331:  "Please specify the password.",
			Category:  CategoryGeneric,
			Quirks:    Quirks{ValidatePORT: true, ListStyle: vfs.StyleUnix},
		}
	}
	add(vsftpd(KeyVsftpd302, "3.0.2"))
	add(vsftpd(KeyVsftpd235, "2.3.5"))
	add(vsftpd(KeyVsftpd232, "2.3.2"))

	add(&Personality{
		Key:       KeyWuFTPd262,
		Software:  "wu-ftpd",
		Version:   "2.6.2",
		Banner:    "%HOST% FTP server (Version wu-2.6.2-5) ready.",
		HelpLines: standardHelp,
		Reply331:  "Guest login ok, send your complete e-mail address as password.",
		Category:  CategoryGeneric,
		Quirks:    Quirks{ValidatePORT: true, ListStyle: vfs.StyleUnix},
	})

	filezilla := func(key, version string, validatePORT bool) *Personality {
		return &Personality{
			Key:      key,
			Software: "FileZilla Server",
			Version:  version,
			Banner: "-FileZilla Server version " + version + " beta\n" +
				"-written by Tim Kosse (Tim.Kosse@gmx.de)\n" +
				"Please visit http://sourceforge.net/projects/filezilla/",
			Syst:      "UNIX emulated by FileZilla",
			Features:  withMLST(standardFeatures(true)),
			HelpLines: standardHelp,
			Reply331:  "Password required for %USER%",
			Category:  CategoryGeneric,
			Quirks: Quirks{
				// FileZilla failed to validate PORT in every release
				// from Jan 2003 to May 2015 (§VII.B).
				ValidatePORT: validatePORT,
				SupportsFTPS: true,
				ListStyle:    vfs.StyleUnix,
			},
		}
	}
	add(filezilla(KeyFileZilla0941, "0.9.41", false))
	add(filezilla(KeyFileZilla0953, "0.9.53", true))

	servu := func(key, version string) *Personality {
		return &Personality{
			Key:       key,
			Software:  "Serv-U",
			Version:   version,
			Banner:    "Serv-U FTP Server v" + version + " ready...",
			Syst:      "UNIX Type: L8",
			Features:  standardFeatures(true),
			HelpLines: standardHelp,
			Reply331:  "User name okay, need password.",
			Category:  CategoryGeneric,
			Quirks:    Quirks{ValidatePORT: true, SupportsFTPS: true, ListStyle: vfs.StyleUnix},
		}
	}
	add(servu(KeyServU64, "6.4"))
	add(servu(KeyServU15, "15.1"))

	add(&Personality{
		Key:       KeyIIS75,
		Software:  "Microsoft FTP Service",
		Version:   "7.5",
		Banner:    "Microsoft FTP Service",
		Syst:      "Windows_NT",
		Features:  []string{"SIZE", "MDTM", "UTF8"},
		HelpLines: standardHelp,
		Reply331:  "Password required for %USER%.",
		Category:  CategoryGeneric,
		Quirks: Quirks{
			ValidatePORT:    true,
			CaseInsensitive: true,
			ListStyle:       vfs.StyleDOS,
		},
	})

	add(&Personality{
		Key:       KeyGenericUnix,
		Software:  "",
		Version:   "",
		Banner:    "FTP server ready.",
		HelpLines: standardHelp,
		Reply331:  "Password required for %USER%.",
		Category:  CategoryGeneric,
		Quirks:    Quirks{ValidatePORT: true, ListStyle: vfs.StyleUnix},
	})

	// Ramnit victims expose the botnet's characteristic double-220 banner
	// and never allow anonymous logins (§VI.C).
	add(&Personality{
		Key:      KeyRamnit,
		Software: "RMNetwork",
		Banner:   "220 RMNetwork FTP",
		Reply331: "Password required for %USER%.",
		Category: CategoryGeneric,
		Quirks:   Quirks{ValidatePORT: false, ListStyle: vfs.StyleUnix},
	})

	// --- Shared-hosting providers -----------------------------------------

	add(&Personality{
		Key:       KeyHostedHomePL,
		Software:  "ProFTPD",
		Version:   "1.3.4a",
		Banner:    "home.pl FTP server ready [%HOST%]",
		Features:  standardFeatures(true),
		HelpLines: standardHelp,
		Reply331:  "Password required for %USER%",
		Category:  CategoryHosted,
		Quirks: Quirks{
			// 71.5% of all PORT-validation failures sit in AS12824
			// home.pl: its default stack does not validate (§VII.B).
			ValidatePORT: false,
			SupportsFTPS: true,
			ListStyle:    vfs.StyleUnix,
		},
	})
	add(&Personality{
		Key:      KeyHostedCPanel,
		Software: "Pure-FTPd",
		Version:  "1.0.36",
		Banner: "---------- Welcome to Pure-FTPd [privsep] [TLS] ----------\n" +
			"You are user number 2 of 500 allowed.\n" +
			"Local time is now 14:02. Server port: 21.",
		Features:  withMLST(standardFeatures(true)),
		HelpLines: standardHelp,
		Reply331:  "User %USER% OK. Password required",
		Category:  CategoryHosted,
		Quirks: Quirks{
			ValidatePORT:            true,
			SupportsFTPS:            true,
			UploadRenameSuffix:      true,
			AnonUploadNeedsApproval: true,
			ListStyle:               vfs.StyleUnix,
		},
	})
	add(&Personality{
		Key:       KeyHostedPlesk,
		Software:  "ProFTPD",
		Version:   "1.3.5",
		Banner:    "ProFTPD 1.3.5 Server (Plesk FTP server) [%IP%]",
		Features:  standardFeatures(true),
		HelpLines: standardHelp,
		Reply331:  "Password required for %USER%",
		Category:  CategoryHosted,
		Quirks: Quirks{
			ValidatePORT: true,
			SupportsFTPS: true,
			BannerHasIP:  true,
			ListStyle:    vfs.StyleUnix,
		},
	})

	// --- Consumer embedded devices (Table VII) ----------------------------

	add(&Personality{
		Key:         KeyQNAPNAS,
		Software:    "ProFTPD",
		Version:     "1.3.1e",
		Banner:      "NASFTPD Turbo station 1.3.1e Server (ProFTPD) [%IP%]",
		Features:    standardFeatures(true),
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceNAS,
		DeviceModel: "QNAP Turbo NAS",
		Quirks: Quirks{
			ValidatePORT:        true,
			SupportsFTPS:        true,
			BannerHasIP:         true,
			PASVLeaksInternalIP: true,
			ListStyle:           vfs.StyleUnix,
		},
	})
	add(&Personality{
		Key:         KeyASUSRouter,
		Software:    "vsFTPd",
		Version:     "2.0.7",
		Banner:      "Welcome to ASUS RT-AC66U FTP service.",
		Features:    standardFeatures(false),
		HelpLines:   standardHelp,
		Reply331:    "Please specify the password.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceHomeRouter,
		DeviceModel: "ASUS wireless routers",
		Quirks:      Quirks{ValidatePORT: true, ListStyle: vfs.StyleUnix},
	})
	add(&Personality{
		Key:         KeySynologyNAS,
		Software:    "",
		Version:     "",
		Banner:      "Synology DiskStation FTP server ready.",
		Features:    standardFeatures(true),
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceNAS,
		DeviceModel: "Synology NAS devices",
		Quirks: Quirks{
			ValidatePORT:        true,
			SupportsFTPS:        true,
			PASVLeaksInternalIP: true,
			ListStyle:           vfs.StyleUnix,
		},
	})
	add(&Personality{
		Key:         KeyBuffaloNAS,
		Software:    "",
		Version:     "",
		Banner:      "LinkStation FTP server ready.",
		Features:    standardFeatures(false),
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceNAS,
		DeviceModel: "Buffalo NAS storage",
		Quirks: Quirks{
			ValidatePORT:        false,
			PASVLeaksInternalIP: true,
			ListStyle:           vfs.StyleUnix,
		},
	})
	add(&Personality{
		Key:         KeyZyXELNAS,
		Software:    "",
		Version:     "",
		Banner:      "NSA-320 FTP server ready.",
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceNAS,
		DeviceModel: "ZyXEL/MitraStar NAS",
		Quirks:      Quirks{ValidatePORT: true, ListStyle: vfs.StyleUnix},
	})
	printer := func(key, model, banner string) *Personality {
		return &Personality{
			Key:         key,
			Banner:      banner,
			HelpLines:   standardHelp,
			Reply331:    "Password required for %USER%.",
			Category:    CategoryEmbedded,
			DeviceClass: DevicePrinter,
			DeviceModel: model,
			Quirks:      Quirks{ValidatePORT: true, ListStyle: vfs.StyleUnix},
		}
	}
	add(printer(KeyRicohPrinter, "RICOH Printers", "RICOH Aficio MP C3003 FTP server (RICOH-FTPD) ready."))
	add(printer(KeyLexmarkPrinter, "Lexmark Printers", "Lexmark MS410dn FTP Server ready."))
	add(printer(KeyXeroxPrinter, "Xerox Printers", "Xerox WorkCentre 7535 FTP server ready."))
	add(printer(KeyDellPrinter, "Dell Printers", "Dell Laser MFP 3115cn FTP server ready."))
	add(&Personality{
		Key:         KeyLaCieNAS,
		Banner:      "LaCie CloudBox FTP server ready.",
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceNAS,
		DeviceModel: "LaCie storage",
		Quirks:      Quirks{ValidatePORT: true, PASVLeaksInternalIP: true, ListStyle: vfs.StyleUnix},
	})
	add(&Personality{
		Key:         KeyLinksysRouter,
		Banner:      "Linksys EA6500 FTP server ready.",
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceHomeRouter,
		DeviceModel: "Linksys Wifi Routers",
		Quirks:      Quirks{ValidatePORT: true, ListStyle: vfs.StyleUnix},
	})
	add(&Personality{
		Key:         KeyLutron,
		Banner:      "Lutron HomeWorks Processor FTP server ready.",
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceAutomation,
		DeviceModel: "Lutron HomeWorks Processor",
		Quirks:      Quirks{ValidatePORT: true, ListStyle: vfs.StyleUnix},
	})
	add(&Personality{
		Key:         KeySeagate,
		Banner:      "Seagate Central Shared Storage FTP server ready.",
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceStorage,
		DeviceModel: "Seagate Storage devices",
		Quirks:      Quirks{ValidatePORT: true, SupportsFTPS: true, ListStyle: vfs.StyleUnix},
	})

	// --- Provider-deployed embedded devices (Table V) ----------------------

	providerDev := func(key, model, banner string, class DeviceClass) *Personality {
		return &Personality{
			Key:              key,
			Banner:           banner,
			HelpLines:        standardHelp,
			Reply331:         "Password required for %USER%.",
			Category:         CategoryEmbedded,
			DeviceClass:      class,
			DeviceModel:      model,
			ProviderDeployed: true,
			Quirks:           Quirks{ValidatePORT: true, ListStyle: vfs.StyleUnix},
		}
	}
	add(providerDev(KeyFritzBox, "FRITZ!Box DSL modem", "FRITZ!Box7490 FTP server ready.", DeviceDSLModem))
	add(providerDev(KeyZyXELDSL, "ZyXEL DSL Modem", "P-660HN-F1 FTP version 1.0 ready at %HOST%", DeviceDSLModem))
	add(providerDev(KeyAXISCamera, "AXIS Physical Security Device", "AXIS 221 Network Camera 4.45 (2015) ready.", DeviceCamera))
	add(providerDev(KeyZTEWiMax, "ZTE WiMax Router", "ZTE WiMax FTP service ready.", DeviceWiMaxRouter))
	add(providerDev(KeySpeedport, "Speedport DSL Modem", "Speedport W 724V FTP server ready.", DeviceDSLModem))
	add(providerDev(KeyDreambox, "Dreambox Set-top Box", "Dreambox DM800 FTP server ready.", DeviceSetTopBox))
	add(providerDev(KeyZyXELUSG, "ZyXEL Unified Security Gateway", "ZyXEL USG-100 FTP server ready.", DeviceSecurityGateway))
	add(providerDev(KeyAlcatel, "Alcatel Router", "Alcatel-Lucent FTP server ready.", DeviceHomeRouter))
	add(providerDev(KeyDrayTek, "DrayTek Network Devices", "DrayTek Vigor FTP server ready.", DeviceHomeRouter))

	// --- FTPS-cert-sharing device families (Table XIII) --------------------

	add(&Personality{
		Key:         KeySymonMedia,
		Banner:      "Symon Media Player FTP ready.",
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceMediaPlayer,
		DeviceModel: "Symon Media Player",
		Quirks:      Quirks{ValidatePORT: true, SupportsFTPS: true, ListStyle: vfs.StyleUnix},
	})
	add(&Personality{
		Key:         KeyAxentra,
		Banner:      "Axentra HipServ FTP server ready.",
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceNAS,
		DeviceModel: "Axentra HipServ",
		Quirks:      Quirks{ValidatePORT: true, SupportsFTPS: true, ListStyle: vfs.StyleUnix},
	})
	add(&Personality{
		Key:         KeyLGENAS,
		Banner:      "LG Electronics NAS FTP server ready.",
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceNAS,
		DeviceModel: "LGE NAS",
		Quirks:      Quirks{ValidatePORT: true, SupportsFTPS: true, ListStyle: vfs.StyleUnix},
	})
	add(&Personality{
		Key:         KeyAsusTorNAS,
		Banner:      "Welcome to AsusTor FTP service.",
		HelpLines:   standardHelp,
		Reply331:    "Password required for %USER%.",
		Category:    CategoryEmbedded,
		DeviceClass: DeviceNAS,
		DeviceModel: "AsusTor NAS",
		Quirks:      Quirks{ValidatePORT: true, SupportsFTPS: true, ListStyle: vfs.StyleUnix},
	})

	return list
}
