package personality

import (
	"strings"
	"testing"

	"ftpcloud/internal/vfs"
)

func TestRegistryLoads(t *testing.T) {
	all := All()
	if len(all) < 35 {
		t.Fatalf("registry has %d profiles, want at least 35", len(all))
	}
	seen := make(map[string]bool)
	for _, p := range all {
		if p.Key == "" {
			t.Error("profile with empty key")
		}
		if seen[p.Key] {
			t.Errorf("duplicate key %q", p.Key)
		}
		seen[p.Key] = true
		if p.Banner == "" {
			t.Errorf("%s: empty banner", p.Key)
		}
		if p.Category < CategoryGeneric || p.Category > CategoryEmbedded {
			t.Errorf("%s: bad category %d", p.Key, p.Category)
		}
		if p.Quirks.ListStyle != vfs.StyleUnix && p.Quirks.ListStyle != vfs.StyleDOS {
			t.Errorf("%s: no list style", p.Key)
		}
		if p.Syst == "" {
			t.Errorf("%s: no SYST text", p.Key)
		}
	}
}

func TestByKey(t *testing.T) {
	p := ByKey(KeyProFTPD135)
	if p == nil || p.Software != "ProFTPD" || p.Version != "1.3.5" {
		t.Fatalf("ByKey(proftpd-1.3.5) = %+v", p)
	}
	if ByKey("no-such-key") != nil {
		t.Error("phantom key resolved")
	}
	if len(Keys()) != len(All()) {
		t.Error("Keys/All length mismatch")
	}
}

func TestExpandBanner(t *testing.T) {
	p := ByKey(KeyProFTPD135)
	b := p.ExpandBanner("192.0.2.7", "example.net")
	if !strings.Contains(b, "192.0.2.7") {
		t.Errorf("banner %q missing IP", b)
	}
	w := ByKey(KeyWuFTPd262)
	b = w.ExpandBanner("192.0.2.7", "files.example.net")
	if !strings.Contains(b, "files.example.net") {
		t.Errorf("banner %q missing host", b)
	}
}

func TestExpand331(t *testing.T) {
	p := ByKey(KeyPureFTPd1036)
	if got := p.Expand331("anonymous"); !strings.Contains(got, "anonymous") {
		t.Errorf("331 = %q", got)
	}
	empty := &Personality{}
	if got := empty.Expand331("bob"); !strings.Contains(got, "bob") {
		t.Errorf("default 331 = %q", got)
	}
}

func TestPaperDevicesPresent(t *testing.T) {
	// Every device model in the paper's Tables V and VII must exist.
	wantModels := []string{
		"QNAP Turbo NAS", "ASUS wireless routers", "Synology NAS devices",
		"Buffalo NAS storage", "ZyXEL/MitraStar NAS", "RICOH Printers",
		"LaCie storage", "Lexmark Printers", "Xerox Printers", "Dell Printers",
		"Linksys Wifi Routers", "Lutron HomeWorks Processor", "Seagate Storage devices",
		"FRITZ!Box DSL modem", "ZyXEL DSL Modem", "AXIS Physical Security Device",
		"ZTE WiMax Router", "Speedport DSL Modem", "Dreambox Set-top Box",
		"ZyXEL Unified Security Gateway", "Alcatel Router", "DrayTek Network Devices",
	}
	have := make(map[string]bool)
	for _, p := range All() {
		if p.DeviceModel != "" {
			have[p.DeviceModel] = true
		}
	}
	for _, m := range wantModels {
		if !have[m] {
			t.Errorf("missing device model %q", m)
		}
	}
}

func TestVulnerableSoftwarePresent(t *testing.T) {
	// The CVE table needs these software/version combinations to exist.
	want := map[string]string{
		KeyProFTPD135:   "ProFTPD",
		KeyVsftpd302:    "vsFTPd",
		KeyPureFTPd1029: "Pure-FTPd",
		KeyServU64:      "Serv-U",
	}
	for key, software := range want {
		p := ByKey(key)
		if p == nil || p.Software != software || p.Version == "" {
			t.Errorf("profile %s missing or wrong: %+v", key, p)
		}
	}
}

func TestQuirkAssignments(t *testing.T) {
	if ByKey(KeyHostedHomePL).Quirks.ValidatePORT {
		t.Error("home.pl must not validate PORT (paper §VII.B)")
	}
	if ByKey(KeyFileZilla0941).Quirks.ValidatePORT {
		t.Error("old FileZilla must not validate PORT")
	}
	if !ByKey(KeyFileZilla0953).Quirks.ValidatePORT {
		t.Error("new FileZilla must validate PORT")
	}
	if !ByKey(KeyPureFTPd1036).Quirks.AnonUploadNeedsApproval {
		t.Error("Pure-FTPd must gate anonymous uploads")
	}
	if !ByKey(KeyIIS75).Quirks.CaseInsensitive || ByKey(KeyIIS75).Quirks.ListStyle != vfs.StyleDOS {
		t.Error("IIS must be case-insensitive with DOS listings")
	}
	if !ByKey(KeyQNAPNAS).Quirks.PASVLeaksInternalIP {
		t.Error("QNAP NAS should leak internal IPs in PASV")
	}
}

func TestRamnitBanner(t *testing.T) {
	p := ByKey(KeyRamnit)
	// The full wire banner is "220 220 RMNetwork FTP": the banner text
	// itself begins with a literal "220".
	if !strings.HasPrefix(p.Banner, "220 RMNetwork") {
		t.Errorf("ramnit banner = %q", p.Banner)
	}
}

func TestCategoryAndDeviceClassStrings(t *testing.T) {
	if CategoryGeneric.String() != "Generic Server" ||
		CategoryHosted.String() != "Hosted Server" ||
		CategoryEmbedded.String() != "Embedded Server" ||
		Category(0).String() != "Unknown" {
		t.Error("category names wrong")
	}
	if DeviceNAS.String() != "NAS" || DevicePrinter.String() != "Printer" ||
		DeviceNone.String() != "None" {
		t.Error("device class names wrong")
	}
}

func TestProviderDeployedFlag(t *testing.T) {
	for _, key := range []string{KeyFritzBox, KeySpeedport, KeyAXISCamera} {
		if !ByKey(key).ProviderDeployed {
			t.Errorf("%s should be provider-deployed", key)
		}
	}
	for _, key := range []string{KeyQNAPNAS, KeyBuffaloNAS, KeyASUSRouter} {
		if ByKey(key).ProviderDeployed {
			t.Errorf("%s should not be provider-deployed", key)
		}
	}
}
