// Package personality defines behavioural profiles for the FTP server
// implementations and embedded devices the paper observes in the wild. A
// Personality captures everything that distinguishes one implementation on
// the wire: banner, version string, SYST/FEAT/HELP output, reply-text
// variants, listing dialect, and protocol quirks (PORT validation bugs,
// upload-rename behaviour, NAT-leaking PASV replies, FTPS support).
//
// The ftpserver engine consumes a Personality to impersonate the
// implementation; the fingerprint package independently re-identifies hosts
// from wire observations, exactly as the paper's classifiers do.
package personality

import (
	"fmt"
	"strings"
	"sync"

	"ftpcloud/internal/vfs"
)

// Category is the ground-truth server class (Table II in the paper).
// Fingerprinting may fail to recover it, which is what produces the paper's
// "Unknown" bucket.
type Category int

// Server categories.
const (
	CategoryGeneric Category = iota + 1
	CategoryHosted
	CategoryEmbedded
)

// String names the category as the paper's tables do.
func (c Category) String() string {
	switch c {
	case CategoryGeneric:
		return "Generic Server"
	case CategoryHosted:
		return "Hosted Server"
	case CategoryEmbedded:
		return "Embedded Server"
	default:
		return "Unknown"
	}
}

// DeviceClass refines embedded devices (Tables V, VII, X).
type DeviceClass int

// Embedded device classes.
const (
	DeviceNone DeviceClass = iota
	DeviceNAS
	DeviceHomeRouter
	DevicePrinter
	DeviceDSLModem
	DeviceCamera
	DeviceSetTopBox
	DeviceSecurityGateway
	DeviceWiMaxRouter
	DeviceMediaPlayer
	DeviceAutomation
	DeviceStorage
)

// String names the device class.
func (d DeviceClass) String() string {
	switch d {
	case DeviceNAS:
		return "NAS"
	case DeviceHomeRouter:
		return "Home Router"
	case DevicePrinter:
		return "Printer"
	case DeviceDSLModem:
		return "DSL Modem"
	case DeviceCamera:
		return "Camera"
	case DeviceSetTopBox:
		return "Set-top Box"
	case DeviceSecurityGateway:
		return "Security Gateway"
	case DeviceWiMaxRouter:
		return "WiMax Router"
	case DeviceMediaPlayer:
		return "Media Player"
	case DeviceAutomation:
		return "Home Automation"
	case DeviceStorage:
		return "Storage"
	default:
		return "None"
	}
}

// Quirks are the behavioural deviations the enumerator must survive and the
// vulnerabilities the paper measures.
type Quirks struct {
	// ValidatePORT, when false, lets PORT commands target third-party
	// addresses — the classic FTP bounce vulnerability (§VII.B).
	ValidatePORT bool
	// PASVLeaksInternalIP makes PASV replies advertise the device's
	// RFC 1918 address instead of its public one — the paper's NAT
	// detection signal.
	PASVLeaksInternalIP bool
	// UploadRenameSuffix appends ".1", ".2", … instead of overwriting
	// existing files on STOR.
	UploadRenameSuffix bool
	// AnonUploadNeedsApproval refuses RETR of anonymously uploaded files
	// with Pure-FTPd's "not yet approved" message — the paper's primary
	// world-writability evidence.
	AnonUploadNeedsApproval bool
	// CaseInsensitive models Windows path semantics.
	CaseInsensitive bool
	// ListStyle selects the directory-listing dialect.
	ListStyle vfs.ListStyle
	// SupportsFTPS enables AUTH TLS.
	SupportsFTPS bool
	// BannerHasIP embeds the host's own address in the banner.
	BannerHasIP bool
	// EPSVOnly rejects classic PASV, forcing clients through RFC 2428
	// extended passive mode (a behaviour some modern stacks exhibit).
	EPSVOnly bool
}

// Personality is one implementation or device profile.
type Personality struct {
	// Key uniquely identifies the profile, e.g. "proftpd-1.3.5".
	Key string
	// Software is the implementation family ("ProFTPD", "vsFTPd", …) as
	// the cvedb matches it; empty when the banner reveals none.
	Software string
	// Version is the advertised version string, when any.
	Version string
	// Banner is the 220 greeting; the placeholders %IP% and %HOST% are
	// substituted per host. Multi-line banners use \n separators.
	Banner string
	// Syst is the SYST reply text.
	Syst string
	// Features are the FEAT body lines; empty means FEAT unsupported.
	Features []string
	// HelpLines are the HELP body lines.
	HelpLines []string
	// SiteHelp is the SITE HELP body; empty means SITE unsupported.
	SiteHelp []string
	// Reply331 is the text of the 331 reply to USER; %USER% expands to
	// the login name. The paper notes this reply alone has at least four
	// incompatible meanings across implementations.
	Reply331 string

	Category    Category
	DeviceClass DeviceClass
	// DeviceModel matches the paper's device-table naming, e.g.
	// "QNAP Turbo NAS"; empty for plain software.
	DeviceModel string
	// ProviderDeployed marks ISP-installed gear (Table V) as opposed to
	// consumer-purchased devices (Table VII).
	ProviderDeployed bool

	Quirks Quirks
}

// ExpandBanner substitutes per-host placeholders into the banner template.
func (p *Personality) ExpandBanner(ip, host string) string {
	b := strings.ReplaceAll(p.Banner, "%IP%", ip)
	return strings.ReplaceAll(b, "%HOST%", host)
}

// Expand331 substitutes the login name into the 331 reply text.
func (p *Personality) Expand331(user string) string {
	if p.Reply331 == "" {
		return "Password required for " + user + "."
	}
	return strings.ReplaceAll(p.Reply331, "%USER%", user)
}

var (
	registryInit sync.Once
	registryList []*Personality
	registryKey  map[string]*Personality
)

// loadRegistry builds and indexes the profile list on first use.
func loadRegistry() {
	registryInit.Do(func() {
		list := buildRegistry()
		byKey := make(map[string]*Personality, len(list))
		for _, p := range list {
			if p.Key == "" {
				panic("personality: empty key")
			}
			if _, dup := byKey[p.Key]; dup {
				panic(fmt.Sprintf("personality: duplicate key %q", p.Key))
			}
			if p.Quirks.ListStyle == 0 {
				p.Quirks.ListStyle = vfs.StyleUnix
			}
			if p.Syst == "" {
				p.Syst = "UNIX Type: L8"
			}
			byKey[p.Key] = p
		}
		registryList = list
		registryKey = byKey
	})
}

// All returns every registered personality in registration order. The
// returned slice is shared; callers must not mutate it.
func All() []*Personality {
	loadRegistry()
	return registryList
}

// ByKey finds a personality by key, or nil.
func ByKey(key string) *Personality {
	loadRegistry()
	return registryKey[key]
}

// Keys returns all registered keys in order.
func Keys() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Key
	}
	return out
}
