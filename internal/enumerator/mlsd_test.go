package enumerator

import (
	"context"
	"testing"

	"ftpcloud/internal/dataset"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/vfs"
)

// TestMLSDTraversal verifies the enumerator prefers machine-readable
// listings when FEAT advertises MLST, and that permissions arrive via the
// UNIX.mode fact.
func TestMLSDTraversal(t *testing.T) {
	// ProFTPD 1.3.5 advertises MLST in this registry.
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             richFS(),
		AllowAnonymous: true,
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.AnonymousOK {
		t.Fatal("login failed")
	}
	hasMLST := false
	for _, f := range rec.Feat {
		if len(f) >= 4 && f[:4] == "MLST" {
			hasMLST = true
		}
	}
	if !hasMLST {
		t.Fatal("FEAT does not advertise MLST; test premise broken")
	}
	paths := map[string]dataset.FileEntry{}
	for _, f := range rec.Files {
		paths[f.Path] = f
	}
	if e, ok := paths["/pub/secret.key"]; !ok || e.Read != dataset.ReadNo {
		t.Errorf("secret.key via MLSD: %+v", e)
	}
	if e, ok := paths["/pub/index.html"]; !ok || e.Read != dataset.ReadYes {
		t.Errorf("index.html via MLSD: %+v", e)
	}
	if e, ok := paths["/pub/photos/DSC_0001.jpg"]; !ok || e.Size != 2_000_000 {
		t.Errorf("deep file via MLSD: %+v", e)
	}
}

// TestAnonUploadConfirmation exercises the §VI.A RETR-refusal probe against
// a Pure-FTPd-style server holding an anonymously uploaded probe file.
func TestAnonUploadConfirmation(t *testing.T) {
	root := vfs.NewDir("/", vfs.Perm777)
	fs := vfs.New(root)
	// Seed an anonymously uploaded reference-set file, attributed the
	// way the server would attribute it.
	if _, err := fs.PutUpload("/w0000000t.txt", []byte("Anonymous"), vfs.Perm644, true, "ftp", true); err != nil {
		t.Fatal(err)
	}
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyPureFTPd1029), // approval-gated, no opt-out banner
		FS:             fs,
		AllowAnonymous: true,
		AnonWritable:   true,
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.AnonymousOK {
		t.Fatalf("login failed: %+v", rec)
	}
	if len(rec.WriteEvidence) == 0 {
		t.Fatal("probe file not recorded as write evidence")
	}
	if !rec.AnonUploadConfirmed {
		t.Error("RETR refusal did not confirm anonymous upload")
	}
}

// TestAnonUploadNotConfirmedOnPlainServer: a server without the approval
// gate serves the file normally, so confirmation must stay false.
func TestAnonUploadNotConfirmedOnPlainServer(t *testing.T) {
	root := vfs.NewDir("/", vfs.Perm777)
	root.Add(vfs.NewFileContent("sjutd.txt", vfs.Perm644, []byte("test")))
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             vfs.New(root),
		AllowAnonymous: true,
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if len(rec.WriteEvidence) == 0 {
		t.Fatal("evidence missing")
	}
	if rec.AnonUploadConfirmed {
		t.Error("plain server wrongly confirmed anonymous upload")
	}
}
