package enumerator

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

var (
	srvIP = simnet.MustParseIP("5.6.7.8")
	cliIP = simnet.MustParseIP("99.0.0.1")
)

func richFS() *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm755)
	pub := root.Add(vfs.NewDir("pub", vfs.Perm755))
	pub.Add(vfs.NewFile("index.html", vfs.Perm644, 494))
	pub.Add(vfs.NewFile("secret.key", vfs.Perm600, 100))
	photos := pub.Add(vfs.NewDir("photos", vfs.Perm755))
	photos.Add(vfs.NewFile("DSC_0001.jpg", vfs.Perm644, 2_000_000))
	inc := root.Add(vfs.NewDir("incoming", vfs.Perm777))
	inc.Add(vfs.NewFileContent("w0000000t.txt", vfs.Perm644, []byte("Anonymous")))
	priv := root.Add(vfs.NewDir("private", vfs.Perm755))
	priv.Add(vfs.NewFile("hidden.doc", vfs.Perm644, 1))
	return vfs.New(root)
}

// buildNet wires one server config at srvIP into a fresh network.
func buildNet(t *testing.T, cfg ftpserver.Config) *simnet.Network {
	t.Helper()
	if cfg.PublicIP == 0 {
		cfg.PublicIP = srvIP
	}
	srv, err := ftpserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(srvIP, 21, srv.SimHandler())
	return simnet.NewNetwork(provider)
}

func enumConfig(nw *simnet.Network) Config {
	return Config{
		Dialer:  simnet.Dialer{Net: nw, Src: cliIP},
		Timeout: 5 * time.Second,
		TryTLS:  true,
	}
}

func TestEnumerateAnonymousHost(t *testing.T) {
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             richFS(),
		HostName:       "h1.example.net",
		AllowAnonymous: true,
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if rec.Error != "" {
		t.Fatalf("error: %s", rec.Error)
	}
	if !rec.FTP || !rec.AnonymousOK {
		t.Fatalf("record: %+v", rec)
	}
	paths := make(map[string]dataset.FileEntry)
	for _, f := range rec.Files {
		paths[f.Path] = f
	}
	for _, want := range []string{
		"/pub", "/pub/index.html", "/pub/secret.key", "/pub/photos",
		"/pub/photos/DSC_0001.jpg", "/incoming", "/incoming/w0000000t.txt",
		"/private/hidden.doc",
	} {
		if _, ok := paths[want]; !ok {
			t.Errorf("missing %s in listing (have %d files)", want, len(rec.Files))
		}
	}
	if e := paths["/pub/secret.key"]; e.Read != dataset.ReadNo {
		t.Errorf("secret.key read = %v, want no", e.Read)
	}
	if e := paths["/pub/index.html"]; e.Read != dataset.ReadYes {
		t.Errorf("index.html read = %v, want yes", e.Read)
	}
	if len(rec.WriteEvidence) != 1 || rec.WriteEvidence[0] != "w0000000t.txt" {
		t.Errorf("write evidence: %v", rec.WriteEvidence)
	}
	if rec.Syst == "" || len(rec.Feat) == 0 || rec.Help == "" {
		t.Errorf("meta missing: syst=%q feat=%v help=%q", rec.Syst, rec.Feat, rec.Help)
	}
	if rec.PASVIP != srvIP.String() || rec.PASVMismatch {
		t.Errorf("PASV: %s mismatch=%v", rec.PASVIP, rec.PASVMismatch)
	}
}

func TestEnumerateAnonymousDenied(t *testing.T) {
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyVsftpd302),
		FS:             richFS(),
		AllowAnonymous: false,
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.FTP || rec.AnonymousOK {
		t.Fatalf("record: %+v", rec)
	}
	if len(rec.Files) != 0 {
		t.Errorf("denied host produced listings: %d", len(rec.Files))
	}
	// Meta collection still happens pre-login.
	if rec.Syst == "" {
		t.Error("SYST not collected from denied host")
	}
}

func TestBannerOptOutHonored(t *testing.T) {
	// Pure-FTPd's private-system banner announces no anonymous access;
	// the enumerator must not even try.
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyPureFTPd1036),
		FS:             richFS(),
		AllowAnonymous: true, // even though the server would accept it
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.BannerOptOut {
		t.Fatalf("opt-out banner not detected: %q", rec.Banner)
	}
	if rec.AnonymousOK || len(rec.Files) > 0 {
		t.Error("enumerator ignored the banner opt-out")
	}
}

func TestRobotsExcludeAllStopsTraversal(t *testing.T) {
	fs := richFS()
	fs.Put("/robots.txt", []byte("User-agent: *\nDisallow: /\n"), vfs.Perm644, true)
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             fs,
		AllowAnonymous: true,
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.RobotsExcludeAll {
		t.Fatalf("exclude-all robots not detected: %q", rec.RobotsTxt)
	}
	if len(rec.Files) != 0 {
		t.Errorf("traversal happened despite robots exclusion: %d files", len(rec.Files))
	}
}

func TestRobotsPartialPrunes(t *testing.T) {
	fs := richFS()
	fs.Put("/robots.txt", []byte("User-agent: *\nDisallow: /private\n"), vfs.Perm644, true)
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             fs,
		AllowAnonymous: true,
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	for _, f := range rec.Files {
		if f.Path == "/private/hidden.doc" {
			t.Error("crawled into robots-disallowed directory")
		}
	}
	found := false
	for _, f := range rec.Files {
		if f.Path == "/pub/index.html" {
			found = true
		}
	}
	if !found {
		t.Error("allowed portion not crawled")
	}
}

func TestRequestCapTruncates(t *testing.T) {
	// Build a wide tree: 60 directories needs >20 requests.
	root := vfs.NewDir("/", vfs.Perm755)
	for i := 0; i < 60; i++ {
		d := root.Add(vfs.NewDir(fmt.Sprintf("dir%02d", i), vfs.Perm755))
		d.Add(vfs.NewFile("f.txt", vfs.Perm644, 1))
	}
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             vfs.New(root),
		AllowAnonymous: true,
	})
	cfg := enumConfig(nw)
	cfg.RequestCap = 20
	rec := Enumerate(context.Background(), cfg, srvIP.String())
	if !rec.ListingTruncated {
		t.Error("cap not reported as truncation")
	}
	if rec.RequestsUsed > 20 {
		t.Errorf("used %d requests, cap 20", rec.RequestsUsed)
	}
}

func TestServerRequestLimitRecordedAsTermination(t *testing.T) {
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             richFS(),
		AllowAnonymous: true,
		RequestLimit:   8,
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.ConnTerminated {
		t.Errorf("server 421 not recorded as termination: %+v", rec)
	}
}

func TestNATDetection(t *testing.T) {
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyQNAPNAS),
		FS:             richFS(),
		AllowAnonymous: true,
		InternalIP:     simnet.MustParseIP("192.168.1.77"),
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if rec.PASVIP != "192.168.1.77" || !rec.PASVMismatch {
		t.Fatalf("NAT leak not detected: pasv=%s mismatch=%v", rec.PASVIP, rec.PASVMismatch)
	}
	// Despite the mismatch, traversal succeeds via control-IP fallback.
	if len(rec.Files) == 0 {
		t.Error("no files despite smart-client fallback")
	}
	if rec.BannerIP != "192.168.1.77" || !rec.BannerIPPrivate {
		t.Errorf("banner IP: %s private=%v", rec.BannerIP, rec.BannerIPPrivate)
	}
}

func TestPortValidationProbe(t *testing.T) {
	for _, tt := range []struct {
		name string
		pers string
		want dataset.PortValidation
	}{
		{"validating server", personality.KeyProFTPD135, dataset.PortValidated},
		{"vulnerable server", personality.KeyHostedHomePL, dataset.PortNotValidated},
	} {
		t.Run(tt.name, func(t *testing.T) {
			nw := buildNet(t, ftpserver.Config{
				Pers:           personality.ByKey(tt.pers),
				FS:             richFS(),
				AllowAnonymous: true,
			})
			collector, err := NewSimCollector(nw, simnet.MustParseIP("99.0.0.250"), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer collector.Close()
			cfg := enumConfig(nw)
			cfg.Collector = collector
			rec := Enumerate(context.Background(), cfg, srvIP.String())
			if rec.PortCheck != tt.want {
				t.Errorf("PortCheck = %v, want %v", rec.PortCheck, tt.want)
			}
		})
	}
}

func TestFTPSCertCollection(t *testing.T) {
	pool, err := certs.GeneratePool(11, []certs.Spec{
		{Name: "c", CommonName: "*.home.pl", SelfSigned: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             richFS(),
		AllowAnonymous: true,
		Cert:           pool.Get("c"),
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.FTPSSupported() || rec.FTPSCert() == nil {
		t.Fatalf("FTPS not collected: %+v", rec.FTPS)
	}
	cert := rec.FTPSCert()
	if cert.CommonName != "*.home.pl" {
		t.Errorf("CN = %q", cert.CommonName)
	}
	if cert.SelfSigned {
		t.Error("CA-signed cert reported self-signed")
	}
	if len(cert.FingerprintSHA256) != 64 {
		t.Errorf("fingerprint: %q", cert.FingerprintSHA256)
	}
}

func TestRequireTLSLogin(t *testing.T) {
	pool, err := certs.GeneratePool(12, []certs.Spec{
		{Name: "c", CommonName: "secure.example.org", SelfSigned: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             richFS(),
		AllowAnonymous: true,
		Cert:           pool.Get("c"),
		RequireTLS:     true,
	})
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if rec.FTPS == nil || !rec.FTPS.RequiredPreLogin {
		t.Fatalf("TLS requirement not detected: %+v", rec)
	}
	if !rec.AnonymousOK {
		t.Fatal("login after TLS upgrade failed")
	}
	if rec.FTPSCert() == nil || rec.FTPSCert().CommonName != "secure.example.org" {
		t.Errorf("cert: %+v", rec.FTPSCert())
	}
	if len(rec.Files) == 0 {
		t.Error("no traversal after TLS login")
	}
}

func TestEnumerateGarbageBanner(t *testing.T) {
	provider := simnet.NewStaticProvider()
	provider.Add(srvIP, 21, simnet.HandlerFunc(garbageHandler))
	nw := simnet.NewNetwork(provider)
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if rec.FTP {
		t.Errorf("garbage banner classified as FTP: %+v", rec)
	}
	if !rec.PortOpen {
		t.Error("open port not recorded")
	}
}

func TestEnumerateRefusedHost(t *testing.T) {
	nw := simnet.NewNetwork(nil)
	rec := Enumerate(context.Background(), enumConfig(nw), "4.4.4.4")
	if rec.PortOpen || rec.FTP || rec.Error == "" {
		t.Errorf("refused host record: %+v", rec)
	}
}

func TestFleetEnumeratesStream(t *testing.T) {
	provider := simnet.NewStaticProvider()
	n := 20
	for i := 0; i < n; i++ {
		ip := simnet.IP(uint32(srvIP) + uint32(i))
		srv, err := ftpserver.New(ftpserver.Config{
			Pers:           personality.ByKey(personality.KeyProFTPD135),
			FS:             richFS(),
			PublicIP:       ip,
			AllowAnonymous: i%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		provider.Add(ip, 21, srv.SimHandler())
	}
	nw := simnet.NewNetwork(provider)

	in := make(chan simnet.IP, n)
	for i := 0; i < n; i++ {
		in <- simnet.IP(uint32(srvIP) + uint32(i))
	}
	close(in)
	out := make(chan *dataset.HostRecord, n)
	fleet := &Fleet{
		Cfg:        Config{Timeout: 5 * time.Second},
		Network:    nw,
		SourceBase: simnet.MustParseIP("99.1.0.0"),
		Workers:    8,
	}
	fleet.Run(context.Background(), in, out)

	var anon, total int
	for rec := range out {
		total++
		if rec.AnonymousOK {
			anon++
		}
	}
	if total != n {
		t.Fatalf("fleet produced %d records, want %d", total, n)
	}
	if anon != n/2 {
		t.Errorf("anonymous = %d, want %d", anon, n/2)
	}
}

func garbageHandler(_ *simnet.Network, conn net.Conn) {
	conn.Write([]byte("SSH-2.0-OpenSSH_5.3\r\n"))
	conn.Close()
}
