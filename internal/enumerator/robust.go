package enumerator

import (
	"errors"
	"hash/fnv"
	"io"
	"net"
	"strings"
	"time"

	"ftpcloud/internal/ftp"
)

// Failure classes recorded in HostRecord.FailureClass. They partition every
// way a hostile or broken server can end an enumeration, so census-level
// robustness counters can attribute degradation instead of lumping it all
// under "error".
const (
	FailConnect     = "connect"      // dial failed after retries
	FailTimeout     = "timeout"      // a per-command deadline expired
	FailReset       = "reset"        // connection reset mid-session
	FailEOF         = "eof"          // premature EOF mid-reply
	FailProtocol    = "protocol"     // oversized/malformed protocol data
	FailStall       = "stall"        // stalled data channel
	FailBudgetTime  = "budget-time"  // per-host time budget exhausted
	FailBudgetBytes = "budget-bytes" // per-host byte budget exhausted
	FailIO          = "io"           // other transport error
)

// RetryPolicy bounds transport-level retries with jittered exponential
// backoff. Retries apply to connection establishment and the banner read —
// the operations a transient fault can defeat without invalidating session
// state. Mid-session command failures are never retried blindly: replaying a
// command after an ambiguous failure risks double-counting against the
// request cap and confusing stateful servers.
type RetryPolicy struct {
	// Attempts is the total number of tries (1 = no retry). Zero means
	// the default of 2.
	Attempts int
	// BaseDelay seeds the exponential backoff (default 50ms); attempt i
	// waits BaseDelay << i, half of it jittered.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts == 0 {
		p.Attempts = 2
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the sleep before retry attempt (1-based). The jitter is
// deterministic per (target, attempt) — half fixed, half hashed — so census
// runs reproduce while fleets still decorrelate their retry storms.
func (p RetryPolicy) backoff(target string, attempt int) time.Duration {
	d := p.BaseDelay << uint(attempt-1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	h := fnv.New64a()
	io.WriteString(h, target)
	x := h.Sum64() ^ uint64(attempt)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x ^= x >> 31
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + x%half)
}

// Budget-exhaustion sentinels surfaced by readData.
var (
	errBudgetTime  = errors.New("enumerator: host time budget exhausted")
	errBudgetBytes = errors.New("enumerator: host byte budget exhausted")
)

// classifyErr maps a transport or protocol error onto a failure class. It is
// transport-agnostic: simnet's injected resets and the kernel's ECONNRESET
// both contain "connection reset", net.Error.Timeout() covers real and
// simulated deadlines, and ftp.ErrProtocol covers hostile framing.
func classifyErr(err error) string {
	if err == nil {
		return ""
	}
	var ne net.Error
	switch {
	case errors.Is(err, errBudgetTime):
		return FailBudgetTime
	case errors.Is(err, errBudgetBytes):
		return FailBudgetBytes
	case errors.As(err, &ne) && ne.Timeout():
		return FailTimeout
	case errors.Is(err, ftp.ErrProtocol):
		return FailProtocol
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return FailEOF
	case strings.Contains(err.Error(), "connection reset"):
		return FailReset
	default:
		return FailIO
	}
}

// budget tracks the per-host time and byte ceilings that mirror the paper's
// ≤500-request cap: a hostile server must not be able to hold a worker
// indefinitely or feed it unbounded data.
type budget struct {
	deadline time.Time // zero = unlimited
	maxBytes int64     // 0 = unlimited
	bytes    int64
}

// timeLeft returns the remaining time budget; ok=false when exhausted.
func (b *budget) timeLeft() (time.Duration, bool) {
	if b.deadline.IsZero() {
		return 0, true
	}
	left := time.Until(b.deadline)
	return left, left > 0
}

// addBytes accounts data-channel bytes; ok=false when the byte budget is
// newly exhausted.
func (b *budget) addBytes(n int64) bool {
	b.bytes += n
	return b.maxBytes == 0 || b.bytes <= b.maxBytes
}

// markDegraded records a degradation on the record: Partial is set and the
// first observed failure class is kept (later, secondary failures usually
// cascade from the first).
func (s *session) markDegraded(class string) {
	s.rec.Partial = true
	if s.rec.FailureClass == "" {
		s.rec.FailureClass = class
	}
}
