package enumerator

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// The chaos suite proves the tentpole property: every hostile-server fault
// class yields a terminating enumeration and a classified, partial record —
// never a hang and never a silently dropped host.

// portFaults injects one profile into every connection matching the port
// predicate (control = port 21, data = everything else).
type portFaults struct {
	match func(port uint16) bool
	prof  simnet.FaultProfile
}

func (f portFaults) FaultFor(_, _ simnet.IP, port uint16) *simnet.FaultProfile {
	if !f.match(port) {
		return nil
	}
	p := f.prof
	return &p
}

func controlPort(p uint16) bool { return p == 21 }
func dataPort(p uint16) bool    { return p != 21 }

// wideFS builds a tree broad enough that traversal spans many requests and
// many data connections.
func wideFS(dirs int) *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm755)
	for i := 0; i < dirs; i++ {
		d := root.Add(vfs.NewDir(fmt.Sprintf("dir%02d", i), vfs.Perm755))
		d.Add(vfs.NewFile("file.txt", vfs.Perm644, 128))
	}
	return vfs.New(root)
}

func chaosNet(t *testing.T, fs *vfs.FS) *simnet.Network {
	t.Helper()
	return buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             fs,
		AllowAnonymous: true,
	})
}

func TestChaosSlowDripBannerTimesOut(t *testing.T) {
	nw := chaosNet(t, richFS())
	nw.Faults = portFaults{match: controlPort, prof: simnet.FaultProfile{
		DripBytes: 1, DripDelay: 300 * time.Millisecond,
	}}
	cfg := enumConfig(nw)
	cfg.Timeout = 100 * time.Millisecond
	cfg.HostBudget = -1 // isolate the per-command deadline

	rec := Enumerate(context.Background(), cfg, srvIP.String())
	if rec.FTP {
		t.Error("drip-starved banner classified as FTP")
	}
	if rec.FailureClass != FailTimeout {
		t.Errorf("FailureClass = %q, want %q", rec.FailureClass, FailTimeout)
	}
	if rec.Retries == 0 {
		t.Error("transient banner timeout was not retried")
	}
	if !strings.HasPrefix(rec.Error, "banner:") {
		t.Errorf("Error = %q", rec.Error)
	}
}

func TestChaosMidSessionResetYieldsPartialRecord(t *testing.T) {
	nw := chaosNet(t, wideFS(30))
	// Enough control bytes to survive banner, login, and metadata, then
	// die mid-BFS.
	nw.Faults = portFaults{match: controlPort, prof: simnet.FaultProfile{
		ResetAfterBytes: 2500,
	}}
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.FTP || !rec.AnonymousOK {
		t.Fatalf("session died before traversal; raise ResetAfterBytes: %+v", rec)
	}
	if !rec.Partial {
		t.Error("reset mid-BFS not flagged Partial")
	}
	if rec.FailureClass != FailReset {
		t.Errorf("FailureClass = %q, want %q", rec.FailureClass, FailReset)
	}
	if !rec.ConnTerminated {
		t.Error("dead control connection not recorded as terminated")
	}
	// The satellite guarantee: data gathered before the fault survives.
	if len(rec.Files) == 0 {
		t.Error("partial traversal results were dropped")
	}
}

func TestChaosStalledDataChannelSkipsSubtreeNotHost(t *testing.T) {
	nw := chaosNet(t, wideFS(8))
	nw.Faults = portFaults{match: dataPort, prof: simnet.FaultProfile{
		StallAfterBytes: 16,
	}}
	cfg := enumConfig(nw)
	cfg.DataIdleTimeout = 100 * time.Millisecond

	start := time.Now()
	rec := Enumerate(context.Background(), cfg, srvIP.String())
	if !rec.AnonymousOK {
		t.Fatalf("record: %+v", rec)
	}
	if !rec.Partial || rec.FailureClass != FailStall {
		t.Errorf("stall not classified: partial=%v class=%q", rec.Partial, rec.FailureClass)
	}
	if rec.SkippedDirs == 0 {
		t.Error("stalled listings did not record skipped directories")
	}
	if rec.ConnTerminated {
		t.Error("stalled data channel killed the host, not just the subtree")
	}
	// Every data connection stalls after 16 bytes; the idle deadline must
	// bound each one, so the whole host resolves in seconds, not minutes.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("stalled host took %v to resolve", elapsed)
	}
}

func TestChaosPrematureEOFOnControl(t *testing.T) {
	nw := chaosNet(t, richFS())
	nw.Faults = portFaults{match: controlPort, prof: simnet.FaultProfile{
		CloseAfterBytes: 600,
	}}
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.FTP {
		t.Fatalf("EOF fired before the banner; raise CloseAfterBytes: %+v", rec)
	}
	if !rec.Partial || rec.FailureClass != FailEOF {
		t.Errorf("premature EOF not classified: partial=%v class=%q", rec.Partial, rec.FailureClass)
	}
	if !rec.ConnTerminated {
		t.Error("EOF'd control connection not recorded as terminated")
	}
}

// garbageSpewServer greets politely, then answers every command with one
// endless unterminated line.
func garbageSpewServer(_ *simnet.Network, conn net.Conn) {
	defer conn.Close()
	c := make([]byte, 0, 4096)
	c = append(c, []byte("220 welcome\r\n")...)
	if _, err := conn.Write(c); err != nil {
		return
	}
	buf := make([]byte, 512)
	if _, err := conn.Read(buf); err != nil {
		return
	}
	junk := []byte(strings.Repeat("#", 4096))
	for i := 0; i < 64; i++ {
		if _, err := conn.Write(junk); err != nil {
			return
		}
	}
}

func TestChaosGarbageReplyClassifiedProtocol(t *testing.T) {
	provider := simnet.NewStaticProvider()
	provider.Add(srvIP, 21, simnet.HandlerFunc(garbageSpewServer))
	nw := simnet.NewNetwork(provider)

	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.FTP {
		t.Fatalf("banner rejected: %+v", rec)
	}
	if !rec.Partial || rec.FailureClass != FailProtocol {
		t.Errorf("garbage reply not classified: partial=%v class=%q", rec.Partial, rec.FailureClass)
	}
}

// flakyDialer fails the first N dials with a transient error, then delegates.
type flakyDialer struct {
	inner Dialer
	fails int
}

func (d *flakyDialer) Dial(network, address string) (net.Conn, error) {
	if d.fails > 0 {
		d.fails--
		return nil, errors.New("simnet: connection timed out")
	}
	return d.inner.Dial(network, address)
}

func TestChaosConnectRetryRecovers(t *testing.T) {
	nw := chaosNet(t, richFS())
	cfg := enumConfig(nw)
	cfg.Dialer = &flakyDialer{inner: simnet.Dialer{Net: nw, Src: cliIP}, fails: 1}
	cfg.Retry = RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond}

	rec := Enumerate(context.Background(), cfg, srvIP.String())
	if !rec.FTP || !rec.AnonymousOK {
		t.Fatalf("retry did not recover: %+v", rec)
	}
	if rec.Retries != 1 {
		t.Errorf("Retries = %d, want 1", rec.Retries)
	}
}

func TestChaosConnectFailureAfterRetriesClassified(t *testing.T) {
	nw := chaosNet(t, richFS())
	cfg := enumConfig(nw)
	cfg.Dialer = &flakyDialer{inner: simnet.Dialer{Net: nw, Src: cliIP}, fails: 99}
	cfg.Retry = RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond}

	rec := Enumerate(context.Background(), cfg, srvIP.String())
	if rec.PortOpen || rec.FTP {
		t.Errorf("unreachable host recorded as open: %+v", rec)
	}
	if rec.FailureClass != FailConnect {
		t.Errorf("FailureClass = %q, want %q", rec.FailureClass, FailConnect)
	}
	if rec.Retries != 2 {
		t.Errorf("Retries = %d, want 2", rec.Retries)
	}
}

func TestChaosRefusedConnectionNotRetried(t *testing.T) {
	nw := simnet.NewNetwork(nil) // nothing listens anywhere
	cfg := enumConfig(nw)
	cfg.Retry = RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond}

	rec := Enumerate(context.Background(), cfg, "4.4.4.4")
	if rec.PortOpen {
		t.Errorf("refused host recorded as open: %+v", rec)
	}
	if rec.Retries != 0 {
		t.Errorf("definitive refusal was retried %d times", rec.Retries)
	}
	if rec.FailureClass != FailConnect {
		t.Errorf("FailureClass = %q, want %q", rec.FailureClass, FailConnect)
	}
}

func TestChaosHostTimeBudget(t *testing.T) {
	nw := chaosNet(t, wideFS(60))
	cfg := enumConfig(nw)
	cfg.RequestDelay = 5 * time.Millisecond
	cfg.HostBudget = 150 * time.Millisecond

	start := time.Now()
	rec := Enumerate(context.Background(), cfg, srvIP.String())
	if !rec.Partial || rec.FailureClass != FailBudgetTime {
		t.Errorf("budget exhaustion not classified: partial=%v class=%q",
			rec.Partial, rec.FailureClass)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("budgeted host took %v", elapsed)
	}
	if !rec.AnonymousOK || len(rec.Files) == 0 {
		t.Errorf("budget cut the host before any work: %+v", rec)
	}
}

func TestChaosHostByteBudget(t *testing.T) {
	nw := chaosNet(t, wideFS(60))
	cfg := enumConfig(nw)
	cfg.ByteBudget = 1024

	rec := Enumerate(context.Background(), cfg, srvIP.String())
	if !rec.Partial || rec.FailureClass != FailBudgetBytes {
		t.Errorf("byte budget not classified: partial=%v class=%q",
			rec.Partial, rec.FailureClass)
	}
	if rec.DataBytes == 0 {
		t.Error("DataBytes not accounted")
	}
	// The budget bounds data volume to within one read chunk.
	if rec.DataBytes > 1024+16<<10 {
		t.Errorf("read %d data bytes against a 1 KiB budget", rec.DataBytes)
	}
}

func TestChaosCleanHostStaysUnflagged(t *testing.T) {
	// Control: with no faults injected, the robustness layer must not
	// invent degradation.
	nw := chaosNet(t, richFS())
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if rec.Partial || rec.FailureClass != "" || rec.SkippedDirs != 0 || rec.Retries != 0 {
		t.Errorf("clean host flagged degraded: %+v", rec)
	}
	if !rec.AnonymousOK || len(rec.Files) == 0 {
		t.Fatalf("clean enumeration broken: %+v", rec)
	}
}

func TestChaosConnectLatencyWithinTimeout(t *testing.T) {
	nw := chaosNet(t, richFS())
	nw.Faults = portFaults{match: controlPort, prof: simnet.FaultProfile{
		ConnectLatency: 50 * time.Millisecond,
	}}
	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.AnonymousOK || rec.Partial {
		t.Errorf("slow-to-accept host mishandled: %+v", rec)
	}
}
