package enumerator

import (
	"context"
	"sync"
	"time"

	"ftpcloud/internal/dataset"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
)

// Fleet runs enumerations concurrently over a stream of discovered hosts —
// the paper spreads load "across a large number of widely dispersed hosts";
// here the dispersal is worker goroutines with distinct source addresses.
type Fleet struct {
	// Cfg is the per-host enumeration configuration. Its Dialer is
	// ignored; each worker gets its own source-bound dialer.
	Cfg Config
	// Network is the simulated Internet.
	Network *simnet.Network
	// SourceBase is the first scanner source address; worker i binds
	// SourceBase+i.
	SourceBase simnet.IP
	// Workers is the concurrency; 0 means 32.
	Workers int
	// Metrics, when non-nil, registers fleet-level throughput metrics
	// (enum.hosts, enum.inflight, enum.host_seconds) and passes the
	// registry down to each enumeration for per-command latencies.
	Metrics *obs.Registry
}

// deliverGrace bounds how long a worker waits to hand over a finished
// record after cancellation before giving up on the consumer.
const deliverGrace = 5 * time.Second

// Run enumerates every IP from in, sending records to out in completion
// order. It closes out when done.
//
// Cancellation is graceful with respect to finished work: a record whose
// enumeration completed is still delivered after ctx is cancelled — losing
// it would turn a deadline expiry into data loss. Consumers must therefore
// keep draining out until it closes (the census drain does); a consumer
// that stops reading entirely only delays shutdown by a bounded grace
// period per in-flight worker.
func (f *Fleet) Run(ctx context.Context, in <-chan simnet.IP, out chan<- *dataset.HostRecord) {
	defer close(out)
	workers := f.Workers
	if workers <= 0 {
		workers = 32
	}
	hosts := f.Metrics.Counter("enum.hosts")
	inflight := f.Metrics.Gauge("enum.inflight")
	hostDur := f.Metrics.Histogram("enum.host_seconds", obs.WideBuckets...)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(src simnet.IP) {
			defer wg.Done()
			cfg := f.Cfg
			cfg.Dialer = simnet.Dialer{Net: f.Network, Src: src}
			cfg.Metrics = f.Metrics
			for {
				select {
				case <-ctx.Done():
					return
				case ip, ok := <-in:
					if !ok {
						return
					}
					inflight.Inc()
					start := time.Now()
					rec := Enumerate(ctx, cfg, ip.String())
					hostDur.Since(start)
					inflight.Dec()
					hosts.Inc()
					select {
					case out <- rec:
					case <-ctx.Done():
						// The work is done; give the consumer a
						// bounded window to take the record before
						// dropping it.
						t := time.NewTimer(deliverGrace)
						select {
						case out <- rec:
							t.Stop()
						case <-t.C:
						}
						return
					}
				}
			}
		}(simnet.IP(uint64(f.SourceBase) + uint64(i)))
	}
	wg.Wait()
}

// SimCollector is the third-party endpoint used by the PORT-validation
// probe: a listener on the simulated network recording which server
// addresses connected to it.
type SimCollector struct {
	listener *simnet.Listener
	addr     ftp.HostPort

	mu   sync.Mutex
	cond *sync.Cond
	seen map[string]bool
	done bool
}

// NewSimCollector binds a collector at ip:port on the network and starts
// accepting.
func NewSimCollector(nw *simnet.Network, ip simnet.IP, port uint16) (*SimCollector, error) {
	l, err := nw.Listen(ip, port)
	if err != nil {
		return nil, err
	}
	bound := l.Addr().(simnet.Addr)
	c := &SimCollector{
		listener: l,
		addr:     ftp.HostPort{IP: ip.Octets(), Port: bound.Port},
		seen:     make(map[string]bool),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.acceptLoop()
	return c, nil
}

func (c *SimCollector) acceptLoop() {
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			c.mu.Lock()
			c.done = true
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		remote := conn.RemoteAddr().(simnet.Addr)
		c.mu.Lock()
		c.seen[remote.IP.String()] = true
		c.cond.Broadcast()
		c.mu.Unlock()
		// Drain politely then drop: the bounced payload is irrelevant,
		// only the connection's existence matters.
		go func() {
			buf := make([]byte, 4096)
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			for {
				if _, err := conn.Read(buf); err != nil {
					break
				}
			}
			conn.Close()
		}()
	}
}

// Addr implements Collector.
func (c *SimCollector) Addr() ftp.HostPort { return c.addr }

// Saw implements Collector: it waits up to the window for serverIP to
// connect.
func (c *SimCollector) Saw(serverIP string, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	timer := time.AfterFunc(wait, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()

	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.seen[serverIP] {
			return true
		}
		if c.done || !time.Now().Before(deadline) {
			return false
		}
		c.cond.Wait()
	}
}

// Close stops the collector.
func (c *SimCollector) Close() error { return c.listener.Close() }
