// Package enumerator implements the paper's core contribution: a robust FTP
// enumerator that, for each discovered host, attempts an RFC 1635 anonymous
// login, honors robots.txt, traverses the directory structure breadth-first
// under a request cap and rate limit, collects HELP/FEAT/SITE output,
// performs the PORT-validation probe, and grabs the FTPS certificate via
// AUTH TLS before disconnecting.
//
// Ethics machinery from the paper is implemented and enforced: banner
// opt-outs stop login attempts, robots.txt exclusions prune traversal, a
// per-connection request cap bounds load, server-initiated disconnects are
// treated as refusal of service, and files are never bulk-downloaded — only
// robots.txt is ever retrieved.
package enumerator

import (
	"context"
	"crypto/sha256"
	"crypto/tls"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"regexp"
	"strings"
	"time"

	"ftpcloud/internal/campaigns"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/listparse"
	"ftpcloud/internal/robots"
	"ftpcloud/internal/vfs"
)

// UserAgent identifies the crawler to robots.txt.
const UserAgent = "ftp-enumerator"

// AnonPassword is the password sent for anonymous logins, per RFC 1635 an
// abuse-contact address.
const AnonPassword = "ftp-census@research.example.edu"

// Dialer abstracts connection establishment so the enumerator runs over the
// simulation and over real TCP unchanged.
type Dialer interface {
	Dial(network, address string) (net.Conn, error)
}

// Collector verifies PORT-bounce connections: the enumerator directs the
// server's data channel at the collector and asks whether the connection
// arrived.
type Collector interface {
	// Addr is the collector endpoint to place in PORT arguments.
	Addr() ftp.HostPort
	// Saw reports whether serverIP connected within the wait window.
	Saw(serverIP string, wait time.Duration) bool
}

// Config controls enumeration.
type Config struct {
	Dialer Dialer
	// Collector enables the PORT-validation probe when non-nil.
	Collector Collector
	// RequestCap bounds protocol requests per connection (paper: 500).
	RequestCap int
	// RequestDelay spaces consecutive requests (paper: 2/s; zero in
	// simulation runs).
	RequestDelay time.Duration
	// Timeout bounds individual control-channel operations.
	Timeout time.Duration
	// MaxListBytes bounds a single LIST body read.
	MaxListBytes int64
	// TryTLS collects the FTPS certificate before disconnecting.
	TryTLS bool
	// Port is the control-channel port; 0 means 21. Non-standard ports
	// matter for testbeds (and for Ramnit-style rogue servers).
	Port uint16
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.RequestCap == 0 {
		c.RequestCap = 500
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxListBytes == 0 {
		c.MaxListBytes = 4 << 20
	}
	if c.Port == 0 {
		c.Port = 21
	}
	return c
}

// bannerOptOutMarkers are banner phrases that declare anonymous access
// unavailable; per the paper's ethics, seeing one stops the login attempt.
var bannerOptOutMarkers = []string{
	"no anonymous login",
	"no anonymous access",
	"anonymous access denied",
	"private system",
}

var bannerIPPattern = regexp.MustCompile(`\b(\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})\b`)

// session carries one enumeration's state.
type session struct {
	cfg    Config
	conn   *ftp.Conn
	rec    *dataset.HostRecord
	target string // control IP
	used   int    // requests consumed
}

// Enumerate performs the full follow-up protocol against one discovered
// host. It always returns a record — partial data plus an Error field on
// failure.
func Enumerate(ctx context.Context, cfg Config, targetIP string) *dataset.HostRecord {
	cfg = cfg.withDefaults()
	rec := &dataset.HostRecord{
		IP:        targetIP,
		ScannedAt: time.Now().UTC(),
		PortOpen:  true,
		PortCheck: dataset.PortNotTested,
	}

	nc, err := cfg.Dialer.Dial("tcp", net.JoinHostPort(targetIP, fmt.Sprintf("%d", cfg.Port)))
	if err != nil {
		rec.PortOpen = false
		rec.Error = fmt.Sprintf("connect: %v", err)
		return rec
	}
	defer nc.Close()

	c := ftp.NewConn(nc)
	c.Timeout = cfg.Timeout
	s := &session{cfg: cfg, conn: c, rec: rec, target: targetIP}

	banner, err := c.ReadReply()
	if err != nil || banner.Code != ftp.CodeReady {
		rec.Error = "no FTP banner"
		return rec
	}
	rec.FTP = true
	rec.Banner = banner.Text()
	if m := bannerIPPattern.FindString(rec.Banner); m != "" {
		rec.BannerIP = m
		rec.BannerIPPrivate = isPrivateIP(m)
	}

	lower := strings.ToLower(rec.Banner)
	for _, marker := range bannerOptOutMarkers {
		if strings.Contains(lower, marker) {
			rec.BannerOptOut = true
			break
		}
	}

	if !rec.BannerOptOut {
		s.login(ctx)
	}

	// FEAT is collected before traversal so the crawler can prefer
	// RFC 3659 MLSD listings (explicit permission facts) when offered.
	s.collectMeta()
	if rec.AnonymousOK {
		s.fetchRobots(ctx)
		s.traverse(ctx)
		s.confirmAnonUploads()
		s.probePortValidation()
	}

	if cfg.TryTLS {
		s.tryTLS()
	}
	s.cmd("QUIT", "")
	return rec
}

// isPrivateIP reports RFC 1918 membership for a dotted quad.
func isPrivateIP(sIP string) bool {
	ip := net.ParseIP(sIP)
	if ip == nil {
		return false
	}
	return ip.IsPrivate()
}

// cmd issues one request, accounting against the cap and honoring the rate
// limit. A nil error with ok=false means the cap is exhausted.
func (s *session) cmd(name, arg string) (ftp.Reply, bool) {
	if s.used >= s.cfg.RequestCap {
		s.rec.ListingTruncated = true
		return ftp.Reply{}, false
	}
	if s.cfg.RequestDelay > 0 && s.used > 0 {
		time.Sleep(s.cfg.RequestDelay)
	}
	s.used++
	s.rec.RequestsUsed = s.used
	r, err := s.conn.Cmd(name, arg)
	if err != nil {
		// Server-initiated termination is an explicit refusal of
		// service; record and stop.
		s.rec.ConnTerminated = true
		return ftp.Reply{}, false
	}
	if r.Code == ftp.CodeServiceNotAvail {
		s.rec.ConnTerminated = true
		return r, false
	}
	return r, true
}

// login attempts the RFC 1635 anonymous login, upgrading to TLS first when
// the server demands it.
func (s *session) login(ctx context.Context) {
	r, ok := s.cmd("USER", "anonymous")
	if !ok {
		return
	}
	s.rec.LoginReply = r.Text()
	if r.Code == ftp.CodeNotLoggedIn && strings.Contains(strings.ToUpper(r.Text()), "TLS") {
		// "FTPS required prior to login" — one of the four meanings the
		// paper attributes to login replies.
		s.rec.EnsureFTPS().RequiredPreLogin = true
		if !s.upgradeTLS() {
			return
		}
		r, ok = s.cmd("USER", "anonymous")
		if !ok {
			return
		}
		s.rec.LoginReply = r.Text()
	}
	if r.Code != ftp.CodeNeedPassword && r.Code != ftp.CodeLoggedIn {
		return
	}
	if r.Code == ftp.CodeNeedPassword {
		r, ok = s.cmd("PASS", AnonPassword)
		if !ok {
			return
		}
	}
	if r.Code == ftp.CodeLoggedIn {
		s.rec.AnonymousOK = true
	}
	_ = ctx
}

// upgradeTLS performs AUTH TLS and records the certificate.
func (s *session) upgradeTLS() bool {
	r, ok := s.cmd("AUTH", "TLS")
	if !ok || r.Code != ftp.CodeAuthOK {
		return false
	}
	tc := tls.Client(s.conn.NetConn(), &tls.Config{
		// The enumerator collects certificates; it never trusts them.
		InsecureSkipVerify: true,
	})
	tc.SetDeadline(time.Now().Add(s.cfg.Timeout))
	if err := tc.Handshake(); err != nil {
		s.rec.ConnTerminated = true
		return false
	}
	tc.SetDeadline(time.Time{})
	s.recordTLSState(tc)
	s.conn.Upgrade(tc)
	return true
}

// recordTLSState captures the peer certificate.
func (s *session) recordTLSState(tc *tls.Conn) {
	ftps := s.rec.EnsureFTPS()
	ftps.Supported = true
	peer := tc.ConnectionState().PeerCertificates
	if len(peer) == 0 {
		return
	}
	leaf := peer[0]
	fp := fingerprintHex(leaf.Raw)
	ftps.Cert = &dataset.CertInfo{
		FingerprintSHA256: fp,
		CommonName:        leaf.Subject.CommonName,
		SelfSigned:        leaf.Issuer.CommonName == leaf.Subject.CommonName,
	}
}

// tryTLS attempts AUTH TLS at the end of the session (the paper collects
// certificates from every host, anonymous or not).
func (s *session) tryTLS() {
	if s.rec.FTPSCert() != nil {
		return // already collected during a required-TLS login
	}
	s.upgradeTLS()
}

// openDataConn negotiates a passive data channel (PASV, falling back to
// RFC 2428 EPSV) and dials it, recording NAT evidence from the advertised
// address. When the advertised IP differs from the control IP, the
// enumerator falls back to the control IP — the smart-client recovery real
// crawlers need behind NATs.
func (s *session) openDataConn() (net.Conn, bool) {
	var port uint16
	r, ok := s.cmd("PASV", "")
	if !ok {
		return nil, false
	}
	switch {
	case r.Code == ftp.CodePassive:
		hp, err := ftp.ParsePASVReply(r.Text())
		if err != nil {
			return nil, false
		}
		if s.rec.PASVIP == "" {
			s.rec.PASVIP = hp.IPString()
			s.rec.PASVMismatch = hp.IPString() != s.target
		}
		if hp.IPString() == s.target {
			return s.dialData(hp.Addr())
		}
		port = hp.Port
	default:
		// Some implementations support only extended passive mode.
		r, ok = s.cmd("EPSV", "")
		if !ok || r.Code != ftp.CodeExtendedPassive {
			return nil, false
		}
		p, err := ftp.ParseEPSVReply(r.Text())
		if err != nil {
			return nil, false
		}
		port = p
	}
	return s.dialData(net.JoinHostPort(s.target, fmt.Sprintf("%d", port)))
}

// dialData opens the data connection with a deadline.
func (s *session) dialData(addr string) (net.Conn, bool) {
	dc, err := s.cfg.Dialer.Dial("tcp", addr)
	if err != nil {
		return nil, false
	}
	dc.SetDeadline(time.Now().Add(s.cfg.Timeout))
	return dc, true
}

// retrieve downloads one small file over a data connection (used only for
// robots.txt).
func (s *session) retrieve(path string) (string, bool) {
	dc, ok := s.openDataConn()
	if !ok {
		return "", false
	}
	defer dc.Close()
	r, ok := s.cmd("RETR", path)
	if !ok || !r.Preliminary() {
		return "", false
	}
	body, err := io.ReadAll(io.LimitReader(dc, 64<<10))
	dc.Close()
	if err != nil {
		return "", false
	}
	// Drain the completion reply; tolerate unusual codes — the body is
	// what matters.
	if _, err := s.conn.ReadReply(); err != nil {
		s.rec.ConnTerminated = true
	}
	return string(body), true
}

// fetchRobots retrieves and parses robots.txt per the Robots Exclusion
// Standard.
func (s *session) fetchRobots(ctx context.Context) {
	_ = ctx
	body, ok := s.retrieve("robots.txt")
	if !ok || body == "" {
		return
	}
	s.rec.RobotsTxt = body
	rules := robots.Parse(body)
	if rules.ExcludesAll(UserAgent) {
		s.rec.RobotsExcludeAll = true
	}
}

// featHasMLST reports whether the collected FEAT body advertises RFC 3659
// machine-readable listings.
func (s *session) featHasMLST() bool {
	for _, f := range s.rec.Feat {
		if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(f)), "MLST") {
			return true
		}
	}
	return false
}

// list retrieves one directory listing using the given verb (LIST or MLSD).
func (s *session) list(verb, dir string) (string, bool) {
	dc, ok := s.openDataConn()
	if !ok {
		return "", false
	}
	defer dc.Close()
	r, ok := s.cmd(verb, dir)
	if !ok {
		return "", false
	}
	if !r.Preliminary() {
		return "", true // directory refused; connection still healthy
	}
	body, err := io.ReadAll(io.LimitReader(dc, s.cfg.MaxListBytes))
	dc.Close()
	if err != nil {
		return "", false
	}
	if reply, err := s.conn.ReadReply(); err != nil {
		s.rec.ConnTerminated = true
		return string(body), false
	} else if reply.Code != ftp.CodeTransferOK && !reply.Negative() {
		// Unexpected but non-fatal completion.
		_ = reply
	}
	return string(body), true
}

// traverse walks the accessible tree breadth-first, respecting robots rules
// and the request cap, and harvesting write evidence.
func (s *session) traverse(ctx context.Context) {
	var rules *robots.Rules
	if s.rec.RobotsTxt != "" {
		rules = robots.Parse(s.rec.RobotsTxt)
		if s.rec.RobotsExcludeAll {
			return
		}
	}

	// Prefer MLSD when advertised: its explicit permission facts remove
	// the "unk-readability" ambiguity of DOS-style listings.
	verb := "LIST"
	if s.featHasMLST() {
		verb = "MLSD"
	}

	type dirItem struct{ path string }
	queue := []dirItem{{path: "/"}}
	visited := map[string]bool{"/": true}
	evidence := map[string]bool{}
	refSet := campaigns.ReferenceSet()
	now := time.Now()

	for len(queue) > 0 {
		select {
		case <-ctx.Done():
			return
		default:
		}
		item := queue[0]
		queue = queue[1:]

		body, ok := s.list(verb, item.path)
		if body == "" && !ok {
			return
		}
		var entries []listparse.Entry
		if verb == "MLSD" {
			entries, _ = listparse.ParseMLSDListing(body)
			if len(entries) == 0 && body != "" {
				// Advertised but broken MLSD: fall back to LIST for
				// the remainder of the crawl.
				verb = "LIST"
				body, ok = s.list(verb, item.path)
				if body == "" && !ok {
					return
				}
				entries, _ = listparse.ParseListing(body, now)
			}
		} else {
			entries, _ = listparse.ParseListing(body, now)
		}
		for _, e := range entries {
			full := vfs.Join(item.path, e.Name)
			s.rec.Files = append(s.rec.Files, dataset.FileEntry{
				Path:    full,
				Name:    e.Name,
				IsDir:   e.IsDir,
				Size:    e.Size,
				Read:    toDatasetRead(e.Read),
				Write:   toDatasetRead(e.Write),
				Owner:   e.Owner,
				ModTime: e.ModTime,
			})
			if !e.IsDir && refSet[e.Name] && !evidence[e.Name] {
				evidence[e.Name] = true
				s.rec.WriteEvidence = append(s.rec.WriteEvidence, e.Name)
			}
			if e.IsDir && !visited[full] {
				if rules != nil && !rules.Allowed(UserAgent, full) {
					continue
				}
				visited[full] = true
				queue = append(queue, dirItem{path: full})
			}
		}
		if !ok {
			return
		}
	}
}

// confirmAnonUploads verifies write evidence the way the paper's §VI.A
// reference set was built: Pure-FTPd-style servers refuse RETR of
// anonymously uploaded files with a distinctive message ("has not yet been
// approved"). The probe sends RETR without a data connection, so no file
// content is ever transferred — only the refusal text is observed.
func (s *session) confirmAnonUploads() {
	if len(s.rec.WriteEvidence) == 0 {
		return
	}
	evidence := make(map[string]bool, len(s.rec.WriteEvidence))
	for _, name := range s.rec.WriteEvidence {
		evidence[name] = true
	}
	probes := 0
	for i := range s.rec.Files {
		f := &s.rec.Files[i]
		if f.IsDir || !evidence[f.Name] {
			continue
		}
		if probes >= 2 {
			return
		}
		probes++
		r, ok := s.cmd("RETR", f.Path)
		if !ok {
			return
		}
		if r.Negative() && strings.Contains(strings.ToLower(r.Text()), "uploaded by an anonymous user") {
			s.rec.AnonUploadConfirmed = true
			return
		}
	}
}

// collectMeta gathers HELP, FEAT, SITE, and SYST output.
func (s *session) collectMeta() {
	if r, ok := s.cmd("SYST", ""); ok && r.Positive() {
		s.rec.Syst = r.Text()
	}
	if r, ok := s.cmd("FEAT", ""); ok && r.Code == ftp.FeatureListCode {
		lines := r.Lines
		// Strip the "Features:"/"End" framing.
		if len(lines) >= 2 {
			lines = lines[1 : len(lines)-1]
		}
		s.rec.Feat = append([]string(nil), lines...)
	}
	if r, ok := s.cmd("HELP", ""); ok && r.Code == ftp.CodeHelp {
		s.rec.Help = r.Text()
	}
	if r, ok := s.cmd("SITE", "HELP"); ok && r.Code == ftp.CodeHelp {
		s.rec.Site = r.Text()
	}
}

// probePortValidation asks the server to open a data connection to the
// collector — a third-party address — and records whether it complied.
func (s *session) probePortValidation() {
	if s.cfg.Collector == nil {
		return
	}
	hp := s.cfg.Collector.Addr()
	r, ok := s.cmd("PORT", hp.Encode())
	if !ok {
		return
	}
	if r.Negative() {
		s.rec.PortCheck = dataset.PortValidated
		return
	}
	// The PORT was accepted; LIST triggers the outbound connection.
	if r, ok := s.cmd("LIST", "/"); ok && r.Preliminary() {
		// Drain the completion reply.
		if _, err := s.conn.ReadReply(); err != nil {
			s.rec.ConnTerminated = true
		}
	}
	if s.cfg.Collector.Saw(s.target, 2*time.Second) {
		s.rec.PortCheck = dataset.PortNotValidated
	} else {
		s.rec.PortCheck = dataset.PortValidated
	}
}

func toDatasetRead(r listparse.Readability) dataset.Readability {
	switch r {
	case listparse.ReadYes:
		return dataset.ReadYes
	case listparse.ReadNo:
		return dataset.ReadNo
	default:
		return dataset.ReadUnknown
	}
}

func fingerprintHex(der []byte) string {
	sum := sha256.Sum256(der)
	return hex.EncodeToString(sum[:])
}
