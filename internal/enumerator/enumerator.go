// Package enumerator implements the paper's core contribution: a robust FTP
// enumerator that, for each discovered host, attempts an RFC 1635 anonymous
// login, honors robots.txt, traverses the directory structure breadth-first
// under a request cap and rate limit, collects HELP/FEAT/SITE output,
// performs the PORT-validation probe, and grabs the FTPS certificate via
// AUTH TLS before disconnecting.
//
// Ethics machinery from the paper is implemented and enforced: banner
// opt-outs stop login attempts, robots.txt exclusions prune traversal, a
// per-connection request cap bounds load, server-initiated disconnects are
// treated as refusal of service, and files are never bulk-downloaded — only
// robots.txt is ever retrieved.
package enumerator

import (
	"context"
	"crypto/sha256"
	"crypto/tls"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"regexp"
	"strings"
	"time"

	"ftpcloud/internal/campaigns"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/listparse"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/robots"
	"ftpcloud/internal/vfs"
)

// UserAgent identifies the crawler to robots.txt.
const UserAgent = "ftp-enumerator"

// AnonPassword is the password sent for anonymous logins, per RFC 1635 an
// abuse-contact address.
const AnonPassword = "ftp-census@research.example.edu"

// Dialer abstracts connection establishment so the enumerator runs over the
// simulation and over real TCP unchanged.
type Dialer interface {
	Dial(network, address string) (net.Conn, error)
}

// Collector verifies PORT-bounce connections: the enumerator directs the
// server's data channel at the collector and asks whether the connection
// arrived.
type Collector interface {
	// Addr is the collector endpoint to place in PORT arguments.
	Addr() ftp.HostPort
	// Saw reports whether serverIP connected within the wait window.
	Saw(serverIP string, wait time.Duration) bool
}

// Config controls enumeration.
type Config struct {
	Dialer Dialer
	// Collector enables the PORT-validation probe when non-nil.
	Collector Collector
	// RequestCap bounds protocol requests per connection (paper: 500).
	RequestCap int
	// RequestDelay spaces consecutive requests (paper: 2/s; zero in
	// simulation runs).
	RequestDelay time.Duration
	// Timeout bounds individual control-channel operations.
	Timeout time.Duration
	// MaxListBytes bounds a single LIST body read.
	MaxListBytes int64
	// TryTLS collects the FTPS certificate before disconnecting.
	TryTLS bool
	// Port is the control-channel port; 0 means 21. Non-standard ports
	// matter for testbeds (and for Ramnit-style rogue servers).
	Port uint16
	// Retry bounds transport-level retries (control dial, banner read,
	// data dial) with jittered backoff.
	Retry RetryPolicy
	// DataIdleTimeout bounds the gap between consecutive data-channel
	// reads; the deadline rolls forward while bytes flow, so long
	// transfers survive but stalled peers do not. Zero means Timeout.
	DataIdleTimeout time.Duration
	// HostBudget caps wall-clock time spent on one host — the temporal
	// analogue of the paper's 500-request cap. Zero means 2 minutes;
	// negative disables.
	HostBudget time.Duration
	// ByteBudget caps total data-channel bytes read from one host. Zero
	// means 64 MiB; negative disables.
	ByteBudget int64
	// Metrics, when non-nil, receives per-interaction latency histograms
	// under enum.latency.* (dial, banner, list, retr, cmd) — the
	// LZR-style timing data service identification leans on.
	Metrics *obs.Registry
	// Now stamps each record's ScannedAt. Nil means time.Now. Injecting a
	// fixed clock makes ledgers reproducible byte-for-byte — which the
	// checkpoint/resume equivalence harness depends on. Budget deadlines
	// always use the real clock.
	Now func() time.Time
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.RequestCap == 0 {
		c.RequestCap = 500
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxListBytes == 0 {
		c.MaxListBytes = 4 << 20
	}
	if c.Port == 0 {
		c.Port = 21
	}
	c.Retry = c.Retry.withDefaults()
	if c.DataIdleTimeout == 0 {
		c.DataIdleTimeout = c.Timeout
	}
	switch {
	case c.HostBudget == 0:
		c.HostBudget = 2 * time.Minute
	case c.HostBudget < 0:
		c.HostBudget = 0
	}
	switch {
	case c.ByteBudget == 0:
		c.ByteBudget = 64 << 20
	case c.ByteBudget < 0:
		c.ByteBudget = 0
	}
	return c
}

// bannerOptOutMarkers are banner phrases that declare anonymous access
// unavailable; per the paper's ethics, seeing one stops the login attempt.
var bannerOptOutMarkers = []string{
	"no anonymous login",
	"no anonymous access",
	"anonymous access denied",
	"private system",
}

var bannerIPPattern = regexp.MustCompile(`\b(\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})\b`)

// latencies is one enumeration's histogram set, resolved from the registry
// once per host (never per operation).
type latencies struct {
	dial, banner, list, retr, cmd *obs.Histogram
}

// noLatencies absorbs observations when no registry is configured; sharing
// one standalone instance avoids per-host histogram allocation.
var noLatencies = newLatencies(nil)

func newLatencies(reg *obs.Registry) *latencies {
	return &latencies{
		dial:   reg.Histogram("enum.latency.dial"),
		banner: reg.Histogram("enum.latency.banner"),
		list:   reg.Histogram("enum.latency.list"),
		retr:   reg.Histogram("enum.latency.retr"),
		cmd:    reg.Histogram("enum.latency.cmd"),
	}
}

// forVerb routes a control command's round-trip time: the listing and
// RETR-probe verbs get their own histograms, everything else pools.
func (l *latencies) forVerb(verb string) *obs.Histogram {
	switch verb {
	case "LIST", "MLSD":
		return l.list
	case "RETR":
		return l.retr
	default:
		return l.cmd
	}
}

// session carries one enumeration's state.
type session struct {
	cfg     Config
	conn    *ftp.Conn
	rec     *dataset.HostRecord
	target  string // control IP
	used    int    // requests consumed
	bud     budget // per-host time/byte ceilings
	lat     *latencies
	closing bool // in the QUIT path; failures are no longer degradation
}

// Enumerate performs the full follow-up protocol against one discovered
// host. It always returns a record — partial data plus Error/FailureClass
// fields on failure. Hostile servers cannot make it hang (per-command and
// rolling data deadlines), hold it forever (host time budget), or feed it
// unbounded data (byte budget); transient transport faults are retried with
// jittered backoff.
func Enumerate(ctx context.Context, cfg Config, targetIP string) *dataset.HostRecord {
	cfg = cfg.withDefaults()
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	rec := &dataset.HostRecord{
		IP:        targetIP,
		ScannedAt: now().UTC(),
		PortOpen:  true,
		PortCheck: dataset.PortNotTested,
	}
	s := &session{cfg: cfg, rec: rec, target: targetIP, lat: noLatencies}
	if cfg.Metrics != nil {
		s.lat = newLatencies(cfg.Metrics)
	}
	if cfg.HostBudget > 0 {
		s.bud.deadline = time.Now().Add(cfg.HostBudget)
	}
	s.bud.maxBytes = cfg.ByteBudget

	banner, ok := s.connect()
	if !ok {
		return rec
	}
	defer s.conn.Close()
	rec.FTP = true
	rec.Banner = banner.Text()
	if m := bannerIPPattern.FindString(rec.Banner); m != "" {
		rec.BannerIP = m
		rec.BannerIPPrivate = isPrivateIP(m)
	}

	lower := strings.ToLower(rec.Banner)
	for _, marker := range bannerOptOutMarkers {
		if strings.Contains(lower, marker) {
			rec.BannerOptOut = true
			break
		}
	}

	if !rec.BannerOptOut {
		s.login(ctx)
	}

	// FEAT is collected before traversal so the crawler can prefer
	// RFC 3659 MLSD listings (explicit permission facts) when offered.
	s.collectMeta()
	if rec.AnonymousOK {
		s.fetchRobots(ctx)
		s.traverse(ctx)
		s.confirmAnonUploads()
		s.probePortValidation()
	}

	if cfg.TryTLS {
		s.tryTLS()
	}
	s.closing = true
	s.cmd("QUIT", "")
	return rec
}

// retryableDial reports whether a dial error is worth retrying: refusal is a
// definitive answer (nothing listens there), everything else — timeouts,
// resets, transient routing — may clear up. The check is by message so it
// covers simnet and kernel errors alike.
func retryableDial(err error) bool {
	return !strings.Contains(err.Error(), "connection refused")
}

// connect dials the control channel and reads the banner, spending the retry
// budget on transient failures. A garbage banner (protocol violation) or a
// well-formed non-220 greeting is an answer about the host, not a transient
// fault, and is never retried.
func (s *session) connect() (ftp.Reply, bool) {
	addr := net.JoinHostPort(s.target, fmt.Sprintf("%d", s.cfg.Port))
	pol := s.cfg.Retry

	var nc net.Conn
	var err error
	for attempt := 1; ; attempt++ {
		start := time.Now()
		nc, err = s.cfg.Dialer.Dial("tcp", addr)
		s.lat.dial.Since(start)
		if err == nil {
			break
		}
		if attempt >= pol.Attempts || !retryableDial(err) {
			s.rec.PortOpen = false
			s.rec.Error = fmt.Sprintf("connect: %v", err)
			s.rec.FailureClass = FailConnect
			return ftp.Reply{}, false
		}
		s.rec.Retries++
		time.Sleep(pol.backoff(s.target, attempt))
	}

	for attempt := 1; ; attempt++ {
		s.conn = ftp.NewConn(nc)
		s.conn.Timeout = s.opTimeout()
		start := time.Now()
		banner, rerr := s.conn.ReadReply()
		s.lat.banner.Since(start)
		if rerr == nil && banner.Code == ftp.CodeReady {
			return banner, true
		}
		nc.Close()
		if rerr == nil {
			s.rec.Error = "no FTP banner"
			return ftp.Reply{}, false
		}
		class := classifyErr(rerr)
		if class == FailProtocol || attempt >= pol.Attempts {
			s.rec.Error = fmt.Sprintf("banner: %v", rerr)
			s.rec.FailureClass = class
			return ftp.Reply{}, false
		}
		// Transient (reset, timeout, premature EOF): a fresh session
		// costs one dial and often succeeds against flaky gear.
		s.rec.Retries++
		time.Sleep(pol.backoff(s.target, attempt))
		redial := time.Now()
		nc, err = s.cfg.Dialer.Dial("tcp", addr)
		s.lat.dial.Since(redial)
		if err != nil {
			s.rec.Error = fmt.Sprintf("banner: %v", rerr)
			s.rec.FailureClass = class
			return ftp.Reply{}, false
		}
	}
}

// opTimeout bounds one control-channel operation: the configured per-command
// timeout, clipped to whatever remains of the host budget.
func (s *session) opTimeout() time.Duration {
	t := s.cfg.Timeout
	left, ok := s.bud.timeLeft()
	if !ok {
		return time.Millisecond // budget spent: fail fast
	}
	if !s.bud.deadline.IsZero() && left < t {
		t = left
	}
	return t
}

// isPrivateIP reports RFC 1918 membership for a dotted quad.
func isPrivateIP(sIP string) bool {
	ip := net.ParseIP(sIP)
	if ip == nil {
		return false
	}
	return ip.IsPrivate()
}

// cmd issues one request, accounting against the cap, the rate limit, and
// the host budget, with a per-command deadline. ok=false means this session
// can issue no further requests; the record explains why (ListingTruncated,
// ConnTerminated, or Partial+FailureClass).
func (s *session) cmd(name, arg string) (ftp.Reply, bool) {
	if s.used >= s.cfg.RequestCap {
		s.rec.ListingTruncated = true
		return ftp.Reply{}, false
	}
	if _, ok := s.bud.timeLeft(); !ok {
		if !s.closing {
			s.markDegraded(FailBudgetTime)
		}
		return ftp.Reply{}, false
	}
	if s.cfg.RequestDelay > 0 && s.used > 0 {
		time.Sleep(s.cfg.RequestDelay)
	}
	s.used++
	s.rec.RequestsUsed = s.used
	// Per-command deadline: ftp.Conn re-arms it for every read and write,
	// so one slow reply cannot consume more than Timeout, and the whole
	// session cannot outlive the host budget.
	s.conn.Timeout = s.opTimeout()
	start := time.Now()
	r, err := s.conn.Cmd(name, arg)
	s.lat.forVerb(name).Since(start)
	if err != nil {
		// Transport death mid-session: keep the partial record and
		// classify the fault instead of silently abandoning the host.
		s.rec.ConnTerminated = true
		if !s.closing {
			class := classifyErr(err)
			// A deadline that opTimeout clipped to the budget's remainder
			// is budget exhaustion, not server slowness — without this the
			// class depends on whether the pre-command budget check or the
			// clipped deadline fires first.
			if _, ok := s.bud.timeLeft(); class == FailTimeout && !ok {
				class = FailBudgetTime
			}
			s.markDegraded(class)
		}
		return ftp.Reply{}, false
	}
	if r.Code == ftp.CodeServiceNotAvail {
		// Polite 421: an explicit refusal of further service — recorded
		// as termination, but not as a fault.
		s.rec.ConnTerminated = true
		return r, false
	}
	return r, true
}

// login attempts the RFC 1635 anonymous login, upgrading to TLS first when
// the server demands it.
func (s *session) login(ctx context.Context) {
	r, ok := s.cmd("USER", "anonymous")
	if !ok {
		return
	}
	s.rec.LoginReply = r.Text()
	if r.Code == ftp.CodeNotLoggedIn && strings.Contains(strings.ToUpper(r.Text()), "TLS") {
		// "FTPS required prior to login" — one of the four meanings the
		// paper attributes to login replies.
		s.rec.EnsureFTPS().RequiredPreLogin = true
		if !s.upgradeTLS() {
			return
		}
		r, ok = s.cmd("USER", "anonymous")
		if !ok {
			return
		}
		s.rec.LoginReply = r.Text()
	}
	if r.Code != ftp.CodeNeedPassword && r.Code != ftp.CodeLoggedIn {
		return
	}
	if r.Code == ftp.CodeNeedPassword {
		r, ok = s.cmd("PASS", AnonPassword)
		if !ok {
			return
		}
	}
	if r.Code == ftp.CodeLoggedIn {
		s.rec.AnonymousOK = true
	}
	_ = ctx
}

// upgradeTLS performs AUTH TLS and records the certificate.
func (s *session) upgradeTLS() bool {
	r, ok := s.cmd("AUTH", "TLS")
	if !ok || r.Code != ftp.CodeAuthOK {
		return false
	}
	tc := tls.Client(s.conn.NetConn(), &tls.Config{
		// The enumerator collects certificates; it never trusts them.
		InsecureSkipVerify: true,
	})
	// The handshake is the one operation outside ftp.Conn's per-command
	// arming, so it gets its own budget-clipped deadline; afterwards the
	// deadline is cleared because every subsequent operation re-arms it.
	tc.SetDeadline(time.Now().Add(s.opTimeout()))
	if err := tc.Handshake(); err != nil {
		s.rec.ConnTerminated = true
		s.markDegraded(classifyErr(err))
		return false
	}
	tc.SetDeadline(time.Time{})
	s.recordTLSState(tc)
	s.conn.Upgrade(tc)
	return true
}

// recordTLSState captures the peer certificate.
func (s *session) recordTLSState(tc *tls.Conn) {
	ftps := s.rec.EnsureFTPS()
	ftps.Supported = true
	peer := tc.ConnectionState().PeerCertificates
	if len(peer) == 0 {
		return
	}
	leaf := peer[0]
	fp := fingerprintHex(leaf.Raw)
	ftps.Cert = &dataset.CertInfo{
		FingerprintSHA256: fp,
		CommonName:        leaf.Subject.CommonName,
		SelfSigned:        leaf.Issuer.CommonName == leaf.Subject.CommonName,
	}
}

// tryTLS attempts AUTH TLS at the end of the session (the paper collects
// certificates from every host, anonymous or not).
func (s *session) tryTLS() {
	if s.rec.FTPSCert() != nil {
		return // already collected during a required-TLS login
	}
	s.upgradeTLS()
}

// openDataConn negotiates a passive data channel (PASV, falling back to
// RFC 2428 EPSV) and dials it, recording NAT evidence from the advertised
// address. When the advertised IP differs from the control IP, the
// enumerator falls back to the control IP — the smart-client recovery real
// crawlers need behind NATs.
//
// The second return value reports whether the control channel remains
// usable: (nil, true) means this one transfer failed — an unparseable PASV
// reply, a dead data port — but the session can continue; (nil, false)
// means the session is over.
func (s *session) openDataConn() (net.Conn, bool) {
	var port uint16
	r, ok := s.cmd("PASV", "")
	if !ok {
		return nil, false
	}
	switch {
	case r.Code == ftp.CodePassive:
		hp, err := ftp.ParsePASVReply(r.Text())
		if err != nil {
			s.markDegraded(FailProtocol)
			return nil, true
		}
		if s.rec.PASVIP == "" {
			s.rec.PASVIP = hp.IPString()
			s.rec.PASVMismatch = hp.IPString() != s.target
		}
		if hp.IPString() == s.target {
			return s.dialData(hp.Addr())
		}
		port = hp.Port
	default:
		// Some implementations support only extended passive mode.
		r, ok = s.cmd("EPSV", "")
		if !ok {
			return nil, false
		}
		if r.Code != ftp.CodeExtendedPassive {
			return nil, true
		}
		p, err := ftp.ParseEPSVReply(r.Text())
		if err != nil {
			s.markDegraded(FailProtocol)
			return nil, true
		}
		port = p
	}
	return s.dialData(net.JoinHostPort(s.target, fmt.Sprintf("%d", port)))
}

// dialData opens the data connection, retrying transient failures. The
// deadline set here covers the connection as a whole; readData re-arms the
// read deadline per chunk, so it governs writes and acts as a backstop. A
// failed data dial degrades the transfer, never the session: (nil, true).
func (s *session) dialData(addr string) (net.Conn, bool) {
	pol := s.cfg.Retry
	for attempt := 1; ; attempt++ {
		start := time.Now()
		dc, err := s.cfg.Dialer.Dial("tcp", addr)
		s.lat.dial.Since(start)
		if err == nil {
			dc.SetDeadline(time.Now().Add(s.opTimeout()))
			return dc, true
		}
		if attempt >= pol.Attempts || !retryableDial(err) {
			s.markDegraded(FailConnect)
			return nil, true
		}
		s.rec.Retries++
		time.Sleep(pol.backoff(addr, attempt))
	}
}

// readData drains a data connection under a rolling idle deadline: the
// deadline advances after every chunk, so a long transfer survives as long
// as bytes keep flowing while a stalled peer trips the idle timeout. Bytes
// are charged against the host byte budget; the body is truncated at limit
// without error (mirroring the old io.LimitReader behaviour).
func (s *session) readData(dc net.Conn, limit int64) (string, error) {
	var b strings.Builder
	buf := make([]byte, 16<<10)
	var total int64
	for {
		left, ok := s.bud.timeLeft()
		if !ok {
			return b.String(), errBudgetTime
		}
		idle := s.cfg.DataIdleTimeout
		if !s.bud.deadline.IsZero() && left < idle {
			idle = left
		}
		if idle > 0 {
			dc.SetReadDeadline(time.Now().Add(idle))
		}
		n, err := dc.Read(buf)
		if n > 0 {
			if total+int64(n) > limit {
				n = int(limit - total)
			}
			b.Write(buf[:n])
			total += int64(n)
			s.rec.DataBytes += int64(n)
			if !s.bud.addBytes(int64(n)) {
				return b.String(), errBudgetBytes
			}
			if total >= limit {
				return b.String(), nil
			}
		}
		if err == io.EOF {
			return b.String(), nil
		}
		if err != nil {
			return b.String(), err
		}
	}
}

// dataFail classifies a failed data-channel read. A timeout on the data
// channel is a stall by definition — the rolling idle deadline only expires
// when the peer stops sending without closing.
func dataFail(err error) string {
	class := classifyErr(err)
	if class == FailTimeout {
		return FailStall
	}
	return class
}

// drainCompletion reads the transfer-completion reply under a short
// deadline (after a broken transfer the server may never send one) and
// reports whether the control channel is still alive.
func (s *session) drainCompletion() bool {
	t := s.opTimeout()
	if t > 2*time.Second {
		t = 2 * time.Second
	}
	s.conn.Timeout = t
	if _, err := s.conn.ReadReply(); err != nil {
		s.rec.ConnTerminated = true
		if !s.closing {
			s.markDegraded(classifyErr(err))
		}
		return false
	}
	return true
}

// retrieve downloads one small file over a data connection (used only for
// robots.txt).
func (s *session) retrieve(path string) (string, bool) {
	dc, _ := s.openDataConn()
	if dc == nil {
		return "", false
	}
	defer dc.Close()
	r, ok := s.cmd("RETR", path)
	if !ok || !r.Preliminary() {
		return "", false
	}
	body, err := s.readData(dc, 64<<10)
	dc.Close()
	if err != nil {
		s.markDegraded(dataFail(err))
		s.drainCompletion()
		return "", false
	}
	// Drain the completion reply; tolerate unusual codes — the body is
	// what matters.
	s.drainCompletion()
	return body, true
}

// fetchRobots retrieves and parses robots.txt per the Robots Exclusion
// Standard.
func (s *session) fetchRobots(ctx context.Context) {
	_ = ctx
	body, ok := s.retrieve("robots.txt")
	if !ok || body == "" {
		return
	}
	s.rec.RobotsTxt = body
	rules := robots.Parse(body)
	if rules.ExcludesAll(UserAgent) {
		s.rec.RobotsExcludeAll = true
	}
}

// featHasMLST reports whether the collected FEAT body advertises RFC 3659
// machine-readable listings.
func (s *session) featHasMLST() bool {
	for _, f := range s.rec.Feat {
		if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(f)), "MLST") {
			return true
		}
	}
	return false
}

// listStatus is the outcome of one directory listing.
type listStatus int

const (
	listOK    listStatus = iota // listing retrieved
	listSkip                    // this directory failed; the host is still usable
	listFatal                   // the session is over
)

// list retrieves one directory listing using the given verb (LIST or MLSD).
// A stalled or broken transfer skips the directory — degrading the crawl —
// rather than abandoning the host; any bytes received before the failure
// are still returned for parsing.
func (s *session) list(verb, dir string) (string, listStatus) {
	dc, ctlOK := s.openDataConn()
	if dc == nil {
		if ctlOK {
			s.rec.SkippedDirs++
			return "", listSkip
		}
		return "", listFatal
	}
	defer dc.Close()
	r, ok := s.cmd(verb, dir)
	if !ok {
		return "", listFatal
	}
	if !r.Preliminary() {
		return "", listSkip // directory refused; connection still healthy
	}
	body, err := s.readData(dc, s.cfg.MaxListBytes)
	dc.Close()
	if err != nil {
		class := dataFail(err)
		s.markDegraded(class)
		if class == FailBudgetTime || class == FailBudgetBytes {
			return body, listFatal
		}
		s.rec.SkippedDirs++
		// Closing the data connection above unblocks a stalled sender;
		// now find out whether the control channel survived.
		if !s.drainCompletion() {
			return body, listFatal
		}
		return body, listSkip
	}
	if !s.drainCompletion() {
		return body, listFatal
	}
	return body, listOK
}

// traverse walks the accessible tree breadth-first, respecting robots rules
// and the request cap, and harvesting write evidence.
func (s *session) traverse(ctx context.Context) {
	var rules *robots.Rules
	if s.rec.RobotsTxt != "" {
		rules = robots.Parse(s.rec.RobotsTxt)
		if s.rec.RobotsExcludeAll {
			return
		}
	}

	// Prefer MLSD when advertised: its explicit permission facts remove
	// the "unk-readability" ambiguity of DOS-style listings.
	verb := "LIST"
	if s.featHasMLST() {
		verb = "MLSD"
	}

	type dirItem struct{ path string }
	queue := []dirItem{{path: "/"}}
	visited := map[string]bool{"/": true}
	evidence := map[string]bool{}
	refSet := campaigns.ReferenceSet()
	now := time.Now()

	for len(queue) > 0 {
		select {
		case <-ctx.Done():
			return
		default:
		}
		item := queue[0]
		queue = queue[1:]

		body, st := s.list(verb, item.path)
		if st == listFatal && body == "" {
			return
		}
		var entries []listparse.Entry
		if verb == "MLSD" {
			entries, _ = listparse.ParseMLSDListing(body)
			if len(entries) == 0 && body != "" && st == listOK {
				// Advertised but broken MLSD: fall back to LIST for
				// the remainder of the crawl.
				verb = "LIST"
				body, st = s.list(verb, item.path)
				if st == listFatal && body == "" {
					return
				}
				entries, _ = listparse.ParseListing(body, now)
			}
		} else {
			entries, _ = listparse.ParseListing(body, now)
		}
		for _, e := range entries {
			full := vfs.Join(item.path, e.Name)
			s.rec.Files = append(s.rec.Files, dataset.FileEntry{
				Path:    full,
				Name:    e.Name,
				IsDir:   e.IsDir,
				Size:    e.Size,
				Read:    toDatasetRead(e.Read),
				Write:   toDatasetRead(e.Write),
				Owner:   e.Owner,
				ModTime: e.ModTime,
			})
			if !e.IsDir && refSet[e.Name] && !evidence[e.Name] {
				evidence[e.Name] = true
				s.rec.WriteEvidence = append(s.rec.WriteEvidence, e.Name)
			}
			if e.IsDir && !visited[full] {
				if rules != nil && !rules.Allowed(UserAgent, full) {
					continue
				}
				visited[full] = true
				queue = append(queue, dirItem{path: full})
			}
		}
		if st == listFatal {
			// A partial body was parsed above so nothing already
			// received is lost, but the session is over.
			return
		}
		// listSkip: this subtree is abandoned; the rest of the queue —
		// and the host — survives.
	}
}

// confirmAnonUploads verifies write evidence the way the paper's §VI.A
// reference set was built: Pure-FTPd-style servers refuse RETR of
// anonymously uploaded files with a distinctive message ("has not yet been
// approved"). The probe sends RETR without a data connection, so no file
// content is ever transferred — only the refusal text is observed.
func (s *session) confirmAnonUploads() {
	if len(s.rec.WriteEvidence) == 0 {
		return
	}
	evidence := make(map[string]bool, len(s.rec.WriteEvidence))
	for _, name := range s.rec.WriteEvidence {
		evidence[name] = true
	}
	probes := 0
	for i := range s.rec.Files {
		f := &s.rec.Files[i]
		if f.IsDir || !evidence[f.Name] {
			continue
		}
		if probes >= 2 {
			return
		}
		probes++
		r, ok := s.cmd("RETR", f.Path)
		if !ok {
			return
		}
		if r.Negative() && strings.Contains(strings.ToLower(r.Text()), "uploaded by an anonymous user") {
			s.rec.AnonUploadConfirmed = true
			return
		}
	}
}

// collectMeta gathers HELP, FEAT, SITE, and SYST output.
func (s *session) collectMeta() {
	if r, ok := s.cmd("SYST", ""); ok && r.Positive() {
		s.rec.Syst = r.Text()
	}
	if r, ok := s.cmd("FEAT", ""); ok && r.Code == ftp.FeatureListCode {
		lines := r.Lines
		// Strip the "Features:"/"End" framing.
		if len(lines) >= 2 {
			lines = lines[1 : len(lines)-1]
		}
		s.rec.Feat = append([]string(nil), lines...)
	}
	if r, ok := s.cmd("HELP", ""); ok && r.Code == ftp.CodeHelp {
		s.rec.Help = r.Text()
	}
	if r, ok := s.cmd("SITE", "HELP"); ok && r.Code == ftp.CodeHelp {
		s.rec.Site = r.Text()
	}
}

// probePortValidation asks the server to open a data connection to the
// collector — a third-party address — and records whether it complied.
func (s *session) probePortValidation() {
	if s.cfg.Collector == nil {
		return
	}
	hp := s.cfg.Collector.Addr()
	r, ok := s.cmd("PORT", hp.Encode())
	if !ok {
		return
	}
	if r.Negative() {
		s.rec.PortCheck = dataset.PortValidated
		return
	}
	// The PORT was accepted; LIST triggers the outbound connection.
	if r, ok := s.cmd("LIST", "/"); ok && r.Preliminary() {
		s.drainCompletion()
	}
	if s.cfg.Collector.Saw(s.target, 2*time.Second) {
		s.rec.PortCheck = dataset.PortNotValidated
	} else {
		s.rec.PortCheck = dataset.PortValidated
	}
}

func toDatasetRead(r listparse.Readability) dataset.Readability {
	switch r {
	case listparse.ReadYes:
		return dataset.ReadYes
	case listparse.ReadNo:
		return dataset.ReadNo
	default:
		return dataset.ReadUnknown
	}
}

func fingerprintHex(der []byte) string {
	sum := sha256.Sum256(der)
	return hex.EncodeToString(sum[:])
}
