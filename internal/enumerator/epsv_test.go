package enumerator

import (
	"context"
	"testing"
	"time"

	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// epsvOnlyPersonality is a hand-built profile for a stack that rejects
// classic PASV — the enumerator must fall back to RFC 2428 EPSV.
func epsvOnlyPersonality() *personality.Personality {
	return &personality.Personality{
		Key:      "test-epsv-only",
		Software: "ModernFTPd",
		Version:  "2.0",
		Banner:   "ModernFTPd 2.0 ready.",
		Syst:     "UNIX Type: L8",
		Reply331: "Password required for %USER%.",
		Category: personality.CategoryGeneric,
		Quirks: personality.Quirks{
			ValidatePORT: true,
			ListStyle:    vfs.StyleUnix,
			EPSVOnly:     true,
		},
	}
}

func TestEPSVFallback(t *testing.T) {
	root := vfs.NewDir("/", vfs.Perm755)
	pub := root.Add(vfs.NewDir("pub", vfs.Perm755))
	pub.Add(vfs.NewFile("data.txt", vfs.Perm644, 99))

	srv, err := ftpserver.New(ftpserver.Config{
		Pers:           epsvOnlyPersonality(),
		FS:             vfs.New(root),
		PublicIP:       srvIP,
		AllowAnonymous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(srvIP, 21, srv.SimHandler())
	nw := simnet.NewNetwork(provider)

	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.AnonymousOK {
		t.Fatalf("login failed: %+v", rec)
	}
	found := false
	for _, f := range rec.Files {
		if f.Path == "/pub/data.txt" {
			found = true
		}
	}
	if !found {
		t.Errorf("EPSV fallback traversal incomplete: %d files", len(rec.Files))
	}
}

// TestRequestDelayPacesRequests verifies the paper's 2-requests-per-second
// etiquette is actually enforced between consecutive commands.
func TestRequestDelayPacesRequests(t *testing.T) {
	nw := buildNet(t, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyVsftpd302),
		FS:             vfs.New(nil),
		AllowAnonymous: true,
	})
	cfg := enumConfig(nw)
	cfg.RequestDelay = 15 * time.Millisecond
	cfg.TryTLS = false
	start := time.Now()
	rec := Enumerate(context.Background(), cfg, srvIP.String())
	elapsed := time.Since(start)
	if rec.RequestsUsed < 5 {
		t.Fatalf("too few requests to measure pacing: %d", rec.RequestsUsed)
	}
	minExpected := time.Duration(rec.RequestsUsed-1) * cfg.RequestDelay
	if elapsed < minExpected {
		t.Errorf("session took %v for %d requests; pacing requires ≥%v",
			elapsed, rec.RequestsUsed, minExpected)
	}
}

// TestSymlinksNotTraversed plants a directory symlink cycle and verifies the
// enumerator records the link without following it.
func TestSymlinksNotTraversed(t *testing.T) {
	root := vfs.NewDir("/", vfs.Perm755)
	web := root.Add(vfs.NewDir("public_html", vfs.Perm755))
	web.Add(vfs.NewFile("index.html", vfs.Perm644, 100))
	link := vfs.NewSymlink("www", "public_html")
	root.Add(link)
	// A pathological self-referential link.
	root.Add(vfs.NewSymlink("loop", "."))

	srv, err := ftpserver.New(ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             vfs.New(root),
		PublicIP:       srvIP,
		AllowAnonymous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(srvIP, 21, srv.SimHandler())
	nw := simnet.NewNetwork(provider)

	rec := Enumerate(context.Background(), enumConfig(nw), srvIP.String())
	if !rec.AnonymousOK {
		t.Fatal("login failed")
	}
	sawLink := false
	for _, f := range rec.Files {
		if f.Name == "www" {
			sawLink = true
			if f.IsDir {
				t.Error("symlink recorded as directory")
			}
		}
	}
	if !sawLink {
		t.Error("symlink missing from listing")
	}
	// Bounded request usage proves no cycle-following.
	if rec.RequestsUsed > 40 {
		t.Errorf("requests = %d; symlink loop followed?", rec.RequestsUsed)
	}
}
