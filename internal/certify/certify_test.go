package certify

import (
	"context"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/enumerator"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

var auditorIP = simnet.MustParseIP("250.0.0.1")

// buildTarget wires a server config into a network and returns an auditor.
func buildTarget(t *testing.T, ip simnet.IP, cfg ftpserver.Config) (*simnet.Network, *Auditor) {
	t.Helper()
	cfg.PublicIP = ip
	srv, err := ftpserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(ip, 21, srv.SimHandler())
	nw := simnet.NewNetwork(provider)
	collector, err := enumerator.NewSimCollector(nw, simnet.MustParseIP("250.0.255.1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { collector.Close() })
	return nw, &Auditor{
		Dialer:    simnet.Dialer{Net: nw, Src: auditorIP},
		Collector: collector,
		Timeout:   5 * time.Second,
	}
}

func results(t *testing.T, r *Report) map[CheckID]Result {
	t.Helper()
	m := make(map[CheckID]Result)
	for _, res := range r.Results {
		m[res.ID] = res
	}
	return m
}

func TestAuditSecureServer(t *testing.T) {
	ip := simnet.MustParseIP("100.64.1.1")
	pool, err := certs.GeneratePool(3, []certs.Spec{{Name: "c", CommonName: "unique.example.org", SelfSigned: true}})
	if err != nil {
		t.Fatal(err)
	}
	_, auditor := buildTarget(t, ip, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyServU15), // FTPS-capable, CVE-clean
		FS:             vfs.New(nil),
		AllowAnonymous: false,
		Cert:           pool.Get("c"),
	})
	report, err := auditor.Audit(context.Background(), ip.String())
	if err != nil {
		t.Fatal(err)
	}
	m := results(t, report)
	if !m[CheckAnonymousLogin].Passed {
		t.Error("anonymous check should pass on a closed server")
	}
	if !m[CheckDefaultCreds].Passed {
		t.Error("default-creds check should pass")
	}
	if !m[CheckTLSAvailable].Passed {
		t.Error("TLS check should pass")
	}
	if !m[CheckKnownCVEs].Passed {
		t.Error("Serv-U 15.1 should be CVE-clean")
	}
	if report.Grade != "A" {
		t.Errorf("grade = %s, want A (%+v)", report.Grade, report.Failed())
	}
}

func TestAuditCVEWarningGrade(t *testing.T) {
	ip := simnet.MustParseIP("100.64.1.9")
	pool, err := certs.GeneratePool(4, []certs.Spec{{Name: "c", CommonName: "x.example.org", SelfSigned: true}})
	if err != nil {
		t.Fatal(err)
	}
	_, auditor := buildTarget(t, ip, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135), // matches CVE-2015-3306
		FS:             vfs.New(nil),
		AllowAnonymous: false,
		Cert:           pool.Get("c"),
	})
	report, err := auditor.Audit(context.Background(), ip.String())
	if err != nil {
		t.Fatal(err)
	}
	m := results(t, report)
	if m[CheckKnownCVEs].Passed {
		t.Error("ProFTPD 1.3.5 should fail the CVE check")
	}
	if report.Grade != "B" {
		t.Errorf("grade = %s, want B (%+v)", report.Grade, report.Failed())
	}
}

func TestAuditWideOpenDevice(t *testing.T) {
	ip := simnet.MustParseIP("100.64.1.2")
	root := vfs.NewDir("/", vfs.Perm777)
	docs := root.Add(vfs.NewDir("Documents", vfs.Perm755))
	docs.Add(vfs.NewFile("passwords.kdbx", vfs.Perm644, 1000))
	docs.Add(vfs.NewFile("mail.pst", vfs.Perm644, 1000))
	_, auditor := buildTarget(t, ip, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyBuffaloNAS), // no PORT validation
		FS:             vfs.New(root),
		AllowAnonymous: true,
		AnonWritable:   true,
		Users:          map[string]string{"admin": "admin"},
		InternalIP:     simnet.MustParseIP("192.168.1.50"),
	})
	report, err := auditor.Audit(context.Background(), ip.String())
	if err != nil {
		t.Fatal(err)
	}
	m := results(t, report)
	for _, id := range []CheckID{
		CheckAnonymousLogin, CheckAnonymousWrite, CheckPortValidation,
		CheckDefaultCreds, CheckNoInternalLeak, CheckNoSensitiveLeak,
	} {
		if m[id].Passed {
			t.Errorf("%s should fail on the wide-open device: %s", id, m[id].Detail)
		}
	}
	if report.Grade != "F" {
		t.Errorf("grade = %s, want F", report.Grade)
	}
	// The write probe must clean up its marker.
	// (Buffalo profile has no rename-suffix quirk, so the name is exact.)
	for _, f := range report.Record.Files {
		if f.Name == "certify-probe.txt" {
			t.Error("write probe left its marker behind")
		}
	}
}

func TestAuditSharedCertificate(t *testing.T) {
	ip := simnet.MustParseIP("100.64.1.3")
	pool, err := certs.GeneratePool(3, []certs.Spec{{Name: "c", CommonName: "QNAP NAS", SelfSigned: true}})
	if err != nil {
		t.Fatal(err)
	}
	cert := pool.Get("c")
	_, auditor := buildTarget(t, ip, ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyQNAPNAS),
		FS:             vfs.New(nil),
		AllowAnonymous: false,
		Cert:           cert,
	})
	fp := make([]byte, 32)
	copy(fp, cert.Fingerprint[:])
	auditor.SharedFingerprints = map[string]int{hexOf(cert.Fingerprint[:]): 57655}

	report, err := auditor.Audit(context.Background(), ip.String())
	if err != nil {
		t.Fatal(err)
	}
	m := results(t, report)
	if m[CheckUniqueCert].Passed {
		t.Error("fleet-shared certificate not flagged")
	}
	if !strings.Contains(m[CheckUniqueCert].Detail, "57655") {
		t.Errorf("detail: %s", m[CheckUniqueCert].Detail)
	}
}

func TestAuditNonFTP(t *testing.T) {
	nw := simnet.NewNetwork(nil)
	auditor := &Auditor{Dialer: simnet.Dialer{Net: nw, Src: auditorIP}, Timeout: time.Second}
	if _, err := auditor.Audit(context.Background(), "100.64.9.9"); err == nil {
		t.Error("audit of dead host succeeded")
	}
}

func TestRender(t *testing.T) {
	r := &Report{
		Target: "1.2.3.4",
		Grade:  "F",
		Results: []Result{
			{ID: CheckAnonymousLogin, Passed: false, Severity: SeverityCritical, Detail: "open"},
			{ID: CheckTLSAvailable, Passed: true, Severity: SeverityWarning, Detail: "ok"},
		},
	}
	out := Render(r)
	for _, want := range []string{"grade F", "[FAIL]", "[PASS]", "CRITICAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGrade(t *testing.T) {
	crit := Result{Severity: SeverityCritical}
	warn := Result{Severity: SeverityWarning}
	pass := Result{Passed: true, Severity: SeverityCritical}
	if g := grade([]Result{pass, pass}); g != "A" {
		t.Errorf("clean grade = %s", g)
	}
	if g := grade([]Result{pass, warn}); g != "B" {
		t.Errorf("one warning = %s", g)
	}
	if g := grade([]Result{warn, warn}); g != "C" {
		t.Errorf("two warnings = %s", g)
	}
	if g := grade([]Result{warn, crit}); g != "F" {
		t.Errorf("critical = %s", g)
	}
}

func hexOf(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, len(b)*2)
	for i, v := range b {
		out[i*2] = digits[v>>4]
		out[i*2+1] = digits[v&0xf]
	}
	return string(out)
}
