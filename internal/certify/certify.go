// Package certify implements the paper's §X proposal: a "CyberUL"-style
// certification suite that tests a device or server for the well-known,
// often-exploited FTP weaknesses the study measured. The paper argues that
// "it would be easy to test for well known and often exploited
// vulnerabilities such as anonymous logins and port bouncing" — this
// package is that test battery.
//
// An Auditor drives the same enumerator used by the census against one
// target (simulated or real TCP), adds a default-credential probe, and
// grades the result.
package certify

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"ftpcloud/internal/cvedb"
	"ftpcloud/internal/dataset"
	"ftpcloud/internal/enumerator"
	"ftpcloud/internal/fingerprint"
	"ftpcloud/internal/ftp"
)

// CheckID names one certification test.
type CheckID string

// The certification battery.
const (
	CheckAnonymousLogin  CheckID = "anonymous-login-disabled"
	CheckAnonymousWrite  CheckID = "anonymous-write-disabled"
	CheckPortValidation  CheckID = "port-command-validated"
	CheckDefaultCreds    CheckID = "no-default-credentials"
	CheckKnownCVEs       CheckID = "no-known-cves-in-banner"
	CheckTLSAvailable    CheckID = "ftps-available"
	CheckUniqueCert      CheckID = "certificate-not-fleet-shared"
	CheckNoInternalLeak  CheckID = "no-internal-address-leak"
	CheckNoSensitiveLeak CheckID = "no-sensitive-files-visible"
)

// Severity weighs a failed check.
type Severity int

// Severities.
const (
	SeverityInfo Severity = iota + 1
	SeverityWarning
	SeverityCritical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityCritical:
		return "CRITICAL"
	case SeverityWarning:
		return "WARNING"
	default:
		return "INFO"
	}
}

// Result is one executed check.
type Result struct {
	ID       CheckID
	Passed   bool
	Severity Severity
	Detail   string
}

// Report is a completed audit.
type Report struct {
	Target  string
	Results []Result
	// Grade summarizes: "A" (all pass) through "F" (critical failures).
	Grade string
	// Record is the underlying enumeration record.
	Record *dataset.HostRecord
}

// Failed returns the failed checks.
func (r *Report) Failed() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.Passed {
			out = append(out, res)
		}
	}
	return out
}

// defaultCredentials is the default/weak account battery the audit tries
// (the Seagate root/no-password hole is the paper's exhibit A).
var defaultCredentials = [][2]string{
	{"root", ""}, {"admin", "admin"}, {"admin", "password"},
	{"admin", ""}, {"user", "user"}, {"guest", "guest"},
}

// Auditor runs the certification battery.
type Auditor struct {
	// Dialer connects to the target (simulated or real TCP).
	Dialer enumerator.Dialer
	// Collector enables the PORT-validation check when non-nil.
	Collector enumerator.Collector
	// SharedFingerprints maps known fleet-shared certificate
	// fingerprints (hex SHA-256) to their observed population — fed from
	// census data; a device presenting one fails CheckUniqueCert.
	SharedFingerprints map[string]int
	// Timeout bounds each probe.
	Timeout time.Duration
}

// Audit runs the full battery against one target address.
func (a *Auditor) Audit(ctx context.Context, target string) (*Report, error) {
	timeout := a.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	rec := enumerator.Enumerate(ctx, enumerator.Config{
		Dialer:    a.Dialer,
		Collector: a.Collector,
		Timeout:   timeout,
		TryTLS:    true,
	}, target)
	if !rec.FTP {
		return nil, fmt.Errorf("certify: %s is not an FTP server (%s)", target, rec.Error)
	}

	report := &Report{Target: target, Record: rec}
	add := func(id CheckID, passed bool, sev Severity, detail string) {
		report.Results = append(report.Results, Result{ID: id, Passed: passed, Severity: sev, Detail: detail})
	}

	// Anonymous login.
	add(CheckAnonymousLogin, !rec.AnonymousOK, SeverityCritical,
		pick(rec.AnonymousOK,
			"anonymous login succeeded: all contents are public",
			"anonymous login rejected"))

	// Anonymous write: evidenced by reference-set files, or verified by
	// an upload probe when anonymous access is open.
	writable := len(rec.WriteEvidence) > 0
	var writeDetail string
	if rec.AnonymousOK {
		probed, err := a.probeWrite(target, timeout)
		if err == nil {
			writable = writable || probed
		}
		writeDetail = pick(writable,
			"anonymous upload accepted: free storage for malware and probes",
			"anonymous upload rejected")
	} else {
		writeDetail = "not applicable (anonymous access closed)"
	}
	add(CheckAnonymousWrite, !writable, SeverityCritical, writeDetail)

	// PORT validation.
	switch rec.PortCheck {
	case dataset.PortNotValidated:
		add(CheckPortValidation, false, SeverityCritical,
			"server opened a data connection to a third party (FTP bounce)")
	case dataset.PortValidated:
		add(CheckPortValidation, true, SeverityCritical, "PORT arguments validated")
	default:
		add(CheckPortValidation, true, SeverityInfo, "not tested (no collector or no anonymous access)")
	}

	// Default credentials.
	hit, pair := a.probeDefaultCreds(target, timeout)
	add(CheckDefaultCreds, !hit, SeverityCritical,
		pick(hit, fmt.Sprintf("default credentials accepted: %s/%s", pair[0], pair[1]),
			"default-credential battery rejected"))

	// Banner CVEs.
	class := fingerprint.Classify(rec)
	matches := cvedb.Match(class.Software, class.Version)
	if len(matches) > 0 {
		ids := make([]string, len(matches))
		for i, m := range matches {
			ids[i] = m.ID
		}
		add(CheckKnownCVEs, false, SeverityWarning,
			"banner version matches "+strings.Join(ids, ", "))
	} else {
		add(CheckKnownCVEs, true, SeverityWarning, "no known CVEs for advertised version")
	}

	// FTPS availability.
	add(CheckTLSAvailable, rec.FTPSSupported(), SeverityWarning,
		pick(rec.FTPSSupported(), "AUTH TLS available", "no TLS: credentials and data travel in cleartext"))

	// Fleet-shared certificate.
	if cert := rec.FTPSCert(); cert != nil {
		n := a.SharedFingerprints[cert.FingerprintSHA256]
		add(CheckUniqueCert, n <= 1, SeverityCritical,
			pick(n > 1,
				fmt.Sprintf("certificate shared with %d other devices: one extracted key MITMs the whole fleet", n),
				"certificate not observed elsewhere"))
	} else {
		add(CheckUniqueCert, true, SeverityInfo, "no certificate presented")
	}

	// Internal address leaks.
	leak := rec.BannerIPPrivate || (rec.PASVMismatch && strings.HasPrefix(rec.PASVIP, "192.168."))
	add(CheckNoInternalLeak, !leak, SeverityWarning,
		pick(leak, "device leaks its RFC 1918 address (banner or PASV)", "no internal addresses leaked"))

	// Sensitive file visibility (only meaningful if anonymous).
	sensitive := countSensitive(rec)
	add(CheckNoSensitiveLeak, sensitive == 0, SeverityCritical,
		pick(sensitive > 0,
			fmt.Sprintf("%d sensitive-class files visible anonymously", sensitive),
			"no sensitive-class files visible"))

	report.Grade = grade(report.Results)
	return report, nil
}

// probeWrite attempts a STOR of a throwaway marker; on success the marker
// is deleted (the write-probe etiquette the paper observed).
func (a *Auditor) probeWrite(target string, timeout time.Duration) (bool, error) {
	c, err := a.login(target, "anonymous", "certify@example.org", timeout)
	if err != nil {
		return false, err
	}
	defer c.Close()
	r, err := c.Cmd("PASV", "")
	if err != nil || r.Code != ftp.CodePassive {
		return false, err
	}
	hp, err := ftp.ParsePASVReply(r.Text())
	if err != nil {
		return false, err
	}
	dialAddr := hp.Addr()
	if hp.IPString() != target {
		dialAddr = net.JoinHostPort(target, fmt.Sprintf("%d", hp.Port))
	}
	dc, err := a.Dialer.Dial("tcp", dialAddr)
	if err != nil {
		return false, err
	}
	defer dc.Close()
	const marker = "certify-probe.txt"
	if r, err := c.Cmd("STOR", marker); err != nil || !r.Preliminary() {
		return false, nil
	}
	dc.Write([]byte("certification write probe"))
	dc.Close()
	c.ReadReply()
	c.Cmd("DELE", marker)
	return true, nil
}

// probeDefaultCreds runs the default-account battery.
func (a *Auditor) probeDefaultCreds(target string, timeout time.Duration) (bool, [2]string) {
	for _, pair := range defaultCredentials {
		c, err := a.login(target, pair[0], pair[1], timeout)
		if err == nil {
			c.Close()
			return true, pair
		}
	}
	return false, [2]string{}
}

// login opens a control connection and authenticates.
func (a *Auditor) login(target, user, pass string, timeout time.Duration) (*ftp.Conn, error) {
	nc, err := a.Dialer.Dial("tcp", net.JoinHostPort(target, "21"))
	if err != nil {
		return nil, err
	}
	c := ftp.NewConn(nc)
	c.Timeout = timeout
	if r, err := c.ReadReply(); err != nil || r.Code != ftp.CodeReady {
		nc.Close()
		return nil, fmt.Errorf("certify: no banner")
	}
	if r, err := c.Cmd("USER", user); err != nil || (r.Code != ftp.CodeNeedPassword && r.Code != ftp.CodeLoggedIn) {
		nc.Close()
		return nil, fmt.Errorf("certify: USER rejected")
	} else if r.Code == ftp.CodeLoggedIn {
		return c, nil
	}
	if r, err := c.Cmd("PASS", pass); err != nil || r.Code != ftp.CodeLoggedIn {
		nc.Close()
		return nil, fmt.Errorf("certify: PASS rejected")
	}
	return c, nil
}

// countSensitive counts Table IX-class files in the record's listing.
func countSensitive(rec *dataset.HostRecord) int {
	n := 0
	for i := range rec.Files {
		name := strings.ToLower(rec.Files[i].Name)
		switch {
		case strings.HasSuffix(name, ".pst"), strings.HasSuffix(name, ".qdf"),
			strings.HasSuffix(name, ".txf"), strings.HasSuffix(name, ".kdbx"),
			strings.HasSuffix(name, ".ppk"), name == "shadow",
			strings.Contains(name, "ssh_host_") && !strings.HasSuffix(name, ".pub"),
			strings.HasSuffix(name, ".pem") && strings.Contains(name, "priv"):
			n++
		}
	}
	return n
}

// grade maps results to a letter grade: any critical failure → F; two or
// more warnings → C; one warning → B; clean → A.
func grade(results []Result) string {
	warnings := 0
	for _, r := range results {
		if r.Passed {
			continue
		}
		if r.Severity == SeverityCritical {
			return "F"
		}
		warnings++
	}
	switch {
	case warnings == 0:
		return "A"
	case warnings == 1:
		return "B"
	default:
		return "C"
	}
}

func pick(cond bool, ifTrue, ifFalse string) string {
	if cond {
		return ifTrue
	}
	return ifFalse
}

// Render formats a report.
func Render(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Certification report for %s — grade %s\n", r.Target, r.Grade)
	for _, res := range r.Results {
		mark := "PASS"
		if !res.Passed {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-32s %-8s %s\n", mark, res.ID, res.Severity, res.Detail)
	}
	return b.String()
}
