// Package asdb models the autonomous-system layer of the simulated
// Internet: AS records with announced prefixes and operator types, plus a
// fast IP→AS lookup table. The paper's concentration analyses (Tables III
// and VI, Figure 1) all join scan observations against this database.
package asdb

import (
	"fmt"
	"sort"

	"ftpcloud/internal/simnet"
)

// Type categorizes an AS operator the way the paper's Table III does.
type Type int

// AS operator types.
const (
	TypeOther Type = iota
	TypeHosting
	TypeISP
	TypeAcademic
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeHosting:
		return "Hosting"
	case TypeISP:
		return "ISP"
	case TypeAcademic:
		return "Academic"
	default:
		return "Other"
	}
}

// AS is one autonomous system.
type AS struct {
	Number   uint32
	Name     string
	Type     Type
	Prefixes []simnet.Prefix
}

// Advertised returns the total number of addresses the AS announces.
func (a *AS) Advertised() uint64 {
	var total uint64
	for _, p := range a.Prefixes {
		total += p.Size()
	}
	return total
}

// DB is an immutable AS database with O(log n) IP lookup.
type DB struct {
	ases []*AS

	// starts/ends/owner are parallel arrays of disjoint address
	// intervals sorted by start.
	starts []uint32
	ends   []uint32 // inclusive
	owner  []int    // index into ases
}

// NewDB builds a database. Prefixes must be disjoint across ASes; overlap is
// reported as an error since the world generator allocates disjoint space.
func NewDB(ases []*AS) (*DB, error) {
	db := &DB{ases: ases}
	type interval struct {
		start, end uint32
		owner      int
	}
	var ivs []interval
	for i, as := range ases {
		for _, p := range as.Prefixes {
			size := p.Size()
			start := uint32(p.Base)
			if p.Bits > 0 && p.Bits < 32 {
				mask := ^uint32(0) << (32 - p.Bits)
				start = uint32(p.Base) & mask
			}
			end := start + uint32(size-1)
			ivs = append(ivs, interval{start: start, end: end, owner: i})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].start <= ivs[i-1].end {
			return nil, fmt.Errorf(
				"asdb: overlapping prefixes: AS%d and AS%d share %s",
				ases[ivs[i-1].owner].Number, ases[ivs[i].owner].Number,
				simnet.IP(ivs[i].start))
		}
	}
	db.starts = make([]uint32, len(ivs))
	db.ends = make([]uint32, len(ivs))
	db.owner = make([]int, len(ivs))
	for i, iv := range ivs {
		db.starts[i] = iv.start
		db.ends[i] = iv.end
		db.owner[i] = iv.owner
	}
	return db, nil
}

// Lookup maps an IP to its announcing AS. The binary search is hand-rolled:
// this sits on the scanner's per-probe path, and the sort.Search closure
// call per step is measurable at census probe volumes.
func (db *DB) Lookup(ip simnet.IP) (*AS, bool) {
	v := uint32(ip)
	starts := db.starts
	lo, hi := 0, len(starts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if starts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil, false
	}
	i := lo - 1
	if v > db.ends[i] {
		return nil, false
	}
	return db.ases[db.owner[i]], true
}

// All returns every AS in the database.
func (db *DB) All() []*AS { return db.ases }

// ByNumber finds an AS by its number.
func (db *DB) ByNumber(n uint32) (*AS, bool) {
	for _, as := range db.ases {
		if as.Number == n {
			return as, true
		}
	}
	return nil, false
}

// Len returns the number of ASes.
func (db *DB) Len() int { return len(db.ases) }
