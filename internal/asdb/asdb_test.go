package asdb

import (
	"testing"
	"testing/quick"

	"ftpcloud/internal/simnet"
)

func mustDB(t *testing.T, ases []*AS) *DB {
	t.Helper()
	db, err := NewDB(ases)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func testASes() []*AS {
	return []*AS{
		{
			Number: 12824, Name: "home.pl S.A.", Type: TypeHosting,
			Prefixes: []simnet.Prefix{{Base: simnet.MustParseIP("10.0.0.0"), Bits: 16}},
		},
		{
			Number: 4134, Name: "Chinanet", Type: TypeISP,
			Prefixes: []simnet.Prefix{
				{Base: simnet.MustParseIP("20.0.0.0"), Bits: 16},
				{Base: simnet.MustParseIP("20.5.0.0"), Bits: 16},
			},
		},
		{
			Number: 36375, Name: "UMich", Type: TypeAcademic,
			Prefixes: []simnet.Prefix{{Base: simnet.MustParseIP("30.0.0.0"), Bits: 24}},
		},
	}
}

func TestLookup(t *testing.T) {
	db := mustDB(t, testASes())
	tests := []struct {
		ip     string
		wantAS uint32
		found  bool
	}{
		{"10.0.0.1", 12824, true},
		{"10.0.255.255", 12824, true},
		{"10.1.0.0", 0, false},
		{"20.0.5.5", 4134, true},
		{"20.5.1.1", 4134, true},
		{"20.4.0.1", 0, false},
		{"30.0.0.77", 36375, true},
		{"30.0.1.0", 0, false},
		{"0.0.0.1", 0, false},
		{"255.255.255.255", 0, false},
	}
	for _, tt := range tests {
		as, found := db.Lookup(simnet.MustParseIP(tt.ip))
		if found != tt.found {
			t.Errorf("Lookup(%s) found = %v, want %v", tt.ip, found, tt.found)
			continue
		}
		if found && as.Number != tt.wantAS {
			t.Errorf("Lookup(%s) = AS%d, want AS%d", tt.ip, as.Number, tt.wantAS)
		}
	}
}

func TestOverlapDetection(t *testing.T) {
	bad := []*AS{
		{Number: 1, Prefixes: []simnet.Prefix{{Base: simnet.MustParseIP("10.0.0.0"), Bits: 8}}},
		{Number: 2, Prefixes: []simnet.Prefix{{Base: simnet.MustParseIP("10.5.0.0"), Bits: 16}}},
	}
	if _, err := NewDB(bad); err == nil {
		t.Fatal("overlapping prefixes accepted")
	}
}

func TestAdvertised(t *testing.T) {
	ases := testASes()
	if got := ases[0].Advertised(); got != 1<<16 {
		t.Errorf("home.pl advertised = %d", got)
	}
	if got := ases[1].Advertised(); got != 2<<16 {
		t.Errorf("chinanet advertised = %d", got)
	}
}

func TestByNumberAndLen(t *testing.T) {
	db := mustDB(t, testASes())
	if db.Len() != 3 {
		t.Errorf("Len = %d", db.Len())
	}
	as, ok := db.ByNumber(4134)
	if !ok || as.Name != "Chinanet" {
		t.Errorf("ByNumber(4134) = %v, %v", as, ok)
	}
	if _, ok := db.ByNumber(99999); ok {
		t.Error("phantom AS found")
	}
	if len(db.All()) != 3 {
		t.Error("All() wrong length")
	}
}

func TestTypeString(t *testing.T) {
	if TypeHosting.String() != "Hosting" || TypeISP.String() != "ISP" ||
		TypeAcademic.String() != "Academic" || TypeOther.String() != "Other" {
		t.Error("type names wrong")
	}
}

// Property: an IP maps to an AS iff one of that AS's prefixes contains it,
// and never to an AS whose prefixes don't.
func TestLookupConsistencyProperty(t *testing.T) {
	ases := testASes()
	db := mustDB(t, ases)
	f := func(v uint32) bool {
		ip := simnet.IP(v)
		got, found := db.Lookup(ip)
		for _, as := range ases {
			for _, p := range as.Prefixes {
				if p.Contains(ip) {
					return found && got.Number == as.Number
				}
			}
		}
		return !found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEmptyDB(t *testing.T) {
	db := mustDB(t, nil)
	if _, found := db.Lookup(simnet.MustParseIP("1.2.3.4")); found {
		t.Error("empty DB found an AS")
	}
}
