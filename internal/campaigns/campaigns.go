// Package campaigns catalogs the malicious campaigns the paper uncovers on
// world-writable anonymous FTP servers (§VI): write-probing, server-side
// RATs, UDP DDoS scripts, the ftpchk3 multi-stage campaign, the Holy Bible
// SEO campaign, software-cracking-service fliers, the Ramnit botnet's FTP
// backdoor, and WaReZ transport drops.
//
// The catalog is shared three ways: the world generator plants campaign
// artifacts on infected hosts, the attacker fleet uploads them to honeypots,
// and the analysis detects them in enumeration listings — mirroring how the
// paper's reference set was built from observed uploads.
package campaigns

import (
	"regexp"
	"strings"
)

// Kind classifies a campaign's purpose.
type Kind int

// Campaign kinds.
const (
	KindWriteProbe Kind = iota + 1
	KindRAT
	KindDDoS
	KindMultiStage
	KindSEO
	KindFlier
	KindWaReZ
	KindBotnet
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindWriteProbe:
		return "write-probe"
	case KindRAT:
		return "remote-access-tool"
	case KindDDoS:
		return "ddos"
	case KindMultiStage:
		return "multi-stage"
	case KindSEO:
		return "seo"
	case KindFlier:
		return "advertising-flier"
	case KindWaReZ:
		return "warez-transport"
	case KindBotnet:
		return "botnet"
	default:
		return "unknown"
	}
}

// Artifact is one file a campaign drops.
type Artifact struct {
	// Name is the exact filename used ("w0000000t.txt").
	Name string
	// Content is the dropped payload (synthetic stand-in).
	Content string
	// Stage orders multi-stage campaigns (1-based); 0 for single-stage.
	Stage int
}

// Campaign is one malicious campaign.
type Campaign struct {
	// Key uniquely identifies the campaign.
	Key string
	// Name is the paper's name for it.
	Name string
	Kind Kind
	// Artifacts are the files the campaign drops, in stage order.
	Artifacts []Artifact
	// InReferenceSet marks campaigns whose artifacts the paper uses as
	// world-writability evidence.
	InReferenceSet bool
}

// Campaign keys.
const (
	KeyProbeW0000000t  = "probe-w0000000t"
	KeyProbeSjutd      = "probe-sjutd"
	KeyProbeHelloWorld = "probe-helloworld"
	KeyFtpchk3         = "ftpchk3"
	KeyRATEval         = "rat-php-eval"
	KeyDDoSHistory     = "ddos-history"
	KeyDDoSPhzLtoxn    = "ddos-phzltoxn"
	KeyHolyBible       = "seo-holy-bible"
	KeyCrackFlier      = "crack-service-flier"
	KeyWaReZ           = "warez-transport"
	KeyRamnit          = "ramnit"
)

// udpFloodPHP is the synthetic stand-in for the UDP DDoS scripts the paper
// describes: "receive a target host/port and time length from the GET
// parameters and send 65kB UDP packets as fast as possible".
const udpFloodPHP = `<?php
// synthetic stand-in for observed UDP flood tooling (defanged)
$host = $_GET['host']; $port = intval($_GET['port']); $secs = intval($_GET['time']);
/* flood loop elided in simulation */
echo "flood $host:$port for $secs";
?>`

// All returns the full campaign catalog. The slice is freshly allocated.
func All() []Campaign {
	return []Campaign{
		{
			Key: KeyProbeW0000000t, Name: "w0000000t write probe", Kind: KindWriteProbe,
			InReferenceSet: true,
			Artifacts: []Artifact{
				{Name: "w0000000t.txt", Content: "Anonymous"},
				{Name: "w0000000t.php", Content: "Anonymous"},
			},
		},
		{
			Key: KeyProbeSjutd, Name: "sjutd write probe", Kind: KindWriteProbe,
			InReferenceSet: true,
			Artifacts:      []Artifact{{Name: "sjutd.txt", Content: "test"}},
		},
		{
			Key: KeyProbeHelloWorld, Name: "hello.world write probe", Kind: KindWriteProbe,
			InReferenceSet: true,
			Artifacts:      []Artifact{{Name: "hello.world.txt", Content: "aGVsbG8gd29ybGQ="}},
		},
		{
			Key: KeyFtpchk3, Name: "ftpchk3 staged campaign", Kind: KindMultiStage,
			InReferenceSet: true,
			Artifacts: []Artifact{
				{Name: "ftpchk3.txt", Content: "ftpchk3", Stage: 1},
				{Name: "ftpchk3.php", Content: `<?php echo "OK"; ?>`, Stage: 2},
				{Name: "ftpchk3.php", Content: "<?php /* synthetic recon: phpversion(), loaded extensions, CMS detect */ ?>", Stage: 3},
			},
		},
		{
			Key: KeyRATEval, Name: "single-line PHP RAT", Kind: KindRAT,
			InReferenceSet: true,
			Artifacts: []Artifact{
				{Name: "sh3ll.php", Content: "<?php /* synthetic RAT marker: eval-POST-5 */ ?>"},
				{Name: "up.php", Content: "<?php /* synthetic RAT marker: eval-POST-5 */ ?>"},
				{Name: "x.php", Content: "<?php /* synthetic RAT marker: eval-POST-5 */ ?>"},
			},
		},
		{
			Key: KeyDDoSHistory, Name: "history.php UDP DDoS", Kind: KindDDoS,
			InReferenceSet: true,
			Artifacts:      []Artifact{{Name: "history.php", Content: udpFloodPHP}},
		},
		{
			Key: KeyDDoSPhzLtoxn, Name: "phzLtoxn.php UDP DDoS", Kind: KindDDoS,
			InReferenceSet: true,
			Artifacts:      []Artifact{{Name: "phzLtoxn.php", Content: udpFloodPHP}},
		},
		{
			Key: KeyHolyBible, Name: "Holy Bible SEO campaign", Kind: KindSEO,
			// Not in the reference set: detected via its ancillary tag
			// file (§VI.B).
			InReferenceSet: false,
			Artifacts: []Artifact{
				{Name: "Holy-Bible.html", Content: "<html><!-- campaign tag --></html>"},
				{Name: "index.php", Content: "<?php /* synthetic SEO injector: href spam, spreads, deletes .bak/.zip/.apk/.msi */ ?>"},
			},
		},
		{
			Key: KeyCrackFlier, Name: "software cracking service fliers", Kind: KindFlier,
			InReferenceSet: false,
			Artifacts: []Artifact{
				{Name: "Software-Cracking-Service.pdf", Content: "%PDF-1.4 synthetic flier: keygens and dongle emulators, $300-$500, contact via Bitmessage"},
				{Name: "Software-Cracking-Service.ps", Content: "%!PS synthetic flier"},
			},
		},
		{
			Key: KeyWaReZ, Name: "WaReZ transport", Kind: KindWaReZ,
			InReferenceSet: false,
			// Directory-based; DirPattern below matches its drops.
			Artifacts: nil,
		},
		{
			Key: KeyRamnit, Name: "Ramnit botnet FTP server", Kind: KindBotnet,
			InReferenceSet: false,
			// Banner-based detection; no file artifacts.
			Artifacts: nil,
		},
	}
}

// ByKey returns the campaign with the given key, or nil.
func ByKey(key string) *Campaign {
	all := All()
	for i := range all {
		if all[i].Key == key {
			return &all[i]
		}
	}
	return nil
}

// ReferenceSet returns the filenames whose presence marks a server as
// world-writable — the paper's §VI.A reference set.
func ReferenceSet() map[string]bool {
	set := make(map[string]bool)
	for _, c := range All() {
		if !c.InReferenceSet {
			continue
		}
		for _, a := range c.Artifacts {
			set[a.Name] = true
		}
	}
	return set
}

// warezDirPattern matches the WaReZ transport campaign's drop directories:
// 2-digit year + month + day + 6-digit time + "p".
var warezDirPattern = regexp.MustCompile(`^\d{12}p$`)

// IsWaReZDir reports whether a directory name matches the WaReZ transport
// campaign signature.
func IsWaReZDir(name string) bool {
	return warezDirPattern.MatchString(name)
}

// RamnitBanner is the botnet's characteristic banner text; on the wire it
// appears as "220 220 RMNetwork FTP".
const RamnitBanner = "220 RMNetwork FTP"

// IsRamnitBanner reports whether a banner marks a Ramnit victim.
func IsRamnitBanner(banner string) bool {
	return strings.Contains(banner, "RMNetwork FTP")
}

// DetectFilename maps a filename to the campaigns that drop it.
func DetectFilename(name string) []string {
	var keys []string
	for _, c := range All() {
		for _, a := range c.Artifacts {
			if a.Name == name {
				keys = append(keys, c.Key)
				break
			}
		}
	}
	return keys
}

// Attribution keys for honeypot-observed activity that is not a §VI
// file-dropping campaign: protocol-level exploit attempts and relay abuse
// the §VIII study attributes alongside the upload campaigns.
const (
	KeyCVEModCopy  = "cve-2015-3306"
	KeySeagateRoot = "seagate-root-login"
	KeyPortBounce  = "port-bounce-relay"
	// KeyUncataloged buckets uploads matching no cataloged campaign.
	KeyUncataloged = "uncataloged-upload"
)

// AttributeUpload maps an uploaded filename to a single campaign key for
// attribution tables: the lexicographically-first catalog match so
// attribution is deterministic, or KeyUncataloged when nothing matches.
func AttributeUpload(name string) string {
	keys := DetectFilename(name)
	if len(keys) == 0 {
		return KeyUncataloged
	}
	best := keys[0]
	for _, k := range keys[1:] {
		if k < best {
			best = k
		}
	}
	return best
}

// AttributeMkdir maps a created directory name to a campaign key, or ""
// when the name carries no campaign signature.
func AttributeMkdir(name string) string {
	if IsWaReZDir(name) {
		return KeyWaReZ
	}
	return ""
}
