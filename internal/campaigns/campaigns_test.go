package campaigns

import (
	"testing"
	"testing/quick"
)

func TestCatalogComplete(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("catalog has %d campaigns, want 11", len(all))
	}
	keys := make(map[string]bool)
	for _, c := range all {
		if c.Key == "" || c.Name == "" || c.Kind == 0 {
			t.Errorf("incomplete campaign: %+v", c)
		}
		if keys[c.Key] {
			t.Errorf("duplicate key %q", c.Key)
		}
		keys[c.Key] = true
	}
	for _, want := range []string{
		KeyProbeW0000000t, KeyProbeSjutd, KeyProbeHelloWorld, KeyFtpchk3,
		KeyRATEval, KeyDDoSHistory, KeyDDoSPhzLtoxn, KeyHolyBible,
		KeyCrackFlier, KeyWaReZ, KeyRamnit,
	} {
		if !keys[want] {
			t.Errorf("missing campaign %q", want)
		}
	}
}

func TestByKey(t *testing.T) {
	c := ByKey(KeyFtpchk3)
	if c == nil || c.Kind != KindMultiStage {
		t.Fatalf("ByKey(ftpchk3) = %+v", c)
	}
	if len(c.Artifacts) != 3 {
		t.Errorf("ftpchk3 stages = %d, want 3 (paper's observed stages)", len(c.Artifacts))
	}
	if ByKey("nope") != nil {
		t.Error("phantom campaign")
	}
}

func TestReferenceSet(t *testing.T) {
	set := ReferenceSet()
	// The probes and RAT files are the paper's write evidence.
	for _, want := range []string{
		"w0000000t.txt", "w0000000t.php", "sjutd.txt", "hello.world.txt",
		"ftpchk3.txt", "ftpchk3.php", "history.php", "phzLtoxn.php", "sh3ll.php",
	} {
		if !set[want] {
			t.Errorf("reference set missing %q", want)
		}
	}
	// The SEO tag and fliers are NOT write evidence per the paper.
	for _, no := range []string{"Holy-Bible.html", "Software-Cracking-Service.pdf", "index.php"} {
		if set[no] {
			t.Errorf("reference set wrongly includes %q", no)
		}
	}
}

func TestIsWaReZDir(t *testing.T) {
	good := []string{"150618120000p", "040101235959p"}
	bad := []string{"", "150618120000", "150618120000x", "15061812000p", "1506181200000p", "abc"}
	for _, g := range good {
		if !IsWaReZDir(g) {
			t.Errorf("IsWaReZDir(%q) = false", g)
		}
	}
	for _, b := range bad {
		if IsWaReZDir(b) {
			t.Errorf("IsWaReZDir(%q) = true", b)
		}
	}
}

// Property: WaReZ signature requires exactly 12 digits plus 'p'.
func TestWaReZDirProperty(t *testing.T) {
	f := func(digits [12]uint8, extra bool) bool {
		name := ""
		for _, d := range digits {
			name += string(rune('0' + d%10))
		}
		if extra {
			name += "x"
		} else {
			name += "p"
		}
		return IsWaReZDir(name) == !extra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRamnitBanner(t *testing.T) {
	if !IsRamnitBanner("220 220 RMNetwork FTP") {
		t.Error("wire-format Ramnit banner not detected")
	}
	if IsRamnitBanner("220 ProFTPD Server ready") {
		t.Error("false positive on ProFTPD")
	}
}

func TestDetectFilename(t *testing.T) {
	keys := DetectFilename("w0000000t.txt")
	if len(keys) != 1 || keys[0] != KeyProbeW0000000t {
		t.Errorf("DetectFilename(w0000000t.txt) = %v", keys)
	}
	if DetectFilename("innocent.jpg") != nil {
		t.Error("false positive on innocent file")
	}
	// ftpchk3.php is shared by multiple stages of one campaign — must
	// report the campaign exactly once.
	keys = DetectFilename("ftpchk3.php")
	if len(keys) != 1 || keys[0] != KeyFtpchk3 {
		t.Errorf("DetectFilename(ftpchk3.php) = %v", keys)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindWriteProbe, KindRAT, KindDDoS, KindMultiStage, KindSEO, KindFlier, KindWaReZ, KindBotnet, Kind(0)}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Errorf("Kind(%d) has empty name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}
